(* The benchmark harness: one Bechamel test per experiment's hot
   mechanism, followed by the full experiment tables (the same rows
   EXPERIMENTS.md records).

   The Bechamel micro-benchmarks measure the REPRODUCTION's own code
   (simulated gate validation, fault storms, buffer traffic, attack
   corpus, ...); the experiment tables report the simulated-machine
   results.  Both are printed by this one executable:

     dune exec bench/main.exe
*)

open Bechamel
open Toolkit

(* ----- E1/E3: gate-table construction and validation ----- *)

let bench_gate_catalog =
  Test.make ~name:"e1_e3/gate_catalog_baseline"
    (Staged.stage (fun () -> Multics_kernel.Gate.count Multics_kernel.Config.baseline_645))

let bench_gate_lookup =
  Test.make ~name:"e1_e3/gate_lookup"
    (Staged.stage (fun () ->
         Multics_kernel.Gate.find Multics_kernel.Config.kernel_6180 ~gate_name:"initiate"))

(* ----- E2: the live protected-footprint workload ----- *)

let bench_kst_unified =
  Test.make ~name:"e2/kst_unified_64segs"
    (Staged.stage (fun () ->
         Multics_experiments.E2_naming_removal.live_protected_words
           ~kst_variant:Multics_fs.Kst.Unified ~rnt_placement:Multics_link.Rnt.In_kernel
           ~segments:64))

let bench_kst_split =
  Test.make ~name:"e2/kst_split_64segs"
    (Staged.stage (fun () ->
         Multics_experiments.E2_naming_removal.live_protected_words
           ~kst_variant:Multics_fs.Kst.Split ~rnt_placement:Multics_link.Rnt.In_user_ring
           ~segments:64))

(* ----- E4: the hardware access check itself ----- *)

let bench_hardware_check =
  let sdw = Multics_machine.Sdw.kernel_gate_segment ~gate_bound:8 in
  Test.make ~name:"e4/hardware_gate_check"
    (Staged.stage (fun () ->
         Multics_machine.Hardware.check sdw ~ring:Multics_machine.Ring.user
           ~operation:(Multics_machine.Hardware.Call 3)))

(* ----- E16/E4: the access-decision cache and the SDW associative
   memory on the mediation hot path -----

   [avc_hit] is the hit-heavy steady state (one warm object, checked
   repeatedly); [avc_miss_recompute] invalidates the object's
   generation before every check, so each iteration pays the
   stale-drop plus the full policy recomputation and re-insert;
   [hardware_check_assoc_hit] is the 6180-style reference with the SDW
   already in the CAM.  The [--smoke] mode below asserts the hit path
   beats fresh recomputation by at least 5x. *)

(* The fixture models the heavy end of realistic mediation: a project
   segment carrying a 66-entry ACL and an 18-compartment label (the
   AIM ceiling), accessed read-write by a subject cleared at the
   object's own level — so the fresh path pays the most-specific ACL
   scan plus both dominance subset checks on every reference, exactly
   the work the associative memory exists to bypass. *)
let avc_bench_compartments =
  [
    "crypto"; "nuclear"; "payroll"; "sigint"; "tempest"; "comsec"; "nofor"; "orcon"; "limdis";
    "propin"; "relido"; "imcon"; "medical"; "fiscal"; "audit"; "census"; "budget"; "treaty";
  ]

let avc_bench_hierarchy, avc_bench_uid =
  let open Multics_access in
  let open Multics_fs in
  let operator =
    Policy.subject ~trusted:true
      ~principal:(Principal.make ~person:"Initializer" ~project:"SysDaemon" ~tag:"z")
      ~clearance:(Label.system_high []) ~ring:(Multics_machine.Ring.of_int 1) ()
  in
  let people =
    [| "Jones"; "Smith"; "Quinn"; "Marley"; "Ames"; "Ortiz"; "Patel"; "Weiss" |]
  in
  let acl =
    Acl.of_strings
      (List.init 64 (fun i ->
           (Printf.sprintf "%s%d.Perf.*" people.(i mod Array.length people) i, "rw"))
      @ [ ("Bench.Perf.*", "rw"); ("*.SysDaemon.*", "r") ])
  in
  let h = Hierarchy.create () in
  let uid =
    match
      Hierarchy.create_segment h ~subject:operator ~dir:Uid.root ~name:"hot" ~acl
        ~label:(Label.make Label.Secret avc_bench_compartments)
    with
    | Ok uid -> uid
    | Error e -> failwith (Hierarchy.error_to_string e)
  in
  (h, uid)

let avc_bench_subject =
  Multics_access.Policy.subject
    ~principal:(Multics_access.Principal.make ~person:"Bench" ~project:"Perf" ~tag:"a")
    ~clearance:(Multics_access.Label.make Multics_access.Label.Secret avc_bench_compartments)
    ~ring:(Multics_machine.Ring.of_int 4) ()

let bench_avc_hit =
  (* Warm the entry once; every measured iteration is a hit. *)
  ignore
    (Multics_fs.Hierarchy.check_access avc_bench_hierarchy ~subject:avc_bench_subject
       ~uid:avc_bench_uid ~requested:Multics_machine.Mode.rw);
  Test.make ~name:"e16/avc_hit"
    (Staged.stage (fun () ->
         Multics_fs.Hierarchy.check_access avc_bench_hierarchy ~subject:avc_bench_subject
           ~uid:avc_bench_uid ~requested:Multics_machine.Mode.rw))

let bench_avc_miss_recompute =
  Test.make ~name:"e16/avc_miss_recompute"
    (Staged.stage (fun () ->
         Multics_fs.Hierarchy.invalidate_cached_verdicts avc_bench_hierarchy;
         Multics_fs.Hierarchy.check_access avc_bench_hierarchy ~subject:avc_bench_subject
           ~uid:avc_bench_uid ~requested:Multics_machine.Mode.rw))

let bench_hardware_check_assoc_hit =
  let open Multics_machine in
  let assoc = Hardware.Assoc.create () in
  let sdw = Sdw.make ~mode:Mode.rew ~brackets:Brackets.user_data () in
  Hardware.Assoc.install assoc ~segno:7 sdw;
  Test.make ~name:"e4/hardware_check_assoc_hit"
    (Staged.stage (fun () ->
         Hardware.check_via_assoc assoc ~segno:7 ~fetch:(fun () -> Some sdw) ~ring:Ring.user
           ~operation:Hardware.Read))

(* ----- E5: the boundary sweep ----- *)

let bench_boundary_sweep =
  Test.make ~name:"e5/boundary_sweep"
    (Staged.stage (fun () ->
         Multics_kernel.Boundary.sweep ~inner_calls_list:[ 0; 1; 2; 5; 10; 20; 50; 100 ] ()))

(* ----- E6: one full page-fault storm per discipline ----- *)

let bench_page_storm_sequential =
  Test.make ~name:"e6/page_storm_sequential"
    (Staged.stage (fun () ->
         Multics_experiments.E6_page_control.run_storm ~core:8 ~bulk:12
           ~discipline:Multics_vm.Page_control.Sequential ~processes:4 ~pages_per_process:10
           ~sweeps:2 ()))

let bench_page_storm_parallel =
  Test.make ~name:"e6/page_storm_parallel"
    (Staged.stage (fun () ->
         Multics_experiments.E6_page_control.run_storm ~core:8 ~bulk:12
           ~discipline:Multics_vm.Page_control.Parallel_processes ~processes:4
           ~pages_per_process:10 ~sweeps:2 ()))

(* ----- E7: buffer mechanisms under burst traffic ----- *)

let bench_buffer_circular =
  Test.make ~name:"e7/buffer_circular"
    (Staged.stage (fun () ->
         Multics_io.Network.run ~seed:7
           (Multics_io.Network.Circular (Multics_io.Circular_buffer.create ~capacity:16))))

let bench_buffer_infinite =
  Test.make ~name:"e7/buffer_infinite"
    (Staged.stage (fun () ->
         Multics_io.Network.run ~seed:7
           (Multics_io.Network.Infinite (Multics_io.Infinite_buffer.create ()))))

(* ----- E8: interrupt storms per discipline ----- *)

let bench_interrupts_inline =
  Test.make ~name:"e8/interrupt_storm_inline"
    (Staged.stage (fun () ->
         Multics_experiments.E8_interrupts.run_storm ~discipline:Multics_proc.Interrupt.Inline
           ~interrupts:40 ~gap:4_000))

let bench_interrupts_processes =
  Test.make ~name:"e8/interrupt_storm_processes"
    (Staged.stage (fun () ->
         Multics_experiments.E8_interrupts.run_storm
           ~discipline:Multics_proc.Interrupt.Handler_processes ~interrupts:40 ~gap:4_000))

(* ----- E9: the policy/mechanism attack matrix ----- *)

let bench_policy_matrix =
  Test.make ~name:"e9/policy_attack_matrix"
    (Staged.stage (fun () -> Multics_kernel.Page_policy.attack_matrix ()))

(* ----- E10: lattice checks ----- *)

let bench_lattice_trace =
  Test.make ~name:"e10/lattice_flow_trace"
    (Staged.stage (fun () ->
         Multics_experiments.E10_lattice_flow.measure ~seed:7 ~operations:1_000 ()))

(* ----- E11: the full corpus against the kernel ----- *)

let bench_pentest_kernel =
  Test.make ~name:"e11/corpus_vs_kernel"
    (Staged.stage (fun () -> Multics_audit.Pentest.run_corpus Multics_kernel.Config.kernel_6180))

(* ----- E12: inventory metrics ----- *)

let bench_inventory_stages =
  Test.make ~name:"e12/inventory_stages"
    (Staged.stage (fun () -> Multics_audit.Metrics.stages ()))

(* ----- E13: the full-system session ----- *)

let bench_session_kernel =
  Test.make ~name:"e13/full_system_session"
    (Staged.stage (fun () ->
         Multics_experiments.E13_cost_of_security.measure ()))

(* ----- E14: the exhaustive verifier ----- *)

let bench_verifier =
  Test.make ~name:"e14/exhaustive_verifier"
    (Staged.stage (fun () -> Multics_audit.Verifier.run_all ()))

(* ----- E17: the traffic controller's dispatch path -----

   One full MLF scheduling decision — select (with its aging pass),
   quantum lookup, expiry demotion, re-enqueue — against a deep ready
   backlog.  The [--smoke] gate below checks the same cycle stays
   near-constant as the backlog grows 1000x: the dispatch path must be
   O(1) in the number of ready processes. *)

let sched_mlf_with_backlog n =
  let m = Multics_sched.Sched.Mlf.create ~levels:4 ~base_quantum:4_000 ~age_after:1_000_000 in
  for pid = 1 to n do
    Multics_sched.Sched.Mlf.enqueue m ~now:0 pid
  done;
  m

let sched_dispatch_cycle m =
  match Multics_sched.Sched.Mlf.select m ~now:0 with
  | None -> ()
  | Some pid ->
      ignore (Multics_sched.Sched.Mlf.quantum m pid);
      Multics_sched.Sched.Mlf.expired m pid;
      Multics_sched.Sched.Mlf.enqueue m ~now:0 pid

let bench_sched_dispatch =
  let m = sched_mlf_with_backlog 10_000 in
  Test.make ~name:"e17/dispatch_10k_ready"
    (Staged.stage (fun () -> sched_dispatch_cycle m))

(* ----- E18: the multiprocessor plant's hot paths -----

   The connect broadcast (one descriptor mutation's synchronous
   coherence round over 3 remote CPUs), the per-CPU CAM front of the
   SDW check, and one dispatcher-lock acquisition.  All three sit on
   mediation or dispatch hot paths, so their cost is the price of
   running the kernel on more than one processor. *)

module Smp = Multics_smp.Smp

let smp_bench_plant =
  let plant = Smp.create ~ncpus:4 ~cost:Multics_machine.Cost.h6180 () in
  Smp.set_current plant 0;
  plant

let bench_smp_connect_broadcast =
  Test.make ~name:"e18/connect_broadcast_4cpu"
    (Staged.stage (fun () -> Smp.connect_invalidate smp_bench_plant ~handle:1 ~segno:8))

let smp_bench_sdw =
  Multics_machine.Sdw.make ~mode:Multics_machine.Mode.rw
    ~brackets:(Multics_machine.Brackets.make ~r1:4 ~r2:4 ~r3:4)
    ()

let smp_bench_assoc = Multics_machine.Hardware.Assoc.create ~name:"bench.smp.assoc" ()

let bench_smp_check_sdw_hit =
  (* Warm the CAM once; every iteration is then the per-CPU hit path. *)
  ignore
    (Smp.check_sdw smp_bench_plant ~handle:1 ~segno:8 ~assoc:smp_bench_assoc
       ~fetch:(fun () -> Some smp_bench_sdw)
       ~ring:Multics_machine.Ring.user ~operation:Multics_machine.Hardware.Read);
  Test.make ~name:"e18/check_sdw_cam_hit"
    (Staged.stage (fun () ->
         Smp.check_sdw smp_bench_plant ~handle:1 ~segno:8 ~assoc:smp_bench_assoc
           ~fetch:(fun () -> Some smp_bench_sdw)
           ~ring:Multics_machine.Ring.user ~operation:Multics_machine.Hardware.Read))

let bench_smp_dispatch_lock =
  Test.make ~name:"e18/dispatch_lock_4cpu"
    (Staged.stage (fun () -> Smp.dispatch_lock smp_bench_plant ~now:0))

(* ----- E20: the distributed fleet -----

   One replicated revocation on a 4-site fleet: resolve the path at
   the home site, apply the edit, then replay it at 3 peers over the
   links and wait for every acknowledgement before returning — the
   cross-kernel analogue of [e18/connect_broadcast_4cpu].  Audit
   recording is off so iterations measure the broadcast, not log
   growth; the backlog compacts to empty while the fleet is healthy,
   so the loop is steady-state. *)

module Site = Multics_site.Site

let site_bench_fleet, site_bench_handle =
  let fleet = Site.create ~nsites:4 () in
  for s = 0 to Site.nsites fleet - 1 do
    Multics_kernel.Audit_log.set_enabled
      (Multics_kernel.System.audit (Site.member_system fleet s))
      false
  done;
  Site.add_account fleet ~person:"Bench" ~project:"Site" ~password:"pw"
    ~clearance:Multics_access.Label.unclassified;
  let handle =
    match Site.login fleet ~person:"Bench" ~project:"Site" ~password:"pw" with
    | Ok handle -> handle
    | Error e -> failwith (Multics_kernel.System.login_error_to_string e)
  in
  let user = 0 in
  (match
     Site.dispatch fleet ~user ~handle
       (Multics_kernel.Api.Call.Create_segment_by_path
          {
            path = ">udd>Site>Bench>scratch";
            acl = Multics_access.Acl.of_strings [ ("Bench.Site.*", "rw") ];
            label = Multics_access.Label.unclassified;
            brackets = None;
          })
   with
  | Ok _ -> ()
  | Error e -> failwith (Multics_kernel.Api.error_to_string e));
  (fleet, handle)

let site_bench_revoke () =
  Site.dispatch site_bench_fleet ~user:0 ~handle:site_bench_handle
    (Multics_kernel.Api.Call.Set_acl_by_path
       {
         path = ">udd>Site>Bench>scratch";
         acl = Multics_access.Acl.of_strings [ ("Bench.Site.*", "rw") ];
       })

let bench_site_revocation_broadcast =
  (match site_bench_revoke () with
  | Ok _ -> ()
  | Error e -> failwith (Multics_kernel.Api.error_to_string e));
  Test.make ~name:"e20/revocation_broadcast_4site" (Staged.stage site_bench_revoke)

(* ----- E19: the dense-SID flat-table mediation path -----

   [bench_avc_hit] above already measures the redesigned decision path
   (the hierarchy serves [check_access] from the compiled
   [Av_table]).  This section puts that hit head to head against the
   work it compiled away — a fresh structured [Policy.check] over the
   same label and ACL — plus the two costs the compilation introduces:
   recalling a subject's dense SID (the memo-stamp fast path and the
   cold re-intern) and an eager whole-table rebuild.  The [--smoke]
   gate below requires the flat-table hit to beat the fresh check and
   records all of these in BENCH_e19_sid.json. *)

let sid_bench_label, sid_bench_acl =
  ( Option.get (Multics_fs.Hierarchy.label_of avc_bench_hierarchy avc_bench_uid),
    Option.get (Multics_fs.Hierarchy.acl_of avc_bench_hierarchy avc_bench_uid) )

(* Separate subject records per path: the SID memo stamp is
   per-registry, so sharing one record across registries would
   re-intern on every call and measure stamp churn instead of the hit
   paths. *)
let sid_bench_subject_for tag =
  ignore tag;
  Multics_access.Policy.subject
    ~principal:(Multics_access.Principal.make ~person:"Bench" ~project:"Perf" ~tag:"a")
    ~clearance:(Multics_access.Label.make Multics_access.Label.Secret avc_bench_compartments)
    ~ring:(Multics_machine.Ring.of_int 4) ()

let sid_bench_check_subject = sid_bench_subject_for `Check
let sid_bench_obj = Multics_fs.Uid.to_int avc_bench_uid

(* The compiled path against the work it replaced, node fetch excluded
   from both: the table's find (SID memo recall, two array loads, a
   bit test) against a fresh structured verdict (label dominance plus
   the ACL match walk). *)
let sid_bench_avtab = Multics_fs.Hierarchy.av_table avc_bench_hierarchy
let sid_bench_need = Multics_access.Av_table.required Multics_machine.Mode.rw

let sid_bench_flat_hit () =
  let subj = Multics_access.Av_table.subject_sid sid_bench_avtab avc_bench_subject in
  let av = Multics_access.Av_table.find sid_bench_avtab ~subj ~obj:sid_bench_obj in
  av >= 0 && Multics_access.Av_table.covers ~av ~need:sid_bench_need

let bench_sid_flat_find =
  ignore (sid_bench_flat_hit ());
  Test.make ~name:"e19/flat_table_find_hit" (Staged.stage sid_bench_flat_hit)

let sid_bench_fresh_check () =
  Multics_access.Policy.check ~subject:sid_bench_check_subject ~object_label:sid_bench_label
    ~acl:sid_bench_acl ~requested:Multics_machine.Mode.rw

let bench_sid_fresh_check =
  ignore (sid_bench_fresh_check ());
  Test.make ~name:"e19/policy_check_fresh" (Staged.stage sid_bench_fresh_check)

let sid_bench_intern_subject = sid_bench_subject_for `Flat

let bench_sid_intern_memo =
  ignore (Multics_fs.Hierarchy.subject_sid avc_bench_hierarchy sid_bench_intern_subject);
  Test.make ~name:"e19/subject_sid_memo_hit"
    (Staged.stage (fun () ->
         Multics_fs.Hierarchy.subject_sid avc_bench_hierarchy sid_bench_intern_subject))

let sid_bench_intern_cold () =
  (* Clearing the stamp forces the registry walk (hash + bucket scan +
     restamp) a process pays on its first reference after login or a
     ring change. *)
  sid_bench_intern_subject.Multics_access.Policy.sid_memo <- (0, -1);
  Multics_fs.Hierarchy.subject_sid avc_bench_hierarchy sid_bench_intern_subject

let bench_sid_intern_cold =
  Test.make ~name:"e19/subject_sid_intern_cold" (Staged.stage sid_bench_intern_cold)

(* A populated hierarchy for the rebuild: 64 objects under churn-free
   attributes, a handful of interned subjects — the rebuild recompiles
   every (subject, object) pair. *)
let sid_rebuild_hierarchy =
  let open Multics_access in
  let open Multics_fs in
  let operator =
    Policy.subject ~trusted:true
      ~principal:(Principal.make ~person:"Initializer" ~project:"SysDaemon" ~tag:"z")
      ~clearance:(Label.system_high []) ~ring:(Multics_machine.Ring.of_int 1) ()
  in
  let h = Hierarchy.create () in
  let acl = Acl.of_strings [ ("*.Perf.*", "rw"); ("Initializer.*.*", "rew") ] in
  let uids =
    Array.init 64 (fun i ->
        match
          Hierarchy.create_segment h ~subject:operator ~dir:Uid.root
            ~name:(Printf.sprintf "seg_%02d" i) ~acl ~label:Label.unclassified
        with
        | Ok uid -> uid
        | Error e -> failwith (Hierarchy.error_to_string e))
  in
  List.iter
    (fun person ->
      let s =
        Policy.subject
          ~principal:(Principal.make ~person ~project:"Perf" ~tag:"a")
          ~clearance:(Label.make Label.Secret []) ~ring:(Multics_machine.Ring.of_int 4) ()
      in
      ignore (Hierarchy.check_access h ~subject:s ~uid:uids.(0) ~requested:Multics_machine.Mode.r))
    [ "Ames"; "Bell"; "Cook"; "Dale" ];
  h

let sid_bench_rebuild () = Multics_fs.Hierarchy.rebuild_av_table sid_rebuild_hierarchy

let bench_sid_rebuild =
  Test.make ~name:"e19/table_rebuild_5subj_64obj" (Staged.stage sid_bench_rebuild)

(* ----- Observability overhead -----

   The same full gate call (a [Read_word] through [Api.Call.dispatch]:
   process lookup, gate discipline, SDW check, content fetch, metering
   branch) with the observability switch on and off.  The off row is the seed-equivalent
   path: its only extra cost is the single disabled branch, so the two
   rows must land within noise of each other.  The audit log is
   disabled for both rows so neither accumulates records across
   iterations. *)

module Obs = Multics_obs.Obs

let obs_bench_system, obs_bench_handle, obs_bench_segno =
  let open Multics_kernel in
  let system = System.create Config.kernel_6180 in
  Audit_log.set_enabled (System.audit system) false;
  ignore
    (System.add_account system ~person:"Bench" ~project:"Perf" ~password:"pw"
       ~clearance:Multics_access.Label.unclassified);
  let handle =
    match System.login system ~person:"Bench" ~project:"Perf" ~password:"pw" with
    | Ok handle -> handle
    | Error e -> failwith (System.login_error_to_string e)
  in
  let segno =
    match
      User_env.create_segment_at system ~handle ~path:">udd>Perf>Bench>hot"
        ~acl:(Multics_access.Acl.of_strings [ ("Bench.Perf.*", "rew") ])
        ~label:Multics_access.Label.unclassified
    with
    | Ok segno -> segno
    | Error e -> failwith (User_env.error_to_string e)
  in
  (match
     Api.Call.dispatch system ~handle (Api.Call.Write_word { segno; offset = 0; value = 42 })
   with
  | Ok _ -> ()
  | Error e -> failwith (Api.error_to_string e));
  (system, handle, segno)

let obs_bench_request =
  Multics_kernel.Api.Call.Read_word { segno = obs_bench_segno; offset = 0 }

let bench_obs_gate_call_on =
  Test.make ~name:"obs/gate_call_obs_on"
    (Staged.stage (fun () ->
         Obs.set_enabled true;
         Multics_kernel.Api.Call.dispatch obs_bench_system ~handle:obs_bench_handle
           obs_bench_request))

let bench_obs_gate_call_off =
  Test.make ~name:"obs/gate_call_obs_off"
    (Staged.stage (fun () ->
         Obs.set_enabled false;
         Multics_kernel.Api.Call.dispatch obs_bench_system ~handle:obs_bench_handle
           obs_bench_request))

let obs_bench_counter = Obs.Local.counter "bench.counter"
let bench_obs_counter_incr =
  Test.make ~name:"obs/counter_incr"
    (Staged.stage (fun () -> Obs.Counter.incr (obs_bench_counter ())))

let obs_bench_histogram = Obs.Local.histogram "bench.histogram"
let bench_obs_histogram_observe =
  Test.make ~name:"obs/histogram_observe"
    (Staged.stage (fun () -> Obs.Histogram.observe (obs_bench_histogram ()) 1234))

(* ----- The parallel harness (lib/par) ----- *)

module Par = Multics_par.Par

(* The task unit the domain pool schedules: one seeded E19 churn run,
   sized down so Bechamel can sample it. *)
let harness_seed_refs = 30

let bench_harness_seed_run =
  Test.make ~name:"harness/e19_seed_run"
    (Staged.stage (fun () ->
         Multics_experiments.E19_sid.run_seed ~seed:7 ~refs:harness_seed_refs))

let bench_harness_pool_seq =
  Test.make ~name:"harness/run_seeds_1dom"
    (Staged.stage (fun () ->
         Par.run_seeds ~jobs:1 8 (fun seed ->
             Multics_experiments.E19_sid.run_seed ~seed ~refs:harness_seed_refs)))

let bench_harness_pool_4dom =
  Test.make ~name:"harness/run_seeds_4dom"
    (Staged.stage (fun () ->
         Par.run_seeds ~jobs:4 8 (fun seed ->
             Multics_experiments.E19_sid.run_seed ~seed ~refs:harness_seed_refs)))

let bench_harness_spawn_join =
  Test.make ~name:"harness/pool_spawn_join"
    (Staged.stage (fun () -> Par.map ~jobs:4 Fun.id [ 1; 2; 3; 4 ]))

(* ----- Ablations ----- *)

let bench_ablation_policies =
  Test.make ~name:"a1/eviction_policies"
    (Staged.stage (fun () -> Multics_experiments.Ablations.A1.measure ()))

let bench_ablation_watermark =
  Test.make ~name:"a3/watermark_sweep"
    (Staged.stage (fun () -> Multics_experiments.Ablations.A3.measure ()))

let tests =
  [
    bench_gate_catalog;
    bench_gate_lookup;
    bench_kst_unified;
    bench_kst_split;
    bench_hardware_check;
    bench_avc_hit;
    bench_avc_miss_recompute;
    bench_hardware_check_assoc_hit;
    bench_sid_flat_find;
    bench_sid_fresh_check;
    bench_sid_intern_memo;
    bench_sid_intern_cold;
    bench_sid_rebuild;
    bench_boundary_sweep;
    bench_page_storm_sequential;
    bench_page_storm_parallel;
    bench_buffer_circular;
    bench_buffer_infinite;
    bench_interrupts_inline;
    bench_interrupts_processes;
    bench_policy_matrix;
    bench_lattice_trace;
    bench_pentest_kernel;
    bench_inventory_stages;
    bench_session_kernel;
    bench_verifier;
    bench_sched_dispatch;
    bench_smp_connect_broadcast;
    bench_smp_check_sdw_hit;
    bench_smp_dispatch_lock;
    bench_site_revocation_broadcast;
    bench_obs_gate_call_on;
    bench_obs_gate_call_off;
    bench_obs_counter_incr;
    bench_obs_histogram_observe;
    bench_harness_seed_run;
    bench_harness_pool_seq;
    bench_harness_pool_4dom;
    bench_harness_spawn_join;
    bench_ablation_policies;
    bench_ablation_watermark;
  ]

let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let grouped = Test.make_grouped ~name:"multics" ~fmt:"%s %s" tests in
  let raw_results = Benchmark.all cfg instances grouped in
  let results = List.map (fun instance -> Analyze.all ols instance raw_results) instances in
  Analyze.merge ols instances results

let print_bench_table results =
  let open Notty_unix in
  let window =
    match winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 120; h = 1 }
  in
  Bechamel_notty.Unit.add Instance.monotonic_clock (Measure.unit Instance.monotonic_clock);
  let image =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window ~predictor:Measure.run results
  in
  output_image (eol image)

(* ----- The cache smoke gate (--smoke) -----

   A fast regression check for CI: on a hit-heavy workload the cached
   decision path must beat recomputing the verdict from scratch by at
   least 5x, and the cache must actually be hitting.  Wall-clock
   timed, no Bechamel machinery, exits nonzero on regression. *)

let smoke_required_speedup = 5.0

let time_iters n f =
  let start = Unix.gettimeofday () in
  for _ = 1 to n do
    ignore (Sys.opaque_identity (f ()))
  done;
  Unix.gettimeofday () -. start

let smoke () =
  let iters = 300_000 and trials = 5 in
  let check () =
    Multics_fs.Hierarchy.check_access avc_bench_hierarchy ~subject:avc_bench_subject
      ~uid:avc_bench_uid ~requested:Multics_machine.Mode.rw
  in
  let fresh () =
    Multics_fs.Hierarchy.check_access_fresh avc_bench_hierarchy ~subject:avc_bench_subject
      ~uid:avc_bench_uid ~requested:Multics_machine.Mode.rw
  in
  ignore (check ());
  (* Warm-up pass for both paths, then several paired trials; the
     median pair rides out scheduler and frequency jitter that a
     single measurement is exposed to on shared CI machines. *)
  ignore (time_iters 10_000 check);
  ignore (time_iters 10_000 fresh);
  let pairs =
    List.init trials (fun _ ->
        let cached = time_iters iters check in
        let uncached = time_iters iters fresh in
        (cached, uncached))
  in
  let median xs =
    let sorted = List.sort compare xs in
    List.nth sorted (trials / 2)
  in
  let cached = median (List.map fst pairs) in
  let uncached = median (List.map snd pairs) in
  let speedup = uncached /. cached in
  let hit_ratio = Multics_fs.Hierarchy.cache_hit_ratio avc_bench_hierarchy in
  Printf.printf
    "bench smoke: %d hit-heavy decisions — cached %.1f ns/ref, fresh %.1f ns/ref, speedup %.1fx (required >= %.0fx), hit ratio %.1f%%\n"
    iters
    (cached *. 1e9 /. float_of_int iters)
    (uncached *. 1e9 /. float_of_int iters)
    speedup smoke_required_speedup (hit_ratio *. 100.0);
  if speedup < smoke_required_speedup then begin
    print_endline "bench smoke: FAIL — cached decision path lost its edge over recomputation";
    exit 1
  end;
  if hit_ratio < 0.99 then begin
    print_endline "bench smoke: FAIL — hit-heavy workload is not hitting the cache";
    exit 1
  end;
  (* The dispatch path must not scale with the ready backlog: a full
     MLF decision against 10,000 ready processes may cost at most a
     small constant factor over the same decision against 10.  The
     seed's O(P) dedicated-process scan would fail this gate. *)
  let dispatch_iters = 200_000 in
  let shallow = sched_mlf_with_backlog 10 in
  let deep = sched_mlf_with_backlog 10_000 in
  ignore (time_iters 10_000 (fun () -> sched_dispatch_cycle shallow));
  ignore (time_iters 10_000 (fun () -> sched_dispatch_cycle deep));
  let dispatch_pairs =
    List.init trials (fun _ ->
        let s = time_iters dispatch_iters (fun () -> sched_dispatch_cycle shallow) in
        let d = time_iters dispatch_iters (fun () -> sched_dispatch_cycle deep) in
        (s, d))
  in
  let shallow_t = median (List.map fst dispatch_pairs) in
  let deep_t = median (List.map snd dispatch_pairs) in
  let blowup = deep_t /. shallow_t in
  let max_blowup = 20.0 in
  Printf.printf
    "bench smoke: dispatch with 10k ready %.1f ns/op vs 10 ready %.1f ns/op — x%.1f (allowed <= x%.0f)\n"
    (deep_t *. 1e9 /. float_of_int dispatch_iters)
    (shallow_t *. 1e9 /. float_of_int dispatch_iters)
    blowup max_blowup;
  if blowup > max_blowup then begin
    print_endline "bench smoke: FAIL — scheduler dispatch is scaling with the ready backlog";
    exit 1
  end;
  (* The dense-SID gate: the compiled flat-table hit (what [check]
     above measures) must beat the fresh structured verdict it
     compiled away.  Also record the redesign's own costs — SID
     recall, cold re-intern, eager rebuild — in BENCH_e19_sid.json for
     the CI artifact. *)
  let ns_per t iters = t *. 1e9 /. float_of_int iters in
  let flat = sid_bench_flat_hit and fresh_check = sid_bench_fresh_check in
  ignore (flat ());
  ignore (fresh_check ());
  ignore (time_iters 10_000 flat);
  ignore (time_iters 10_000 fresh_check);
  let sid_pairs =
    List.init trials (fun _ ->
        let f = time_iters iters flat in
        let a = time_iters iters fresh_check in
        (f, a))
  in
  let flat_t = median (List.map fst sid_pairs) in
  let fresh_check_t = median (List.map snd sid_pairs) in
  let sid_speedup = fresh_check_t /. flat_t in
  let sid_required_speedup = 2.0 in
  Printf.printf
    "bench smoke: flat-table hit %.1f ns/ref vs fresh policy check %.1f ns/ref — speedup %.2fx (required >= %.1fx)\n"
    (ns_per flat_t iters) (ns_per fresh_check_t iters) sid_speedup sid_required_speedup;
  if sid_speedup < sid_required_speedup then begin
    print_endline "bench smoke: FAIL — the compiled table lost to the fresh check it replaced";
    exit 1
  end;
  ignore (sid_bench_intern_cold ());
  ignore (time_iters 10_000 (fun () -> Multics_fs.Hierarchy.subject_sid avc_bench_hierarchy sid_bench_intern_subject));
  let memo_t =
    median
      (List.init trials (fun _ ->
           time_iters iters (fun () ->
               Multics_fs.Hierarchy.subject_sid avc_bench_hierarchy sid_bench_intern_subject)))
  in
  let cold_t = median (List.init trials (fun _ -> time_iters iters sid_bench_intern_cold)) in
  let rebuild_iters = 2_000 in
  let rebuild_cells = sid_bench_rebuild () in
  let rebuild_t =
    median (List.init trials (fun _ -> time_iters rebuild_iters sid_bench_rebuild))
  in
  Printf.printf
    "bench smoke: subject SID memo %.1f ns, cold re-intern %.1f ns, rebuild (%d cells) %.1f ns\n"
    (ns_per memo_t iters) (ns_per cold_t iters) rebuild_cells (ns_per rebuild_t rebuild_iters);
  (* The trajectory file is append-only (one JSON object per line, a
     JSON-Lines log) and committed with each PR, so the growth of the
     hot paths stays reviewable across the stack instead of each run
     clobbering the last. *)
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_e19_sid.json" in
  Printf.fprintf oc
    {|{"bench": "e19_sid", "unix_time": %.0f, "trials": %d, "iters": %d, "flat_table_hit_ns": %.2f, "fresh_policy_check_ns": %.2f, "fresh_recompute_ns": %.2f, "speedup_flat_vs_fresh_check": %.3f, "speedup_cached_vs_fresh": %.3f, "required_speedup_flat_vs_fresh_check": %.2f, "subject_intern_memo_ns": %.2f, "subject_intern_cold_ns": %.2f, "table_rebuild_ns": %.2f, "table_rebuild_cells": %d, "hit_ratio": %.4f}
|}
    (Unix.time ()) trials iters (ns_per flat_t iters) (ns_per fresh_check_t iters)
    (ns_per uncached iters) sid_speedup speedup sid_required_speedup (ns_per memo_t iters)
    (ns_per cold_t iters) (ns_per rebuild_t rebuild_iters) rebuild_cells hit_ratio;
  close_out oc;
  print_endline "bench smoke: appended to BENCH_e19_sid.json";
  (* The parallel-harness gate: the 100-seed E19 oracle must produce
     the same results at every pool size, and on a machine with at
     least 4 cores the 4-domain run must at least halve the sequential
     wall-clock.  Single-core runners still check determinism — only
     the speedup assertion is conditional on the hardware. *)
  let harness_refs = 2_000 and harness_trials = 3 in
  let time_oracle jobs =
    let start = Unix.gettimeofday () in
    let runs = Multics_experiments.E19_sid.parity_runs ~jobs ~refs:harness_refs () in
    (Unix.gettimeofday () -. start, runs)
  in
  let cores = Domain.recommended_domain_count () in
  let seq_samples = List.init harness_trials (fun _ -> time_oracle 1) in
  let median3 xs = List.nth (List.sort compare xs) (harness_trials / 2) in
  let seq_t = median3 (List.map fst seq_samples) in
  let reference = snd (List.hd seq_samples) in
  let oracle_divergences =
    List.fold_left
      (fun acc (r : Multics_experiments.E19_sid.run_stats) ->
        acc + r.Multics_experiments.E19_sid.divergences)
      0 reference
  in
  if cores < 2 then begin
    (* A 4-domain pool on one core measures scheduler thrash, not the
       harness: skip the timing, keep the determinism check over the
       sequential samples, and record the skip explicitly so the
       trajectory shows a gap instead of a fabricated speedup. *)
    let identical = List.for_all (fun (_, runs) -> runs = reference) seq_samples in
    Printf.printf
      "bench smoke: [harness] 100-seed E19 oracle (%d refs/seed, %d divergences) — sequential %.3f s, 4-domain timing skipped (%d core), results %s across trials\n"
      harness_refs oracle_divergences seq_t cores
      (if identical then "identical" else "DIVERGENT");
    if not identical then begin
      print_endline "bench smoke: FAIL — repeated sequential runs disagreed";
      exit 1
    end;
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_harness.json" in
    Printf.fprintf oc
      {|{"bench": "harness", "unix_time": %.0f, "trials": %d, "seeds": 100, "refs_per_seed": %d, "sequential_s": %.4f, "skipped": true, "cores": %d, "results_identical": %b}
|}
      (Unix.time ()) harness_trials harness_refs seq_t cores identical;
    close_out oc
  end
  else begin
    let par_samples = List.init harness_trials (fun _ -> time_oracle 4) in
    let par_t = median3 (List.map fst par_samples) in
    let identical =
      List.for_all (fun (_, runs) -> runs = reference) (seq_samples @ par_samples)
    in
    let harness_speedup = seq_t /. par_t in
    let harness_required_speedup = 2.0 in
    let enforce_speedup = cores >= 4 in
    Printf.printf
      "bench smoke: [harness] 100-seed E19 oracle (%d refs/seed, %d divergences) — sequential %.3f s, 4-domain %.3f s, speedup %.2fx%s, results %s across pool sizes\n"
      harness_refs oracle_divergences seq_t par_t harness_speedup
      (if enforce_speedup then Printf.sprintf " (required >= %.1fx)" harness_required_speedup
       else Printf.sprintf " (speedup gate skipped: %d core%s)" cores (if cores = 1 then "" else "s"))
      (if identical then "identical" else "DIVERGENT");
    if not identical then begin
      print_endline "bench smoke: FAIL — pool size changed the oracle's results";
      exit 1
    end;
    if enforce_speedup && harness_speedup < harness_required_speedup then begin
      print_endline "bench smoke: FAIL — the 4-domain oracle run lost its wall-clock edge";
      exit 1
    end;
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_harness.json" in
    Printf.fprintf oc
      {|{"bench": "harness", "unix_time": %.0f, "trials": %d, "seeds": 100, "refs_per_seed": %d, "sequential_s": %.4f, "four_domain_s": %.4f, "speedup": %.3f, "required_speedup": %.2f, "cores": %d, "skipped": false, "speedup_gate_enforced": %b, "results_identical": %b}
|}
      (Unix.time ()) harness_trials harness_refs seq_t par_t harness_speedup
      harness_required_speedup cores enforce_speedup identical;
    close_out oc
  end;
  print_endline "bench smoke: appended to BENCH_harness.json";

  (* ----- the model checker's exploration throughput -----

     A bounded exhaustive run at depth 3 (every state a full canonical
     re-execution from boot): the healthy plant must come back with
     zero violations, and the replay rate lands in BENCH_mc.json so a
     regression in the canonical-replay hot path shows up as a
     states-per-second collapse between runs. *)
  let mc_depth = 3 in
  let mc_start = Unix.gettimeofday () in
  let mc_outcome = Multics_mc.Mc.explore ~depth:mc_depth () in
  let mc_t = Unix.gettimeofday () -. mc_start in
  let mc_states = mc_outcome.Multics_mc.Mc.o_states in
  let mc_expansions = mc_outcome.Multics_mc.Mc.o_expansions in
  let mc_violations = List.length mc_outcome.Multics_mc.Mc.o_counterexamples in
  let mc_states_per_sec = float_of_int mc_states /. mc_t in
  Printf.printf
    "bench smoke: [mc] exhaustive to depth %d — %d states, %d replays in %.3f s (%.0f states/s), %d violations\n"
    mc_depth mc_states mc_expansions mc_t mc_states_per_sec mc_violations;
  if mc_violations <> 0 then begin
    print_endline "bench smoke: FAIL — the healthy plant produced a counterexample";
    exit 1
  end;
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_mc.json" in
  Printf.fprintf oc
    {|{"bench": "mc", "unix_time": %.0f, "depth": %d, "states": %d, "expansions": %d, "wall_s": %.4f, "states_per_sec": %.1f, "violations": %d}
|}
    (Unix.time ()) mc_depth mc_states mc_expansions mc_t mc_states_per_sec mc_violations;
  close_out oc;
  print_endline "bench smoke: appended to BENCH_mc.json";

  (* ----- the specialised gate table's dispatch overhead (E22) -----

     The gate mask sits on the dispatch hot path, so it must stay
     cheap: an admitted call under a specialised table may not cost
     more than 3x the unmasked call, and a stripped call's Gate_absent
     refusal is timed alongside (it is the fail-secure fast path — no
     kernel state is touched). *)
  let module Spec = Multics_spec.Spec in
  let spec_config = Multics_kernel.Config.kernel_6180 in
  let spec_system = Multics_kernel.System.create spec_config in
  (* Retaining half a million audit records would time the GC, not the
     mask: this system's trail is disabled like the other hot-loop
     bench systems'. *)
  Multics_kernel.Audit_log.set_enabled (Multics_kernel.System.audit spec_system) false;
  ignore
    (Multics_kernel.System.add_account spec_system ~person:"Bench" ~project:"Spec" ~password:"pw"
       ~clearance:Multics_access.Label.unclassified);
  let spec_handle =
    match Multics_kernel.System.login spec_system ~person:"Bench" ~project:"Spec" ~password:"pw" with
    | Ok h -> h
    | Error _ -> failwith "bench: spec login"
  in
  let spec_home =
    match
      Multics_kernel.User_env.resolve_path spec_system ~handle:spec_handle ~path:">udd>Spec>Bench"
    with
    | Ok segno -> segno
    | Error _ -> failwith "bench: spec home"
  in
  let spec_data =
    match
      Multics_kernel.Api.Call.dispatch spec_system ~handle:spec_handle
        (Multics_kernel.Api.Call.Create_segment
           {
             dir_segno = spec_home;
             name = "data";
             acl = Multics_access.Acl.of_strings [ ("Bench.Spec.*", "rew") ];
             label = Multics_access.Label.unclassified;
             brackets = None;
           })
    with
    | Ok (Multics_kernel.Api.Call.Segno segno) -> segno
    | _ -> failwith "bench: spec data segment"
  in
  let read_once () =
    ignore
      (Multics_kernel.Api.Call.dispatch spec_system ~handle:spec_handle
         (Multics_kernel.Api.Call.Read_word { segno = spec_data; offset = 0 }))
  in
  let spec_iters = 20_000 in
  ignore (time_iters 1_000 read_once);
  let unmasked_t = median (List.init trials (fun _ -> time_iters spec_iters read_once)) in
  let profile, () =
    Spec.Profile.observe ~name:"bench-read" (fun () ->
        read_once ();
        ())
  in
  let spec =
    Spec.Specialisation.compile ~keep:[ "enter_subsystem"; "logout" ] ~name:"bench-read"
      spec_config profile
  in
  Spec.Specialisation.apply spec_system spec;
  let masked_t = median (List.init trials (fun _ -> time_iters spec_iters read_once)) in
  let refuse_once () =
    ignore
      (Multics_kernel.Api.Call.dispatch spec_system ~handle:spec_handle
         (Multics_kernel.Api.Call.List_directory { dir_segno = spec_home }))
  in
  let refusal_t = median (List.init trials (fun _ -> time_iters spec_iters refuse_once)) in
  Spec.Specialisation.clear spec_system;
  let spec_overhead = masked_t /. unmasked_t in
  let spec_max_overhead = 3.0 in
  Printf.printf
    "bench smoke: [e22] admitted dispatch %.1f ns unmasked vs %.1f ns under a %d-of-%d-gate table (%.2fx, required <= %.1fx); stripped-gate refusal %.1f ns\n"
    (ns_per unmasked_t spec_iters) (ns_per masked_t spec_iters)
    (Spec.Specialisation.gate_count spec)
    (Spec.Specialisation.full_count spec)
    spec_overhead spec_max_overhead (ns_per refusal_t spec_iters);
  if spec_overhead > spec_max_overhead then begin
    print_endline "bench smoke: FAIL — the gate mask made admitted dispatch too expensive";
    exit 1
  end;
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_e22_spec.json" in
  Printf.fprintf oc
    {|{"bench": "e22_spec", "unix_time": %.0f, "trials": %d, "iters": %d, "unmasked_dispatch_ns": %.2f, "masked_dispatch_ns": %.2f, "overhead_ratio": %.3f, "max_overhead_ratio": %.2f, "stripped_refusal_ns": %.2f, "gates_kept": %d, "gates_full": %d}
|}
    (Unix.time ()) trials spec_iters (ns_per unmasked_t spec_iters)
    (ns_per masked_t spec_iters) spec_overhead spec_max_overhead
    (ns_per refusal_t spec_iters)
    (Spec.Specialisation.gate_count spec)
    (Spec.Specialisation.full_count spec);
  close_out oc;
  print_endline "bench smoke: appended to BENCH_e22_spec.json";
  print_endline "bench smoke: OK"

let () =
  if Array.exists (fun a -> a = "--smoke") Sys.argv then smoke ()
  else begin
    print_endline "=== Bechamel micro-benchmarks (one per experiment mechanism) ===";
    let results = benchmark () in
    Obs.set_enabled true;
    print_bench_table results;
    print_newline ();
    print_endline "=== Experiment tables (E1..E18 + ablations) ===";
    print_newline ();
    print_string (Multics_experiments.Registry.render_all ());
    print_newline ()
  end
