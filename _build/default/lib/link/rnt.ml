(* The Reference Name Table: per-process bindings from reference names
   to segment numbers.

   Pre-removal this table lived inside the kernel as part of address
   space management; Bratt's project moved it to a private, user-ring
   structure.  The [placement] records where it lives, which determines
   whether its footprint counts as protected kernel data. *)

type placement = In_kernel | In_user_ring

let placement_name = function In_kernel -> "in-kernel" | In_user_ring -> "user-ring"

type t = {
  placement : placement;
  mutable bindings : (string * int) list;  (** name -> segno, most recent first *)
}

type error = Name_not_bound of string | Name_already_bound of string

let error_to_string = function
  | Name_not_bound name -> Printf.sprintf "reference name %S is not bound" name
  | Name_already_bound name -> Printf.sprintf "reference name %S is already bound" name

let create ~placement = { placement; bindings = [] }

let placement t = t.placement

let bind t ~name ~segno =
  if List.mem_assoc name t.bindings then Error (Name_already_bound name)
  else begin
    t.bindings <- (name, segno) :: t.bindings;
    Ok ()
  end

let lookup t ~name =
  match List.assoc_opt name t.bindings with
  | Some segno -> Ok segno
  | None -> Error (Name_not_bound name)

let unbind t ~name =
  if List.mem_assoc name t.bindings then begin
    t.bindings <- List.filter (fun (n, _) -> n <> name) t.bindings;
    Ok ()
  end
  else Error (Name_not_bound name)

let names_for_segno t ~segno =
  List.filter_map (fun (name, s) -> if s = segno then Some name else None) t.bindings

let binding_count t = List.length t.bindings

(* Each binding holds a 32-char name buffer plus the segno: 9 words. *)
let words_per_binding = 9

let protected_words t =
  match t.placement with
  | In_user_ring -> 0
  | In_kernel -> 16 + (binding_count t * words_per_binding)
