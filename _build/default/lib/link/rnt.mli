(** The per-process Reference Name Table, kernel-resident (pre-removal)
    or user-ring (post-removal). *)

type t

type placement = In_kernel | In_user_ring

val placement_name : placement -> string

type error = Name_not_bound of string | Name_already_bound of string

val error_to_string : error -> string

val create : placement:placement -> t
val placement : t -> placement

val bind : t -> name:string -> segno:int -> (unit, error) result
val lookup : t -> name:string -> (int, error) result
val unbind : t -> name:string -> (unit, error) result
val names_for_segno : t -> segno:int -> string list
val binding_count : t -> int

val words_per_binding : int

val protected_words : t -> int
(** 0 when user-ring: the structure is private, not kernel data. *)
