(* The dynamic linker, in both placements.

   Pre-removal, the linker was a supervisor mechanism: a link fault
   trapped into ring 0, where the linker parsed the (user-constructed!)
   faulting object segment, searched the file system, and snapped the
   link.  Janson's removal project (MAC-TR-132) showed that "linking
   procedures together across protection boundaries could be done
   without resort to a mechanism common to both protection regions" —
   the user-ring linker runs with the faulting process's own authority,
   so a malformed object segment can damage only its owner.

   The kernel placement carries two injectable flaws reproducing the
   historical vulnerabilities:

   - [Unvalidated_input]: the ring-0 parser trusts the object header;
     a malformation corrupts supervisor state (the "numerous
     accidents" the paper mentions);
   - [Supervisor_authority_walk]: the ring-0 search walks directories
     with supervisor authority instead of the faulting user's, so a
     link can name and reach a segment its owner could never see. *)

open Multics_access
open Multics_fs

type placement = In_kernel | In_user_ring

let placement_name = function
  | In_kernel -> "in-kernel (ring 0)"
  | In_user_ring -> "user-ring"

type flaw = Unvalidated_input | Supervisor_authority_walk

let flaw_to_string = function
  | Unvalidated_input -> "unvalidated object-segment input"
  | Supervisor_authority_walk -> "directory walk with supervisor authority"

type outcome =
  | Snapped of { target : Uid.t; offset : int; dirs_searched : int }
  | Already_snapped of { target : Uid.t; offset : int }
  | Segment_not_found of string
  | Definition_not_found of { seg : string; entry : string }
  | Malformed_rejected of Object_seg.malformation
      (** validated parser: refused before damage *)
  | Supervisor_damaged of Object_seg.malformation
      (** ring-0 parser consumed hostile input: a security incident *)
  | User_ring_fault of Object_seg.malformation
      (** user-ring parser crashed in the caller's own ring: contained *)
  | No_such_link of int
  | Not_an_object of Uid.t

let outcome_is_security_incident = function
  | Supervisor_damaged _ -> true
  | Snapped _ | Already_snapped _ | Segment_not_found _ | Definition_not_found _
  | Malformed_rejected _ | User_ring_fault _ | No_such_link _ | Not_an_object _ -> false

let outcome_to_string = function
  | Snapped { target; offset; dirs_searched } ->
      Fmt.str "snapped to %a offset %d (%d dirs searched)" Uid.pp target offset dirs_searched
  | Already_snapped { target; offset } -> Fmt.str "already snapped to %a offset %d" Uid.pp target offset
  | Segment_not_found name -> Printf.sprintf "segment %S not found" name
  | Definition_not_found { seg; entry } -> Printf.sprintf "no definition %s$%s" seg entry
  | Malformed_rejected m -> "rejected malformed input: " ^ Object_seg.malformation_to_string m
  | Supervisor_damaged m -> "SUPERVISOR DAMAGED by " ^ Object_seg.malformation_to_string m
  | User_ring_fault m -> "fault in user ring: " ^ Object_seg.malformation_to_string m
  | No_such_link i -> Printf.sprintf "no link %d" i
  | Not_an_object u -> Fmt.str "%a has no object structure" Uid.pp u

type t = {
  placement : placement;
  flaws : flaw list;
  store : Object_seg.Store.t;
  hierarchy : Hierarchy.t;
  mutable supervisor_damage_count : int;
  mutable links_snapped : int;
}

let create ?(flaws = []) ~placement ~store ~hierarchy () =
  { placement; flaws; store; hierarchy; supervisor_damage_count = 0; links_snapped = 0 }

let placement t = t.placement
let has_flaw t flaw = List.mem flaw t.flaws
let supervisor_damage_count t = t.supervisor_damage_count
let links_snapped t = t.links_snapped

(* Parsing the object segment.  A validated parser rejects
   malformations; the flawed ring-0 parser executes them. *)
let parse_outcome t obj =
  match Object_seg.malformation obj with
  | None -> None
  | Some m -> (
      match t.placement with
      | In_user_ring ->
          (* The parser runs in the faulting ring: the damage is the
             caller's own problem. *)
          Some (User_ring_fault m)
      | In_kernel ->
          if has_flaw t Unvalidated_input then begin
            t.supervisor_damage_count <- t.supervisor_damage_count + 1;
            Some (Supervisor_damaged m)
          end
          else Some (Malformed_rejected m))

(* The directory walk.  The correct walk searches with the faulting
   user's own authority; the flawed ring-0 walk uses the supervisor's
   unmediated view, so it finds (and will happily snap to) segments the
   user could never see. *)
let search_for_target t ~(subject : Policy.subject) ~rules ~name =
  if t.placement = In_kernel && has_flaw t Supervisor_authority_walk then begin
    let rec raw_walk consulted = function
      | [] -> (None, consulted)
      | dir :: rest -> (
          match Hierarchy.raw_lookup t.hierarchy ~dir ~name with
          | Some uid -> (Some uid, consulted + 1)
          | None -> raw_walk (consulted + 1) rest)
    in
    raw_walk 0 (Search_rules.dirs rules)
  end
  else Search_rules.search rules t.hierarchy ~subject ~name

(* Resolve link [link_index] of the object segment at [from_uid] on
   behalf of [subject], consulting [rules]. *)
let resolve_link t ~subject ~rules ~from_uid ~link_index =
  match Object_seg.Store.get t.store ~uid:from_uid with
  | None -> Not_an_object from_uid
  | Some obj -> (
      match parse_outcome t obj with
      | Some bad -> bad
      | None -> (
          match Object_seg.link obj link_index with
          | None -> No_such_link link_index
          | Some link -> (
              match link.Object_seg.snapped with
              | Some (target, offset) -> Already_snapped { target; offset }
              | None -> (
                  match
                    search_for_target t ~subject ~rules ~name:link.Object_seg.target_seg
                  with
                  | None, _ -> Segment_not_found link.Object_seg.target_seg
                  | Some target, dirs_searched -> (
                      match Object_seg.Store.get t.store ~uid:target with
                      | None ->
                          Definition_not_found
                            { seg = link.Object_seg.target_seg; entry = link.Object_seg.target_entry }
                      | Some target_obj -> (
                          match
                            Object_seg.find_definition target_obj link.Object_seg.target_entry
                          with
                          | None ->
                              Definition_not_found
                                {
                                  seg = link.Object_seg.target_seg;
                                  entry = link.Object_seg.target_entry;
                                }
                          | Some def ->
                              link.Object_seg.snapped <-
                                Some (target, def.Object_seg.def_offset);
                              t.links_snapped <- t.links_snapped + 1;
                              Snapped
                                {
                                  target;
                                  offset = def.Object_seg.def_offset;
                                  dirs_searched;
                                }))))))

(* Resolve every link in an object segment; returns the outcomes in
   link order. *)
let resolve_all t ~subject ~rules ~from_uid =
  match Object_seg.Store.get t.store ~uid:from_uid with
  | None -> [ Not_an_object from_uid ]
  | Some obj ->
      List.init (Object_seg.link_count obj) (fun link_index ->
          resolve_link t ~subject ~rules ~from_uid ~link_index)
