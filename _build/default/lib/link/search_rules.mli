(** Ordered directory search rules for symbolic name resolution. *)

open Multics_fs

type t

val empty : t
val add : t -> rule_name:string -> dir:Uid.t -> t
val of_dirs : (string * Uid.t) list -> t
val dirs : t -> Uid.t list
val rule_names : t -> string list
val length : t -> int

val search :
  t ->
  Hierarchy.t ->
  subject:Multics_access.Policy.subject ->
  name:string ->
  Uid.t option * int
(** First match under the subject's own authority, plus the number of
    directories consulted. *)
