(* Search rules: the ordered list of directories the linker consults to
   turn a symbolic segment name into a branch. *)

open Multics_fs

type rule = { rule_name : string; dir : Uid.t }

type t = rule list

let empty = []

let add t ~rule_name ~dir = t @ [ { rule_name; dir } ]

let of_dirs dirs = List.map (fun (rule_name, dir) -> { rule_name; dir }) dirs

let dirs t = List.map (fun r -> r.dir) t

let rule_names t = List.map (fun r -> r.rule_name) t

let length = List.length

(* Search under the given subject's own authority.  Returns the first
   directory whose lookup succeeds, along with how many directories
   were consulted (for cost accounting). *)
let search t hierarchy ~subject ~name =
  let rec loop consulted = function
    | [] -> (None, consulted)
    | rule :: rest -> (
        match Hierarchy.lookup hierarchy ~subject ~dir:rule.dir ~name with
        | Ok uid -> (Some uid, consulted + 1)
        | Error _ -> loop (consulted + 1) rest)
  in
  loop 0 t
