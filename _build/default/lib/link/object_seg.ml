(* Object segments: the linker's input format.

   An object segment carries executable text, a definition section
   (exported entry points) and a linkage section (symbolic references
   to [segname$entry] pairs, "snapped" to direct addresses on first
   use).  Because users construct object segments themselves, the
   format admits deliberate malformations — the paper singles the
   linker out precisely because it "[has] to accept user-constructed
   code segments as input data", with a high chance of a maliciously
   malstructured argument "causing the linker to malfunction while
   executing in the supervisor". *)

open Multics_fs

type definition = { def_name : string; def_offset : int }

type link = {
  target_seg : string;  (** symbolic segment name *)
  target_entry : string;  (** symbolic entry name *)
  mutable snapped : (Uid.t * int) option;
}

type malformation =
  | Bad_definition_offset of int
      (** a definition points outside the segment's text *)
  | Cyclic_definition_chain  (** the definition list loops forever *)
  | Oversized_link_count of int
      (** the header claims more links than the section holds: a
          parser that trusts the count overruns the section *)

let malformation_to_string = function
  | Bad_definition_offset off -> Printf.sprintf "definition offset %d outside text" off
  | Cyclic_definition_chain -> "cyclic definition chain"
  | Oversized_link_count n -> Printf.sprintf "header claims %d links" n

type t = {
  text_words : int;
  definitions : definition list;
  links : link array;
  malformation : malformation option;
}

let make ?(malformation = None) ~text_words ~definitions ~links () =
  if text_words < 0 then invalid_arg "Object_seg.make: negative text size";
  {
    text_words;
    definitions;
    links =
      Array.of_list
        (List.map (fun (target_seg, target_entry) -> { target_seg; target_entry; snapped = None }) links);
    malformation;
  }

let text_words t = t.text_words
let definitions t = t.definitions
let link_count t = Array.length t.links
let malformation t = t.malformation

let link t index =
  if index < 0 || index >= Array.length t.links then None else Some t.links.(index)

let find_definition t name = List.find_opt (fun d -> d.def_name = name) t.definitions

let snapped_links t =
  Array.to_list t.links |> List.filter (fun l -> l.snapped <> None) |> List.length

let unsnap_all t = Array.iter (fun l -> l.snapped <- None) t.links

(* ----- The object store: structured contents per segment uid ----- *)

module Store = struct
  type obj = t

  type t = (int, obj) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let put store ~uid obj = Hashtbl.replace store (Uid.to_int uid) obj

  let get store ~uid = Hashtbl.find_opt store (Uid.to_int uid)

  let remove store ~uid = Hashtbl.remove store (Uid.to_int uid)
end
