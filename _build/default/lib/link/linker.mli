(** The dynamic linker, placeable in the kernel (pre-removal, with its
    historical vulnerabilities injectable) or in the user ring
    (post-removal: malformed input damages only its owner). *)

open Multics_access
open Multics_fs

type placement = In_kernel | In_user_ring

val placement_name : placement -> string

type flaw =
  | Unvalidated_input
      (** the ring-0 parser trusts user-constructed object headers *)
  | Supervisor_authority_walk
      (** the ring-0 search runs with supervisor, not user, authority *)

val flaw_to_string : flaw -> string

type outcome =
  | Snapped of { target : Uid.t; offset : int; dirs_searched : int }
  | Already_snapped of { target : Uid.t; offset : int }
  | Segment_not_found of string
  | Definition_not_found of { seg : string; entry : string }
  | Malformed_rejected of Object_seg.malformation
  | Supervisor_damaged of Object_seg.malformation
  | User_ring_fault of Object_seg.malformation
  | No_such_link of int
  | Not_an_object of Uid.t

val outcome_is_security_incident : outcome -> bool
(** True exactly for [Supervisor_damaged]. *)

val outcome_to_string : outcome -> string

type t

val create :
  ?flaws:flaw list ->
  placement:placement ->
  store:Object_seg.Store.t ->
  hierarchy:Hierarchy.t ->
  unit ->
  t

val placement : t -> placement
val has_flaw : t -> flaw -> bool

val supervisor_damage_count : t -> int
(** How many times hostile input damaged ring 0. *)

val links_snapped : t -> int

val resolve_link :
  t ->
  subject:Policy.subject ->
  rules:Search_rules.t ->
  from_uid:Uid.t ->
  link_index:int ->
  outcome

val resolve_all :
  t -> subject:Policy.subject -> rules:Search_rules.t -> from_uid:Uid.t -> outcome list
