(** Object segments: text + definitions + symbolic links, possibly
    deliberately malformed (the linker's attack surface). *)

open Multics_fs

type definition = { def_name : string; def_offset : int }

type link = {
  target_seg : string;
  target_entry : string;
  mutable snapped : (Uid.t * int) option;
}

type malformation =
  | Bad_definition_offset of int
  | Cyclic_definition_chain
  | Oversized_link_count of int

val malformation_to_string : malformation -> string

type t

val make :
  ?malformation:malformation option ->
  text_words:int ->
  definitions:definition list ->
  links:(string * string) list ->
  unit ->
  t
(** [links] are [(segment name, entry name)] pairs, initially
    unsnapped. *)

val text_words : t -> int
val definitions : t -> definition list
val link_count : t -> int
val malformation : t -> malformation option
val link : t -> int -> link option
val find_definition : t -> string -> definition option
val snapped_links : t -> int
val unsnap_all : t -> unit

(** Structured contents per segment uid. *)
module Store : sig
  type obj = t
  type t

  val create : unit -> t
  val put : t -> uid:Uid.t -> obj -> unit
  val get : t -> uid:Uid.t -> obj option
  val remove : t -> uid:Uid.t -> unit
end
