lib/link/search_rules.ml: Hierarchy List Multics_fs Uid
