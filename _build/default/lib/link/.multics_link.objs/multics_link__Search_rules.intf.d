lib/link/search_rules.mli: Hierarchy Multics_access Multics_fs Uid
