lib/link/rnt.ml: List Printf
