lib/link/object_seg.mli: Multics_fs Uid
