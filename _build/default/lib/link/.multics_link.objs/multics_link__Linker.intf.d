lib/link/linker.mli: Hierarchy Multics_access Multics_fs Object_seg Policy Search_rules Uid
