lib/link/object_seg.ml: Array Hashtbl List Multics_fs Printf Uid
