lib/link/rnt.mli:
