lib/link/linker.ml: Fmt Hierarchy List Multics_access Multics_fs Object_seg Policy Printf Search_rules Uid
