(* External I/O device kinds.

   The simplification experiment (E12) replaces the five per-device
   kernel mechanisms with the single ARPA network attachment: "this
   would remove from the kernel a large bulk of special mechanisms for
   managing the various I/O devices, leaving behind a single mechanism
   for managing the network attachment". *)

type kind = Terminal | Tape | Card_reader | Card_punch | Printer | Network_attachment

let name = function
  | Terminal -> "terminal"
  | Tape -> "tape"
  | Card_reader -> "card-reader"
  | Card_punch -> "card-punch"
  | Printer -> "printer"
  | Network_attachment -> "network-attachment"

let all_legacy = [ Terminal; Tape; Card_reader; Card_punch; Printer ]

let all = all_legacy @ [ Network_attachment ]

(* Per-interrupt service work for each device's handler, in cycles.
   Character devices are cheap per event; block devices cost more. *)
let service_cycles = function
  | Terminal -> 800
  | Tape -> 3_000
  | Card_reader -> 1_200
  | Card_punch -> 1_200
  | Printer -> 1_500
  | Network_attachment -> 1_000

let equal a b = name a = name b

let pp ppf t = Fmt.string ppf (name t)
