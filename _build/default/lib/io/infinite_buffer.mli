(** The VM-backed "infinite" input buffer: append-only, pages demanded
    and returned as the pointers move, never loses a message. *)

type t

val create : ?messages_per_page:int -> unit -> t

val occupancy : t -> int
val resident_pages : t -> int

val write : t -> int -> unit
val read : t -> int option

val written : t -> int
val messages_read : t -> int

val pages_demanded : t -> int
val pages_returned : t -> int
val peak_resident_pages : t -> int

val mechanism_statements : int
(** Complexity proxy for the inventory comparison. *)
