lib/io/infinite_buffer.mli:
