lib/io/network.ml: Circular_buffer Infinite_buffer Int List Multics_machine Multics_proc Multics_util Printf Sim
