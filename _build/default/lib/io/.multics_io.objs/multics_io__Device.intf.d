lib/io/device.mli: Format
