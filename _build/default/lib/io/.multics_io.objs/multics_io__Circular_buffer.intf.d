lib/io/circular_buffer.mli:
