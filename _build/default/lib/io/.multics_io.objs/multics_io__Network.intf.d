lib/io/network.mli: Circular_buffer Infinite_buffer
