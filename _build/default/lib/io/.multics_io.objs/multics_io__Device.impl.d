lib/io/device.ml: Fmt
