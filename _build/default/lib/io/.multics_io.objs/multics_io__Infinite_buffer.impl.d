lib/io/infinite_buffer.ml: Array Hashtbl
