lib/io/circular_buffer.ml: Array
