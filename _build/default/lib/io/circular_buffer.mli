(** The old fixed circular input buffer, with its lapping failure mode:
    a write into a full ring destroys the oldest unread message. *)

type t

val create : capacity:int -> t
val capacity : t -> int

val occupancy : t -> int
(** Unread messages currently held. *)

val write : t -> int -> unit
val read : t -> int option

val written : t -> int
val messages_read : t -> int

val overwritten : t -> int
(** Unread messages destroyed by the writer lapping the reader. *)

val mechanism_statements : int
(** Complexity proxy for the inventory comparison. *)
