(** Bursty network-input workload driving either buffering strategy
    against a fixed-rate consumer (experiment E7). *)

type strategy = Circular of Circular_buffer.t | Infinite of Infinite_buffer.t

val strategy_name : strategy -> string

type result = {
  strategy : string;
  offered : int;
  delivered : int;
  lost : int;
  peak_occupancy : int;
  peak_pages : int;
  mechanism_statements : int;
}

type workload = {
  bursts : int;
  burst_gap : int;
  intra_burst_gap : int;
  burst_continue_num : int;
  burst_continue_den : int;
  burst_cap : int;
  consume_cycles : int;
}

val default_workload : workload

val run : ?seed:int -> ?workload:workload -> strategy -> result
(** Deterministic for a given seed and workload. *)
