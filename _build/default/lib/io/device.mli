(** External I/O device kinds and their handler costs. *)

type kind = Terminal | Tape | Card_reader | Card_punch | Printer | Network_attachment

val name : kind -> string

val all_legacy : kind list
(** The five device mechanisms the network attachment replaces. *)

val all : kind list

val service_cycles : kind -> int
(** Interrupt-handler service work per event. *)

val equal : kind -> kind -> bool
val pp : Format.formatter -> kind -> unit
