(* Identity of a page: which segment, which page within it.

   Segments are identified here by their file-system unique id (an
   int), not by per-process segment numbers, because a page has one
   identity however many address spaces map it. *)

type t = { seg_uid : int; page_no : int }

let make ~seg_uid ~page_no =
  if page_no < 0 then invalid_arg "Page_id.make: negative page number";
  { seg_uid; page_no }

let seg_uid t = t.seg_uid
let page_no t = t.page_no

let compare a b =
  match Int.compare a.seg_uid b.seg_uid with
  | 0 -> Int.compare a.page_no b.page_no
  | c -> c

let equal a b = compare a b = 0

let hash t = (t.seg_uid * 8191) + t.page_no

let pp ppf t = Fmt.pf ppf "seg%d.p%d" t.seg_uid t.page_no
