(** A physical block: a page-sized slot at one hierarchy level. *)

type t

val make : level:Level.t -> index:int -> t
val level : t -> Level.t
val index : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
