(** Physical memory: block pools per level, page occupancy, usage bits,
    and the transfer engine.

    Transfers return their cycle cost rather than advancing a clock, so
    page traffic is charged to whichever simulated process performed
    it. *)

type t

type error =
  | No_free_block of Level.t
  | Page_not_resident of Page_id.t
  | Page_already_resident of Page_id.t * Block.t

val error_to_string : error -> string

val create : cost:Multics_machine.Cost.t -> core:int -> bulk:int -> disk:int -> t
(** Capacities are block counts per level; all must be positive. *)

val capacity : t -> Level.t -> int
val free_count : t -> Level.t -> int
val in_use : t -> Level.t -> int

val location : t -> Page_id.t -> Block.t option
val occupant : t -> Block.t -> Page_id.t option

val place : t -> Page_id.t -> level:Level.t -> (Block.t, error) result
(** Bring a page into the hierarchy at the given level (e.g. a fresh
    zero page into core, or a page known to live on disk). *)

val evict_page : t -> Page_id.t -> (Block.t, error) result
(** Remove a page from the hierarchy entirely (segment deletion),
    freeing the block it occupied. *)

val transfer : t -> Page_id.t -> dest:Level.t -> (Block.t * int, error) result
(** Move a resident page to a free block at [dest].  Returns the new
    block and the cycle cost to charge.  Moving to its current level
    costs 0. *)

val touch : t -> Page_id.t -> unit
(** Set the used bit (core-resident pages only; no-op otherwise). *)

val dirty : t -> Page_id.t -> unit
(** Set used + modified bits. *)

val clear_used : t -> Page_id.t -> unit

val clean : t -> Page_id.t -> unit
(** Clear the modified bit (backup copied the page out). *)

val frame_usage : t -> Page_id.t -> (bool * bool) option
(** [(used, modified)] for a core-resident page. *)

val core_residents : t -> Page_id.t list
val residents : t -> Level.t -> Page_id.t list

val counters : t -> Multics_util.Stats.Counters.t
(** Traffic counters: [place_*], [transfer_<src>_to_<dst>]. *)

val check_conservation : t -> bool
(** Structural invariant: every page at exactly one claimed frame, free
    lists consistent.  Used by tests and assertions. *)
