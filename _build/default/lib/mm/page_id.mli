(** Page identity: (segment unique id, page number). *)

type t

val make : seg_uid:int -> page_no:int -> t
(** Raises [Invalid_argument] on a negative page number. *)

val seg_uid : t -> int
val page_no : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
