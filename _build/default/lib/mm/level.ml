(* The three levels of the Multics memory hierarchy.

   Pages live in exactly one of: primary memory (core), the bulk store
   (a fast drum/paging device), or disk.  The paper's page-control
   redesign (one process keeping core blocks free, another keeping
   bulk-store blocks free) is expressed entirely in terms of movements
   between these levels. *)

type t = Core | Bulk | Disk

let name = function Core -> "core" | Bulk -> "bulk" | Disk -> "disk"

let all = [ Core; Bulk; Disk ]

let depth = function Core -> 0 | Bulk -> 1 | Disk -> 2

let compare a b = Int.compare (depth a) (depth b)

let equal a b = compare a b = 0

(* The next level outward — where an evicted page goes. *)
let eviction_target = function Core -> Some Bulk | Bulk -> Some Disk | Disk -> None

let pp ppf t = Fmt.string ppf (name t)
