(* The physical memory substrate: block pools at each level, page
   occupancy, usage bits, and the transfer engine.

   The module is deliberately passive about time: a [transfer] returns
   the cycle cost of the move and lets the initiating (simulated)
   process consume it, so page traffic is charged to whichever process
   performed it — exactly the distinction the sequential-vs-parallel
   page-control experiment measures. *)

module Page_map = Hashtbl.Make (struct
  type t = Page_id.t

  let equal = Page_id.equal
  let hash = Page_id.hash
end)

type frame = {
  mutable occupant : Page_id.t option;
  mutable used : bool;  (** referenced since last sweep (core only) *)
  mutable modified : bool;  (** dirtied since arrival (core only) *)
}

type pool = {
  level : Level.t;
  frames : frame array;
  mutable free : int list;  (** indices of free frames *)
  mutable free_count : int;
}

type error =
  | No_free_block of Level.t
  | Page_not_resident of Page_id.t
  | Page_already_resident of Page_id.t * Block.t

type t = {
  cost : Multics_machine.Cost.t;
  pools : pool array;  (** indexed by Level.depth *)
  locations : Block.t Page_map.t;
  counters : Multics_util.Stats.Counters.t;
}

let error_to_string = function
  | No_free_block level -> "no free block at level " ^ Level.name level
  | Page_not_resident page -> Fmt.str "page %a is not resident" Page_id.pp page
  | Page_already_resident (page, block) ->
      Fmt.str "page %a already resident at %a" Page_id.pp page Block.pp block

let make_pool level capacity =
  if capacity <= 0 then invalid_arg "Memory.create: capacity must be positive";
  {
    level;
    frames = Array.init capacity (fun _ -> { occupant = None; used = false; modified = false });
    free = List.init capacity (fun i -> i);
    free_count = capacity;
  }

let create ~cost ~core ~bulk ~disk =
  {
    cost;
    pools = [| make_pool Level.Core core; make_pool Level.Bulk bulk; make_pool Level.Disk disk |];
    locations = Page_map.create 1024;
    counters = Multics_util.Stats.Counters.create ();
  }

let pool t level = t.pools.(Level.depth level)

let capacity t level = Array.length (pool t level).frames

let free_count t level = (pool t level).free_count

let in_use t level = capacity t level - free_count t level

let location t page = Page_map.find_opt t.locations page

let occupant t block = (pool t (Block.level block)).frames.(Block.index block).occupant

let counters t = t.counters

(* ----- Allocation ----- *)

let take_free p =
  match p.free with
  | [] -> None
  | index :: rest ->
      p.free <- rest;
      p.free_count <- p.free_count - 1;
      Some index

let put_free p index =
  p.free <- index :: p.free;
  p.free_count <- p.free_count + 1

let place t page ~level =
  match location t page with
  | Some block -> Error (Page_already_resident (page, block))
  | None -> (
      let p = pool t level in
      match take_free p with
      | None -> Error (No_free_block level)
      | Some index ->
          let frame = p.frames.(index) in
          frame.occupant <- Some page;
          frame.used <- false;
          frame.modified <- false;
          let block = Block.make ~level ~index in
          Page_map.replace t.locations page block;
          Multics_util.Stats.Counters.incr t.counters ("place_" ^ Level.name level);
          Ok block)

let evict_page t page =
  match location t page with
  | None -> Error (Page_not_resident page)
  | Some block ->
      let p = pool t (Block.level block) in
      let frame = p.frames.(Block.index block) in
      frame.occupant <- None;
      frame.used <- false;
      frame.modified <- false;
      put_free p (Block.index block);
      Page_map.remove t.locations page;
      Ok block

(* ----- Transfer ----- *)

let transfer_cost t ~from_level ~to_level =
  let involves_disk = Level.equal from_level Level.Disk || Level.equal to_level Level.Disk in
  if involves_disk then t.cost.Multics_machine.Cost.disk_transfer
  else t.cost.Multics_machine.Cost.core_transfer

(* Move a page to [dest]; returns the new block and the cycle cost the
   caller must charge to the moving process. *)
let transfer t page ~dest =
  match location t page with
  | None -> Error (Page_not_resident page)
  | Some src_block ->
      let src_level = Block.level src_block in
      if Level.equal src_level dest then Ok (src_block, 0)
      else begin
        let dest_pool = pool t dest in
        match take_free dest_pool with
        | None -> Error (No_free_block dest)
        | Some index ->
            let src_pool = pool t src_level in
            let src_frame = src_pool.frames.(Block.index src_block) in
            src_frame.occupant <- None;
            src_frame.used <- false;
            src_frame.modified <- false;
            put_free src_pool (Block.index src_block);
            let dest_frame = dest_pool.frames.(index) in
            dest_frame.occupant <- Some page;
            dest_frame.used <- false;
            dest_frame.modified <- false;
            let dest_block = Block.make ~level:dest ~index in
            Page_map.replace t.locations page dest_block;
            let counter =
              Printf.sprintf "transfer_%s_to_%s" (Level.name src_level) (Level.name dest)
            in
            Multics_util.Stats.Counters.incr t.counters counter;
            Ok (dest_block, transfer_cost t ~from_level:src_level ~to_level:dest)
      end

(* ----- Usage bits (core frames) ----- *)

let with_core_frame t page f =
  match location t page with
  | Some block when Level.equal (Block.level block) Level.Core ->
      f (pool t Level.Core).frames.(Block.index block)
  | Some _ | None -> ()

let touch t page = with_core_frame t page (fun frame -> frame.used <- true)

let dirty t page =
  with_core_frame t page (fun frame ->
      frame.used <- true;
      frame.modified <- true)

let clear_used t page = with_core_frame t page (fun frame -> frame.used <- false)

(* Mark a page clean (after backup has copied it out). *)
let clean t page = with_core_frame t page (fun frame -> frame.modified <- false)

let frame_usage t page =
  match location t page with
  | Some block when Level.equal (Block.level block) Level.Core ->
      let frame = (pool t Level.Core).frames.(Block.index block) in
      Some (frame.used, frame.modified)
  | Some _ | None -> None

let core_residents t =
  let p = pool t Level.Core in
  Array.to_list p.frames |> List.filter_map (fun frame -> frame.occupant)

let residents t level =
  let p = pool t level in
  Array.to_list p.frames |> List.filter_map (fun frame -> frame.occupant)

(* ----- Invariants ----- *)

(* Conservation: every page in the location map occupies exactly the
   frame it claims; every occupied frame is in the map; free counts
   agree with frame state. *)
let check_conservation t =
  let ok = ref true in
  Array.iter
    (fun p ->
      let occupied = ref 0 in
      Array.iteri
        (fun index frame ->
          match frame.occupant with
          | None -> ()
          | Some page -> (
              incr occupied;
              match location t page with
              | Some block ->
                  if not (Block.equal block (Block.make ~level:p.level ~index)) then ok := false
              | None -> ok := false))
        p.frames;
      if p.free_count <> Array.length p.frames - !occupied then ok := false;
      if List.length p.free <> p.free_count then ok := false)
    t.pools;
  Page_map.iter
    (fun page block ->
      match occupant t block with
      | Some occupant_page -> if not (Page_id.equal occupant_page page) then ok := false
      | None -> ok := false)
    t.locations;
  !ok
