lib/mm/page_id.mli: Format
