lib/mm/block.ml: Fmt Int Level
