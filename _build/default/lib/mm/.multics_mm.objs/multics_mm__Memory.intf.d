lib/mm/memory.mli: Block Level Multics_machine Multics_util Page_id
