lib/mm/level.ml: Fmt Int
