lib/mm/memory.ml: Array Block Fmt Hashtbl Level List Multics_machine Multics_util Page_id Printf
