lib/mm/level.mli: Format
