lib/mm/page_id.ml: Fmt Int
