lib/mm/block.mli: Format Level
