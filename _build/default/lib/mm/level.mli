(** The three levels of the memory hierarchy: core, bulk store, disk. *)

type t = Core | Bulk | Disk

val name : t -> string
val all : t list

val depth : t -> int
(** 0 for core, 1 for bulk, 2 for disk. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val eviction_target : t -> t option
(** Where an evicted page goes: core -> bulk, bulk -> disk, disk ->
    nowhere. *)

val pp : Format.formatter -> t -> unit
