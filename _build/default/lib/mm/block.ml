(* A physical block: one page-sized slot at one level of the memory
   hierarchy. *)

type t = { level : Level.t; index : int }

let make ~level ~index =
  if index < 0 then invalid_arg "Block.make: negative index";
  { level; index }

let level t = t.level
let index t = t.index

let compare a b =
  match Level.compare a.level b.level with 0 -> Int.compare a.index b.index | c -> c

let equal a b = compare a b = 0

let pp ppf t = Fmt.pf ppf "%a#%d" Level.pp t.level t.index
