lib/util/table.mli:
