lib/util/prng.mli:
