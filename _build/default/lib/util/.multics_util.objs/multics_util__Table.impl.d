lib/util/table.ml: Buffer Char Float List Printf String
