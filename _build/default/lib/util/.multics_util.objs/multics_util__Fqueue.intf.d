lib/util/fqueue.mli:
