lib/util/stats.ml: Array Float Fmt Hashtbl List String
