(** Purely functional FIFO queue. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> 'a -> 'a t

val pop : 'a t -> ('a * 'a t) option
(** [None] on the empty queue. *)

val of_list : 'a list -> 'a t
(** Head of the list is the front of the queue. *)

val to_list : 'a t -> 'a list
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
