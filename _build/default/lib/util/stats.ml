(* Small descriptive-statistics helpers used by the experiment harness
   to summarize latency and count samples. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

let empty_summary =
  { count = 0; mean = 0.0; stddev = 0.0; min = 0.0; p50 = 0.0; p90 = 0.0; p99 = 0.0; max = 0.0 }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then sorted.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
    end
  end

let summarize samples =
  let n = List.length samples in
  if n = 0 then empty_summary
  else begin
    let arr = Array.of_list samples in
    Array.sort compare arr;
    let total = Array.fold_left ( +. ) 0.0 arr in
    let mean = total /. float_of_int n in
    let sq_dev = Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 arr in
    let stddev = if n > 1 then sqrt (sq_dev /. float_of_int (n - 1)) else 0.0 in
    {
      count = n;
      mean;
      stddev;
      min = arr.(0);
      p50 = percentile arr 0.50;
      p90 = percentile arr 0.90;
      p99 = percentile arr 0.99;
      max = arr.(n - 1);
    }
  end

let summarize_ints samples = summarize (List.map float_of_int samples)

let mean samples = (summarize samples).mean

let ratio ~num ~den = if den = 0.0 then Float.nan else num /. den

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.1f sd=%.1f min=%.0f p50=%.0f p90=%.0f p99=%.0f max=%.0f" s.count
    s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max

(* A counter bag: named integer counters, used for event accounting in
   the simulators. *)
module Counters = struct
  type t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let incr ?(by = 1) t name =
    match Hashtbl.find_opt t name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add t name (ref by)

  let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

  let to_alist t =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
end
