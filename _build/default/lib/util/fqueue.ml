(* Purely functional FIFO queue (two-list representation).

   Schedulers and event channels keep their waiter queues as values so
   that simulation snapshots can be taken without defensive copying. *)

type 'a t = { front : 'a list; back : 'a list; length : int }

let empty = { front = []; back = []; length = 0 }

let is_empty t = t.length = 0

let length t = t.length

let push t x = { t with back = x :: t.back; length = t.length + 1 }

let pop t =
  match t.front with
  | x :: front -> Some (x, { t with front; length = t.length - 1 })
  | [] -> (
      match List.rev t.back with
      | [] -> None
      | x :: front -> Some (x, { front; back = []; length = t.length - 1 }))

let of_list xs = List.fold_left push empty xs

let to_list t = t.front @ List.rev t.back

let fold f acc t = List.fold_left f acc (to_list t)
