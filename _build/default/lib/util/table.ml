(* Plain-text table rendering for experiment reports.

   The experiment harness prints the same rows that EXPERIMENTS.md
   records, so the renderer favours alignment and stable layout over
   decoration. *)

type align = Left | Right

type t = {
  title : string;
  columns : (string * align) list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: cell count does not match column count";
  t.rows <- cells :: t.rows

let add_int_row t cells = add_row t (List.map string_of_int cells)

let utf8_length s =
  (* Column widths must count characters, not bytes, or multibyte
     glyphs (e.g. the multiplication sign) misalign every rule. *)
  let n = ref 0 in
  String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) s;
  !n

let pad align width s =
  let len = utf8_length s in
  if len >= width then s
  else begin
    let fill = String.make (width - len) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render t =
  let rows = List.rev t.rows in
  let headers = List.map fst t.columns in
  let widths =
    List.mapi
      (fun i header ->
        let cell_width row = utf8_length (List.nth row i) in
        List.fold_left (fun acc row -> max acc (cell_width row)) (utf8_length header) rows)
      headers
  in
  let buf = Buffer.create 256 in
  let rule () =
    List.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let emit_row cells =
    List.iteri
      (fun i cell ->
        let _, align = List.nth t.columns i in
        Buffer.add_string buf ("| " ^ pad align (List.nth widths i) cell ^ " "))
      cells;
    Buffer.add_string buf "|\n"
  in
  Buffer.add_string buf (t.title ^ "\n");
  rule ();
  emit_row headers;
  rule ();
  List.iter emit_row rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)

let fmt_float ?(decimals = 1) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" decimals x

let fmt_pct x = if Float.is_nan x then "-" else Printf.sprintf "%.1f%%" (100.0 *. x)

let fmt_ratio x = if Float.is_nan x then "-" else Printf.sprintf "%.2fx" x
