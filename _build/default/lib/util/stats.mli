(** Descriptive statistics for experiment reports. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation *)
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

val empty_summary : summary

val summarize : float list -> summary
(** Full summary of a sample list; [empty_summary] for []. *)

val summarize_ints : int list -> summary

val mean : float list -> float

val ratio : num:float -> den:float -> float
(** [num /. den], [nan] when [den = 0.]. *)

val pp_summary : Format.formatter -> summary -> unit

(** Named integer counters for event accounting. *)
module Counters : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> string -> unit
  val get : t -> string -> int

  val to_alist : t -> (string * int) list
  (** Sorted by counter name. *)
end
