(** Plain-text table rendering for experiment reports. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the number of cells does not match the
    number of columns. *)

val add_int_row : t -> int list -> unit

val render : t -> string

val print : t -> unit

val fmt_float : ?decimals:int -> float -> string
(** ["-"] for [nan]. *)

val fmt_pct : float -> string
(** [0.125] renders as ["12.5%"]. *)

val fmt_ratio : float -> string
(** [2.0] renders as ["2.00x"]. *)
