(* E5 — the supervisor-boundary placement sweep: the paper's A/B
   call-flurry example.  The 645 column explains why A was pulled into
   the supervisor; the 6180 column shows the pressure removed, enabling
   the removal projects. *)

open Multics_kernel

let id = "E5"

let title = "Boundary placement overhead vs call-flurry size (A calls B k times)"

let paper_claim =
  "there is a clear performance cost in placing the supervisor boundary between A and B \
   [on the 645] ... [on the 6180] the performance penalty associated with supervisor calls \
   has been removed"

let inner_calls_list = [ 0; 1; 2; 5; 10; 20; 50; 100 ]

let measure () = Boundary.sweep ~inner_calls_list ()

let table () =
  let open Multics_util.Table in
  let t =
    create
      ~title:(Printf.sprintf "%s: %s" id title)
      ~columns:
        [
          ("inner calls k", Right);
          ("H645 overhead", Right);
          ("H6180 overhead", Right);
        ]
  in
  List.iter
    (fun (p : Boundary.sweep_point) ->
      add_row t
        [
          string_of_int p.Boundary.inner_calls;
          fmt_ratio p.Boundary.h645_overhead;
          fmt_ratio p.Boundary.h6180_overhead;
        ])
    (measure ());
  t

let render () = Multics_util.Table.render (table ())
