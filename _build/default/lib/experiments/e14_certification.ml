(* E14 — certification by systematic technique.

   "Such a kernel also may be susceptible to certification through more
   systematic program verification techniques."  The reproduction's
   reference-monitor decision procedures are finite and small; this
   experiment checks every one exhaustively against an independent
   declarative specification, and prints the review activity's
   maintained flaw list alongside. *)

open Multics_audit

let id = "E14"

let title = "Certification: exhaustive checks of the reference monitor + the flaw list"

let paper_claim =
  "a kernel small and well-structured enough for manual audit may also be susceptible to \
   certification through more systematic program verification techniques; the review \
   activity maintains a list of all known flaws, each analyzed and repaired"

let verification_table () =
  let open Multics_util.Table in
  let t =
    create
      ~title:(Printf.sprintf "%s: exhaustive specification checks" id)
      ~columns:
        [ ("decision procedure vs specification", Left); ("cases", Right); ("mismatches", Right) ]
  in
  List.iter
    (fun (c : Verifier.check) ->
      add_row t
        [
          c.Verifier.check_name;
          string_of_int c.Verifier.cases;
          (match c.Verifier.detail with
          | None -> string_of_int c.Verifier.mismatches
          | Some d -> Printf.sprintf "%d (first: %s)" c.Verifier.mismatches d);
        ])
    (Verifier.run_all ());
  t

let flaw_table () =
  let open Multics_util.Table in
  let t =
    create ~title:"E14b: the maintained flaw list (review activity)"
      ~columns:
        [
          ("flaw", Left);
          ("status", Left);
          ("isolated", Right);
          ("demonstrated by", Left);
        ]
  in
  List.iter
    (fun (e : Flaw_registry.entry) ->
      add_row t
        [
          e.Flaw_registry.flaw_name;
          Flaw_registry.status_name e.Flaw_registry.status;
          (if e.Flaw_registry.isolated then "yes" else "NO");
          e.Flaw_registry.demonstrated_by;
        ])
    Flaw_registry.entries;
  t

let render () =
  let checks = Verifier.run_all () in
  let summary =
    Printf.sprintf "verdict: %d cases checked, %s; flaw list: %d entries, %s\n"
      (Verifier.total_cases checks)
      (if Verifier.all_passed checks then "ALL MATCH the specifications"
       else "SPECIFICATION MISMATCHES FOUND")
      Flaw_registry.count
      (if Flaw_registry.all_isolated () then
         "all isolated and easily repaired (no major design flaws)"
       else "NON-ISOLATED FLAWS PRESENT")
  in
  Multics_util.Table.render (verification_table ())
  ^ "\n"
  ^ Multics_util.Table.render (flaw_table ())
  ^ "\n" ^ summary
