(* E11 — the penetration matrix: the Linde-catalog corpus against the
   flawed 645 baseline, the reviewed supervisor, and the final security
   kernel.

   The paper's review activity found that "all of the flaws uncovered
   ... are isolated and easily repaired"; the removal activities then
   make whole attack classes structurally impossible (the user-ring
   linker cannot damage the supervisor however hostile its input). *)

open Multics_audit
open Multics_kernel

let id = "E11"

let title = "Penetration corpus vs configuration"

let paper_claim =
  "in all general-purpose systems confronted, a wily user can construct a program that can \
   obtain unauthorized access; the engineered kernel refuses or contains every attack"

let configs =
  [ Config.baseline_645; Config.hardware_rings; Config.kernel_6180 ]

let measure () = List.map (fun config -> (config, Pentest.run_corpus config)) configs

let table () =
  let results = measure () in
  let open Multics_util.Table in
  let t =
    create
      ~title:(Printf.sprintf "%s: %s" id title)
      ~columns:
        ([ ("attack (Linde category)", Left) ]
        @ List.map (fun (config, _) -> (config.Config.name, Left)) results)
  in
  List.iter
    (fun attack ->
      let cells =
        List.map
          (fun (_, outcomes) ->
            match
              List.find_opt
                (fun (a, _) -> a.Pentest.attack_name = attack.Pentest.attack_name)
                outcomes
            with
            | Some (_, outcome) -> Pentest.outcome_name outcome
            | None -> "-")
          results
      in
      add_row t
        ((Printf.sprintf "%s (%s)" attack.Pentest.attack_name
            (Pentest.category_name attack.Pentest.linde))
        :: cells))
    Pentest.corpus;
  let summary_cells =
    List.map
      (fun (_, outcomes) ->
        let s = Pentest.summarize outcomes in
        Printf.sprintf "%d violated / %d refused / %d contained" s.Pentest.violated
          s.Pentest.refused s.Pentest.contained)
      results
  in
  add_row t ("TOTAL" :: summary_cells);
  t

let render () = Multics_util.Table.render (table ())
