(* E6 — page control, sequential vs parallel kernel processes.

   "The path taken by a user process on a page fault is greatly
   simplified.  This process can just wait until a primary memory block
   is free and then initiate the transfer of the desired page into
   primary memory.  The overall structure looks as though it will be
   much simpler than that currently employed."

   Workload: P user processes each walking a working set larger than
   core, so every fault contends for frames and the eviction machinery
   runs continuously. *)

open Multics_mm
open Multics_proc
open Multics_vm

let id = "E6"

let title = "Page-fault handling: sequential cascade vs dedicated freeing processes"

let paper_claim =
  "with the current design this complex series of steps occurs sequentially ... in the \
   process which took the page fault; the new scheme involving multiple dedicated \
   processes is much simpler, and the fault path of the user process is greatly simplified"

type row = {
  scenario : string;
  discipline : string;
  faults : int;
  mean_latency : float;
  p90_latency : float;
  mean_steps : float;
  max_steps : float;
  cascaded : int;  (** faults whose own process ran the eviction *)
  deep_cascades : int;
  kernel_process_evictions : int;  (** evictions done by the dedicated processes *)
}

(* User processes share TWO virtual processors (a two-processor 6180);
   under the parallel discipline the freeing processes get their own
   dedicated VPs on top, per the paper's design.  Under the sequential
   discipline the eviction cascades compete with user computation for
   the same two processors — which is exactly the structural point. *)
let run_storm ?(think = 24_000) ~core ~bulk ~discipline ~processes ~pages_per_process ~sweeps ()
    =
  let shared_vps = 2 in
  let vps =
    match discipline with
    | Page_control.Sequential -> shared_vps
    | Page_control.Parallel_processes -> shared_vps + 2
  in
  let sim = Sim.create ~cost:Multics_machine.Cost.h6180 ~virtual_processors:vps in
  let mem = Multics_mm.Memory.create ~cost:Multics_machine.Cost.h6180 ~core ~bulk ~disk:512 in
  let pc = Page_control.create ~core_target:3 sim ~mem ~discipline in
  Page_control.start pc;
  for w = 1 to processes do
    ignore
      (Sim.spawn sim
         ~name:(Printf.sprintf "user%d" w)
         (fun pid ->
           for _sweep = 1 to sweeps do
             for page_no = 0 to pages_per_process - 1 do
               let page = Page_id.make ~seg_uid:w ~page_no in
               ignore (Page_control.reference pc ~pid ~page ~write:(page_no mod 3 = 0));
               (* Computation between references: the room the dedicated
                  freeing processes use to run ahead of demand. *)
               Sim.compute think
             done
           done))
  done;
  Sim.run sim;
  (sim, pc)

(* Two memory scenarios:
   - "tight": bulk store smaller than the working set, so the full
     core -> bulk -> disk cascade appears (the structure the paper's
     quoted paragraph walks through);
   - "provisioned": a bulk store that holds the working set, the normal
     operating point, where the dedicated processes hide eviction work
     from the fault path. *)
let scenarios = [ ("tight", 8, 12); ("provisioned", 16, 96) ]

let measure ?(processes = 4) ?(pages_per_process = 10) ?(sweeps = 3) () =
  List.concat_map
    (fun (scenario, core, bulk) ->
      List.map
        (fun discipline ->
          let _sim, pc =
            run_storm ~core ~bulk ~discipline ~processes ~pages_per_process ~sweeps ()
          in
          let s = Page_control.summarize pc in
          let counters = Page_control.counters pc in
          let freer_evictions =
            match discipline with
            | Page_control.Parallel_processes ->
                Multics_util.Stats.Counters.get counters "core_to_bulk"
                + Multics_util.Stats.Counters.get counters "bulk_to_disk"
            | Page_control.Sequential -> 0
          in
          {
            scenario;
            discipline = Page_control.discipline_name discipline;
            faults = s.Page_control.fault_total;
            mean_latency = s.Page_control.latency.Multics_util.Stats.mean;
            p90_latency = s.Page_control.latency.Multics_util.Stats.p90;
            mean_steps = s.Page_control.steps.Multics_util.Stats.mean;
            max_steps = s.Page_control.steps.Multics_util.Stats.max;
            cascaded = s.Page_control.cascaded_faults;
            deep_cascades = s.Page_control.deep_cascade_faults;
            kernel_process_evictions = freer_evictions;
          })
        [ Page_control.Sequential; Page_control.Parallel_processes ])
    scenarios

let table () =
  let open Multics_util.Table in
  let t =
    create
      ~title:(Printf.sprintf "%s: %s" id title)
      ~columns:
        [
          ("memory", Left);
          ("discipline", Left);
          ("faults", Right);
          ("latency mean", Right);
          ("latency p90", Right);
          ("steps mean", Right);
          ("steps max", Right);
          ("cascaded in faulter", Right);
          ("deep cascades", Right);
          ("freer evictions", Right);
        ]
  in
  List.iter
    (fun r ->
      add_row t
        [
          r.scenario;
          r.discipline;
          string_of_int r.faults;
          fmt_float r.mean_latency;
          fmt_float r.p90_latency;
          fmt_float ~decimals:2 r.mean_steps;
          fmt_float ~decimals:0 r.max_steps;
          string_of_int r.cascaded;
          string_of_int r.deep_cascades;
          string_of_int r.kernel_process_evictions;
        ])
    (measure ());
  t

let render () = Multics_util.Table.render (table ())
