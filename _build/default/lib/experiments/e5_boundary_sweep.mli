(** E5 — the A/B boundary-placement sweep over call-flurry sizes. *)

val id : string
val title : string
val paper_claim : string

val inner_calls_list : int list

val measure : unit -> Multics_kernel.Boundary.sweep_point list
val table : unit -> Multics_util.Table.t
val render : unit -> string
