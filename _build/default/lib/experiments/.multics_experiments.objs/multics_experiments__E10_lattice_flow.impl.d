lib/experiments/e10_lattice_flow.ml: Array Label List Mode Multics_access Multics_machine Multics_util Policy Printf String
