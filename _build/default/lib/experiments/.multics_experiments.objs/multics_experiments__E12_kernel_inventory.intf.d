lib/experiments/e12_kernel_inventory.mli: Multics_util
