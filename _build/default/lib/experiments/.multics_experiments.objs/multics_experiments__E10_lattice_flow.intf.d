lib/experiments/e10_lattice_flow.mli: Multics_util
