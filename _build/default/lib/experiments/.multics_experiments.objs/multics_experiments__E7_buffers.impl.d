lib/experiments/e7_buffers.ml: Circular_buffer Infinite_buffer List Multics_io Multics_util Network Printf
