lib/experiments/e4_ring_crossing.mli: Multics_util
