lib/experiments/e8_interrupts.ml: Interrupt List Multics_machine Multics_proc Multics_util Printf Sim
