lib/experiments/registry.mli:
