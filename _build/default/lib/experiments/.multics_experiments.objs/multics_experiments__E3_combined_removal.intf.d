lib/experiments/e3_combined_removal.mli: Multics_util
