lib/experiments/e14_certification.ml: Flaw_registry List Multics_audit Multics_util Printf Verifier
