lib/experiments/e4_ring_crossing.ml: Cost List Multics_machine Multics_util Printf
