lib/experiments/e1_linker_gates.mli: Multics_util
