lib/experiments/e6_page_control.ml: List Multics_machine Multics_mm Multics_proc Multics_util Multics_vm Page_control Page_id Printf Sim
