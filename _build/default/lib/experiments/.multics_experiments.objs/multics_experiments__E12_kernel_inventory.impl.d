lib/experiments/e12_kernel_inventory.ml: Config Init Inventory List Metrics Multics_audit Multics_kernel Multics_util Printf String Trojan
