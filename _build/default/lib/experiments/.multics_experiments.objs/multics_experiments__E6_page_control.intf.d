lib/experiments/e6_page_control.mli: Multics_proc Multics_util Multics_vm
