lib/experiments/e2_naming_removal.ml: Config Inventory Kst Multics_audit Multics_fs Multics_kernel Multics_link Multics_util Printf Rnt Uid
