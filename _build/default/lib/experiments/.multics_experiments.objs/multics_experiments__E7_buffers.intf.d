lib/experiments/e7_buffers.mli: Multics_util
