lib/experiments/e5_boundary_sweep.ml: Boundary List Multics_kernel Multics_util Printf
