lib/experiments/e11_penetration.ml: Config List Multics_audit Multics_kernel Multics_util Pentest Printf
