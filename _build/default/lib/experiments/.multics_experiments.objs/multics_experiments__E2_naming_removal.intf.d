lib/experiments/e2_naming_removal.mli: Multics_fs Multics_link Multics_util
