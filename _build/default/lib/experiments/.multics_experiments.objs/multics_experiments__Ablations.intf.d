lib/experiments/ablations.mli: Multics_util
