lib/experiments/e9_policy_partition.ml: Config List Multics_kernel Multics_util Page_policy Printf
