lib/experiments/e5_boundary_sweep.mli: Multics_kernel Multics_util
