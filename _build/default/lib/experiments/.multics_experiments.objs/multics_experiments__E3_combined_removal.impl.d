lib/experiments/e3_combined_removal.ml: Config Float Gate Inventory List Multics_audit Multics_kernel Multics_util Printf
