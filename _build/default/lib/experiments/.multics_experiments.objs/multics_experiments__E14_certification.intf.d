lib/experiments/e14_certification.mli: Multics_util
