lib/experiments/e1_linker_gates.ml: Config Gate Inventory Multics_audit Multics_kernel Multics_util Printf
