lib/experiments/e13_cost_of_security.ml: Acl Config Label List Multics_access Multics_kernel Multics_machine Multics_util Printf Program Session System
