lib/experiments/e8_interrupts.mli: Multics_proc Multics_util
