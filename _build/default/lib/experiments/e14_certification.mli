(** E14 — certification by systematic technique: exhaustive
    specification checks of the reference monitor's decision
    procedures, plus the review activity's maintained flaw list. *)

val id : string
val title : string
val paper_claim : string

val verification_table : unit -> Multics_util.Table.t
val flaw_table : unit -> Multics_util.Table.t
val render : unit -> string
