(* E8 — interrupt handling: inline in the victim process vs dedicated
   handler processes.

   "Each interrupt handler will be assigned its own process ... the
   system interrupt interceptor will simply turn each interrupt into a
   wakeup of the corresponding process ... greatly simplifying their
   structure."  Measured: what happens to an innocent compute-bound
   process under an interrupt storm, and how much privileged work runs
   in borrowed user contexts. *)

open Multics_proc

let id = "E8"

let title = "Interrupt handling: inline-in-victim vs dedicated handler processes"

let paper_claim =
  "handlers as full processes coordinate through normal IPC and stop inhabiting whatever \
   user process was running when the interrupt occurred"

type row = {
  discipline : string;
  interrupts : int;
  handled : int;
  mean_latency : float;
  victim_expected_cycles : int;
  victim_actual_cycles : int;
  victim_perturbations : int;
  borrowed_privileged_cycles : int;
}

let run_storm ~discipline ~interrupts ~gap =
  let sim = Sim.create ~cost:Multics_machine.Cost.h6180 ~virtual_processors:4 in
  let ic = Interrupt.create sim ~discipline in
  Interrupt.register ic ~name:"tty" ~service_cycles:2_500;
  let work = 200_000 in
  let victim = Sim.spawn sim ~name:"victim" (fun _ -> Sim.compute work) in
  for i = 1 to interrupts do
    Interrupt.post ic ~delay:(i * gap) ~name:"tty"
  done;
  Sim.run sim;
  let stats = Interrupt.stats_of ic ~name:"tty" in
  {
    discipline = Interrupt.discipline_name discipline;
    interrupts;
    handled = stats.Interrupt.handled;
    mean_latency = stats.Interrupt.mean_latency;
    victim_expected_cycles = work;
    victim_actual_cycles = Sim.cycles_of sim victim;
    victim_perturbations = Sim.perturbations_of sim victim;
    borrowed_privileged_cycles = stats.Interrupt.borrowed_privileged_cycles;
  }

let measure ?(interrupts = 40) ?(gap = 4_000) () =
  List.map
    (fun discipline -> run_storm ~discipline ~interrupts ~gap)
    [ Interrupt.Inline; Interrupt.Handler_processes ]

let table () =
  let open Multics_util.Table in
  let t =
    create
      ~title:(Printf.sprintf "%s: %s" id title)
      ~columns:
        [
          ("discipline", Left);
          ("interrupts", Right);
          ("handled", Right);
          ("latency mean", Right);
          ("victim cycles (expected)", Right);
          ("victim cycles (actual)", Right);
          ("perturbations", Right);
          ("ring-0 cycles in borrowed context", Right);
        ]
  in
  List.iter
    (fun r ->
      add_row t
        [
          r.discipline;
          string_of_int r.interrupts;
          string_of_int r.handled;
          fmt_float r.mean_latency;
          string_of_int r.victim_expected_cycles;
          string_of_int r.victim_actual_cycles;
          string_of_int r.victim_perturbations;
          string_of_int r.borrowed_privileged_cycles;
        ])
    (measure ());
  t

let render () = Multics_util.Table.render (table ())
