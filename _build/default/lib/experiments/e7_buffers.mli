(** E7 — circular-ring lapping vs the infinite VM buffer under
    increasingly bursty network input. *)

val id : string
val title : string
val paper_claim : string

type row = {
  burst_cap : int;
  offered : int;
  circular_lost : int;
  circular_loss_rate : float;
  infinite_lost : int;
  infinite_peak_pages : int;
}

val burst_caps : int list
val measure : ?capacity:int -> ?seed:int -> unit -> row list
val mechanism_table : unit -> Multics_util.Table.t
val table : unit -> Multics_util.Table.t
val render : unit -> string
