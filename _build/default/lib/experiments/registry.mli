(** The experiment registry: E1..E12 plus the ablations, addressable by
    id. *)

type experiment = {
  id : string;
  title : string;
  paper_claim : string;
  render : unit -> string;
}

val all : experiment list

val find : string -> experiment option
(** Case-insensitive id lookup. *)

val ids : string list

val render_one : experiment -> string
val render_all : unit -> string
