(* E1 — "the linker's removal eliminated 10% of the gate entry points
   into the supervisor."

   Measured two ways: on the reconstructed historical inventory (180
   baseline gates) and on the implemented functional gate surface (50
   baseline gates). *)

open Multics_audit
open Multics_kernel

let id = "E1"

let title = "Linker removal: share of supervisor gate entry points"

let paper_claim = "removal eliminated 10% of the gate entry points into the supervisor"

type result = {
  inventory_before : int;
  inventory_after : int;
  inventory_fraction : float;
  functional_before : int;
  functional_after : int;
  functional_fraction : float;
}

let measure () =
  let before = Config.hardware_rings in
  let after = Config.linker_removed in
  let inventory_before = Inventory.total_gates before in
  let inventory_after = Inventory.total_gates after in
  let functional_before = Gate.count before in
  let functional_after = Gate.count after in
  let fraction a b = float_of_int (a - b) /. float_of_int a in
  {
    inventory_before;
    inventory_after;
    inventory_fraction = fraction inventory_before inventory_after;
    functional_before;
    functional_after;
    functional_fraction = fraction functional_before functional_after;
  }

let table () =
  let r = measure () in
  let open Multics_util.Table in
  let t =
    create
      ~title:(Printf.sprintf "%s: %s" id title)
      ~columns:
        [
          ("surface", Left);
          ("gates before", Right);
          ("gates after", Right);
          ("removed", Right);
          ("share", Right);
          ("paper", Right);
        ]
  in
  add_row t
    [
      "historical inventory";
      string_of_int r.inventory_before;
      string_of_int r.inventory_after;
      string_of_int (r.inventory_before - r.inventory_after);
      fmt_pct r.inventory_fraction;
      "10%";
    ];
  add_row t
    [
      "implemented API";
      string_of_int r.functional_before;
      string_of_int r.functional_after;
      string_of_int (r.functional_before - r.functional_after);
      fmt_pct r.functional_fraction;
      "10%";
    ];
  t

let render () = Multics_util.Table.render (table ())
