(* E10 — the Mitre model: randomized information-flow traces.

   The formal model "specifies a set of access constraints that
   restrict information flow in a hierarchy of compartments".  We check
   it operationally with taint tracking: every object carries the set
   of source labels whose information has reached it; a subject
   accumulates the taints of everything it reads and deposits them in
   everything it writes.  The invariant — after ANY trace of permitted
   operations, every taint on an object is dominated by that object's
   label — is exactly "information never flows down". *)

open Multics_access
open Multics_machine

let id = "E10"

let title = "Mitre-model flow enforcement under randomized operation traces"

let paper_claim =
  "the access constraints restrict information flow in a hierarchy of compartments to \
   patterns consistent with the national security classification scheme"

type result = {
  operations : int;
  permitted : int;
  refused_read_up : int;
  refused_write_down : int;
  flow_violations : int;  (** taints above their object's label: must be 0 *)
  distinct_labels : int;
}

let compartment_pool = [ "crypto"; "nato"; "sigint" ]

let random_label prng =
  let level = Label.level_of_rank (Multics_util.Prng.int prng 4) in
  let compartments =
    List.filter (fun _ -> Multics_util.Prng.bool prng) compartment_pool
  in
  Label.make level compartments

type sim_object = { label : Label.t; mutable taints : Label.t list }

type sim_subject = { clearance : Label.t; mutable carried : Label.t list }

let measure ?(seed = 1975) ?(subjects = 8) ?(objects = 16) ?(operations = 5_000) () =
  let prng = Multics_util.Prng.create ~seed in
  let subject_pool =
    Array.init subjects (fun _ ->
        let clearance = random_label prng in
        { clearance; carried = [ clearance ] })
  in
  let object_pool =
    Array.init objects (fun _ ->
        let label = random_label prng in
        { label; taints = [ label ] })
  in
  let permitted = ref 0 in
  let read_up = ref 0 in
  let write_down = ref 0 in
  let add_taints existing extra =
    List.fold_left (fun acc t -> if List.exists (Label.equal t) acc then acc else t :: acc) existing extra
  in
  for _ = 1 to operations do
    let s = subject_pool.(Multics_util.Prng.int prng subjects) in
    let o = object_pool.(Multics_util.Prng.int prng objects) in
    let requested = if Multics_util.Prng.bool prng then Mode.r else Mode.w in
    match
      Policy.mandatory_refusals ~subject_label:s.clearance ~object_label:o.label ~requested
    with
    | [] ->
        incr permitted;
        if requested.Mode.read then s.carried <- add_taints s.carried o.taints
        else o.taints <- add_taints o.taints s.carried
    | refusals ->
        List.iter
          (function
            | Policy.Mandatory_read_up _ -> incr read_up
            | Policy.Mandatory_write_down _ -> incr write_down
            | Policy.Discretionary _ | Policy.Ring_hardware _ -> ())
          refusals
  done;
  (* The invariant: every taint that reached an object is dominated by
     the object's label. *)
  let flow_violations =
    Array.fold_left
      (fun acc o ->
        acc
        + List.length (List.filter (fun taint -> not (Label.dominates o.label taint)) o.taints))
      0 object_pool
  in
  let distinct_labels =
    Array.to_list object_pool
    |> List.map (fun o -> Label.to_string o.label)
    |> List.sort_uniq String.compare |> List.length
  in
  {
    operations;
    permitted = !permitted;
    refused_read_up = !read_up;
    refused_write_down = !write_down;
    flow_violations;
    distinct_labels;
  }

let table () =
  let r = measure () in
  let open Multics_util.Table in
  let t =
    create
      ~title:(Printf.sprintf "%s: %s" id title)
      ~columns:[ ("quantity", Left); ("value", Right) ]
  in
  add_row t [ "operations attempted"; string_of_int r.operations ];
  add_row t [ "permitted"; string_of_int r.permitted ];
  add_row t [ "refused: read up (simple security)"; string_of_int r.refused_read_up ];
  add_row t [ "refused: write down (*-property)"; string_of_int r.refused_write_down ];
  add_row t [ "distinct object labels in play"; string_of_int r.distinct_labels ];
  add_row t [ "downward flows after full trace (must be 0)"; string_of_int r.flow_violations ];
  t

let render () = Multics_util.Table.render (table ())
