(* E7 — the network input buffer: old circular ring vs the VM-backed
   infinite buffer, under increasingly bursty input.

   "The infinite buffer scheme is much simpler than the old circular
   buffer which had to be used over and over again, with attendant
   problems of old messages not being removed before a complete circuit
   of the buffer was made." *)

open Multics_io

let id = "E7"

let title = "Network input buffering: circular ring vs infinite VM buffer"

let paper_claim =
  "the old circular buffer destroyed messages when lapped; the VM-backed buffer appears \
   infinite and replaces a special-purpose storage manager with the standard one"

type row = {
  burst_cap : int;
  offered : int;
  circular_lost : int;
  circular_loss_rate : float;
  infinite_lost : int;
  infinite_peak_pages : int;
}

let burst_caps = [ 8; 16; 32; 64; 128 ]

(* Long geometric bursts (mean 32) so the cap is what actually limits
   burst length and the sweep exercises it. *)
let workload_for cap =
  {
    Network.default_workload with
    Network.burst_cap = cap;
    bursts = 30;
    burst_continue_num = 31;
    burst_continue_den = 32;
  }

let measure ?(capacity = 16) ?(seed = 1975) () =
  List.map
    (fun cap ->
      let workload = workload_for cap in
      let circular =
        Network.run ~seed ~workload (Network.Circular (Circular_buffer.create ~capacity))
      in
      let infinite = Network.run ~seed ~workload (Network.Infinite (Infinite_buffer.create ())) in
      {
        burst_cap = cap;
        offered = circular.Network.offered;
        circular_lost = circular.Network.lost;
        circular_loss_rate =
          (if circular.Network.offered = 0 then 0.0
           else float_of_int circular.Network.lost /. float_of_int circular.Network.offered);
        infinite_lost = infinite.Network.lost;
        infinite_peak_pages = infinite.Network.peak_pages;
      })
    burst_caps

let mechanism_table () =
  let open Multics_util.Table in
  let t =
    create ~title:"E7b: buffer mechanism size (statements)"
      ~columns:[ ("mechanism", Left); ("statements", Right) ]
  in
  add_row t [ "circular ring (wrap + reuse + collision handling)"; string_of_int Circular_buffer.mechanism_statements ];
  add_row t [ "infinite VM buffer (append + trim)"; string_of_int Infinite_buffer.mechanism_statements ];
  t

let table () =
  let open Multics_util.Table in
  let t =
    create
      ~title:(Printf.sprintf "%s: %s (ring capacity 16)" id title)
      ~columns:
        [
          ("burst cap", Right);
          ("offered", Right);
          ("circular lost", Right);
          ("loss rate", Right);
          ("infinite lost", Right);
          ("infinite peak pages", Right);
        ]
  in
  List.iter
    (fun r ->
      add_row t
        [
          string_of_int r.burst_cap;
          string_of_int r.offered;
          string_of_int r.circular_lost;
          fmt_pct r.circular_loss_rate;
          string_of_int r.infinite_lost;
          string_of_int r.infinite_peak_pages;
        ])
    (measure ());
  t

let render () =
  Multics_util.Table.render (table ()) ^ "\n" ^ Multics_util.Table.render (mechanism_table ())
