(** E2 — the factor-of-ten reduction in protected address-space
    management: inventory statements plus a live measurement of
    protected words under a 64-segment workload. *)

val id : string
val title : string
val paper_claim : string

type result = {
  code_before : int;
  code_after : int;
  code_factor : float;
  data_before : int;
  data_after : int;
  data_factor : float;
}

val live_protected_words :
  kst_variant:Multics_fs.Kst.variant ->
  rnt_placement:Multics_link.Rnt.placement ->
  segments:int ->
  int
(** The live workload: make [segments] segments known, bind one
    reference name each, count the words left kernel-protected. *)

val measure : ?segments:int -> unit -> result
val table : unit -> Multics_util.Table.t
val render : unit -> string
