(** E8 — interrupt handling: inline-in-victim vs dedicated handler
    processes, under an interrupt storm over a compute-bound victim. *)

val id : string
val title : string
val paper_claim : string

type row = {
  discipline : string;
  interrupts : int;
  handled : int;
  mean_latency : float;
  victim_expected_cycles : int;
  victim_actual_cycles : int;
  victim_perturbations : int;
  borrowed_privileged_cycles : int;
}

val run_storm :
  discipline:Multics_proc.Interrupt.discipline -> interrupts:int -> gap:int -> row

val measure : ?interrupts:int -> ?gap:int -> unit -> row list
val table : unit -> Multics_util.Table.t
val render : unit -> string
