(* E3 — "the linker and reference name removal projects together reduce
   the number of user-available supervisor entries by approximately one
   third."

   The full progression over the four removal combinations, on both the
   historical inventory and the implemented API surface. *)

open Multics_audit
open Multics_kernel

let id = "E3"

let title = "Combined removals: user-available supervisor entries"

let paper_claim =
  "the linker and reference name removal projects together reduce the number of \
   user-available supervisor entries by approximately one third"

type row = {
  stage : string;
  inventory_gates : int;
  inventory_cumulative : float;  (** fraction of baseline removed so far *)
  functional_gates : int;
  functional_cumulative : float;
}

let measure () =
  let configs =
    [
      ("supervisor (reviewed)", Config.hardware_rings);
      ("- linker", Config.linker_removed);
      ("- linker - naming", Config.naming_removed);
    ]
  in
  let inventory_base = Inventory.total_gates Config.hardware_rings in
  let functional_base = Gate.count Config.hardware_rings in
  List.map
    (fun (stage, config) ->
      let inventory_gates = Inventory.total_gates config in
      let functional_gates = Gate.count config in
      {
        stage;
        inventory_gates;
        inventory_cumulative =
          float_of_int (inventory_base - inventory_gates) /. float_of_int inventory_base;
        functional_gates;
        functional_cumulative =
          float_of_int (functional_base - functional_gates) /. float_of_int functional_base;
      })
    configs

let combined_fraction () =
  match List.rev (measure ()) with
  | last :: _ -> last.inventory_cumulative
  | [] -> Float.nan

let table () =
  let open Multics_util.Table in
  let t =
    create
      ~title:(Printf.sprintf "%s: %s (paper: ~1/3 removed)" id title)
      ~columns:
        [
          ("stage", Left);
          ("inventory gates", Right);
          ("removed so far", Right);
          ("API gates", Right);
          ("removed so far ", Right);
        ]
  in
  List.iter
    (fun r ->
      add_row t
        [
          r.stage;
          string_of_int r.inventory_gates;
          fmt_pct r.inventory_cumulative;
          string_of_int r.functional_gates;
          fmt_pct r.functional_cumulative;
        ])
    (measure ());
  t

let render () = Multics_util.Table.render (table ())
