(** E12 — the kernel across all engineering stages: gates,
    certification mass, initialization, I/O mechanisms, and the four
    categories of non-kernel software. *)

val id : string
val title : string
val paper_claim : string

val stage_table : unit -> Multics_util.Table.t
val init_table : unit -> Multics_util.Table.t
val io_table : unit -> Multics_util.Table.t
val trojan_table : unit -> Multics_util.Table.t
val render : unit -> string
