(* E13 — the performance cost of security.

   The paper, footnote 7: "there may still exist other performance
   penalties associated with removing functions from the supervisor
   that will inhibit production of the smallest possible kernel.  One
   goal of the research is to understand better the performance cost of
   security."

   The same user workload runs in the full-system simulation on three
   configurations.  Two effects are visible at once:

   - the hardware effect (645 -> 6180): each gate crossing goes from
     ~4,200 cycles to the price of an ordinary call;
   - the removal effect: the engineered kernel makes MORE gate calls
     for the same work (tree walking is one [initiate] per component
     instead of one kernel resolver call) — the footnote's worry —
     which costs nothing on the 6180 but would have been prohibitive
     on the 645. *)

open Multics_access
open Multics_kernel

let id = "E13"

let title = "Performance cost of security: one workload, three kernels"

let paper_claim =
  "one goal of the research is to understand better the performance cost of security \
   (footnote 7); supervisor calls are free on the 6180, so removal costs nothing there"

(* A realistic editing session: build a file tree, then edit cycles of
   read/compute/write, re-resolving names as editors do. *)
let workload =
  let open Program in
  let acl = Acl.of_strings [ ("Alice.Dev.*", "rw") ] in
  make ~name:"edit-session"
    [
      Create_directory
        { path = ">udd>Dev>Alice>proj"; acl = Acl.of_strings [ ("Alice.Dev.*", "rew") ];
          label = Label.unclassified; slot = "proj" };
      Create_segment
        { path = ">udd>Dev>Alice>proj>text"; acl; label = Label.unclassified; slot = "text" };
      Bind_name { name = "text"; seg = "text" };
      Repeat
        ( 15,
          [
            Resolve { path = ">udd>Dev>Alice>proj>text"; slot = "t" };
            Read_word { seg = "t"; offset = 0; slot = "v" };
            Compute 3_000;
            Write_word { seg = "t"; offset = 0; value = Const 1 };
            Write_word { seg = "t"; offset = 100; value = Const 2 };
          ] );
      Lookup_name { name = "text"; slot = "again" };
      Read_word { seg = "again"; offset = 100; slot = "final" };
      Assert_slot { slot = "final"; expected = 2 };
    ]

type row = {
  config_name : string;
  processor : string;
  gate_calls : int;
  gate_cycles : int;
  compute_cycles : int;
  elapsed : int;
  security_overhead : float;
}

let run_config config =
  let session = Session.boot config in
  ignore
    (System.add_account (Session.system session) ~person:"Alice" ~project:"Dev" ~password:"pw"
       ~clearance:Label.unclassified);
  let alice =
    match System.login (Session.system session) ~person:"Alice" ~project:"Dev" ~password:"pw" with
    | Ok h -> h
    | Error e -> invalid_arg (System.login_error_to_string e)
  in
  ignore (Session.run_user session ~handle:alice workload);
  Session.run session;
  if not (Session.all_completed session) then
    invalid_arg ("E13 workload failed on " ^ config.Config.name);
  let r = Session.report session in
  {
    config_name = config.Config.name;
    processor = Multics_machine.Cost.processor_name config.Config.processor;
    gate_calls = r.Session.total_gate_calls;
    gate_cycles = r.Session.gate_cycles_total;
    compute_cycles = r.Session.compute_cycles_total;
    elapsed = r.Session.elapsed;
    security_overhead = r.Session.security_overhead;
  }

let measure () =
  List.map run_config [ Config.baseline_645; Config.hardware_rings; Config.kernel_6180 ]

let table () =
  let open Multics_util.Table in
  let t =
    create
      ~title:(Printf.sprintf "%s: %s" id title)
      ~columns:
        [
          ("configuration", Left);
          ("cpu", Left);
          ("gate calls", Right);
          ("gate cycles", Right);
          ("compute cycles", Right);
          ("security overhead", Right);
        ]
  in
  List.iter
    (fun r ->
      add_row t
        [
          r.config_name;
          r.processor;
          string_of_int r.gate_calls;
          string_of_int r.gate_cycles;
          string_of_int r.compute_cycles;
          fmt_pct r.security_overhead;
        ])
    (measure ());
  t

let render () = Multics_util.Table.render (table ())
