(** E11 — the Linde-catalog penetration corpus against the flawed
    baseline, the reviewed supervisor, and the security kernel. *)

val id : string
val title : string
val paper_claim : string

val configs : Multics_kernel.Config.t list

val measure :
  unit ->
  (Multics_kernel.Config.t * (Multics_audit.Pentest.attack * Multics_audit.Pentest.outcome) list)
  list

val table : unit -> Multics_util.Table.t
val render : unit -> string
