(** E3 — linker + naming removals cut user-available supervisor entries
    by approximately one third. *)

val id : string
val title : string
val paper_claim : string

type row = {
  stage : string;
  inventory_gates : int;
  inventory_cumulative : float;
  functional_gates : int;
  functional_cumulative : float;
}

val measure : unit -> row list

val combined_fraction : unit -> float
(** The final cumulative inventory fraction (paper: ~1/3). *)

val table : unit -> Multics_util.Table.t
val render : unit -> string
