(* Ablations: the design choices DESIGN.md calls out, varied one at a
   time.

   A1 — eviction policy (the policy half of the E9 partition): the
        second-chance clock against FIFO and random choice, on a
        hot/cold working set;
   A2 — layer-1 sizing: the fixed virtual-processor pool against a
        compute-bound process population;
   A3 — the core free-frame watermark the dedicated freeing process
        maintains: too low and faulters wait, too high and the freer
        thrashes pages out that are still wanted. *)

open Multics_mm
open Multics_proc
open Multics_vm

(* ----- A1: eviction policy ----- *)

module A1 = struct
  let id = "A1"

  let title = "Ablation: eviction policy (second-chance vs FIFO vs random)"

  let paper_claim =
    "the policy algorithm that decides which page to remove ... would execute in a less \
     privileged ring — making the policy replaceable; this ablation varies it"

  type row = { policy : string; faults : int; page_ins : int; latency_mean : float }

  (* "Fixed-frame": always evict whatever occupies the first frame.
     With a static working set this accidentally pins the rest of core;
     the phase change below is what exposes it. *)
  let fixed_frame_policy : Page_control.victim_policy =
   fun residents _usage -> match residents with [] -> None | page :: _ -> Some page

  let random_policy seed : Page_control.victim_policy =
    let prng = Multics_util.Prng.create ~seed in
    fun residents _usage ->
      match residents with [] -> None | _ :: _ -> Some (Multics_util.Prng.choose prng residents)

  (* A hot/cold workload with a phase change: 80% of references go to
     4 hot pages, the rest sweep 16 cold pages; halfway through, the
     hot set moves — the pattern usage bits exist to track. *)
  let run_with_policy ~name ~policy =
    let sim = Sim.create ~cost:Multics_machine.Cost.h6180 ~virtual_processors:2 in
    let mem = Memory.create ~cost:Multics_machine.Cost.h6180 ~core:6 ~bulk:64 ~disk:256 in
    let pc = Page_control.create sim ~mem ~discipline:Page_control.Sequential in
    (match policy with Some p -> Page_control.set_victim_policy pc p | None -> ());
    Page_control.start pc;
    let prng = Multics_util.Prng.create ~seed:1975 in
    ignore
      (Sim.spawn sim ~name:"workload" (fun pid ->
           for step = 1 to 400 do
             let hot_base = if step <= 200 then 0 else 20 in
             let page_no =
               if Multics_util.Prng.chance prng ~num:4 ~den:5 then
                 hot_base + Multics_util.Prng.int prng 4
               else 4 + Multics_util.Prng.int prng 16
             in
             ignore (Page_control.reference pc ~pid ~page:(Page_id.make ~seg_uid:1 ~page_no));
             Sim.compute 500
           done));
    Sim.run sim;
    let s = Page_control.summarize pc in
    {
      policy = name;
      faults = s.Page_control.fault_total;
      page_ins = Multics_util.Stats.Counters.get (Page_control.counters pc) "page_in";
      latency_mean = s.Page_control.latency.Multics_util.Stats.mean;
    }

  let measure () =
    [
      run_with_policy ~name:"second-chance (default)" ~policy:None;
      run_with_policy ~name:"fixed-frame" ~policy:(Some fixed_frame_policy);
      run_with_policy ~name:"random" ~policy:(Some (random_policy 42));
    ]

  let table () =
    let open Multics_util.Table in
    let t =
      create
        ~title:(Printf.sprintf "%s: %s" id title)
        ~columns:
          [ ("policy", Left); ("faults", Right); ("page-ins", Right); ("latency mean", Right) ]
    in
    List.iter
      (fun r ->
        add_row t
          [ r.policy; string_of_int r.faults; string_of_int r.page_ins; fmt_float r.latency_mean ])
      (measure ());
    t

  let render () = Multics_util.Table.render (table ())
end

(* ----- A2: virtual-processor pool size ----- *)

module A2 = struct
  let id = "A2"

  let title = "Ablation: layer-1 virtual-processor pool size"

  let paper_claim =
    "the first level multiplexes the processors into a larger fixed number of virtual \
     processors ... because the number is fixed, this layer need not depend on the virtual \
     memory — this ablation varies the fixed number"

  type row = { vps : int; makespan : int; speedup : float }

  let processes = 8

  let work_per_process = 60_000

  let run_with_vps vps =
    let sim = Sim.create ~cost:Multics_machine.Cost.h6180 ~virtual_processors:vps in
    for i = 1 to processes do
      ignore
        (Sim.spawn sim
           ~name:(Printf.sprintf "cpu%d" i)
           (fun _ ->
             (* Compute in slices with blocking I/O pauses, the shape
                that exposes multiplexing quality. *)
             for _ = 1 to 6 do
               Sim.compute (work_per_process / 6)
             done))
    done;
    Sim.run sim;
    Sim.now sim

  let measure () =
    let base = run_with_vps 1 in
    List.map
      (fun vps ->
        let makespan = run_with_vps vps in
        { vps; makespan; speedup = float_of_int base /. float_of_int makespan })
      [ 1; 2; 4; 8; 12 ]

  let table () =
    let open Multics_util.Table in
    let t =
      create
        ~title:(Printf.sprintf "%s: %s (8 compute-bound processes)" id title)
        ~columns:[ ("virtual processors", Right); ("makespan", Right); ("speedup", Right) ]
    in
    List.iter
      (fun r -> add_row t [ string_of_int r.vps; string_of_int r.makespan; fmt_ratio r.speedup ])
      (measure ());
    t

  let render () = Multics_util.Table.render (table ())
end

(* ----- A3: the free-frame watermark ----- *)

module A3 = struct
  let id = "A3"

  let title = "Ablation: core free-frame watermark of the freeing process"

  let paper_claim =
    "one process runs in a loop making sure that some small number of free primary memory \
     blocks always exist — this ablation varies that small number"

  type row = {
    core_target : int;
    faults : int;
    latency_mean : float;
    freer_evictions : int;
  }

  let run_with_target core_target =
    let sim = Sim.create ~cost:Multics_machine.Cost.h6180 ~virtual_processors:4 in
    let mem = Memory.create ~cost:Multics_machine.Cost.h6180 ~core:12 ~bulk:96 ~disk:256 in
    let pc = Page_control.create ~core_target sim ~mem ~discipline:Page_control.Parallel_processes in
    Page_control.start pc;
    for w = 1 to 2 do
      ignore
        (Sim.spawn sim
           ~name:(Printf.sprintf "user%d" w)
           (fun pid ->
             for _sweep = 1 to 3 do
               for page_no = 0 to 9 do
                 ignore
                   (Page_control.reference pc ~pid ~page:(Page_id.make ~seg_uid:w ~page_no));
                 Sim.compute 20_000
               done
             done))
    done;
    Sim.run sim;
    let s = Page_control.summarize pc in
    {
      core_target;
      faults = s.Page_control.fault_total;
      latency_mean = s.Page_control.latency.Multics_util.Stats.mean;
      freer_evictions =
        Multics_util.Stats.Counters.get (Page_control.counters pc) "core_to_bulk";
    }

  let measure () = List.map run_with_target [ 1; 2; 4; 6; 8 ]

  let table () =
    let open Multics_util.Table in
    let t =
      create
        ~title:(Printf.sprintf "%s: %s (12 core frames, 20-page demand)" id title)
        ~columns:
          [
            ("watermark", Right);
            ("faults", Right);
            ("latency mean", Right);
            ("freer evictions", Right);
          ]
    in
    List.iter
      (fun r ->
        add_row t
          [
            string_of_int r.core_target;
            string_of_int r.faults;
            fmt_float r.latency_mean;
            string_of_int r.freer_evictions;
          ])
      (measure ());
    t

  let render () = Multics_util.Table.render (table ())
end
