(** E6 — page-fault handling: the sequential in-fault cascade vs the
    paper's dedicated freeing processes, over a tight and a provisioned
    memory scenario. *)

val id : string
val title : string
val paper_claim : string

type row = {
  scenario : string;
  discipline : string;
  faults : int;
  mean_latency : float;
  p90_latency : float;
  mean_steps : float;
  max_steps : float;
  cascaded : int;
  deep_cascades : int;
  kernel_process_evictions : int;
}

val run_storm :
  ?think:int ->
  core:int ->
  bulk:int ->
  discipline:Multics_vm.Page_control.discipline ->
  processes:int ->
  pages_per_process:int ->
  sweeps:int ->
  unit ->
  Multics_proc.Sim.t * Multics_vm.Page_control.t
(** One fault storm: user processes share two virtual processors; the
    parallel discipline adds dedicated VPs for the freers. *)

val scenarios : (string * int * int) list
(** (name, core frames, bulk blocks). *)

val measure : ?processes:int -> ?pages_per_process:int -> ?sweeps:int -> unit -> row list
val table : unit -> Multics_util.Table.t
val render : unit -> string
