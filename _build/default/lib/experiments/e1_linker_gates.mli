(** E1 — "the linker's removal eliminated 10% of the gate entry points
    into the supervisor", measured on both the historical inventory and
    the implemented API surface. *)

val id : string
val title : string
val paper_claim : string

type result = {
  inventory_before : int;
  inventory_after : int;
  inventory_fraction : float;
  functional_before : int;
  functional_after : int;
  functional_fraction : float;
}

val measure : unit -> result
val table : unit -> Multics_util.Table.t
val render : unit -> string
