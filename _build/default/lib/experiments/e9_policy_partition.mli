(** E9 — the malicious page-removal policy in ring 0 vs ring 1: only
    denial of use survives the partition. *)

val id : string
val title : string
val paper_claim : string

val measure : unit -> Multics_kernel.Page_policy.experiment_row list
val table : unit -> Multics_util.Table.t
val render : unit -> string
