(* E12 — the kernel across all engineering stages: gates, certification
   mass, module structure, initialization, and the non-kernel software
   categories.

   This is the paper's bottom line: "one wave of simplification applied
   to the central core of the system will produce a badly needed
   example of a structure that is significantly easier to
   understand." *)

open Multics_audit
open Multics_kernel

let id = "E12"

let title = "Kernel size and structure across engineering stages"

let paper_claim =
  "the evolved kernel is sufficiently small, well-structured and easy to understand that \
   certification through manual auditing by an expert is feasible"

let stage_table () =
  let open Multics_util.Table in
  let t =
    create
      ~title:(Printf.sprintf "%s: %s" id title)
      ~columns:
        [
          ("stage", Left);
          ("gates", Right);
          ("API gates", Right);
          ("statements", Right);
          ("ring-0 stmts", Right);
          ("ring-1 stmts", Right);
          ("modules", Right);
          ("vs baseline", Right);
        ]
  in
  let baseline = Inventory.ring0_statements Config.baseline_645 in
  List.iter
    (fun (s : Metrics.snapshot) ->
      add_row t
        [
          s.Metrics.config_name;
          string_of_int s.Metrics.gates;
          string_of_int s.Metrics.functional_gates;
          string_of_int s.Metrics.statements;
          string_of_int s.Metrics.ring0_statements;
          string_of_int s.Metrics.ring1_statements;
          string_of_int s.Metrics.modules;
          fmt_pct (float_of_int s.Metrics.ring0_statements /. float_of_int baseline);
        ])
    (Metrics.stages ());
  t

let init_table () =
  let open Multics_util.Table in
  let t =
    create ~title:"E12b: system initialization strategies"
      ~columns:
        [
          ("strategy", Left);
          ("steps at start", Right);
          ("privileged stmts at start", Right);
          ("stmts moved offline", Right);
        ]
  in
  List.iter
    (fun config ->
      let r = Init.run config in
      add_row t
        [
          Config.init_strategy_name config.Config.init ^ " (" ^ config.Config.name ^ ")";
          string_of_int (Init.privileged_step_count r);
          string_of_int r.Init.privileged_total;
          string_of_int r.Init.offline_total;
        ])
    [ Config.baseline_645; Config.kernel_6180 ];
  t

let io_table () =
  let open Multics_util.Table in
  let t =
    create ~title:"E12c: external I/O mechanisms in the kernel"
      ~columns:
        [ ("configuration", Left); ("io mechanisms", Right); ("io gates", Right); ("io statements", Right) ]
  in
  List.iter
    (fun config ->
      let modules =
        List.filter
          (fun (m : Inventory.module_info) ->
            String.length m.Inventory.subsystem > 3
            && String.sub m.Inventory.subsystem 0 3 = "io-")
          (Inventory.modules config)
      in
      let gates = List.fold_left (fun acc m -> acc + m.Inventory.gates) 0 modules in
      let statements = List.fold_left (fun acc m -> acc + m.Inventory.statements) 0 modules in
      add_row t
        [
          config.Config.name;
          string_of_int (List.length modules);
          string_of_int gates;
          string_of_int statements;
        ])
    [ Config.baseline_645; Config.kernel_6180 ];
  t

let trojan_table () =
  let open Multics_util.Table in
  let t =
    create ~title:"E12d: the four categories of non-kernel software"
      ~columns:
        [
          ("scenario", Left);
          ("category", Left);
          ("undesired result", Right);
          ("unauthorized", Right);
          ("contained", Right);
        ]
  in
  let flag b = if b then "yes" else "no" in
  List.iter
    (fun (r : Trojan.result) ->
      add_row t
        [
          r.Trojan.scenario_name;
          Trojan.category_name r.Trojan.category;
          flag r.Trojan.undesired;
          flag r.Trojan.unauthorized;
          flag r.Trojan.contained;
        ])
    (Trojan.run_all ());
  t

let render () =
  String.concat "\n"
    [
      Multics_util.Table.render (stage_table ());
      Multics_util.Table.render (init_table ());
      Multics_util.Table.render (io_table ());
      Multics_util.Table.render (trojan_table ());
    ]
