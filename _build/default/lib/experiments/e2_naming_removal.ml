(* E2 — "a reduction by a factor of ten in the size of the protected
   code needed to manage the address space" (Bratt's removal of the
   reference name manager and pathname bookkeeping).

   Two measurements: protected code statements from the inventory, and
   a LIVE measurement of protected data — the same workload (making N
   segments known, binding reference names) run against the unified
   (pre-removal) and split (post-removal) process structures, counting
   the words that end up inside the kernel. *)

open Multics_audit
open Multics_fs
open Multics_link
open Multics_kernel

let id = "E2"

let title = "Naming removal: protected address-space management"

let paper_claim =
  "a reduction by a factor of ten in the size of the protected code needed to manage the \
   address space of a process"

type result = {
  code_before : int;
  code_after : int;
  code_factor : float;
  data_before : int;  (** protected words after the live workload, unified *)
  data_after : int;  (** same workload, split *)
  data_factor : float;
}

(* The live workload: one process makes [segments] segments known and
   binds a reference name for each. *)
let live_protected_words ~kst_variant ~rnt_placement ~segments =
  let kst = Kst.create ~variant:kst_variant () in
  let rnt = Rnt.create ~placement:rnt_placement in
  let gen = Uid.generator () in
  for i = 1 to segments do
    let uid = Uid.fresh gen in
    let segno, _ = Kst.make_known kst ~uid in
    (match kst_variant with
    | Kst.Unified -> ignore (Kst.record_pathname kst segno (Printf.sprintf ">lib>seg%d" i))
    | Kst.Split -> ());
    ignore (Rnt.bind rnt ~name:(Printf.sprintf "seg%d" i) ~segno)
  done;
  Kst.protected_words kst + Rnt.protected_words rnt

let measure ?(segments = 64) () =
  let code_before = Inventory.address_space_statements Config.hardware_rings in
  let code_after = Inventory.address_space_statements Config.naming_removed in
  let data_before =
    live_protected_words ~kst_variant:Kst.Unified ~rnt_placement:Rnt.In_kernel ~segments
  in
  let data_after =
    live_protected_words ~kst_variant:Kst.Split ~rnt_placement:Rnt.In_user_ring ~segments
  in
  {
    code_before;
    code_after;
    code_factor = float_of_int code_before /. float_of_int code_after;
    data_before;
    data_after;
    data_factor = float_of_int data_before /. float_of_int data_after;
  }

let table () =
  let r = measure () in
  let open Multics_util.Table in
  let t =
    create
      ~title:(Printf.sprintf "%s: %s" id title)
      ~columns:
        [
          ("protected quantity", Left);
          ("before removal", Right);
          ("after removal", Right);
          ("factor", Right);
          ("paper", Right);
        ]
  in
  add_row t
    [
      "code (statements)";
      string_of_int r.code_before;
      string_of_int r.code_after;
      fmt_ratio r.code_factor;
      "10x";
    ];
  add_row t
    [
      "data (words, 64-segment process)";
      string_of_int r.data_before;
      string_of_int r.data_after;
      fmt_ratio r.data_factor;
      "~10x";
    ];
  t

let render () = Multics_util.Table.render (table ())
