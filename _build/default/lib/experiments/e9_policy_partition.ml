(* E9 — policy/mechanism partitioning: the malicious page-removal
   policy, unpartitioned in ring 0 vs behind the ring-1 mechanism
   interface.

   "The policy algorithm could never cause unauthorized use or
   modification of the information stored in the pages.  It could only
   cause denial of use." *)

open Multics_kernel

let id = "E9"

let title = "Malicious page-removal policy: ring 0 vs ring 1 placement"

let paper_claim =
  "partitioned into ring 1, the policy can cause only denial of use; the rest of the \
   kernel need not trust it for release or modification"

let measure () = Page_policy.attack_matrix ()

let table () =
  let open Multics_util.Table in
  let t =
    create
      ~title:(Printf.sprintf "%s: %s" id title)
      ~columns:
        [
          ("placement", Left);
          ("attack", Left);
          ("release", Right);
          ("modify", Right);
          ("deny", Right);
          ("how", Left);
        ]
  in
  let flag b = if b then "YES" else "no" in
  List.iter
    (fun (row : Page_policy.experiment_row) ->
      let v = row.Page_policy.result in
      add_row t
        [
          Config.policy_placement_name row.Page_policy.placement;
          Page_policy.attack_name row.Page_policy.attack;
          flag v.Page_policy.released;
          flag v.Page_policy.modified;
          flag v.Page_policy.denied;
          v.Page_policy.note;
        ])
    (measure ());
  t

let render () = Multics_util.Table.render (table ())
