(** E13 — the performance cost of security (the paper's footnote 7):
    one editing workload run in the full-system simulation on the 645
    baseline, the reviewed 6180 supervisor, and the engineered kernel;
    gate-crossing cycles against computation. *)

val id : string
val title : string
val paper_claim : string

val workload : Multics_kernel.Program.t

type row = {
  config_name : string;
  processor : string;
  gate_calls : int;
  gate_cycles : int;
  compute_cycles : int;
  elapsed : int;
  security_overhead : float;
}

val measure : unit -> row list
val table : unit -> Multics_util.Table.t
val render : unit -> string
