(** Ablations over the design choices: eviction policy (A1), layer-1
    virtual-processor pool size (A2), and the free-frame watermark
    (A3). *)

module A1 : sig
  val id : string
  val title : string
  val paper_claim : string

  type row = { policy : string; faults : int; page_ins : int; latency_mean : float }

  val measure : unit -> row list
  val table : unit -> Multics_util.Table.t
  val render : unit -> string
end

module A2 : sig
  val id : string
  val title : string
  val paper_claim : string

  type row = { vps : int; makespan : int; speedup : float }

  val measure : unit -> row list
  val table : unit -> Multics_util.Table.t
  val render : unit -> string
end

module A3 : sig
  val id : string
  val title : string
  val paper_claim : string

  type row = {
    core_target : int;
    faults : int;
    latency_mean : float;
    freer_evictions : int;
  }

  val measure : unit -> row list
  val table : unit -> Multics_util.Table.t
  val render : unit -> string
end
