(** E10 — randomized operation traces with taint tracking: the Mitre
    lattice admits no downward flow. *)

val id : string
val title : string
val paper_claim : string

type result = {
  operations : int;
  permitted : int;
  refused_read_up : int;
  refused_write_down : int;
  flow_violations : int;
  distinct_labels : int;
}

val measure : ?seed:int -> ?subjects:int -> ?objects:int -> ?operations:int -> unit -> result
val table : unit -> Multics_util.Table.t
val render : unit -> string
