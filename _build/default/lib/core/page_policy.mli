(** Policy/mechanism partitioning for page removal (experiment E9):
    the same malicious policy run unpartitioned in ring 0 (all three
    security violations succeed) and partitioned behind the ring-1
    mechanism interface (only denial of use is expressible). *)

open Multics_fs
open Multics_mm

type mechanism_view = { page_handles : int list; used_bits : (int * bool) list }
(** What a ring-1 policy may see: opaque page handles and usage bits —
    no contents, no segment identities, no frame addresses. *)

type raw_view = { mem : Memory.t; hierarchy : Hierarchy.t; core_pages : Page_id.t list }

type verdict = { released : bool; modified : bool; denied : bool; note : string }

type attack = Read_secret | Overwrite_segment | Deny_service

val attack_name : attack -> string

val mechanism_view_of : Memory.t -> mechanism_view * (int -> Page_id.t option)
(** The restricted view plus the ring-0-only mapping back to real
    pages. *)

val run_in_ring0 : raw_view -> attack:attack -> secret_uid:Uid.t -> verdict
val run_in_ring1 : mechanism_view -> attack:attack -> verdict

type experiment_row = {
  placement : Config.policy_placement;
  attack : attack;
  result : verdict;
}

val attack_matrix : unit -> experiment_row list
(** The full placement x attack matrix over a fresh little world. *)

val violation_achieved : experiment_row -> bool
