(* The supervisor-boundary placement cost model (experiments E4/E5).

   The paper's own example: "consider two procedure modules, A and B,
   in the supervisor.  Imagine that a single invocation of A (by a user
   procedure) can result in a flurry of calls from A to B.  If calls
   that change the ring of execution of a process are more expensive
   than calls that do not, then there is a clear performance cost in
   placing the supervisor boundary between A and B, even if only B need
   be part of the protected, common supervisor."

   Three placements of the protection boundary:
   - [Both_inside]: user -> (gate) A -> B; one crossing per invocation;
   - [Boundary_between]: user -> A (user ring) -> (gate) B; one
     crossing per inner call — k crossings per invocation;
   - [Both_outside]: no protected code at all (the no-protection
     floor, for reference). *)

open Multics_machine

type placement = Both_inside | Boundary_between | Both_outside

let placement_name = function
  | Both_inside -> "A and B in supervisor"
  | Boundary_between -> "boundary between A and B"
  | Both_outside -> "no supervisor code"

(* Cycles for one user-level invocation of A that makes [inner_calls]
   calls to B, with [work] cycles of real computation inside each
   procedure activation. *)
let invocation_cost cost ~placement ~inner_calls ~work =
  let in_ring = Cost.round_trip_call_cost cost ~cross_ring:false in
  let cross = Cost.round_trip_call_cost cost ~cross_ring:true in
  let body_work = work * (1 + inner_calls) in
  match placement with
  | Both_inside -> cross + (inner_calls * in_ring) + body_work
  | Boundary_between -> in_ring + (inner_calls * cross) + body_work
  | Both_outside -> in_ring + (inner_calls * in_ring) + body_work

(* Relative overhead of moving A out of the supervisor (keeping only B
   protected), against keeping both inside. *)
let removal_overhead cost ~inner_calls ~work =
  let inside = invocation_cost cost ~placement:Both_inside ~inner_calls ~work in
  let between = invocation_cost cost ~placement:Boundary_between ~inner_calls ~work in
  float_of_int between /. float_of_int inside

type sweep_point = {
  inner_calls : int;
  h645_overhead : float;
  h6180_overhead : float;
}

(* Sweep the paper's example over the call-flurry size, on both
   processors.  The 645 column shows the pressure that pushed A into
   the supervisor; the 6180 column shows it removed. *)
let sweep ?(work = 50) ~inner_calls_list () =
  List.map
    (fun inner_calls ->
      {
        inner_calls;
        h645_overhead = removal_overhead Cost.h645 ~inner_calls ~work;
        h6180_overhead = removal_overhead Cost.h6180 ~inner_calls ~work;
      })
    inner_calls_list
