(** User programs as data: a list of steps over named slots,
    interpreted against the kernel API.  Pure values — the same program
    runs unchanged against any configuration, and inside the
    full-system simulation ({!Session}) where steps also cost time. *)

type step =
  | Create_segment of {
      path : string;
      acl : Multics_access.Acl.t;
      label : Multics_access.Label.t;
      slot : string;  (** receives the new segment number *)
    }
  | Create_directory of {
      path : string;
      acl : Multics_access.Acl.t;
      label : Multics_access.Label.t;
      slot : string;
    }
  | Resolve of { path : string; slot : string }
  | Delete of { path : string }
  | Write_word of { seg : string; offset : int; value : value }
  | Read_word of { seg : string; offset : int; slot : string }
  | Bind_name of { name : string; seg : string }
  | Lookup_name of { name : string; slot : string }
  | Snap_link of { seg : string; link_index : int; slot : string }
  | Enter_subsystem of { seg : string; entry_offset : int; name : string }
  | Exit_subsystem
  | Set_acl of { seg : string; acl : Multics_access.Acl.t }
  | Compute of int  (** pure computation, in simulated cycles *)
  | Assert_slot of { slot : string; expected : int }
  | Repeat of int * step list

and value = Const of int | Slot of string

type t

val make : name:string -> step list -> t
val name : t -> string

val describe_step : step -> string

type outcome = {
  completed : bool;
  failed_step : string option;  (** first failing step's message *)
  slots : (string * int) list;  (** final slot values, sorted by name *)
  steps_run : int;
  gate_calls : int;  (** steps that entered the kernel *)
}

val run :
  ?on_compute:(int -> unit) ->
  ?on_gate:(step -> unit) ->
  ?on_reference:(segno:int -> offset:int -> write:bool -> unit) ->
  System.t ->
  handle:int ->
  t ->
  outcome
(** Interpret the program as the given process.  A failing step stops
    the program (recorded in [failed_step]); later steps do not run.
    The hooks feed the timed interpreter in {!Session}: [on_compute]
    for [Compute] steps, [on_gate] before each kernel-entering step,
    [on_reference] before each content read/write (the paging hook).
    Defaults ignore them. *)
