(** Kernel configurations: every before/after choice in the paper's
    engineering program, as one record.  {!stages} is the canonical
    progression from the 645 baseline supervisor to the target
    security kernel. *)

type io_strategy = Device_drivers | Network_only

type buffer_strategy = Circular_ring of int | Infinite_vm

type policy_placement = Policy_in_ring0 | Policy_in_ring1

type init_strategy = Bootstrap | Memory_image

type login_mechanism = Privileged_login | Unified_subsystem_entry

type t = {
  name : string;
  processor : Multics_machine.Cost.processor;
  linker : Multics_link.Linker.placement;
  linker_flaws : Multics_link.Linker.flaw list;
  naming : Multics_link.Rnt.placement;
  io : io_strategy;
  buffer : buffer_strategy;
  page_control : Multics_vm.Page_control.discipline;
  interrupts : Multics_proc.Interrupt.discipline;
  page_policy : policy_placement;
  init : init_strategy;
  login : login_mechanism;
}

val io_strategy_name : io_strategy -> string
val buffer_strategy_name : buffer_strategy -> string
val policy_placement_name : policy_placement -> string
val init_strategy_name : init_strategy -> string
val login_mechanism_name : login_mechanism -> string

val baseline_645 : t
(** The pre-project supervisor: 645 processor, everything in ring 0,
    historical linker flaws present. *)

val hardware_rings : t
(** Review stage: 6180 hardware rings, known flaws repaired. *)

val linker_removed : t
val naming_removed : t
val simplified_io : t
val parallel_kernel : t

val kernel_6180 : t
(** The target security kernel: all removals, simplifications and
    partitionings applied. *)

val stages : t list
(** The seven configurations above, in engineering order. *)

val cost : t -> Multics_machine.Cost.t

val pp : Format.formatter -> t -> unit
