(** System initialization: per-start privileged bootstrap vs the
    memory-image strategy (generation runs offline and unprivileged). *)

type step = {
  step_name : string;
  privileged_statements : int;
  offline_statements : int;
  device_related : bool;
}

type report = {
  strategy : Config.init_strategy;
  steps : step list;
  privileged_total : int;  (** ring-0 statements executed at each start *)
  offline_total : int;  (** statements moved to the offline generation run *)
}

val run : Config.t -> report

val step_count : report -> int
val privileged_step_count : report -> int
