(** The kernel audit trail of mediation decisions. *)

open Multics_access

type verdict = Granted | Refused of string

type record = {
  seq : int;
  subject : string;
  ring : int;
  operation : string;
  target : string;
  verdict : verdict;
}

type t

val create : unit -> t
val set_enabled : t -> bool -> unit

val log :
  t -> subject:Policy.subject -> operation:string -> target:string -> verdict:verdict -> unit

val records : t -> record list
(** Oldest first. *)

val length : t -> int
val refusals : t -> record list
val grants : t -> record list
val refusal_count : t -> int
val by_operation : t -> operation:string -> record list
val pp_record : Format.formatter -> record -> unit
