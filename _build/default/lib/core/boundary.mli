(** The supervisor-boundary placement cost model: the paper's A/B
    call-flurry example, on both processors (experiments E4/E5). *)

open Multics_machine

type placement = Both_inside | Boundary_between | Both_outside

val placement_name : placement -> string

val invocation_cost : Cost.t -> placement:placement -> inner_calls:int -> work:int -> int
(** Cycles for one user invocation of A making [inner_calls] calls to
    B, with [work] cycles of computation per activation. *)

val removal_overhead : Cost.t -> inner_calls:int -> work:int -> float
(** Cost of placing the boundary between A and B, relative to keeping
    both inside the supervisor. *)

type sweep_point = {
  inner_calls : int;
  h645_overhead : float;
  h6180_overhead : float;
}

val sweep : ?work:int -> inner_calls_list:int list -> unit -> sweep_point list
