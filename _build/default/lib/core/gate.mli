(** The gate table: user-available supervisor entry points per
    configuration.  Sized so the paper's removal proportions hold of
    the functional surface: 60 baseline gates, linker = 6 (10%),
    linker + naming = 20 (one third). *)

open Multics_machine

type entry = {
  gate_name : string;
  subsystem : string;
  call_top : Ring.t;
}

val catalog : Config.t -> entry list

val count : Config.t -> int

val user_callable_count : Config.t -> int
(** Gates callable from the outermost ring (excludes the ring-1
    page-mechanism interface). *)

val find : Config.t -> gate_name:string -> entry option

val subsystems : Config.t -> string list

val count_by_subsystem : Config.t -> (string * int) list
