(* The kernel's gate-call interface.

   Every function here is one supervisor entry point from the
   {!Gate} catalog.  A call is mediated three times over:

   1. the gate must exist in the running configuration (a removed
      mechanism's gates are simply absent — the caller must use the
      user-ring library instead);
   2. the caller's ring must be within the gate's call bracket;
   3. the operation itself applies the reference monitor (ACL x
      lattice at descriptor construction, SDW checks at reference).

   Content references ([read_word]/[write_word]) deliberately check
   the SDW installed at initiate time rather than re-deriving policy,
   because that is what the hardware does — and it is why a flawed
   kernel linker that installs a too-permissive descriptor yields a
   real, exploitable unauthorized access (experiment E11). *)

open Multics_access
open Multics_fs
open Multics_link
open Multics_machine

type error =
  | Fs of Hierarchy.error
  | Kst_error of Kst.error
  | Rnt_error of Rnt.error
  | Gate_absent of string
  | Gate_ring_denied of { gate : string; ring : int }
  | Hardware_denied of Hardware.denial
  | Link_failed of Linker.outcome
  | No_such_process of int
  | No_such_channel of int
  | Device_not_attached of string
  | Not_in_subsystem
  | Not_authorized of string

let error_to_string = function
  | Fs e -> "fs: " ^ Hierarchy.error_to_string e
  | Kst_error e -> "kst: " ^ Kst.error_to_string e
  | Rnt_error e -> "rnt: " ^ Rnt.error_to_string e
  | Gate_absent gate -> Printf.sprintf "gate %s is not part of this kernel" gate
  | Gate_ring_denied { gate; ring } ->
      Printf.sprintf "gate %s may not be called from ring %d" gate ring
  | Hardware_denied d -> "hardware: " ^ Hardware.denial_to_string d
  | Link_failed outcome -> "link: " ^ Linker.outcome_to_string outcome
  | No_such_process handle -> Printf.sprintf "no process %d" handle
  | No_such_channel id -> Printf.sprintf "no event channel %d" id
  | Device_not_attached device -> Printf.sprintf "device %s not attached" device
  | Not_in_subsystem -> "not executing in a protected subsystem"
  | Not_authorized what -> "not authorized: " ^ what

let ( let* ) r f = Result.bind r f

let fs_result r = Result.map_error (fun e -> Fs e) r
let kst_result r = Result.map_error (fun e -> Kst_error e) r
let rnt_result r = Result.map_error (fun e -> Rnt_error e) r

(* ----- The gate discipline ----- *)

let gate_check system (p : System.proc) ~gate =
  match Gate.find (System.config system) ~gate_name:gate with
  | None -> Error (Gate_absent gate)
  | Some entry ->
      if Ring.to_int p.System.ring <= Ring.to_int entry.Gate.call_top then Ok ()
      else Error (Gate_ring_denied { gate; ring = Ring.to_int p.System.ring })

(* Wrap one gate call: locate the process, enforce the gate
   discipline, run the body, and write the audit record. *)
let call system ~handle ~gate ~target body =
  match System.proc system handle with
  | None -> Error (No_such_process handle)
  | Some p -> (
      let subject = System.subject_of p in
      match gate_check system p ~gate with
      | Error e ->
          Audit_log.log (System.audit system) ~subject ~operation:gate ~target
            ~verdict:(Audit_log.Refused (error_to_string e));
          Error e
      | Ok () ->
          let result = body p subject in
          let verdict =
            match result with
            | Ok _ -> Audit_log.Granted
            | Error e -> Audit_log.Refused (error_to_string e)
          in
          Audit_log.log (System.audit system) ~subject ~operation:gate ~target ~verdict;
          result)

let uid_of_segno (p : System.proc) segno = kst_result (Kst.uid_of_segno p.System.kst segno)

(* ----- Directory control ----- *)

let initiate system ~handle ~dir_segno ~name =
  call system ~handle ~gate:"initiate" ~target:name (fun p subject ->
      let* dir = uid_of_segno p dir_segno in
      let* uid = fs_result (Hierarchy.lookup (System.hierarchy system) ~subject ~dir ~name) in
      Ok (System.install_known system p ~uid))

let terminate system ~handle ~segno =
  call system ~handle ~gate:"terminate" ~target:(string_of_int segno) (fun p _subject ->
      kst_result (Kst.terminate p.System.kst segno))

let create_segment ?brackets system ~handle ~dir_segno ~name ~acl ~label =
  call system ~handle ~gate:"create_segment" ~target:name (fun p subject ->
      let* dir = uid_of_segno p dir_segno in
      let* uid =
        fs_result
          (Hierarchy.create_segment ?brackets (System.hierarchy system) ~subject ~dir ~name ~acl
             ~label)
      in
      Ok (System.install_known system p ~uid))

let create_directory system ~handle ~dir_segno ~name ~acl ~label =
  call system ~handle ~gate:"create_directory" ~target:name (fun p subject ->
      let* dir = uid_of_segno p dir_segno in
      let* uid =
        fs_result
          (Hierarchy.create_directory (System.hierarchy system) ~subject ~dir ~name ~acl ~label)
      in
      Ok (System.install_known system p ~uid))

let delete_entry system ~handle ~dir_segno ~name =
  call system ~handle ~gate:"delete_entry" ~target:name (fun p subject ->
      let* dir = uid_of_segno p dir_segno in
      let* _uid = fs_result (Hierarchy.delete_entry (System.hierarchy system) ~subject ~dir ~name) in
      Ok ())

let rename_entry system ~handle ~dir_segno ~name ~new_name =
  call system ~handle ~gate:"rename_entry" ~target:name (fun p subject ->
      let* dir = uid_of_segno p dir_segno in
      let* _uid =
        fs_result (Hierarchy.rename_entry (System.hierarchy system) ~subject ~dir ~name ~new_name)
      in
      Ok ())

let list_directory system ~handle ~dir_segno =
  call system ~handle ~gate:"list_directory" ~target:(string_of_int dir_segno)
    (fun p subject ->
      let* dir = uid_of_segno p dir_segno in
      let* entries = fs_result (Hierarchy.list_entries (System.hierarchy system) ~subject ~dir) in
      Ok (List.map (fun (name, _uid) -> name) entries))

type entry_status = {
  status_name : string;
  status_kind : Hierarchy.kind;
  status_label : Label.t;
  status_pages : int;
}

let status_entry system ~handle ~dir_segno ~name =
  call system ~handle ~gate:"status_entry" ~target:name (fun p subject ->
      let* dir = uid_of_segno p dir_segno in
      let hierarchy = System.hierarchy system in
      let* uid = fs_result (Hierarchy.lookup hierarchy ~subject ~dir ~name) in
      match (Hierarchy.kind_of hierarchy uid, Hierarchy.label_of hierarchy uid) with
      | Some status_kind, Some status_label ->
          Ok
            {
              status_name = name;
              status_kind;
              status_label;
              status_pages = Option.value ~default:0 (Hierarchy.page_count_of hierarchy uid);
            }
      | _, _ -> Error (Fs (Hierarchy.No_entry name)))

(* Attribute changes finish with "setfaults": every cached descriptor
   for the object is recomputed, so a revoked grant cannot survive in
   any process's SDW. *)

let set_acl system ~handle ~segno ~acl =
  call system ~handle ~gate:"set_acl" ~target:(string_of_int segno) (fun p subject ->
      let* uid = uid_of_segno p segno in
      let* () = fs_result (Hierarchy.set_acl (System.hierarchy system) ~subject ~uid ~acl) in
      System.setfaults system ~uid;
      Ok ())

let set_brackets system ~handle ~segno ~brackets =
  call system ~handle ~gate:"set_brackets" ~target:(string_of_int segno) (fun p subject ->
      let* uid = uid_of_segno p segno in
      let* () =
        fs_result (Hierarchy.set_brackets (System.hierarchy system) ~subject ~uid ~brackets)
      in
      System.setfaults system ~uid;
      Ok ())

let set_gate_bound system ~handle ~segno ~gate_bound =
  call system ~handle ~gate:"set_gate_bound" ~target:(string_of_int segno) (fun p subject ->
      let* uid = uid_of_segno p segno in
      let* () =
        fs_result (Hierarchy.set_gate_bound (System.hierarchy system) ~subject ~uid ~gate_bound)
      in
      System.setfaults system ~uid;
      Ok ())

(* ----- Content references (SDW-checked, as the hardware does) ----- *)

let check_sdw (p : System.proc) ~segno ~operation =
  match Kst.sdw_of p.System.kst segno with
  | None -> Error (Kst_error (Kst.Unknown_segno segno))
  | Some sdw -> (
      match Hardware.check sdw ~ring:p.System.ring ~operation with
      | Hardware.Granted grant -> Ok grant
      | Hardware.Denied denial -> Error (Hardware_denied denial))

let read_word system ~handle ~segno ~offset =
  call system ~handle ~gate:"read_word"
    ~target:(Printf.sprintf "%d|%d" segno offset)
    (fun p _subject ->
      let* _grant = check_sdw p ~segno ~operation:Hardware.Read in
      let* uid = uid_of_segno p segno in
      match Hierarchy.raw_read_word (System.hierarchy system) ~uid ~offset with
      | Some value -> Ok value
      | None -> Error (Fs (Hierarchy.Not_a_segment (string_of_int segno))))

let write_word system ~handle ~segno ~offset ~value =
  call system ~handle ~gate:"write_word"
    ~target:(Printf.sprintf "%d|%d" segno offset)
    (fun p _subject ->
      let* _grant = check_sdw p ~segno ~operation:Hardware.Write in
      let* uid = uid_of_segno p segno in
      (* Segment control charges the quota cell for any growth before
         the page materializes, whichever path the write came by. *)
      let* () = fs_result (Hierarchy.charge_growth (System.hierarchy system) ~uid ~offset) in
      if Hierarchy.raw_write_word (System.hierarchy system) ~uid ~offset ~value then Ok ()
      else Error (Fs (Hierarchy.Not_a_segment (string_of_int segno))))

(* ----- Naming gates (present only while naming is in the kernel) ----- *)

let initiate_by_path system ~handle ~path =
  call system ~handle ~gate:"initiate_by_path" ~target:path (fun p subject ->
      let* uid = fs_result (Hierarchy.resolve (System.hierarchy system) ~subject ~path) in
      let segno = System.install_known system p ~uid in
      let* () = kst_result (Kst.record_pathname p.System.kst segno path) in
      Ok segno)

let parent_path path =
  match String.rindex_opt path '>' with
  | None | Some 0 -> (">", String.sub path 1 (max 0 (String.length path - 1)))
  | Some i -> (String.sub path 0 i, String.sub path (i + 1) (String.length path - i - 1))

let create_segment_by_path ?brackets system ~handle ~path ~acl ~label =
  call system ~handle ~gate:"create_segment_by_path" ~target:path (fun p subject ->
      let dir_path, name = parent_path path in
      let hierarchy = System.hierarchy system in
      let* dir = fs_result (Hierarchy.resolve hierarchy ~subject ~path:dir_path) in
      let* uid = fs_result (Hierarchy.create_segment ?brackets hierarchy ~subject ~dir ~name ~acl ~label) in
      let segno = System.install_known system p ~uid in
      let* () = kst_result (Kst.record_pathname p.System.kst segno path) in
      Ok segno)

let create_directory_by_path system ~handle ~path ~acl ~label =
  call system ~handle ~gate:"create_directory_by_path" ~target:path (fun p subject ->
      let dir_path, name = parent_path path in
      let hierarchy = System.hierarchy system in
      let* dir = fs_result (Hierarchy.resolve hierarchy ~subject ~path:dir_path) in
      let* uid = fs_result (Hierarchy.create_directory hierarchy ~subject ~dir ~name ~acl ~label) in
      Ok (System.install_known system p ~uid))

let delete_by_path system ~handle ~path =
  call system ~handle ~gate:"delete_by_path" ~target:path (fun _p subject ->
      let dir_path, name = parent_path path in
      let hierarchy = System.hierarchy system in
      let* dir = fs_result (Hierarchy.resolve hierarchy ~subject ~path:dir_path) in
      let* _uid = fs_result (Hierarchy.delete_entry hierarchy ~subject ~dir ~name) in
      Ok ())

let resolve_path system ~handle ~path =
  call system ~handle ~gate:"resolve_path" ~target:path (fun p subject ->
      let* uid = fs_result (Hierarchy.resolve (System.hierarchy system) ~subject ~path) in
      Ok (System.install_known system p ~uid))

let rnt_bind system ~handle ~name ~segno =
  call system ~handle ~gate:"rnt_bind" ~target:name (fun p _subject ->
      rnt_result (Rnt.bind p.System.rnt ~name ~segno))

let rnt_lookup system ~handle ~name =
  call system ~handle ~gate:"rnt_lookup" ~target:name (fun p _subject ->
      rnt_result (Rnt.lookup p.System.rnt ~name))

let rnt_unbind system ~handle ~name =
  call system ~handle ~gate:"rnt_unbind" ~target:name (fun p _subject ->
      rnt_result (Rnt.unbind p.System.rnt ~name))

let list_reference_names system ~handle ~segno =
  call system ~handle ~gate:"list_reference_names" ~target:(string_of_int segno)
    (fun p _subject -> Ok (Rnt.names_for_segno p.System.rnt ~segno))

(* ----- Linker gates (present only while the linker is in the kernel) ----- *)

(* The historical escalation: when the flawed ring-0 linker snaps a
   link it found with supervisor authority, it also installs a
   supervisor-grade descriptor for the target — the user ends up with
   read/write access the reference monitor never granted. *)
let install_after_flawed_snap (p : System.proc) ~target =
  let segno, _ = Kst.make_known p.System.kst ~uid:target in
  let sdw = Sdw.make ~mode:Mode.rew ~brackets:Multics_machine.Brackets.user_data () in
  ignore (Kst.set_sdw p.System.kst segno sdw);
  segno

let snap_link system ~handle ~segno ~link_index =
  call system ~handle ~gate:"snap_link"
    ~target:(Printf.sprintf "%d#%d" segno link_index)
    (fun p subject ->
      let* from_uid = uid_of_segno p segno in
      let linker = System.linker system in
      match
        Linker.resolve_link linker ~subject ~rules:p.System.rules ~from_uid ~link_index
      with
      | Linker.Snapped { target; offset; _ } | Linker.Already_snapped { target; offset } ->
          let target_segno =
            if Linker.has_flaw linker Linker.Supervisor_authority_walk then
              install_after_flawed_snap p ~target
            else System.install_known system p ~uid:target
          in
          Ok (target_segno, offset)
      | other -> Error (Link_failed other))

let set_search_rules system ~handle ~dir_segnos =
  call system ~handle ~gate:"set_search_rules" ~target:"rules" (fun p _subject ->
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | segno :: rest ->
            let* uid = uid_of_segno p segno in
            collect ((string_of_int segno, uid) :: acc) rest
      in
      let* dirs = collect [] dir_segnos in
      p.System.rules <- Search_rules.of_dirs dirs;
      Ok ())

let get_search_rules system ~handle =
  call system ~handle ~gate:"get_search_rules" ~target:"rules" (fun p _subject ->
      Ok (Search_rules.rule_names p.System.rules))

(* ----- Protected subsystem entry -----

   On the 6180 entering a protected subsystem is a hardware gate call,
   not a supervisor entry, so it is available in every configuration;
   only its SDW decides whether the crossing is legal.  (Under the
   unified-login configuration the same mechanism also performs
   login.)  The call is still audited. *)

let call_hardware system ~handle ~operation ~target body =
  match System.proc system handle with
  | None -> Error (No_such_process handle)
  | Some p ->
      let subject = System.subject_of p in
      let result = body p in
      let verdict =
        match result with
        | Ok _ -> Audit_log.Granted
        | Error e -> Audit_log.Refused (error_to_string e)
      in
      Audit_log.log (System.audit system) ~subject ~operation ~target ~verdict;
      result

let enter_subsystem system ~handle ~segno ~entry_offset ~name =
  call_hardware system ~handle ~operation:"subsystem_entry" ~target:name (fun p ->
      let* grant = check_sdw p ~segno ~operation:(Hardware.Call entry_offset) in
      match grant with
      | Hardware.Gate_entry target_ring ->
          p.System.subsystem_stack <- (name, p.System.ring) :: p.System.subsystem_stack;
          p.System.ring <- target_ring;
          Ok target_ring
      | Hardware.Access_ok ->
          (* Same-ring call: no protection boundary crossed. *)
          Ok p.System.ring)

let exit_subsystem system ~handle =
  call_hardware system ~handle ~operation:"subsystem_exit" ~target:"(return)" (fun p ->
      match p.System.subsystem_stack with
      | [] -> Error Not_in_subsystem
      | (_name, restore_ring) :: rest ->
          p.System.subsystem_stack <- rest;
          p.System.ring <- restore_ring;
          Ok restore_ring)

(* ----- IPC gates ----- *)

let create_channel system ~handle =
  call system ~handle ~gate:"create_channel" ~target:"channel" (fun _p _subject ->
      Ok (System.new_ipc_channel system))

let send_wakeup system ~handle ~channel =
  call system ~handle ~gate:"send_wakeup" ~target:(string_of_int channel) (fun _p _subject ->
      match System.ipc_channel system channel with
      | None -> Error (No_such_channel channel)
      | Some pending ->
          incr pending;
          Ok ())

let block system ~handle ~channel =
  call system ~handle ~gate:"block" ~target:(string_of_int channel) (fun _p _subject ->
      match System.ipc_channel system channel with
      | None -> Error (No_such_channel channel)
      | Some pending ->
          if !pending > 0 then begin
            decr pending;
            Ok true
          end
          else Ok false)

(* ----- External I/O gates ----- *)

(* Which gate serves a device depends on the configuration: per-device
   drivers each have their own gates; under network-only I/O every
   external device reaches the system through the network attachment. *)
let io_gate_for system device op =
  match (System.config system).Config.io with
  | Config.Device_drivers -> Printf.sprintf "%s_%s" (Multics_io.Device.name device) op
  | Config.Network_only -> "net_" ^ op

let buffer_for_config system () =
  match (System.config system).Config.buffer with
  | Config.Circular_ring capacity ->
      Multics_io.Network.Circular (Multics_io.Circular_buffer.create ~capacity)
  | Config.Infinite_vm -> Multics_io.Network.Infinite (Multics_io.Infinite_buffer.create ())

let attach_device system ~handle ~device =
  let dev = Multics_io.Device.name device in
  call system ~handle ~gate:(io_gate_for system device "attach") ~target:dev
    (fun _p _subject ->
      let buffers = System.io_buffers system in
      if not (Hashtbl.mem buffers dev) then Hashtbl.replace buffers dev (buffer_for_config system ());
      Ok ())

let detach_device system ~handle ~device =
  let dev = Multics_io.Device.name device in
  call system ~handle ~gate:(io_gate_for system device "detach") ~target:dev
    (fun _p _subject ->
      if Hashtbl.mem (System.io_buffers system) dev then begin
        Hashtbl.remove (System.io_buffers system) dev;
        Ok ()
      end
      else Error (Device_not_attached dev))

let device_write system ~handle ~device ~message =
  let dev = Multics_io.Device.name device in
  call system ~handle ~gate:(io_gate_for system device "io") ~target:dev (fun _p _subject ->
      match Hashtbl.find_opt (System.io_buffers system) dev with
      | None -> Error (Device_not_attached dev)
      | Some (Multics_io.Network.Circular buffer) ->
          Multics_io.Circular_buffer.write buffer message;
          Ok ()
      | Some (Multics_io.Network.Infinite buffer) ->
          Multics_io.Infinite_buffer.write buffer message;
          Ok ())

let device_read system ~handle ~device =
  let dev = Multics_io.Device.name device in
  call system ~handle ~gate:(io_gate_for system device "io") ~target:dev (fun _p _subject ->
      match Hashtbl.find_opt (System.io_buffers system) dev with
      | None -> Error (Device_not_attached dev)
      | Some (Multics_io.Network.Circular buffer) -> Ok (Multics_io.Circular_buffer.read buffer)
      | Some (Multics_io.Network.Infinite buffer) -> Ok (Multics_io.Infinite_buffer.read buffer))

(* ----- Quota ----- *)

let set_quota system ~handle ~segno ~quota =
  call system ~handle ~gate:"set_quota" ~target:(string_of_int segno) (fun p subject ->
      let* uid = uid_of_segno p segno in
      fs_result (Hierarchy.set_quota (System.hierarchy system) ~subject ~uid ~quota))

(* ----- Remaining linker gates ----- *)

type link_status = {
  link_target_seg : string;
  link_target_entry : string;
  link_snapped : bool;
}

let list_links system ~handle ~segno =
  call system ~handle ~gate:"list_links" ~target:(string_of_int segno) (fun p _subject ->
      let* uid = uid_of_segno p segno in
      match Object_seg.Store.get (System.store system) ~uid with
      | None -> Ok []
      | Some obj ->
          Ok
            (List.init (Object_seg.link_count obj) (fun i ->
                 match Object_seg.link obj i with
                 | Some l ->
                     {
                       link_target_seg = l.Object_seg.target_seg;
                       link_target_entry = l.Object_seg.target_entry;
                       link_snapped = l.Object_seg.snapped <> None;
                     }
                 | None ->
                     { link_target_seg = "?"; link_target_entry = "?"; link_snapped = false })))

(* ----- Remaining naming gates ----- *)

let get_working_dir system ~handle =
  call system ~handle ~gate:"get_working_dir" ~target:"wd" (fun p _subject ->
      Ok (System.install_known system p ~uid:p.System.working_dir))

let set_working_dir system ~handle ~dir_segno =
  call system ~handle ~gate:"set_working_dir" ~target:(string_of_int dir_segno)
    (fun p _subject ->
      let* uid = uid_of_segno p dir_segno in
      p.System.working_dir <- uid;
      Ok ())

let initiate_count system ~handle =
  call system ~handle ~gate:"initiate_count" ~target:"kst" (fun p _subject ->
      Ok (Kst.entry_count p.System.kst))

let terminate_by_path system ~handle ~path =
  call system ~handle ~gate:"terminate_by_path" ~target:path (fun p subject ->
      let* uid = fs_result (Hierarchy.resolve (System.hierarchy system) ~subject ~path) in
      match Kst.segno_of_uid p.System.kst ~uid with
      | Some segno -> kst_result (Kst.terminate p.System.kst segno)
      | None -> Error (Kst_error (Kst.Unknown_segno 0)))

(* ----- Process-management gates -----

   Under the privileged-login configuration these are supervisor gates;
   under the unified configuration the same functions are reached
   through the ordinary subsystem-entry mechanism (non-privileged), so
   the facade dispatches on gate presence. *)

let login_gate_or_unified system ~handle ~gate ~target body =
  match Gate.find (System.config system) ~gate_name:gate with
  | Some _ -> call system ~handle ~gate ~target body
  | None ->
      call_hardware system ~handle
        ~operation:("subsystem_entry:" ^ gate)
        ~target
        (fun p -> body p (System.subject_of p))

let create_process system ~handle =
  login_gate_or_unified system ~handle ~gate:"create_process" ~target:"child"
    (fun _p _subject ->
      match System.clone_process system ~handle with
      | Some child -> Ok child
      | None -> Error (No_such_process handle))

let destroy_process system ~handle ~target =
  login_gate_or_unified system ~handle ~gate:"destroy_process"
    ~target:(string_of_int target) (fun _p _subject ->
      if List.mem target (System.sibling_handles system ~handle) then
        if System.logout system ~handle:target then Ok () else Error (No_such_process target)
      else Error (Not_authorized "destroy_process: not your process"))

let new_proc system ~handle =
  login_gate_or_unified system ~handle ~gate:"new_proc" ~target:"self" (fun _p _subject ->
      match System.clone_process system ~handle with
      | Some fresh ->
          ignore (System.logout system ~handle);
          Ok fresh
      | None -> Error (No_such_process handle))

type process_info = {
  info_principal : string;
  info_ring : int;
  info_level : Label.t;
  info_known_segments : int;
  info_login_ring : int;
}

let proc_info system ~handle =
  login_gate_or_unified system ~handle ~gate:"proc_info" ~target:"self" (fun p _subject ->
      Ok
        {
          info_principal = Principal.to_string p.System.principal;
          info_ring = Ring.to_int p.System.ring;
          info_level = p.System.clearance;
          info_known_segments = Kst.entry_count p.System.kst;
          info_login_ring = Ring.to_int p.System.login_ring;
        })

let list_processes system ~handle =
  login_gate_or_unified system ~handle ~gate:"list_processes" ~target:"siblings"
    (fun _p _subject -> Ok (System.sibling_handles system ~handle))

let operator_message system ~handle ~message =
  login_gate_or_unified system ~handle ~gate:"operator_message" ~target:message
    (fun _p _subject -> Ok ())
