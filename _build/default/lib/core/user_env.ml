(* The user-ring environment library.

   Everything the removal projects took out of the supervisor has to
   run somewhere: here.  These functions execute with the process's own
   authority and use only the ordinary kernel gates ([initiate],
   [list_directory], ...), demonstrating the paper's point that tree
   walking, reference-name management and linking need no common
   mechanism.

   Under a pre-removal configuration the same facade simply calls the
   kernel's naming/linker gates, so callers are configuration-blind:
   the difference is *where* the work happens, not what API programs
   see. *)

open Multics_fs
open Multics_link

type error = Api of Api.error | Rnt_user of Rnt.error | Link_user of Linker.outcome

let error_to_string = function
  | Api e -> Api.error_to_string e
  | Rnt_user e -> Rnt.error_to_string e
  | Link_user outcome -> Linker.outcome_to_string outcome

let ( let* ) r f = Result.bind r f

let api_result r = Result.map_error (fun e -> Api e) r

let naming_in_kernel system =
  match (System.config system).Config.naming with
  | Rnt.In_kernel -> true
  | Rnt.In_user_ring -> false

let linker_in_kernel system =
  match (System.config system).Config.linker with
  | Linker.In_kernel -> true
  | Linker.In_user_ring -> false

(* The root's segment number in this process (primed at login). *)
let root_segno system ~handle =
  match System.proc system handle with
  | None -> Error (Api (Api.No_such_process handle))
  | Some p -> (
      match Kst.segno_of_uid p.System.kst ~uid:Uid.root with
      | Some segno -> Ok segno
      | None -> Error (Api (Api.Kst_error (Kst.Unknown_segno 0))))

(* ----- Tree-name resolution ----- *)

let split_path path =
  if path = ">" then Ok []
  else if String.length path = 0 || path.[0] <> '>' then
    Error (Api (Api.Fs (Hierarchy.Invalid_path path)))
  else Ok (String.split_on_char '>' (String.sub path 1 (String.length path - 1)))

(* Resolve a tree name by walking one [initiate] gate call per
   component — the user-ring replacement for the kernel's resolver.
   Pre-removal configurations delegate to the kernel gate instead. *)
let resolve_path system ~handle ~path =
  if naming_in_kernel system then api_result (Api.resolve_path system ~handle ~path)
  else begin
    let* components = split_path path in
    let* root = root_segno system ~handle in
    let rec walk dir_segno = function
      | [] -> Ok dir_segno
      | name :: rest ->
          let* segno = api_result (Api.initiate system ~handle ~dir_segno ~name) in
          walk segno rest
    in
    walk root components
  end

let parent_path path =
  match String.rindex_opt path '>' with
  | None | Some 0 -> (">", String.sub path 1 (max 0 (String.length path - 1)))
  | Some i -> (String.sub path 0 i, String.sub path (i + 1) (String.length path - i - 1))

let create_segment_at ?brackets system ~handle ~path ~acl ~label =
  if naming_in_kernel system then
    api_result (Api.create_segment_by_path ?brackets system ~handle ~path ~acl ~label)
  else begin
    let dir_path, name = parent_path path in
    let* dir_segno = resolve_path system ~handle ~path:dir_path in
    api_result (Api.create_segment ?brackets system ~handle ~dir_segno ~name ~acl ~label)
  end

let create_directory_at system ~handle ~path ~acl ~label =
  if naming_in_kernel system then
    api_result (Api.create_directory_by_path system ~handle ~path ~acl ~label)
  else begin
    let dir_path, name = parent_path path in
    let* dir_segno = resolve_path system ~handle ~path:dir_path in
    api_result (Api.create_directory system ~handle ~dir_segno ~name ~acl ~label)
  end

let delete_at system ~handle ~path =
  if naming_in_kernel system then api_result (Api.delete_by_path system ~handle ~path)
  else begin
    let dir_path, name = parent_path path in
    let* dir_segno = resolve_path system ~handle ~path:dir_path in
    api_result (Api.delete_entry system ~handle ~dir_segno ~name)
  end

(* ----- Reference names ----- *)

let rnt_user_result r = Result.map_error (fun e -> Rnt_user e) r

let bind_name system ~handle ~name ~segno =
  if naming_in_kernel system then api_result (Api.rnt_bind system ~handle ~name ~segno)
  else begin
    match System.proc system handle with
    | None -> Error (Api (Api.No_such_process handle))
    | Some p -> rnt_user_result (Rnt.bind p.System.rnt ~name ~segno)
  end

let lookup_name system ~handle ~name =
  if naming_in_kernel system then api_result (Api.rnt_lookup system ~handle ~name)
  else begin
    match System.proc system handle with
    | None -> Error (Api (Api.No_such_process handle))
    | Some p -> rnt_user_result (Rnt.lookup p.System.rnt ~name)
  end

let unbind_name system ~handle ~name =
  if naming_in_kernel system then api_result (Api.rnt_unbind system ~handle ~name)
  else begin
    match System.proc system handle with
    | None -> Error (Api (Api.No_such_process handle))
    | Some p -> rnt_user_result (Rnt.unbind p.System.rnt ~name)
  end

(* ----- Linking ----- *)

(* Snap a link.  Pre-removal this is the kernel's snap_link gate;
   post-removal the linker runs here, in the faulting ring, with the
   process's own authority (its directory searches are exactly what
   the initiate gate would mediate), and the target is made known
   through the ordinary descriptor-construction path. *)
let snap_link system ~handle ~segno ~link_index =
  if linker_in_kernel system then api_result (Api.snap_link system ~handle ~segno ~link_index)
  else begin
    match System.proc system handle with
    | None -> Error (Api (Api.No_such_process handle))
    | Some p -> (
        match Kst.uid_of_segno p.System.kst segno with
        | Error e -> Error (Api (Api.Kst_error e))
        | Ok from_uid -> (
            let subject = System.subject_of p in
            match
              Linker.resolve_link (System.linker system) ~subject ~rules:p.System.rules
                ~from_uid ~link_index
            with
            | Linker.Snapped { target; offset; _ } | Linker.Already_snapped { target; offset }
              ->
                let target_segno = System.install_known system p ~uid:target in
                Ok (target_segno, offset)
            | other -> Error (Link_user other)))
  end
