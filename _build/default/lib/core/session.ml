(* The full-system simulation: the security kernel (System) joined to
   the machine substrate (Sim + Memory + Page_control), with user
   programs running as simulated processes.

   Every program step is charged realistically:
   - a kernel-entering step pays the processor's cross-ring round
     trip — the quantity that differs two orders of magnitude between
     the 645 and the 6180 (experiments E4/E13);
   - a content reference pages the touched word through page control
     (faults, evictions and all);
   - a [Compute] step consumes its cycles.

   The demonstration target of the whole project lives here: "the
   security kernel so developed is capable of supporting the complete
   functionality of Multics" — the same programs run on every kernel
   configuration, only their cost and the kernel's internal structure
   change. *)

open Multics_machine
open Multics_mm
open Multics_proc
open Multics_vm

type t = {
  system : System.t;
  sim : Sim.t;
  mem : Memory.t;
  pc : Page_control.t;
  interrupts : Interrupt.t;
  cost : Cost.t;
  mutable results : (Sim.pid * string * Program.outcome) list;  (** reversed *)
  mutable gate_cycles : int;
  mutable compute_cycles : int;
  mutable kernel_entries : int;  (** actual supervisor entries (audit-derived) *)
  mutable audit_mark : int;  (** audit-log length already accounted *)
}

let boot ?(virtual_processors = 10) ?(core = 16) ?(bulk = 64) ?(disk = 1024) config =
  let system = System.create config in
  let cost = Config.cost config in
  let sim = Sim.create ~cost ~virtual_processors in
  let mem = Memory.create ~cost ~core ~bulk ~disk in
  let pc = Page_control.create sim ~mem ~discipline:config.Config.page_control in
  Page_control.start pc;
  (* The configured external devices, under the configured interrupt
     discipline.  Handler processes (if configured) each reserve a
     virtual processor, like every dedicated kernel process. *)
  let interrupts = Interrupt.create sim ~discipline:config.Config.interrupts in
  let devices =
    match config.Config.io with
    | Config.Device_drivers -> Multics_io.Device.all_legacy
    | Config.Network_only -> [ Multics_io.Device.Network_attachment ]
  in
  List.iter
    (fun device ->
      Interrupt.register interrupts ~name:(Multics_io.Device.name device)
        ~service_cycles:(Multics_io.Device.service_cycles device))
    devices;
  {
    system;
    sim;
    mem;
    pc;
    interrupts;
    cost;
    results = [];
    gate_cycles = 0;
    compute_cycles = 0;
    kernel_entries = 0;
    audit_mark = 0;
  }

let system t = t.system
let sim t = t.sim
let memory t = t.mem
let page_control t = t.pc
let interrupts t = t.interrupts

(* Deliver a device interrupt at [now + delay].  The device must be
   one of the configuration's devices — with network-only I/O external
   devices reach the system through the network attachment. *)
let post_interrupt ?(delay = 0) t ~device =
  let name =
    match ((System.config t.system).Config.io, device) with
    | Config.Network_only, _ -> Multics_io.Device.name Multics_io.Device.Network_attachment
    | Config.Device_drivers, d -> Multics_io.Device.name d
  in
  Interrupt.post ~delay t.interrupts ~name

let gate_cycles t = t.gate_cycles
let compute_cycles t = t.compute_cycles

let words_per_page t = Multics_fs.Hierarchy.words_per_page (System.hierarchy t.system)

(* Run [program] as a simulated process of the logged-in [handle].
   Returns the Sim pid; the outcome is collected when the process
   finishes (see [results]). *)
let run_user t ~handle program =
  Sim.spawn t.sim ~name:(Program.name program) (fun pid ->
      (* Absorb audit records that predate this program (logins etc.). *)
      t.audit_mark <- max t.audit_mark (Audit_log.length (System.audit t.system));
      let on_compute cycles =
        t.compute_cycles <- t.compute_cycles + cycles;
        Sim.compute cycles
      in
      let on_gate _step =
        (* Each audited record is one supervisor entry: one gate call
           plus its return.  A user-ring resolve shows up as several
           initiate entries — the footnote-7 effect E13 measures. *)
        let len = Audit_log.length (System.audit t.system) in
        let crossings = max 0 (len - t.audit_mark) in
        t.audit_mark <- len;
        t.kernel_entries <- t.kernel_entries + crossings;
        if crossings > 0 then begin
          let cycles = crossings * Cost.round_trip_call_cost t.cost ~cross_ring:true in
          t.gate_cycles <- t.gate_cycles + cycles;
          Sim.compute cycles
        end
      in
      let on_reference ~segno ~offset ~write =
        match System.proc t.system handle with
        | None -> ()
        | Some p -> (
            match Multics_fs.Kst.uid_of_segno p.System.kst segno with
            | Error _ -> ()
            | Ok uid ->
                let page =
                  Page_id.make
                    ~seg_uid:(Multics_fs.Uid.to_int uid)
                    ~page_no:(offset / words_per_page t)
                in
                ignore (Page_control.reference t.pc ~pid ~page ~write))
      in
      let outcome = Program.run ~on_compute ~on_gate ~on_reference t.system ~handle program in
      t.results <- (pid, Program.name program, outcome) :: t.results)

let run t = Sim.run t.sim

let now t = Sim.now t.sim

let results t = List.rev t.results

let outcome_for t ~pid =
  List.find_map (fun (p, _, outcome) -> if p = pid then Some outcome else None) t.results

let all_completed t =
  t.results <> [] && List.for_all (fun (_, _, o) -> o.Program.completed) t.results

type report = {
  elapsed : int;
  programs : int;
  programs_completed : int;
  total_gate_calls : int;
  gate_cycles_total : int;
  compute_cycles_total : int;
  page_faults : int;
  security_overhead : float;
      (** gate-crossing cycles as a fraction of all cycles consumed *)
}

let kernel_entries t = t.kernel_entries

let report t =
  let outcomes = List.map (fun (_, _, o) -> o) t.results in
  let total = t.gate_cycles + t.compute_cycles in
  {
    elapsed = now t;
    programs = List.length outcomes;
    programs_completed = List.length (List.filter (fun o -> o.Program.completed) outcomes);
    total_gate_calls = t.kernel_entries;
    gate_cycles_total = t.gate_cycles;
    compute_cycles_total = t.compute_cycles;
    page_faults = Page_control.fault_count t.pc;
    security_overhead =
      (if total = 0 then 0.0 else float_of_int t.gate_cycles /. float_of_int total);
  }
