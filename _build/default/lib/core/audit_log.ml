(* The kernel audit trail.

   Every mediated operation appends a record of who asked for what and
   how the reference monitor ruled.  Certification needs the trail both
   ways: to show refused attacks were refused, and to show legitimate
   traffic was not. *)

open Multics_access

type verdict = Granted | Refused of string

type record = {
  seq : int;
  subject : string;  (** principal identifier *)
  ring : int;
  operation : string;
  target : string;
  verdict : verdict;
}

type t = { mutable records : record list; mutable next_seq : int; mutable enabled : bool }

let create () = { records = []; next_seq = 0; enabled = true }

let set_enabled t enabled = t.enabled <- enabled

let log t ~(subject : Policy.subject) ~operation ~target ~verdict =
  if t.enabled then begin
    let record =
      {
        seq = t.next_seq;
        subject = Principal.to_string subject.Policy.principal;
        ring = Multics_machine.Ring.to_int subject.Policy.ring;
        operation;
        target;
        verdict;
      }
    in
    t.next_seq <- t.next_seq + 1;
    t.records <- record :: t.records
  end

let records t = List.rev t.records

let length t = List.length t.records

let refusals t =
  List.filter (fun r -> match r.verdict with Refused _ -> true | Granted -> false) (records t)

let grants t =
  List.filter (fun r -> match r.verdict with Granted -> true | Refused _ -> false) (records t)

let refusal_count t = List.length (refusals t)

let by_operation t ~operation = List.filter (fun r -> r.operation = operation) (records t)

let pp_record ppf r =
  let verdict = match r.verdict with Granted -> "granted" | Refused why -> "REFUSED: " ^ why in
  Fmt.pf ppf "#%d %s (ring %d) %s %s -> %s" r.seq r.subject r.ring r.operation r.target verdict
