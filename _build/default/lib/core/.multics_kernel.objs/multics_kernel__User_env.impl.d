lib/core/user_env.ml: Api Config Hierarchy Kst Linker Multics_fs Multics_link Result Rnt String System Uid
