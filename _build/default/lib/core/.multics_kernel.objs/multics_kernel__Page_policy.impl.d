lib/core/page_policy.ml: Config Hierarchy Level List Memory Multics_access Multics_fs Multics_machine Multics_mm Page_id Printf System Uid
