lib/core/init.mli: Config
