lib/core/config.mli: Format Multics_link Multics_machine Multics_proc Multics_vm
