lib/core/config.ml: Fmt Multics_link Multics_machine Multics_proc Multics_vm Printf
