lib/core/program.mli: Multics_access System
