lib/core/session.mli: Config Interrupt Memory Multics_io Multics_mm Multics_proc Multics_vm Page_control Program Sim System
