lib/core/boundary.mli: Cost Multics_machine
