lib/core/audit_log.mli: Format Multics_access Policy
