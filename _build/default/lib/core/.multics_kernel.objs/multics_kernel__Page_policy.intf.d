lib/core/page_policy.mli: Config Hierarchy Memory Multics_fs Multics_mm Page_id Uid
