lib/core/gate.mli: Config Multics_machine Ring
