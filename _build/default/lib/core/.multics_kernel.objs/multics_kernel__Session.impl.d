lib/core/session.ml: Audit_log Config Cost Interrupt List Memory Multics_fs Multics_io Multics_machine Multics_mm Multics_proc Multics_vm Page_control Page_id Program Sim System
