lib/core/api.mli: Acl Brackets Hardware Hierarchy Kst Label Linker Multics_access Multics_fs Multics_io Multics_link Multics_machine Ring Rnt System
