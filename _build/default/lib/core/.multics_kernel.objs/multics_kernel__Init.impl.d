lib/core/init.ml: Config List Multics_io Multics_link Printf
