lib/core/user_env.mli: Acl Api Brackets Label Linker Multics_access Multics_link Multics_machine Rnt System
