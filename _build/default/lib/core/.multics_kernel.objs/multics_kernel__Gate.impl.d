lib/core/gate.ml: Config List Multics_io Multics_link Multics_machine Printf Ring String
