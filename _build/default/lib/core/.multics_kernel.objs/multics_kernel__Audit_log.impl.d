lib/core/audit_log.ml: Fmt List Multics_access Multics_machine Policy Principal
