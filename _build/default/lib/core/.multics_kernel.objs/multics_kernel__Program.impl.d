lib/core/program.ml: Api Fun List Multics_access Printf String User_env
