lib/core/boundary.ml: Cost List Multics_machine
