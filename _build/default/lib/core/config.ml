(* Kernel configurations: the paper's engineering program as data.

   Each of the four activity categories — review, removal,
   simplification, partitioning — changes where a mechanism lives or
   which of two designs is in force.  A [Config.t] fixes every such
   choice, so the experiments can compare the supervisor before and
   after each step.  [stages] lists the canonical progression from the
   645 baseline supervisor to the target 6180 security kernel. *)

type io_strategy = Device_drivers | Network_only

type buffer_strategy = Circular_ring of int | Infinite_vm

type policy_placement = Policy_in_ring0 | Policy_in_ring1

type init_strategy = Bootstrap | Memory_image

type login_mechanism = Privileged_login | Unified_subsystem_entry

type t = {
  name : string;
  processor : Multics_machine.Cost.processor;
  linker : Multics_link.Linker.placement;
  linker_flaws : Multics_link.Linker.flaw list;
  naming : Multics_link.Rnt.placement;  (** RNT + tree-name resolution *)
  io : io_strategy;
  buffer : buffer_strategy;
  page_control : Multics_vm.Page_control.discipline;
  interrupts : Multics_proc.Interrupt.discipline;
  page_policy : policy_placement;
  init : init_strategy;
  login : login_mechanism;
}

let io_strategy_name = function
  | Device_drivers -> "per-device drivers"
  | Network_only -> "network-only"

let buffer_strategy_name = function
  | Circular_ring n -> Printf.sprintf "circular ring (%d)" n
  | Infinite_vm -> "infinite VM buffer"

let policy_placement_name = function
  | Policy_in_ring0 -> "policy in ring 0"
  | Policy_in_ring1 -> "policy in ring 1"

let init_strategy_name = function
  | Bootstrap -> "bootstrap each start"
  | Memory_image -> "memory image"

let login_mechanism_name = function
  | Privileged_login -> "privileged login"
  | Unified_subsystem_entry -> "unified subsystem entry"

(* The supervisor as the project found it: software rings on the 645,
   everything in ring 0, with the historically attested linker flaws
   present. *)
let baseline_645 =
  {
    name = "645-baseline";
    processor = Multics_machine.Cost.H645;
    linker = Multics_link.Linker.In_kernel;
    linker_flaws =
      [ Multics_link.Linker.Unvalidated_input; Multics_link.Linker.Supervisor_authority_walk ];
    naming = Multics_link.Rnt.In_kernel;
    io = Device_drivers;
    buffer = Circular_ring 64;
    page_control = Multics_vm.Page_control.Sequential;
    interrupts = Multics_proc.Interrupt.Inline;
    page_policy = Policy_in_ring0;
    init = Bootstrap;
    login = Privileged_login;
  }

(* Stage 1 — review + new hardware: the 6180 implements the rings, and
   the review activity repairs the known linker flaws in place. *)
let hardware_rings =
  { baseline_645 with name = "6180-hardware-rings"; processor = Multics_machine.Cost.H6180; linker_flaws = [] }

(* Stage 2 — removal: the linker leaves the kernel (Janson). *)
let linker_removed =
  { hardware_rings with name = "linker-removed"; linker = Multics_link.Linker.In_user_ring }

(* Stage 3 — removal: reference names and tree-walking leave the
   kernel (Bratt). *)
let naming_removed =
  { linker_removed with name = "naming-removed"; naming = Multics_link.Rnt.In_user_ring }

(* Stage 4 — simplification: network-only external I/O and the
   infinite buffer. *)
let simplified_io =
  { naming_removed with name = "network-io"; io = Network_only; buffer = Infinite_vm }

(* Stage 5 — simplification: parallel kernel processes for page
   control and interrupts. *)
let parallel_kernel =
  {
    simplified_io with
    name = "parallel-kernel-processes";
    page_control = Multics_vm.Page_control.Parallel_processes;
    interrupts = Multics_proc.Interrupt.Handler_processes;
  }

(* Stage 6 — partitioning: policy out of ring 0, memory-image
   initialization, unified login/subsystem entry.  The target kernel. *)
let kernel_6180 =
  {
    parallel_kernel with
    name = "security-kernel";
    page_policy = Policy_in_ring1;
    init = Memory_image;
    login = Unified_subsystem_entry;
  }

let stages =
  [
    baseline_645;
    hardware_rings;
    linker_removed;
    naming_removed;
    simplified_io;
    parallel_kernel;
    kernel_6180;
  ]

let cost t = Multics_machine.Cost.of_processor t.processor

let pp ppf t = Fmt.string ppf t.name
