(* System initialization, both ways.

   The removal project under investigation: "changing most of system
   initialization from executing inside the supervisor each time the
   system is started to executing once in a user environment of a
   previous system" — producing "on a system tape a bit pattern which,
   when loaded into memory, manifests a fully initialized system".
   The bootstrap path runs many privileged steps on every start; the
   memory-image path runs the generation steps unprivileged (offline,
   in the previous system's user rings) and leaves only a tiny
   privileged loader. *)

type step = {
  step_name : string;
  privileged_statements : int;  (** ring-0 statements executed at system start *)
  offline_statements : int;  (** statements run unprivileged in the previous system *)
  device_related : bool;
}

type report = {
  strategy : Config.init_strategy;
  steps : step list;
  privileged_total : int;
  offline_total : int;
}

let bootstrap_step ?(device_related = false) step_name privileged_statements =
  { step_name; privileged_statements; offline_statements = 0; device_related }

let bootstrap_steps (config : Config.t) =
  let core_steps =
    [
      bootstrap_step "load_bootload_program" 220;
      bootstrap_step "initialize_sst" 480;
      bootstrap_step "initialize_page_tables" 640;
      bootstrap_step "initialize_traffic_controller" 520;
      bootstrap_step "initialize_ipc" 310;
      bootstrap_step "initialize_root_directory" 450;
      bootstrap_step "initialize_segment_control" 560;
    ]
  in
  let linker_step =
    match config.Config.linker with
    | Multics_link.Linker.In_kernel -> [ bootstrap_step "initialize_linker" 380 ]
    | Multics_link.Linker.In_user_ring -> []
  in
  let naming_step =
    match config.Config.naming with
    | Multics_link.Rnt.In_kernel -> [ bootstrap_step "initialize_name_tables" 290 ]
    | Multics_link.Rnt.In_user_ring -> []
  in
  let io_steps =
    match config.Config.io with
    | Config.Device_drivers ->
        List.map
          (fun device ->
            bootstrap_step ~device_related:true
              (Printf.sprintf "initialize_%s_dim" (Multics_io.Device.name device))
              260)
          Multics_io.Device.all_legacy
    | Config.Network_only -> [ bootstrap_step ~device_related:true "initialize_network_dim" 300 ]
  in
  let login_step =
    match config.Config.login with
    | Config.Privileged_login -> [ bootstrap_step "initialize_answering_service" 420 ]
    | Config.Unified_subsystem_entry -> [ bootstrap_step "initialize_subsystem_entry" 90 ]
  in
  core_steps @ linker_step @ naming_step @ io_steps @ login_step
  @ [ bootstrap_step "start_scheduler" 150 ]

(* Under the memory-image strategy the same work happens, but offline:
   a user-environment generation run of a previous system computes the
   initialized bit pattern; starting the new system is just loading it
   and starting the clock. *)
let memory_image_steps config =
  let generation =
    List.map
      (fun s ->
        {
          step_name = "generate:" ^ s.step_name;
          privileged_statements = 0;
          offline_statements = s.privileged_statements;
          device_related = s.device_related;
        })
      (bootstrap_steps config)
  in
  generation
  @ [
      bootstrap_step "load_system_image" 180;
      bootstrap_step "patch_clock_and_configuration" 60;
      bootstrap_step "start_scheduler" 150;
    ]

let run (config : Config.t) =
  let steps =
    match config.Config.init with
    | Config.Bootstrap -> bootstrap_steps config
    | Config.Memory_image -> memory_image_steps config
  in
  {
    strategy = config.Config.init;
    steps;
    privileged_total = List.fold_left (fun acc s -> acc + s.privileged_statements) 0 steps;
    offline_total = List.fold_left (fun acc s -> acc + s.offline_statements) 0 steps;
  }

let step_count report = List.length report.steps

let privileged_step_count report =
  List.length (List.filter (fun s -> s.privileged_statements > 0) report.steps)
