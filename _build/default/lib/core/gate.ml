(* The gate table: every user-available supervisor entry point, per
   configuration.

   The paper's removal metrics are about exactly this table: "the
   linker's removal eliminated 10% of the gate entry points into the
   supervisor", and "the linker and reference name removal projects
   together reduce the number of user-available supervisor entries by
   approximately one third".  The catalog below is sized so those
   proportions hold of the functional surface itself: the baseline
   supervisor exposes 60 gates, of which the linker accounts for 6
   (10%) and naming for a further 14 (together 20/60, one third). *)

open Multics_machine

type entry = {
  gate_name : string;
  subsystem : string;
  call_top : Ring.t;  (** outermost ring that may call this gate *)
}

let user_gate subsystem gate_name = { gate_name; subsystem; call_top = Ring.outermost }

let ring1_gate subsystem gate_name = { gate_name; subsystem; call_top = Ring.r1 }

(* --- Subsystem gate groups --- *)

let directory_control =
  List.map (user_gate "fs-directory")
    [
      "initiate";
      "terminate";
      "create_segment";
      "create_directory";
      "delete_entry";
      "rename_entry";
      "list_directory";
      "status_entry";
      "set_acl";
      "set_brackets";
      "set_gate_bound";
      "set_quota";
    ]

let segment_content = List.map (user_gate "fs-content") [ "read_word"; "write_word" ]

let ipc = List.map (user_gate "ipc") [ "create_channel"; "send_wakeup"; "block" ]

(* The dynamic linker's supervisor entries (present only while the
   linker lives in the kernel). *)
let linker_gates =
  List.map (user_gate "linker")
    [
      "snap_link";
      "force_link";
      "unsnap_linkage";
      "list_links";
      "get_search_rules";
      "set_search_rules";
    ]

(* Reference-name and tree-name entries (present only while naming
   lives in the kernel). *)
let naming_gates =
  List.map (user_gate "naming")
    [
      "initiate_by_path";
      "create_segment_by_path";
      "create_directory_by_path";
      "delete_by_path";
      "terminate_by_path";
      "status_by_path";
      "resolve_path";
      "get_working_dir";
      "set_working_dir";
      "initiate_count";
      "rnt_bind";
      "rnt_unbind";
      "rnt_lookup";
      "list_reference_names";
    ]

let device_gates =
  List.concat_map
    (fun device ->
      let dev = Multics_io.Device.name device in
      List.map
        (fun op -> user_gate (Printf.sprintf "io-%s" dev) (Printf.sprintf "%s_%s" dev op))
        [ "attach"; "io"; "detach" ])
    Multics_io.Device.all_legacy

let network_gates = List.map (user_gate "io-network") [ "net_attach"; "net_io"; "net_detach" ]

let privileged_login_gates =
  List.map (user_gate "login")
    [
      "login";
      "logout";
      "create_process";
      "destroy_process";
      "new_proc";
      "proc_info";
      "list_processes";
      "operator_message";
    ]

let unified_login_gates = List.map (user_gate "login") [ "enter_subsystem"; "logout" ]

(* The page-removal mechanism interface exposed to the ring-1 policy
   partition: usage statistics and constrained movement only — no
   entry reads page contents or moves one page onto another. *)
let page_mechanism_gates =
  List.map (ring1_gate "page-mechanism") [ "pm_get_usage"; "pm_move_to_bulk"; "pm_free_counts" ]

let catalog (config : Config.t) =
  directory_control @ segment_content @ ipc
  @ (match config.Config.linker with
    | Multics_link.Linker.In_kernel -> linker_gates
    | Multics_link.Linker.In_user_ring -> [])
  @ (match config.Config.naming with
    | Multics_link.Rnt.In_kernel -> naming_gates
    | Multics_link.Rnt.In_user_ring -> [])
  @ (match config.Config.io with
    | Config.Device_drivers -> device_gates
    | Config.Network_only -> network_gates)
  @ (match config.Config.login with
    | Config.Privileged_login -> privileged_login_gates
    | Config.Unified_subsystem_entry -> unified_login_gates)
  @
  match config.Config.page_policy with
  | Config.Policy_in_ring0 -> []
  | Config.Policy_in_ring1 -> page_mechanism_gates

let count config = List.length (catalog config)

let user_callable_count config =
  List.length (List.filter (fun e -> Ring.equal e.call_top Ring.outermost) (catalog config))

let find config ~gate_name =
  List.find_opt (fun e -> e.gate_name = gate_name) (catalog config)

let subsystems config =
  catalog config
  |> List.map (fun e -> e.subsystem)
  |> List.sort_uniq String.compare

let count_by_subsystem config =
  List.map
    (fun subsystem ->
      ( subsystem,
        List.length (List.filter (fun e -> e.subsystem = subsystem) (catalog config)) ))
    (subsystems config)
