(** The user-ring environment library: tree-name resolution, reference
    names and linking, implemented over ordinary kernel gates with the
    process's own authority.  Under pre-removal configurations the same
    facade delegates to the corresponding kernel gates, so callers are
    configuration-blind. *)

open Multics_access
open Multics_link
open Multics_machine

type error = Api of Api.error | Rnt_user of Rnt.error | Link_user of Linker.outcome

val error_to_string : error -> string

val root_segno : System.t -> handle:int -> (int, error) result

val resolve_path : System.t -> handle:int -> path:string -> (int, error) result
(** One [initiate] gate call per path component (post-removal), or the
    kernel resolver gate (pre-removal). *)

val create_segment_at :
  ?brackets:Brackets.t ->
  System.t ->
  handle:int ->
  path:string ->
  acl:Acl.t ->
  label:Label.t ->
  (int, error) result

val create_directory_at :
  System.t -> handle:int -> path:string -> acl:Acl.t -> label:Label.t -> (int, error) result

val delete_at : System.t -> handle:int -> path:string -> (unit, error) result

val bind_name : System.t -> handle:int -> name:string -> segno:int -> (unit, error) result
val lookup_name : System.t -> handle:int -> name:string -> (int, error) result
val unbind_name : System.t -> handle:int -> name:string -> (unit, error) result

val snap_link :
  System.t -> handle:int -> segno:int -> link_index:int -> (int * int, error) result
(** Returns (target segment number, entry offset). *)
