(* Partitioning: separating the page-removal policy from its
   mechanism (experiment E9).

   "Programs in the most privileged ring would implement the mechanics
   of page removal, providing gate entry points for requesting the
   movement of a particular page from primary memory to a particular
   free block on the bulk store, and for obtaining usage information
   about pages in primary memory.  The policy algorithm ... would
   execute in a less privileged ring ... The policy algorithm, however,
   could never read or write the contents of pages, learn the segment
   to which each page belonged, or cause one page to overwrite another
   ... It could only cause denial of use."

   The two placements differ in the *capability* handed to the policy:

   - ring 0 (unpartitioned): the policy closure receives raw handles
     to physical memory and the hierarchy — it can do anything;
   - ring 1 (partitioned): the policy receives only the mechanism view
     (anonymized page handles + usage bits) and can only answer "evict
     this one" — release and modification are unexpressible.

   Note the ring-1 view hides even the segment identity: pages are
   presented as opaque indices, reproducing "never ... learn the
   segment to which each page belonged". *)

open Multics_fs
open Multics_mm

(* What the ring-1 policy is allowed to see: opaque handles and usage
   bits only. *)
type mechanism_view = { page_handles : int list; used_bits : (int * bool) list }

(* What unpartitioned ring-0 code can touch. *)
type raw_view = { mem : Memory.t; hierarchy : Hierarchy.t; core_pages : Page_id.t list }

type verdict = { released : bool; modified : bool; denied : bool; note : string }

let verdict ~released ~modified ~denied note = { released; modified; denied; note }

(* Build the restricted view: the mechanism assigns opaque indices in
   rotation order; the mapping back to real pages never leaves ring 0. *)
let mechanism_view_of mem =
  let residents = Memory.core_residents mem in
  let indexed = List.mapi (fun i page -> (i, page)) residents in
  let used (_, page) =
    match Memory.frame_usage mem page with Some (used, _) -> used | None -> false
  in
  ( { page_handles = List.map fst indexed; used_bits = List.map (fun e -> (fst e, used e)) indexed },
    fun handle -> List.assoc_opt handle indexed )

(* ----- The three attacks a malicious policy might attempt ----- *)

type attack = Read_secret | Overwrite_segment | Deny_service

let attack_name = function
  | Read_secret -> "unauthorized release (read a secret word)"
  | Overwrite_segment -> "unauthorized modification (overwrite a word)"
  | Deny_service -> "denial of use (refuse to free frames)"

(* A malicious policy running UNPARTITIONED in ring 0: it holds raw
   views, so all three violations succeed. *)
let run_in_ring0 (view : raw_view) ~attack ~secret_uid =
  match attack with
  | Read_secret -> (
      match Hierarchy.raw_read_word view.hierarchy ~uid:secret_uid ~offset:0 with
      | Some value ->
          verdict ~released:true ~modified:false ~denied:false
            (Printf.sprintf "read secret word %d through raw memory access" value)
      | None -> verdict ~released:false ~modified:false ~denied:false "segment unreadable")
  | Overwrite_segment ->
      if Hierarchy.raw_write_word view.hierarchy ~uid:secret_uid ~offset:0 ~value:0xDEAD then
        verdict ~released:false ~modified:true ~denied:false "overwrote word 0 of the segment"
      else verdict ~released:false ~modified:false ~denied:false "segment unwritable"
  | Deny_service ->
      (* Refuse every eviction decision: faulting processes starve. *)
      verdict ~released:false ~modified:false ~denied:true "policy refuses all evictions"

(* The same malicious intent PARTITIONED into ring 1: the mechanism
   view simply has no operation that reads, writes or names a page, so
   the only damage expressible is refusing to choose victims. *)
let run_in_ring1 (_view : mechanism_view) ~attack =
  match attack with
  | Read_secret ->
      verdict ~released:false ~modified:false ~denied:false
        "no gate in the ring-1 interface reads page contents"
  | Overwrite_segment ->
      verdict ~released:false ~modified:false ~denied:false
        "no gate moves one page onto another or writes words"
  | Deny_service ->
      verdict ~released:false ~modified:false ~denied:true "policy refuses all evictions"

type experiment_row = {
  placement : Config.policy_placement;
  attack : attack;
  result : verdict;
}

(* Run the full attack matrix against a little world with one secret
   segment and a few resident pages. *)
let attack_matrix () =
  let hierarchy = Hierarchy.create () in
  let subject = System.initializer_subject in
  let secret_uid =
    match
      Hierarchy.create_segment hierarchy ~subject ~dir:Uid.root ~name:"secret"
        ~acl:(Multics_access.Acl.of_strings [ ("Initializer.*.*", "rw") ])
        ~label:(Multics_access.Label.make Multics_access.Label.Top_secret [ "crypto" ])
    with
    | Ok uid -> uid
    | Error e -> invalid_arg (Hierarchy.error_to_string e)
  in
  ignore (Hierarchy.raw_write_word hierarchy ~uid:secret_uid ~offset:0 ~value:31337);
  let mem = Memory.create ~cost:Multics_machine.Cost.h6180 ~core:4 ~bulk:4 ~disk:16 in
  List.iteri
    (fun i () ->
      ignore (Memory.place mem (Page_id.make ~seg_uid:(Uid.to_int secret_uid) ~page_no:i) ~level:Level.Core))
    [ (); (); () ];
  let raw = { mem; hierarchy; core_pages = Memory.core_residents mem } in
  let restricted, _reveal = mechanism_view_of mem in
  List.concat_map
    (fun attack ->
      [
        {
          placement = Config.Policy_in_ring0;
          attack;
          result = run_in_ring0 raw ~attack ~secret_uid;
        };
        { placement = Config.Policy_in_ring1; attack; result = run_in_ring1 restricted ~attack };
      ])
    [ Read_secret; Overwrite_segment; Deny_service ]

let violation_achieved row =
  row.result.released || row.result.modified || row.result.denied
