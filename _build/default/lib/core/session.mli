(** The full-system simulation: the kernel joined to the machine
    substrate, with user programs running as simulated processes.
    Kernel-entering steps pay the processor's cross-ring cost, content
    references page through the virtual memory, [Compute] steps consume
    cycles. *)

open Multics_mm
open Multics_proc
open Multics_vm

type t

val boot :
  ?virtual_processors:int -> ?core:int -> ?bulk:int -> ?disk:int -> Config.t -> t
(** Boot a system plus its simulated machine: page control in the
    configured discipline, and the configured devices registered under
    the configured interrupt discipline.  Defaults: 10 virtual
    processors, 16 core frames, 64 bulk blocks, 1024 disk blocks. *)

val system : t -> System.t
val sim : t -> Sim.t
val memory : t -> Memory.t
val page_control : t -> Page_control.t
val interrupts : t -> Interrupt.t

val post_interrupt : ?delay:int -> t -> device:Multics_io.Device.kind -> unit
(** Deliver a device interrupt; under network-only I/O every external
    device arrives through the network attachment. *)

val run_user : t -> handle:int -> Program.t -> Sim.pid
(** Spawn the program as a simulated process of the logged-in process
    [handle]. *)

val run : t -> unit
(** Run the simulation to quiescence. *)

val now : t -> int

val results : t -> (Sim.pid * string * Program.outcome) list
(** (pid, program name, outcome) in completion order. *)

val outcome_for : t -> pid:Sim.pid -> Program.outcome option
val all_completed : t -> bool

val gate_cycles : t -> int
(** Total cycles spent crossing into the kernel. *)

val kernel_entries : t -> int
(** Actual supervisor entries made (audit-derived): a user-ring
    resolve counts one per initiate call. *)

val compute_cycles : t -> int

type report = {
  elapsed : int;
  programs : int;
  programs_completed : int;
  total_gate_calls : int;
  gate_cycles_total : int;
  compute_cycles_total : int;
  page_faults : int;
  security_overhead : float;
}

val report : t -> report
