(* Principal identifiers: Person.Project.Tag.

   Multics names every access subject with a three-component principal
   identifier.  The tag distinguishes instances of the same person
   acting in different capacities (interactive "a", absentee "m",
   daemon "z").  ACL entries are patterns over these components, with
   "*" matching any value in that component. *)

type t = { person : string; project : string; tag : string }

let component_ok s =
  String.length s > 0
  && String.for_all (fun c -> c <> '.' && c <> ' ' && c <> ',') s

let make ~person ~project ~tag =
  if not (component_ok person && component_ok project && component_ok tag) then
    invalid_arg
      (Printf.sprintf "Principal.make: bad component in %s.%s.%s" person project tag);
  { person; project; tag }

let person t = t.person
let project t = t.project
let tag t = t.tag

let interactive ~person ~project = make ~person ~project ~tag:"a"

let system_daemon = make ~person:"Initializer" ~project:"SysDaemon" ~tag:"z"

let of_string s =
  match String.split_on_char '.' s with
  | [ person; project; tag ] -> make ~person ~project ~tag
  | [ person; project ] -> make ~person ~project ~tag:"a"
  | _ -> invalid_arg ("Principal.of_string: " ^ s)

let to_string t = Printf.sprintf "%s.%s.%s" t.person t.project t.tag

let equal a b = a.person = b.person && a.project = b.project && a.tag = b.tag

let compare a b = String.compare (to_string a) (to_string b)

let pp ppf t = Fmt.string ppf (to_string t)

(* ----- Patterns ----- *)

type pattern = { p_person : string; p_project : string; p_tag : string }

let pattern_of_string s =
  let components =
    match String.split_on_char '.' s with
    | [ a; b; c ] -> (a, b, c)
    | [ a; b ] -> (a, b, "*")
    | [ a ] -> (a, "*", "*")
    | _ -> invalid_arg ("Principal.pattern_of_string: " ^ s)
  in
  let check c = if not (c = "*" || component_ok c) then invalid_arg ("bad pattern component " ^ c) in
  let p_person, p_project, p_tag = components in
  check p_person;
  check p_project;
  check p_tag;
  { p_person; p_project; p_tag }

let pattern_to_string p = Printf.sprintf "%s.%s.%s" p.p_person p.p_project p.p_tag

let anyone = pattern_of_string "*.*.*"

let matches pattern t =
  let component_matches pat value = pat = "*" || pat = value in
  component_matches pattern.p_person t.person
  && component_matches pattern.p_project t.project
  && component_matches pattern.p_tag t.tag

(* Specificity orders ACL entries: an exact component beats a star, and
   earlier components dominate later ones — the Multics ACL matching
   rule (person most significant, then project, then tag). *)
let pattern_specificity p =
  let score c = if c = "*" then 0 else 1 in
  (4 * score p.p_person) + (2 * score p.p_project) + score p.p_tag

let pp_pattern ppf p = Fmt.string ppf (pattern_to_string p)
