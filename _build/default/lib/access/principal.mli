(** Principal identifiers [Person.Project.Tag] and ACL patterns. *)

type t

val make : person:string -> project:string -> tag:string -> t
(** Raises [Invalid_argument] if a component is empty or contains
    ['.'], [' '] or [',']. *)

val person : t -> string
val project : t -> string
val tag : t -> string

val interactive : person:string -> project:string -> t
(** Tag ["a"]: an interactive login instance. *)

val system_daemon : t
(** [Initializer.SysDaemon.z]. *)

val of_string : string -> t
(** ["Person.Project.Tag"]; a missing tag defaults to ["a"]. *)

val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

type pattern

val pattern_of_string : string -> pattern
(** ["*"] matches any value of a component; omitted trailing components
    default to ["*"], so ["Schroeder"] means ["Schroeder.*.*"]. *)

val pattern_to_string : pattern -> string

val anyone : pattern
(** ["*.*.*"]. *)

val matches : pattern -> t -> bool

val pattern_specificity : pattern -> int
(** Higher is more specific; person outweighs project outweighs tag,
    per the Multics ACL matching rule. *)

val pp_pattern : Format.formatter -> pattern -> unit
