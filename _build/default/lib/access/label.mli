(** Security labels: classification level x compartment set, partially
    ordered by dominance — the lattice of the Mitre formal model. *)

type level = Unclassified | Confidential | Secret | Top_secret

type t

val level_rank : level -> int
val level_of_rank : int -> level
val level_name : level -> string

val all_levels : level list
(** In ascending order. *)

val make : level -> string list -> t
(** [make level compartments]; duplicate compartment names collapse. *)

val level : t -> level

val compartments : t -> string list
(** Sorted. *)

val unclassified : t
(** Bottom of the lattice: (Unclassified, {}). *)

val system_high : string list -> t
(** (TopSecret, given compartments): top relative to those
    compartments. *)

val dominates : t -> t -> bool
(** [dominates a b] iff information labelled [b] may flow to [a]:
    [a]'s level is at least [b]'s and [a]'s compartments include
    [b]'s. *)

val strictly_dominates : t -> t -> bool

val comparable : t -> t -> bool
(** Whether either label dominates the other. *)

val equal : t -> t -> bool

val lub : t -> t -> t
(** Least upper bound (join). *)

val glb : t -> t -> t
(** Greatest lower bound (meet). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
