(** The composed security model: mandatory lattice + discretionary ACL
    + ring hardware, with verdicts that carry every failing reason. *)

open Multics_machine

type subject = {
  principal : Principal.t;
  clearance : Label.t;
  ring : Ring.t;
  trusted : bool;  (** exempt from the mandatory checks (administrative
                       daemons); still subject to ACLs and rings *)
}

val subject :
  ?trusted:bool ->
  principal:Principal.t ->
  clearance:Label.t ->
  ring:Ring.t ->
  unit ->
  subject
(** [trusted] defaults to false. *)

type refusal =
  | Mandatory_read_up of { subject_label : Label.t; object_label : Label.t }
  | Mandatory_write_down of { subject_label : Label.t; object_label : Label.t }
  | Discretionary of { principal : Principal.t; granted : Mode.t; requested : Mode.t }
  | Ring_hardware of Hardware.denial

type verdict = Permit | Refuse of refusal list

val refusal_to_string : refusal -> string

val mandatory_refusals :
  subject_label:Label.t -> object_label:Label.t -> requested:Mode.t -> refusal list
(** Simple security for read/execute, *-property for write. *)

val discretionary_refusals :
  acl:Acl.t -> principal:Principal.t -> requested:Mode.t -> refusal list

val refusals_of_hardware : Hardware.decision -> refusal list

val verdict_of_refusals : refusal list -> verdict

val check :
  subject:subject -> object_label:Label.t -> acl:Acl.t -> requested:Mode.t -> verdict
(** Mandatory and discretionary checks composed; the ring check is
    applied by the hardware layer on each reference and combined via
    [refusals_of_hardware]. *)

val permitted : verdict -> bool

val pp_verdict : Format.formatter -> verdict -> unit
