lib/access/principal.mli: Format
