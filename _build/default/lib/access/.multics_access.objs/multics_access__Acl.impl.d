lib/access/acl.ml: Fmt Int List Mode Multics_machine Principal String
