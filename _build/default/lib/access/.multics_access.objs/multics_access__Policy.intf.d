lib/access/policy.mli: Acl Format Hardware Label Mode Multics_machine Principal Ring
