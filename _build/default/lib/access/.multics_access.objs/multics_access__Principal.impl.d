lib/access/principal.ml: Fmt Printf String
