lib/access/label.ml: Fmt Printf Set String
