lib/access/label.mli: Format
