lib/access/acl.mli: Format Mode Multics_machine Principal
