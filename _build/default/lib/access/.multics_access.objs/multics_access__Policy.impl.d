lib/access/policy.ml: Acl Fmt Hardware Label List Mode Multics_machine Principal Printf Ring String
