(* Security labels for the Mitre formal model.

   The paper's footnote 2: "The formal model specifies a set of access
   constraints that restrict information flow in a hierarchy of
   compartments to patterns consistent with the national security
   classification scheme."  A label is a classification level plus a
   set of compartments; labels are partially ordered by dominance
   (level order on the first component, set inclusion on the second)
   and form a lattice under that order. *)

module Compartments = Set.Make (String)

type level = Unclassified | Confidential | Secret | Top_secret

type t = { level : level; compartments : Compartments.t }

let level_rank = function Unclassified -> 0 | Confidential -> 1 | Secret -> 2 | Top_secret -> 3

let level_of_rank = function
  | 0 -> Unclassified
  | 1 -> Confidential
  | 2 -> Secret
  | 3 -> Top_secret
  | n -> invalid_arg (Printf.sprintf "Label.level_of_rank: %d" n)

let level_name = function
  | Unclassified -> "Unclassified"
  | Confidential -> "Confidential"
  | Secret -> "Secret"
  | Top_secret -> "TopSecret"

let all_levels = [ Unclassified; Confidential; Secret; Top_secret ]

let make level compartments =
  { level; compartments = Compartments.of_list compartments }

let level t = t.level

let compartments t = Compartments.elements t.compartments

let unclassified = make Unclassified []

let system_high compartment_names = make Top_secret compartment_names

(* [dominates a b]: information labelled [b] may flow to a subject
   cleared at [a]. *)
let dominates a b =
  level_rank a.level >= level_rank b.level && Compartments.subset b.compartments a.compartments

let equal a b = a.level = b.level && Compartments.equal a.compartments b.compartments

let strictly_dominates a b = dominates a b && not (equal a b)

let comparable a b = dominates a b || dominates b a

let lub a b =
  {
    level = level_of_rank (max (level_rank a.level) (level_rank b.level));
    compartments = Compartments.union a.compartments b.compartments;
  }

let glb a b =
  {
    level = level_of_rank (min (level_rank a.level) (level_rank b.level));
    compartments = Compartments.inter a.compartments b.compartments;
  }

let to_string t =
  match Compartments.elements t.compartments with
  | [] -> level_name t.level
  | cs -> level_name t.level ^ "{" ^ String.concat "," cs ^ "}"

let pp ppf t = Fmt.string ppf (to_string t)
