(** Protection rings, numbered 0 (most privileged) to 7 (least). *)

type t = private int

val count : int
(** 8, as on the Honeywell 6180. *)

val of_int : int -> t
(** Raises [Invalid_argument] outside [\[0, 7\]]. *)

val to_int : t -> int

val r0 : t
val r1 : t

val kernel : t
(** Ring 0: the security kernel. *)

val kernel_policy : t
(** Ring 1: the less-privileged kernel partition that holds resource
    management {e policy} in the paper's partitioning experiments. *)

val user : t
(** Ring 4: the conventional user ring. *)

val outermost : t

val compare : t -> t -> int
val equal : t -> t -> bool

val more_privileged : t -> t -> bool
(** [more_privileged a b] iff [a] is strictly more privileged
    (numerically lower) than [b]. *)

val at_least_privileged : t -> t -> bool

val pp : Format.formatter -> t -> unit

val all : t list
(** Rings 0..7 in order. *)
