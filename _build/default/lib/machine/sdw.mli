(** Segment descriptor words: modes + ring brackets + gate bound. *)

type t

val make : ?gate_bound:int -> mode:Mode.t -> brackets:Brackets.t -> unit -> t
(** [gate_bound] defaults to 0 (no gate entries).  Raises
    [Invalid_argument] if negative. *)

val mode : t -> Mode.t
val brackets : t -> Brackets.t
val gate_bound : t -> int

val is_gate_offset : t -> int -> bool
(** Whether an inward call may target this entry offset. *)

val user_data_segment : writable:bool -> t
val user_procedure_segment : t
val kernel_gate_segment : gate_bound:int -> t
val kernel_data_segment : t

val pp : Format.formatter -> t -> unit
