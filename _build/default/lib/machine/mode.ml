(* Access modes on a segment: read, execute, write.

   These are the per-segment permission bits carried in a segment
   descriptor word and in ACL entries.  Represented as a record of
   booleans rather than an int bitmask so pattern matching stays
   explicit. *)

type t = { read : bool; execute : bool; write : bool }

let none = { read = false; execute = false; write = false }
let r = { none with read = true }
let e = { none with execute = true }
let w = { none with write = true }
let rw = { r with write = true }
let re = { r with execute = true }
let rew = { rw with execute = true }

let make ?(read = false) ?(execute = false) ?(write = false) () = { read; execute; write }

let union a b =
  { read = a.read || b.read; execute = a.execute || b.execute; write = a.write || b.write }

let inter a b =
  { read = a.read && b.read; execute = a.execute && b.execute; write = a.write && b.write }

let subset a b =
  (not a.read || b.read) && (not a.execute || b.execute) && (not a.write || b.write)

let equal a b = a.read = b.read && a.execute = b.execute && a.write = b.write

let is_none t = equal t none

let of_string s =
  let read = String.contains s 'r' in
  let execute = String.contains s 'e' in
  let write = String.contains s 'w' in
  let valid = String.for_all (fun c -> c = 'r' || c = 'e' || c = 'w') s in
  if not valid then invalid_arg ("Mode.of_string: " ^ s);
  { read; execute; write }

let to_string t =
  let cell flag c = if flag then String.make 1 c else "" in
  let s = cell t.read 'r' ^ cell t.execute 'e' ^ cell t.write 'w' in
  if s = "" then "null" else s

let pp ppf t = Fmt.string ppf (to_string t)
