(* Ring brackets and the hardware access rule.

   Every segment carries three bracket rings (r1 <= r2 <= r3), per the
   Schroeder–Saltzer ring hardware (CACM 15,3 1972), which the
   Honeywell 6180 implements directly and the 645 simulated in
   software.  For a process executing in ring [r]:

     write  permitted when             r <= r1
     read   permitted when             r <= r2
     execute (transfer) when    r1 <= r <= r2   (no ring change)
     call   when                r2 <  r <= r3   (gate required;
                                                 ring changes to r2)

   A transfer from r < r1 would be an "outward call"; the 6180 could
   express it but Multics forbade it (returning securely is the hard
   part), so the model faults it. *)

type t = { write_top : Ring.t; execute_top : Ring.t; call_top : Ring.t }

let make ~r1 ~r2 ~r3 =
  if not (r1 <= r2 && r2 <= r3) then
    invalid_arg (Printf.sprintf "Brackets.make: need r1 <= r2 <= r3, got (%d,%d,%d)" r1 r2 r3);
  { write_top = Ring.of_int r1; execute_top = Ring.of_int r2; call_top = Ring.of_int r3 }

let write_top t = t.write_top
let execute_top t = t.execute_top
let call_top t = t.call_top

(* Common shapes.  [kernel_gate]: a ring-0 procedure callable from any
   ring through a gate — the shape of every supervisor entry.  *)
let user_data = make ~r1:4 ~r2:4 ~r3:4
let user_procedure = make ~r1:4 ~r2:4 ~r3:4
let kernel_private = make ~r1:0 ~r2:0 ~r3:0
let kernel_gate = make ~r1:0 ~r2:0 ~r3:7
let policy_ring_gate = make ~r1:1 ~r2:1 ~r3:7

let for_single_ring r = make ~r1:r ~r2:r ~r3:r

let read_ok t ~ring = Ring.to_int ring <= Ring.to_int t.execute_top

let write_ok t ~ring = Ring.to_int ring <= Ring.to_int t.write_top

type transfer =
  | Execute_in_place  (** r1 <= r <= r2: runs in the caller's ring *)
  | Inward_call of Ring.t  (** r2 < r <= r3: gate call; new ring is r2 *)
  | Outward_call_fault  (** r < r1: forbidden outward transfer *)
  | Beyond_call_bracket  (** r > r3: no access at all *)

let transfer t ~ring =
  let r = Ring.to_int ring in
  let r1 = Ring.to_int t.write_top in
  let r2 = Ring.to_int t.execute_top in
  let r3 = Ring.to_int t.call_top in
  if r < r1 then Outward_call_fault
  else if r <= r2 then Execute_in_place
  else if r <= r3 then Inward_call t.execute_top
  else Beyond_call_bracket

let equal a b =
  Ring.equal a.write_top b.write_top
  && Ring.equal a.execute_top b.execute_top
  && Ring.equal a.call_top b.call_top

let pp ppf t =
  Fmt.pf ppf "(%d,%d,%d)" (Ring.to_int t.write_top) (Ring.to_int t.execute_top)
    (Ring.to_int t.call_top)
