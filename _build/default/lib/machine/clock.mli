(** Simulated machine clock in processor cycles. *)

type t

val create : unit -> t
(** Starts at cycle 0. *)

val now : t -> int

val advance : t -> int -> unit
(** Raises [Invalid_argument] on a negative duration. *)

val advance_to : t -> int -> unit
(** Move the clock forward to the given time; no-op if already past. *)

val elapsed : t -> since:int -> int

val pp : Format.formatter -> t -> unit
