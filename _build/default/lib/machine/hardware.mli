(** The hardware access check applied to every simulated reference. *)

type operation =
  | Read
  | Write
  | Execute  (** transfer of control without ring change *)
  | Call of int  (** call to the given entry offset (may cross rings) *)

type grant =
  | Access_ok
  | Gate_entry of Ring.t  (** inward call; execution continues in this ring *)

type denial =
  | Missing_permission of Mode.t
  | Outside_write_bracket
  | Outside_read_bracket
  | Outside_call_bracket
  | Not_a_gate of int
  | Outward_call

type decision = Granted of grant | Denied of denial

val check : Sdw.t -> ring:Ring.t -> operation:operation -> decision
(** Validate one reference from a process executing in [ring]. *)

val allowed : Sdw.t -> ring:Ring.t -> operation:operation -> bool

val denial_to_string : denial -> string
val pp_operation : Format.formatter -> operation -> unit
val pp_decision : Format.formatter -> decision -> unit
