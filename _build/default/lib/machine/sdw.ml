(* Segment descriptor words.

   The per-process descriptor segment maps segment numbers to SDWs; an
   SDW carries everything the processor needs to validate a reference
   without consulting software: the permitted modes, the ring brackets,
   and the gate bound (entry offsets below the bound are legal gate
   targets for inward calls). *)

type t = {
  mode : Mode.t;
  brackets : Brackets.t;
  gate_bound : int;  (** offsets [0, gate_bound) are gates; 0 = no gates *)
}

let make ?(gate_bound = 0) ~mode ~brackets () =
  if gate_bound < 0 then invalid_arg "Sdw.make: negative gate bound";
  { mode; brackets; gate_bound }

let mode t = t.mode
let brackets t = t.brackets
let gate_bound t = t.gate_bound

let is_gate_offset t offset = offset >= 0 && offset < t.gate_bound

let user_data_segment ~writable =
  let mode = if writable then Mode.rw else Mode.r in
  make ~mode ~brackets:Brackets.user_data ()

let user_procedure_segment = make ~mode:Mode.re ~brackets:Brackets.user_procedure ()

let kernel_gate_segment ~gate_bound = make ~gate_bound ~mode:Mode.re ~brackets:Brackets.kernel_gate ()

let kernel_data_segment = make ~mode:Mode.rw ~brackets:Brackets.kernel_private ()

let pp ppf t =
  Fmt.pf ppf "{mode=%a brackets=%a gates=%d}" Mode.pp t.mode Brackets.pp t.brackets t.gate_bound
