(** Per-segment access modes: read, execute, write. *)

type t = { read : bool; execute : bool; write : bool }

val none : t
val r : t
val e : t
val w : t
val rw : t
val re : t
val rew : t

val make : ?read:bool -> ?execute:bool -> ?write:bool -> unit -> t

val union : t -> t -> t
val inter : t -> t -> t

val subset : t -> t -> bool
(** [subset a b] iff every permission in [a] is also in [b]. *)

val equal : t -> t -> bool
val is_none : t -> bool

val of_string : string -> t
(** E.g. ["rw"].  Raises [Invalid_argument] on characters outside
    [rew].  [""] is the null mode. *)

val to_string : t -> string
(** Inverse of [of_string]; the null mode prints as ["null"]. *)

val pp : Format.formatter -> t -> unit
