lib/machine/sdw.mli: Brackets Format Mode
