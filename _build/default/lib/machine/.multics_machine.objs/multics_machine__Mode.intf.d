lib/machine/mode.mli: Format
