lib/machine/hardware.ml: Brackets Fmt Mode Printf Ring Sdw
