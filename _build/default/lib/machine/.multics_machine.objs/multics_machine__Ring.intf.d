lib/machine/ring.mli: Format
