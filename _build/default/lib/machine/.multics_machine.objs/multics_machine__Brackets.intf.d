lib/machine/brackets.mli: Format Ring
