lib/machine/ring.ml: Fmt Int List Printf
