lib/machine/clock.ml: Fmt
