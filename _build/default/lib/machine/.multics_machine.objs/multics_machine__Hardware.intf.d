lib/machine/hardware.mli: Format Mode Ring Sdw
