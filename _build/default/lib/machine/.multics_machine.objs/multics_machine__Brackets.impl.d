lib/machine/brackets.ml: Fmt Printf Ring
