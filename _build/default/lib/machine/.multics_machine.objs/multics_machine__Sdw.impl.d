lib/machine/sdw.ml: Brackets Fmt Mode
