lib/machine/mode.ml: Fmt String
