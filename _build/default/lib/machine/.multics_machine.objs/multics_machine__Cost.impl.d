lib/machine/cost.ml: Fmt
