lib/machine/clock.mli: Format
