lib/machine/cost.mli: Format
