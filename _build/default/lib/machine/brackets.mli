(** Ring brackets [(r1, r2, r3)] and the hardware bracket rule. *)

type t

val make : r1:int -> r2:int -> r3:int -> t
(** Raises [Invalid_argument] unless [r1 <= r2 <= r3] and all are valid
    rings. *)

val write_top : t -> Ring.t
(** r1: outermost ring that may write. *)

val execute_top : t -> Ring.t
(** r2: outermost ring that may read or execute in place. *)

val call_top : t -> Ring.t
(** r3: outermost ring that may call inward through a gate. *)

val user_data : t
(** (4,4,4). *)

val user_procedure : t
(** (4,4,4). *)

val kernel_private : t
(** (0,0,0): kernel-internal segment, invisible to user rings. *)

val kernel_gate : t
(** (0,0,7): a ring-0 procedure callable from any ring through a gate
    — the shape of every supervisor entry point. *)

val policy_ring_gate : t
(** (1,1,7): a ring-1 procedure (the partitioned policy layer). *)

val for_single_ring : int -> t
(** (r,r,r). *)

val read_ok : t -> ring:Ring.t -> bool
val write_ok : t -> ring:Ring.t -> bool

type transfer =
  | Execute_in_place  (** r1 <= r <= r2: runs in the caller's ring *)
  | Inward_call of Ring.t  (** r2 < r <= r3: gate call; new ring is r2 *)
  | Outward_call_fault  (** r < r1: forbidden outward transfer *)
  | Beyond_call_bracket  (** r > r3: no access at all *)

val transfer : t -> ring:Ring.t -> transfer
(** Bracket rule for a control transfer attempted from [ring].  Gate
    membership of the target entry point is checked separately (see
    {!Hardware}). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
