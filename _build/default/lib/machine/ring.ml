(* Protection rings.

   Multics numbers its rings 0 (most privileged) through 7 (least
   privileged).  The security kernel of the paper lives in ring 0, with
   the proposed kernel partitions (e.g. the page-removal policy) in
   ring 1, user programs conventionally in ring 4, and borrowed or
   untrusted code pushed outward. *)

type t = int

let count = 8

let of_int n =
  if n < 0 || n >= count then invalid_arg (Printf.sprintf "Ring.of_int: %d not in [0,7]" n);
  n

let to_int r = r

let r0 = 0
let r1 = 1
let kernel = r0
let kernel_policy = r1
let user = 4
let outermost = count - 1

let compare = Int.compare

let equal = Int.equal

(* Privilege decreases as ring number increases. *)
let more_privileged a b = a < b

let at_least_privileged a b = a <= b

let pp ppf r = Fmt.pf ppf "ring %d" r

let all = List.init count (fun i -> i)
