(* Simulated machine clock, counted in processor cycles.

   One clock per simulated system; every component that consumes time
   advances it explicitly, which keeps runs deterministic. *)

type t = { mutable now : int }

let create () = { now = 0 }

let now t = t.now

let advance t cycles =
  if cycles < 0 then invalid_arg "Clock.advance: negative duration";
  t.now <- t.now + cycles

let advance_to t time = if time > t.now then t.now <- time

let elapsed t ~since = t.now - since

let pp ppf t = Fmt.pf ppf "t=%d" t.now
