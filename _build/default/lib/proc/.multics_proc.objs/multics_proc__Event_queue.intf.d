lib/proc/event_queue.mli:
