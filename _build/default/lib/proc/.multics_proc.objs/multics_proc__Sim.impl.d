lib/proc/sim.ml: Array Clock Cost Effect Event_queue Format Hashtbl Int List Multics_machine Multics_util Printexc Printf Ring
