lib/proc/sim.mli: Cost Format Multics_machine Multics_util Ring
