lib/proc/interrupt.mli: Sim
