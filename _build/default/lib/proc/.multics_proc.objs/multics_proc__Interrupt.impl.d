lib/proc/interrupt.ml: Cost Float Hashtbl List Multics_machine Option Printf Queue Ring Sim String
