lib/proc/event_queue.ml: Array
