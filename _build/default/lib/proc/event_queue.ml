(* Time-ordered event queue for the discrete-event simulator.

   A binary min-heap on (time, sequence number); the sequence number
   makes simultaneous events fire in insertion order, which keeps every
   run deterministic. *)

type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;  (** heap.(0) is unused padding when empty *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let entry_before a b = if a.time = b.time then a.seq < b.seq else a.time < b.time

let grow t entry =
  let capacity = Array.length t.heap in
  if t.size = capacity then begin
    let new_capacity = max 16 (2 * capacity) in
    let heap = Array.make new_capacity entry in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < t.size && entry_before t.heap.(left) t.heap.(!smallest) then smallest := left;
  if right < t.size && entry_before t.heap.(right) t.heap.(!smallest) then smallest := right;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~time payload =
  if time < 0 then invalid_arg "Event_queue.push: negative time";
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some (top.time, top.payload)
  end
