(** Deterministic time-ordered event queue (min-heap; ties fire in
    insertion order). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:int -> 'a -> unit
(** Raises [Invalid_argument] on negative time. *)

val peek_time : 'a t -> int option

val pop : 'a t -> (int * 'a) option
(** Earliest event; ties in insertion order. *)
