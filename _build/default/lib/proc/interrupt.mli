(** Interrupt handling under both disciplines: inline in the victim
    process, or a dedicated handler process woken by the interceptor. *)

type discipline = Inline | Handler_processes

val discipline_name : discipline -> string

type t

val create : Sim.t -> discipline:discipline -> t

val register : ?action:(unit -> unit) -> t -> name:string -> service_cycles:int -> unit
(** Declare an interrupt source.  Under [Handler_processes] this spawns
    a dedicated kernel process (reserving a virtual processor).
    [action] runs once per interrupt after the service work (e.g. a
    device completion wakeup).  Raises [Invalid_argument] on duplicate
    names. *)

val post : ?delay:int -> t -> name:string -> unit
(** Deliver an interrupt from the named source at [now + delay]. *)

type stats = {
  name : string;
  handled : int;
  mean_latency : float;  (** arrival to service completion *)
  victim_cycles : int;  (** cycles stolen from running processes *)
  victim_hits : int;
  borrowed_privileged_cycles : int;
      (** ring-0 cycles executed inside borrowed user processes — the
          structural exposure the paper's redesign removes *)
}

val stats_of : t -> name:string -> stats

val interceptor_cycles : t -> int
(** Total cycles spent in the interceptor itself. *)

val sources : t -> string list
