(* Interrupt handling, both ways.

   The paper proposes giving each interrupt handler its own process:
   "the system interrupt interceptor will simply turn each interrupt
   into a wakeup of the corresponding process", instead of forcing the
   handler "to inhabit whatever user process was running when the
   interrupt occurred".  This module implements both disciplines over
   the same interrupt sources so experiment E8 can compare them:

   - [Inline]: the interceptor runs the whole handler immediately, in
     ring 0, charging its cycles to the victim process that happened to
     be running (a perturbation, and privileged execution in a borrowed
     user context);
   - [Handler_processes]: the interceptor only performs a wakeup; a
     dedicated kernel process (its own virtual processor) does the
     service work and coordinates through ordinary IPC. *)

open Multics_machine

type discipline = Inline | Handler_processes

type handler = {
  source_name : string;
  service_cycles : int;
  action : unit -> unit;
  chan : Sim.chan option;  (** wakeup target under [Handler_processes] *)
  post_times : int Queue.t;  (** arrival time of each unserviced interrupt *)
  mutable handled : int;
  mutable latency_total : int;
  mutable victim_cycles : int;  (** cycles stolen from victim processes *)
  mutable victim_hits : int;  (** interrupts that perturbed some process *)
  mutable borrowed_privileged_cycles : int;
      (** ring-0 cycles executed inside a borrowed (user) process *)
}

type t = {
  sim : Sim.t;
  discipline : discipline;
  handlers : (string, handler) Hashtbl.t;
  mutable interceptor_cycles : int;
}

let discipline_name = function
  | Inline -> "inline-in-victim"
  | Handler_processes -> "handler-processes"

let create sim ~discipline = { sim; discipline; handlers = Hashtbl.create 8; interceptor_cycles = 0 }

let handler t name =
  match Hashtbl.find_opt t.handlers name with
  | Some h -> h
  | None -> invalid_arg ("Interrupt: unregistered source " ^ name)

(* The dedicated handler process: block for each wakeup, do the service
   work, perform the device action, record latency.  It runs forever
   (blocked when idle), like the real kernel processes. *)
let handler_process_body t h _pid =
  let rec serve () =
    Sim.block (Option.get h.chan);
    Sim.compute h.service_cycles;
    h.action ();
    (match Queue.take_opt h.post_times with
    | Some posted ->
        h.handled <- h.handled + 1;
        h.latency_total <- h.latency_total + (Sim.now t.sim - posted)
    | None -> ());
    serve ()
  in
  serve ()

let register ?(action = fun () -> ()) t ~name ~service_cycles =
  if Hashtbl.mem t.handlers name then invalid_arg ("Interrupt.register: duplicate " ^ name);
  let chan =
    match t.discipline with
    | Inline -> None
    | Handler_processes -> Some (Sim.new_channel t.sim ~name:(Printf.sprintf "intr.%s" name))
  in
  let h =
    {
      source_name = name;
      service_cycles;
      action;
      chan;
      post_times = Queue.create ();
      handled = 0;
      latency_total = 0;
      victim_cycles = 0;
      victim_hits = 0;
      borrowed_privileged_cycles = 0;
    }
  in
  Hashtbl.replace t.handlers name h;
  match t.discipline with
  | Inline -> ()
  | Handler_processes ->
      ignore
        (Sim.spawn t.sim ~dedicated:true ~ring:Ring.kernel
           ~name:(Printf.sprintf "intr-handler.%s" name)
           (handler_process_body t h))

(* The interceptor, executed at interrupt time (outside any process). *)
let intercept t h =
  let cost = Sim.cost_model t.sim in
  t.interceptor_cycles <- t.interceptor_cycles + cost.Cost.interrupt_entry;
  match t.discipline with
  | Handler_processes ->
      (* "Simply turn each interrupt into a wakeup." *)
      Queue.add (Sim.now t.sim) h.post_times;
      Sim.wakeup t.sim (Option.get h.chan)
  | Inline ->
      (* Run the whole handler now, in ring 0, inside whichever process
         happens to be running. *)
      let stolen = cost.Cost.interrupt_entry + h.service_cycles in
      (match Sim.running_pids t.sim with
      | victim :: _ ->
          Sim.perturb t.sim victim stolen;
          h.victim_cycles <- h.victim_cycles + stolen;
          h.victim_hits <- h.victim_hits + 1;
          h.borrowed_privileged_cycles <- h.borrowed_privileged_cycles + stolen
      | [] -> ());
      h.action ();
      h.handled <- h.handled + 1;
      h.latency_total <- h.latency_total + stolen

let post ?(delay = 0) t ~name =
  let h = handler t name in
  Sim.at t.sim ~delay (fun () -> intercept t h)

type stats = {
  name : string;
  handled : int;
  mean_latency : float;
  victim_cycles : int;
  victim_hits : int;
  borrowed_privileged_cycles : int;
}

let stats_of t ~name =
  let h = handler t name in
  {
    name = h.source_name;
    handled = h.handled;
    mean_latency =
      (if h.handled = 0 then Float.nan
       else float_of_int h.latency_total /. float_of_int h.handled);
    victim_cycles = h.victim_cycles;
    victim_hits = h.victim_hits;
    borrowed_privileged_cycles = h.borrowed_privileged_cycles;
  }

let interceptor_cycles t = t.interceptor_cycles

let sources t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.handlers [] |> List.sort String.compare
