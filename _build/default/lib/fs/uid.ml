(* System-generated unique identifiers for file-system objects.

   The paper's partitioning sketch has the bottom kernel layer
   implement "a file system in which all segments were named by system
   generated unique identifiers", with the naming hierarchy layered on
   top; these are those identifiers. *)

type t = int

type generator = { mutable next : int }

let generator () = { next = 2 }

let root : t = 1

let fresh g =
  let uid = g.next in
  g.next <- uid + 1;
  uid

let to_int t = t

let equal = Int.equal
let compare = Int.compare

let pp ppf t = Fmt.pf ppf "uid:%d" t
