lib/fs/hierarchy.mli: Acl Brackets Label Mode Multics_access Multics_machine Policy Sdw Uid
