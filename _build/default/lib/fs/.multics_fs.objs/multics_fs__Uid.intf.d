lib/fs/uid.mli: Format
