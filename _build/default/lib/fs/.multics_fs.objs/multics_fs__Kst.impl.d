lib/fs/kst.ml: Hashtbl Int List Multics_machine Option Printf Uid
