lib/fs/uid.ml: Fmt Int
