lib/fs/hierarchy.ml: Acl Array Brackets Fmt Hardware Hashtbl Label List Mode Multics_access Multics_machine Option Policy Printf Result Ring Sdw String Uid
