lib/fs/kst.mli: Multics_machine Uid
