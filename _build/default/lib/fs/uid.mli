(** System-generated unique identifiers for file-system objects. *)

type t = private int

type generator

val generator : unit -> generator

val root : t
(** The root directory's well-known uid. *)

val fresh : generator -> t

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
