lib/vm/backup.ml: List Memory Multics_machine Multics_mm Multics_proc Sim
