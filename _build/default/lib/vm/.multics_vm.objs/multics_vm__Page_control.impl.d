lib/vm/page_control.ml: Array Block Level List Memory Multics_machine Multics_mm Multics_proc Multics_util Page_id Sim
