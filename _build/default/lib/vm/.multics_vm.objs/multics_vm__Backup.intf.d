lib/vm/backup.mli: Memory Multics_mm Multics_proc Page_id Sim
