lib/vm/page_control.mli: Memory Multics_mm Multics_proc Multics_util Page_id Sim
