(** The backup daemon: a dedicated kernel process sweeping modified
    core pages to tape on a fixed period — one of the internal I/O
    functions the paper keeps in the kernel, implemented as an
    asynchronous parallel process. *)

open Multics_mm
open Multics_proc

type t

val start :
  ?tape_cost_per_page:int -> period:int -> sweeps:int -> Sim.t -> mem:Memory.t -> t
(** Spawn the daemon on a dedicated virtual processor and schedule
    [sweeps] period wakeups.  Raises [Invalid_argument] on a
    non-positive period or sweep count. *)

val pid : t -> Sim.pid option
val sweeps_done : t -> int
val pages_backed_up : t -> int

val sweep_trace : t -> (int * int) list
(** (completion time, pages backed up) per sweep. *)

val vulnerable_pages : t -> Page_id.t list
(** Core pages still modified and unbacked. *)
