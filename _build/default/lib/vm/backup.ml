(* The backup daemon.

   "Internal I/O functions (for managing the virtual memory, performing
   backup, and loading the system) would still be managed in the
   kernel."  Backup is another of the kernel mechanisms the paper's
   process redesign turns into a dedicated asynchronous process: it
   runs on its own virtual processor, sweeps the modified core pages to
   tape on a fixed period, and coordinates with everything else through
   ordinary wakeups — no special hooks in the fault path. *)

open Multics_mm
open Multics_proc

type t = {
  sim : Sim.t;
  mem : Memory.t;
  period : int;  (** cycles between sweeps *)
  tape_cost_per_page : int;
  sweeps_wanted : int;
  kick : Sim.chan;
  mutable pid : Sim.pid option;
  mutable sweeps_done : int;
  mutable pages_backed_up : int;
  mutable trace : (int * int) list;  (** (time, pages this sweep), reversed *)
}

let daemon_body t _pid =
  for _ = 1 to t.sweeps_wanted do
    Sim.block t.kick;
    (* Sweep: copy every modified core page to tape and mark it
       clean.  The page stays where it is; backup reads it in place. *)
    let backed_this_sweep = ref 0 in
    List.iter
      (fun page ->
        match Memory.frame_usage t.mem page with
        | Some (_, true) ->
            Sim.compute t.tape_cost_per_page;
            (* The tape copy is complete: the page is clean now. *)
            Memory.clean t.mem page;
            incr backed_this_sweep;
            t.pages_backed_up <- t.pages_backed_up + 1
        | Some (_, false) | None -> ())
      (Memory.core_residents t.mem);
    t.sweeps_done <- t.sweeps_done + 1;
    t.trace <- (Sim.now t.sim, !backed_this_sweep) :: t.trace
  done

let start ?(tape_cost_per_page = 12_000) ~period ~sweeps sim ~mem =
  if period <= 0 then invalid_arg "Backup.start: period must be positive";
  if sweeps <= 0 then invalid_arg "Backup.start: need at least one sweep";
  let t =
    {
      sim;
      mem;
      period;
      tape_cost_per_page;
      sweeps_wanted = sweeps;
      kick = Sim.new_channel sim ~name:"backup.kick";
      pid = None;
      sweeps_done = 0;
      pages_backed_up = 0;
      trace = [];
    }
  in
  t.pid <-
    Some
      (Sim.spawn sim ~dedicated:true ~ring:Multics_machine.Ring.kernel ~name:"backup-daemon"
         (daemon_body t));
  (* The period clock: one wakeup per sweep. *)
  for i = 1 to sweeps do
    Sim.at sim ~delay:(i * period) (fun () -> Sim.wakeup sim t.kick)
  done;
  t

let pid t = t.pid
let sweeps_done t = t.sweeps_done
let pages_backed_up t = t.pages_backed_up

let sweep_trace t = List.rev t.trace

(* A page is vulnerable if modified and not yet backed up; after a
   sweep completes, nothing swept remains vulnerable. *)
let vulnerable_pages t =
  List.filter
    (fun page -> match Memory.frame_usage t.mem page with Some (_, true) -> true | _ -> false)
    (Memory.core_residents t.mem)
