(* The maintained flaw list.

   The review activity: "a list of all known Multics security flaws is
   maintained.  Each flaw reported is analyzed to determine how it
   happened, how it can be fixed, and how similar flaws can be avoided
   in the security kernel being developed.  So far, all of the flaws
   uncovered by the review activities are isolated and easily repaired.
   No major design flaws have been found."

   Each entry records that analysis for a flaw this reproduction
   actually models, and names the penetration attack that demonstrates
   it and the configuration change that retires it. *)

type status = Repaired_by_review | Retired_by_removal | Retired_by_simplification

let status_name = function
  | Repaired_by_review -> "repaired (review)"
  | Retired_by_removal -> "mechanism removed"
  | Retired_by_simplification -> "design simplified"

type entry = {
  flaw_name : string;
  how_it_happened : string;
  how_fixed : string;
  how_avoided : string;  (** in the kernel being developed *)
  demonstrated_by : string;  (** pentest attack name *)
  status : status;
  isolated : bool;  (** the paper: "isolated and easily repaired" *)
}

let entries =
  [
    {
      flaw_name = "linker trusts user object headers";
      how_it_happened =
        "the ring-0 linker parses user-constructed object segments; its parser predates \
         the discipline of validating every supervisor argument";
      how_fixed = "bounds-check the definition and linkage sections before use";
      how_avoided =
        "the linker no longer executes in ring 0 at all: hostile input faults in the \
         attacker's own ring";
      demonstrated_by = "malformed-object-segment";
      status = Retired_by_removal;
      isolated = true;
    };
    {
      flaw_name = "linker searches with supervisor authority";
      how_it_happened =
        "the ring-0 search reused the supervisor's own descriptors instead of re-deriving \
         the faulting user's access — a confused deputy";
      how_fixed = "perform the directory walk with the faulting process's subject";
      how_avoided =
        "the user-ring linker CAN only search with the user's authority: its lookups are \
         ordinary initiate gate calls";
      demonstrated_by = "linker-confused-deputy";
      status = Retired_by_removal;
      isolated = true;
    };
    {
      flaw_name = "circular input buffer destroys unread messages";
      how_it_happened =
        "a special-purpose storage manager reused a fixed ring; under burst input the \
         writer laps the reader before a complete circuit";
      how_fixed = "none within the design: capacity tuning only moves the cliff";
      how_avoided =
        "the VM-backed buffer replaces the special-purpose manager with the standard \
         storage facility; there is no ring to lap";
      demonstrated_by = "input-buffer-lapping";
      status = Retired_by_simplification;
      isolated = true;
    };
    {
      flaw_name = "error answers leak protected names";
      how_it_happened =
        "early directory code distinguished 'no such entry' from 'no permission', letting \
         probes map protected name spaces";
      how_fixed = "answer No_entry uniformly for names the caller may not status";
      how_avoided = "the lie is applied at the single lookup primitive every walk uses";
      demonstrated_by = "hidden-directory-existence-probe";
      status = Repaired_by_review;
      isolated = true;
    };
    {
      flaw_name = "user-specified ring brackets unchecked";
      how_it_happened =
        "segment creation accepted caller-supplied ring brackets verbatim; any user could \
         mint a gate segment of his own text with inner-ring brackets and call through it";
      how_fixed =
        "segment control refuses brackets whose write bracket is inner to the caller's \
         ring of execution; inner-ring subsystems are installed by the administrator";
      how_avoided = "the check sits in add_entry/set_brackets, below every entry path";
      demonstrated_by = "mint-your-own-ring0-gate";
      status = Repaired_by_review;
      isolated = true;
    };
    {
      flaw_name = "storage exhaustion by unbounded segment growth";
      how_it_happened = "segment growth was charged to no one; any user could fill the store";
      how_fixed = "quota cells on directories, charged before a page materializes";
      how_avoided = "growth is charged at segment control, below every entry path";
      demonstrated_by = "storage-quota-exhaustion";
      status = Repaired_by_review;
      isolated = true;
    };
  ]

let find ~flaw_name = List.find_opt (fun e -> e.flaw_name = flaw_name) entries

let count = List.length entries

let all_isolated () = List.for_all (fun e -> e.isolated) entries

(* Cross-check: every flaw's demonstrating attack exists in the
   penetration corpus. *)
let demonstrations_exist () =
  List.for_all
    (fun e ->
      List.exists (fun (a : Pentest.attack) -> a.Pentest.attack_name = e.demonstrated_by) Pentest.corpus)
    entries
