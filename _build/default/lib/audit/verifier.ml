(* Systematic verification of the reference monitor.

   The paper: a kernel small enough for audit "also may be susceptible
   to certification through more systematic program verification
   techniques".  This module is that technique in miniature: the
   security-relevant decision procedures are small and finite enough to
   check EXHAUSTIVELY against independent declarative specifications —
   every label pair over a bounded compartment universe, every ring and
   bracket combination, every ACL-match case.

   The specifications here are written from the definitions, not from
   the implementation: dominance from the set-theoretic definition, the
   bracket rule from the Schroeder–Saltzer tables, the mandatory rules
   from Bell–LaPadula.  A mismatch is a certification failure. *)

open Multics_access
open Multics_machine

type check = {
  check_name : string;
  cases : int;
  mismatches : int;
  detail : string option;  (** first counterexample, if any *)
}

let passed c = c.mismatches = 0

(* ----- Universe generators ----- *)

let compartment_universe = [ "c"; "n" ]

let all_labels =
  (* 4 levels x all subsets of a 2-compartment universe = 16 labels. *)
  let subsets =
    List.concat_map
      (fun with_c -> List.map (fun with_n -> (with_c, with_n)) [ false; true ])
      [ false; true ]
  in
  List.concat_map
    (fun level ->
      List.map
        (fun (with_c, with_n) ->
          let compartments =
            (if with_c then [ List.nth compartment_universe 0 ] else [])
            @ if with_n then [ List.nth compartment_universe 1 ] else []
          in
          Label.make level compartments)
        subsets)
    Label.all_levels

(* ----- 1. Dominance against its set-theoretic definition ----- *)

let spec_dominates a b =
  Label.level_rank (Label.level a) >= Label.level_rank (Label.level b)
  && List.for_all (fun c -> List.mem c (Label.compartments a)) (Label.compartments b)

let check_dominance () =
  let cases = ref 0 in
  let mismatches = ref 0 in
  let detail = ref None in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          incr cases;
          if Label.dominates a b <> spec_dominates a b then begin
            incr mismatches;
            if !detail = None then
              detail :=
                Some (Printf.sprintf "dominates %s %s" (Label.to_string a) (Label.to_string b))
          end)
        all_labels)
    all_labels;
  { check_name = "dominance = level order x compartment inclusion"; cases = !cases;
    mismatches = !mismatches; detail = !detail }

(* ----- 2. lub/glb are actual least/greatest bounds ----- *)

let check_lattice_bounds () =
  let cases = ref 0 in
  let mismatches = ref 0 in
  let detail = ref None in
  let record name = if !detail = None then detail := Some name in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          incr cases;
          let j = Label.lub a b in
          let m = Label.glb a b in
          let join_ok =
            spec_dominates j a && spec_dominates j b
            && List.for_all
                 (fun c -> if spec_dominates c a && spec_dominates c b then spec_dominates c j else true)
                 all_labels
          in
          let meet_ok =
            spec_dominates a m && spec_dominates b m
            && List.for_all
                 (fun c -> if spec_dominates a c && spec_dominates b c then spec_dominates m c else true)
                 all_labels
          in
          if not (join_ok && meet_ok) then begin
            incr mismatches;
            record (Printf.sprintf "bounds of %s, %s" (Label.to_string a) (Label.to_string b))
          end)
        all_labels)
    all_labels;
  { check_name = "lub/glb are least upper / greatest lower bounds"; cases = !cases;
    mismatches = !mismatches; detail = !detail }

(* ----- 3. The mandatory rules against Bell-LaPadula ----- *)

let check_mandatory () =
  let cases = ref 0 in
  let mismatches = ref 0 in
  let detail = ref None in
  let modes = [ Mode.r; Mode.w; Mode.rw; Mode.e; Mode.re; Mode.none ] in
  List.iter
    (fun subject_label ->
      List.iter
        (fun object_label ->
          List.iter
            (fun requested ->
              incr cases;
              let refused =
                Policy.mandatory_refusals ~subject_label ~object_label ~requested <> []
              in
              (* Spec: observing requires subject >= object; modifying
                 requires object >= subject; a request is refused iff
                 some requested right violates its rule. *)
              let observe = requested.Mode.read || requested.Mode.execute in
              let modify = requested.Mode.write in
              let spec_refused =
                (observe && not (spec_dominates subject_label object_label))
                || (modify && not (spec_dominates object_label subject_label))
              in
              if refused <> spec_refused then begin
                incr mismatches;
                if !detail = None then
                  detail :=
                    Some
                      (Printf.sprintf "mandatory %s -> %s mode %s"
                         (Label.to_string subject_label) (Label.to_string object_label)
                         (Mode.to_string requested))
              end)
            modes)
        all_labels)
    all_labels;
  { check_name = "mandatory rules = simple security + *-property"; cases = !cases;
    mismatches = !mismatches; detail = !detail }

(* ----- 4. The bracket rule against the published tables ----- *)

let check_brackets () =
  let cases = ref 0 in
  let mismatches = ref 0 in
  let detail = ref None in
  for r1 = 0 to 7 do
    for r2 = r1 to 7 do
      for r3 = r2 to 7 do
        let b = Brackets.make ~r1 ~r2 ~r3 in
        for ring = 0 to 7 do
          incr cases;
          let rg = Ring.of_int ring in
          let spec_read = ring <= r2 in
          let spec_write = ring <= r1 in
          let spec_transfer =
            if ring < r1 then `Outward
            else if ring <= r2 then `Execute
            else if ring <= r3 then `Gate r2
            else `None
          in
          let impl_transfer =
            match Brackets.transfer b ~ring:rg with
            | Brackets.Execute_in_place -> `Execute
            | Brackets.Inward_call target -> `Gate (Ring.to_int target)
            | Brackets.Outward_call_fault -> `Outward
            | Brackets.Beyond_call_bracket -> `None
          in
          if
            Brackets.read_ok b ~ring:rg <> spec_read
            || Brackets.write_ok b ~ring:rg <> spec_write
            || impl_transfer <> spec_transfer
          then begin
            incr mismatches;
            if !detail = None then
              detail := Some (Printf.sprintf "brackets (%d,%d,%d) ring %d" r1 r2 r3 ring)
          end
        done
      done
    done
  done;
  { check_name = "bracket rule = Schroeder-Saltzer tables (all 960 combinations)";
    cases = !cases; mismatches = !mismatches; detail = !detail }

(* ----- 5. The hardware check never grants what the brackets refuse ----- *)

let check_hardware_soundness () =
  let cases = ref 0 in
  let mismatches = ref 0 in
  let detail = ref None in
  let modes = [ Mode.none; Mode.r; Mode.rw; Mode.re; Mode.rew ] in
  for r1 = 0 to 7 do
    for r2 = r1 to 7 do
      for r3 = r2 to 7 do
        List.iter
          (fun mode ->
            let sdw = Sdw.make ~gate_bound:2 ~mode ~brackets:(Brackets.make ~r1 ~r2 ~r3) () in
            for ring = 0 to 7 do
              List.iter
                (fun operation ->
                  incr cases;
                  let granted =
                    Hardware.allowed sdw ~ring:(Ring.of_int ring) ~operation
                  in
                  let sound =
                    match operation with
                    | Hardware.Read -> (not granted) || (mode.Mode.read && ring <= r2)
                    | Hardware.Write -> (not granted) || (mode.Mode.write && ring <= r1)
                    | Hardware.Execute ->
                        (not granted) || (mode.Mode.execute && r1 <= ring && ring <= r2)
                    | Hardware.Call entry ->
                        (not granted)
                        || mode.Mode.execute
                           && ((r1 <= ring && ring <= r2)
                              || (r2 < ring && ring <= r3 && entry < 2))
                  in
                  if not sound then begin
                    incr mismatches;
                    if !detail = None then
                      detail :=
                        Some
                          (Printf.sprintf "sdw (%d,%d,%d) %s ring %d" r1 r2 r3
                             (Mode.to_string mode) ring)
                  end)
                [ Hardware.Read; Hardware.Write; Hardware.Execute; Hardware.Call 1; Hardware.Call 5 ]
            done)
          modes
      done
    done
  done;
  { check_name = "hardware check grants nothing the mode+brackets refuse";
    cases = !cases; mismatches = !mismatches; detail = !detail }

(* ----- 6. ACL evaluation: most-specific match, deterministically ----- *)

let check_acl_specificity () =
  let cases = ref 0 in
  let mismatches = ref 0 in
  let detail = ref None in
  let people = [ "A"; "B" ] and projects = [ "P"; "Q" ] in
  let components = [ "A"; "B"; "*" ] in
  (* Every ACL of two pattern entries vs every principal: the decision
     must equal the most specific matching entry's mode. *)
  let patterns =
    List.concat_map
      (fun p ->
        List.concat_map
          (fun j -> List.map (fun t -> Printf.sprintf "%s.%s.%s" p j t) [ "a"; "*" ])
          (List.map (fun x -> if x = "A" then "P" else if x = "B" then "Q" else "*") components))
      components
  in
  List.iter
    (fun pat1 ->
      List.iter
        (fun pat2 ->
          if pat1 <> pat2 then begin
            let acl = Acl.of_strings [ (pat1, "r"); (pat2, "rw") ] in
            List.iter
              (fun person ->
                List.iter
                  (fun project ->
                    incr cases;
                    let principal = Principal.of_string (person ^ "." ^ project ^ ".a") in
                    let spec_mode =
                      let matching =
                        List.filter
                          (fun (p, _) -> Principal.matches (Principal.pattern_of_string p) principal)
                          [ (pat1, Mode.r); (pat2, Mode.rw) ]
                      in
                      let sorted =
                        List.sort
                          (fun (a, _) (b, _) ->
                            let sa = Principal.pattern_specificity (Principal.pattern_of_string a) in
                            let sb = Principal.pattern_specificity (Principal.pattern_of_string b) in
                            match Int.compare sb sa with 0 -> String.compare a b | c -> c)
                          matching
                      in
                      match sorted with [] -> Mode.none | (_, m) :: _ -> m
                    in
                    if not (Mode.equal (Acl.mode_for acl principal) spec_mode) then begin
                      incr mismatches;
                      if !detail = None then
                        detail :=
                          Some (Printf.sprintf "acl [%s; %s] vs %s.%s" pat1 pat2 person project)
                    end)
                  projects)
              people
          end)
        patterns)
    patterns;
  { check_name = "ACL decision = most specific matching entry"; cases = !cases;
    mismatches = !mismatches; detail = !detail }

let run_all () =
  [
    check_dominance ();
    check_lattice_bounds ();
    check_mandatory ();
    check_brackets ();
    check_hardware_soundness ();
    check_acl_specificity ();
  ]

let all_passed checks = List.for_all passed checks

let total_cases checks = List.fold_left (fun acc c -> acc + c.cases) 0 checks
