(** The paper's four categories of non-kernel software, as runnable
    scenarios: undesired results may occur, but a correct kernel keeps
    them from being unauthorized. *)

type category = System_provided | User_constructed | Borrowed_program | Mutual_consent

val category_name : category -> string

type result = {
  category : category;
  scenario_name : string;
  undesired : bool;
  unauthorized : bool;
  contained : bool;
  note : string;
}

val scenario_system_provided : unit -> result
val scenario_user_constructed : unit -> result
val scenario_borrowed_unconfined : unit -> result
val scenario_borrowed_confined : unit -> result
val scenario_mutual_consent : unit -> result

val run_all : unit -> result list

val kernel_held : result list -> bool
(** True iff no scenario produced an unauthorized result. *)
