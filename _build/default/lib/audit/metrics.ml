(* Kernel metrics across engineering stages.

   For each configuration, summarize the certification workload; for
   pairs of configurations, compute the deltas the paper quotes. *)

type snapshot = {
  config_name : string;
  gates : int;
  statements : int;
  ring0_statements : int;
  ring1_statements : int;
  modules : int;
  address_space_statements : int;
  functional_gates : int;  (** gates of the implemented API surface *)
}

let snapshot (config : Multics_kernel.Config.t) =
  {
    config_name = config.Multics_kernel.Config.name;
    gates = Inventory.total_gates config;
    statements = Inventory.total_statements config;
    ring0_statements = Inventory.ring0_statements config;
    ring1_statements = Inventory.ring1_statements config;
    modules = Inventory.module_count config;
    address_space_statements = Inventory.address_space_statements config;
    functional_gates = Multics_kernel.Gate.count config;
  }

let stages () = List.map snapshot Multics_kernel.Config.stages

type delta = {
  from_config : string;
  to_config : string;
  gates_removed : int;
  gates_removed_fraction : float;  (** of the from-configuration's gates *)
  statements_removed : int;
  statements_removed_fraction : float;
}

let delta ~from_config ~to_config =
  let a = snapshot from_config in
  let b = snapshot to_config in
  {
    from_config = a.config_name;
    to_config = b.config_name;
    gates_removed = a.gates - b.gates;
    gates_removed_fraction =
      (if a.gates = 0 then Float.nan else float_of_int (a.gates - b.gates) /. float_of_int a.gates);
    statements_removed = a.statements - b.statements;
    statements_removed_fraction =
      (if a.statements = 0 then Float.nan
       else float_of_int (a.statements - b.statements) /. float_of_int a.statements);
  }

(* --- The paper's three headline removal claims --- *)

(* E1: the linker removal's share of baseline gate entries. *)
let linker_gate_fraction () =
  let d =
    delta ~from_config:Multics_kernel.Config.hardware_rings
      ~to_config:Multics_kernel.Config.linker_removed
  in
  d.gates_removed_fraction

(* E2: the factor by which the protected address-space-management code
   shrinks. *)
let address_space_reduction_factor () =
  let before = Inventory.address_space_statements Multics_kernel.Config.hardware_rings in
  let after = Inventory.address_space_statements Multics_kernel.Config.naming_removed in
  if after = 0 then Float.nan else float_of_int before /. float_of_int after

(* E3: the cumulative share of baseline gates removed by linker +
   naming together. *)
let combined_removal_fraction () =
  let baseline = Inventory.total_gates Multics_kernel.Config.hardware_rings in
  let after = Inventory.total_gates Multics_kernel.Config.naming_removed in
  if baseline = 0 then Float.nan else float_of_int (baseline - after) /. float_of_int baseline
