(** Systematic verification of the reference monitor: the
    security-relevant decision procedures checked exhaustively against
    independent declarative specifications (dominance, lattice bounds,
    the Bell–LaPadula rules, the Schroeder–Saltzer bracket tables,
    hardware-check soundness, ACL specificity). *)

type check = {
  check_name : string;
  cases : int;
  mismatches : int;
  detail : string option;  (** first counterexample, if any *)
}

val passed : check -> bool

val check_dominance : unit -> check
val check_lattice_bounds : unit -> check
val check_mandatory : unit -> check
val check_brackets : unit -> check
val check_hardware_soundness : unit -> check
val check_acl_specificity : unit -> check

val run_all : unit -> check list
val all_passed : check list -> bool
val total_cases : check list -> int
