(** Kernel metrics across the engineering stages, and the paper's
    headline removal numbers. *)

type snapshot = {
  config_name : string;
  gates : int;
  statements : int;
  ring0_statements : int;
  ring1_statements : int;
  modules : int;
  address_space_statements : int;
  functional_gates : int;
}

val snapshot : Multics_kernel.Config.t -> snapshot

val stages : unit -> snapshot list
(** One snapshot per {!Multics_kernel.Config.stages} entry. *)

type delta = {
  from_config : string;
  to_config : string;
  gates_removed : int;
  gates_removed_fraction : float;
  statements_removed : int;
  statements_removed_fraction : float;
}

val delta :
  from_config:Multics_kernel.Config.t -> to_config:Multics_kernel.Config.t -> delta

val linker_gate_fraction : unit -> float
(** E1: paper claims 10%. *)

val address_space_reduction_factor : unit -> float
(** E2: paper claims a factor of ten. *)

val combined_removal_fraction : unit -> float
(** E3: paper claims approximately one third. *)
