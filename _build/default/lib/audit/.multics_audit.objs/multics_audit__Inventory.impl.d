lib/audit/inventory.ml: List Multics_io Multics_kernel Multics_link Multics_proc Multics_vm Printf
