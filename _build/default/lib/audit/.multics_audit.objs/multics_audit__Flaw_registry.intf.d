lib/audit/flaw_registry.mli:
