lib/audit/inventory.mli: Multics_kernel
