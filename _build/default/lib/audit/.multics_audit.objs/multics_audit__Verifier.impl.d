lib/audit/verifier.ml: Acl Brackets Hardware Int Label List Mode Multics_access Multics_machine Policy Principal Printf Ring Sdw String
