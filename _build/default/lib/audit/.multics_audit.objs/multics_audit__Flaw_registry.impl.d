lib/audit/flaw_registry.ml: List Pentest
