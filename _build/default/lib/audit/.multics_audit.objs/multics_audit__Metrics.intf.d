lib/audit/metrics.mli: Multics_kernel
