lib/audit/metrics.ml: Float Inventory List Multics_kernel
