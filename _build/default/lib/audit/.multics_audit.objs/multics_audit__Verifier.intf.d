lib/audit/verifier.mli:
