lib/audit/trojan.mli:
