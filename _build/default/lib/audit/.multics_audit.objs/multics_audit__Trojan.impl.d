lib/audit/trojan.ml: Acl Api Config Label List Multics_access Multics_fs Multics_kernel Multics_machine Printf Result System User_env
