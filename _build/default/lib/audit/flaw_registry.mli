(** The review activity's maintained flaw list: how each modelled flaw
    happened, how it was fixed, how the kernel being developed avoids
    it, and which penetration attack demonstrates it. *)

type status = Repaired_by_review | Retired_by_removal | Retired_by_simplification

val status_name : status -> string

type entry = {
  flaw_name : string;
  how_it_happened : string;
  how_fixed : string;
  how_avoided : string;
  demonstrated_by : string;
  status : status;
  isolated : bool;
}

val entries : entry list
val find : flaw_name:string -> entry option
val count : int

val all_isolated : unit -> bool
(** The paper's finding: "all of the flaws uncovered ... are isolated
    and easily repaired". *)

val demonstrations_exist : unit -> bool
(** Every entry's demonstrating attack is in the penetration corpus. *)
