(* The certification dossier.

   "Certification results in the certifier signing-off on a statement
   of adequacy.  By signing, the certifier assumes responsibility for
   future security failures.  A system is certifiable if the certifier
   can be convinced to sign."

   This binary assembles everything a certifier would want on the desk
   for one configuration: the kernel's inventory and gate surface, the
   exhaustive specification checks, the penetration results, the
   non-kernel software scenarios, and the maintained flaw list — and
   renders the verdict the evidence supports.

     dune exec bin/certify.exe                      # the security kernel
     dune exec bin/certify.exe -- baseline          # the 645 supervisor
*)

open Multics_audit
open Multics_kernel

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let config_of_name = function
  | Some ("baseline" | "645") -> Config.baseline_645
  | Some ("reviewed" | "6180") -> Config.hardware_rings
  | Some _ | None -> Config.kernel_6180

let () =
  let config = config_of_name (if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None) in
  Printf.printf "CERTIFICATION DOSSIER — configuration %S\n" config.Config.name;

  section "1. The mechanism to be certified";
  Printf.printf "modules: %d | supervisor gates: %d (inventory) / %d (implemented API)\n"
    (Inventory.module_count config) (Inventory.total_gates config) (Gate.count config);
  Printf.printf "ring-0 statements: %d | ring-1 (denial-only) statements: %d\n"
    (Inventory.ring0_statements config)
    (Inventory.ring1_statements config);
  let t =
    Multics_util.Table.create ~title:"module inventory"
      ~columns:
        [
          ("module", Multics_util.Table.Left);
          ("subsystem", Multics_util.Table.Left);
          ("stmts", Multics_util.Table.Right);
          ("gates", Multics_util.Table.Right);
          ("ring", Multics_util.Table.Right);
          ("kind", Multics_util.Table.Left);
        ]
  in
  List.iter
    (fun (m : Inventory.module_info) ->
      Multics_util.Table.add_row t
        [
          m.Inventory.module_name;
          m.Inventory.subsystem;
          string_of_int m.Inventory.statements;
          string_of_int m.Inventory.gates;
          string_of_int m.Inventory.certification_ring;
          (match m.Inventory.kind with
          | Inventory.Common -> "common"
          | Inventory.Private_per_process -> "private");
        ])
    (Inventory.modules config);
  Multics_util.Table.print t;

  section "2. Initialization discipline";
  let init = Init.run config in
  Printf.printf "%s: %d steps at start, %d privileged statements (%d moved offline)\n"
    (Config.init_strategy_name config.Config.init)
    (Init.step_count init) init.Init.privileged_total init.Init.offline_total;

  section "3. Systematic verification of the reference monitor";
  let checks = Verifier.run_all () in
  List.iter
    (fun (c : Verifier.check) ->
      Printf.printf "  %-64s %6d cases, %d mismatches\n" c.Verifier.check_name c.Verifier.cases
        c.Verifier.mismatches)
    checks;
  let verified = Verifier.all_passed checks in
  Printf.printf "  => %s\n"
    (if verified then "all decision procedures match their specifications"
     else "SPECIFICATION MISMATCHES — DO NOT SIGN");

  section "4. Penetration exercise";
  let corpus = Pentest.run_corpus config in
  List.iter
    (fun ((attack : Pentest.attack), outcome) ->
      Printf.printf "  %-40s %s\n" attack.Pentest.attack_name (Pentest.outcome_name outcome))
    corpus;
  let summary = Pentest.summarize corpus in
  let penetrated = summary.Pentest.violated > 0 in
  Printf.printf "  => %d violated / %d refused / %d contained\n" summary.Pentest.violated
    summary.Pentest.refused summary.Pentest.contained;

  section "5. Non-kernel software (undesired vs unauthorized)";
  let scenarios = Trojan.run_all () in
  List.iter
    (fun (r : Trojan.result) ->
      Printf.printf "  %-42s undesired=%-5b unauthorized=%b\n" r.Trojan.scenario_name
        r.Trojan.undesired r.Trojan.unauthorized)
    scenarios;
  let kernel_held = Trojan.kernel_held scenarios in

  section "6. The maintained flaw list";
  List.iter
    (fun (e : Flaw_registry.entry) ->
      Printf.printf "  %-48s %s\n" e.Flaw_registry.flaw_name
        (Flaw_registry.status_name e.Flaw_registry.status))
    Flaw_registry.entries;
  Printf.printf "  => %s\n"
    (if Flaw_registry.all_isolated () then "all isolated and easily repaired"
     else "non-isolated flaws present");

  section "7. Statement of adequacy";
  if verified && (not penetrated) && kernel_held then begin
    Printf.printf
      "The reference monitor matches its specifications exhaustively; the\n\
       penetration corpus achieved no unauthorized release, modification or\n\
       denial; undesired results in non-kernel software stayed within their\n\
       authority.  On this evidence the certifier CAN be convinced to sign.\n\n\
       SIGNED (simulated certifier).\n"
  end
  else begin
    Printf.printf
      "The evidence does not support a signature:%s%s%s\n\nNOT SIGNED.\n"
      (if verified then "" else "\n  - specification mismatches in the reference monitor")
      (if penetrated then
         Printf.sprintf "\n  - %d attack(s) achieved unauthorized results"
           summary.Pentest.violated
       else "")
      (if kernel_held then "" else "\n  - an unauthorized result in the software categories");
    exit 1
  end
