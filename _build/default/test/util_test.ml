(* Unit and property tests for Multics_util. *)

open Multics_util

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 in
  let b = Prng.create ~seed:42 in
  let xs = List.init 100 (fun _ -> Prng.int a 1000) in
  let ys = List.init 100 (fun _ -> Prng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_prng_bounds () =
  let g = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Prng.int g 13 in
    Alcotest.(check bool) "in bounds" true (x >= 0 && x < 13)
  done

let test_prng_range () =
  let g = Prng.create ~seed:9 in
  for _ = 1 to 1000 do
    let x = Prng.int_in_range g ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "in range" true (x >= -5 && x <= 5)
  done

let test_prng_split_independent () =
  let g = Prng.create ~seed:1 in
  let s = Prng.split g in
  let xs = List.init 50 (fun _ -> Prng.int g 1_000_000) in
  let ys = List.init 50 (fun _ -> Prng.int s 1_000_000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_prng_choose () =
  let g = Prng.create ~seed:3 in
  let items = [ "a"; "b"; "c" ] in
  for _ = 1 to 100 do
    let x = Prng.choose g items in
    Alcotest.(check bool) "member" true (List.mem x items)
  done

let test_prng_shuffle_permutation () =
  let g = Prng.create ~seed:4 in
  let xs = List.init 20 Fun.id in
  let ys = Prng.shuffle g xs in
  Alcotest.(check (list int)) "same elements" xs (List.sort Int.compare ys)

let test_prng_burst_cap () =
  let g = Prng.create ~seed:5 in
  for _ = 1 to 200 do
    let n = Prng.burst_length g ~continue_num:9 ~continue_den:10 ~cap:16 in
    Alcotest.(check bool) "within cap" true (n >= 1 && n <= 16)
  done

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check int) "count" 5 s.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.Stats.max;
  Alcotest.(check (float 1e-9)) "p50" 3.0 s.Stats.p50

let test_stats_empty () =
  let s = Stats.summarize [] in
  Alcotest.(check int) "count" 0 s.Stats.count

let test_stats_single () =
  let s = Stats.summarize [ 7.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 7.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "stddev" 0.0 s.Stats.stddev;
  Alcotest.(check (float 1e-9)) "p99" 7.0 s.Stats.p99

let test_counters () =
  let c = Stats.Counters.create () in
  Stats.Counters.incr c "a";
  Stats.Counters.incr c "a";
  Stats.Counters.incr ~by:3 c "b";
  Alcotest.(check int) "a" 2 (Stats.Counters.get c "a");
  Alcotest.(check int) "b" 3 (Stats.Counters.get c "b");
  Alcotest.(check int) "missing" 0 (Stats.Counters.get c "zzz");
  Alcotest.(check (list (pair string int))) "alist" [ ("a", 2); ("b", 3) ] (Stats.Counters.to_alist c)

let test_fqueue_fifo () =
  let q = Fqueue.of_list [ 1; 2; 3 ] in
  match Fqueue.pop q with
  | Some (1, q) -> (
      let q = Fqueue.push q 4 in
      match Fqueue.pop q with
      | Some (2, q) ->
          Alcotest.(check (list int)) "rest" [ 3; 4 ] (Fqueue.to_list q)
      | _ -> Alcotest.fail "expected 2")
  | _ -> Alcotest.fail "expected 1"

let test_fqueue_empty () =
  Alcotest.(check bool) "empty pop" true (Fqueue.pop Fqueue.empty = None);
  Alcotest.(check int) "length" 0 (Fqueue.length Fqueue.empty)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec loop i = i + nl <= hl && (String.sub haystack i nl = needle || loop (i + 1)) in
  loop 0

let test_table_render () =
  let t =
    Table.create ~title:"demo" ~columns:[ ("name", Table.Left); ("n", Table.Right) ]
  in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && String.sub s 0 4 = "demo");
  Alcotest.(check bool) "has alpha" true (contains s "alpha");
  Alcotest.(check bool) "bad row rejected" true
    (try
       Table.add_row t [ "only-one" ];
       false
     with Invalid_argument _ -> true)

let fqueue_prop =
  QCheck.Test.make ~name:"fqueue preserves order" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let q = Multics_util.Fqueue.of_list xs in
      Multics_util.Fqueue.to_list q = xs)

let prng_chance_prop =
  QCheck.Test.make ~name:"chance 0/n is never true" ~count:50 QCheck.small_int (fun seed ->
      let g = Prng.create ~seed in
      not (Prng.chance g ~num:0 ~den:10))

let suite =
  [
    ("prng deterministic", `Quick, test_prng_deterministic);
    ("prng bounds", `Quick, test_prng_bounds);
    ("prng range", `Quick, test_prng_range);
    ("prng split independent", `Quick, test_prng_split_independent);
    ("prng choose", `Quick, test_prng_choose);
    ("prng shuffle", `Quick, test_prng_shuffle_permutation);
    ("prng burst cap", `Quick, test_prng_burst_cap);
    ("stats summary", `Quick, test_stats_summary);
    ("stats empty", `Quick, test_stats_empty);
    ("stats single", `Quick, test_stats_single);
    ("counters", `Quick, test_counters);
    ("fqueue fifo", `Quick, test_fqueue_fifo);
    ("fqueue empty", `Quick, test_fqueue_empty);
    ("table render", `Quick, test_table_render);
    QCheck_alcotest.to_alcotest fqueue_prop;
    QCheck_alcotest.to_alcotest prng_chance_prop;
  ]
