(* Tests for Multics_fs: hierarchy operations, the No_entry lie, ACL
   and label enforcement on directory ops, segment contents, KST. *)

open Multics_access
open Multics_fs
open Multics_machine

let admin = Multics_kernel.System.initializer_subject

let user_subject ?(ring = Ring.user) ?(clearance = Label.unclassified) name =
  Policy.subject ~principal:(Principal.of_string name) ~clearance ~ring ()

let open_acl = Acl.of_strings [ ("*.*.*", "rew") ]

let setup () =
  let h = Hierarchy.create () in
  let dir name =
    match
      Hierarchy.create_directory h ~subject:admin ~dir:Uid.root ~name ~acl:open_acl
        ~label:Label.unclassified
    with
    | Ok uid -> uid
    | Error e -> Alcotest.fail (Hierarchy.error_to_string e)
  in
  (h, dir "work")

let test_create_and_resolve () =
  let h, work = setup () in
  let alice = user_subject "Alice.Dev.a" in
  (match
     Hierarchy.create_segment h ~subject:alice ~dir:work ~name:"notes" ~acl:open_acl
       ~label:Label.unclassified
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  match Hierarchy.resolve h ~subject:alice ~path:">work>notes" with
  | Ok uid ->
      Alcotest.(check (option string)) "path round trip" (Some ">work>notes")
        (Hierarchy.path_of h uid)
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e)

let test_duplicate_name_rejected () =
  let h, work = setup () in
  let alice = user_subject "Alice.Dev.a" in
  let mk () =
    Hierarchy.create_segment h ~subject:alice ~dir:work ~name:"x" ~acl:open_acl
      ~label:Label.unclassified
  in
  (match mk () with Ok _ -> () | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  match mk () with
  | Error (Hierarchy.Name_duplicated _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "duplicate accepted"

let test_invalid_names_rejected () =
  let h, work = setup () in
  let alice = user_subject "Alice.Dev.a" in
  List.iter
    (fun name ->
      match
        Hierarchy.create_segment h ~subject:alice ~dir:work ~name ~acl:open_acl
          ~label:Label.unclassified
      with
      | Error (Hierarchy.Invalid_path _) -> ()
      | Ok _ | Error _ -> Alcotest.fail ("accepted bad name " ^ name))
    [ ""; "has>arrow"; "has space"; String.make 40 'x' ]

let test_no_entry_lie () =
  (* A directory Alice may not status answers No_entry for both real
     and fake names — never Permission_denied. *)
  let h, work = setup () in
  let bob = user_subject "Bob.Ops.a" in
  let private_dir =
    match
      Hierarchy.create_directory h ~subject:bob ~dir:work ~name:"private"
        ~acl:(Acl.of_strings [ ("Bob.Ops.*", "rew") ])
        ~label:Label.unclassified
    with
    | Ok uid -> uid
    | Error e -> Alcotest.fail (Hierarchy.error_to_string e)
  in
  (match
     Hierarchy.create_segment h ~subject:bob ~dir:private_dir ~name:"real" ~acl:open_acl
       ~label:Label.unclassified
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  let alice = user_subject "Alice.Dev.a" in
  let probe name =
    match Hierarchy.lookup h ~subject:alice ~dir:private_dir ~name with
    | Error (Hierarchy.No_entry _) -> "no_entry"
    | Error (Hierarchy.Permission_denied _) -> "permission"
    | Error _ -> "other"
    | Ok _ -> "found"
  in
  Alcotest.(check string) "real name hidden" "no_entry" (probe "real");
  Alcotest.(check string) "fake name same answer" "no_entry" (probe "fake")

let test_append_needs_execute () =
  let h, work = setup () in
  let bob = user_subject "Bob.Ops.a" in
  let listable_only =
    match
      Hierarchy.create_directory h ~subject:bob ~dir:work ~name:"ro"
        ~acl:(Acl.of_strings [ ("*.*.*", "r"); ("Bob.Ops.*", "rew") ])
        ~label:Label.unclassified
    with
    | Ok uid -> uid
    | Error e -> Alcotest.fail (Hierarchy.error_to_string e)
  in
  let alice = user_subject "Alice.Dev.a" in
  match
    Hierarchy.create_segment h ~subject:alice ~dir:listable_only ~name:"intruder" ~acl:open_acl
      ~label:Label.unclassified
  with
  | Error (Hierarchy.Permission_denied _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "append without execute permission"

let test_label_floor_on_creation () =
  (* An object below its directory's label would leak the directory's
     existence downward: refused. *)
  let h, _work = setup () in
  let secret_dir =
    match
      Hierarchy.create_directory h ~subject:admin ~dir:Uid.root ~name:"vault" ~acl:open_acl
        ~label:(Label.make Label.Secret [])
    with
    | Ok uid -> uid
    | Error e -> Alcotest.fail (Hierarchy.error_to_string e)
  in
  let carol =
    user_subject ~clearance:(Label.make Label.Secret []) "Carol.Intel.a"
  in
  match
    Hierarchy.create_segment h ~subject:carol ~dir:secret_dir ~name:"leak" ~acl:open_acl
      ~label:Label.unclassified
  with
  | Error (Hierarchy.Permission_denied _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "created Unclassified entry under Secret directory"

let test_delete_nonempty_dir_refused () =
  let h, work = setup () in
  let alice = user_subject "Alice.Dev.a" in
  let sub =
    match
      Hierarchy.create_directory h ~subject:alice ~dir:work ~name:"sub" ~acl:open_acl
        ~label:Label.unclassified
    with
    | Ok uid -> uid
    | Error e -> Alcotest.fail (Hierarchy.error_to_string e)
  in
  (match
     Hierarchy.create_segment h ~subject:alice ~dir:sub ~name:"child" ~acl:open_acl
       ~label:Label.unclassified
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  (match Hierarchy.delete_entry h ~subject:alice ~dir:work ~name:"sub" with
  | Error (Hierarchy.Directory_not_empty _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "deleted non-empty directory");
  (match Hierarchy.delete_entry h ~subject:alice ~dir:sub ~name:"child" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  match Hierarchy.delete_entry h ~subject:alice ~dir:work ~name:"sub" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e)

let test_rename () =
  let h, work = setup () in
  let alice = user_subject "Alice.Dev.a" in
  (match
     Hierarchy.create_segment h ~subject:alice ~dir:work ~name:"old" ~acl:open_acl
       ~label:Label.unclassified
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  (match Hierarchy.rename_entry h ~subject:alice ~dir:work ~name:"old" ~new_name:"new" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  match Hierarchy.resolve h ~subject:alice ~path:">work>new" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e)

let test_words_zero_extended () =
  let h, work = setup () in
  let alice = user_subject "Alice.Dev.a" in
  let uid =
    match
      Hierarchy.create_segment h ~subject:alice ~dir:work ~name:"data" ~acl:open_acl
        ~label:Label.unclassified
    with
    | Ok uid -> uid
    | Error e -> Alcotest.fail (Hierarchy.error_to_string e)
  in
  (match Hierarchy.read_word h ~subject:alice ~uid ~offset:500 with
  | Ok 0 -> ()
  | Ok v -> Alcotest.fail (Printf.sprintf "expected 0, got %d" v)
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  (match Hierarchy.write_word h ~subject:alice ~uid ~offset:100 ~value:7 with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  (match Hierarchy.read_word h ~subject:alice ~uid ~offset:100 with
  | Ok 7 -> ()
  | Ok v -> Alcotest.fail (Printf.sprintf "expected 7, got %d" v)
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  match Hierarchy.read_word h ~subject:alice ~uid ~offset:(-1) with
  | Error (Hierarchy.Out_of_bounds _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "negative offset accepted"

let test_effective_mode_intersection () =
  let h, work = setup () in
  let secret = Label.make Label.Secret [] in
  let uid =
    match
      Hierarchy.create_segment h ~subject:admin ~dir:work ~name:"labelled"
        ~acl:(Acl.of_strings [ ("*.*.*", "rw") ])
        ~label:secret
    with
    | Ok uid -> uid
    | Error e -> Alcotest.fail (Hierarchy.error_to_string e)
  in
  (* Unclassified subject: ACL grants rw, but the lattice strips read
     (no dominance) and keeps blind write (object dominates subject). *)
  let low = user_subject "Eve.Guest.a" in
  let mode = Hierarchy.effective_mode h ~subject:low ~uid in
  Alcotest.(check string) "low mode" "w" (Mode.to_string mode);
  (* Secret subject: read ok, write ok (equal labels). *)
  let cleared = user_subject ~clearance:secret "Carol.Intel.a" in
  let mode = Hierarchy.effective_mode h ~subject:cleared ~uid in
  Alcotest.(check string) "cleared mode" "rw" (Mode.to_string mode);
  (* Top-secret subject: read ok, write stripped by the star-property. *)
  let high = user_subject ~clearance:(Label.make Label.Top_secret []) "Dan.Intel.a" in
  let mode = Hierarchy.effective_mode h ~subject:high ~uid in
  Alcotest.(check string) "high mode" "r" (Mode.to_string mode)

let test_kst_roundtrip () =
  let kst = Kst.create ~variant:Kst.Split () in
  let g = Uid.generator () in
  let u1 = Uid.fresh g in
  let u2 = Uid.fresh g in
  let s1, already1 = Kst.make_known kst ~uid:u1 in
  let s2, _ = Kst.make_known kst ~uid:u2 in
  let s1', already1' = Kst.make_known kst ~uid:u1 in
  Alcotest.(check bool) "fresh" false already1;
  Alcotest.(check bool) "idempotent" true (s1 = s1' && already1');
  Alcotest.(check bool) "distinct" true (s1 <> s2);
  (match Kst.uid_of_segno kst s1 with
  | Ok u -> Alcotest.(check bool) "uid back" true (Uid.equal u u1)
  | Error e -> Alcotest.fail (Kst.error_to_string e));
  (match Kst.terminate kst s1 with Ok () -> () | Error e -> Alcotest.fail (Kst.error_to_string e));
  match Kst.uid_of_segno kst s1 with
  | Error (Kst.Unknown_segno _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "terminated segno still known"

let test_kst_split_refuses_pathnames () =
  let kst = Kst.create ~variant:Kst.Split () in
  let g = Uid.generator () in
  let segno, _ = Kst.make_known kst ~uid:(Uid.fresh g) in
  match Kst.record_pathname kst segno ">a>b" with
  | Error Kst.Naming_not_in_kernel -> ()
  | Ok () | Error _ -> Alcotest.fail "split KST accepted a pathname"

let test_kst_footprint_shrinks () =
  let fill kst =
    let g = Uid.generator () in
    for _ = 1 to 30 do
      ignore (Kst.make_known kst ~uid:(Uid.fresh g))
    done;
    Kst.protected_words kst
  in
  let unified = fill (Kst.create ~variant:Kst.Unified ()) in
  let split = fill (Kst.create ~variant:Kst.Split ()) in
  Alcotest.(check bool) "about 10x" true (unified / split >= 8)

(* Property: resolve never reports Permission_denied for intermediate
   directories — only No_entry (the lie holds on every path shape). *)
let resolve_never_leaks_prop =
  let gen = QCheck.Gen.(list_size (int_range 1 4) (oneofl [ "private"; "real"; "fake"; "x" ])) in
  QCheck.Test.make ~name:"resolve hides protected names" ~count:200 (QCheck.make gen)
    (fun components ->
      let h, work = setup () in
      let bob = user_subject "Bob.Ops.a" in
      let private_dir =
        match
          Hierarchy.create_directory h ~subject:bob ~dir:work ~name:"private"
            ~acl:(Acl.of_strings [ ("Bob.Ops.*", "rew") ])
            ~label:Label.unclassified
        with
        | Ok uid -> uid
        | Error _ -> work
      in
      ignore
        (Hierarchy.create_segment h ~subject:bob ~dir:private_dir ~name:"real"
           ~acl:(Acl.of_strings [ ("Bob.Ops.*", "rw") ])
           ~label:Label.unclassified);
      let alice = user_subject "Alice.Dev.a" in
      let path = ">work>" ^ String.concat ">" components in
      match Hierarchy.resolve h ~subject:alice ~path with
      | Error (Hierarchy.Permission_denied _) -> path = ">work>private" (* own-dir listing refusal would be a lie failure deeper *) && false
      | Ok _ | Error _ -> true)


(* ----- Quota cells ----- *)

let test_quota_basic () =
  let h, work = setup () in
  let alice = user_subject "Alice.Dev.a" in
  (match Hierarchy.set_quota h ~subject:alice ~uid:work ~quota:(Some 2) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  Alcotest.(check (option int)) "quota installed" (Some 2) (Hierarchy.quota_of h work);
  let uid =
    match
      Hierarchy.create_segment h ~subject:alice ~dir:work ~name:"grow" ~acl:open_acl
        ~label:Label.unclassified
    with
    | Ok uid -> uid
    | Error e -> Alcotest.fail (Hierarchy.error_to_string e)
  in
  let wpp = Hierarchy.words_per_page h in
  (* First two pages fit... *)
  (match Hierarchy.write_word h ~subject:alice ~uid ~offset:(wpp - 1) ~value:1 with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  (match Hierarchy.write_word h ~subject:alice ~uid ~offset:(2 * wpp - 1) ~value:1 with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  Alcotest.(check (option int)) "two pages charged" (Some 2) (Hierarchy.pages_charged_of h work);
  (* ... the third does not. *)
  (match Hierarchy.write_word h ~subject:alice ~uid ~offset:(2 * wpp) ~value:1 with
  | Error (Hierarchy.Quota_exceeded _) -> ()
  | Ok () -> Alcotest.fail "grew past the quota"
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  (* Rewriting within existing pages is free. *)
  match Hierarchy.write_word h ~subject:alice ~uid ~offset:0 ~value:9 with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e)

let test_quota_refund_on_delete () =
  let h, work = setup () in
  let alice = user_subject "Alice.Dev.a" in
  (match Hierarchy.set_quota h ~subject:alice ~uid:work ~quota:(Some 1) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  let mk name =
    match
      Hierarchy.create_segment h ~subject:alice ~dir:work ~name ~acl:open_acl
        ~label:Label.unclassified
    with
    | Ok uid -> uid
    | Error e -> Alcotest.fail (Hierarchy.error_to_string e)
  in
  let a = mk "a" in
  (match Hierarchy.write_word h ~subject:alice ~uid:a ~offset:0 ~value:1 with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  let b = mk "b" in
  (* The cell is full: b cannot grow. *)
  (match Hierarchy.write_word h ~subject:alice ~uid:b ~offset:0 ~value:1 with
  | Error (Hierarchy.Quota_exceeded _) -> ()
  | Ok () -> Alcotest.fail "grew past the quota"
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  (* Deleting a refunds its page; b may now grow. *)
  (match Hierarchy.delete_entry h ~subject:alice ~dir:work ~name:"a" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  match Hierarchy.write_word h ~subject:alice ~uid:b ~offset:0 ~value:1 with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e)

let test_quota_install_counts_existing () =
  let h, work = setup () in
  let alice = user_subject "Alice.Dev.a" in
  let uid =
    match
      Hierarchy.create_segment h ~subject:alice ~dir:work ~name:"pre" ~acl:open_acl
        ~label:Label.unclassified
    with
    | Ok uid -> uid
    | Error e -> Alcotest.fail (Hierarchy.error_to_string e)
  in
  let wpp = Hierarchy.words_per_page h in
  (match Hierarchy.write_word h ~subject:alice ~uid ~offset:(3 * wpp - 1) ~value:1 with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  (* Installing a 2-page quota under 3 existing pages must fail... *)
  (match Hierarchy.set_quota h ~subject:alice ~uid:work ~quota:(Some 2) with
  | Error (Hierarchy.Quota_exceeded _) -> ()
  | Ok () -> Alcotest.fail "quota installed below existing usage"
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  (* ... a 5-page quota installs with 3 pages charged. *)
  (match Hierarchy.set_quota h ~subject:alice ~uid:work ~quota:(Some 5) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  Alcotest.(check (option int)) "existing charged" (Some 3) (Hierarchy.pages_charged_of h work)

let test_quota_nested_cells () =
  (* An inner cell takes over accounting for its subtree. *)
  let h, work = setup () in
  let alice = user_subject "Alice.Dev.a" in
  (match Hierarchy.set_quota h ~subject:alice ~uid:work ~quota:(Some 1) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  let sub =
    match
      Hierarchy.create_directory h ~subject:alice ~dir:work ~name:"inner" ~acl:open_acl
        ~label:Label.unclassified
    with
    | Ok uid -> uid
    | Error e -> Alcotest.fail (Hierarchy.error_to_string e)
  in
  (match Hierarchy.set_quota h ~subject:alice ~uid:sub ~quota:(Some 10) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  let uid =
    match
      Hierarchy.create_segment h ~subject:alice ~dir:sub ~name:"deep" ~acl:open_acl
        ~label:Label.unclassified
    with
    | Ok uid -> uid
    | Error e -> Alcotest.fail (Hierarchy.error_to_string e)
  in
  let wpp = Hierarchy.words_per_page h in
  (* 3 pages exceed work's 1-page cell but fit the inner 10-page cell,
     which governs. *)
  (match Hierarchy.write_word h ~subject:alice ~uid ~offset:(3 * wpp - 1) ~value:1 with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  Alcotest.(check (option int)) "inner charged" (Some 3) (Hierarchy.pages_charged_of h sub);
  Alcotest.(check (option int)) "outer untouched" (Some 0) (Hierarchy.pages_charged_of h work)

let suite =
  [
    ("create and resolve", `Quick, test_create_and_resolve);
    ("duplicate name rejected", `Quick, test_duplicate_name_rejected);
    ("invalid names rejected", `Quick, test_invalid_names_rejected);
    ("no-entry lie", `Quick, test_no_entry_lie);
    ("append needs execute", `Quick, test_append_needs_execute);
    ("label floor on creation", `Quick, test_label_floor_on_creation);
    ("delete nonempty dir refused", `Quick, test_delete_nonempty_dir_refused);
    ("rename", `Quick, test_rename);
    ("words zero extended", `Quick, test_words_zero_extended);
    ("effective mode intersection", `Quick, test_effective_mode_intersection);
    ("kst roundtrip", `Quick, test_kst_roundtrip);
    ("kst split refuses pathnames", `Quick, test_kst_split_refuses_pathnames);
    ("kst footprint shrinks", `Quick, test_kst_footprint_shrinks);
    ("quota basic", `Quick, test_quota_basic);
    ("quota refund on delete", `Quick, test_quota_refund_on_delete);
    ("quota install counts existing", `Quick, test_quota_install_counts_existing);
    ("quota nested cells", `Quick, test_quota_nested_cells);
    QCheck_alcotest.to_alcotest resolve_never_leaks_prop;
  ]

let test_brackets_minting_refused () =
  let h, work = setup () in
  let alice = user_subject "Alice.Dev.a" in
  (* Ring-4 code may not create a (0,0,7) gate segment... *)
  (match
     Hierarchy.create_segment ~brackets:Brackets.kernel_gate h ~subject:alice ~dir:work
       ~name:"trapdoor" ~acl:open_acl ~label:Label.unclassified
   with
  | Error (Hierarchy.Brackets_below_ring { requested_r1 = 0; ring = 4 }) -> ()
  | Ok _ -> Alcotest.fail "minted a ring-0 gate from ring 4"
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  (* ... nor lower the brackets of an existing segment below itself... *)
  let uid =
    match
      Hierarchy.create_segment h ~subject:alice ~dir:work ~name:"mine" ~acl:open_acl
        ~label:Label.unclassified
    with
    | Ok uid -> uid
    | Error e -> Alcotest.fail (Hierarchy.error_to_string e)
  in
  (match Hierarchy.set_brackets h ~subject:alice ~uid ~brackets:(Brackets.make ~r1:1 ~r2:4 ~r3:4) with
  | Error (Hierarchy.Brackets_below_ring _) -> ()
  | Ok () -> Alcotest.fail "lowered brackets below own ring"
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  (* ... while brackets at or outside its own ring are fine. *)
  (match Hierarchy.set_brackets h ~subject:alice ~uid ~brackets:(Brackets.make ~r1:4 ~r2:5 ~r3:5) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  (* The Initializer (ring 0) installs inner-ring subsystems freely. *)
  match
    Hierarchy.create_segment ~brackets:Brackets.kernel_gate h
      ~subject:Multics_kernel.System.initializer_subject ~dir:work ~name:"hcs"
      ~acl:open_acl ~label:Label.unclassified
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e)

let minting_suite = [ ("brackets minting refused", `Quick, test_brackets_minting_refused) ]
