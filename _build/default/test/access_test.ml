(* Tests for Multics_access: the Mitre lattice, principals, ACLs and
   the composed policy check. *)

open Multics_access
open Multics_machine

let secret_crypto = Label.make Label.Secret [ "crypto" ]
let secret_nato = Label.make Label.Secret [ "nato" ]
let ts_crypto = Label.make Label.Top_secret [ "crypto" ]
let ts_both = Label.make Label.Top_secret [ "crypto"; "nato" ]

let test_dominance_basic () =
  Alcotest.(check bool) "ts{c} dominates s{c}" true (Label.dominates ts_crypto secret_crypto);
  Alcotest.(check bool) "s{c} does not dominate ts{c}" false
    (Label.dominates secret_crypto ts_crypto);
  Alcotest.(check bool) "incomparable compartments" false
    (Label.dominates secret_crypto secret_nato);
  Alcotest.(check bool) "self dominance" true (Label.dominates secret_crypto secret_crypto);
  Alcotest.(check bool) "bottom dominated by all" true
    (Label.dominates secret_nato Label.unclassified)

let test_lub_glb () =
  let j = Label.lub secret_crypto secret_nato in
  Alcotest.(check bool) "lub dominates both" true
    (Label.dominates j secret_crypto && Label.dominates j secret_nato);
  Alcotest.(check string) "lub label" "Secret{crypto,nato}" (Label.to_string j);
  let m = Label.glb ts_both secret_crypto in
  Alcotest.(check string) "glb label" "Secret{crypto}" (Label.to_string m);
  Alcotest.(check bool) "glb dominated by both" true
    (Label.dominates ts_both m && Label.dominates secret_crypto m)

let test_level_rank_roundtrip () =
  List.iter
    (fun l -> Alcotest.(check bool) "roundtrip" true (Label.level_of_rank (Label.level_rank l) = l))
    Label.all_levels

let test_principal_parse () =
  let p = Principal.of_string "Schroeder.CSR.a" in
  Alcotest.(check string) "person" "Schroeder" (Principal.person p);
  Alcotest.(check string) "project" "CSR" (Principal.project p);
  Alcotest.(check string) "tag" "a" (Principal.tag p);
  let q = Principal.of_string "Saltzer.CSR" in
  Alcotest.(check string) "default tag" "a" (Principal.tag q);
  Alcotest.(check bool) "bad principal rejected" true
    (try
       ignore (Principal.of_string "a.b.c.d");
       false
     with Invalid_argument _ -> true)

let test_pattern_matching () =
  let p = Principal.of_string "Schroeder.CSR.a" in
  let m pat = Principal.matches (Principal.pattern_of_string pat) p in
  Alcotest.(check bool) "exact" true (m "Schroeder.CSR.a");
  Alcotest.(check bool) "star tag" true (m "Schroeder.CSR.*");
  Alcotest.(check bool) "star project" true (m "Schroeder.*.*");
  Alcotest.(check bool) "anyone" true (m "*.*.*");
  Alcotest.(check bool) "short form pads with stars" true (m "Schroeder");
  Alcotest.(check bool) "wrong person" false (m "Saltzer.*.*");
  Alcotest.(check bool) "wrong project" false (m "Schroeder.MAC.*")

let test_pattern_specificity () =
  let s pat = Principal.pattern_specificity (Principal.pattern_of_string pat) in
  Alcotest.(check bool) "exact beats person-star" true (s "A.B.c" > s "A.B.*");
  Alcotest.(check bool) "person beats project" true (s "A.*.*" > s "*.B.c")

let test_acl_most_specific_wins () =
  let acl =
    Acl.of_strings
      [ ("*.*.*", "r"); ("Schroeder.*.*", "rw"); ("Schroeder.CSR.a", "") ]
  in
  let mode_of s = Acl.mode_for acl (Principal.of_string s) in
  Alcotest.(check string) "exact null entry denies" "null"
    (Mode.to_string (mode_of "Schroeder.CSR.a"));
  Alcotest.(check string) "person entry" "rw" (Mode.to_string (mode_of "Schroeder.MAC.a"));
  Alcotest.(check string) "catch-all" "r" (Mode.to_string (mode_of "Saltzer.CSR.a"))

let test_acl_replace_and_remove () =
  let pat = Principal.pattern_of_string "X.Y.z" in
  let acl = Acl.add Acl.empty ~pattern:pat ~mode:Mode.r in
  let acl = Acl.add acl ~pattern:pat ~mode:Mode.rw in
  Alcotest.(check int) "replaced, not duplicated" 1 (List.length (Acl.entries acl));
  let acl = Acl.remove acl ~pattern:pat in
  Alcotest.(check int) "removed" 0 (List.length (Acl.entries acl))

let test_acl_no_match_no_access () =
  Alcotest.(check bool) "empty acl denies" false
    (Acl.permits Acl.empty (Principal.of_string "A.B.c") ~requested:Mode.r)

let subject_secret =
  Policy.subject
    ~principal:(Principal.of_string "Jones.Crypto.a")
    ~clearance:secret_crypto ~ring:Ring.user ()

let acl_all_rw = Acl.of_strings [ ("*.*.*", "rw") ]

let test_policy_no_read_up () =
  match
    Policy.check ~subject:subject_secret ~object_label:ts_crypto ~acl:acl_all_rw
      ~requested:Mode.r
  with
  | Policy.Refuse [ Policy.Mandatory_read_up _ ] -> ()
  | v -> Alcotest.fail (Fmt.str "expected read-up refusal, got %a" Policy.pp_verdict v)

let test_policy_no_write_down () =
  match
    Policy.check ~subject:subject_secret ~object_label:Label.unclassified ~acl:acl_all_rw
      ~requested:Mode.w
  with
  | Policy.Refuse [ Policy.Mandatory_write_down _ ] -> ()
  | v -> Alcotest.fail (Fmt.str "expected write-down refusal, got %a" Policy.pp_verdict v)

let test_policy_write_up_allowed_by_lattice () =
  (* Blind write upward satisfies the *-property (and is refused only
     if the ACL says so). *)
  match
    Policy.check ~subject:subject_secret ~object_label:ts_crypto ~acl:acl_all_rw
      ~requested:Mode.w
  with
  | Policy.Permit -> ()
  | v -> Alcotest.fail (Fmt.str "expected permit, got %a" Policy.pp_verdict v)

let test_policy_read_write_needs_equality () =
  (* rw at a strictly dominating level fails the *-property; rw at the
     subject's own level passes. *)
  let rw = Mode.rw in
  (match
     Policy.check ~subject:subject_secret ~object_label:secret_crypto ~acl:acl_all_rw
       ~requested:rw
   with
  | Policy.Permit -> ()
  | v -> Alcotest.fail (Fmt.str "same level rw should pass: %a" Policy.pp_verdict v));
  match
    Policy.check ~subject:subject_secret ~object_label:Label.unclassified ~acl:acl_all_rw
      ~requested:rw
  with
  | Policy.Refuse _ -> ()
  | Policy.Permit -> Alcotest.fail "rw across levels violated the *-property"

let test_policy_collects_all_refusals () =
  (* secret{nato} is incomparable with the subject's secret{crypto}:
     rw against an empty ACL must fail simple security, the
     *-property, and the discretionary check all at once. *)
  match
    Policy.check ~subject:subject_secret ~object_label:secret_nato ~acl:Acl.empty
      ~requested:Mode.rw
  with
  | Policy.Refuse refusals -> Alcotest.(check int) "three refusals" 3 (List.length refusals)
  | Policy.Permit -> Alcotest.fail "should refuse"

let test_policy_hardware_refusal () =
  let sdw = Sdw.kernel_data_segment in
  let refusals =
    Policy.refusals_of_hardware (Hardware.check sdw ~ring:Ring.user ~operation:Hardware.Read)
  in
  Alcotest.(check int) "one ring refusal" 1 (List.length refusals)

(* ----- Lattice laws as properties ----- *)

let label_gen =
  QCheck.Gen.(
    let* rank = int_range 0 3 in
    let* comps = QCheck.Gen.list_size (int_range 0 3) (oneofl [ "c"; "n"; "x"; "q" ]) in
    return (Label.make (Label.level_of_rank rank) comps))

let label_arb = QCheck.make ~print:Label.to_string label_gen

let pair_arb = QCheck.pair label_arb label_arb
let triple_arb = QCheck.triple label_arb label_arb label_arb

let lub_is_upper_bound =
  QCheck.Test.make ~name:"lub is an upper bound" ~count:500 pair_arb (fun (a, b) ->
      let j = Label.lub a b in
      Label.dominates j a && Label.dominates j b)

let lub_is_least =
  QCheck.Test.make ~name:"lub is least among upper bounds" ~count:500 triple_arb
    (fun (a, b, c) ->
      let j = Label.lub a b in
      if Label.dominates c a && Label.dominates c b then Label.dominates c j else true)

let glb_is_lower_bound =
  QCheck.Test.make ~name:"glb is a lower bound" ~count:500 pair_arb (fun (a, b) ->
      let m = Label.glb a b in
      Label.dominates a m && Label.dominates b m)

let dominance_antisymmetric =
  QCheck.Test.make ~name:"dominance antisymmetric" ~count:500 pair_arb (fun (a, b) ->
      if Label.dominates a b && Label.dominates b a then Label.equal a b else true)

let dominance_transitive =
  QCheck.Test.make ~name:"dominance transitive" ~count:500 triple_arb (fun (a, b, c) ->
      if Label.dominates a b && Label.dominates b c then Label.dominates a c else true)

(* The central confinement property: a permitted (observe, modify) pair
   can never move information downward.  If a subject may read o1 and
   write o2, then label(o2) dominates label(o1). *)
let no_downward_flow =
  QCheck.Test.make ~name:"permitted read+write pairs never flow down" ~count:1000
    triple_arb (fun (subject_label, o1, o2) ->
      let can_read = Policy.mandatory_refusals ~subject_label ~object_label:o1 ~requested:Mode.r = [] in
      let can_write =
        Policy.mandatory_refusals ~subject_label ~object_label:o2 ~requested:Mode.w = []
      in
      if can_read && can_write then Label.dominates o2 o1 else true)

let suite =
  [
    ("dominance basic", `Quick, test_dominance_basic);
    ("lub/glb", `Quick, test_lub_glb);
    ("level rank roundtrip", `Quick, test_level_rank_roundtrip);
    ("principal parse", `Quick, test_principal_parse);
    ("pattern matching", `Quick, test_pattern_matching);
    ("pattern specificity", `Quick, test_pattern_specificity);
    ("acl most specific wins", `Quick, test_acl_most_specific_wins);
    ("acl replace/remove", `Quick, test_acl_replace_and_remove);
    ("acl empty denies", `Quick, test_acl_no_match_no_access);
    ("policy no read up", `Quick, test_policy_no_read_up);
    ("policy no write down", `Quick, test_policy_no_write_down);
    ("policy blind write up ok", `Quick, test_policy_write_up_allowed_by_lattice);
    ("policy rw needs equality", `Quick, test_policy_read_write_needs_equality);
    ("policy collects refusals", `Quick, test_policy_collects_all_refusals);
    ("policy hardware refusal", `Quick, test_policy_hardware_refusal);
    QCheck_alcotest.to_alcotest lub_is_upper_bound;
    QCheck_alcotest.to_alcotest lub_is_least;
    QCheck_alcotest.to_alcotest glb_is_lower_bound;
    QCheck_alcotest.to_alcotest dominance_antisymmetric;
    QCheck_alcotest.to_alcotest dominance_transitive;
    QCheck_alcotest.to_alcotest no_downward_flow;
  ]
