(* Tests for Multics_link: object segments, search rules, the linker in
   both placements with and without flaws, and the RNT. *)

open Multics_access
open Multics_fs
open Multics_link
open Multics_machine

let admin = Multics_kernel.System.initializer_subject

let user name clearance =
  Policy.subject ~principal:(Principal.of_string name) ~clearance ~ring:Ring.user ()

let open_acl = Acl.of_strings [ ("*.*.*", "rew") ]

(* A small world: >libs (public), >hidden (Bob only, holds target). *)
let setup () =
  let h = Hierarchy.create () in
  let store = Object_seg.Store.create () in
  let mkdir name acl =
    match
      Hierarchy.create_directory h ~subject:admin ~dir:Uid.root ~name ~acl
        ~label:Label.unclassified
    with
    | Ok uid -> uid
    | Error e -> Alcotest.fail (Hierarchy.error_to_string e)
  in
  let libs = mkdir "libs" open_acl in
  let hidden = mkdir "hidden" (Acl.of_strings [ ("Bob.Ops.*", "rew"); ("Initializer.*.*", "rew") ]) in
  let mkobj ~dir ~name obj =
    match
      Hierarchy.create_segment h ~subject:admin ~dir ~name ~acl:open_acl
        ~label:Label.unclassified
    with
    | Ok uid ->
        Object_seg.Store.put store ~uid obj;
        uid
    | Error e -> Alcotest.fail (Hierarchy.error_to_string e)
  in
  let target =
    Object_seg.make ~text_words:100
      ~definitions:
        [
          { Object_seg.def_name = "entry"; def_offset = 10 };
          { Object_seg.def_name = "other"; def_offset = 20 };
        ]
      ~links:[] ()
  in
  let lib_target = mkobj ~dir:libs ~name:"mathlib" target in
  let hidden_target = mkobj ~dir:hidden ~name:"classified" target in
  (h, store, libs, hidden, lib_target, hidden_target)

let caller_object store h ~dir ?(malformation = None) ~links () =
  match
    Hierarchy.create_segment h ~subject:admin ~dir ~name:"caller" ~acl:open_acl
      ~label:Label.unclassified
  with
  | Ok uid ->
      Object_seg.Store.put store ~uid
        (Object_seg.make ~malformation ~text_words:50 ~definitions:[] ~links ());
      uid
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e)

let alice = user "Alice.Dev.a" Label.unclassified

let test_snap_success () =
  let h, store, libs, _hidden, lib_target, _ = setup () in
  let caller = caller_object store h ~dir:libs ~links:[ ("mathlib", "entry") ] () in
  let linker = Linker.create ~placement:Linker.In_user_ring ~store ~hierarchy:h () in
  let rules = Search_rules.of_dirs [ ("libs", libs) ] in
  match Linker.resolve_link linker ~subject:alice ~rules ~from_uid:caller ~link_index:0 with
  | Linker.Snapped { target; offset; dirs_searched } ->
      Alcotest.(check bool) "right target" true (Uid.equal target lib_target);
      Alcotest.(check int) "definition offset" 10 offset;
      Alcotest.(check int) "one dir" 1 dirs_searched
  | other -> Alcotest.fail (Linker.outcome_to_string other)

let test_snap_idempotent () =
  let h, store, libs, _hidden, _lib, _ = setup () in
  let caller = caller_object store h ~dir:libs ~links:[ ("mathlib", "entry") ] () in
  let linker = Linker.create ~placement:Linker.In_user_ring ~store ~hierarchy:h () in
  let rules = Search_rules.of_dirs [ ("libs", libs) ] in
  (match Linker.resolve_link linker ~subject:alice ~rules ~from_uid:caller ~link_index:0 with
  | Linker.Snapped _ -> ()
  | other -> Alcotest.fail (Linker.outcome_to_string other));
  match Linker.resolve_link linker ~subject:alice ~rules ~from_uid:caller ~link_index:0 with
  | Linker.Already_snapped _ -> Alcotest.(check int) "snapped once" 1 (Linker.links_snapped linker)
  | other -> Alcotest.fail (Linker.outcome_to_string other)

let test_definition_not_found () =
  let h, store, libs, _hidden, _lib, _ = setup () in
  let caller = caller_object store h ~dir:libs ~links:[ ("mathlib", "no_such_entry") ] () in
  let linker = Linker.create ~placement:Linker.In_user_ring ~store ~hierarchy:h () in
  let rules = Search_rules.of_dirs [ ("libs", libs) ] in
  match Linker.resolve_link linker ~subject:alice ~rules ~from_uid:caller ~link_index:0 with
  | Linker.Definition_not_found _ -> ()
  | other -> Alcotest.fail (Linker.outcome_to_string other)

let test_search_order () =
  (* Two dirs both holding "mathlib": the first rule wins. *)
  let h, store, libs, _hidden, _lib, _ = setup () in
  let second =
    match
      Hierarchy.create_directory h ~subject:admin ~dir:Uid.root ~name:"libs2" ~acl:open_acl
        ~label:Label.unclassified
    with
    | Ok uid -> uid
    | Error e -> Alcotest.fail (Hierarchy.error_to_string e)
  in
  let dup =
    match
      Hierarchy.create_segment h ~subject:admin ~dir:second ~name:"mathlib" ~acl:open_acl
        ~label:Label.unclassified
    with
    | Ok uid ->
        Object_seg.Store.put store ~uid
          (Object_seg.make ~text_words:5
             ~definitions:[ { Object_seg.def_name = "entry"; def_offset = 99 } ]
             ~links:[] ());
        uid
    | Error e -> Alcotest.fail (Hierarchy.error_to_string e)
  in
  let caller = caller_object store h ~dir:libs ~links:[ ("mathlib", "entry") ] () in
  let linker = Linker.create ~placement:Linker.In_user_ring ~store ~hierarchy:h () in
  let rules = Search_rules.of_dirs [ ("libs2", second); ("libs", libs) ] in
  match Linker.resolve_link linker ~subject:alice ~rules ~from_uid:caller ~link_index:0 with
  | Linker.Snapped { target; offset; _ } ->
      Alcotest.(check bool) "first rule won" true (Uid.equal target dup);
      Alcotest.(check int) "dup offset" 99 offset
  | other -> Alcotest.fail (Linker.outcome_to_string other)

let test_malformed_kernel_flawed () =
  let h, store, libs, _hidden, _lib, _ = setup () in
  let caller =
    caller_object store h ~dir:libs
      ~malformation:(Some (Object_seg.Bad_definition_offset 9999))
      ~links:[ ("mathlib", "entry") ] ()
  in
  let linker =
    Linker.create ~flaws:[ Linker.Unvalidated_input ] ~placement:Linker.In_kernel ~store
      ~hierarchy:h ()
  in
  let rules = Search_rules.of_dirs [ ("libs", libs) ] in
  match Linker.resolve_link linker ~subject:alice ~rules ~from_uid:caller ~link_index:0 with
  | Linker.Supervisor_damaged _ ->
      Alcotest.(check int) "incident recorded" 1 (Linker.supervisor_damage_count linker)
  | other -> Alcotest.fail (Linker.outcome_to_string other)

let test_malformed_kernel_reviewed () =
  let h, store, libs, _hidden, _lib, _ = setup () in
  let caller =
    caller_object store h ~dir:libs
      ~malformation:(Some Object_seg.Cyclic_definition_chain)
      ~links:[ ("mathlib", "entry") ] ()
  in
  let linker = Linker.create ~placement:Linker.In_kernel ~store ~hierarchy:h () in
  let rules = Search_rules.of_dirs [ ("libs", libs) ] in
  match Linker.resolve_link linker ~subject:alice ~rules ~from_uid:caller ~link_index:0 with
  | Linker.Malformed_rejected _ ->
      Alcotest.(check int) "no incident" 0 (Linker.supervisor_damage_count linker)
  | other -> Alcotest.fail (Linker.outcome_to_string other)

let test_malformed_user_ring_contained () =
  let h, store, libs, _hidden, _lib, _ = setup () in
  let caller =
    caller_object store h ~dir:libs
      ~malformation:(Some (Object_seg.Oversized_link_count 4096))
      ~links:[ ("mathlib", "entry") ] ()
  in
  let linker = Linker.create ~placement:Linker.In_user_ring ~store ~hierarchy:h () in
  let rules = Search_rules.of_dirs [ ("libs", libs) ] in
  match Linker.resolve_link linker ~subject:alice ~rules ~from_uid:caller ~link_index:0 with
  | Linker.User_ring_fault _ ->
      Alcotest.(check int) "no supervisor damage" 0 (Linker.supervisor_damage_count linker)
  | other -> Alcotest.fail (Linker.outcome_to_string other)

let test_supervisor_walk_flaw () =
  (* A link into >hidden: with the user's authority the target is
     invisible; the flawed supervisor walk finds it. *)
  let h, store, libs, hidden, _lib, hidden_target = setup () in
  let caller = caller_object store h ~dir:libs ~links:[ ("classified", "entry") ] () in
  let rules = Search_rules.of_dirs [ ("hidden", hidden) ] in
  let honest = Linker.create ~placement:Linker.In_kernel ~store ~hierarchy:h () in
  (match Linker.resolve_link honest ~subject:alice ~rules ~from_uid:caller ~link_index:0 with
  | Linker.Segment_not_found _ -> ()
  | other -> Alcotest.fail ("honest: " ^ Linker.outcome_to_string other));
  let flawed =
    Linker.create ~flaws:[ Linker.Supervisor_authority_walk ] ~placement:Linker.In_kernel
      ~store ~hierarchy:h ()
  in
  match Linker.resolve_link flawed ~subject:alice ~rules ~from_uid:caller ~link_index:0 with
  | Linker.Snapped { target; _ } ->
      Alcotest.(check bool) "reached hidden target" true (Uid.equal target hidden_target)
  | other -> Alcotest.fail ("flawed: " ^ Linker.outcome_to_string other)

let test_resolve_all () =
  let h, store, libs, _hidden, _lib, _ = setup () in
  let caller =
    caller_object store h ~dir:libs
      ~links:[ ("mathlib", "entry"); ("mathlib", "other"); ("nowhere", "entry") ]
      ()
  in
  let linker = Linker.create ~placement:Linker.In_user_ring ~store ~hierarchy:h () in
  let rules = Search_rules.of_dirs [ ("libs", libs) ] in
  let outcomes = Linker.resolve_all linker ~subject:alice ~rules ~from_uid:caller in
  Alcotest.(check int) "three links" 3 (List.length outcomes);
  match outcomes with
  | [ Linker.Snapped { offset = 10; _ }; Linker.Snapped { offset = 20; _ }; Linker.Segment_not_found _ ] -> ()
  | _ -> Alcotest.fail "unexpected outcome sequence"

let test_rnt () =
  let rnt = Rnt.create ~placement:Rnt.In_user_ring in
  (match Rnt.bind rnt ~name:"mathlib" ~segno:12 with Ok () -> () | Error e -> Alcotest.fail (Rnt.error_to_string e));
  (match Rnt.bind rnt ~name:"mathlib" ~segno:13 with
  | Error (Rnt.Name_already_bound _) -> ()
  | Ok () | Error _ -> Alcotest.fail "duplicate bind accepted");
  (match Rnt.lookup rnt ~name:"mathlib" with
  | Ok 12 -> ()
  | Ok n -> Alcotest.fail (Printf.sprintf "wrong segno %d" n)
  | Error e -> Alcotest.fail (Rnt.error_to_string e));
  Alcotest.(check (list string)) "names for segno" [ "mathlib" ] (Rnt.names_for_segno rnt ~segno:12);
  (match Rnt.unbind rnt ~name:"mathlib" with Ok () -> () | Error e -> Alcotest.fail (Rnt.error_to_string e));
  match Rnt.lookup rnt ~name:"mathlib" with
  | Error (Rnt.Name_not_bound _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "unbound name resolved"

let test_rnt_protected_words () =
  let kernel_rnt = Rnt.create ~placement:Rnt.In_kernel in
  let user_rnt = Rnt.create ~placement:Rnt.In_user_ring in
  ignore (Rnt.bind kernel_rnt ~name:"a" ~segno:1);
  ignore (Rnt.bind user_rnt ~name:"a" ~segno:1);
  Alcotest.(check bool) "kernel RNT counts" true (Rnt.protected_words kernel_rnt > 0);
  Alcotest.(check int) "user RNT free" 0 (Rnt.protected_words user_rnt)

let suite =
  [
    ("snap success", `Quick, test_snap_success);
    ("snap idempotent", `Quick, test_snap_idempotent);
    ("definition not found", `Quick, test_definition_not_found);
    ("search order", `Quick, test_search_order);
    ("malformed + flawed kernel", `Quick, test_malformed_kernel_flawed);
    ("malformed + reviewed kernel", `Quick, test_malformed_kernel_reviewed);
    ("malformed + user ring contained", `Quick, test_malformed_user_ring_contained);
    ("supervisor walk flaw", `Quick, test_supervisor_walk_flaw);
    ("resolve all", `Quick, test_resolve_all);
    ("rnt", `Quick, test_rnt);
    ("rnt protected words", `Quick, test_rnt_protected_words);
  ]
