(* Tests for Multics_io: the circular buffer's lapping behaviour, the
   infinite buffer's growth/trim, and the network workload driver. *)

open Multics_io

let test_circular_fifo () =
  let b = Circular_buffer.create ~capacity:4 in
  Circular_buffer.write b 1;
  Circular_buffer.write b 2;
  Circular_buffer.write b 3;
  Alcotest.(check (option int)) "first" (Some 1) (Circular_buffer.read b);
  Alcotest.(check (option int)) "second" (Some 2) (Circular_buffer.read b);
  Circular_buffer.write b 4;
  Alcotest.(check (option int)) "third" (Some 3) (Circular_buffer.read b);
  Alcotest.(check (option int)) "fourth" (Some 4) (Circular_buffer.read b);
  Alcotest.(check (option int)) "empty" None (Circular_buffer.read b);
  Alcotest.(check int) "nothing lost" 0 (Circular_buffer.overwritten b)

let test_circular_lapping () =
  let b = Circular_buffer.create ~capacity:3 in
  for i = 1 to 5 do
    Circular_buffer.write b i
  done;
  (* Messages 1 and 2 were destroyed by the writer lapping. *)
  Alcotest.(check int) "two overwritten" 2 (Circular_buffer.overwritten b);
  Alcotest.(check (option int)) "oldest surviving" (Some 3) (Circular_buffer.read b);
  Alcotest.(check (option int)) "next" (Some 4) (Circular_buffer.read b);
  Alcotest.(check (option int)) "last" (Some 5) (Circular_buffer.read b);
  Alcotest.(check (option int)) "drained" None (Circular_buffer.read b)

let test_circular_occupancy () =
  let b = Circular_buffer.create ~capacity:3 in
  Alcotest.(check int) "empty" 0 (Circular_buffer.occupancy b);
  Circular_buffer.write b 1;
  Circular_buffer.write b 2;
  Alcotest.(check int) "two" 2 (Circular_buffer.occupancy b);
  for i = 3 to 10 do
    Circular_buffer.write b i
  done;
  Alcotest.(check int) "capped at capacity" 3 (Circular_buffer.occupancy b)

let test_infinite_never_loses () =
  let b = Infinite_buffer.create ~messages_per_page:4 () in
  for i = 1 to 100 do
    Infinite_buffer.write b i
  done;
  let rec drain acc =
    match Infinite_buffer.read b with None -> List.rev acc | Some m -> drain (m :: acc)
  in
  Alcotest.(check (list int)) "all messages in order" (List.init 100 (fun i -> i + 1)) (drain [])

let test_infinite_page_lifecycle () =
  let b = Infinite_buffer.create ~messages_per_page:4 () in
  for i = 1 to 16 do
    Infinite_buffer.write b i
  done;
  Alcotest.(check int) "four pages demanded" 4 (Infinite_buffer.pages_demanded b);
  Alcotest.(check int) "four resident" 4 (Infinite_buffer.resident_pages b);
  for _ = 1 to 8 do
    ignore (Infinite_buffer.read b)
  done;
  Alcotest.(check int) "two pages returned" 2 (Infinite_buffer.pages_returned b);
  Alcotest.(check int) "two resident" 2 (Infinite_buffer.resident_pages b);
  Alcotest.(check int) "peak recorded" 4 (Infinite_buffer.peak_resident_pages b)

let test_infinite_interleaved () =
  let b = Infinite_buffer.create ~messages_per_page:2 () in
  Infinite_buffer.write b 1;
  Alcotest.(check (option int)) "read 1" (Some 1) (Infinite_buffer.read b);
  Alcotest.(check (option int)) "empty" None (Infinite_buffer.read b);
  Infinite_buffer.write b 2;
  Infinite_buffer.write b 3;
  Alcotest.(check (option int)) "read 2" (Some 2) (Infinite_buffer.read b);
  Alcotest.(check (option int)) "read 3" (Some 3) (Infinite_buffer.read b)

let test_network_circular_loses_under_burst () =
  let result = Network.run ~seed:42 (Network.Circular (Circular_buffer.create ~capacity:8)) in
  Alcotest.(check bool) "offered > 0" true (result.Network.offered > 0);
  Alcotest.(check bool) "messages lost" true (result.Network.lost > 0);
  Alcotest.(check int) "delivered + lost = offered" result.Network.offered
    (result.Network.delivered + result.Network.lost)

let test_network_infinite_loses_nothing () =
  let result = Network.run ~seed:42 (Network.Infinite (Infinite_buffer.create ())) in
  Alcotest.(check int) "no loss" 0 result.Network.lost;
  Alcotest.(check int) "all delivered" result.Network.offered result.Network.delivered

let test_network_deterministic () =
  let run () = Network.run ~seed:7 (Network.Circular (Circular_buffer.create ~capacity:8)) in
  let a = run () in
  let b = run () in
  Alcotest.(check int) "same offered" a.Network.offered b.Network.offered;
  Alcotest.(check int) "same lost" a.Network.lost b.Network.lost

let test_device_catalog () =
  Alcotest.(check int) "five legacy devices" 5 (List.length Device.all_legacy);
  Alcotest.(check bool) "network not legacy" true
    (not (List.exists (Device.equal Device.Network_attachment) Device.all_legacy))

(* Property: for any interleaving of writes and reads, the circular
   buffer's accounting balances: written = read + overwritten + still
   buffered. *)
let circular_accounting_prop =
  let gen = QCheck.Gen.(pair (int_range 1 8) (list_size (int_range 1 200) bool)) in
  QCheck.Test.make ~name:"circular buffer accounting balances" ~count:200 (QCheck.make gen)
    (fun (capacity, ops) ->
      let b = Circular_buffer.create ~capacity in
      let n = ref 0 in
      List.iter
        (fun is_write ->
          if is_write then begin
            incr n;
            Circular_buffer.write b !n
          end
          else ignore (Circular_buffer.read b))
        ops;
      Circular_buffer.written b
      = Circular_buffer.messages_read b + Circular_buffer.overwritten b
        + Circular_buffer.occupancy b)

(* Property: the infinite buffer delivers exactly the written sequence,
   for any page size. *)
let infinite_order_prop =
  let gen = QCheck.Gen.(pair (int_range 1 7) (int_range 0 150)) in
  QCheck.Test.make ~name:"infinite buffer preserves sequence" ~count:200 (QCheck.make gen)
    (fun (page_size, n) ->
      let b = Infinite_buffer.create ~messages_per_page:page_size () in
      for i = 1 to n do
        Infinite_buffer.write b i
      done;
      let rec drain acc =
        match Infinite_buffer.read b with None -> List.rev acc | Some m -> drain (m :: acc)
      in
      drain [] = List.init n (fun i -> i + 1))

let suite =
  [
    ("circular fifo", `Quick, test_circular_fifo);
    ("circular lapping", `Quick, test_circular_lapping);
    ("circular occupancy", `Quick, test_circular_occupancy);
    ("infinite never loses", `Quick, test_infinite_never_loses);
    ("infinite page lifecycle", `Quick, test_infinite_page_lifecycle);
    ("infinite interleaved", `Quick, test_infinite_interleaved);
    ("network circular loses", `Quick, test_network_circular_loses_under_burst);
    ("network infinite keeps all", `Quick, test_network_infinite_loses_nothing);
    ("network deterministic", `Quick, test_network_deterministic);
    ("device catalog", `Quick, test_device_catalog);
    QCheck_alcotest.to_alcotest circular_accounting_prop;
    QCheck_alcotest.to_alcotest infinite_order_prop;
  ]
