(* Cross-cutting property tests: each checks an implementation against
   an independent model or invariant under randomized inputs. *)

open Multics_access
open Multics_machine

(* ----- Event queue vs a sorted-list model ----- *)

let event_queue_matches_model =
  let gen = QCheck.Gen.(list_size (int_range 0 120) (pair (int_range 0 50) small_nat)) in
  QCheck.Test.make ~name:"event queue = stable sort by time" ~count:300 (QCheck.make gen)
    (fun events ->
      let q = Multics_proc.Event_queue.create () in
      List.iter (fun (time, payload) -> Multics_proc.Event_queue.push q ~time payload) events;
      let rec drain acc =
        match Multics_proc.Event_queue.pop q with
        | None -> List.rev acc
        | Some (time, payload) -> drain ((time, payload) :: acc)
      in
      (* Stable sort on time preserves insertion order of ties — the
         queue's determinism guarantee. *)
      let model =
        List.stable_sort (fun (t1, _) (t2, _) -> Int.compare t1 t2) events
      in
      drain [] = model)

(* ----- Statistics ----- *)

let percentiles_ordered =
  let gen = QCheck.Gen.(list_size (int_range 1 60) (float_bound_inclusive 1000.0)) in
  QCheck.Test.make ~name:"percentiles are ordered and bounded" ~count:300 (QCheck.make gen)
    (fun samples ->
      let s = Multics_util.Stats.summarize samples in
      let open Multics_util.Stats in
      s.min <= s.p50 && s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max
      && s.min <= s.mean && s.mean <= s.max)

let mean_matches_model =
  let gen = QCheck.Gen.(list_size (int_range 1 40) (float_bound_inclusive 100.0)) in
  QCheck.Test.make ~name:"mean matches direct computation" ~count:300 (QCheck.make gen)
    (fun samples ->
      let expected = List.fold_left ( +. ) 0.0 samples /. float_of_int (List.length samples) in
      abs_float (Multics_util.Stats.mean samples -. expected) < 1e-6)

(* ----- Table rendering ----- *)

let table_rows_aligned =
  let cell = QCheck.Gen.(oneofl [ "a"; "bb"; "ccc"; ""; "multi word"; "1234567" ]) in
  let gen = QCheck.Gen.(list_size (int_range 1 8) (pair cell cell)) in
  QCheck.Test.make ~name:"rendered table lines align" ~count:200 (QCheck.make gen)
    (fun rows ->
      let t =
        Multics_util.Table.create ~title:"t"
          ~columns:[ ("x", Multics_util.Table.Left); ("y", Multics_util.Table.Right) ]
      in
      List.iter (fun (a, b) -> Multics_util.Table.add_row t [ a; b ]) rows;
      let lines =
        Multics_util.Table.render t |> String.split_on_char '\n'
        |> List.filter (fun l -> String.length l > 0 && l.[0] = '|')
      in
      match lines with
      | [] -> false
      | first :: rest -> List.for_all (fun l -> String.length l = String.length first) rest)

(* ----- ACL evaluation vs a brute-force model ----- *)

let acl_matches_brute_force =
  let component = QCheck.Gen.oneofl [ "A"; "B"; "*" ] in
  let mode = QCheck.Gen.oneofl [ "r"; "rw"; "re"; "" ] in
  let entry =
    QCheck.Gen.(
      let* p = component and* j = component and* t = oneofl [ "a"; "*" ] and* m = mode in
      return (Printf.sprintf "%s.%s.%s" p j t, m))
  in
  let gen =
    QCheck.Gen.(
      let* entries = list_size (int_range 0 5) entry in
      let* person = oneofl [ "A"; "B" ] and* project = oneofl [ "A"; "B" ] in
      return (entries, person, project))
  in
  QCheck.Test.make ~name:"ACL decision = brute-force most-specific" ~count:500
    (QCheck.make gen) (fun (entries, person, project) ->
      let acl = Acl.of_strings entries in
      let principal = Principal.of_string (person ^ "." ^ project ^ ".a") in
      (* Model: among matching entries keep highest specificity; ties
         broken by pattern text; later duplicates replace earlier. *)
      let dedup =
        List.fold_left
          (fun acc (p, m) -> (p, m) :: List.filter (fun (q, _) -> q <> p) acc)
          [] entries
      in
      let matching =
        List.filter (fun (p, _) -> Principal.matches (Principal.pattern_of_string p) principal) dedup
      in
      let best =
        List.sort
          (fun (a, _) (b, _) ->
            let sa = Principal.pattern_specificity (Principal.pattern_of_string a) in
            let sb = Principal.pattern_specificity (Principal.pattern_of_string b) in
            match Int.compare sb sa with 0 -> String.compare a b | c -> c)
          matching
      in
      let expected = match best with [] -> Mode.none | (_, m) :: _ -> Mode.of_string m in
      Mode.equal (Acl.mode_for acl principal) expected)

(* ----- Hierarchy under random operation storms ----- *)

let hierarchy_quota_invariant =
  let gen = QCheck.Gen.(list_size (int_range 1 80) (pair (int_range 0 6) (int_range 0 9))) in
  QCheck.Test.make ~name:"quota accounting survives random storms" ~count:150
    (QCheck.make gen) (fun ops ->
      let open Multics_fs in
      let h = Hierarchy.create () in
      let admin = Multics_kernel.System.initializer_subject in
      let acl = Acl.of_strings [ ("*.*.*", "rew") ] in
      let dir =
        match
          Hierarchy.create_directory h ~subject:admin ~dir:Uid.root ~name:"arena" ~acl
            ~label:Label.unclassified
        with
        | Ok uid -> uid
        | Error _ -> Uid.root
      in
      ignore (Hierarchy.set_quota h ~subject:admin ~uid:dir ~quota:(Some 12));
      let wpp = Hierarchy.words_per_page h in
      let subject =
        Policy.subject
          ~principal:(Principal.of_string "User.Proj.a")
          ~clearance:Label.unclassified ~ring:Ring.user ()
      in
      List.iter
        (fun (op, arg) ->
          let name = Printf.sprintf "s%d" (arg mod 4) in
          match op with
          | 0 | 1 ->
              ignore
                (Hierarchy.create_segment h ~subject ~dir ~name ~acl ~label:Label.unclassified)
          | 2 | 3 -> (
              match Hierarchy.lookup h ~subject ~dir ~name with
              | Ok uid ->
                  ignore (Hierarchy.write_word h ~subject ~uid ~offset:(arg * wpp) ~value:1)
              | Error _ -> ())
          | 4 -> ignore (Hierarchy.delete_entry h ~subject ~dir ~name)
          | 5 -> (
              match Hierarchy.lookup h ~subject ~dir ~name with
              | Ok uid -> ignore (Hierarchy.write_word h ~subject ~uid ~offset:0 ~value:2)
              | Error _ -> ())
          | _ -> ())
        ops;
      Hierarchy.check_quota_invariant h)

(* ----- KST under random make-known / terminate ----- *)

let kst_model =
  let gen = QCheck.Gen.(list_size (int_range 1 100) (pair bool (int_range 0 9))) in
  QCheck.Test.make ~name:"KST = model map under random ops" ~count:300 (QCheck.make gen)
    (fun ops ->
      let open Multics_fs in
      let kst = Kst.create ~variant:Kst.Split () in
      let gen_uids = Uid.generator () in
      let uids = Array.init 10 (fun _ -> Uid.fresh gen_uids) in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (make, i) ->
          let uid = uids.(i) in
          if make then begin
            let segno, already = Kst.make_known kst ~uid in
            let expected_already = Hashtbl.mem model (Uid.to_int uid) in
            if not already then Hashtbl.replace model (Uid.to_int uid) segno;
            already = expected_already
            && (match Hashtbl.find_opt model (Uid.to_int uid) with
               | Some s -> s = segno
               | None -> false)
          end
          else begin
            match Hashtbl.find_opt model (Uid.to_int uid) with
            | Some segno ->
                Hashtbl.remove model (Uid.to_int uid);
                Kst.terminate kst segno = Ok ()
            | None -> Kst.segno_of_uid kst ~uid = None
          end)
        ops
      && Kst.entry_count kst = Hashtbl.length model)

(* ----- Programs from a safe generator never escape ----- *)

let program_interpreter_total =
  let open Multics_kernel in
  let step_gen =
    QCheck.Gen.(
      oneof
        [
          return (Program.Compute 10);
          map (fun o -> Program.Read_word { seg = "d"; offset = o mod 64; slot = "v" }) small_nat;
          map
            (fun o -> Program.Write_word { seg = "d"; offset = o mod 64; value = Program.Const 1 })
            small_nat;
          return (Program.Lookup_name { name = "maybe"; slot = "x" });
          return (Program.Resolve { path = ">udd>Dev>Alice"; slot = "home" });
          return Program.Exit_subsystem;
        ])
  in
  let gen = QCheck.Gen.(list_size (int_range 0 25) step_gen) in
  QCheck.Test.make ~name:"program interpreter is total" ~count:100 (QCheck.make gen)
    (fun steps ->
      let system = System.create Config.kernel_6180 in
      ignore
        (System.add_account system ~person:"Alice" ~project:"Dev" ~password:"pw"
           ~clearance:Label.unclassified);
      match System.login system ~person:"Alice" ~project:"Dev" ~password:"pw" with
      | Error _ -> false
      | Ok handle ->
          let program =
            Program.make ~name:"fuzz"
              (Program.Create_segment
                 {
                   path = ">udd>Dev>Alice>d";
                   acl = Acl.of_strings [ ("Alice.Dev.*", "rw") ];
                   label = Label.unclassified;
                   slot = "d";
                 }
              :: steps)
          in
          let outcome = Program.run system ~handle program in
          (* Totality: the interpreter returns an outcome; a failed
             step means everything after it was skipped. *)
          outcome.Program.steps_run <= List.length steps + 1)

(* ----- Sim cycle accounting ----- *)

let sim_cycles_conserved =
  let gen = QCheck.Gen.(list_size (int_range 1 8) (int_range 1 2_000)) in
  QCheck.Test.make ~name:"per-process cycles equal requested compute" ~count:100
    (QCheck.make gen) (fun workloads ->
      let sim =
        Multics_proc.Sim.create ~cost:Multics_machine.Cost.h6180 ~virtual_processors:3
      in
      let pids =
        List.mapi
          (fun i work ->
            ( Multics_proc.Sim.spawn sim
                ~name:(Printf.sprintf "w%d" i)
                (fun _ -> Multics_proc.Sim.compute work),
              work ))
          workloads
      in
      Multics_proc.Sim.run sim;
      List.for_all (fun (pid, work) -> Multics_proc.Sim.cycles_of sim pid = work) pids)

let suite =
  [
    QCheck_alcotest.to_alcotest event_queue_matches_model;
    QCheck_alcotest.to_alcotest percentiles_ordered;
    QCheck_alcotest.to_alcotest mean_matches_model;
    QCheck_alcotest.to_alcotest table_rows_aligned;
    QCheck_alcotest.to_alcotest acl_matches_brute_force;
    QCheck_alcotest.to_alcotest hierarchy_quota_invariant;
    QCheck_alcotest.to_alcotest kst_model;
    QCheck_alcotest.to_alcotest program_interpreter_total;
    QCheck_alcotest.to_alcotest sim_cycles_conserved;
  ]
