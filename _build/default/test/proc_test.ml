(* Tests for Multics_proc: the event queue, the two-layer scheduler,
   IPC channels, dedicated virtual processors, and perturbation. *)

open Multics_proc

let make_sim ?(vps = 4) () = Sim.create ~cost:Multics_machine.Cost.h6180 ~virtual_processors:vps

let test_event_queue_order () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:30 "c";
  Event_queue.push q ~time:10 "a";
  Event_queue.push q ~time:20 "b";
  Event_queue.push q ~time:10 "a2";
  let drain () =
    let rec loop acc =
      match Event_queue.pop q with None -> List.rev acc | Some (_, x) -> loop (x :: acc)
    in
    loop []
  in
  Alcotest.(check (list string)) "time order, ties FIFO" [ "a"; "a2"; "b"; "c" ] (drain ())

let test_event_queue_empty () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Alcotest.(check (option int)) "no peek" None (Event_queue.peek_time q)

let test_single_process_runs () =
  let sim = make_sim () in
  let done_flag = ref false in
  let _pid =
    Sim.spawn sim ~name:"worker" (fun _ ->
        Sim.compute 100;
        done_flag := true)
  in
  Sim.run sim;
  Alcotest.(check bool) "ran to completion" true !done_flag;
  Alcotest.(check bool) "clock advanced" true (Sim.now sim >= 100)

let test_compute_accumulates_cycles () =
  let sim = make_sim () in
  let pid =
    Sim.spawn sim ~name:"worker" (fun _ ->
        Sim.compute 50;
        Sim.compute 70)
  in
  Sim.run sim;
  Alcotest.(check int) "cycles tracked" 120 (Sim.cycles_of sim pid)

let test_block_wakeup () =
  let sim = make_sim () in
  let chan = Sim.new_channel sim ~name:"data" in
  let got = ref (-1) in
  let _consumer =
    Sim.spawn sim ~name:"consumer" (fun _ ->
        Sim.block chan;
        got := Sim.now sim)
  in
  let _producer =
    Sim.spawn sim ~name:"producer" (fun _ ->
        Sim.compute 500;
        Sim.wakeup sim chan)
  in
  Sim.run sim;
  Alcotest.(check bool) "woken after producer computed" true (!got >= 500)

let test_counted_wakeups () =
  (* A wakeup sent before anyone blocks must satisfy the next block. *)
  let sim = make_sim () in
  let chan = Sim.new_channel sim ~name:"pending" in
  Sim.wakeup sim chan;
  Alcotest.(check int) "recorded pending" 1 (Sim.pending_wakeups chan);
  let passed = ref false in
  let _p =
    Sim.spawn sim ~name:"late-blocker" (fun _ ->
        Sim.block chan;
        passed := true)
  in
  Sim.run sim;
  Alcotest.(check bool) "block returned at once" true !passed;
  Alcotest.(check int) "pending consumed" 0 (Sim.pending_wakeups chan)

let test_fifo_wakeup_order () =
  let sim = make_sim ~vps:4 () in
  let chan = Sim.new_channel sim ~name:"queue" in
  let order = ref [] in
  let waiter name =
    ignore
      (Sim.spawn sim ~name (fun _ ->
           Sim.block chan;
           order := name :: !order))
  in
  waiter "first";
  waiter "second";
  waiter "third";
  Sim.at sim ~delay:10 (fun () -> Sim.wakeup sim chan);
  Sim.at sim ~delay:20 (fun () -> Sim.wakeup sim chan);
  Sim.at sim ~delay:30 (fun () -> Sim.wakeup sim chan);
  Sim.run sim;
  Alcotest.(check (list string)) "FIFO" [ "first"; "second"; "third" ] (List.rev !order)

let test_broadcast () =
  let sim = make_sim ~vps:4 () in
  let chan = Sim.new_channel sim ~name:"all" in
  let woken = ref 0 in
  for i = 1 to 3 do
    ignore
      (Sim.spawn sim
         ~name:(Printf.sprintf "w%d" i)
         (fun _ ->
           Sim.block chan;
           incr woken))
  done;
  (* Fire well after every waiter has been dispatched and blocked
     (dispatch itself costs a process switch). *)
  Sim.at sim ~delay:5_000 (fun () -> Sim.broadcast sim chan);
  Sim.run sim;
  Alcotest.(check int) "all woken" 3 !woken;
  Alcotest.(check int) "broadcast leaves no pending" 0 (Sim.pending_wakeups chan)

let test_vp_limit_serializes () =
  (* With one shared VP, two compute-bound processes cannot overlap:
     total elapsed time is at least the sum of their compute times. *)
  let sim = make_sim ~vps:1 () in
  ignore (Sim.spawn sim ~name:"a" (fun _ -> Sim.compute 1000));
  ignore (Sim.spawn sim ~name:"b" (fun _ -> Sim.compute 1000));
  Sim.run sim;
  Alcotest.(check bool) "serialized" true (Sim.now sim >= 2000)

let test_vps_allow_overlap () =
  let sim = make_sim ~vps:2 () in
  ignore (Sim.spawn sim ~name:"a" (fun _ -> Sim.compute 1000));
  ignore (Sim.spawn sim ~name:"b" (fun _ -> Sim.compute 1000));
  Sim.run sim;
  let switch = (Sim.cost_model sim).Multics_machine.Cost.process_switch in
  Alcotest.(check bool) "overlapped" true (Sim.now sim < 2000 + (2 * switch))

let test_dedicated_vp_reserved () =
  (* A dedicated kernel process must be schedulable even when ordinary
     processes saturate the shared VP pool. *)
  let sim = make_sim ~vps:2 () in
  let chan = Sim.new_channel sim ~name:"kick" in
  let served = ref 0 in
  ignore
    (Sim.spawn sim ~dedicated:true ~ring:Multics_machine.Ring.kernel ~name:"core-freer"
       (fun _ ->
         for _ = 1 to 3 do
           Sim.block chan;
           incr served;
           Sim.compute 10
         done));
  (* One shared VP remains; occupy it with a long computation. *)
  ignore (Sim.spawn sim ~name:"hog" (fun _ -> Sim.compute 100_000));
  Sim.at sim ~delay:100 (fun () -> Sim.wakeup sim chan);
  Sim.at sim ~delay:200 (fun () -> Sim.wakeup sim chan);
  Sim.at sim ~delay:300 (fun () -> Sim.wakeup sim chan);
  Sim.run sim;
  Alcotest.(check int) "kernel process served while hog ran" 3 !served

let test_spawn_dedicated_exhaustion () =
  let sim = make_sim ~vps:1 () in
  ignore (Sim.spawn sim ~dedicated:true ~name:"d1" (fun _ -> ()));
  Alcotest.(check bool) "second dedication fails" true
    (try
       ignore (Sim.spawn sim ~dedicated:true ~name:"d2" (fun _ -> ()));
       false
     with Invalid_argument _ -> true)

let test_exit_channel () =
  let sim = make_sim () in
  let observed = ref false in
  let worker = Sim.spawn sim ~name:"short" (fun _ -> Sim.compute 10) in
  ignore
    (Sim.spawn sim ~name:"watcher" (fun _ ->
         Sim.block (Sim.exit_channel sim worker);
         observed := true));
  Sim.run sim;
  Alcotest.(check bool) "exit observed" true !observed;
  Alcotest.(check bool) "terminated" true (Sim.state_of sim worker = Sim.Terminated)

let test_process_fault_contained () =
  let sim = make_sim () in
  let bad = Sim.spawn sim ~name:"crasher" (fun _ -> failwith "boom") in
  let ok = Sim.spawn sim ~name:"survivor" (fun _ -> Sim.compute 10) in
  Sim.run sim;
  Alcotest.(check bool) "failure recorded" true (Sim.failure_of sim bad <> None);
  Alcotest.(check bool) "other process unaffected" true (Sim.failure_of sim ok = None)

let test_perturbation () =
  let sim = make_sim () in
  let pid =
    Sim.spawn sim ~name:"victim" (fun _ ->
        Sim.compute 100;
        Sim.compute 100)
  in
  (* Inject stolen cycles while the victim is mid-computation. *)
  Sim.at sim ~delay:50 (fun () -> Sim.perturb sim pid 500);
  Sim.run sim;
  Alcotest.(check int) "perturbation counted" 1 (Sim.perturbations_of sim pid);
  Alcotest.(check int) "stolen cycles charged" 700 (Sim.cycles_of sim pid);
  Alcotest.(check bool) "completion delayed" true (Sim.now sim >= 700)

let test_deadlock_detection () =
  let sim = make_sim () in
  let chan = Sim.new_channel sim ~name:"never" in
  let stuck = Sim.spawn sim ~name:"stuck" (fun _ -> Sim.block chan) in
  Sim.run sim;
  Alcotest.(check (list int)) "blocked process reported" [ stuck ] (Sim.blocked_pids sim);
  Alcotest.(check bool) "quiescent" true (Sim.quiescent sim)

let test_run_until () =
  let sim = make_sim () in
  let steps = ref 0 in
  ignore
    (Sim.spawn sim ~name:"ticker" (fun _ ->
         for _ = 1 to 10 do
           Sim.compute 100;
           incr steps
         done));
  (* The ticker is dispatched at t = process_switch (900) and completes
     a step every 100 cycles after that. *)
  Sim.run_until sim ~time:1_350;
  let mid = !steps in
  Alcotest.(check bool) "partial progress" true (mid > 0 && mid < 10);
  Alcotest.(check int) "clock at boundary" 1_350 (Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "completed" 10 !steps

let test_determinism () =
  let trace_of () =
    let sim = make_sim ~vps:2 () in
    let chan = Sim.new_channel sim ~name:"c" in
    let log = ref [] in
    ignore
      (Sim.spawn sim ~name:"a" (fun _ ->
           Sim.compute 30;
           Sim.wakeup sim chan;
           log := ("a", Sim.now sim) :: !log));
    ignore
      (Sim.spawn sim ~name:"b" (fun _ ->
           Sim.block chan;
           Sim.compute 20;
           log := ("b", Sim.now sim) :: !log));
    ignore
      (Sim.spawn sim ~name:"c" (fun _ ->
           Sim.compute 25;
           log := ("c", Sim.now sim) :: !log));
    Sim.run sim;
    List.rev !log
  in
  Alcotest.(check (list (pair string int))) "identical traces" (trace_of ()) (trace_of ())

(* Property: with k shared VPs and n identical compute-bound processes,
   the makespan never beats the work bound (n*work)/k. *)
let makespan_prop =
  let gen = QCheck.Gen.(pair (int_range 1 4) (int_range 1 12)) in
  QCheck.Test.make ~name:"makespan respects VP capacity" ~count:50 (QCheck.make gen)
    (fun (vps, n) ->
      let sim = Sim.create ~cost:Multics_machine.Cost.h6180 ~virtual_processors:vps in
      for i = 1 to n do
        ignore (Sim.spawn sim ~name:(Printf.sprintf "p%d" i) (fun _ -> Sim.compute 1000))
      done;
      Sim.run sim;
      let lower_bound = 1000 * ((n + vps - 1) / vps) in
      Sim.now sim >= lower_bound)

let suite =
  [
    ("event queue order", `Quick, test_event_queue_order);
    ("event queue empty", `Quick, test_event_queue_empty);
    ("single process", `Quick, test_single_process_runs);
    ("compute accumulates", `Quick, test_compute_accumulates_cycles);
    ("block/wakeup", `Quick, test_block_wakeup);
    ("counted wakeups", `Quick, test_counted_wakeups);
    ("fifo wakeup order", `Quick, test_fifo_wakeup_order);
    ("broadcast", `Quick, test_broadcast);
    ("one VP serializes", `Quick, test_vp_limit_serializes);
    ("two VPs overlap", `Quick, test_vps_allow_overlap);
    ("dedicated VP reserved", `Quick, test_dedicated_vp_reserved);
    ("dedicated exhaustion", `Quick, test_spawn_dedicated_exhaustion);
    ("exit channel", `Quick, test_exit_channel);
    ("process fault contained", `Quick, test_process_fault_contained);
    ("perturbation", `Quick, test_perturbation);
    ("deadlock detection", `Quick, test_deadlock_detection);
    ("run_until", `Quick, test_run_until);
    ("determinism", `Quick, test_determinism);
    QCheck_alcotest.to_alcotest makespan_prop;
  ]
