(* Coverage for the corners the main suites do not reach: SDW
   accessors, cost-model selection, label printing, audit-log querying,
   interrupt bookkeeping, boundary-model monotonicity, and the
   initialization invariants. *)

open Multics_machine

(* ----- SDW ----- *)

let test_sdw_accessors () =
  let brackets = Brackets.make ~r1:1 ~r2:3 ~r3:5 in
  let sdw = Sdw.make ~gate_bound:4 ~mode:Mode.re ~brackets () in
  Alcotest.(check bool) "mode" true (Mode.equal (Sdw.mode sdw) Mode.re);
  Alcotest.(check bool) "brackets" true (Brackets.equal (Sdw.brackets sdw) brackets);
  Alcotest.(check int) "gate bound" 4 (Sdw.gate_bound sdw);
  Alcotest.(check bool) "offset 0 is gate" true (Sdw.is_gate_offset sdw 0);
  Alcotest.(check bool) "offset 3 is gate" true (Sdw.is_gate_offset sdw 3);
  Alcotest.(check bool) "offset 4 is not" false (Sdw.is_gate_offset sdw 4);
  Alcotest.(check bool) "negative is not" false (Sdw.is_gate_offset sdw (-1));
  Alcotest.(check bool) "negative bound rejected" true
    (try
       ignore (Sdw.make ~gate_bound:(-1) ~mode:Mode.r ~brackets ());
       false
     with Invalid_argument _ -> true)

let test_sdw_presets () =
  let kernel_data = Sdw.kernel_data_segment in
  Alcotest.(check int) "kernel data: no gates" 0 (Sdw.gate_bound kernel_data);
  let user_ro = Sdw.user_data_segment ~writable:false in
  Alcotest.(check bool) "read-only user data" true
    (Mode.equal (Sdw.mode user_ro) Mode.r)

(* ----- Cost model ----- *)

let test_cost_selection () =
  Alcotest.(check string) "645 name" "H645" (Cost.processor_name Cost.H645);
  Alcotest.(check bool) "of_processor 645" true
    (Cost.of_processor Cost.H645 == Cost.h645);
  Alcotest.(check bool) "of_processor 6180" true
    (Cost.of_processor Cost.H6180 == Cost.h6180);
  Alcotest.(check bool) "disk slower than drum on both" true
    (Cost.h645.Cost.disk_transfer > Cost.h645.Cost.core_transfer
    && Cost.h6180.Cost.disk_transfer > Cost.h6180.Cost.core_transfer)

(* ----- Labels / principals printing ----- *)

let test_label_strings () =
  let open Multics_access in
  Alcotest.(check string) "bottom" "Unclassified" (Label.to_string Label.unclassified);
  Alcotest.(check string) "with compartments" "Secret{crypto,nato}"
    (Label.to_string (Label.make Label.Secret [ "nato"; "crypto" ]));
  Alcotest.(check string) "dedup" "Secret{c}" (Label.to_string (Label.make Label.Secret [ "c"; "c" ]))

let test_principal_strings () =
  let open Multics_access in
  let p = Principal.interactive ~person:"Jones" ~project:"Ops" in
  Alcotest.(check string) "interactive tag" "Jones.Ops.a" (Principal.to_string p);
  Alcotest.(check string) "daemon" "Initializer.SysDaemon.z"
    (Principal.to_string Principal.system_daemon);
  Alcotest.(check string) "pattern padding" "X.*.*"
    (Principal.pattern_to_string (Principal.pattern_of_string "X"));
  Alcotest.(check int) "compare equal" 0 (Principal.compare p p)

(* ----- Audit log ----- *)

let test_audit_queries () =
  let open Multics_kernel in
  let open Multics_access in
  let audit = Audit_log.create () in
  let subject =
    Policy.subject
      ~principal:(Principal.of_string "A.B.c")
      ~clearance:Label.unclassified ~ring:Ring.user ()
  in
  Audit_log.log audit ~subject ~operation:"read" ~target:"x" ~verdict:Audit_log.Granted;
  Audit_log.log audit ~subject ~operation:"write" ~target:"x"
    ~verdict:(Audit_log.Refused "no");
  Audit_log.log audit ~subject ~operation:"read" ~target:"y" ~verdict:Audit_log.Granted;
  Alcotest.(check int) "length" 3 (Audit_log.length audit);
  Alcotest.(check int) "grants" 2 (List.length (Audit_log.grants audit));
  Alcotest.(check int) "refusals" 1 (Audit_log.refusal_count audit);
  Alcotest.(check int) "by operation" 2
    (List.length (Audit_log.by_operation audit ~operation:"read"));
  (* Sequence numbers are stable and ordered. *)
  let seqs = List.map (fun r -> r.Audit_log.seq) (Audit_log.records audit) in
  Alcotest.(check (list int)) "sequenced" [ 0; 1; 2 ] seqs;
  Audit_log.set_enabled audit false;
  Audit_log.log audit ~subject ~operation:"read" ~target:"z" ~verdict:Audit_log.Granted;
  Alcotest.(check int) "disabled log drops" 3 (Audit_log.length audit)

(* ----- Interrupt bookkeeping ----- *)

let test_interrupt_sources_and_interceptor () =
  let open Multics_proc in
  let sim = Sim.create ~cost:Cost.h6180 ~virtual_processors:4 in
  let ic = Interrupt.create sim ~discipline:Interrupt.Handler_processes in
  Interrupt.register ic ~name:"tty" ~service_cycles:100;
  Interrupt.register ic ~name:"disk" ~service_cycles:100;
  Alcotest.(check (list string)) "sources sorted" [ "disk"; "tty" ] (Interrupt.sources ic);
  Interrupt.post ic ~delay:5 ~name:"tty";
  Interrupt.post ic ~delay:6 ~name:"disk";
  Sim.run sim;
  Alcotest.(check int) "interceptor cycles = 2 entries"
    (2 * Cost.h6180.Cost.interrupt_entry)
    (Interrupt.interceptor_cycles ic);
  Alcotest.(check bool) "unknown source rejected" true
    (try
       Interrupt.post ic ~name:"nope";
       false
     with Invalid_argument _ -> true)

(* ----- Boundary model ----- *)

let boundary_overhead_monotone =
  let gen = QCheck.Gen.(pair (int_range 0 60) (int_range 1 60)) in
  QCheck.Test.make ~name:"645 boundary overhead monotone in flurry size" ~count:200
    (QCheck.make gen) (fun (k1, dk) ->
      let open Multics_kernel in
      let o1 = Boundary.removal_overhead Cost.h645 ~inner_calls:k1 ~work:50 in
      let o2 = Boundary.removal_overhead Cost.h645 ~inner_calls:(k1 + dk) ~work:50 in
      o2 >= o1 -. 1e-9)

let test_boundary_outside_floor () =
  (* No-protection floor is never more expensive than either protected
     placement. *)
  let open Multics_kernel in
  List.iter
    (fun cost ->
      List.iter
        (fun inner_calls ->
          let outside =
            Boundary.invocation_cost cost ~placement:Boundary.Both_outside ~inner_calls ~work:40
          in
          let inside =
            Boundary.invocation_cost cost ~placement:Boundary.Both_inside ~inner_calls ~work:40
          in
          let between =
            Boundary.invocation_cost cost ~placement:Boundary.Boundary_between ~inner_calls
              ~work:40
          in
          Alcotest.(check bool) "floor" true (outside <= inside && outside <= between))
        [ 0; 1; 5; 40 ])
    [ Cost.h645; Cost.h6180 ]

(* ----- Initialization invariants ----- *)

let test_init_invariants () =
  let open Multics_kernel in
  List.iter
    (fun config ->
      let r = Init.run config in
      (* Offline statements only exist under the memory-image strategy. *)
      (match config.Config.init with
      | Config.Bootstrap -> Alcotest.(check int) "no offline work" 0 r.Init.offline_total
      | Config.Memory_image ->
          Alcotest.(check bool) "offline work exists" true (r.Init.offline_total > 0));
      Alcotest.(check bool) "totals are sums" true
        (r.Init.privileged_total
         = List.fold_left (fun acc s -> acc + s.Init.privileged_statements) 0 r.Init.steps);
      Alcotest.(check bool) "scheduler started last" true
        (match List.rev r.Init.steps with
        | last :: _ -> last.Init.step_name = "start_scheduler"
        | [] -> false))
    Config.stages

(* ----- The object store ----- *)

let test_object_store () =
  let open Multics_fs in
  let open Multics_link in
  let store = Object_seg.Store.create () in
  let gen = Uid.generator () in
  let uid = Uid.fresh gen in
  Alcotest.(check bool) "empty" true (Object_seg.Store.get store ~uid = None);
  let obj =
    Object_seg.make ~text_words:5
      ~definitions:[ { Object_seg.def_name = "e"; def_offset = 1 } ]
      ~links:[ ("a", "b") ] ()
  in
  Object_seg.Store.put store ~uid obj;
  (match Object_seg.Store.get store ~uid with
  | Some o ->
      Alcotest.(check int) "links" 1 (Object_seg.link_count o);
      Alcotest.(check int) "unsnapped" 0 (Object_seg.snapped_links o)
  | None -> Alcotest.fail "stored object lost");
  (match Object_seg.link obj 0 with
  | Some l ->
      l.Object_seg.snapped <- Some (uid, 9);
      Alcotest.(check int) "snapped count" 1 (Object_seg.snapped_links obj);
      Object_seg.unsnap_all obj;
      Alcotest.(check int) "unsnap_all" 0 (Object_seg.snapped_links obj)
  | None -> Alcotest.fail "no link 0");
  Object_seg.Store.remove store ~uid;
  Alcotest.(check bool) "removed" true (Object_seg.Store.get store ~uid = None)

let suite =
  [
    ("sdw accessors", `Quick, test_sdw_accessors);
    ("sdw presets", `Quick, test_sdw_presets);
    ("cost selection", `Quick, test_cost_selection);
    ("label strings", `Quick, test_label_strings);
    ("principal strings", `Quick, test_principal_strings);
    ("audit queries", `Quick, test_audit_queries);
    ("interrupt bookkeeping", `Quick, test_interrupt_sources_and_interceptor);
    QCheck_alcotest.to_alcotest boundary_overhead_monotone;
    ("boundary outside floor", `Quick, test_boundary_outside_floor);
    ("init invariants", `Quick, test_init_invariants);
    ("object store", `Quick, test_object_store);
  ]
