(* Unit and property tests for Multics_machine: rings, modes, brackets,
   the hardware access check, and the processor cost models. *)

open Multics_machine

let ring = Alcotest.testable Ring.pp Ring.equal

let test_ring_bounds () =
  Alcotest.(check int) "r0" 0 (Ring.to_int Ring.r0);
  Alcotest.(check int) "user" 4 (Ring.to_int Ring.user);
  Alcotest.check ring "kernel is r0" Ring.kernel Ring.r0;
  Alcotest.(check bool) "of_int rejects 8" true
    (try
       ignore (Ring.of_int 8);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "of_int rejects -1" true
    (try
       ignore (Ring.of_int (-1));
       false
     with Invalid_argument _ -> true)

let test_ring_privilege () =
  Alcotest.(check bool) "0 more privileged than 4" true
    (Ring.more_privileged Ring.kernel Ring.user);
  Alcotest.(check bool) "4 not more privileged than 0" false
    (Ring.more_privileged Ring.user Ring.kernel);
  Alcotest.(check bool) "not strictly self" false (Ring.more_privileged Ring.user Ring.user);
  Alcotest.(check bool) "at least self" true (Ring.at_least_privileged Ring.user Ring.user)

let test_mode_strings () =
  Alcotest.(check string) "rw" "rw" (Mode.to_string Mode.rw);
  Alcotest.(check string) "null" "null" (Mode.to_string Mode.none);
  Alcotest.(check bool) "roundtrip" true (Mode.equal (Mode.of_string "rew") Mode.rew);
  Alcotest.(check bool) "bad char" true
    (try
       ignore (Mode.of_string "rx");
       false
     with Invalid_argument _ -> true)

let test_mode_lattice () =
  Alcotest.(check bool) "r subset rw" true (Mode.subset Mode.r Mode.rw);
  Alcotest.(check bool) "rw not subset r" false (Mode.subset Mode.rw Mode.r);
  Alcotest.(check bool) "none subset all" true (Mode.subset Mode.none Mode.rew);
  Alcotest.(check bool) "union" true (Mode.equal (Mode.union Mode.r Mode.w) Mode.rw);
  Alcotest.(check bool) "inter" true (Mode.equal (Mode.inter Mode.rw Mode.re) Mode.r)

let test_brackets_validation () =
  Alcotest.(check bool) "r1 > r2 rejected" true
    (try
       ignore (Brackets.make ~r1:3 ~r2:2 ~r3:4);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "valid accepted" true
    (try
       ignore (Brackets.make ~r1:1 ~r2:2 ~r3:5);
       true
     with Invalid_argument _ -> false)

let test_brackets_read_write () =
  let b = Brackets.make ~r1:1 ~r2:3 ~r3:5 in
  Alcotest.(check bool) "write in r0" true (Brackets.write_ok b ~ring:Ring.r0);
  Alcotest.(check bool) "write in r1" true (Brackets.write_ok b ~ring:Ring.r1);
  Alcotest.(check bool) "no write in r2" false (Brackets.write_ok b ~ring:(Ring.of_int 2));
  Alcotest.(check bool) "read in r3" true (Brackets.read_ok b ~ring:(Ring.of_int 3));
  Alcotest.(check bool) "no read in r4" false (Brackets.read_ok b ~ring:Ring.user)

let test_brackets_transfer () =
  let b = Brackets.make ~r1:1 ~r2:3 ~r3:5 in
  (match Brackets.transfer b ~ring:(Ring.of_int 2) with
  | Brackets.Execute_in_place -> ()
  | _ -> Alcotest.fail "r2 should execute in place");
  (match Brackets.transfer b ~ring:(Ring.of_int 5) with
  | Brackets.Inward_call r -> Alcotest.(check int) "lands in r3" 3 (Ring.to_int r)
  | _ -> Alcotest.fail "r5 should be an inward call");
  (match Brackets.transfer b ~ring:Ring.r0 with
  | Brackets.Outward_call_fault -> ()
  | _ -> Alcotest.fail "r0 should fault outward");
  match Brackets.transfer b ~ring:(Ring.of_int 6) with
  | Brackets.Beyond_call_bracket -> ()
  | _ -> Alcotest.fail "r6 is beyond the call bracket"

let test_hardware_gate_call () =
  let sdw = Sdw.kernel_gate_segment ~gate_bound:3 in
  (match Hardware.check sdw ~ring:Ring.user ~operation:(Hardware.Call 2) with
  | Hardware.Granted (Hardware.Gate_entry r) ->
      Alcotest.(check int) "enters ring 0" 0 (Ring.to_int r)
  | other -> Alcotest.fail (Fmt.str "expected gate entry, got %a" Hardware.pp_decision other));
  match Hardware.check sdw ~ring:Ring.user ~operation:(Hardware.Call 3) with
  | Hardware.Denied (Hardware.Not_a_gate 3) -> ()
  | other -> Alcotest.fail (Fmt.str "expected not-a-gate, got %a" Hardware.pp_decision other)

let test_hardware_user_segment () =
  let sdw = Sdw.user_data_segment ~writable:true in
  Alcotest.(check bool) "user reads" true
    (Hardware.allowed sdw ~ring:Ring.user ~operation:Hardware.Read);
  Alcotest.(check bool) "user writes" true
    (Hardware.allowed sdw ~ring:Ring.user ~operation:Hardware.Write);
  Alcotest.(check bool) "ring 5 cannot read" false
    (Hardware.allowed sdw ~ring:(Ring.of_int 5) ~operation:Hardware.Read);
  Alcotest.(check bool) "no execute without e bit" false
    (Hardware.allowed sdw ~ring:Ring.user ~operation:Hardware.Execute)

let test_hardware_kernel_data_hidden () =
  let sdw = Sdw.kernel_data_segment in
  Alcotest.(check bool) "user cannot read kernel data" false
    (Hardware.allowed sdw ~ring:Ring.user ~operation:Hardware.Read);
  Alcotest.(check bool) "user cannot write kernel data" false
    (Hardware.allowed sdw ~ring:Ring.user ~operation:Hardware.Write);
  Alcotest.(check bool) "kernel reads its data" true
    (Hardware.allowed sdw ~ring:Ring.kernel ~operation:Hardware.Read)

let test_hardware_no_plain_jump_inward () =
  (* A plain transfer (Execute) may not cross rings even to a gate
     segment; only Call enters through the gate discipline. *)
  let sdw = Sdw.kernel_gate_segment ~gate_bound:8 in
  match Hardware.check sdw ~ring:Ring.user ~operation:Hardware.Execute with
  | Hardware.Denied _ -> ()
  | Hardware.Granted _ -> Alcotest.fail "plain jump crossed a ring boundary"

let test_cost_models () =
  Alcotest.(check bool) "645 penalty is large" true (Cost.cross_ring_penalty Cost.h645 > 50.0);
  Alcotest.(check bool) "6180 penalty is ~1" true (Cost.cross_ring_penalty Cost.h6180 < 1.5);
  Alcotest.(check int) "in-ring call same on both" Cost.h645.Cost.call_in_ring
    Cost.h6180.Cost.call_in_ring

let test_clock () =
  let c = Clock.create () in
  Alcotest.(check int) "starts at 0" 0 (Clock.now c);
  Clock.advance c 10;
  Clock.advance_to c 5;
  Alcotest.(check int) "no rewind" 10 (Clock.now c);
  Clock.advance_to c 25;
  Alcotest.(check int) "advance_to" 25 (Clock.now c);
  Alcotest.(check int) "elapsed" 15 (Clock.elapsed c ~since:10);
  Alcotest.(check bool) "negative advance rejected" true
    (try
       Clock.advance c (-1);
       false
     with Invalid_argument _ -> true)

(* Property: the bracket rule is monotone — if a ring may write, every
   more privileged ring may write too; same for read. *)
let bracket_monotone_prop =
  let gen =
    QCheck.Gen.(
      let* r1 = int_range 0 7 in
      let* r2 = int_range r1 7 in
      let* r3 = int_range r2 7 in
      let* ring = int_range 1 7 in
      return (r1, r2, r3, ring))
  in
  QCheck.Test.make ~name:"bracket checks monotone in privilege" ~count:500
    (QCheck.make gen) (fun (r1, r2, r3, ring) ->
      let b = Brackets.make ~r1 ~r2 ~r3 in
      let inner = Ring.of_int (ring - 1) in
      let outer = Ring.of_int ring in
      (not (Brackets.write_ok b ~ring:outer) || Brackets.write_ok b ~ring:inner)
      && ((not (Brackets.read_ok b ~ring:outer)) || Brackets.read_ok b ~ring:inner))

(* Property: a Call decision never grants execution in a ring less
   privileged than the caller's (calls only go inward or stay). *)
let call_never_outward_prop =
  let gen =
    QCheck.Gen.(
      let* r1 = int_range 0 7 in
      let* r2 = int_range r1 7 in
      let* r3 = int_range r2 7 in
      let* ring = int_range 0 7 in
      let* gates = int_range 0 4 in
      let* entry = int_range 0 5 in
      return (r1, r2, r3, ring, gates, entry))
  in
  QCheck.Test.make ~name:"call grants never raise the ring number" ~count:500
    (QCheck.make gen) (fun (r1, r2, r3, ring, gates, entry) ->
      let sdw =
        Sdw.make ~gate_bound:gates ~mode:Mode.re ~brackets:(Brackets.make ~r1 ~r2 ~r3) ()
      in
      match Hardware.check sdw ~ring:(Ring.of_int ring) ~operation:(Hardware.Call entry) with
      | Hardware.Granted (Hardware.Gate_entry target) -> Ring.to_int target <= ring
      | Hardware.Granted Hardware.Access_ok | Hardware.Denied _ -> true)

let suite =
  [
    ("ring bounds", `Quick, test_ring_bounds);
    ("ring privilege", `Quick, test_ring_privilege);
    ("mode strings", `Quick, test_mode_strings);
    ("mode lattice", `Quick, test_mode_lattice);
    ("brackets validation", `Quick, test_brackets_validation);
    ("brackets read/write", `Quick, test_brackets_read_write);
    ("brackets transfer", `Quick, test_brackets_transfer);
    ("hardware gate call", `Quick, test_hardware_gate_call);
    ("hardware user segment", `Quick, test_hardware_user_segment);
    ("hardware kernel data hidden", `Quick, test_hardware_kernel_data_hidden);
    ("hardware no plain jump inward", `Quick, test_hardware_no_plain_jump_inward);
    ("cost models", `Quick, test_cost_models);
    ("clock", `Quick, test_clock);
    QCheck_alcotest.to_alcotest bracket_monotone_prop;
    QCheck_alcotest.to_alcotest call_never_outward_prop;
  ]
