(* Tests for Multics_mm: block pools, placement, transfer, usage bits,
   and the conservation invariant. *)

open Multics_mm

let make_memory () = Memory.create ~cost:Multics_machine.Cost.h6180 ~core:4 ~bulk:8 ~disk:16

let page n = Page_id.make ~seg_uid:100 ~page_no:n

let test_place_and_locate () =
  let m = make_memory () in
  match Memory.place m (page 0) ~level:Level.Core with
  | Error e -> Alcotest.fail (Memory.error_to_string e)
  | Ok block ->
      Alcotest.(check string) "level" "core" (Level.name (Block.level block));
      (match Memory.location m (page 0) with
      | Some b -> Alcotest.(check bool) "location agrees" true (Block.equal b block)
      | None -> Alcotest.fail "page lost");
      (match Memory.occupant m block with
      | Some p -> Alcotest.(check bool) "occupant agrees" true (Page_id.equal p (page 0))
      | None -> Alcotest.fail "no occupant");
      Alcotest.(check int) "free count dropped" 3 (Memory.free_count m Level.Core)

let test_double_place_rejected () =
  let m = make_memory () in
  (match Memory.place m (page 1) ~level:Level.Core with Ok _ -> () | Error _ -> Alcotest.fail "place");
  match Memory.place m (page 1) ~level:Level.Bulk with
  | Error (Memory.Page_already_resident _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "double residency allowed"

let test_exhaustion () =
  let m = make_memory () in
  for i = 0 to 3 do
    match Memory.place m (page i) ~level:Level.Core with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Memory.error_to_string e)
  done;
  match Memory.place m (page 4) ~level:Level.Core with
  | Error (Memory.No_free_block Level.Core) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected exhaustion"

let test_transfer_core_to_bulk () =
  let m = make_memory () in
  (match Memory.place m (page 0) ~level:Level.Core with Ok _ -> () | Error _ -> Alcotest.fail "place");
  match Memory.transfer m (page 0) ~dest:Level.Bulk with
  | Error e -> Alcotest.fail (Memory.error_to_string e)
  | Ok (block, cost) ->
      Alcotest.(check string) "now in bulk" "bulk" (Level.name (Block.level block));
      Alcotest.(check bool) "cost charged" true (cost > 0);
      Alcotest.(check int) "core freed" 4 (Memory.free_count m Level.Core);
      Alcotest.(check int) "bulk used" 7 (Memory.free_count m Level.Bulk)

let test_transfer_same_level_free () =
  let m = make_memory () in
  (match Memory.place m (page 0) ~level:Level.Bulk with Ok _ -> () | Error _ -> Alcotest.fail "place");
  match Memory.transfer m (page 0) ~dest:Level.Bulk with
  | Ok (_, 0) -> ()
  | Ok (_, c) -> Alcotest.fail (Printf.sprintf "same-level transfer cost %d" c)
  | Error e -> Alcotest.fail (Memory.error_to_string e)

let test_transfer_nonresident () =
  let m = make_memory () in
  match Memory.transfer m (page 9) ~dest:Level.Core with
  | Error (Memory.Page_not_resident _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected not-resident"

let test_disk_transfer_costs_more () =
  let m = make_memory () in
  (match Memory.place m (page 0) ~level:Level.Core with Ok _ -> () | Error _ -> Alcotest.fail "p0");
  (match Memory.place m (page 1) ~level:Level.Bulk with Ok _ -> () | Error _ -> Alcotest.fail "p1");
  let core_bulk =
    match Memory.transfer m (page 0) ~dest:Level.Bulk with
    | Ok (_, c) -> c
    | Error e -> Alcotest.fail (Memory.error_to_string e)
  in
  let bulk_disk =
    match Memory.transfer m (page 1) ~dest:Level.Disk with
    | Ok (_, c) -> c
    | Error e -> Alcotest.fail (Memory.error_to_string e)
  in
  Alcotest.(check bool) "disk slower than drum" true (bulk_disk > core_bulk)

let test_usage_bits () =
  let m = make_memory () in
  (match Memory.place m (page 0) ~level:Level.Core with Ok _ -> () | Error _ -> Alcotest.fail "place");
  Alcotest.(check (option (pair bool bool))) "fresh" (Some (false, false))
    (Memory.frame_usage m (page 0));
  Memory.touch m (page 0);
  Alcotest.(check (option (pair bool bool))) "touched" (Some (true, false))
    (Memory.frame_usage m (page 0));
  Memory.dirty m (page 0);
  Alcotest.(check (option (pair bool bool))) "dirtied" (Some (true, true))
    (Memory.frame_usage m (page 0));
  Memory.clear_used m (page 0);
  Alcotest.(check (option (pair bool bool))) "swept keeps modified" (Some (false, true))
    (Memory.frame_usage m (page 0))

let test_usage_bits_only_core () =
  let m = make_memory () in
  (match Memory.place m (page 0) ~level:Level.Bulk with Ok _ -> () | Error _ -> Alcotest.fail "place");
  Memory.touch m (page 0);
  Alcotest.(check (option (pair bool bool))) "no bits off-core" None
    (Memory.frame_usage m (page 0))

let test_evict_page () =
  let m = make_memory () in
  (match Memory.place m (page 0) ~level:Level.Core with Ok _ -> () | Error _ -> Alcotest.fail "place");
  (match Memory.evict_page m (page 0) with Ok _ -> () | Error e -> Alcotest.fail (Memory.error_to_string e));
  Alcotest.(check int) "core free again" 4 (Memory.free_count m Level.Core);
  Alcotest.(check bool) "gone" true (Memory.location m (page 0) = None)

let test_residents () =
  let m = make_memory () in
  (match Memory.place m (page 0) ~level:Level.Core with Ok _ -> () | Error _ -> Alcotest.fail "p0");
  (match Memory.place m (page 1) ~level:Level.Core with Ok _ -> () | Error _ -> Alcotest.fail "p1");
  Alcotest.(check int) "two core residents" 2 (List.length (Memory.core_residents m))

(* Property: any sequence of random place/transfer/evict operations
   preserves conservation. *)
let conservation_prop =
  let ops_gen = QCheck.Gen.(list_size (int_range 1 120) (int_range 0 99)) in
  QCheck.Test.make ~name:"conservation under random traffic" ~count:100 (QCheck.make ops_gen)
    (fun ops ->
      let m = Memory.create ~cost:Multics_machine.Cost.h6180 ~core:3 ~bulk:5 ~disk:9 in
      let levels = [| Level.Core; Level.Bulk; Level.Disk |] in
      List.iter
        (fun op ->
          let pg = page (op mod 7) in
          let lv = levels.(op mod 3) in
          match op mod 4 with
          | 0 -> ignore (Memory.place m pg ~level:lv)
          | 1 -> ignore (Memory.transfer m pg ~dest:lv)
          | 2 -> ignore (Memory.evict_page m pg)
          | _ ->
              Memory.touch m pg;
              Memory.dirty m pg)
        ops;
      Memory.check_conservation m)

let suite =
  [
    ("place and locate", `Quick, test_place_and_locate);
    ("double place rejected", `Quick, test_double_place_rejected);
    ("exhaustion", `Quick, test_exhaustion);
    ("transfer core->bulk", `Quick, test_transfer_core_to_bulk);
    ("transfer same level free", `Quick, test_transfer_same_level_free);
    ("transfer nonresident", `Quick, test_transfer_nonresident);
    ("disk transfer costs more", `Quick, test_disk_transfer_costs_more);
    ("usage bits", `Quick, test_usage_bits);
    ("usage bits only core", `Quick, test_usage_bits_only_core);
    ("evict page", `Quick, test_evict_page);
    ("residents", `Quick, test_residents);
    QCheck_alcotest.to_alcotest conservation_prop;
  ]
