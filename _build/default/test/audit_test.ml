(* Tests for Multics_audit: the inventory's reproduction of the paper's
   numbers, the metrics deltas, the penetration corpus against baseline
   vs kernel, and the trojan scenarios. *)

open Multics_audit
open Multics_kernel

let test_inventory_baseline_shape () =
  Alcotest.(check int) "baseline gates" 180 (Inventory.total_gates Config.baseline_645);
  Alcotest.(check bool) "baseline statements ~40-60k" true
    (let s = Inventory.total_statements Config.baseline_645 in
     s > 30_000 && s < 60_000)

let test_e1_linker_fraction () =
  (* Paper: "eliminated 10% of the gate entry points". *)
  Alcotest.(check (float 0.005)) "linker = 10% of gates" 0.10 (Metrics.linker_gate_fraction ())

let test_e2_address_space_factor () =
  (* Paper: "a reduction by a factor of ten". *)
  let factor = Metrics.address_space_reduction_factor () in
  Alcotest.(check bool) "~10x" true (factor >= 9.0 && factor <= 11.0)

let test_e3_combined_third () =
  (* Paper: "approximately one third". *)
  let fraction = Metrics.combined_removal_fraction () in
  Alcotest.(check bool) "~1/3" true (fraction >= 0.30 && fraction <= 0.37)

let test_stage_monotonicity () =
  let snapshots = Metrics.stages () in
  Alcotest.(check int) "seven stages" 7 (List.length snapshots);
  let ring0 = List.map (fun s -> s.Metrics.ring0_statements) snapshots in
  let rec non_increasing = function
    | a :: b :: rest -> a >= b && non_increasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "ring-0 mass never grows" true (non_increasing ring0)

let test_kernel_much_smaller () =
  let baseline = Inventory.ring0_statements Config.baseline_645 in
  let final = Inventory.ring0_statements Config.kernel_6180 in
  Alcotest.(check bool) "kernel under half the supervisor" true
    (float_of_int final < 0.5 *. float_of_int baseline)

let test_delta_arithmetic () =
  let d = Metrics.delta ~from_config:Config.baseline_645 ~to_config:Config.kernel_6180 in
  Alcotest.(check int) "gates removed consistent"
    (Inventory.total_gates Config.baseline_645 - Inventory.total_gates Config.kernel_6180)
    d.Metrics.gates_removed

(* ----- Penetration corpus (E11) ----- *)

let find_outcome results name =
  match List.find_opt (fun (a, _) -> a.Pentest.attack_name = name) results with
  | Some (_, outcome) -> outcome
  | None -> Alcotest.fail ("no attack " ^ name)

let test_corpus_against_baseline () =
  let results = Pentest.run_corpus Config.baseline_645 in
  (* The flawed baseline falls to the linker attacks and loses input to
     buffer lapping. *)
  (match find_outcome results "malformed-object-segment" with
  | Pentest.Violated (Pentest.Denial, _) -> ()
  | o -> Alcotest.fail ("malformed: " ^ Pentest.outcome_name o));
  (match find_outcome results "linker-confused-deputy" with
  | Pentest.Violated (Pentest.Release, _) -> ()
  | o -> Alcotest.fail ("deputy: " ^ Pentest.outcome_name o));
  (match find_outcome results "input-buffer-lapping" with
  | Pentest.Violated (Pentest.Denial, _) -> ()
  | o -> Alcotest.fail ("lapping: " ^ Pentest.outcome_name o));
  let s = Pentest.summarize results in
  Alcotest.(check bool) "baseline violated several ways" true (s.Pentest.violated >= 3)

let test_corpus_against_kernel () =
  let results = Pentest.run_corpus Config.kernel_6180 in
  List.iter
    (fun (attack, outcome) ->
      if Pentest.is_violation outcome then
        Alcotest.fail
          (Printf.sprintf "kernel fell to %s: %s" attack.Pentest.attack_name
             (Pentest.outcome_detail outcome)))
    results;
  (* The malformed-object attack must be *contained* (user-ring fault),
     not merely absent. *)
  match find_outcome results "malformed-object-segment" with
  | Pentest.Contained _ -> ()
  | o -> Alcotest.fail ("malformed vs kernel: " ^ Pentest.outcome_name o)

let test_corpus_against_reviewed_supervisor () =
  (* Review alone (flaws repaired, nothing removed): the linker attacks
     are refused in place; lapping remains because the buffer design is
     unchanged. *)
  let results = Pentest.run_corpus Config.hardware_rings in
  (match find_outcome results "malformed-object-segment" with
  | Pentest.Refused _ -> ()
  | o -> Alcotest.fail ("malformed vs reviewed: " ^ Pentest.outcome_name o));
  match find_outcome results "input-buffer-lapping" with
  | Pentest.Violated (Pentest.Denial, _) -> ()
  | o -> Alcotest.fail ("lapping vs reviewed: " ^ Pentest.outcome_name o)

let test_lattice_attacks_always_refused () =
  (* Even the flawed baseline enforces the lattice: read-up and
     write-down never succeed in any configuration. *)
  List.iter
    (fun config ->
      let results = Pentest.run_corpus config in
      List.iter
        (fun name ->
          match find_outcome results name with
          | Pentest.Refused _ -> ()
          | o ->
              Alcotest.fail
                (Printf.sprintf "%s under %s: %s" name config.Config.name (Pentest.outcome_name o)))
        [ "mandatory-read-up"; "star-property-write-down" ])
    [ Config.baseline_645; Config.kernel_6180 ]

(* ----- Trojan scenarios ----- *)

let test_trojan_scenarios () =
  let results = Trojan.run_all () in
  Alcotest.(check int) "five scenarios" 5 (List.length results);
  Alcotest.(check bool) "kernel held everywhere" true (Trojan.kernel_held results);
  let unconfined = Trojan.scenario_borrowed_unconfined () in
  Alcotest.(check bool) "unconfined trojan exfiltrated" true unconfined.Trojan.undesired;
  Alcotest.(check bool) "yet nothing unauthorized" false unconfined.Trojan.unauthorized;
  let confined = Trojan.scenario_borrowed_confined () in
  Alcotest.(check bool) "confined trojan stopped" true confined.Trojan.contained

let suite =
  [
    ("inventory baseline shape", `Quick, test_inventory_baseline_shape);
    ("E1 linker fraction", `Quick, test_e1_linker_fraction);
    ("E2 address space factor", `Quick, test_e2_address_space_factor);
    ("E3 combined third", `Quick, test_e3_combined_third);
    ("stage monotonicity", `Quick, test_stage_monotonicity);
    ("kernel much smaller", `Quick, test_kernel_much_smaller);
    ("delta arithmetic", `Quick, test_delta_arithmetic);
    ("corpus vs baseline", `Quick, test_corpus_against_baseline);
    ("corpus vs kernel", `Quick, test_corpus_against_kernel);
    ("corpus vs reviewed", `Quick, test_corpus_against_reviewed_supervisor);
    ("lattice attacks always refused", `Quick, test_lattice_attacks_always_refused);
    ("trojan scenarios", `Quick, test_trojan_scenarios);
  ]

(* ----- Systematic verification and the flaw list ----- *)

let test_verifier_all_pass () =
  let checks = Verifier.run_all () in
  Alcotest.(check int) "six checks" 6 (List.length checks);
  List.iter
    (fun (c : Verifier.check) ->
      Alcotest.(check int) (c.Verifier.check_name ^ ": no mismatches") 0 c.Verifier.mismatches;
      Alcotest.(check bool) (c.Verifier.check_name ^ ": nonempty") true (c.Verifier.cases > 100))
    checks;
  Alcotest.(check bool) "tens of thousands of cases" true (Verifier.total_cases checks > 20_000)

let test_verifier_catches_mutation () =
  (* The specifications are not vacuous: a deliberately wrong spec
     disagrees with the implementation. *)
  let wrong = ref 0 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          (* "dominance is symmetric" — false; counterexamples must
             exist in the 16-label universe. *)
          if
            Multics_access.Label.dominates a b
            && not (Multics_access.Label.dominates b a)
          then incr wrong)
        [
          Multics_access.Label.unclassified;
          Multics_access.Label.make Multics_access.Label.Secret [ "c" ];
        ])
    [
      Multics_access.Label.unclassified;
      Multics_access.Label.make Multics_access.Label.Secret [ "c" ];
    ];
  Alcotest.(check bool) "asymmetric pairs exist" true (!wrong > 0)

let test_flaw_registry_consistent () =
  Alcotest.(check bool) "all isolated" true (Flaw_registry.all_isolated ());
  Alcotest.(check bool) "every flaw demonstrated by a corpus attack" true
    (Flaw_registry.demonstrations_exist ());
  Alcotest.(check bool) "at least five entries" true (Flaw_registry.count >= 5);
  match Flaw_registry.find ~flaw_name:"linker trusts user object headers" with
  | Some e ->
      Alcotest.(check bool) "retired by removal" true
        (e.Flaw_registry.status = Flaw_registry.Retired_by_removal)
  | None -> Alcotest.fail "missing linker flaw"

let test_quota_attack_refused_everywhere () =
  (* The quota mechanism is configuration-independent. *)
  List.iter
    (fun config ->
      let results = Pentest.run_corpus config in
      match find_outcome results "storage-quota-exhaustion" with
      | Pentest.Refused _ -> ()
      | o ->
          Alcotest.fail
            (Printf.sprintf "quota under %s: %s" config.Config.name (Pentest.outcome_name o)))
    [ Config.baseline_645; Config.kernel_6180 ]

let extra_suite =
  [
    ("verifier all pass", `Quick, test_verifier_all_pass);
    ("verifier not vacuous", `Quick, test_verifier_catches_mutation);
    ("flaw registry consistent", `Quick, test_flaw_registry_consistent);
    ("quota attack refused everywhere", `Quick, test_quota_attack_refused_everywhere);
  ]

let test_violations_monotone_across_stages () =
  (* Each engineering stage leaves the attacker no better off: the
     number of successful violations never increases along the
     progression. *)
  let counts =
    List.map
      (fun config -> (Pentest.summarize (Pentest.run_corpus config)).Pentest.violated)
      Config.stages
  in
  let rec non_increasing = function
    | a :: b :: rest -> a >= b && non_increasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool)
    (Printf.sprintf "violations %s non-increasing"
       (String.concat ">" (List.map string_of_int counts)))
    true (non_increasing counts);
  Alcotest.(check int) "kernel ends clean" 0 (List.nth counts (List.length counts - 1))

let stage_suite =
  [ ("violations monotone across stages", `Slow, test_violations_monotone_across_stages) ]
