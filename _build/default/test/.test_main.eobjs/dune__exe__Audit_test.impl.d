test/audit_test.ml: Alcotest Config Flaw_registry Inventory List Metrics Multics_access Multics_audit Multics_kernel Pentest Printf String Trojan Verifier
