test/test_main.ml: Access_test Alcotest Audit_test Experiments_test Fs_test Integration_test Io_test Kernel_test Link_test Machine_test Misc_test Mm_test Proc_test Property_test Util_test Vm_test
