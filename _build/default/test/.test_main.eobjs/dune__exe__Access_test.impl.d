test/access_test.ml: Acl Alcotest Fmt Hardware Label List Mode Multics_access Multics_machine Policy Principal QCheck QCheck_alcotest Ring Sdw
