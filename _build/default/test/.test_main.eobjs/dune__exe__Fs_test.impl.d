test/fs_test.ml: Acl Alcotest Brackets Hierarchy Kst Label List Mode Multics_access Multics_fs Multics_kernel Multics_machine Policy Principal Printf QCheck QCheck_alcotest Ring String Uid
