test/proc_test.ml: Alcotest Event_queue List Multics_machine Multics_proc Printf QCheck QCheck_alcotest Sim
