test/util_test.ml: Alcotest Fqueue Fun Int List Multics_util Prng QCheck QCheck_alcotest Stats String Table
