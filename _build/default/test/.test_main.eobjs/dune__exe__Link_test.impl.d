test/link_test.ml: Acl Alcotest Hierarchy Label Linker List Multics_access Multics_fs Multics_kernel Multics_link Multics_machine Object_seg Policy Principal Printf Ring Rnt Search_rules Uid
