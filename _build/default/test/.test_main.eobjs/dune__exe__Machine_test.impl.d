test/machine_test.ml: Alcotest Brackets Clock Cost Fmt Hardware Mode Multics_machine QCheck QCheck_alcotest Ring Sdw
