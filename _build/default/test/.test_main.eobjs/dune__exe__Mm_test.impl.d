test/mm_test.ml: Alcotest Array Block Level List Memory Multics_machine Multics_mm Page_id Printf QCheck QCheck_alcotest
