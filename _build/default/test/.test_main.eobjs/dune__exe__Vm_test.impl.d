test/vm_test.ml: Alcotest Backup Block Interrupt Level List Memory Multics_machine Multics_mm Multics_proc Multics_vm Page_control Page_id Printf QCheck QCheck_alcotest Sim
