test/io_test.ml: Alcotest Circular_buffer Device Infinite_buffer List Multics_io Network QCheck QCheck_alcotest
