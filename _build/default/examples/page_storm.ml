(* Page storm: the parallel page-control machinery under load, with the
   dedicated kernel processes visible in the trace.

     dune exec examples/page_storm.exe
*)

open Multics_mm
open Multics_proc
open Multics_vm

let run ~discipline ~trace =
  let sim = Sim.create ~cost:Multics_machine.Cost.h6180 ~virtual_processors:5 in
  Sim.set_trace sim trace;
  let mem = Memory.create ~cost:Multics_machine.Cost.h6180 ~core:6 ~bulk:10 ~disk:128 in
  let pc = Page_control.create sim ~mem ~discipline in
  Page_control.start pc;
  for w = 1 to 3 do
    ignore
      (Sim.spawn sim
         ~name:(Printf.sprintf "editor%d" w)
         (fun pid ->
           (* Each "editor" cycles over a working set bigger than its
              share of core, computing between references. *)
           for sweep = 1 to 2 do
             for page_no = 0 to 5 do
               let page = Page_id.make ~seg_uid:w ~page_no in
               ignore (Page_control.reference pc ~pid ~page ~write:(sweep = 2));
               Sim.compute 15_000
             done
           done))
  done;
  Sim.run sim;
  (sim, pc)

let () =
  print_endline "Page-fault storm: 3 editors, 6 core frames, 18-page working set.";
  print_endline "\n--- Old design: sequential page control in the faulting process ---";
  let _sim_seq, pc_seq = run ~discipline:Page_control.Sequential ~trace:false in
  let s = Page_control.summarize pc_seq in
  Printf.printf "faults=%d  latency(mean=%.0f p90=%.0f)  cascaded-in-faulter=%d deep=%d\n"
    s.Page_control.fault_total s.Page_control.latency.Multics_util.Stats.mean
    s.Page_control.latency.Multics_util.Stats.p90 s.Page_control.cascaded_faults
    s.Page_control.deep_cascade_faults;

  print_endline "\n--- New design: dedicated core-freeing and bulk-freeing processes ---";
  let sim, pc = run ~discipline:Page_control.Parallel_processes ~trace:true in
  let s = Page_control.summarize pc in
  Printf.printf "faults=%d  latency(mean=%.0f p90=%.0f)  cascaded-in-faulter=%d deep=%d\n"
    s.Page_control.fault_total s.Page_control.latency.Multics_util.Stats.mean
    s.Page_control.latency.Multics_util.Stats.p90 s.Page_control.cascaded_faults
    s.Page_control.deep_cascade_faults;
  let counters = Page_control.counters pc in
  Printf.printf "evictions by kernel processes: core->bulk=%d bulk->disk=%d\n"
    (Multics_util.Stats.Counters.get counters "core_to_bulk")
    (Multics_util.Stats.Counters.get counters "bulk_to_disk");

  print_endline "\nTrace excerpt (the dedicated processes at work):";
  let interesting line =
    let contains s sub =
      let sl = String.length s and bl = String.length sub in
      let rec go i = i + bl <= sl && (String.sub s i bl = sub || go (i + 1)) in
      go 0
    in
    contains line "freer" || contains line "pc."
  in
  Sim.trace_lines sim
  |> List.filter (fun (_, line) -> interesting line)
  |> List.filteri (fun i _ -> i < 14)
  |> List.iter (fun (time, line) -> Printf.printf "  [%8d] %s\n" time line);

  print_endline "\nThe faulting editors never execute the eviction cascade themselves:";
  Printf.printf "  fault path steps: mean %.2f, max %.0f (sequential design reached %.0f)\n"
    s.Page_control.steps.Multics_util.Stats.mean s.Page_control.steps.Multics_util.Stats.max
    (Page_control.summarize pc_seq).Page_control.steps.Multics_util.Stats.max
