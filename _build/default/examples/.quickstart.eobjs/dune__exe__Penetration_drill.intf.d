examples/penetration_drill.mli:
