examples/borrowed_program.ml: List Multics_audit Printf Trojan
