examples/page_storm.mli:
