examples/timesharing.mli:
