examples/compartments.ml: Acl Api Config Label Multics_access Multics_kernel Printf Result System User_env
