examples/page_storm.ml: List Memory Multics_machine Multics_mm Multics_proc Multics_util Multics_vm Page_control Page_id Printf Sim String
