examples/timesharing.ml: Acl Config Label List Multics_access Multics_io Multics_kernel Multics_proc Printf Program Session System
