examples/penetration_drill.ml: Config List Multics_audit Multics_kernel Pentest Printf String
