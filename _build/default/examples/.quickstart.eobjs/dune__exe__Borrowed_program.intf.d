examples/borrowed_program.mli:
