examples/quickstart.mli:
