examples/compartments.mli:
