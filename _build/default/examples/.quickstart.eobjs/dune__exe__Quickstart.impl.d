examples/quickstart.ml: Acl Api Audit_log Config Fmt Gate Init Label List Multics_access Multics_kernel Printf Result System User_env
