(* Penetration drill: run the Linde-catalog attack corpus against the
   flawed 645 baseline supervisor, the reviewed supervisor, and the
   engineered security kernel.

     dune exec examples/penetration_drill.exe
*)

open Multics_audit
open Multics_kernel

let header text =
  Printf.printf "\n%s\n%s\n" text (String.make (String.length text) '-')

let drill config =
  header (Printf.sprintf "Target: %s" config.Config.name);
  let results = Pentest.run_corpus config in
  List.iter
    (fun (attack, outcome) ->
      Printf.printf "  %-36s %-34s\n" attack.Pentest.attack_name (Pentest.outcome_name outcome);
      Printf.printf "      %s\n" (Pentest.outcome_detail outcome))
    results;
  let s = Pentest.summarize results in
  Printf.printf "  => %d violated, %d refused, %d contained, %d n/a\n" s.Pentest.violated
    s.Pentest.refused s.Pentest.contained s.Pentest.not_applicable;
  s

let () =
  print_endline "Penetration drill: the same wily user against three systems.";
  print_endline "(Each attack runs against a freshly booted system with a Secret-";
  print_endline " cleared victim and an Unclassified attacker.)";
  let baseline = drill Config.baseline_645 in
  let reviewed = drill Config.hardware_rings in
  let kernel = drill Config.kernel_6180 in
  header "Verdict";
  Printf.printf
    "  The baseline fell %d ways; review repaired the known flaws (%d left);\n\
    \  the engineered kernel refused or contained everything (%d violations).\n\n"
    baseline.Pentest.violated reviewed.Pentest.violated kernel.Pentest.violated;
  if kernel.Pentest.violated = 0 then print_endline "  KERNEL HELD."
  else print_endline "  KERNEL FAILED — see above."
