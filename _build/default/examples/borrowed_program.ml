(* Borrowed program: the paper's four categories of non-kernel software
   exercised end to end — including the trojan-horse editor, once with
   the borrower's full authority and once confined to an outer ring.

     dune exec examples/borrowed_program.exe
*)

open Multics_audit

let () =
  print_endline "The four categories of non-kernel software (paper, section 'The";
  print_endline "Security Kernel'): a correct kernel does not prevent every undesired";
  print_endline "result — it guarantees undesired results are never UNAUTHORIZED.";
  let results = Trojan.run_all () in
  List.iter
    (fun (r : Trojan.result) ->
      Printf.printf "\n%s\n  category:   %s\n" r.Trojan.scenario_name
        (Trojan.category_name r.Trojan.category);
      Printf.printf "  undesired result: %-5b   unauthorized: %-5b   contained: %b\n"
        r.Trojan.undesired r.Trojan.unauthorized r.Trojan.contained;
      Printf.printf "  %s\n" r.Trojan.note)
    results;
  print_newline ();
  if Trojan.kernel_held results then begin
    print_endline "KERNEL HELD: every scenario stayed within its authority.";
    print_endline "(The unconfined trojan really did exfiltrate the diary — with the";
    print_endline " borrower's own authority.  \"A user should only borrow programs from";
    print_endline " another when the borrower has reason to trust the lender.\")"
  end
  else print_endline "KERNEL FAILED: an unauthorized result occurred."
