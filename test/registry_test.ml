(* The experiment registry: the id table is complete and unambiguous,
   and every registered runner's command line — including --stats —
   parses through the shared Cmdliner term without rendering anything. *)

open Multics_experiments

(* Every experiment the repo documents must be addressable; a renamed
   or dropped id silently orphans its EXPERIMENTS.md section. *)
let expected_ids =
  [
    "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11"; "E12";
    "E13"; "E14"; "E15"; "E16"; "E17"; "E18"; "E19"; "E20"; "E21"; "E22"; "A1"; "A2"; "A3";
  ]

let test_all_ids_listed () =
  Alcotest.(check int) "registry size" (List.length expected_ids) (List.length Registry.all);
  List.iter
    (fun id ->
      match Registry.find id with
      | Some e ->
          Alcotest.(check string)
            (Printf.sprintf "find %S returns the %s entry" id id)
            (String.lowercase_ascii id)
            (String.lowercase_ascii e.Registry.id)
      | None -> Alcotest.failf "expected id %S not in the registry" id)
    expected_ids

let test_ids_unique () =
  (* Uniqueness must hold case-insensitively: [find] lowercases. *)
  let seen = Hashtbl.create 32 in
  List.iter
    (fun id ->
      let key = String.lowercase_ascii id in
      if Hashtbl.mem seen key then Alcotest.failf "duplicate experiment id %S" id;
      Hashtbl.add seen key ())
    Registry.ids

let test_entries_well_formed () =
  List.iter
    (fun (e : Registry.experiment) ->
      Alcotest.(check bool) (e.Registry.id ^ " has a title") true (e.Registry.title <> "");
      Alcotest.(check bool) (e.Registry.id ^ " has a paper claim") true (e.Registry.paper_claim <> ""))
    Registry.all

(* Table-driven: for every registered id, the harness command line
   accepts the bare id and the id with --stats, and rejects what it
   should.  Parsing only — no experiment renders. *)
let test_cli_accepts_stats_for_every_runner () =
  List.iter
    (fun id ->
      (match Registry.Cli.parse [| "experiments"; id |] with
      | Ok { Registry.Cli.list_only; stats; sel_ids } ->
          Alcotest.(check bool) (id ^ ": no --list") false list_only;
          Alcotest.(check bool) (id ^ ": no --stats") false stats;
          Alcotest.(check (list string)) (id ^ ": selected") [ id ] sel_ids
      | Error e -> Alcotest.failf "%s: rejected: %s" id e);
      match Registry.Cli.parse [| "experiments"; id; "--stats" |] with
      | Ok { Registry.Cli.stats; sel_ids; _ } ->
          Alcotest.(check bool) (id ^ ": --stats accepted") true stats;
          Alcotest.(check (list string)) (id ^ ": selected with --stats") [ id ] sel_ids
      | Error e -> Alcotest.failf "%s --stats: rejected: %s" id e)
    Registry.ids

let test_cli_edges () =
  (match Registry.Cli.parse [| "experiments"; "--list" |] with
  | Ok { Registry.Cli.list_only; _ } -> Alcotest.(check bool) "--list" true list_only
  | Error e -> Alcotest.failf "--list rejected: %s" e);
  (match Registry.Cli.parse [| "experiments" |] with
  | Ok { Registry.Cli.sel_ids; _ } ->
      Alcotest.(check (list string)) "bare invocation selects all" [] sel_ids
  | Error e -> Alcotest.failf "bare invocation rejected: %s" e);
  match Registry.Cli.parse [| "experiments"; "--no-such-flag" |] with
  | Ok _ -> Alcotest.fail "unknown flag accepted"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "every id listed" `Quick test_all_ids_listed;
    Alcotest.test_case "ids unique" `Quick test_ids_unique;
    Alcotest.test_case "entries well-formed" `Quick test_entries_well_formed;
    Alcotest.test_case "--stats parses for every runner" `Quick
      test_cli_accepts_stats_for_every_runner;
    Alcotest.test_case "cli edge cases" `Quick test_cli_edges;
  ]
