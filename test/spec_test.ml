(* lib/spec: gate-usage profiles and per-workload specialisation.

   The contract under test is E22's: a profile captured from the
   per-gate dispatch counters round-trips through its serialisation;
   a compiled specialisation keeps exactly the profiled gates plus the
   keep-set; and under an installed mask every stripped gate refuses
   with [Gate_absent] — audited, with no kernel state touched — while
   every admitted request behaves byte-for-byte like the full kernel. *)

open Multics_kernel
module Spec = Multics_spec.Spec
module Inventory = Multics_audit.Inventory

let config = Config.kernel_6180
let acl_rw = Multics_access.Acl.of_strings [ ("Alice.Dev.*", "rew") ]
let label = Multics_access.Label.unclassified

type env = { system : System.t; handle : int; home : int; data : int; chan : int }

let expect what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Api.error_to_string e)

let boot () =
  let system = System.create config in
  ignore
    (System.add_account system ~person:"Alice" ~project:"Dev" ~password:"pw"
       ~clearance:Multics_access.Label.unclassified);
  let handle =
    match System.login system ~person:"Alice" ~project:"Dev" ~password:"pw" with
    | Ok handle -> handle
    | Error _ -> Alcotest.fail "boot: login"
  in
  let home =
    match User_env.resolve_path system ~handle ~path:">udd>Dev>Alice" with
    | Ok segno -> segno
    | Error _ -> Alcotest.fail "boot: home"
  in
  let data =
    match
      Api.Call.dispatch system ~handle
        (Api.Call.Create_segment
           { dir_segno = home; name = "data"; acl = acl_rw; label; brackets = None })
    with
    | Ok (Api.Call.Segno segno) -> segno
    | _ -> Alcotest.fail "boot: data"
  in
  let chan =
    match Api.Call.dispatch system ~handle Api.Call.Create_channel with
    | Ok (Api.Call.Channel chan) -> chan
    | _ -> Alcotest.fail "boot: channel"
  in
  { system; handle; home; data; chan }

let dispatch env request = Api.Call.dispatch env.system ~handle:env.handle request

(* ----- Profile capture: table-driven over scripted workloads ----- *)

(* Each row: a workload script and the exact gate usage it must
   profile as.  Counts are per-operation dispatch totals, refusals
   included. *)
let capture_cases =
  [
    ( "reads and writes",
      (fun env ->
        expect "w" (Result.map ignore (dispatch env (Api.Call.Write_word { segno = env.data; offset = 0; value = 1 })));
        expect "w" (Result.map ignore (dispatch env (Api.Call.Write_word { segno = env.data; offset = 1; value = 2 })));
        expect "r" (Result.map ignore (dispatch env (Api.Call.Read_word { segno = env.data; offset = 0 })))),
      [ ("read_word", 1); ("write_word", 2) ] );
    ( "ipc only",
      (fun env ->
        expect "wake" (Result.map ignore (dispatch env (Api.Call.Send_wakeup { channel = env.chan })));
        expect "block" (Result.map ignore (dispatch env (Api.Call.Block { channel = env.chan })))),
      [ ("block", 1); ("send_wakeup", 1) ] );
    ( "refused calls count",
      (fun env ->
        (* A wakeup on a channel that does not exist is refused — but
           the workload still reached the gate, so it needs it. *)
        match dispatch env (Api.Call.Send_wakeup { channel = 999 }) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "wakeup on a missing channel succeeded"),
      [ ("send_wakeup", 1) ] );
    ("empty workload", (fun _ -> ()), []);
  ]

let test_profile_capture () =
  List.iter
    (fun (case_name, script, want) ->
      let env = boot () in
      let profile, () = Spec.Profile.observe ~name:case_name (fun () -> script env) in
      Alcotest.(check (list (pair string int)))
        (case_name ^ ": counts") want (Spec.Profile.counts profile);
      Alcotest.(check string) (case_name ^ ": name") case_name (Spec.Profile.name profile))
    capture_cases

let test_profile_round_trip () =
  List.iter
    (fun (case_name, script, _) ->
      let env = boot () in
      let profile, () = Spec.Profile.observe ~name:case_name (fun () -> script env) in
      match Spec.Profile.of_string (Spec.Profile.to_string profile) with
      | Ok replayed ->
          Alcotest.(check (list (pair string int)))
            (case_name ^ ": round-trip counts") (Spec.Profile.counts profile)
            (Spec.Profile.counts replayed);
          Alcotest.(check string)
            (case_name ^ ": round-trip name") (Spec.Profile.name profile)
            (Spec.Profile.name replayed)
      | Error e -> Alcotest.failf "%s: round-trip: %s" case_name e)
    capture_cases

let test_profile_of_string_rejects () =
  List.iter
    (fun (what, text) ->
      match Spec.Profile.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: accepted" what)
    [
      ("empty", "");
      ("bad header", "gate-usage shell\nread_word 3\n");
      ("missing count", "profile p\nread_word\n");
      ("negative count", "profile p\nread_word -1\n");
      ("non-numeric count", "profile p\nread_word many\n");
    ]

let test_profile_merge () =
  let a = Spec.Profile.of_string "profile a\nread_word 2\nblock 1\n" |> Result.get_ok in
  let b = Spec.Profile.of_string "profile b\nread_word 3\nsend_wakeup 4\n" |> Result.get_ok in
  let merged = Spec.Profile.merge ~name:"ab" a b in
  Alcotest.(check (list (pair string int)))
    "merged counts"
    [ ("block", 1); ("read_word", 5); ("send_wakeup", 4) ]
    (Spec.Profile.counts merged)

(* ----- Compilation ----- *)

let test_compile_partition () =
  let profile =
    Spec.Profile.of_string "profile p\nread_word 5\nwrite_word 1\nnot_a_gate 9\n"
    |> Result.get_ok
  in
  let spec = Spec.Specialisation.compile ~keep:[ "enter_subsystem" ] ~name:"p" config profile in
  Alcotest.(check (list string))
    "kept (catalog order)"
    [ "read_word"; "write_word"; "enter_subsystem" ]
    (Spec.Specialisation.kept spec);
  let catalog = List.map (fun e -> e.Gate.gate_name) (Gate.catalog config) in
  Alcotest.(check (list string))
    "kept @ stripped is a permutation-free partition of the catalog" catalog
    (List.filter
       (fun g ->
         List.mem g (Spec.Specialisation.kept spec)
         || List.mem g (Spec.Specialisation.stripped spec))
       catalog);
  Alcotest.(check int)
    "counts add up"
    (Spec.Specialisation.full_count spec)
    (Spec.Specialisation.gate_count spec + List.length (Spec.Specialisation.stripped spec));
  Alcotest.(check bool) "admits kept" true (Spec.Specialisation.admits spec ~gate:"read_word");
  Alcotest.(check bool) "refuses stripped" false (Spec.Specialisation.admits spec ~gate:"initiate")

let test_apply_config_mismatch () =
  let env = boot () in
  let spec = Spec.Specialisation.full Config.baseline_645 in
  Alcotest.check_raises "apply on the wrong configuration"
    (Invalid_argument
       "Spec.apply: specialisation full compiled for 645-baseline, system runs security-kernel")
    (fun () -> Spec.Specialisation.apply env.system spec)

(* ----- The directed stripped-gate regression -----

   Install a mask that keeps only the IPC gates (plus login).  Every
   stripped dispatchable gate must refuse with its own [Gate_absent],
   the refusal must land in the audit trail, and no kernel state may
   move: after clearing the mask, the system must be byte-identical —
   request for request — to a twin that never wore a mask. *)

let ipc_spec () =
  let profile =
    Spec.Profile.of_string "profile ipc\ncreate_channel 1\nsend_wakeup 2\nblock 2\n"
    |> Result.get_ok
  in
  Spec.Specialisation.compile ~keep:[ "enter_subsystem"; "logout" ] ~name:"ipc" config profile

(* One mutation-bearing request per stripped gate, plus its probe: a
   follow-up request (run unmasked) whose answer exposes whether the
   refused request secretly moved state. *)
let stripped_attempts env =
  [
    ("initiate", Api.Call.Initiate { dir_segno = env.home; name = "data" });
    ("terminate", Api.Call.Terminate { segno = env.data });
    ( "create_segment",
      Api.Call.Create_segment
        { dir_segno = env.home; name = "evil"; acl = acl_rw; label; brackets = None } );
    ( "create_directory",
      Api.Call.Create_directory { dir_segno = env.home; name = "evil_dir"; acl = acl_rw; label } );
    ("delete_entry", Api.Call.Delete_entry { dir_segno = env.home; name = "data" });
    ( "rename_entry",
      Api.Call.Rename_entry { dir_segno = env.home; name = "data"; new_name = "gone" } );
    ("list_directory", Api.Call.List_directory { dir_segno = env.home });
    ("status_entry", Api.Call.Status_entry { dir_segno = env.home; name = "data" });
    ("set_acl", Api.Call.Set_acl { segno = env.data; acl = Multics_access.Acl.empty });
    ( "set_brackets",
      Api.Call.Set_brackets { segno = env.data; brackets = Multics_machine.Brackets.user_data } );
    ("set_gate_bound", Api.Call.Set_gate_bound { segno = env.data; gate_bound = 0 });
    ("set_quota", Api.Call.Set_quota { segno = env.home; quota = Some 1 });
    ("read_word", Api.Call.Read_word { segno = env.data; offset = 0 });
    ("write_word", Api.Call.Write_word { segno = env.data; offset = 0; value = 999 });
    ("net_attach", Api.Call.Attach_device { device = Multics_io.Device.Terminal });
    ("net_io", Api.Call.Device_write { device = Multics_io.Device.Terminal; message = 1 });
    ("net_detach", Api.Call.Detach_device { device = Multics_io.Device.Terminal });
  ]

let render = function
  | Ok (Api.Call.Word v) -> Printf.sprintf "word %d" v
  | Ok (Api.Call.Names names) -> "names " ^ String.concat ";" names
  | Ok (Api.Call.Status st) -> Printf.sprintf "status %s/%d" st.Api.status_name st.Api.status_pages
  | Ok _ -> "ok"
  | Error e -> "err " ^ Api.error_to_string e

(* The unmasked observation run: answers that expose any state the
   refused requests could have moved. *)
let observe_state env =
  List.map
    (fun request -> render (dispatch env request))
    [
      Api.Call.List_directory { dir_segno = env.home };
      Api.Call.Status_entry { dir_segno = env.home; name = "data" };
      Api.Call.Read_word { segno = env.data; offset = 0 };
      Api.Call.Status_entry { dir_segno = env.home; name = "evil" };
      Api.Call.Status_entry { dir_segno = env.home; name = "evil_dir" };
    ]

let test_stripped_gates_refuse () =
  let masked = boot () in
  let twin = boot () in
  let spec = ipc_spec () in
  Spec.Specialisation.apply masked.system spec;
  List.iter
    (fun (gate, request) ->
      if not (Spec.Specialisation.admits spec ~gate) then begin
        let audit = System.audit masked.system in
        let refusals_before = Audit_log.refusal_count audit in
        (match dispatch masked request with
        | Error (Api.Gate_absent g) ->
            Alcotest.(check string) (gate ^ ": refused as itself") gate g
        | other -> Alcotest.failf "%s: expected Gate_absent, got %s" gate (render other));
        Alcotest.(check bool)
          (gate ^ ": refusal audited") true
          (Audit_log.refusal_count audit > refusals_before)
      end)
    (stripped_attempts masked);
  (* No partial mutation: unmask and compare against the twin that
     never wore one. *)
  Spec.Specialisation.clear masked.system;
  Alcotest.(check (list string))
    "state untouched by refused requests" (observe_state twin) (observe_state masked)

let test_admitted_gates_identical () =
  let masked = boot () in
  let twin = boot () in
  Spec.Specialisation.apply masked.system (ipc_spec ());
  (* Every admitted request must behave byte-for-byte like the full
     kernel: same replies, same errors. *)
  let admitted env =
    [
      dispatch env Api.Call.Create_channel;
      dispatch env (Api.Call.Send_wakeup { channel = env.chan });
      dispatch env (Api.Call.Block { channel = env.chan });
      dispatch env (Api.Call.Send_wakeup { channel = 999 });
      dispatch env (Api.Call.Block { channel = env.chan });
    ]
  in
  Alcotest.(check (list string))
    "admitted requests render identically"
    (List.map render (admitted twin))
    (List.map render (admitted masked))

let test_status_lines () =
  let env = boot () in
  Alcotest.(check string)
    "no mask" "specialisation: none (full surface, 25 gates)"
    (Spec.Specialisation.status env.system);
  Spec.Specialisation.apply env.system (ipc_spec ());
  Alcotest.(check string)
    "ipc mask" "specialisation: ipc (5 of 25 gates admitted, 20 stripped)"
    (Spec.Specialisation.status env.system);
  (* The full specialisation clears the mask rather than installing a
     table that admits everything. *)
  Spec.Specialisation.apply env.system (Spec.Specialisation.full config);
  Alcotest.(check string)
    "full clears" "specialisation: none (full surface, 25 gates)"
    (Spec.Specialisation.status env.system)

(* ----- E12 accounting for a specialised surface ----- *)

let test_specialised_surface () =
  let all = Inventory.specialised_surface config ~admitted:(fun _ -> true) in
  Alcotest.(check int) "full functional" all.Inventory.functional_full all.Inventory.functional_kept;
  Alcotest.(check int) "full paper" all.Inventory.paper_full all.Inventory.paper_kept;
  Alcotest.(check int) "paper total matches E12" (Inventory.total_gates config) all.Inventory.paper_full;
  let spec = ipc_spec () in
  let some =
    Inventory.specialised_surface config ~admitted:(fun gate ->
        Spec.Specialisation.admits spec ~gate)
  in
  Alcotest.(check int) "functional kept" 5 some.Inventory.functional_kept;
  Alcotest.(check bool)
    "paper surface shrank" true
    (some.Inventory.paper_kept < some.Inventory.paper_full);
  (* ipc kept whole: its inventory gates survive at full strength. *)
  Alcotest.(check bool)
    "kept subsystems keep their paper gates" true
    (some.Inventory.paper_kept >= Inventory.subsystem_gates config ~subsystem:"ipc");
  List.iter
    (fun (subsystem, kept, full) ->
      Alcotest.(check bool) (subsystem ^ ": kept <= full") true (kept <= full))
    some.Inventory.by_subsystem

let suite =
  [
    Alcotest.test_case "profile capture is table-exact" `Quick test_profile_capture;
    Alcotest.test_case "profile round-trips through serialisation" `Quick test_profile_round_trip;
    Alcotest.test_case "profile parser rejects malformed text" `Quick test_profile_of_string_rejects;
    Alcotest.test_case "profile merge sums counts" `Quick test_profile_merge;
    Alcotest.test_case "compile partitions the catalog" `Quick test_compile_partition;
    Alcotest.test_case "apply refuses a foreign configuration" `Quick test_apply_config_mismatch;
    Alcotest.test_case "stripped gates refuse with Gate_absent, audited, no mutation" `Quick
      test_stripped_gates_refuse;
    Alcotest.test_case "admitted gates are byte-identical to the full kernel" `Quick
      test_admitted_gates_identical;
    Alcotest.test_case "status describes the installed mask" `Quick test_status_lines;
    Alcotest.test_case "specialised surface at paper scale" `Quick test_specialised_surface;
  ]
