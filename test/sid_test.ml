(* The dense-SID mediation layer: interning stability (one identity,
   one SID, forever), the compiled access-vector table's cell
   semantics (compute/required/covers, epoch-stamp revocation, grow,
   flush, rebuild), and the parity oracle — the compiled table must be
   indistinguishable from the structured reference monitor at every
   step of a seeded churn of ACL edits, label rewrites, bracket
   changes, flush storms and salvage-style invalidations. *)

open Multics_access
open Multics_fs
open Multics_machine

let subject ?(trusted = false) ?(ring = 4) person level compartments =
  Policy.subject ~trusted
    ~principal:(Principal.make ~person ~project:"Test" ~tag:"a")
    ~clearance:(Label.make level compartments) ~ring:(Ring.of_int ring) ()

(* ----- SID interning ----- *)

let test_sid_interning_stable () =
  let reg = Policy.Subject_sids.create () in
  let a = subject "Alice" Label.Secret [ "crypto" ] in
  let sid_a = Policy.Subject_sids.sid_of reg a in
  (* Memo recall: the same record maps to the same SID. *)
  Alcotest.(check int) "memo recall" (Sid.to_int sid_a)
    (Sid.to_int (Policy.Subject_sids.sid_of reg a));
  (* A structurally equal but physically distinct record interns to
     the SAME SID — identity, not allocation, names the row. *)
  let a' = subject "Alice" Label.Secret [ "crypto" ] in
  Alcotest.(check int) "same identity, same SID" (Sid.to_int sid_a)
    (Sid.to_int (Policy.Subject_sids.sid_of reg a'));
  (* Distinct identities get distinct SIDs, densely. *)
  let b = subject "Bob" Label.Secret [ "crypto" ] in
  let ring1 = subject ~ring:1 "Alice" Label.Secret [ "crypto" ] in
  let trusted = subject ~trusted:true "Alice" Label.Secret [ "crypto" ] in
  let level = subject "Alice" Label.Top_secret [ "crypto" ] in
  let sids =
    List.map
      (fun s -> Sid.to_int (Policy.Subject_sids.sid_of reg s))
      [ a; b; ring1; trusted; level ]
  in
  Alcotest.(check int) "five identities" 5 (Policy.Subject_sids.count reg);
  Alcotest.(check (list int)) "dense, first-come order" [ 0; 1; 2; 3; 4 ] sids;
  (* The canonical record round-trips. *)
  Alcotest.(check bool) "subject_of returns the first-interned record" true
    (Policy.Subject_sids.subject_of reg sid_a == a)

let test_sid_memo_survives_foreign_registry () =
  (* A record presented to a second registry must re-intern there and
     STILL answer correctly in the first: stamps are per-registry and
     never reused, so a stale stamp re-interns rather than aliasing. *)
  let reg1 = Policy.Subject_sids.create () in
  let reg2 = Policy.Subject_sids.create () in
  let s = subject "Alice" Label.Secret [] in
  let in1 = Policy.Subject_sids.sid_of reg1 s in
  ignore (Policy.Subject_sids.sid_of reg2 (subject "Pad" Label.Unclassified []));
  let in2 = Policy.Subject_sids.sid_of reg2 s in
  Alcotest.(check int) "re-reads in reg1 stay stable" (Sid.to_int in1)
    (Sid.to_int (Policy.Subject_sids.sid_of reg1 s));
  Alcotest.(check int) "reg2 assigned its own row" 1 (Sid.to_int in2);
  Alcotest.(check int) "alternation never aliases" (Sid.to_int in1)
    (Sid.to_int (Policy.Subject_sids.sid_of reg1 s))

let test_sid_of_int_rejects_negative () =
  Alcotest.check_raises "negative SID" (Invalid_argument "Sid.of_int: negative sid")
    (fun () -> ignore (Sid.of_int (-1)))

(* ----- The compiled cell ----- *)

let test_av_compute_matches_policy () =
  (* compute's six bits, re-read through covers/required, must equal
     Policy.check + Brackets on every (subject, label, acl, mode)
     combination of a small exhaustive grid. *)
  let subjects =
    [
      subject "Alice" Label.Secret [ "crypto" ];
      subject "Alice" Label.Unclassified [];
      subject ~trusted:true "Daemon" Label.Unclassified [];
      subject ~ring:1 "Alice" Label.Secret [ "crypto" ];
      subject ~ring:7 "Low" Label.Top_secret [ "crypto"; "nato" ];
    ]
  in
  let labels =
    [ Label.unclassified; Label.make Label.Secret [ "crypto" ]; Label.make Label.Secret [ "nato" ] ]
  in
  let acls =
    [
      Acl.of_strings [ ("*.Test.*", "rw") ];
      Acl.of_strings [ ("Alice.Test.*", "r") ];
      Acl.of_strings [ ("Nobody.Else.*", "rew") ];
    ]
  in
  let brackets = [ Brackets.user_data; Brackets.make ~r1:4 ~r2:5 ~r3:5; Brackets.for_single_ring 1 ] in
  let modes = [ Mode.r; Mode.w; Mode.e; Mode.rw; Mode.re; Mode.rew ] in
  List.iter
    (fun s ->
      List.iter
        (fun object_label ->
          List.iter
            (fun acl ->
              List.iter
                (fun b ->
                  let av = Av_table.compute ~subject:s ~object_label ~acl ~brackets:b in
                  List.iter
                    (fun requested ->
                      let covered = Av_table.covers ~av ~need:(Av_table.required requested) in
                      let policy_permits =
                        Policy.permitted
                          (Policy.check ~subject:s ~object_label ~acl ~requested)
                      in
                      let bracket_ok =
                        (not
                           (requested.Mode.read || requested.Mode.execute)
                        || Brackets.read_ok b ~ring:s.Policy.ring)
                        && ((not requested.Mode.write) || Brackets.write_ok b ~ring:s.Policy.ring)
                      in
                      Alcotest.(check bool)
                        (Printf.sprintf "cell ≡ policy∧brackets (mode %s)"
                           (Mode.to_string requested))
                        (policy_permits && bracket_ok) covered)
                    modes)
                brackets)
            acls)
        labels)
    subjects

(* ----- Table mechanics: stamps, growth, flush, rebuild ----- *)

let test_av_table_stamps_and_growth () =
  let gens = Multics_cache.Avc.Gen.create () in
  let t = Av_table.create ~subjects:1 ~objects:2 ~gens ~name:"test.avtab" () in
  let s0 = subject "Alice" Label.Secret [] in
  let subj = Av_table.subject_sid t s0 in
  Alcotest.(check int) "cold miss" (-1) (Av_table.find t ~subj ~obj:5);
  Av_table.set t ~subj ~obj:5 7;
  Alcotest.(check int) "warm hit" 7 (Av_table.find t ~subj ~obj:5);
  (* Growth: an object far past the initial columns re-lays the array
     without losing the filled cell. *)
  Av_table.set t ~subj ~obj:900 3;
  Alcotest.(check int) "cell survives growth" 7 (Av_table.find t ~subj ~obj:5);
  Alcotest.(check int) "new cell readable" 3 (Av_table.find t ~subj ~obj:900);
  (* Per-object revocation: only the bumped object's cell dies. *)
  Multics_cache.Avc.Gen.bump_object gens 5;
  Alcotest.(check int) "revoked cell misses" (-1) (Av_table.find t ~subj ~obj:5);
  Alcotest.(check int) "other cell unaffected" 3 (Av_table.find t ~subj ~obj:900);
  (* Global revocation kills everything. *)
  Av_table.set t ~subj ~obj:5 7;
  Multics_cache.Avc.Gen.bump_global gens;
  Alcotest.(check int) "global bump revokes all (a)" (-1) (Av_table.find t ~subj ~obj:5);
  Alcotest.(check int) "global bump revokes all (b)" (-1) (Av_table.find t ~subj ~obj:900);
  (* Flush empties outright. *)
  Av_table.set t ~subj ~obj:5 7;
  Av_table.flush t;
  Alcotest.(check int) "flushed" (-1) (Av_table.find t ~subj ~obj:5);
  Alcotest.(check int) "size counts fresh cells only" 0 (Av_table.size t)

let test_av_table_rebuild () =
  let h = Hierarchy.create () in
  let operator = subject ~trusted:true ~ring:1 "Initializer" Label.Top_secret [] in
  let acl = Acl.of_strings [ ("*.Test.*", "rw"); ("Initializer.*.*", "rew") ] in
  let uids =
    Array.init 8 (fun i ->
        match
          Hierarchy.create_segment h ~subject:operator ~dir:Uid.root
            ~name:(Printf.sprintf "s%d" i) ~acl ~label:Label.unclassified
        with
        | Ok uid -> uid
        | Error e -> Alcotest.fail (Hierarchy.error_to_string e))
  in
  let alice = subject "Alice" Label.Secret [] in
  ignore (Hierarchy.check_access h ~subject:alice ~uid:uids.(0) ~requested:Mode.r);
  (* Rebuild fills every (interned subject, live node) pair: operator
     and alice interned, 8 segments plus the skeleton directories. *)
  let cells = Hierarchy.rebuild_av_table h in
  Alcotest.(check int) "cells = subjects x nodes" (2 * Hierarchy.node_count h) cells;
  (* After an eager rebuild every reference is a hit, and agrees with
     the structured path. *)
  Array.iter
    (fun uid ->
      let compiled = Hierarchy.check_access h ~subject:alice ~uid ~requested:Mode.rw in
      let structured = Hierarchy.check_access_fresh h ~subject:alice ~uid ~requested:Mode.rw in
      Alcotest.(check bool) "rebuild parity" true (compiled = structured))
    uids;
  (* A post-rebuild ACL edit still revokes: rebuild must not outlive
     the epoch discipline. *)
  (match
     Hierarchy.set_acl h ~subject:operator ~uid:uids.(0)
       ~acl:(Acl.of_strings [ ("Initializer.*.*", "rew") ])
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Hierarchy.error_to_string e));
  (match Hierarchy.check_access h ~subject:alice ~uid:uids.(0) ~requested:Mode.r with
  | Some (Policy.Refuse _) -> ()
  | Some Policy.Permit -> Alcotest.fail "rebuilt cell replayed a revoked Permit"
  | None -> Alcotest.fail "uid vanished")

(* ----- The parity oracle (the E19 drum, run small here) ----- *)

let test_parity_oracle_100_seeds () =
  let total =
    List.fold_left
      (fun acc seed ->
        let r = Multics_experiments.E19_sid.run_seed ~seed ~refs:120 in
        acc + r.Multics_experiments.E19_sid.divergences)
      0
      (List.init 100 Fun.id)
  in
  Alcotest.(check int) "0 divergences across 100 seeds" 0 total

let suite =
  [
    Alcotest.test_case "SID interning stable and dense" `Quick test_sid_interning_stable;
    Alcotest.test_case "SID memo survives foreign registry" `Quick
      test_sid_memo_survives_foreign_registry;
    Alcotest.test_case "negative SID rejected" `Quick test_sid_of_int_rejects_negative;
    Alcotest.test_case "compiled cell ≡ policy ∧ brackets (exhaustive grid)" `Quick
      test_av_compute_matches_policy;
    Alcotest.test_case "table stamps, growth, flush" `Quick test_av_table_stamps_and_growth;
    Alcotest.test_case "eager rebuild: exact, revocable" `Quick test_av_table_rebuild;
    Alcotest.test_case "parity oracle, 100 seeds" `Quick test_parity_oracle_100_seeds;
  ]
