(* The deterministic domain-pool runner: order preservation, inline
   fallback, Obs-snapshot merging, nested-call degradation, exception
   determinism, and the end-to-end oracle parity between pool sizes. *)

module Par = Multics_par.Par
module Obs = Multics_obs.Obs
module E19 = Multics_experiments.E19_sid

let test_map_preserves_order () =
  let xs = List.init 100 Fun.id in
  (* Uneven task costs invite out-of-order completion; results must
     come back in input order regardless. *)
  let f x =
    let spin = if x mod 7 = 0 then 10_000 else 10 in
    let acc = ref 0 in
    for i = 1 to spin do
      acc := (!acc + i) mod 65_521
    done;
    ignore !acc;
    x * 3
  in
  let want = List.map f xs in
  Alcotest.(check (list int)) "jobs=4 preserves order" want (Par.map ~jobs:4 f xs);
  Alcotest.(check (list int)) "jobs=1 inline" want (Par.map ~jobs:1 f xs);
  Alcotest.(check (list int)) "jobs=3, n=2 (pool clamps)" [ 0; 3 ] (Par.map ~jobs:3 f [ 0; 1 ])

let test_run_seeds () =
  Alcotest.(check (list int)) "seeds 0..n-1 in order" [ 0; 10; 20; 30; 40 ]
    (Par.run_seeds ~jobs:2 5 (fun seed -> seed * 10));
  Alcotest.(check (list int)) "zero seeds" [] (Par.run_seeds ~jobs:4 0 (fun s -> s))

let test_obs_totals_match_sequential () =
  (* Tasks record counters and histograms; the absorbed totals after a
     4-domain run must equal the inline run's. *)
  let task seed =
    Obs.Counter.incr (Obs.Registry.counter (Obs.Registry.global ()) "par.test.ops") ~by:(seed + 1);
    Obs.Histogram.observe
      (Obs.Registry.histogram (Obs.Registry.global ()) "par.test.cycles")
      ((seed * 13) + 1);
    seed
  in
  let run jobs =
    let before = Obs.Snapshot.capture () in
    ignore (Par.run_seeds ~jobs 40 task);
    let after = Obs.Snapshot.capture () in
    Obs.Snapshot.diff ~before ~after
  in
  let d1 = run 1 and d4 = run 4 in
  let counter d = List.assoc "par.test.ops" d.Obs.Snapshot.counters in
  Alcotest.(check int) "counter totals match" (counter d1) (counter d4);
  let hist d = List.assoc "par.test.cycles" d.Obs.Snapshot.histograms in
  let h1 = hist d1 and h4 = hist d4 in
  Alcotest.(check int) "histogram count" h1.Obs.Snapshot.count h4.Obs.Snapshot.count;
  Alcotest.(check int) "histogram sum" h1.Obs.Snapshot.sum h4.Obs.Snapshot.sum;
  Alcotest.(check (list (pair int int))) "histogram buckets" h1.Obs.Snapshot.buckets
    h4.Obs.Snapshot.buckets

let test_nested_map_degrades_inline () =
  (* A task that itself calls Par.map must not spawn a second layer of
     domains — and must still compute the right thing. *)
  let got =
    Par.map ~jobs:4
      (fun x -> List.fold_left ( + ) 0 (Par.map ~jobs:4 (fun y -> x * y) [ 1; 2; 3 ]))
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list int)) "nested totals" [ 6; 12; 18; 24 ] got

exception Task_failed of int

let test_exception_determinism () =
  (* Several tasks fail; the lowest-indexed failure is the one
     re-raised, whatever the schedule. *)
  let f x = if x mod 3 = 2 then raise (Task_failed x) else x in
  List.iter
    (fun jobs ->
      match Par.map ~jobs f (List.init 20 Fun.id) with
      | _ -> Alcotest.failf "jobs=%d: expected a raise" jobs
      | exception Task_failed i ->
          Alcotest.(check int) (Printf.sprintf "jobs=%d: first failing task" jobs) 2 i)
    [ 1; 4 ]

let test_stats_accounting () =
  Par.Stats.reset ();
  ignore (Par.run_seeds ~jobs:1 7 (fun s -> s));
  ignore (Par.run_seeds ~jobs:4 9 (fun s -> s));
  let s = Par.Stats.snapshot () in
  Alcotest.(check int) "runs" 2 s.Par.Stats.runs;
  Alcotest.(check int) "tasks" 16 s.Par.Stats.tasks;
  Alcotest.(check int) "last pool size" 4 s.Par.Stats.pool_size;
  Alcotest.(check int) "per-worker counts sum to tasks" 16
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.Par.Stats.per_worker);
  Par.Stats.reset ();
  let s = Par.Stats.snapshot () in
  Alcotest.(check int) "reset clears runs" 0 s.Par.Stats.runs

let test_e19_oracle_parity_across_pool_sizes () =
  (* The end-to-end contract: the E19 churn oracle — full kernel boots,
     ACL churn, cache flushes per seed — produces identical run stats at
     every pool size. *)
  let seq = E19.parity_runs ~jobs:1 ~refs:120 () in
  let par = E19.parity_runs ~jobs:4 ~refs:120 () in
  Alcotest.(check int) "same number of runs" (List.length seq) (List.length par);
  List.iteri
    (fun i ((a : E19.run_stats), (b : E19.run_stats)) ->
      Alcotest.(check int) (Printf.sprintf "seed %d refs" i) a.E19.refs b.E19.refs;
      Alcotest.(check int) (Printf.sprintf "seed %d divergences" i) a.E19.divergences
        b.E19.divergences;
      Alcotest.(check int) (Printf.sprintf "seed %d edits" i) a.E19.edits b.E19.edits;
      Alcotest.(check int) (Printf.sprintf "seed %d flushes" i) a.E19.flushes b.E19.flushes;
      Alcotest.(check int) (Printf.sprintf "seed %d rebuilds" i) a.E19.rebuilds b.E19.rebuilds)
    (List.combine seq par)

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
    Alcotest.test_case "run_seeds" `Quick test_run_seeds;
    Alcotest.test_case "obs totals match sequential" `Quick test_obs_totals_match_sequential;
    Alcotest.test_case "nested map degrades inline" `Quick test_nested_map_degrades_inline;
    Alcotest.test_case "exception determinism" `Quick test_exception_determinism;
    Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
    Alcotest.test_case "e19 oracle parity across pool sizes" `Quick
      test_e19_oracle_parity_across_pool_sizes;
  ]
