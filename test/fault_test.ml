(* lib/fault: deterministic plans and injectors, the fail-secure
   property, salvage correctness, and the buffer behaviour under
   injected consumer stalls.

   All QCheck generators here are seeded through the test inputs
   themselves (plan seeds are drawn as ordinary integers), so a failure
   reproduces from the printed counterexample alone. *)

module Fault = Multics_fault.Fault
module Obs = Multics_obs.Obs
module Prng = Multics_util.Prng
open Multics_io
open Multics_kernel
module E15 = Multics_experiments.E15_fail_secure

(* ----- Plan parsing ----- *)

let test_plan_round_trip () =
  let spec = "gate.deny=every:5,vm.page_read=p:1/8,backup.tape=nth:3" in
  match Fault.Plan.parse ~seed:7 spec with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok plan ->
      Alcotest.(check string) "round trip" spec (Fault.Plan.to_string plan);
      (match Fault.Plan.parse ~seed:7 (Fault.Plan.to_string plan) with
      | Ok again -> Alcotest.(check bool) "reparse equal" true (plan = again)
      | Error e -> Alcotest.failf "reparse failed: %s" e)

let test_plan_rejects_garbage () =
  let bad spec =
    match Fault.Plan.parse ~seed:1 spec with
    | Ok _ -> Alcotest.failf "parse accepted %S" spec
    | Error _ -> ()
  in
  bad "";
  bad "nonsense";
  bad "gate.deny=sometimes";
  bad "no.such.site=nth:3";
  bad "gate.deny=nth:0";
  bad "gate.deny=p:1/0"

let test_all_sites_named () =
  List.iter
    (fun site ->
      let name = Fault.site_name site in
      match Fault.site_of_name name with
      | Some back -> Alcotest.(check bool) name true (site = back)
      | None -> Alcotest.failf "site name %s does not resolve" name)
    Fault.all_sites

(* ----- Schedules ----- *)

let fires plan site n =
  let inj = Fault.Injector.create plan in
  List.init n (fun _ -> Fault.Injector.fire inj site)

let test_nth_fires_once () =
  let plan = Fault.Plan.make ~seed:1 [ (Fault.Page_read, Fault.Nth 3) ] in
  Alcotest.(check (list bool))
    "only the 3rd occurrence"
    [ false; false; true; false; false ]
    (fires plan Fault.Page_read 5)

let test_every_fires_periodically () =
  let plan = Fault.Plan.make ~seed:1 [ (Fault.Evict, Fault.Every 2) ] in
  Alcotest.(check (list bool))
    "every 2nd occurrence"
    [ false; true; false; true; false; true ]
    (fires plan Fault.Evict 6)

let test_unruled_site_never_fires () =
  let plan = Fault.Plan.make ~seed:1 [ (Fault.Evict, Fault.Every 1) ] in
  Alcotest.(check (list bool))
    "no rule, no fire"
    [ false; false; false ]
    (fires plan Fault.Gate_deny 3)

let probability_deterministic =
  QCheck.Test.make ~name:"probabilistic schedules replay identically" ~count:100
    (QCheck.make QCheck.Gen.(pair small_nat (int_range 2 20)))
    (fun (seed, den) ->
      let plan =
        Fault.Plan.make ~seed [ (Fault.Backup_tape, Fault.Probability { num = 1; den }) ]
      in
      fires plan Fault.Backup_tape 200 = fires plan Fault.Backup_tape 200)

(* ----- Process crash injection ----- *)

let test_proc_crash_is_contained () =
  let sim =
    Multics_proc.Sim.create ~cost:Multics_machine.Cost.h6180 ~virtual_processors:2
  in
  let inj =
    Fault.Injector.create (Fault.Plan.make ~seed:3 [ (Fault.Proc_crash, Fault.Nth 4) ])
  in
  Multics_proc.Sim.set_faults sim (Some inj);
  let finished = ref [] in
  let worker name =
    Multics_proc.Sim.spawn sim ~name (fun _pid ->
        for _ = 1 to 10 do
          Multics_proc.Sim.compute 100
        done;
        finished := name :: !finished)
  in
  let a = worker "victim" in
  let b = worker "bystander" in
  Multics_proc.Sim.run sim;
  let crashed pid = Multics_proc.Sim.failure_of sim pid <> None in
  Alcotest.(check bool) "exactly one process crashed" true (crashed a <> crashed b);
  Alcotest.(check int) "the other finished" 1 (List.length !finished);
  Alcotest.(check int) "one injection" 1 (Fault.Injector.injected inj)

(* ----- The fail-secure property (the point of the PR) -----

   >= 100 seeded (workload, fault-plan) pairs, every one derived from
   its seed alone.  For each pair: no access granted under faults that
   the recomputed policy would refuse, the standing cross-user probe
   never succeeds, and after salvage every surviving descriptor agrees
   with the reference monitor and the quota invariant holds. *)

let fail_secure_property =
  QCheck.Test.make ~name:"kernel never fails open under injected faults" ~count:100
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000))
    (fun seed ->
      let o = E15.run_gate_pair ~seed () in
      if not (E15.fail_secure o) then
        QCheck.Test.fail_reportf
          "seed %d plan %s: violations=%d probe_leaks=%d post_salvage_bad=%d \
           post_probe=%d quota_ok=%b"
          o.E15.seed o.E15.plan_spec o.E15.violations o.E15.probe_leaks
          o.E15.post_salvage_bad o.E15.post_salvage_probe_leaks
          o.E15.report.Salvager.quota_ok
      else true)

let test_salvager_rolls_back_journal () =
  (* Every gate.abort journals a partially-created branch; salvage must
     roll back exactly that many and leave nothing journaled. *)
  let o = E15.run_gate_pair ~seed:41 () in
  Alcotest.(check bool) "some aborts were journaled" true (o.E15.journaled > 0);
  Alcotest.(check int)
    "every journaled abort rolled back" o.E15.journaled
    o.E15.report.Salvager.rolled_back

(* ----- Determinism: same seed + plan => identical obs snapshot ----- *)

let obs_run seed =
  Obs.Registry.reset (Obs.Registry.global ());
  let before = Obs.Snapshot.capture () in
  let o = E15.run_gate_pair ~seed () in
  let after = Obs.Snapshot.capture () in
  (o, Obs.Snapshot.to_json (Obs.Snapshot.diff ~before ~after))

let test_same_seed_same_snapshot () =
  let o1, snap1 = obs_run 59 in
  let o2, snap2 = obs_run 59 in
  Alcotest.(check bool) "same outcome" true (o1 = o2);
  Alcotest.(check string) "identical obs snapshot" snap1 snap2;
  let o3, snap3 = obs_run 60 in
  ignore o3;
  Alcotest.(check bool) "different seed, different trace" true (snap3 <> snap1)

(* ----- Buffers under loss and injected stalls (E7 machinery) ----- *)

(* Model: a circular buffer of capacity c holds the last c unread
   writes; anything older was destroyed by the writer lapping the
   reader.  Drive writes-then-reads and compare against a list model. *)
let circular_wraparound_model =
  let gen = QCheck.Gen.(pair (int_range 1 8) (list_size (int_range 0 60) (int_range 0 1))) in
  QCheck.Test.make ~name:"circular buffer overwrites exactly the oldest" ~count:300
    (QCheck.make gen)
    (fun (capacity, script) ->
      let buf = Circular_buffer.create ~capacity in
      let model = ref [] (* newest first, length <= capacity *) in
      let next = ref 0 in
      let lost = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          if op = 0 then begin
            Circular_buffer.write buf !next;
            model := !next :: !model;
            incr next;
            if List.length !model > capacity then begin
              model := List.filteri (fun i _ -> i < capacity) !model;
              incr lost
            end
          end
          else
            let expected =
              match List.rev !model with
              | [] -> None
              | oldest :: _ ->
                  model := List.filteri (fun i _ -> i < List.length !model - 1) !model;
                  Some oldest
            in
            if Circular_buffer.read buf <> expected then ok := false)
        script;
      !ok
      && Circular_buffer.occupancy buf = List.length !model
      && Circular_buffer.overwritten buf = !lost)

(* Under the E7 workload with injected consumer stalls the circular
   buffer must account for every offered message (delivered + lost =
   offered, loss only via overwrite), while the infinite buffer loses
   nothing and grows instead.  Seeds fixed and documented: 1975 is the
   repo-wide default workload seed; 7001/7002 give plans that actually
   fire several stalls against the default burst pattern. *)
let stall_faults seed =
  Fault.Injector.create
    (Fault.Plan.make ~seed
       [
         (Fault.Consumer_stall, Fault.Probability { num = 1; den = 4 });
         (Fault.Net_transient, Fault.Probability { num = 1; den = 6 });
       ])

let test_circular_accounts_under_stalls () =
  let faults = stall_faults 7001 in
  let r = Network.run ~seed:1975 ~faults (Network.Circular (Circular_buffer.create ~capacity:16)) in
  Alcotest.(check bool) "stalls actually injected" true (Fault.Injector.injected faults > 0);
  Alcotest.(check int) "offered = delivered + lost" r.Network.offered
    (r.Network.delivered + r.Network.lost);
  Alcotest.(check bool) "stalled consumer loses messages" true (r.Network.lost > 0);
  Alcotest.(check bool) "peak occupancy bounded by capacity" true (r.Network.peak_occupancy <= 16)

let test_infinite_grows_under_stalls () =
  let faults = stall_faults 7002 in
  let buf = Infinite_buffer.create () in
  let r = Network.run ~seed:1975 ~faults (Network.Infinite buf) in
  Alcotest.(check bool) "stalls actually injected" true (Fault.Injector.injected faults > 0);
  Alcotest.(check int) "nothing lost" 0 r.Network.lost;
  Alcotest.(check int) "every message delivered" r.Network.offered r.Network.delivered;
  (* Growth: the stalled consumer forces more simultaneous pages than
     the fault-free run of the identical workload needs. *)
  let fault_free = Network.run ~seed:1975 (Network.Infinite (Infinite_buffer.create ())) in
  Alcotest.(check bool) "stalls raise the page high-water mark" true
    (r.Network.peak_pages >= fault_free.Network.peak_pages)

let test_network_transients_replay () =
  let run () =
    let faults = stall_faults 7002 in
    let r = Network.run ~seed:1975 ~faults (Network.Infinite (Infinite_buffer.create ())) in
    (r, Fault.Injector.counts faults)
  in
  Alcotest.(check bool) "identical replay" true (run () = run ())

let suite =
  [
    Alcotest.test_case "plan spec round-trips" `Quick test_plan_round_trip;
    Alcotest.test_case "plan parse rejects garbage" `Quick test_plan_rejects_garbage;
    Alcotest.test_case "site names resolve" `Quick test_all_sites_named;
    Alcotest.test_case "nth fires exactly once" `Quick test_nth_fires_once;
    Alcotest.test_case "every fires periodically" `Quick test_every_fires_periodically;
    Alcotest.test_case "unruled sites never fire" `Quick test_unruled_site_never_fires;
    QCheck_alcotest.to_alcotest probability_deterministic;
    Alcotest.test_case "injected crash is contained" `Quick test_proc_crash_is_contained;
    QCheck_alcotest.to_alcotest fail_secure_property;
    Alcotest.test_case "salvager rolls back the journal" `Quick
      test_salvager_rolls_back_journal;
    Alcotest.test_case "same seed, identical obs snapshot" `Quick
      test_same_seed_same_snapshot;
    QCheck_alcotest.to_alcotest circular_wraparound_model;
    Alcotest.test_case "circular accounts under stalls" `Quick
      test_circular_accounts_under_stalls;
    Alcotest.test_case "infinite buffer grows, loses nothing" `Quick
      test_infinite_grows_under_stalls;
    Alcotest.test_case "network transients replay" `Quick test_network_transients_replay;
  ]
