(* Test entry point: one alcotest section per library. *)

let () =
  Alcotest.run "multics_sk"
    [
      ("util", Util_test.suite);
      ("machine", Machine_test.suite);
      ("access", Access_test.suite);
      ("mm", Mm_test.suite);
      ("proc", Proc_test.suite);
      ("vm", Vm_test.suite @ Vm_test.backup_suite);
      ("fs", Fs_test.suite @ Fs_test.minting_suite);
      ("link", Link_test.suite);
      ("io", Io_test.suite);
      ("kernel",
        Kernel_test.suite @ Kernel_test.extra_suite @ Kernel_test.session_suite
        @ Kernel_test.revocation_suite @ Kernel_test.session_interrupt_suite);
      ("dispatch", Dispatch_test.suite);
      ("obs", Obs_test.suite);
      ("audit", Audit_test.suite @ Audit_test.extra_suite @ Audit_test.stage_suite);
      ("integration", Integration_test.suite);
      ("experiments", Experiments_test.suite);
      ("properties", Property_test.suite);
      ("fault", Fault_test.suite);
      ("misc", Misc_test.suite);
      ("cache", Cache_test.suite);
      ("sched", Sched_test.suite);
      ("smp", Smp_test.suite);
      ("site", Site_test.suite);
      ("shellcmd", Shellcmd_test.suite);
      ("mc", Mc_test.suite);
      ("sid", Sid_test.suite);
      ("registry", Registry_test.suite);
      ("par", Par_test.suite);
      ("spec", Spec_test.suite);
    ]
