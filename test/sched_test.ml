(* Tests for the traffic controller (lib/sched): quantum expiry and
   preemption, the eligibility cap, MLF aging, the preempt-storm fault
   site, the Sched_status/Sched_tune gates, event-queue stability, and
   the schedule-invariance parity property E17 leans on. *)

open Multics_sched
module Sim = Multics_proc.Sim
module Event_queue = Multics_proc.Event_queue
module Cost = Multics_machine.Cost
module Fault = Multics_fault.Fault
module System = Multics_kernel.System
module Api = Multics_kernel.Api
module Config = Multics_kernel.Config
module Prng = Multics_util.Prng

let make_sim ?(vps = 1) () = Sim.create ~cost:Cost.h6180 ~virtual_processors:vps

let counter sim name = Multics_util.Stats.Counters.get (Sim.counters sim) name

let sched_stat sched name =
  match List.assoc_opt name (Sched.status sched) with
  | Some v -> v
  | None -> Alcotest.failf "missing sched counter %s" name

(* ----- Quantum expiry and preemption ----- *)

let test_quantum_preempts_and_interleaves () =
  (* One VP, tiny quantum: two equal compute-bound processes must
     preempt each other and finish close together, not serially. *)
  let sim = make_sim () in
  let sched =
    Sched.create ~policy:(Sched.Mlf { levels = 4; base_quantum = 100; age_after = 1_000_000 }) sim
  in
  let finish = Array.make 2 0 in
  for i = 0 to 1 do
    ignore
      (Sim.spawn sim ~name:(Printf.sprintf "cruncher.%d" i) (fun _ ->
           Sim.compute 1_000;
           finish.(i) <- Sim.now sim))
  done;
  Sim.run sim;
  Alcotest.(check bool) "preemptions happened" true (counter sim "preemptions" > 0);
  Alcotest.(check bool) "expiries counted" true (sched_stat sched "quantum_expiries" > 0);
  (* Serial execution finishes the first at 1900 (1000 compute + one
     900-cycle process switch); interleaving pushes both well past the
     other's full demand. *)
  Alcotest.(check bool) "first finisher was interleaved" true (min finish.(0) finish.(1) > 2_500)

let test_fifo_never_preempts () =
  let sim = make_sim () in
  let sched = Sched.create ~policy:Sched.Fifo sim in
  let finish = Array.make 2 0 in
  for i = 0 to 1 do
    ignore
      (Sim.spawn sim ~name:(Printf.sprintf "cruncher.%d" i) (fun _ ->
           Sim.compute 1_000;
           finish.(i) <- Sim.now sim))
  done;
  Sim.run sim;
  Alcotest.(check int) "no preemptions" 0 (counter sim "preemptions");
  Alcotest.(check int) "no expiries" 0 (sched_stat sched "quantum_expiries");
  (* Run-to-block: strictly serial, spawn order — the first finisher
     paid exactly one process switch, not an interleaving's worth. *)
  Alcotest.(check bool) "fifo order" true (finish.(0) < finish.(1));
  Alcotest.(check bool) "first finished serially" true (finish.(0) < 2_500)

let test_preemption_preserves_results () =
  (* The same computation, with and without a storm of preemptions,
     must produce identical process-visible results — preemption moves
     time, never values. *)
  let run ~quantum =
    let sim = make_sim () in
    ignore (Sched.create ~policy:(Sched.Mlf { levels = 2; base_quantum = quantum; age_after = 1_000_000 }) sim);
    let acc = ref [] in
    for i = 0 to 2 do
      ignore
        (Sim.spawn sim ~name:(Printf.sprintf "w.%d" i) (fun _ ->
             for step = 1 to 4 do
               Sim.compute 250;
               acc := (i, step) :: !acc
             done))
    done;
    Sim.run sim;
    List.sort compare !acc
  in
  Alcotest.(check (list (pair int int)))
    "results schedule-invariant" (run ~quantum:1_000_000) (run ~quantum:64)

(* ----- Eligibility ----- *)

let test_eligibility_cap_serializes () =
  (* Two VPs but cap 1: the second process must wait for the first to
     retire, even though a processor sits idle. *)
  let sim = make_sim ~vps:2 () in
  let sched = Sched.create ~eligibility_cap:1 sim in
  let span = Array.make 2 (0, 0) in
  for i = 0 to 1 do
    ignore
      (Sim.spawn sim ~name:(Printf.sprintf "job.%d" i) (fun _ ->
           let t0 = Sim.now sim in
           Sim.compute 500;
           span.(i) <- (t0, Sim.now sim)))
  done;
  Sim.run sim;
  Alcotest.(check bool) "second stalled" true (sched_stat sched "eligibility.stalls" >= 1);
  let _, end0 = span.(0) and start1, _ = span.(1) in
  Alcotest.(check bool) "no overlap under cap 1" true (start1 >= end0);
  Alcotest.(check int) "eligibility drained" 0 (Sched.eligible_count sched)

let test_release_eligibility_admits_stalled () =
  (* Holder surrenders eligibility mid-life (a terminal wait): the
     stalled process must run DURING the holder's wait, not after it. *)
  let sim = make_sim ~vps:2 () in
  let sched = Sched.create ~eligibility_cap:1 sim in
  let waiter_ran_at = ref (-1) in
  let holder_done_at = ref (-1) in
  let tty = Sim.new_channel sim ~name:"tty" in
  ignore
    (Sim.spawn sim ~name:"holder" (fun pid ->
         Sim.compute 200;
         Sched.release_eligibility sched pid;
         Sim.at sim ~delay:5_000 (fun () -> Sim.wakeup sim tty);
         Sim.block tty;
         Sim.compute 100;
         holder_done_at := Sim.now sim));
  ignore
    (Sim.spawn sim ~name:"stalled" (fun _ ->
         Sim.compute 100;
         waiter_ran_at := Sim.now sim));
  Sim.run sim;
  Alcotest.(check bool) "stalled process ran" true (!waiter_ran_at > 0);
  Alcotest.(check bool) "ran during the terminal wait" true (!waiter_ran_at < !holder_done_at)

let test_negotiated_cap () =
  Alcotest.(check int) "24 frames / ws 6" 4 (Sched.negotiated_cap ~core_frames:24 ~working_set:6);
  Alcotest.(check int) "never zero" 1 (Sched.negotiated_cap ~core_frames:2 ~working_set:6)

(* ----- MLF aging ----- *)

let test_mlf_aging_promotes () =
  let m = Sched.Mlf.create ~levels:2 ~base_quantum:10 ~age_after:100 in
  (* Sink pid 1 to level 1. *)
  Sched.Mlf.enqueue m ~now:0 1;
  Alcotest.(check (option int)) "select 1" (Some 1) (Sched.Mlf.select m ~now:0);
  Sched.Mlf.expired m 1;
  Sched.Mlf.enqueue m ~now:0 1;
  Sched.Mlf.enqueue m ~now:0 2;
  Alcotest.(check int) "doubled quantum at level 1" 20 (Sched.Mlf.quantum m 1);
  (* Level 0 wins while pid 1 is young... *)
  Alcotest.(check (option int)) "level 0 first" (Some 2) (Sched.Mlf.select m ~now:50);
  Sched.Mlf.enqueue m ~now:50 2;
  (* ... but once it has waited past age_after it is promoted and, at
     level 0, reachable ahead of fresh arrivals behind it. *)
  Alcotest.(check (option int)) "aged select" (Some 2) (Sched.Mlf.select m ~now:150);
  Alcotest.(check bool) "promotion counted" true (Sched.Mlf.promotions m >= 1);
  Alcotest.(check (option int)) "promoted pid surfaces" (Some 1) (Sched.Mlf.select m ~now:150)

let test_mlf_block_boosts () =
  let m = Sched.Mlf.create ~levels:3 ~base_quantum:10 ~age_after:1_000 in
  Sched.Mlf.enqueue m ~now:0 7;
  ignore (Sched.Mlf.select m ~now:0);
  Sched.Mlf.expired m 7;
  Sched.Mlf.expired m 7;
  Alcotest.(check int) "sunk to level 2" 40 (Sched.Mlf.quantum m 7);
  Sched.Mlf.blocked m 7;
  Alcotest.(check int) "interactive boost to level 0" 10 (Sched.Mlf.quantum m 7)

let test_aging_under_daemon_flood () =
  (* Sustained interactive+daemon load over one VP: the batch job sinks
     to the bottom queue but still completes, with aging engaged. *)
  let r =
    Workload.run
      {
        Workload.default with
        seed = 7;
        users = 6;
        interactions = 6;
        think = 500;
        service = 800;
        working_set = 2;
        passes = 1;
        batch = 1;
        batch_chunks = 4;
        batch_chunk = 2_000;
        daemons = 2;
        gate_calls = false;
        vps = 1;
        policy = Workload.Use_mlf;
      }
  in
  Alcotest.(check int) "batch completed despite flood" 1 r.Workload.r_batch_turnaround.count;
  Alcotest.(check int) "all interactions served" 36 r.Workload.r_completed

(* ----- The preempt-storm fault site ----- *)

let test_preempt_storm_is_fail_secure () =
  let base = { Workload.default with seed = 11; users = 4; interactions = 3; batch = 1; daemons = 1 } in
  let calm = Workload.run base in
  let storm = Workload.run { base with fault_spec = "sched.preempt_storm=every:2" } in
  Alcotest.(check bool) "storm forced preemptions" true
    (List.assoc "preempt.storms" storm.Workload.r_sched > 0);
  (* The storm may only slow things down: same work completed, same
     mediation decisions, same audit totals. *)
  Alcotest.(check int) "same interactions" calm.Workload.r_completed storm.Workload.r_completed;
  Alcotest.(check int) "same grants" calm.Workload.r_audit_granted storm.Workload.r_audit_granted;
  Alcotest.(check int) "same refusals" calm.Workload.r_audit_refused storm.Workload.r_audit_refused;
  Alcotest.(check int) "same mediation digest" calm.Workload.r_signature storm.Workload.r_signature

let test_storm_site_named () =
  Alcotest.(check (option string))
    "site name round-trips" (Some "sched.preempt_storm")
    (Option.map Fault.site_name (Fault.site_of_name "sched.preempt_storm"))

(* ----- The gates ----- *)

let login_operator system =
  ignore
    (System.add_account system ~person:"Op" ~project:"Sys" ~password:"pw"
       ~clearance:Multics_access.Label.unclassified);
  match System.login system ~person:"Op" ~project:"Sys" ~password:"pw" with
  | Ok handle -> handle
  | Error e -> failwith (System.login_error_to_string e)

let test_gates_without_scheduler () =
  let system = System.create Config.kernel_6180 in
  let handle = login_operator system in
  (match Gate_calls.sched_status system ~handle with
  | Error Api.No_scheduler -> ()
  | Ok _ -> Alcotest.fail "sched_status succeeded with no scheduler"
  | Error e -> Alcotest.failf "unexpected error: %s" (Api.error_to_string e));
  match Gate_calls.sched_tune system ~handle ~param:"cap" ~value:4 with
  | Error Api.No_scheduler -> ()
  | _ -> Alcotest.fail "sched_tune should refuse with no scheduler"

let test_gates_with_scheduler () =
  let system = System.create Config.kernel_6180 in
  let handle = login_operator system in
  let sim = make_sim () in
  let sched = Sched.create sim in
  Sched.register sched system;
  (match Gate_calls.sched_status system ~handle with
  | Ok (policy, counters) ->
      Alcotest.(check string) "policy name" "mlf" policy;
      Alcotest.(check bool) "counters present" true (List.mem_assoc "dispatches" counters)
  | Error e -> Alcotest.failf "sched_status: %s" (Api.error_to_string e));
  (match Gate_calls.sched_tune system ~handle ~param:"cap" ~value:3 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "sched_tune cap: %s" (Api.error_to_string e));
  Alcotest.(check int) "cap took effect" 3 (Sched.eligibility_cap sched);
  (match Gate_calls.sched_tune system ~handle ~param:"cap" ~value:(-1) with
  | Error (Api.Bad_tune _) -> ()
  | _ -> Alcotest.fail "negative cap must be refused");
  (match Gate_calls.sched_tune system ~handle ~param:"warp" ~value:9 with
  | Error (Api.Bad_tune _) -> ()
  | _ -> Alcotest.fail "unknown parameter must be refused");
  (* Gate traffic is audited like any other operator surface. *)
  let ops =
    Multics_kernel.Audit_log.records (System.audit system)
    |> List.filter (fun (r : Multics_kernel.Audit_log.record) ->
           String.length r.operation >= 5 && String.sub r.operation 0 5 = "sched")
  in
  Alcotest.(check bool) "sched gate calls audited" true (List.length ops >= 4)

let test_tune_rejects_policy_mismatch () =
  let sim = make_sim () in
  let sched = Sched.create ~policy:Sched.Fifo sim in
  (match Sched.tune sched ~param:"quantum" ~value:100 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "fifo has no quantum");
  match Sched.tune sched ~param:"cap" ~value:2 with
  | Ok () -> Alcotest.(check int) "cap tunable everywhere" 2 (Sched.eligibility_cap sched)
  | Error why -> Alcotest.failf "cap tune: %s" why

(* ----- Event-queue stability (satellite) ----- *)

let test_event_queue_stable_100_seeds () =
  for seed = 0 to 99 do
    let prng = Prng.create_labeled ~seed ~label:"eq.stability" in
    let q = Event_queue.create () in
    let n = 200 in
    for i = 0 to n - 1 do
      (* Few distinct timestamps: plenty of ties to get wrong. *)
      Event_queue.push q ~time:(Prng.int prng 8) i
    done;
    let rec drain acc = match Event_queue.pop q with
      | None -> List.rev acc
      | Some (time, i) -> drain ((time, i) :: acc)
    in
    let drained = drain [] in
    Alcotest.(check int) "all popped" n (List.length drained);
    ignore
      (List.fold_left
         (fun (pt, pi) (time, i) ->
           if time < pt then Alcotest.failf "seed %d: time went backwards" seed;
           if time = pt && i < pi then
             Alcotest.failf "seed %d: tie broke insertion order (%d before %d)" seed pi i;
           (time, i))
         (-1, -1) drained)
  done

(* ----- The schedule-invariance parity oracle (100 seeds) ----- *)

let parity_spec seed policy =
  {
    Workload.default with
    seed;
    users = 3;
    interactions = 2;
    think = 2_000;
    service = 300;
    working_set = 2;
    passes = 2;
    batch = 1;
    batch_chunks = 2;
    batch_chunk = 500;
    daemons = 1;
    vps = 2;
    cap = 1;
    (* binding cap: policies diverge hard on admission order *)
    policy;
  }

let test_parity_100_seeds () =
  for seed = 0 to 99 do
    let mlf = Workload.run (parity_spec seed Workload.Use_mlf) in
    let fifo = Workload.run (parity_spec seed Workload.Use_fifo) in
    let ext = Workload.run (parity_spec seed Workload.Use_external) in
    List.iter
      (fun (name, (r : Workload.result)) ->
        if r.r_signature <> mlf.Workload.r_signature then
          Alcotest.failf "seed %d: %s mediation digest diverged" seed name;
        Alcotest.(check int)
          (Printf.sprintf "seed %d: %s grants" seed name)
          mlf.Workload.r_audit_granted r.r_audit_granted;
        Alcotest.(check int)
          (Printf.sprintf "seed %d: %s refusals" seed name)
          mlf.Workload.r_audit_refused r.r_audit_refused;
        Alcotest.(check int)
          (Printf.sprintf "seed %d: %s completed" seed name)
          mlf.Workload.r_completed r.r_completed)
      [ ("fifo", fifo); ("external", ext) ]
  done

let test_workload_deterministic () =
  let spec = { Workload.default with seed = 5; users = 4; interactions = 3 } in
  let a = Workload.run spec and b = Workload.run spec in
  Alcotest.(check int) "same cycles" a.Workload.r_cycles b.Workload.r_cycles;
  Alcotest.(check int) "same faults" a.Workload.r_page_faults b.Workload.r_page_faults;
  Alcotest.(check int) "same digest" a.Workload.r_signature b.Workload.r_signature;
  Alcotest.(check (float 0.0001)) "same p99" a.Workload.r_response.p99 b.Workload.r_response.p99

let test_thrashing_knee_shape () =
  (* Cap within the frame budget vs. far beyond it: over-admission must
     multiply page faults per interaction — the knee E17 charts. *)
  let spec cap =
    {
      Workload.default with
      seed = 3;
      users = 12;
      interactions = 2;
      think = 1_000;
      service = 500;
      working_set = 6;
      passes = 3;
      batch = 0;
      daemons = 0;
      gate_calls = false;
      vps = 4;
      core = 26;
      bulk = 40;
      disk = 200;
      cap;
    }
  in
  let fit = Workload.run (spec 4) in
  let thrash = Workload.run (spec 12) in
  let per_interaction (r : Workload.result) =
    float_of_int r.r_page_faults /. float_of_int (max 1 r.r_completed)
  in
  Alcotest.(check bool) "both completed" true
    (fit.Workload.r_completed = 24 && thrash.Workload.r_completed = 24);
  Alcotest.(check bool) "over-admission thrashes" true
    (per_interaction thrash > 2. *. per_interaction fit)

let suite =
  [
    Alcotest.test_case "quantum: preempts and interleaves" `Quick test_quantum_preempts_and_interleaves;
    Alcotest.test_case "quantum: fifo never preempts" `Quick test_fifo_never_preempts;
    Alcotest.test_case "quantum: preemption preserves results" `Quick test_preemption_preserves_results;
    Alcotest.test_case "eligibility: cap serializes" `Quick test_eligibility_cap_serializes;
    Alcotest.test_case "eligibility: release admits stalled" `Quick test_release_eligibility_admits_stalled;
    Alcotest.test_case "eligibility: negotiated cap" `Quick test_negotiated_cap;
    Alcotest.test_case "mlf: aging promotes" `Quick test_mlf_aging_promotes;
    Alcotest.test_case "mlf: block boosts" `Quick test_mlf_block_boosts;
    Alcotest.test_case "mlf: aging under daemon flood" `Quick test_aging_under_daemon_flood;
    Alcotest.test_case "fault: preempt storm fail-secure" `Quick test_preempt_storm_is_fail_secure;
    Alcotest.test_case "fault: storm site named" `Quick test_storm_site_named;
    Alcotest.test_case "gates: refused without scheduler" `Quick test_gates_without_scheduler;
    Alcotest.test_case "gates: status and tune" `Quick test_gates_with_scheduler;
    Alcotest.test_case "gates: tune policy mismatch" `Quick test_tune_rejects_policy_mismatch;
    Alcotest.test_case "event queue: stable over 100 seeds" `Quick test_event_queue_stable_100_seeds;
    Alcotest.test_case "parity: 100 seeds x 3 policies" `Slow test_parity_100_seeds;
    Alcotest.test_case "workload: deterministic" `Quick test_workload_deterministic;
    Alcotest.test_case "workload: thrashing knee" `Quick test_thrashing_knee_shape;
  ]
