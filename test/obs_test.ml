(* Tests for Multics_obs: counters, histogram bucketing, spans,
   registries, snapshot rendering and the global enable switch. *)

module Obs = Multics_obs.Obs

(* Every test works against a private registry so the suite cannot be
   confounded by (or confound) the kernel's global instruments. *)
let fresh name = Obs.Registry.create ~name

let test_counter_basics () =
  let r = fresh "counters" in
  let c = Obs.Registry.counter r "calls" in
  Alcotest.(check int) "fresh counter reads 0" 0 (Obs.Counter.get c);
  Obs.Counter.incr c;
  Obs.Counter.incr c ~by:5;
  Alcotest.(check int) "incr accumulates" 6 (Obs.Counter.get c);
  Obs.Counter.set c 42;
  Alcotest.(check int) "set overrides (gauge style)" 42 (Obs.Counter.get c);
  Alcotest.(check string) "counter keeps its name" "calls" (Obs.Counter.name c)

let test_counter_memoized () =
  let r = fresh "memo" in
  let a = Obs.Registry.counter r "x" in
  let b = Obs.Registry.counter r "x" in
  Obs.Counter.incr a;
  Alcotest.(check int) "same name resolves to the same instrument" 1 (Obs.Counter.get b)

let test_disabled_is_inert () =
  let r = fresh "switch" in
  let c = Obs.Registry.counter r "c" in
  let h = Obs.Registry.histogram r "h" in
  Obs.with_disabled (fun () ->
      Obs.Counter.incr c;
      Obs.Counter.set c 99;
      Obs.Histogram.observe h 7);
  Alcotest.(check bool) "switch restored" true (Obs.enabled ());
  Alcotest.(check int) "disabled incr/set are no-ops" 0 (Obs.Counter.get c);
  Alcotest.(check int) "disabled observe is a no-op" 0 (Obs.Histogram.count h);
  Obs.Counter.incr c;
  Alcotest.(check int) "recording resumes after restore" 1 (Obs.Counter.get c)

let test_bucket_index_edges () =
  let cases =
    [ (0, 0); (1, 0); (2, 1); (3, 1); (4, 2); (7, 2); (8, 3); (1023, 9); (1024, 10); (1025, 10) ]
  in
  List.iter
    (fun (sample, bucket) ->
      Alcotest.(check int)
        (Printf.sprintf "bucket_index %d" sample)
        bucket
        (Obs.Histogram.bucket_index sample))
    cases;
  Alcotest.(check int) "bucket 0 starts at 0" 0 (Obs.Histogram.bucket_lower_bound 0);
  Alcotest.(check int) "bucket 5 starts at 32" 32 (Obs.Histogram.bucket_lower_bound 5)

let test_histogram_stats () =
  let r = fresh "hist" in
  let h = Obs.Registry.histogram r "cycles" in
  Alcotest.(check int) "empty count" 0 (Obs.Histogram.count h);
  Alcotest.(check (float 0.001)) "empty mean" 0.0 (Obs.Histogram.mean h);
  List.iter (Obs.Histogram.observe h) [ 3; 5; 100; 100; 7 ];
  Alcotest.(check int) "count" 5 (Obs.Histogram.count h);
  Alcotest.(check int) "sum" 215 (Obs.Histogram.sum h);
  Alcotest.(check (float 0.001)) "mean" 43.0 (Obs.Histogram.mean h);
  Alcotest.(check int) "min" 3 (Obs.Histogram.min_value h);
  Alcotest.(check int) "max" 100 (Obs.Histogram.max_value h);
  (* 3 lands in bucket 1 [2,3]; 5 and 7 in bucket 2 [4,7]; the two
     100s in bucket 6 [64,127]. *)
  Alcotest.(check (list (pair int int)))
    "buckets" [ (2, 1); (4, 2); (64, 2) ] (Obs.Histogram.buckets h);
  (* Median sits in bucket 2, whose upper bound is 7. *)
  Alcotest.(check int) "p50 bucket upper bound" 7 (Obs.Histogram.quantile h 0.5);
  Alcotest.(check int) "p100 clamps to observed max" 100 (Obs.Histogram.quantile h 1.0)

let test_span () =
  let r = fresh "spans" in
  let s = Obs.Registry.span r "dispatch" in
  Obs.Span.enter s;
  Obs.Span.enter s;
  Alcotest.(check int) "live tracks nesting" 2 (Obs.Span.live s);
  Obs.Span.leave s ~cycles:10;
  Obs.Span.leave s ~cycles:30;
  Obs.Span.record s ~cycles:20;
  Alcotest.(check int) "live back to 0" 0 (Obs.Span.live s);
  Alcotest.(check int) "entries" 3 (Obs.Span.entries s);
  Alcotest.(check int) "max depth" 2 (Obs.Span.max_depth s);
  Alcotest.(check int) "cycles histogram fed" 60 (Obs.Histogram.sum (Obs.Span.cycles s))

let test_registry_reset () =
  let r = fresh "reset" in
  let c = Obs.Registry.counter r "c" in
  let h = Obs.Registry.histogram r "h" in
  Obs.Counter.incr c ~by:9;
  Obs.Histogram.observe h 9;
  Obs.Registry.reset r;
  Alcotest.(check int) "counter zeroed" 0 (Obs.Counter.get c);
  Alcotest.(check int) "histogram zeroed" 0 (Obs.Histogram.count h);
  Alcotest.(check (list (pair string int))) "still registered" [ ("c", 0) ] (Obs.Registry.counters r)

let test_snapshot_capture_and_diff () =
  let r = fresh "snap" in
  let c = Obs.Registry.counter r "gate.calls" in
  Obs.Counter.incr c ~by:3;
  let before = Obs.Snapshot.capture ~registry:r () in
  Obs.Counter.incr c ~by:4;
  Obs.Histogram.observe (Obs.Registry.histogram r "lat") 12;
  let after = Obs.Snapshot.capture ~registry:r () in
  Alcotest.(check (list (pair string int)))
    "capture reads counters" [ ("gate.calls", 7) ] after.Obs.Snapshot.counters;
  let d = Obs.Snapshot.diff ~before ~after in
  Alcotest.(check (list (pair string int)))
    "diff attributes only the delta" [ ("gate.calls", 4) ] d.Obs.Snapshot.counters;
  (match d.Obs.Snapshot.histograms with
  | [ ("lat", hd) ] ->
      Alcotest.(check int) "diffed histogram count" 1 hd.Obs.Snapshot.count;
      Alcotest.(check int) "diffed histogram sum" 12 hd.Obs.Snapshot.sum
  | _ -> Alcotest.fail "expected one diffed histogram");
  Alcotest.(check bool) "after is not empty" false (Obs.Snapshot.is_empty after);
  Alcotest.(check bool) "self-diff is empty" true
    (Obs.Snapshot.is_empty (Obs.Snapshot.diff ~before:after ~after))

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_snapshot_text () =
  let r = fresh "text" in
  Alcotest.(check bool) "empty snapshot says so" true
    (contains ~needle:"no recorded activity"
       (Obs.Snapshot.to_text (Obs.Snapshot.capture ~registry:r ())));
  Obs.Counter.incr (Obs.Registry.counter r "gate.calls") ~by:21;
  Obs.Span.record (Obs.Registry.span r "gate.dispatch") ~cycles:34;
  let text = Obs.Snapshot.to_text (Obs.Snapshot.capture ~registry:r ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("text mentions " ^ needle) true (contains ~needle text))
    [ "gate.calls"; "21"; "gate.dispatch"; "counters"; "spans" ]

let test_snapshot_json () =
  let r = fresh "json" in
  Obs.Counter.incr (Obs.Registry.counter r "a\"b") ~by:2;
  Obs.Histogram.observe (Obs.Registry.histogram r "h") 5;
  let json = Obs.Snapshot.to_json (Obs.Snapshot.capture ~registry:r ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json mentions " ^ needle) true (contains ~needle json))
    [
      "\"registry\":\"json\"";
      "\"counters\"";
      "\"a\\\"b\":2";
      "\"histograms\"";
      "\"count\":1";
      "\"buckets\":[{\"ge\":4,\"count\":1}]";
    ]

let test_histogram_sum_saturates () =
  (* Multi-billion-cycle SMP runs can overflow a naive running total;
     the sum must pin at [max_int] and flag itself, never wrap to a
     plausible-looking small number. *)
  let r = fresh "sat" in
  let h = Obs.Registry.histogram r "cycles" in
  Obs.Histogram.observe h max_int;
  Alcotest.(check bool) "one huge sample does not saturate" false (Obs.Histogram.saturated h);
  Alcotest.(check int) "sum holds the sample" max_int (Obs.Histogram.sum h);
  Obs.Histogram.observe h max_int;
  Alcotest.(check bool) "overflow saturates" true (Obs.Histogram.saturated h);
  Alcotest.(check int) "sum pinned at max_int, not wrapped" max_int (Obs.Histogram.sum h);
  Alcotest.(check bool) "sum stays non-negative" true (Obs.Histogram.sum h > 0);
  Obs.Histogram.observe h 5;
  Alcotest.(check int) "later samples cannot move a pinned sum" max_int (Obs.Histogram.sum h);
  Alcotest.(check int) "count still advances" 3 (Obs.Histogram.count h);
  let snap = Obs.Snapshot.capture ~registry:r () in
  (match snap.Obs.Snapshot.histograms with
  | [ ("cycles", hd) ] ->
      Alcotest.(check bool) "snapshot carries the flag" true hd.Obs.Snapshot.saturated
  | _ -> Alcotest.fail "expected one histogram");
  Alcotest.(check bool) "text rendering marks saturation" true
    (contains ~needle:"saturated" (Obs.Snapshot.to_text snap));
  Obs.Registry.reset r;
  Alcotest.(check bool) "reset clears the flag" false (Obs.Histogram.saturated h);
  Alcotest.(check int) "reset clears the sum" 0 (Obs.Histogram.sum h)

let test_snapshot_merge () =
  (* Instrument-wise sum, keyed union: counters add, histogram buckets
     add, span depths take the max.  This is the parallel join path. *)
  let ra = fresh "a" and rb = fresh "b" in
  Obs.Counter.incr (Obs.Registry.counter ra "shared") ~by:3;
  Obs.Counter.incr (Obs.Registry.counter ra "only_a") ~by:1;
  Obs.Counter.incr (Obs.Registry.counter rb "shared") ~by:4;
  Obs.Counter.incr (Obs.Registry.counter rb "only_b") ~by:7;
  Obs.Histogram.observe (Obs.Registry.histogram ra "h") 2;
  Obs.Histogram.observe (Obs.Registry.histogram ra "h") 100;
  Obs.Histogram.observe (Obs.Registry.histogram rb "h") 9;
  let sa = Obs.Registry.span ra "s" and sb = Obs.Registry.span rb "s" in
  Obs.Span.record sa ~cycles:10;
  Obs.Span.enter sb;
  Obs.Span.enter sb;
  Obs.Span.leave sb ~cycles:5;
  Obs.Span.leave sb ~cycles:5;
  let m =
    Obs.Snapshot.merge
      (Obs.Snapshot.capture ~registry:ra ())
      (Obs.Snapshot.capture ~registry:rb ())
  in
  let counter name = List.assoc name m.Obs.Snapshot.counters in
  Alcotest.(check int) "shared counters add" 7 (counter "shared");
  Alcotest.(check int) "a-only passes through" 1 (counter "only_a");
  Alcotest.(check int) "b-only passes through" 7 (counter "only_b");
  let h = List.assoc "h" m.Obs.Snapshot.histograms in
  Alcotest.(check int) "histogram counts add" 3 h.Obs.Snapshot.count;
  Alcotest.(check int) "histogram sums add" 111 h.Obs.Snapshot.sum;
  Alcotest.(check int) "merged min" 2 h.Obs.Snapshot.min_value;
  Alcotest.(check int) "merged max" 100 h.Obs.Snapshot.max_value;
  let s = List.assoc "s" m.Obs.Snapshot.spans in
  Alcotest.(check int) "span entries add" 3 s.Obs.Snapshot.entries;
  Alcotest.(check int) "span max_depth is the max" 2 s.Obs.Snapshot.max_depth

let test_snapshot_merge_saturation () =
  (* The satellite bug this pins down: merging two saturated snapshots
     must stay pinned at max_int with the flag set — a naive sum of two
     near-max_int totals wraps negative and silently drops the flag. *)
  let saturated_snap name =
    let r = fresh name in
    let h = Obs.Registry.histogram r "cycles" in
    Obs.Histogram.observe h max_int;
    Obs.Histogram.observe h max_int;
    let snap = Obs.Snapshot.capture ~registry:r () in
    let hd = List.assoc "cycles" snap.Obs.Snapshot.histograms in
    Alcotest.(check bool) (name ^ " operand saturated") true hd.Obs.Snapshot.saturated;
    snap
  in
  let m = Obs.Snapshot.merge (saturated_snap "sat_a") (saturated_snap "sat_b") in
  let h = List.assoc "cycles" m.Obs.Snapshot.histograms in
  Alcotest.(check bool) "saturated + saturated stays saturated" true h.Obs.Snapshot.saturated;
  Alcotest.(check int) "merged sum pinned at max_int" max_int h.Obs.Snapshot.sum;
  Alcotest.(check bool) "merged sum non-negative" true (h.Obs.Snapshot.sum > 0);
  (* Unsaturated operands whose sums overflow only on merge saturate too. *)
  let big name =
    let r = fresh name in
    Obs.Histogram.observe (Obs.Registry.histogram r "cycles") (max_int - 10);
    Obs.Snapshot.capture ~registry:r ()
  in
  let m2 = Obs.Snapshot.merge (big "big_a") (big "big_b") in
  let h2 = List.assoc "cycles" m2.Obs.Snapshot.histograms in
  Alcotest.(check bool) "overflow on merge saturates" true h2.Obs.Snapshot.saturated;
  Alcotest.(check int) "overflowing merge pinned" max_int h2.Obs.Snapshot.sum

let test_snapshot_absorb () =
  (* Absorbing per-task snapshots in task order must reproduce the
     totals a sequential run records directly. *)
  let seq = fresh "sequential" in
  let split_a = fresh "task_a" and split_b = fresh "task_b" in
  let record r samples =
    List.iter
      (fun v ->
        Obs.Counter.incr (Obs.Registry.counter r "ops");
        Obs.Histogram.observe (Obs.Registry.histogram r "cycles") v)
      samples
  in
  record seq [ 3; 17; 200 ];
  record seq [ 5; 90 ];
  record split_a [ 3; 17; 200 ];
  record split_b [ 5; 90 ];
  let joined = fresh "joined" in
  Obs.Snapshot.absorb ~into:joined (Obs.Snapshot.capture ~registry:split_a ());
  Obs.Snapshot.absorb ~into:joined (Obs.Snapshot.capture ~registry:split_b ());
  let want = Obs.Snapshot.capture ~registry:seq () in
  let got = Obs.Snapshot.capture ~registry:joined () in
  Alcotest.(check (list (pair string int))) "absorbed counters = sequential"
    want.Obs.Snapshot.counters got.Obs.Snapshot.counters;
  let wh = List.assoc "cycles" want.Obs.Snapshot.histograms in
  let gh = List.assoc "cycles" got.Obs.Snapshot.histograms in
  Alcotest.(check int) "count" wh.Obs.Snapshot.count gh.Obs.Snapshot.count;
  Alcotest.(check int) "sum" wh.Obs.Snapshot.sum gh.Obs.Snapshot.sum;
  Alcotest.(check int) "min" wh.Obs.Snapshot.min_value gh.Obs.Snapshot.min_value;
  Alcotest.(check int) "max" wh.Obs.Snapshot.max_value gh.Obs.Snapshot.max_value;
  Alcotest.(check (list (pair int int))) "buckets" wh.Obs.Snapshot.buckets gh.Obs.Snapshot.buckets

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "counter memoized by name" `Quick test_counter_memoized;
    Alcotest.test_case "disabled recording is inert" `Quick test_disabled_is_inert;
    Alcotest.test_case "histogram bucket index edges" `Quick test_bucket_index_edges;
    Alcotest.test_case "histogram statistics" `Quick test_histogram_stats;
    Alcotest.test_case "span nesting and cycles" `Quick test_span;
    Alcotest.test_case "registry reset" `Quick test_registry_reset;
    Alcotest.test_case "snapshot capture and diff" `Quick test_snapshot_capture_and_diff;
    Alcotest.test_case "snapshot text rendering" `Quick test_snapshot_text;
    Alcotest.test_case "snapshot json rendering" `Quick test_snapshot_json;
    Alcotest.test_case "histogram sum saturates" `Quick test_histogram_sum_saturates;
    Alcotest.test_case "snapshot merge" `Quick test_snapshot_merge;
    Alcotest.test_case "snapshot merge keeps saturation" `Quick test_snapshot_merge_saturation;
    Alcotest.test_case "snapshot absorb = sequential totals" `Quick test_snapshot_absorb;
  ]
