(* The access-decision cache (AVC): unit tests for the generic
   associative memory, revocation coverage for every mutating entry
   point of the hierarchy, the salvager's cache invalidation, and the
   100-seed parity property — the cached mediation path must agree with
   fresh recomputation at every step, including under flush storms. *)

open Multics_access
open Multics_machine
open Multics_kernel
module Avc = Multics_cache.Avc
module Hierarchy = Multics_fs.Hierarchy
module Uid = Multics_fs.Uid
module Obs = Multics_obs.Obs

(* Counter names are shared per cache [name], so every test uses its
   own name to keep readings isolated. *)
let counter_of t field = List.assoc field (Avc.counters t)

let test_avc_basics () =
  Obs.set_enabled true;
  let c = Avc.create ~capacity:8 ~name:"t.basics" () in
  Alcotest.(check (option int)) "miss before add" None (Avc.find c 1);
  Avc.add c ~obj:1 1 10;
  Alcotest.(check (option int)) "hit after add" (Some 10) (Avc.find c 1);
  Alcotest.(check int) "size" 1 (Avc.size c);
  Alcotest.(check int) "one hit" 1 (counter_of c "hits");
  Alcotest.(check int) "one miss" 1 (counter_of c "misses")

let test_avc_invalidate_object () =
  Obs.set_enabled true;
  let c = Avc.create ~capacity:8 ~name:"t.inv_obj" () in
  Avc.add c ~obj:1 1 10;
  Avc.add c ~obj:2 2 20;
  Avc.invalidate_object c 1;
  Alcotest.(check (option int)) "stale entry dropped" None (Avc.find c 1);
  Alcotest.(check (option int)) "other object unaffected" (Some 20) (Avc.find c 2);
  Alcotest.(check int) "invalidation counted" 1 (counter_of c "invalidations");
  Avc.add c ~obj:1 1 11;
  Alcotest.(check (option int)) "re-add after invalidation hits" (Some 11) (Avc.find c 1)

let test_avc_invalidate_all () =
  Obs.set_enabled true;
  let c = Avc.create ~capacity:8 ~name:"t.inv_all" () in
  Avc.add c ~obj:1 1 10;
  Avc.add c ~obj:2 2 20;
  Avc.invalidate_all c;
  Alcotest.(check (option int)) "entry 1 dead" None (Avc.find c 1);
  Alcotest.(check (option int)) "entry 2 dead" None (Avc.find c 2)

let test_avc_flush_probe () =
  Obs.set_enabled true;
  let c = Avc.create ~capacity:8 ~name:"t.probe" () in
  Avc.add c ~obj:1 1 10;
  let armed = ref false in
  Avc.set_flush_probe c (Some (fun () -> !armed));
  Alcotest.(check (option int)) "probe quiet: hit" (Some 10) (Avc.find c 1);
  armed := true;
  Alcotest.(check (option int)) "probe fires: flushed before lookup" None (Avc.find c 1);
  Alcotest.(check int) "flush counted" 1 (counter_of c "flushes");
  Alcotest.(check int) "emptied" 0 (Avc.size c)

let test_avc_direct_mapped_displacement () =
  Obs.set_enabled true;
  (* Force every key into one slot: displacement must evict the
     resident entry, and equality must keep a collision from ever
     being served as a hit. *)
  let c = Avc.create ~capacity:4 ~hash:(fun _ -> 0) ~equal:Int.equal ~name:"t.collide" () in
  Avc.add c ~obj:1 1 10;
  Avc.add c ~obj:2 2 20;
  Alcotest.(check (option int)) "displaced entry is a miss" None (Avc.find c 1);
  Alcotest.(check (option int)) "resident entry hits" (Some 20) (Avc.find c 2);
  Alcotest.(check int) "population stays 1" 1 (Avc.size c)

let test_avc_capacity_rounding () =
  let c = Avc.create ~capacity:10 ~name:"t.cap" () in
  Alcotest.(check int) "rounded to power of two" 16 (Avc.capacity c)

let test_avc_find_or_add () =
  Obs.set_enabled true;
  let c = Avc.create ~capacity:8 ~name:"t.foa" () in
  let computes = ref 0 in
  let compute () = incr computes; 42 in
  Alcotest.(check (pair int bool)) "first computes" (42, false) (Avc.find_or_add c ~obj:1 1 compute);
  Alcotest.(check (pair int bool)) "second hits" (42, true) (Avc.find_or_add c ~obj:1 1 compute);
  Alcotest.(check int) "computed once" 1 !computes

let test_avc_keys_skip_stale () =
  let c = Avc.create ~capacity:8 ~name:"t.keys" () in
  Avc.add c ~obj:1 1 10;
  Avc.add c ~obj:2 2 20;
  Avc.invalidate_object c 2;
  Alcotest.(check (list int)) "only fresh keys" [ 1 ] (List.sort compare (Avc.keys c))

let test_gen_sparse_and_dense_ids () =
  (* Small non-negative ids take the dense-array path; huge or negative
     ids (hashed page ids) take the hashtable fallback.  Both must
     count bumps correctly. *)
  let g = Avc.Gen.create () in
  Alcotest.(check int) "unbumped dense id" 0 (Avc.Gen.of_object g 3);
  Avc.Gen.bump_object g 3;
  Avc.Gen.bump_object g 3;
  Alcotest.(check int) "dense id bumped twice" 2 (Avc.Gen.of_object g 3);
  Alcotest.(check int) "dense id beyond initial array" 0 (Avc.Gen.of_object g 5_000);
  Avc.Gen.bump_object g 5_000;
  Alcotest.(check int) "grown dense id" 1 (Avc.Gen.of_object g 5_000);
  Avc.Gen.bump_object g (-7);
  Alcotest.(check int) "negative id via fallback" 1 (Avc.Gen.of_object g (-7));
  Avc.Gen.bump_object g max_int;
  Alcotest.(check int) "huge id via fallback" 1 (Avc.Gen.of_object g max_int);
  Avc.Gen.bump_global g;
  Alcotest.(check int) "global independent" 1 (Avc.Gen.global g)

let test_gen_sparse_table_bounded () =
  (* The long-run leak: hashed page ids churn forever (objects die,
     ids are never reused), so without pruning the sparse table grows
     without bound.  Churn 10^5 distinct hashed ids and demand the
     table stays within its limit, compacting as it goes. *)
  let churn = 100_000 in
  let hashed i = (1 lsl 16) + i in
  let c = Avc.create ~capacity:16 ~hash:(fun k -> k) ~equal:Int.equal ~name:"t.gen_churn" () in
  let g = Avc.gens c in
  (* A verdict revoked before the churn must stay revoked across every
     compaction: a compaction resets the per-object counter the entry
     was stamped against, which would resurrect it were the global
     epoch not bumped first. *)
  let victim = hashed (churn + 1) in
  Avc.add c ~obj:victim victim 99;
  Alcotest.(check (option int)) "victim cached" (Some 99) (Avc.find c victim);
  Avc.invalidate_object c victim;
  for i = 0 to churn - 1 do
    Avc.Gen.bump_object g (hashed i)
  done;
  Alcotest.(check bool) "sparse table bounded" true
    (Avc.Gen.sparse_size g <= Avc.Gen.sparse_limit);
  let floor = (churn / Avc.Gen.sparse_limit) - 1 in
  Alcotest.(check bool)
    (Printf.sprintf "compactions happened (>= %d)" floor)
    true
    (Avc.Gen.compactions g >= floor);
  Alcotest.(check (option int)) "revoked verdict never resurrected" None (Avc.find c victim);
  (* The cache still works after compaction: fresh entries hit. *)
  Avc.add c ~obj:victim victim 7;
  Alcotest.(check (option int)) "fresh entry after compaction hits" (Some 7) (Avc.find c victim)

(* ----- Revocation through every mutating entry point ----- *)

let operator =
  Policy.subject ~trusted:true
    ~principal:(Principal.make ~person:"Initializer" ~project:"SysDaemon" ~tag:"z")
    ~clearance:(Label.system_high []) ~ring:(Ring.of_int 1) ()

let alice =
  Policy.subject
    ~principal:(Principal.make ~person:"Alice" ~project:"Dev" ~tag:"a")
    ~clearance:Label.unclassified ~ring:(Ring.of_int 4) ()

let fs_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.fail (what ^ ": " ^ Hierarchy.error_to_string e)

let permissive_acl = Acl.of_strings [ ("*.*.*", "rw"); ("Initializer.*.*", "rew") ]

let make_segment h name =
  fs_ok ("create " ^ name)
    (Hierarchy.create_segment h ~subject:operator ~dir:Uid.root ~name ~acl:permissive_acl
       ~label:Label.unclassified)

let verdict = Alcotest.testable Policy.pp_verdict ( = )

let check_both h ~subject ~uid ~requested =
  let fresh = Hierarchy.check_access_fresh h ~subject ~uid ~requested in
  let cached = Hierarchy.check_access h ~subject ~uid ~requested in
  Alcotest.(check (option verdict)) "cached = fresh" fresh cached;
  cached

let test_set_acl_revokes () =
  let h = Hierarchy.create () in
  let uid = make_segment h "s" in
  (match check_both h ~subject:alice ~uid ~requested:Mode.rw with
  | Some Policy.Permit -> ()
  | _ -> Alcotest.fail "expected initial permit");
  fs_ok "set_acl"
    (Hierarchy.set_acl h ~subject:operator ~uid ~acl:(Acl.of_strings [ ("Initializer.*.*", "rew") ]));
  match check_both h ~subject:alice ~uid ~requested:Mode.rw with
  | Some (Policy.Refuse _) -> ()
  | _ -> Alcotest.fail "ACL edit did not revoke the cached grant"

let test_raw_set_label_revokes () =
  let h = Hierarchy.create () in
  let uid = make_segment h "s" in
  ignore (check_both h ~subject:alice ~uid ~requested:Mode.r);
  Alcotest.(check bool) "raw_set_label applies" true
    (Hierarchy.raw_set_label h ~uid ~label:(Label.make Label.Top_secret [ "crypto" ]));
  match check_both h ~subject:alice ~uid ~requested:Mode.r with
  | Some (Policy.Refuse _) -> ()
  | _ -> Alcotest.fail "label change did not revoke the cached grant"

let test_delete_revokes () =
  let h = Hierarchy.create () in
  let uid = make_segment h "s" in
  ignore (check_both h ~subject:alice ~uid ~requested:Mode.r);
  ignore (fs_ok "delete" (Hierarchy.delete_entry h ~subject:operator ~dir:Uid.root ~name:"s"));
  Alcotest.(check (option verdict)) "deleted object unanswerable" None
    (Hierarchy.check_access h ~subject:alice ~uid ~requested:Mode.r)

let test_set_brackets_applies_on_cached_path () =
  (* Ring brackets are recomputed on every reference (as on the 6180),
     so a bracket edit takes effect even while the policy verdict is
     served from the cache. *)
  let h = Hierarchy.create () in
  let uid = make_segment h "s" in
  (match check_both h ~subject:alice ~uid ~requested:Mode.r with
  | Some Policy.Permit -> ()
  | _ -> Alcotest.fail "expected initial permit");
  fs_ok "set_brackets"
    (Hierarchy.set_brackets h ~subject:operator ~uid ~brackets:(Brackets.make ~r1:1 ~r2:1 ~r3:1));
  match check_both h ~subject:alice ~uid ~requested:Mode.r with
  | Some (Policy.Refuse refusals) ->
      Alcotest.(check bool) "refused by the ring check" true
        (List.exists (function Policy.Ring_hardware _ -> true | _ -> false) refusals)
  | _ -> Alcotest.fail "bracket edit did not take effect"

let test_rename_keeps_parity () =
  let h = Hierarchy.create () in
  let uid = make_segment h "s" in
  ignore (check_both h ~subject:alice ~uid ~requested:Mode.r);
  ignore (fs_ok "rename" (Hierarchy.rename_entry h ~subject:operator ~dir:Uid.root ~name:"s" ~new_name:"t"));
  ignore (check_both h ~subject:alice ~uid ~requested:Mode.r)

(* ----- The salvager must invalidate cached verdicts ----- *)

let test_salvage_invalidates_caches () =
  Obs.set_enabled true;
  let system = System.create Config.kernel_6180 in
  ignore
    (System.add_account system ~person:"Alice" ~project:"Dev" ~password:"pw"
       ~clearance:Label.unclassified);
  let handle =
    match System.login system ~person:"Alice" ~project:"Dev" ~password:"pw" with
    | Ok h -> h
    | Error e -> Alcotest.fail (System.login_error_to_string e)
  in
  let segno =
    match
      User_env.create_segment_at system ~handle ~path:">udd>Dev>Alice>scratch"
        ~acl:(Acl.of_strings [ ("Alice.Dev.*", "rw") ])
        ~label:Label.unclassified
    with
    | Ok segno -> segno
    | Error e -> Alcotest.fail (User_env.error_to_string e)
  in
  (* Warm the per-process SDW associative memory and the policy cache. *)
  (match Gate_calls.write_word system ~handle ~segno ~offset:0 ~value:7 with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Api.error_to_string e));
  (match Gate_calls.read_word system ~handle ~segno ~offset:0 with
  | Ok 7 -> ()
  | Ok v -> Alcotest.failf "unexpected word %d" v
  | Error e -> Alcotest.fail (Api.error_to_string e));
  let p = Option.get (System.proc system handle) in
  Alcotest.(check bool) "assoc memory warmed" true (Hardware.Assoc.size p.System.assoc > 0);
  let h = System.hierarchy system in
  let subject = System.subject_of p in
  let uid = fs_ok "resolve" (Hierarchy.resolve h ~subject ~path:">udd>Dev>Alice>scratch") in
  (* Warm the policy cache: the second check is served from it. *)
  ignore (Hierarchy.check_access h ~subject ~uid ~requested:Mode.r);
  ignore (Hierarchy.check_access h ~subject ~uid ~requested:Mode.r);
  let insertions_before = List.assoc "insertions" (Hierarchy.cache_stats h) in
  ignore (Hierarchy.check_access h ~subject ~uid ~requested:Mode.r);
  Alcotest.(check int) "warm check does not re-insert" insertions_before
    (List.assoc "insertions" (Hierarchy.cache_stats h));
  (match Api.Call.dispatch system ~handle Api.Call.Salvage with
  | Ok (Api.Call.Salvaged _) -> ()
  | Ok _ -> Alcotest.fail "unexpected salvage reply"
  | Error e -> Alcotest.fail (Api.error_to_string e));
  Alcotest.(check int) "assoc memory flushed by salvage" 0 (Hardware.Assoc.size p.System.assoc);
  (* Every previously cached policy verdict is stale: the next check
     must recompute and re-insert rather than replay a pre-salvage
     grant. *)
  (match Hierarchy.check_access h ~subject ~uid ~requested:Mode.r with
  | Some Policy.Permit -> ()
  | _ -> Alcotest.fail "expected permit after salvage");
  let insertions_after = List.assoc "insertions" (Hierarchy.cache_stats h) in
  Alcotest.(check bool) "post-salvage check re-derived its verdict" true
    (insertions_after > insertions_before)

(* ----- The 100-seed parity property -----

   Random interleavings of mutations, revocations and flush storms;
   after every step the cached path must agree with fresh
   recomputation for sampled (subject, object, mode) triples. *)

let lcg seed =
  let state = ref (if seed <= 0 then 1 else seed) in
  fun bound ->
    state := !state * 48271 mod 0x7fffffff;
    !state mod bound

let parity_subjects =
  [|
    operator;
    alice;
    Policy.subject
      ~principal:(Principal.make ~person:"Bob" ~project:"Ops" ~tag:"b")
      ~clearance:(Label.make Label.Secret [ "crypto" ])
      ~ring:(Ring.of_int 4) ();
  |]

let parity_acls =
  [|
    permissive_acl;
    Acl.of_strings [ ("Alice.Dev.*", "rw"); ("Initializer.*.*", "rew") ];
    Acl.of_strings [ ("*.*.*", "r"); ("Initializer.*.*", "rew") ];
    Acl.of_strings [ ("Initializer.*.*", "rew") ];
  |]

let parity_labels =
  [|
    Label.unclassified;
    Label.make Label.Confidential [];
    Label.make Label.Secret [ "crypto" ];
    Label.make Label.Top_secret [ "crypto"; "nuclear" ];
  |]

let parity_modes = [| Mode.r; Mode.rw; Mode.w; Mode.re |]

let run_parity_seed seed =
  let rand = lcg (seed + 1) in
  let h = Hierarchy.create () in
  let live = ref [] in
  let fresh_name =
    let n = ref 0 in
    fun () -> incr n; Printf.sprintf "s%d_%d" seed !n
  in
  let storm = ref false in
  (* The flush storm fires through the same probe the fault injector
     uses; roughly one lookup in three while armed. *)
  Hierarchy.set_cache_probe h (Some (fun () -> !storm && rand 3 = 0));
  let create () =
    if List.length !live < 10 then begin
      let name = fresh_name () in
      let uid =
        fs_ok "create"
          (Hierarchy.create_segment h ~subject:operator ~dir:Uid.root ~name
             ~acl:parity_acls.(rand (Array.length parity_acls))
             ~label:parity_labels.(rand (Array.length parity_labels)))
      in
      live := (name, uid) :: !live
    end
  in
  create ();
  let pick_live () = List.nth !live (rand (List.length !live)) in
  let assert_parity () =
    for _ = 1 to 4 do
      let subject = parity_subjects.(rand (Array.length parity_subjects)) in
      let _, uid = pick_live () in
      let requested = parity_modes.(rand (Array.length parity_modes)) in
      let fresh = Hierarchy.check_access_fresh h ~subject ~uid ~requested in
      let cached = Hierarchy.check_access h ~subject ~uid ~requested in
      if cached <> fresh then
        Alcotest.failf "seed %d: cached verdict diverged from fresh recomputation" seed
    done
  in
  for _step = 1 to 40 do
    (match rand 10 with
    | 0 | 1 -> create ()
    | 2 ->
        if List.length !live > 1 then begin
          let name, _ = pick_live () in
          ignore (fs_ok "delete" (Hierarchy.delete_entry h ~subject:operator ~dir:Uid.root ~name));
          live := List.remove_assoc name !live
        end
    | 3 | 4 ->
        let _, uid = pick_live () in
        fs_ok "set_acl"
          (Hierarchy.set_acl h ~subject:operator ~uid
             ~acl:parity_acls.(rand (Array.length parity_acls)))
    | 5 ->
        let _, uid = pick_live () in
        ignore
          (Hierarchy.raw_set_label h ~uid ~label:parity_labels.(rand (Array.length parity_labels)))
    | 6 ->
        let name, uid = pick_live () in
        let new_name = fresh_name () in
        ignore
          (fs_ok "rename"
             (Hierarchy.rename_entry h ~subject:operator ~dir:Uid.root ~name ~new_name));
        live := (new_name, uid) :: List.remove_assoc name !live
    | 7 -> Hierarchy.invalidate_cached_verdicts h
    | 8 -> Hierarchy.flush_cached_verdicts h
    | _ -> storm := not !storm);
    assert_parity ()
  done;
  (* Final full sweep, storm armed. *)
  storm := true;
  List.iter
    (fun (_, uid) ->
      Array.iter
        (fun subject ->
          Array.iter
            (fun requested ->
              let fresh = Hierarchy.check_access_fresh h ~subject ~uid ~requested in
              let cached = Hierarchy.check_access h ~subject ~uid ~requested in
              if cached <> fresh then
                Alcotest.failf "seed %d: final sweep diverged" seed)
            parity_modes)
        parity_subjects)
    !live

let test_parity_100_seeds () =
  for seed = 0 to 99 do
    run_parity_seed seed
  done

let suite =
  [
    Alcotest.test_case "avc: find/add basics" `Quick test_avc_basics;
    Alcotest.test_case "avc: invalidate object" `Quick test_avc_invalidate_object;
    Alcotest.test_case "avc: invalidate all" `Quick test_avc_invalidate_all;
    Alcotest.test_case "avc: flush probe storms" `Quick test_avc_flush_probe;
    Alcotest.test_case "avc: direct-mapped displacement" `Quick test_avc_direct_mapped_displacement;
    Alcotest.test_case "avc: capacity rounds to power of two" `Quick test_avc_capacity_rounding;
    Alcotest.test_case "avc: find_or_add computes once" `Quick test_avc_find_or_add;
    Alcotest.test_case "avc: keys skip stale entries" `Quick test_avc_keys_skip_stale;
    Alcotest.test_case "gen: dense and sparse object ids" `Quick test_gen_sparse_and_dense_ids;
    Alcotest.test_case "gen: sparse table bounded under churn" `Quick test_gen_sparse_table_bounded;
    Alcotest.test_case "revocation: set_acl" `Quick test_set_acl_revokes;
    Alcotest.test_case "revocation: raw_set_label" `Quick test_raw_set_label_revokes;
    Alcotest.test_case "revocation: delete" `Quick test_delete_revokes;
    Alcotest.test_case "revocation: set_brackets on cached path" `Quick
      test_set_brackets_applies_on_cached_path;
    Alcotest.test_case "revocation: rename keeps parity" `Quick test_rename_keeps_parity;
    Alcotest.test_case "salvage invalidates cached verdicts" `Quick test_salvage_invalidates_caches;
    Alcotest.test_case "parity: 100 seeds incl. flush storms" `Quick test_parity_100_seeds;
  ]
