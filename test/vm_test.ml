(* Tests for Multics_vm page control under both disciplines, and for
   the interrupt disciplines in Multics_proc. *)

open Multics_mm
open Multics_proc
open Multics_vm

let setup ?(core = 4) ?(bulk = 6) ?(disk = 40) ?(vps = 6) discipline =
  let sim = Sim.create ~cost:Multics_machine.Cost.h6180 ~virtual_processors:vps in
  let mem = Memory.create ~cost:Multics_machine.Cost.h6180 ~core ~bulk ~disk in
  let pc = Page_control.create sim ~mem ~discipline in
  Page_control.start pc;
  (sim, mem, pc)

let page seg n = Page_id.make ~seg_uid:seg ~page_no:n

let test_hit_costs_no_fault () =
  let sim, mem, pc = setup Page_control.Sequential in
  (match Memory.place mem (page 1 0) ~level:Level.Core with Ok _ -> () | Error _ -> assert false);
  let steps = ref (-1) in
  ignore
    (Sim.spawn sim ~name:"toucher" (fun pid -> steps := Page_control.reference pc ~pid ~page:(page 1 0)));
  Sim.run sim;
  Alcotest.(check int) "no steps on hit" 0 !steps;
  Alcotest.(check int) "no fault recorded" 0 (Page_control.fault_count pc)

let test_zero_fill_fault () =
  let sim, mem, pc = setup Page_control.Sequential in
  ignore (Sim.spawn sim ~name:"toucher" (fun pid -> ignore (Page_control.reference pc ~pid ~page:(page 1 0))));
  Sim.run sim;
  Alcotest.(check int) "one fault" 1 (Page_control.fault_count pc);
  match Memory.location mem (page 1 0) with
  | Some b -> Alcotest.(check string) "in core" "core" (Level.name (Block.level b))
  | None -> Alcotest.fail "page not placed"

let test_sequential_cascade () =
  (* Core 2, bulk 1: the third and later faults must evict, and once
     bulk fills the cascade must reach the disk. *)
  let sim, mem, pc = setup ~core:2 ~bulk:1 ~disk:10 Page_control.Sequential in
  ignore
    (Sim.spawn sim ~name:"storm" (fun pid ->
         for i = 0 to 5 do
           ignore (Page_control.reference pc ~pid ~page:(page 1 i))
         done));
  Sim.run sim;
  let s = Page_control.summarize pc in
  Alcotest.(check int) "six faults" 6 s.Page_control.fault_total;
  Alcotest.(check bool) "cascades happened" true (s.Page_control.cascaded_faults > 0);
  Alcotest.(check bool) "deep cascades happened" true (s.Page_control.deep_cascade_faults > 0);
  Alcotest.(check bool) "conservation" true (Memory.check_conservation mem)

let test_parallel_fault_storm () =
  let sim, mem, pc = setup ~core:4 ~bulk:4 ~disk:60 ~vps:8 Page_control.Parallel_processes in
  for w = 1 to 3 do
    ignore
      (Sim.spawn sim
         ~name:(Printf.sprintf "faulter%d" w)
         (fun pid ->
           for i = 0 to 7 do
             ignore (Page_control.reference pc ~pid ~page:(page w i))
           done))
  done;
  Sim.run sim;
  let s = Page_control.summarize pc in
  Alcotest.(check int) "24 faults" 24 s.Page_control.fault_total;
  Alcotest.(check bool) "conservation" true (Memory.check_conservation mem);
  (* No user process may be left blocked: the freers must have kept
     frames coming. *)
  let stuck =
    List.filter
      (fun pid ->
        match Sim.state_of sim pid with Sim.Blocked _ -> Sim.name_of sim pid <> "pc.core-freer" && Sim.name_of sim pid <> "pc.bulk-freer" | _ -> false)
      (Sim.processes sim)
  in
  Alcotest.(check (list int)) "no stuck faulters" [] stuck

let test_parallel_fault_path_simpler () =
  (* The paper's claim: under the parallel discipline the faulting
     process never runs the eviction cascade itself. *)
  let run discipline =
    let sim, _mem, pc = setup ~core:3 ~bulk:2 ~disk:60 ~vps:8 discipline in
    ignore
      (Sim.spawn sim ~name:"faulter" (fun pid ->
           for i = 0 to 11 do
             ignore (Page_control.reference pc ~pid ~page:(page 9 i))
           done));
    Sim.run sim;
    Page_control.summarize pc
  in
  let seq = run Page_control.Sequential in
  let par = run Page_control.Parallel_processes in
  Alcotest.(check bool) "sequential cascades in faulting process" true
    (seq.Page_control.cascaded_faults > 0);
  Alcotest.(check int) "parallel: faulting process never cascades" 0
    par.Page_control.cascaded_faults;
  Alcotest.(check int) "parallel: never deep-cascades" 0 par.Page_control.deep_cascade_faults

let test_second_chance_prefers_unused () =
  let sim, mem, pc = setup ~core:2 ~bulk:4 ~disk:10 Page_control.Sequential in
  ignore
    (Sim.spawn sim ~name:"w" (fun pid ->
         ignore (Page_control.reference pc ~pid ~page:(page 1 0));
         ignore (Page_control.reference pc ~pid ~page:(page 1 1));
         (* Re-touch page 0 so its used bit is set, then clear page 1's
            bit by sweeping: fault in page 2 and check the victim. *)
         ignore (Page_control.reference pc ~pid ~page:(page 1 0));
         Memory.clear_used mem (page 1 1);
         ignore (Page_control.reference pc ~pid ~page:(page 1 2))));
  Sim.run sim;
  (* Page 1 (unused) should have been evicted, page 0 (used) kept. *)
  (match Memory.location mem (page 1 0) with
  | Some b -> Alcotest.(check string) "used page kept in core" "core" (Level.name (Block.level b))
  | None -> Alcotest.fail "page 0 lost");
  match Memory.location mem (page 1 1) with
  | Some b -> Alcotest.(check string) "unused page evicted" "bulk" (Level.name (Block.level b))
  | None -> Alcotest.fail "page 1 lost"

let test_malicious_policy_denial_only () =
  (* A policy that refuses to pick victims causes denial of use (the
     faulting process eventually fails to progress) but cannot corrupt
     memory: conservation still holds.  Sequential discipline would
     livelock, so use parallel and bound the run. *)
  let sim, mem, pc = setup ~core:2 ~bulk:4 ~disk:10 ~vps:4 Page_control.Parallel_processes in
  Page_control.set_victim_policy pc (fun _ _ -> None);
  let progressed = ref 0 in
  ignore
    (Sim.spawn sim ~name:"victim-user" (fun pid ->
         for i = 0 to 5 do
           ignore (Page_control.reference pc ~pid ~page:(page 3 i));
           incr progressed
         done));
  Sim.run_until sim ~time:2_000_000;
  Alcotest.(check bool) "progress stalled (denial of use)" true (!progressed < 6);
  Alcotest.(check bool) "memory integrity intact" true (Memory.check_conservation mem)

let test_interrupt_inline_perturbs_victim () =
  let sim = Sim.create ~cost:Multics_machine.Cost.h6180 ~virtual_processors:2 in
  let ic = Interrupt.create sim ~discipline:Interrupt.Inline in
  Interrupt.register ic ~name:"tty" ~service_cycles:2_000;
  let victim = Sim.spawn sim ~name:"victim" (fun _ -> Sim.compute 50_000) in
  for i = 1 to 5 do
    Interrupt.post ic ~delay:(5_000 * i) ~name:"tty"
  done;
  Sim.run sim;
  let s = Interrupt.stats_of ic ~name:"tty" in
  Alcotest.(check int) "all handled" 5 s.Interrupt.handled;
  Alcotest.(check int) "victim hit each time" 5 s.Interrupt.victim_hits;
  Alcotest.(check bool) "victim cycles stolen" true (Sim.cycles_of sim victim > 50_000);
  Alcotest.(check bool) "privileged work in borrowed context" true
    (s.Interrupt.borrowed_privileged_cycles > 0)

let test_interrupt_process_discipline_clean () =
  let sim = Sim.create ~cost:Multics_machine.Cost.h6180 ~virtual_processors:3 in
  let ic = Interrupt.create sim ~discipline:Interrupt.Handler_processes in
  Interrupt.register ic ~name:"tty" ~service_cycles:2_000;
  let victim = Sim.spawn sim ~name:"victim" (fun _ -> Sim.compute 50_000) in
  for i = 1 to 5 do
    Interrupt.post ic ~delay:(5_000 * i) ~name:"tty"
  done;
  Sim.run sim;
  let s = Interrupt.stats_of ic ~name:"tty" in
  Alcotest.(check int) "all handled" 5 s.Interrupt.handled;
  Alcotest.(check int) "victim untouched" 0 s.Interrupt.victim_hits;
  Alcotest.(check int) "victim cycles exact" 50_000 (Sim.cycles_of sim victim);
  Alcotest.(check int) "no borrowed privileged work" 0 s.Interrupt.borrowed_privileged_cycles

let test_interrupt_action_runs () =
  let sim = Sim.create ~cost:Multics_machine.Cost.h6180 ~virtual_processors:3 in
  let ic = Interrupt.create sim ~discipline:Interrupt.Handler_processes in
  let fired = ref 0 in
  Interrupt.register ic ~name:"disk" ~service_cycles:100 ~action:(fun () -> incr fired);
  Interrupt.post ic ~delay:10 ~name:"disk";
  Interrupt.post ic ~delay:20 ~name:"disk";
  Sim.run sim;
  Alcotest.(check int) "actions ran" 2 !fired

let test_interrupt_duplicate_rejected () =
  let sim = Sim.create ~cost:Multics_machine.Cost.h6180 ~virtual_processors:2 in
  let ic = Interrupt.create sim ~discipline:Interrupt.Inline in
  Interrupt.register ic ~name:"tape" ~service_cycles:10;
  Alcotest.(check bool) "duplicate rejected" true
    (try
       Interrupt.register ic ~name:"tape" ~service_cycles:10;
       false
     with Invalid_argument _ -> true)

(* Property: random fault workloads preserve memory conservation under
   both disciplines and never lose a page. *)
let storm_conservation_prop =
  let gen = QCheck.Gen.(pair bool (list_size (int_range 1 60) (int_range 0 19))) in
  QCheck.Test.make ~name:"fault storms preserve conservation" ~count:40 (QCheck.make gen)
    (fun (parallel, refs) ->
      let discipline =
        if parallel then Page_control.Parallel_processes else Page_control.Sequential
      in
      let sim, mem, pc = setup ~core:3 ~bulk:3 ~disk:64 ~vps:6 discipline in
      ignore
        (Sim.spawn sim ~name:"storm" (fun pid ->
             List.iter (fun i -> ignore (Page_control.reference pc ~pid ~page:(page 7 i))) refs));
      Sim.run sim;
      Memory.check_conservation mem)

let suite =
  [
    ("hit costs no fault", `Quick, test_hit_costs_no_fault);
    ("zero fill fault", `Quick, test_zero_fill_fault);
    ("sequential cascade", `Quick, test_sequential_cascade);
    ("parallel fault storm", `Quick, test_parallel_fault_storm);
    ("parallel path simpler", `Quick, test_parallel_fault_path_simpler);
    ("second chance prefers unused", `Quick, test_second_chance_prefers_unused);
    ("malicious policy denies only", `Quick, test_malicious_policy_denial_only);
    ("interrupt inline perturbs", `Quick, test_interrupt_inline_perturbs_victim);
    ("interrupt process clean", `Quick, test_interrupt_process_discipline_clean);
    ("interrupt action runs", `Quick, test_interrupt_action_runs);
    ("interrupt duplicate rejected", `Quick, test_interrupt_duplicate_rejected);
    QCheck_alcotest.to_alcotest storm_conservation_prop;
  ]

(* ----- The backup daemon ----- *)

let test_backup_sweeps_modified_pages () =
  let sim = Sim.create ~cost:Multics_machine.Cost.h6180 ~virtual_processors:4 in
  let mem = Memory.create ~cost:Multics_machine.Cost.h6180 ~core:8 ~bulk:8 ~disk:16 in
  (* Six resident pages, four of them dirtied. *)
  for i = 0 to 5 do
    match Memory.place mem (page 1 i) ~level:Level.Core with
    | Ok _ -> if i < 4 then Memory.dirty mem (page 1 i)
    | Error e -> Alcotest.fail (Memory.error_to_string e)
  done;
  let daemon = Backup.start_exn ~period:50_000 ~sweeps:2 sim ~mem in
  Alcotest.(check int) "four vulnerable before" 4 (List.length (Backup.vulnerable_pages daemon));
  Sim.run sim;
  Alcotest.(check int) "two sweeps ran" 2 (Backup.sweeps_done daemon);
  Alcotest.(check int) "four pages backed up" 4 (Backup.pages_backed_up daemon);
  Alcotest.(check int) "none vulnerable after" 0 (List.length (Backup.vulnerable_pages daemon));
  Alcotest.(check bool) "conservation" true (Memory.check_conservation mem)

let test_backup_catches_new_dirt () =
  (* Pages dirtied between sweeps are caught by the next sweep. *)
  let sim = Sim.create ~cost:Multics_machine.Cost.h6180 ~virtual_processors:4 in
  let mem = Memory.create ~cost:Multics_machine.Cost.h6180 ~core:8 ~bulk:8 ~disk:16 in
  (match Memory.place mem (page 2 0) ~level:Level.Core with
  | Ok _ -> Memory.dirty mem (page 2 0)
  | Error e -> Alcotest.fail (Memory.error_to_string e));
  let daemon = Backup.start_exn ~period:10_000 ~sweeps:3 sim ~mem in
  (* Dirty a second page between the second and third sweeps. *)
  Sim.at sim ~delay:25_000 (fun () ->
      match Memory.place mem (page 2 1) ~level:Level.Core with
      | Ok _ -> Memory.dirty mem (page 2 1)
      | Error _ -> ());
  Sim.run sim;
  Alcotest.(check int) "both pages eventually backed" 2 (Backup.pages_backed_up daemon);
  let per_sweep = List.map snd (Backup.sweep_trace daemon) in
  Alcotest.(check (list int)) "sweep profile" [ 1; 0; 1 ] per_sweep

let test_backup_rejects_bad_args () =
  let sim = Sim.create ~cost:Multics_machine.Cost.h6180 ~virtual_processors:2 in
  let mem = Memory.create ~cost:Multics_machine.Cost.h6180 ~core:2 ~bulk:2 ~disk:4 in
  (match Backup.start ~period:0 ~sweeps:1 sim ~mem with
  | Error (Backup.Bad_period 0) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Backup.pp_error e
  | Ok _ -> Alcotest.fail "zero period accepted");
  (match Backup.start ~period:10 ~sweeps:0 sim ~mem with
  | Error (Backup.Bad_sweeps 0) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Backup.pp_error e
  | Ok _ -> Alcotest.fail "zero sweeps accepted");
  Alcotest.(check string) "json rendering" {|{"error":"backup_bad_period","period":0}|}
    (Backup.error_to_json (Backup.Bad_period 0));
  Alcotest.(check bool) "start_exn still raises" true
    (try
       ignore (Backup.start_exn ~period:0 ~sweeps:1 sim ~mem);
       false
     with Invalid_argument _ -> true)

let backup_suite =
  [
    ("backup sweeps modified pages", `Quick, test_backup_sweeps_modified_pages);
    ("backup catches new dirt", `Quick, test_backup_catches_new_dirt);
    ("backup rejects bad args", `Quick, test_backup_rejects_bad_args);
  ]
