(* Typed-dispatch projections shared by the test suite.

   The legacy per-gate [Api] wrappers are gone; every kernel entry in
   the tests goes through [Api.Call.dispatch] (the single audited
   entry point) and these helpers project each reply back to the shape
   the assertions want.  A mismatched reply is impossible by
   construction — each dispatch arm returns its request's reply
   constructor — so the [invalid_arg] arms keep the impossible loud. *)

open Multics_kernel

let mismatch what = invalid_arg ("gate_calls." ^ what ^ ": dispatch returned a mismatched reply")

let unit_reply what = function
  | Ok Api.Call.Done -> Ok ()
  | Error e -> Error e
  | Ok _ -> mismatch what

let segno_reply what = function
  | Ok (Api.Call.Segno segno) -> Ok segno
  | Error e -> Error e
  | Ok _ -> mismatch what

let dispatch = Api.Call.dispatch

(* ----- Storage-system gates ----- *)

let write_word system ~handle ~segno ~offset ~value =
  unit_reply "write_word" (dispatch system ~handle (Api.Call.Write_word { segno; offset; value }))

let read_word system ~handle ~segno ~offset =
  match dispatch system ~handle (Api.Call.Read_word { segno; offset }) with
  | Ok (Api.Call.Word value) -> Ok value
  | Error e -> Error e
  | Ok _ -> mismatch "read_word"

let set_acl system ~handle ~segno ~acl =
  unit_reply "set_acl" (dispatch system ~handle (Api.Call.Set_acl { segno; acl }))

let set_quota system ~handle ~segno ~quota =
  unit_reply "set_quota" (dispatch system ~handle (Api.Call.Set_quota { segno; quota }))

let create_segment system ~handle ~dir_segno ~name ~acl ~label =
  segno_reply "create_segment"
    (dispatch system ~handle (Api.Call.Create_segment { dir_segno; name; acl; label; brackets = None }))

let create_directory system ~handle ~dir_segno ~name ~acl ~label =
  segno_reply "create_directory"
    (dispatch system ~handle (Api.Call.Create_directory { dir_segno; name; acl; label }))

let list_directory system ~handle ~dir_segno =
  match dispatch system ~handle (Api.Call.List_directory { dir_segno }) with
  | Ok (Api.Call.Names names) -> Ok names
  | Error e -> Error e
  | Ok _ -> mismatch "list_directory"

(* ----- Naming gates ----- *)

let resolve_path system ~handle ~path =
  segno_reply "resolve_path" (dispatch system ~handle (Api.Call.Resolve_path { path }))

let create_segment_by_path system ~handle ~path ~acl ~label =
  segno_reply "create_segment_by_path"
    (dispatch system ~handle (Api.Call.Create_segment_by_path { path; acl; label; brackets = None }))

let terminate_by_path system ~handle ~path =
  unit_reply "terminate_by_path" (dispatch system ~handle (Api.Call.Terminate_by_path { path }))

let initiate_count system ~handle =
  match dispatch system ~handle Api.Call.Initiate_count with
  | Ok (Api.Call.Word count) -> Ok count
  | Error e -> Error e
  | Ok _ -> mismatch "initiate_count"

let get_working_dir system ~handle =
  segno_reply "get_working_dir" (dispatch system ~handle Api.Call.Get_working_dir)

let set_working_dir system ~handle ~dir_segno =
  unit_reply "set_working_dir" (dispatch system ~handle (Api.Call.Set_working_dir { dir_segno }))

(* ----- Linker gates ----- *)

let list_links system ~handle ~segno =
  match dispatch system ~handle (Api.Call.List_links { segno }) with
  | Ok (Api.Call.Links links) -> Ok links
  | Error e -> Error e
  | Ok _ -> mismatch "list_links"

(* ----- Subsystem entry ----- *)

let enter_subsystem system ~handle ~segno ~entry_offset ~name =
  match dispatch system ~handle (Api.Call.Enter_subsystem { segno; entry_offset; name }) with
  | Ok (Api.Call.Entered ring) -> Ok ring
  | Error e -> Error e
  | Ok _ -> mismatch "enter_subsystem"

let exit_subsystem system ~handle =
  match dispatch system ~handle Api.Call.Exit_subsystem with
  | Ok (Api.Call.Entered ring) -> Ok ring
  | Error e -> Error e
  | Ok _ -> mismatch "exit_subsystem"

(* ----- IPC gates ----- *)

let create_channel system ~handle =
  match dispatch system ~handle Api.Call.Create_channel with
  | Ok (Api.Call.Channel channel) -> Ok channel
  | Error e -> Error e
  | Ok _ -> mismatch "create_channel"

let send_wakeup system ~handle ~channel =
  unit_reply "send_wakeup" (dispatch system ~handle (Api.Call.Send_wakeup { channel }))

let block system ~handle ~channel =
  match dispatch system ~handle (Api.Call.Block { channel }) with
  | Ok (Api.Call.Consumed pending) -> Ok pending
  | Error e -> Error e
  | Ok _ -> mismatch "block"

(* ----- I/O gates ----- *)

let attach_device system ~handle ~device =
  unit_reply "attach_device" (dispatch system ~handle (Api.Call.Attach_device { device }))

let detach_device system ~handle ~device =
  unit_reply "detach_device" (dispatch system ~handle (Api.Call.Detach_device { device }))

let device_write system ~handle ~device ~message =
  unit_reply "device_write" (dispatch system ~handle (Api.Call.Device_write { device; message }))

let device_read system ~handle ~device =
  match dispatch system ~handle (Api.Call.Device_read { device }) with
  | Ok (Api.Call.Message message) -> Ok message
  | Error e -> Error e
  | Ok _ -> mismatch "device_read"

(* ----- Process-management gates ----- *)

let create_process system ~handle =
  match dispatch system ~handle Api.Call.Create_process with
  | Ok (Api.Call.Process child) -> Ok child
  | Error e -> Error e
  | Ok _ -> mismatch "create_process"

let destroy_process system ~handle ~target =
  unit_reply "destroy_process" (dispatch system ~handle (Api.Call.Destroy_process { target }))

let new_proc system ~handle =
  match dispatch system ~handle Api.Call.New_proc with
  | Ok (Api.Call.Process fresh) -> Ok fresh
  | Error e -> Error e
  | Ok _ -> mismatch "new_proc"

let proc_info system ~handle =
  match dispatch system ~handle Api.Call.Proc_info with
  | Ok (Api.Call.Info info) -> Ok info
  | Error e -> Error e
  | Ok _ -> mismatch "proc_info"

let list_processes system ~handle =
  match dispatch system ~handle Api.Call.List_processes with
  | Ok (Api.Call.Processes handles) -> Ok handles
  | Error e -> Error e
  | Ok _ -> mismatch "list_processes"

(* ----- Operator surface ----- *)

let sched_status system ~handle =
  match dispatch system ~handle Api.Call.Sched_status with
  | Ok (Api.Call.Sched_report { policy; counters }) -> Ok (policy, counters)
  | Error e -> Error e
  | Ok _ -> mismatch "sched_status"

let sched_tune system ~handle ~param ~value =
  unit_reply "sched_tune" (dispatch system ~handle (Api.Call.Sched_tune { param; value }))
