(* The multiprocessor plant: the coherence-parity oracle (an N-CPU run
   must produce the same mediation verdicts and audit digest as the
   1-CPU run, for every seed, including under lost-connect and
   cache-flush storms), plus a directed race — a connect arriving
   while another CPU holds a warm associative-memory entry must never
   let that CPU replay a stale Permit. *)

open Multics_access
open Multics_machine
open Multics_kernel
module Smp = Multics_smp.Smp
module Fault = Multics_fault.Fault
module Workload = Multics_sched.Workload
module Obs = Multics_obs.Obs

(* ----- Plant mechanics ----- *)

let test_lock_contention_model () =
  let lock = Smp.Lock.create ~name:"t.smp.lock" in
  Alcotest.(check int) "uncontended wait" 0 (Smp.Lock.acquire lock ~now:100 ~hold:50);
  (* Held until 150; an acquirer at 120 waits out the remainder. *)
  Alcotest.(check int) "contended wait" 30 (Smp.Lock.acquire lock ~now:120 ~hold:10);
  Alcotest.(check int) "falls free at" 160 (Smp.Lock.free_at lock);
  Alcotest.(check int) "late acquirer sails through" 0 (Smp.Lock.acquire lock ~now:1000 ~hold:5)

let test_cpu_for_deterministic () =
  let plant = Smp.create ~ncpus:4 ~cost:Cost.h6180 () in
  for key = 0 to 100 do
    let home = Smp.cpu_for plant ~key in
    Alcotest.(check bool) "home CPU in range" true (home >= 0 && home < 4);
    Alcotest.(check int) "home CPU is a pure function" home (Smp.cpu_for plant ~key)
  done

let test_ncpus_env_parsing () =
  (* default_ncpus reads MULTICS_NCPU; out-of-range and garbage fall
     back to 1 rather than crashing test startup.  We can't mutate the
     environment portably here, so just pin the unset behaviour and
     the bounds. *)
  let n = Smp.default_ncpus () in
  Alcotest.(check bool) "default in range" true (n >= 1 && n <= Smp.max_cpus);
  Alcotest.check_raises "ncpus 0 rejected"
    (Invalid_argument (Printf.sprintf "Smp.create: ncpus must be in 1..%d" Smp.max_cpus))
    (fun () -> ignore (Smp.create ~ncpus:0 ~cost:Cost.h6180 ()));
  Alcotest.check_raises "ncpus 9 rejected"
    (Invalid_argument (Printf.sprintf "Smp.create: ncpus must be in 1..%d" Smp.max_cpus))
    (fun () -> ignore (Smp.create ~ncpus:(Smp.max_cpus + 1) ~cost:Cost.h6180 ()))

let test_ptw_front_per_cpu () =
  let plant = Smp.create ~ncpus:2 ~cost:Cost.h6180 () in
  let page = Sid.of_int 7 in
  Smp.set_current plant 0;
  Alcotest.(check bool) "cold front misses" false (Smp.ptw_touch plant ~page);
  Alcotest.(check bool) "warm front hits" true (Smp.ptw_touch plant ~page);
  (* The other CPU has its own lookaside: CPU 0's walk warmed nothing
     over there. *)
  Smp.set_current plant 1;
  Alcotest.(check bool) "other CPU's front is its own" false (Smp.ptw_touch plant ~page);
  Smp.set_current plant 0;
  Smp.connect_flush_all plant;
  Alcotest.(check bool) "flush empties every front" false (Smp.ptw_touch plant ~page)

(* ----- The directed stale-Permit race -----

   Warm two CPUs' associative memories on the same segment, revoke the
   ACL from one CPU, then reference from the other.  The connect must
   have cleared the second CPU's memory before set_acl returned, so
   the reference recomputes — and refuses.  Then the same race under a
   plan that drops every connect on the wire: the sender stalls,
   re-signals, eventually rescues — cycles are lost, the Permit still
   is not. *)

let boot_two_cpus ?faults () =
  Obs.set_enabled true;
  let system = System.create Config.kernel_6180 in
  let plant = Smp.create ~ncpus:2 ~cost:Cost.h6180 () in
  Smp.set_faults plant faults;
  System.attach_plant system (Some plant);
  ignore
    (System.add_account system ~person:"Alice" ~project:"Dev" ~password:"pw"
       ~clearance:Label.unclassified);
  let handle =
    match System.login system ~person:"Alice" ~project:"Dev" ~password:"pw" with
    | Ok h -> h
    | Error e -> Alcotest.fail (System.login_error_to_string e)
  in
  let segno =
    match
      User_env.create_segment_at system ~handle ~path:">udd>Dev>Alice>scratch"
        ~acl:(Acl.of_strings [ ("Alice.Dev.*", "rw") ])
        ~label:Label.unclassified
    with
    | Ok segno -> segno
    | Error e -> Alcotest.fail (User_env.error_to_string e)
  in
  (system, plant, handle, segno)

let read_ok what system ~handle ~segno =
  match Gate_calls.read_word system ~handle ~segno ~offset:0 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: %s" what (Api.error_to_string e)

let stale_permit_race ?faults () =
  let system, plant, handle, segno = boot_two_cpus ?faults () in
  (match Gate_calls.write_word system ~handle ~segno ~offset:0 ~value:7 with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Api.error_to_string e));
  (* Warm both CPUs' associative memories on the segment. *)
  Smp.set_current plant 0;
  read_ok "warm CPU 0" system ~handle ~segno;
  Smp.set_current plant 1;
  read_ok "warm CPU 1" system ~handle ~segno;
  let warm = List.assoc "cam_size" (Smp.cpu_status plant 1) in
  Alcotest.(check bool) "CPU 1's CAM is warm" true (warm > 0);
  (* Revoke from CPU 0.  set_acl must not return before CPU 1's
     memory has been cleared. *)
  Smp.set_current plant 0;
  (match
     Gate_calls.set_acl system ~handle ~segno ~acl:(Acl.of_strings [ ("Operator.*.*", "rw") ])
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Api.error_to_string e));
  Alcotest.(check bool) "CPU 1 received the connect" true
    (List.assoc "connects_received" (Smp.cpu_status plant 1) > 0);
  (* The in-flight lookup on CPU 1: with a stale CAM entry this would
     replay the revoked Permit.  It must recompute and refuse. *)
  Smp.set_current plant 1;
  (match Gate_calls.read_word system ~handle ~segno ~offset:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "CPU 1 replayed a stale Permit after revocation");
  plant

let test_connect_revokes_remote_cam () = ignore (stale_permit_race ())

let test_lost_connect_fails_secure () =
  let lost_before =
    Obs.set_enabled true;
    Obs.Counter.get (Obs.Registry.counter (Obs.Registry.global ()) "smp.connects.lost")
  in
  let plan =
    match Fault.Plan.parse ~seed:1 "smp.lost_connect=every:1" with
    | Ok plan -> plan
    | Error e -> Alcotest.fail e
  in
  let plant = stale_permit_race ~faults:(Fault.Injector.create plan) () in
  let global, _ = Smp.status plant in
  let lost_after = List.assoc "connects.lost" global in
  Alcotest.(check bool) "connects were dropped on the wire" true (lost_after > lost_before);
  Alcotest.(check bool) "dropped connects were rescued" true
    (List.assoc "connects.rescues" global > 0)

(* ----- The system-controller rescue path, directed -----

   E18 exercises the 8-loss escalation statistically; these pin the
   state machine down.  First the delivery discipline in isolation:
   the budget is spent attempt by attempt, and the escalation hook
   runs exactly once, only after the final loss. *)

let test_connect_deliver_retry_budget () =
  (* A link that never acks: every attempt is lost, so deliver must
     walk attempts 1..max_retries in order and then escalate once. *)
  let attempts_seen = ref [] in
  let escalations = ref 0 in
  let outcome =
    Smp.Connect.deliver ~max_retries:Smp.max_retries
      ~attempt:(fun n ->
        attempts_seen := n :: !attempts_seen;
        `Lost 10)
      ~escalate:(fun () ->
        incr escalations;
        100)
  in
  Alcotest.(check (list int))
    "attempts numbered 1..8 in order"
    (List.init Smp.max_retries (fun i -> i + 1))
    (List.rev !attempts_seen);
  Alcotest.(check int) "escalate ran exactly once" 1 !escalations;
  (match outcome with
  | Smp.Connect.Escalated { attempts; cycles } ->
      Alcotest.(check int) "attempts counts the losses plus the rescue" (Smp.max_retries + 1)
        attempts;
      Alcotest.(check int) "cycles bill the stalls plus the rescue"
        ((Smp.max_retries * 10) + 100)
        cycles
  | Smp.Connect.Delivered _ -> Alcotest.fail "a never-acking target cannot be Delivered");
  (* A target that acks on the last allowed attempt stays inside the
     budget: no escalation, and the acknowledgement cost is billed. *)
  let outcome =
    Smp.Connect.deliver ~max_retries:Smp.max_retries
      ~attempt:(fun n -> if n < Smp.max_retries then `Lost 10 else `Acked 7)
      ~escalate:(fun () -> Alcotest.fail "an acked target must not escalate")
  in
  match outcome with
  | Smp.Connect.Delivered { attempts; cycles } ->
      Alcotest.(check int) "delivered on the final attempt" Smp.max_retries attempts;
      Alcotest.(check int) "cycles bill the stalls plus the ack" (((Smp.max_retries - 1) * 10) + 7)
        cycles
  | Smp.Connect.Escalated _ -> Alcotest.fail "delivery inside the budget escalated anyway"

let test_lost_connect_rescue_exhausts_budget () =
  (* The full plant path: with every connect dropped, one revocation
     against one remote CPU must burn the whole retry budget (8
     losses), rescue through the system controller exactly once, and
     still leave the remote CAM clear. *)
  let plan =
    match Fault.Plan.parse ~seed:3 "smp.lost_connect=every:1" with
    | Ok plan -> plan
    | Error e -> Alcotest.fail e
  in
  let system, plant, handle, segno = boot_two_cpus ~faults:(Fault.Injector.create plan) () in
  Smp.set_current plant 1;
  read_ok "warm CPU 1" system ~handle ~segno;
  let counters () =
    let global, _ = Smp.status plant in
    ( List.assoc "connects.lost" global,
      List.assoc "connects.retries" global,
      List.assoc "connects.rescues" global )
  in
  let lost0, retries0, rescues0 = counters () in
  Smp.set_current plant 0;
  (match
     Gate_calls.set_acl system ~handle ~segno ~acl:(Acl.of_strings [ ("Operator.*.*", "rw") ])
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Api.error_to_string e));
  let lost1, retries1, rescues1 = counters () in
  Alcotest.(check int) "all 8 signalling attempts were lost" Smp.max_retries (lost1 - lost0);
  Alcotest.(check int) "each loss stalled and re-signalled" Smp.max_retries (retries1 - retries0);
  Alcotest.(check int) "one system-controller rescue for the one remote CPU" 1
    (rescues1 - rescues0);
  Alcotest.(check bool) "the rescue cleared the target anyway" true
    (List.assoc "connects_received" (Smp.cpu_status plant 1) > 0);
  Smp.set_current plant 1;
  match Gate_calls.read_word system ~handle ~segno ~offset:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "CPU 1 replayed a stale Permit after the rescue path"

(* ----- The coherence-parity oracle -----

   The same workload at 1, 2 and 4 CPUs: timing may change, mediation
   results never.  One hundred seeds, then a directed sweep under a
   plan that both drops connects and storms the access cache. *)

let parity_spec seed cpus fault_spec =
  {
    Workload.default with
    seed;
    users = 3;
    interactions = 2;
    think = 2_000;
    service = 300;
    working_set = 2;
    passes = 2;
    batch = 1;
    batch_chunks = 2;
    batch_chunk = 500;
    daemons = 1;
    vps = 4;
    (* more VPs than some CPU counts: run selection maps VPs onto CPUs *)
    cpus;
    fault_spec;
  }

let check_parity seed fault_spec =
  let base = Workload.run (parity_spec seed 1 fault_spec) in
  List.iter
    (fun cpus ->
      let r = Workload.run (parity_spec seed cpus fault_spec) in
      if r.Workload.r_signature <> base.Workload.r_signature then
        Alcotest.failf "seed %d, %d CPUs: mediation digest diverged" seed cpus;
      Alcotest.(check int)
        (Printf.sprintf "seed %d, %d CPUs: grants" seed cpus)
        base.Workload.r_audit_granted r.Workload.r_audit_granted;
      Alcotest.(check int)
        (Printf.sprintf "seed %d, %d CPUs: refusals" seed cpus)
        base.Workload.r_audit_refused r.Workload.r_audit_refused;
      Alcotest.(check int)
        (Printf.sprintf "seed %d, %d CPUs: completed" seed cpus)
        base.Workload.r_completed r.Workload.r_completed;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d, %d CPUs: plant readings present" seed cpus)
        true
        (List.mem_assoc "connects.sent" r.Workload.r_smp))
    [ 2; 4 ]

let test_parity_100_seeds () =
  for seed = 0 to 99 do
    check_parity seed ""
  done

let test_parity_under_fault_storm () =
  (* Drop connects and storm the access cache at once: both are
     timing events; neither may move a verdict. *)
  for seed = 0 to 24 do
    check_parity seed "smp.lost_connect=every:2,cache.flush=every:7"
  done

let test_multi_cpu_run_deterministic () =
  let spec = parity_spec 13 4 "smp.lost_connect=every:3" in
  let a = Workload.run spec and b = Workload.run spec in
  Alcotest.(check int) "same cycles" a.Workload.r_cycles b.Workload.r_cycles;
  Alcotest.(check int) "same digest" a.Workload.r_signature b.Workload.r_signature;
  Alcotest.(check int) "same faults" a.Workload.r_page_faults b.Workload.r_page_faults

let suite =
  [
    Alcotest.test_case "lock contention model" `Quick test_lock_contention_model;
    Alcotest.test_case "home CPU deterministic" `Quick test_cpu_for_deterministic;
    Alcotest.test_case "ncpus bounds" `Quick test_ncpus_env_parsing;
    Alcotest.test_case "per-CPU PTW fronts" `Quick test_ptw_front_per_cpu;
    Alcotest.test_case "connect revokes remote CAM" `Quick test_connect_revokes_remote_cam;
    Alcotest.test_case "lost connect fails secure" `Quick test_lost_connect_fails_secure;
    Alcotest.test_case "connect delivery retry budget" `Quick test_connect_deliver_retry_budget;
    Alcotest.test_case "8-loss system-controller rescue" `Quick
      test_lost_connect_rescue_exhausts_budget;
    Alcotest.test_case "coherence parity, 100 seeds x {1,2,4} CPUs" `Slow test_parity_100_seeds;
    Alcotest.test_case "coherence parity under fault storm" `Quick test_parity_under_fault_storm;
    Alcotest.test_case "multi-CPU run deterministic" `Quick test_multi_cpu_run_deterministic;
  ]
