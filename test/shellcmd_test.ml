(* The shell's operator-command parsers: a table of well-formed and
   malformed lines, each mapped to the exact typed command or typed
   error it must produce.  No input may raise, fall through to a wrong
   arm, or be accepted with a bad value. *)

module Cmd = Multics_shellcmd.Shellcmd.Command

type expect =
  | Cmd of Cmd.t
  | Err of (Cmd.error -> bool) * string  (* predicate + label for the failure message *)
  | Not_ours

let bad_int = function Cmd.Bad_int _ -> true | _ -> false
let bad_sub = function Cmd.Bad_subcommand _ -> true | _ -> false
let bad_arity = function Cmd.Bad_arity _ -> true | _ -> false
let bad_param = function Cmd.Bad_param _ -> true | _ -> false
let bad_plan = function Cmd.Bad_plan _ -> true | _ -> false
let bad_count = function Cmd.Bad_count _ -> true | _ -> false
let bad_pair = function Cmd.Bad_pair _ -> true | _ -> false
let bad_range = function Cmd.Bad_range _ -> true | _ -> false
let bad_trace = function Cmd.Bad_trace _ -> true | _ -> false

let table =
  [
    (* fault *)
    ("fault plan 7 gate.deny=every:5", Cmd (Cmd.Fault_plan { seed = 7; spec = "gate.deny=every:5" }));
    ( "fault plan 3 smp.lost_connect=every:2,cache.flush=every:7",
      Cmd (Cmd.Fault_plan { seed = 3; spec = "smp.lost_connect=every:2,cache.flush=every:7" }) );
    ("fault plan x gate.deny=every:5", Err (bad_int, "seed not a number"));
    ("fault plan 7 bogus.site=every:5", Err (bad_plan, "unknown site"));
    ("fault plan 7 gate.deny=sometimes", Err (bad_plan, "unknown schedule"));
    ("fault plan 7", Err (bad_arity, "missing spec"));
    ("fault status", Cmd Cmd.Fault_status);
    ("fault clear", Cmd Cmd.Fault_clear);
    ("fault explode", Err (bad_sub, "unknown fault subcommand"));
    ("fault", Err (bad_arity, "bare fault"));
    (* cache *)
    ("cache status", Cmd Cmd.Cache_status);
    ("cache clear", Cmd Cmd.Cache_clear);
    ("cache flushh", Err (bad_sub, "unknown cache subcommand"));
    ("cache", Err (bad_arity, "bare cache"));
    (* sched *)
    ("sched status", Cmd Cmd.Sched_status);
    ("sched tune cap 4", Cmd (Cmd.Sched_tune { param = "cap"; value = 4 }));
    ("sched tune quantum 5000", Cmd (Cmd.Sched_tune { param = "quantum"; value = 5000 }));
    ("sched tune capx 4", Err (bad_param, "unknown tune parameter"));
    ("sched tune cap x", Err (bad_int, "tune value not a number"));
    ("sched tune cap", Err (bad_arity, "tune missing value"));
    ("sched demo", Cmd (Cmd.Sched_demo { users = 8 }));
    ("sched demo 3", Cmd (Cmd.Sched_demo { users = 3 }));
    ("sched demo x", Err (bad_int, "demo users not a number"));
    ("sched demo -2", Err (bad_count, "demo users not positive"));
    ("sched frobnicate", Err (bad_sub, "unknown sched subcommand"));
    (* smp *)
    ("smp status", Cmd Cmd.Smp_status);
    ("smp panic", Err (bad_sub, "unknown smp subcommand"));
    ("smp", Err (bad_arity, "bare smp"));
    (* jobs *)
    ("jobs status", Cmd Cmd.Jobs_status);
    ("jobs restart", Err (bad_sub, "unknown jobs subcommand"));
    ("jobs", Err (bad_arity, "bare jobs"));
    (* site *)
    ("site status", Cmd Cmd.Site_status);
    ("site heal", Cmd Cmd.Site_heal);
    ("site partition 0 2", Cmd (Cmd.Site_partition { a = 0; b = 2 }));
    ("site partition 0 x", Err (bad_int, "site id not a number"));
    ("site partition 1 1", Err (bad_pair, "partition from itself"));
    ("site partition -1 2", Err (bad_pair, "negative site id"));
    ("site partition 0", Err (bad_arity, "partition missing a site"));
    ("site split 0 1", Err (bad_sub, "unknown site subcommand"));
    ("site", Err (bad_arity, "bare site"));
    (* stats *)
    ("stats", Cmd (Cmd.Stats Cmd.Stats_text));
    ("stats json", Cmd (Cmd.Stats Cmd.Stats_json));
    ("stats reset", Cmd (Cmd.Stats Cmd.Stats_reset));
    ("stats weird", Err (bad_sub, "unknown stats subcommand"));
    (* audit *)
    ("audit", Cmd (Cmd.Audit_tail { count = 10 }));
    ("audit 25", Cmd (Cmd.Audit_tail { count = 25 }));
    ("audit x", Err (bad_int, "audit count not a number"));
    ("audit 0", Err (bad_count, "audit count not positive"));
    ("audit 5 6", Err (bad_arity, "audit extra args"));
    (* mc *)
    ("mc run 5", Cmd (Cmd.Mc_run { depth = 5; bug = false }));
    ("mc run 5 bug", Cmd (Cmd.Mc_run { depth = 5; bug = true }));
    ("mc run x", Err (bad_int, "mc depth not a number"));
    ("mc run 0", Err (bad_range, "mc depth below range"));
    ("mc run 9", Err (bad_range, "mc depth above range"));
    ("mc run 5 bugs", Err (bad_arity, "mc run bad flag"));
    ("mc status", Cmd Cmd.Mc_status);
    ( "mc replay read_bob_s0,acl_revoke",
      Cmd (Cmd.Mc_replay { trace = "read_bob_s0,acl_revoke"; bug = false }) );
    ( "mc replay read_bob_s0,acl_revoke bug",
      Cmd (Cmd.Mc_replay { trace = "read_bob_s0,acl_revoke"; bug = true }) );
    ("mc replay read_bob_s0,frobnicate", Err (bad_trace, "unknown action in trace"));
    ("mc replay", Err (bad_arity, "replay missing trace"));
    ("mc explore 5", Err (bad_sub, "unknown mc subcommand"));
    ("mc", Err (bad_arity, "bare mc"));
    (* not operator families: the shell's other parsers own these *)
    (* spec *)
    ("spec profile start", Cmd Cmd.Spec_profile_start);
    ("spec profile stop editor", Cmd (Cmd.Spec_profile_stop { name = "editor" }));
    ("spec apply", Cmd Cmd.Spec_apply);
    ("spec clear", Cmd Cmd.Spec_clear);
    ("spec status", Cmd Cmd.Spec_status);
    ("spec profile", Err (bad_arity, "bare spec profile"));
    ("spec profile stop", Err (bad_arity, "profile stop missing name"));
    ("spec profile pause", Err (bad_arity, "unknown profile action"));
    ("spec strip", Err (bad_sub, "unknown spec subcommand"));
    ("spec", Err (bad_arity, "bare spec"));
    (* not operator commands *)
    ("login Alice Dev pw", Not_ours);
    ("ls >udd", Not_ours);
    ("", Not_ours);
    ("   ", Not_ours);
  ]

let test_parser_table () =
  List.iter
    (fun (line, expect) ->
      match (Cmd.of_line line, expect) with
      | None, Not_ours -> ()
      | Some (Ok got), Cmd want ->
          if got <> want then Alcotest.failf "%S: parsed to the wrong command" line
      | Some (Error got), Err (pred, label) ->
          if not (pred got) then
            Alcotest.failf "%S: wrong error class (wanted %s, got %S)" line label
              (Cmd.error_to_string got)
      | Some (Ok _), Err (_, label) -> Alcotest.failf "%S: accepted but expected %s" line label
      | Some (Ok _), Not_ours -> Alcotest.failf "%S: accepted but not an operator command" line
      | Some (Error e), (Cmd _ | Not_ours) ->
          Alcotest.failf "%S: rejected (%s) but expected acceptance" line (Cmd.error_to_string e)
      | None, (Cmd _ | Err _) -> Alcotest.failf "%S: not recognised as an operator command" line)
    table

let test_errors_render () =
  (* Every error path must render a usable message: non-empty and
     carrying its usage line. *)
  List.iter
    (fun (line, expect) ->
      match (expect, Cmd.of_line line) with
      | Err _, Some (Error e) ->
          let msg = Cmd.error_to_string e in
          Alcotest.(check bool) (Printf.sprintf "%S error message non-empty" line) true
            (String.length msg > 0)
      | _ -> ())
    table

let suite =
  [
    Alcotest.test_case "parser table" `Quick test_parser_table;
    Alcotest.test_case "error messages render" `Quick test_errors_render;
  ]
