(* Dispatch determinism: the typed [Api.Call.dispatch] surface — now
   the only kernel entry point — must behave identically on two
   identically-booted systems, success and refusal paths alike, in all
   three reference configurations.

   Two identical systems are booted and the same scenario runs on
   both.  Because the simulation is deterministic, every step must
   render the same result (including segment numbers, handles, and
   refusal causes) on both sides; a divergence means dispatch consulted
   state outside the kernel's control. *)

open Multics_access
open Multics_kernel

type env = { system : System.t; mutable handle : int; slots : (string, int) Hashtbl.t }

let slot env name =
  match Hashtbl.find_opt env.slots name with
  | Some v -> v
  | None -> Alcotest.failf "scenario slot %S unset" name

let set_slot env name v = Hashtbl.replace env.slots name v

(* Render results to comparable strings; errors via the canonical
   rendering so refusal parity is checked cause-for-cause. *)
let err e = "err " ^ Api.error_to_string e
let r_unit = function Ok () -> "ok" | Error e -> err e
let r_int = function Ok v -> Printf.sprintf "ok %d" v | Error e -> err e
let r_bool = function Ok b -> Printf.sprintf "ok %b" b | Error e -> err e
let r_names = function Ok ns -> "ok [" ^ String.concat "; " ns ^ "]" | Error e -> err e
let r_int_opt = function
  | Ok None -> "ok none"
  | Ok (Some v) -> Printf.sprintf "ok %d" v
  | Error e -> err e

let r_ring = function
  | Ok ring -> Printf.sprintf "ok ring %d" (Multics_machine.Ring.to_int ring)
  | Error e -> err e

let r_pair = function Ok (a, b) -> Printf.sprintf "ok (%d,%d)" a b | Error e -> err e

let r_status = function
  | Ok st ->
      Printf.sprintf "ok %s/%s/%s/%d" st.Api.status_name
        (match st.Api.status_kind with
        | Multics_fs.Hierarchy.Segment -> "seg"
        | Multics_fs.Hierarchy.Directory -> "dir")
        (Label.to_string st.Api.status_label)
        st.Api.status_pages
  | Error e -> err e

let r_links = function
  | Ok links ->
      "ok ["
      ^ String.concat "; "
          (List.map
             (fun l ->
               Printf.sprintf "%s$%s%s" l.Api.link_target_seg l.Api.link_target_entry
                 (if l.Api.link_snapped then "!" else ""))
             links)
      ^ "]"
  | Error e -> err e

let r_info = function
  | Ok i ->
      Printf.sprintf "ok %s r%d %s k%d l%d" i.Api.info_principal i.Api.info_ring
        (Label.to_string i.Api.info_level) i.Api.info_known_segments i.Api.info_login_ring
  | Error e -> err e

let r_ints = function
  | Ok vs -> "ok [" ^ String.concat "; " (List.map string_of_int vs) ^ "]"
  | Error e -> err e

(* Reply projectors (one legal reply shape per request). *)
let d env request = Api.Call.dispatch env.system ~handle:env.handle request

let p_unit = function Ok Api.Call.Done -> Ok () | Error e -> Error e | Ok _ -> Alcotest.fail "reply shape"
let p_segno = function Ok (Api.Call.Segno s) -> Ok s | Error e -> Error e | Ok _ -> Alcotest.fail "reply shape"
let p_word = function Ok (Api.Call.Word v) -> Ok v | Error e -> Error e | Ok _ -> Alcotest.fail "reply shape"
let p_names = function Ok (Api.Call.Names ns) -> Ok ns | Error e -> Error e | Ok _ -> Alcotest.fail "reply shape"

let acl_rw = Acl.of_strings [ ("Alice.Dev.*", "rew") ]
let label = Label.unclassified

(* One scenario step: a display name and the dispatch sequence.  Each
   run receives its own [env]. *)
type step = { name : string; run : env -> string }

let remember_segno env key rendered result =
  (match result with Ok segno -> set_slot env key segno | Error _ -> ());
  rendered result

let steps : step list =
  [
    {
      name = "create_segment";
      run =
        (fun env ->
          remember_segno env "hot" r_int
            (p_segno
               (d env
                  (Api.Call.Create_segment
                     { dir_segno = slot env "dir"; name = "hot"; acl = acl_rw; label; brackets = None }))));
    };
    {
      name = "create_directory";
      run =
        (fun env ->
          remember_segno env "sub" r_int
            (p_segno
               (d env
                  (Api.Call.Create_directory
                     { dir_segno = slot env "dir"; name = "sub"; acl = acl_rw; label }))));
    };
    {
      name = "initiate";
      run =
        (fun env ->
          r_int (p_segno (d env (Api.Call.Initiate { dir_segno = slot env "dir"; name = "hot" }))));
    };
    {
      name = "write_word";
      run =
        (fun env ->
          r_unit
            (p_unit (d env (Api.Call.Write_word { segno = slot env "hot"; offset = 1; value = 7 }))));
    };
    {
      name = "read_word";
      run =
        (fun env -> r_int (p_word (d env (Api.Call.Read_word { segno = slot env "hot"; offset = 1 }))));
    };
    {
      name = "read_word unknown segno (refusal)";
      run = (fun env -> r_int (p_word (d env (Api.Call.Read_word { segno = 999; offset = 0 }))));
    };
    {
      name = "list_directory";
      run =
        (fun env -> r_names (p_names (d env (Api.Call.List_directory { dir_segno = slot env "dir" }))));
    };
    {
      name = "status_entry";
      run =
        (fun env ->
          match d env (Api.Call.Status_entry { dir_segno = slot env "dir"; name = "hot" }) with
          | Ok (Api.Call.Status st) -> r_status (Ok st)
          | Error e -> r_status (Error e)
          | Ok _ -> Alcotest.fail "reply shape");
    };
    {
      name = "rename_entry + delete_entry";
      run =
        (fun env ->
          let a =
            r_unit
              (p_unit
                 (d env
                    (Api.Call.Rename_entry
                       { dir_segno = slot env "dir"; name = "sub"; new_name = "sub-old" })))
          in
          let b =
            r_unit
              (p_unit (d env (Api.Call.Delete_entry { dir_segno = slot env "dir"; name = "sub-old" })))
          in
          a ^ "/" ^ b);
    };
    {
      name = "set_acl";
      run =
        (fun env -> r_unit (p_unit (d env (Api.Call.Set_acl { segno = slot env "hot"; acl = acl_rw }))));
    };
    {
      name = "set_brackets";
      run =
        (fun env ->
          r_unit
            (p_unit
               (d env
                  (Api.Call.Set_brackets
                     { segno = slot env "hot"; brackets = Multics_machine.Brackets.user_data }))));
    };
    {
      name = "set_gate_bound";
      run =
        (fun env ->
          r_unit (p_unit (d env (Api.Call.Set_gate_bound { segno = slot env "hot"; gate_bound = 4 }))));
    };
    {
      name = "set_quota";
      run =
        (fun env ->
          r_unit (p_unit (d env (Api.Call.Set_quota { segno = slot env "dir"; quota = Some 64 }))));
    };
    {
      name = "initiate_by_path";
      run =
        (fun env -> r_int (p_segno (d env (Api.Call.Initiate_by_path { path = ">udd>Dev>Alice>hot" }))));
    };
    {
      name = "create_segment_by_path";
      run =
        (fun env ->
          r_int
            (p_segno
               (d env
                  (Api.Call.Create_segment_by_path
                     { path = ">udd>Dev>Alice>hot2"; acl = acl_rw; label; brackets = None }))));
    };
    {
      name = "create_directory_by_path";
      run =
        (fun env ->
          r_int
            (p_segno
               (d env
                  (Api.Call.Create_directory_by_path
                     { path = ">udd>Dev>Alice>sub2"; acl = acl_rw; label }))));
    };
    {
      name = "delete_by_path";
      run =
        (fun env -> r_unit (p_unit (d env (Api.Call.Delete_by_path { path = ">udd>Dev>Alice>hot2" }))));
    };
    {
      name = "resolve_path";
      run = (fun env -> r_int (p_segno (d env (Api.Call.Resolve_path { path = ">udd>Dev" }))));
    };
    {
      name = "rnt bind/lookup/names/unbind";
      run =
        (fun env ->
          let a = r_unit (p_unit (d env (Api.Call.Rnt_bind { name = "h"; segno = slot env "hot" }))) in
          let b = r_int (p_segno (d env (Api.Call.Rnt_lookup { name = "h" }))) in
          let c = r_names (p_names (d env (Api.Call.List_reference_names { segno = slot env "hot" }))) in
          let e = r_unit (p_unit (d env (Api.Call.Rnt_unbind { name = "h" }))) in
          String.concat "/" [ a; b; c; e ]);
    };
    {
      name = "working dir + initiate_count";
      run =
        (fun env ->
          let a = r_int (p_segno (d env Api.Call.Get_working_dir)) in
          let b = r_unit (p_unit (d env (Api.Call.Set_working_dir { dir_segno = slot env "dir" }))) in
          let c = r_int (p_word (d env Api.Call.Initiate_count)) in
          String.concat "/" [ a; b; c ]);
    };
    {
      name = "snap_link (refusal in kernel config)";
      run =
        (fun env ->
          match d env (Api.Call.Snap_link { segno = slot env "hot"; link_index = 0 }) with
          | Ok (Api.Call.Snapped { segno; offset }) -> r_pair (Ok (segno, offset))
          | Error e -> r_pair (Error e)
          | Ok _ -> Alcotest.fail "reply shape");
    };
    {
      name = "list_links";
      run =
        (fun env ->
          match d env (Api.Call.List_links { segno = slot env "hot" }) with
          | Ok (Api.Call.Links ls) -> r_links (Ok ls)
          | Error e -> r_links (Error e)
          | Ok _ -> Alcotest.fail "reply shape");
    };
    {
      name = "search rules";
      run =
        (fun env ->
          let a =
            r_unit (p_unit (d env (Api.Call.Set_search_rules { dir_segnos = [ slot env "dir" ] })))
          in
          let b = r_names (p_names (d env Api.Call.Get_search_rules)) in
          a ^ "/" ^ b);
    };
    {
      name = "enter_subsystem unknown segno (refusal)";
      run =
        (fun env ->
          match d env (Api.Call.Enter_subsystem { segno = 999; entry_offset = 0; name = "ss" }) with
          | Ok (Api.Call.Entered ring) -> r_ring (Ok ring)
          | Error e -> r_ring (Error e)
          | Ok _ -> Alcotest.fail "reply shape");
    };
    {
      name = "exit_subsystem outside subsystem (refusal)";
      run =
        (fun env ->
          match d env Api.Call.Exit_subsystem with
          | Ok (Api.Call.Entered ring) -> r_ring (Ok ring)
          | Error e -> r_ring (Error e)
          | Ok _ -> Alcotest.fail "reply shape");
    };
    {
      name = "ipc channel/wakeup/block";
      run =
        (fun env ->
          let chan_r =
            match d env Api.Call.Create_channel with
            | Ok (Api.Call.Channel c) -> Ok c
            | Error e -> Error e
            | Ok _ -> Alcotest.fail "reply shape"
          in
          (match chan_r with Ok c -> set_slot env "chan" c | Error _ -> ());
          let a = r_int chan_r in
          let b = r_unit (p_unit (d env (Api.Call.Send_wakeup { channel = slot env "chan" }))) in
          let consume () =
            match d env (Api.Call.Block { channel = slot env "chan" }) with
            | Ok (Api.Call.Consumed consumed) -> r_bool (Ok consumed)
            | Error e -> r_bool (Error e)
            | Ok _ -> Alcotest.fail "reply shape"
          in
          let c = consume () in
          let e = consume () in
          let f = r_unit (p_unit (d env (Api.Call.Send_wakeup { channel = 999 }))) in
          String.concat "/" [ a; b; c; e; f ]);
    };
    {
      name = "device attach/write/read/detach";
      run =
        (fun env ->
          let device = Multics_io.Device.Printer in
          let a = r_unit (p_unit (d env (Api.Call.Attach_device { device }))) in
          let b = r_unit (p_unit (d env (Api.Call.Device_write { device; message = 5 }))) in
          let c =
            match d env (Api.Call.Device_read { device }) with
            | Ok (Api.Call.Message m) -> r_int_opt (Ok m)
            | Error e -> r_int_opt (Error e)
            | Ok _ -> Alcotest.fail "reply shape"
          in
          let e = r_unit (p_unit (d env (Api.Call.Detach_device { device }))) in
          let f = r_unit (p_unit (d env (Api.Call.Detach_device { device }))) in
          String.concat "/" [ a; b; c; e; f ]);
    };
    {
      name = "proc_info + list_processes + operator_message";
      run =
        (fun env ->
          let a =
            match d env Api.Call.Proc_info with
            | Ok (Api.Call.Info i) -> r_info (Ok i)
            | Error e -> r_info (Error e)
            | Ok _ -> Alcotest.fail "reply shape"
          in
          let b =
            match d env Api.Call.List_processes with
            | Ok (Api.Call.Processes hs) -> r_ints (Ok hs)
            | Error e -> r_ints (Error e)
            | Ok _ -> Alcotest.fail "reply shape"
          in
          let c = r_unit (p_unit (d env (Api.Call.Operator_message { message = "hello" }))) in
          String.concat "/" [ a; b; c ]);
    };
    {
      name = "create_process + destroy_process";
      run =
        (fun env ->
          let child_r =
            match d env Api.Call.Create_process with
            | Ok (Api.Call.Process c) -> Ok c
            | Error e -> Error e
            | Ok _ -> Alcotest.fail "reply shape"
          in
          (match child_r with Ok c -> set_slot env "child" c | Error _ -> ());
          let a = r_int child_r in
          let b =
            match child_r with
            | Ok _ ->
                r_unit (p_unit (d env (Api.Call.Destroy_process { target = slot env "child" })))
            | Error _ -> "skipped"
          in
          let c = r_unit (p_unit (d env (Api.Call.Destroy_process { target = 999 }))) in
          String.concat "/" [ a; b; c ]);
    };
    {
      name = "terminate + terminate_by_path";
      run =
        (fun env ->
          let a = r_unit (p_unit (d env (Api.Call.Terminate { segno = slot env "hot" }))) in
          let b = r_unit (p_unit (d env (Api.Call.Terminate_by_path { path = ">udd>Dev>Alice>sub2" }))) in
          a ^ "/" ^ b);
    };
  ]

let boot config =
  let system = System.create config in
  ignore
    (System.add_account system ~person:"Alice" ~project:"Dev" ~password:"pw"
       ~clearance:Label.unclassified);
  let handle =
    match System.login system ~person:"Alice" ~project:"Dev" ~password:"pw" with
    | Ok handle -> handle
    | Error e -> Alcotest.fail (System.login_error_to_string e)
  in
  let env = { system; handle; slots = Hashtbl.create 8 } in
  (* The home directory's segment number, via the user-ring environment
     (identical on both sides; not itself under test). *)
  (match User_env.resolve_path system ~handle ~path:">udd>Dev>Alice" with
  | Ok dir -> set_slot env "dir" dir
  | Error e -> Alcotest.fail (User_env.error_to_string e));
  env

let parity_for config () =
  let first_env = boot config in
  let second_env = boot config in
  List.iter
    (fun step ->
      let expected = step.run first_env in
      let got = step.run second_env in
      Alcotest.(check string) step.name expected got)
    steps

let suite =
  List.map
    (fun (config : Config.t) ->
      Alcotest.test_case
        (Printf.sprintf "dispatch deterministic (%s)" config.Config.name)
        `Quick (parity_for config))
    [ Config.baseline_645; Config.hardware_rings; Config.kernel_6180 ]
