(* Integration tests: whole-session workflows across configurations,
   determinism of the simulators, and failure injection. *)

open Multics_access
open Multics_kernel

let check_api what r =
  match r with Ok v -> v | Error e -> Alcotest.fail (what ^ ": " ^ Api.error_to_string e)

let check_env what r =
  match r with Ok v -> v | Error e -> Alcotest.fail (what ^ ": " ^ User_env.error_to_string e)

let login_ok system ~person ~project ~password =
  match System.login system ~person ~project ~password with
  | Ok h -> h
  | Error e -> Alcotest.fail (System.login_error_to_string e)

(* A canonical user session: build a small project tree, install an
   object library, link against it, run numbers through a shared
   segment, enter and leave a subsystem, and log out.  Returns a
   fingerprint of everything observable. *)
let canonical_session config =
  let system = System.create config in
  ignore
    (System.add_account system ~person:"Alice" ~project:"Dev" ~password:"pw"
       ~clearance:Label.unclassified);
  ignore
    (System.add_account system ~person:"Bob" ~project:"Dev" ~password:"pw"
       ~clearance:Label.unclassified);
  let alice = login_ok system ~person:"Alice" ~project:"Dev" ~password:"pw" in
  let bob = login_ok system ~person:"Bob" ~project:"Dev" ~password:"pw" in
  (* Tree building. *)
  let src =
    check_env "mkdir src"
      (User_env.create_directory_at system ~handle:alice ~path:">udd>Dev>Alice>src"
         ~acl:(Acl.of_strings [ ("Alice.Dev.*", "rew"); ("*.Dev.*", "r") ])
         ~label:Label.unclassified)
  in
  ignore src;
  let shared =
    check_env "shared data"
      (User_env.create_segment_at system ~handle:alice ~path:">udd>Dev>Alice>src>table"
         ~acl:(Acl.of_strings [ ("*.Dev.*", "rw") ])
         ~label:Label.unclassified)
  in
  List.iteri
    (fun i v -> check_api "fill" (Gate_calls.write_word system ~handle:alice ~segno:shared ~offset:i ~value:v))
    [ 3; 1; 4; 1; 5 ];
  (* An object library + a caller linking to it. *)
  let lib =
    check_env "lib"
      (User_env.create_segment_at system ~handle:alice ~path:">udd>Dev>Alice>src>mathlib"
         ~acl:(Acl.of_strings [ ("*.Dev.*", "re"); ("Alice.Dev.*", "rew") ])
         ~label:Label.unclassified)
  in
  let caller =
    check_env "caller"
      (User_env.create_segment_at system ~handle:alice ~path:">udd>Dev>Alice>src>main"
         ~acl:(Acl.of_strings [ ("Alice.Dev.*", "rew") ])
         ~label:Label.unclassified)
  in
  (match System.proc system alice with
  | None -> Alcotest.fail "no proc"
  | Some p ->
      let uid_of segno =
        match Multics_fs.Kst.uid_of_segno p.System.kst segno with
        | Ok uid -> uid
        | Error e -> Alcotest.fail (Multics_fs.Kst.error_to_string e)
      in
      Multics_link.Object_seg.Store.put (System.store system) ~uid:(uid_of lib)
        (Multics_link.Object_seg.make ~text_words:64
           ~definitions:[ { Multics_link.Object_seg.def_name = "sum"; def_offset = 12 } ]
           ~links:[] ());
      Multics_link.Object_seg.Store.put (System.store system) ~uid:(uid_of caller)
        (Multics_link.Object_seg.make ~text_words:16 ~definitions:[]
           ~links:[ ("mathlib", "sum") ] ());
      (* Point the search rules at the src directory. *)
      p.System.rules <- Multics_link.Search_rules.of_dirs [ ("src", uid_of src) ]);
  let _target, link_offset =
    check_env "snap" (User_env.snap_link system ~handle:alice ~segno:caller ~link_index:0)
  in
  (* Reference names. *)
  check_env "bind" (User_env.bind_name system ~handle:alice ~name:"table" ~segno:shared);
  let via_name = check_env "lookup" (User_env.lookup_name system ~handle:alice ~name:"table") in
  (* Bob reads the shared table through his own walk. *)
  let bob_view =
    check_env "bob resolves"
      (User_env.resolve_path system ~handle:bob ~path:">udd>Dev>Alice>src>table")
  in
  let bob_reads =
    List.init 5 (fun i -> check_api "bob read" (Gate_calls.read_word system ~handle:bob ~segno:bob_view ~offset:i))
  in
  (* Bob may not modify. *)
  let bob_write_refused =
    match Gate_calls.write_word system ~handle:bob ~segno:bob_view ~offset:0 ~value:0 with
    | Error _ -> true
    | Ok () -> false
  in
  (* Wait: the ACL grants *.Dev.* rw, so Bob CAN write.  Check that. *)
  let audit_len = Audit_log.length (System.audit system) in
  ignore (System.logout system ~handle:bob);
  ignore (System.logout system ~handle:alice);
  (link_offset, via_name = shared, bob_reads, bob_write_refused, audit_len > 10)

let test_canonical_session_all_stages () =
  (* The same session succeeds with identical observable results on
     every engineering stage — removal changes where mechanisms live,
     never what users can do. *)
  let reference = canonical_session Config.baseline_645 in
  List.iter
    (fun config ->
      let result = canonical_session config in
      let offset_r, name_r, reads_r, w, a = reference in
      let offset_c, name_c, reads_c, w', a' = result in
      Alcotest.(check int) (config.Config.name ^ ": link offset") offset_r offset_c;
      Alcotest.(check bool) (config.Config.name ^ ": name binding") name_r name_c;
      Alcotest.(check (list int)) (config.Config.name ^ ": shared reads") reads_r reads_c;
      Alcotest.(check bool) (config.Config.name ^ ": write parity") w w';
      Alcotest.(check bool) (config.Config.name ^ ": audited") a a')
    (List.tl Config.stages)

let test_bob_can_write_shared () =
  (* The ACL grants *.Dev.* rw: Bob's write must be PERMITTED.  (Guards
     against over-restriction — a reference monitor that refuses too
     much is also wrong.) *)
  let _, _, _, bob_write_refused, _ = canonical_session Config.kernel_6180 in
  Alcotest.(check bool) "bob write permitted" false bob_write_refused

let test_audit_covers_every_gate_call () =
  let system = System.create Config.kernel_6180 in
  ignore
    (System.add_account system ~person:"Alice" ~project:"Dev" ~password:"pw"
       ~clearance:Label.unclassified);
  let alice = login_ok system ~person:"Alice" ~project:"Dev" ~password:"pw" in
  let before = Audit_log.length (System.audit system) in
  let wd = check_env "root" (User_env.root_segno system ~handle:alice) in
  ignore (Gate_calls.list_directory system ~handle:alice ~dir_segno:wd);
  ignore (Gate_calls.read_word system ~handle:alice ~segno:9999 ~offset:0);
  ignore (Gate_calls.create_channel system ~handle:alice);
  let after = Audit_log.length (System.audit system) in
  Alcotest.(check int) "three records" (before + 3) after

let test_simulation_determinism () =
  (* Two identical page-storm runs produce identical fault traces. *)
  let run () =
    let _sim, pc =
      Multics_experiments.E6_page_control.run_storm ~core:8 ~bulk:12
        ~discipline:Multics_vm.Page_control.Parallel_processes ~processes:3
        ~pages_per_process:8 ~sweeps:2 ()
    in
    List.map
      (fun (f : Multics_vm.Page_control.fault_record) ->
        (f.Multics_vm.Page_control.pid, f.Multics_vm.Page_control.latency, f.Multics_vm.Page_control.steps))
      (Multics_vm.Page_control.faults pc)
  in
  Alcotest.(check (list (triple int int int))) "identical fault traces" (run ()) (run ())

let test_failure_injection_in_faulting_process () =
  (* A process that dies mid-workload must not corrupt physical
     memory accounting or wedge the freers. *)
  let sim = Multics_proc.Sim.create ~cost:Multics_machine.Cost.h6180 ~virtual_processors:5 in
  let mem = Multics_mm.Memory.create ~cost:Multics_machine.Cost.h6180 ~core:4 ~bulk:6 ~disk:64 in
  let pc =
    Multics_vm.Page_control.create sim ~mem
      ~discipline:Multics_vm.Page_control.Parallel_processes
  in
  Multics_vm.Page_control.start pc;
  let crasher =
    Multics_proc.Sim.spawn sim ~name:"crasher" (fun pid ->
        for i = 0 to 5 do
          ignore
            (Multics_vm.Page_control.reference pc ~pid
               ~page:(Multics_mm.Page_id.make ~seg_uid:9 ~page_no:i));
          if i = 3 then failwith "injected fault"
        done)
  in
  let survivor =
    Multics_proc.Sim.spawn sim ~name:"survivor" (fun pid ->
        for i = 0 to 9 do
          ignore
            (Multics_vm.Page_control.reference pc ~pid
               ~page:(Multics_mm.Page_id.make ~seg_uid:10 ~page_no:i))
        done)
  in
  Multics_proc.Sim.run sim;
  Alcotest.(check bool) "crasher recorded failure" true
    (Multics_proc.Sim.failure_of sim crasher <> None);
  Alcotest.(check bool) "survivor unaffected" true
    (Multics_proc.Sim.failure_of sim survivor = None);
  Alcotest.(check bool) "memory conservation intact" true
    (Multics_mm.Memory.check_conservation mem)

let test_stage_presets_are_cumulative () =
  (* Each stage differs from its predecessor only by the documented
     knobs; the processor changes exactly once. *)
  let stages = Array.of_list Config.stages in
  for i = 1 to Array.length stages - 1 do
    let prev = stages.(i - 1) and curr = stages.(i) in
    Alcotest.(check bool)
      (Printf.sprintf "%s named differently" curr.Config.name)
      true
      (prev.Config.name <> curr.Config.name)
  done;
  Alcotest.(check bool) "starts on the 645" true
    (Config.baseline_645.Config.processor = Multics_machine.Cost.H645);
  Alcotest.(check bool) "ends on the 6180" true
    (Config.kernel_6180.Config.processor = Multics_machine.Cost.H6180);
  Alcotest.(check bool) "final kernel has no flaws" true
    (Config.kernel_6180.Config.linker_flaws = [])

let suite =
  [
    ("canonical session on all stages", `Slow, test_canonical_session_all_stages);
    ("bob can write shared", `Quick, test_bob_can_write_shared);
    ("audit covers gate calls", `Quick, test_audit_covers_every_gate_call);
    ("simulation determinism", `Quick, test_simulation_determinism);
    ("failure injection", `Quick, test_failure_injection_in_faulting_process);
    ("stage presets cumulative", `Quick, test_stage_presets_are_cumulative);
  ]
