(* lib/mc — the bounded exhaustive model checker.

   Canonical re-execution is the checker's foundation: a state IS its
   trace, replayed from a fresh boot through the simulator's event
   queue.  These tests pin the properties everything above relies on —
   replay is a pure function of the trace (the Event_queue tie-order
   regression), canonicalization identifies states by content rather
   than by the order that reached them, extending a trace never
   aliases the shorter trace's capture, exploration finds nothing on
   the healthy plant and the exact two-action stale-Permit window on
   the seeded-bug plant, and the frontier pool size is invisible. *)

module Mc = Multics_mc.Mc

let fp ~bug trace = Mc.fingerprint (fst (Mc.violations_of_trace ~bug trace))

let trace_of s =
  match Mc.trace_of_string s with
  | Some t -> t
  | None -> Alcotest.failf "bad test trace %S" s

let test_action_roundtrip () =
  List.iter
    (fun a ->
      match Mc.action_of_string (Mc.action_to_string a) with
      | Some a' -> Alcotest.(check bool) (Mc.action_to_string a) true (a = a')
      | None -> Alcotest.failf "action %S did not round-trip" (Mc.action_to_string a))
    (Mc.alphabet ~bug:true);
  Alcotest.(check bool) "unknown action refused" true (Mc.action_of_string "frobnicate" = None);
  let t = trace_of "read_bob_s0,acl_revoke,salvage" in
  Alcotest.(check string) "trace round-trip" "read_bob_s0,acl_revoke,salvage"
    (Mc.trace_to_string t);
  Alcotest.(check bool) "empty trace" true (Mc.trace_of_string "" = Some []);
  Alcotest.(check bool) "bad trace refused" true (Mc.trace_of_string "read_bob_s0,x" = None)

let test_replay_deterministic () =
  (* The same trace replayed twice must reach byte-identical canonical
     states — [System.t] carries no snapshot, so this is the property
     that makes "state = trace" sound at all. *)
  List.iter
    (fun s ->
      let t = trace_of s in
      Alcotest.(check string) (Printf.sprintf "replay x2: %s" s) (fp ~bug:false t)
        (fp ~bug:false t))
    [
      "";
      "read_alice_s1";
      "acl_revoke,read_bob_s0,acl_grant";
      "faulted_create,salvage,write_alice_s0";
      "bracket_widen,read_bob_s0,bracket_restore,acl_revoke";
    ]

let test_tie_order_stable () =
  (* The directed Event_queue regression: replay pushes every action
     at the same firing time, so insertion-order tie-breaking is
     load-bearing.  One hundred seeded traces, each replayed twice —
     any tie-order instability in the queue shows up as a fingerprint
     mismatch here long before it would corrupt an exploration. *)
  for seed = 1 to 100 do
    let t = Mc.random_trace ~seed ~length:6 in
    Alcotest.(check string)
      (Printf.sprintf "seed %d: %s" seed (Mc.trace_to_string t))
      (fp ~bug:true t) (fp ~bug:true t)
  done

let test_canonical_order_independent () =
  (* Two different action orders that land in the same logical state
     must canonicalize identically — this is what lets the visited set
     merge converging interleavings.  Reading s1 and revoking s0's ACL
     touch disjoint state, so either order converges. *)
  let a = trace_of "read_alice_s1,acl_revoke" in
  let b = trace_of "acl_revoke,read_alice_s1" in
  Alcotest.(check string) "commuting actions converge" (fp ~bug:false a) (fp ~bug:false b);
  (* And an order that does NOT commute must not: revoking before
     Bob's read refuses the read, leaving his KST and CPU 1's caches
     cold. *)
  let c = trace_of "read_bob_s0,acl_revoke" in
  let d = trace_of "acl_revoke,read_bob_s0" in
  Alcotest.(check bool) "non-commuting actions distinguished" false
    (String.equal (fp ~bug:false c) (fp ~bug:false d))

let test_extension_no_alias () =
  (* Extending a trace must not disturb the shorter trace's canonical
     capture: each capture is a fresh replay, so there is no shared
     mutable state to alias. *)
  let short = trace_of "read_bob_s0" in
  let before = fp ~bug:false short in
  let _ = fp ~bug:false (short @ trace_of "acl_revoke,salvage") in
  Alcotest.(check string) "short trace unchanged by extension" before (fp ~bug:false short)

let test_healthy_explore_clean () =
  let o = Mc.explore ~depth:2 () in
  Alcotest.(check int) "no counterexamples" 0 (List.length o.Mc.o_counterexamples);
  Alcotest.(check bool) "grew past the root" true (o.Mc.o_states > 1);
  Alcotest.(check int) "one row per depth" 2 (List.length o.Mc.o_rows)

let test_bug_explore_finds_window () =
  (* The seeded-bug leg's core claim: with the deferred-connect window
     re-enabled, BFS finds the minimal stale-Permit trace — warm CPU
     1's CAM, then revoke — at exactly depth 2. *)
  let o = Mc.explore ~bug:true ~depth:2 () in
  match
    List.find_opt
      (fun (c : Mc.counterexample) -> c.Mc.violation.Mc.predicate = "P1-stale-permit")
      o.Mc.o_counterexamples
  with
  | None -> Alcotest.fail "bug plant: no stale-Permit counterexample to depth 2"
  | Some c ->
      Alcotest.(check int) "minimal window is two actions" 2 (List.length c.Mc.trace);
      Alcotest.(check string) "the warm-then-revoke trace" "read_bob_s0,acl_revoke"
        (Mc.trace_to_string c.Mc.trace)

let test_pool_size_invisible () =
  let s jobs = Mc.summary (Mc.explore ~jobs ~depth:2 ~bug:true ()) in
  Alcotest.(check string) "jobs=1 and jobs=2 outcomes identical" (s 1) (s 2)

let suite =
  [
    Alcotest.test_case "action/trace round-trip" `Quick test_action_roundtrip;
    Alcotest.test_case "replay is deterministic" `Quick test_replay_deterministic;
    Alcotest.test_case "event-queue tie order stable over 100 traces" `Quick test_tie_order_stable;
    Alcotest.test_case "canonicalization is order-independent" `Quick test_canonical_order_independent;
    Alcotest.test_case "trace extension does not alias" `Quick test_extension_no_alias;
    Alcotest.test_case "healthy plant explores clean" `Quick test_healthy_explore_clean;
    Alcotest.test_case "bug plant yields the minimal window" `Quick test_bug_explore_finds_window;
    Alcotest.test_case "frontier pool size is invisible" `Quick test_pool_size_invisible;
  ]
