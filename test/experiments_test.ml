(* Regression tests over the experiment results themselves: every
   table the harness prints must keep the shape the paper claims. *)

open Multics_experiments

let test_e1_shape () =
  let r = E1_linker_gates.measure () in
  Alcotest.(check (float 0.005)) "inventory 10%" 0.10 r.E1_linker_gates.inventory_fraction;
  Alcotest.(check (float 0.005)) "functional 10%" 0.10 r.E1_linker_gates.functional_fraction

let test_e2_shape () =
  let r = E2_naming_removal.measure () in
  Alcotest.(check bool) "code ~10x" true
    (r.E2_naming_removal.code_factor >= 9.0 && r.E2_naming_removal.code_factor <= 11.0);
  Alcotest.(check bool) "data ~10x" true
    (r.E2_naming_removal.data_factor >= 8.0 && r.E2_naming_removal.data_factor <= 14.0)

let test_e3_shape () =
  let fraction = E3_combined_removal.combined_fraction () in
  Alcotest.(check bool) "about one third" true (fraction >= 0.30 && fraction <= 0.37)

let test_e4_shape () =
  match E4_ring_crossing.measure () with
  | [ h645; h6180 ] ->
      Alcotest.(check bool) "645 penalty two orders" true (h645.E4_ring_crossing.penalty > 50.0);
      Alcotest.(check (float 0.01)) "6180 parity" 1.0 h6180.E4_ring_crossing.penalty
  | _ -> Alcotest.fail "expected two processors"

let test_e5_shape () =
  let points = E5_boundary_sweep.measure () in
  (* 645 overhead grows with the flurry; 6180 stays at parity. *)
  let overhead_at k =
    match
      List.find_opt (fun p -> p.Multics_kernel.Boundary.inner_calls = k) points
    with
    | Some p -> p
    | None -> Alcotest.fail "missing sweep point"
  in
  let p5 = overhead_at 5 and p100 = overhead_at 100 in
  Alcotest.(check bool) "645 grows" true
    (p100.Multics_kernel.Boundary.h645_overhead > p5.Multics_kernel.Boundary.h645_overhead);
  Alcotest.(check bool) "6180 flat" true
    (abs_float (p100.Multics_kernel.Boundary.h6180_overhead -. 1.0) < 0.01)

let test_e6_shape () =
  let rows = E6_page_control.measure ~processes:3 ~pages_per_process:8 ~sweeps:2 () in
  List.iter
    (fun (r : E6_page_control.row) ->
      if r.E6_page_control.discipline = "parallel-processes" then begin
        Alcotest.(check int)
          (r.E6_page_control.scenario ^ ": parallel never cascades in faulter")
          0 r.E6_page_control.cascaded;
        Alcotest.(check int)
          (r.E6_page_control.scenario ^ ": no deep cascades")
          0 r.E6_page_control.deep_cascades
      end
      else
        Alcotest.(check bool)
          (r.E6_page_control.scenario ^ ": sequential cascades in faulter")
          true
          (r.E6_page_control.cascaded > 0))
    rows;
  (* At the provisioned operating point the parallel fault path is
     shorter and faster. *)
  let find scenario discipline =
    List.find
      (fun (r : E6_page_control.row) ->
        r.E6_page_control.scenario = scenario && r.E6_page_control.discipline = discipline)
      rows
  in
  let seq = find "provisioned" "sequential" in
  let par = find "provisioned" "parallel-processes" in
  Alcotest.(check bool) "parallel faster at operating point" true
    (par.E6_page_control.mean_latency < seq.E6_page_control.mean_latency);
  Alcotest.(check bool) "parallel path shorter" true
    (par.E6_page_control.mean_steps <= seq.E6_page_control.mean_steps)

let test_e7_shape () =
  let rows = E7_buffers.measure () in
  List.iter
    (fun (r : E7_buffers.row) ->
      Alcotest.(check int) "infinite never loses" 0 r.E7_buffers.infinite_lost)
    rows;
  (* Loss appears once bursts exceed the ring and grows with burstiness. *)
  let loss cap =
    match List.find_opt (fun (r : E7_buffers.row) -> r.E7_buffers.burst_cap = cap) rows with
    | Some r -> r.E7_buffers.circular_lost
    | None -> Alcotest.fail "missing burst cap"
  in
  Alcotest.(check int) "no loss below capacity" 0 (loss 8);
  Alcotest.(check bool) "loss beyond capacity" true (loss 32 > 0);
  Alcotest.(check bool) "loss grows" true (loss 128 > loss 32)

let test_e8_shape () =
  match E8_interrupts.measure () with
  | [ inline; processes ] ->
      Alcotest.(check bool) "inline perturbs victim" true
        (inline.E8_interrupts.victim_actual_cycles > inline.E8_interrupts.victim_expected_cycles);
      Alcotest.(check int) "process discipline leaves victim exact"
        processes.E8_interrupts.victim_expected_cycles
        processes.E8_interrupts.victim_actual_cycles;
      Alcotest.(check int) "no borrowed ring-0 cycles" 0
        processes.E8_interrupts.borrowed_privileged_cycles;
      Alcotest.(check int) "all handled" inline.E8_interrupts.handled
        processes.E8_interrupts.handled
  | _ -> Alcotest.fail "expected two disciplines"

let test_e10_shape () =
  let r = E10_lattice_flow.measure ~seed:99 ~operations:2_000 () in
  Alcotest.(check int) "zero downward flows" 0 r.E10_lattice_flow.flow_violations;
  Alcotest.(check bool) "both refusal kinds exercised" true
    (r.E10_lattice_flow.refused_read_up > 0 && r.E10_lattice_flow.refused_write_down > 0)

let test_registry_complete () =
  Alcotest.(check int) "25 experiments registered" 25 (List.length Registry.all);
  List.iter
    (fun id ->
      Alcotest.(check bool) ("find " ^ id) true (Registry.find id <> None))
    [ "e1"; "E1"; "e12"; "e15"; "e17"; "e18"; "e19"; "e20"; "a1"; "A3" ];
  Alcotest.(check bool) "unknown id rejected" true (Registry.find "e99" = None)

let test_ablation_a1_shape () =
  match Ablations.A1.measure () with
  | [ second_chance; fixed; random ] ->
      Alcotest.(check bool) "second-chance beats fixed-frame under phase change" true
        (second_chance.Ablations.A1.faults < fixed.Ablations.A1.faults);
      Alcotest.(check bool) "second-chance no worse than random" true
        (second_chance.Ablations.A1.faults <= random.Ablations.A1.faults)
  | _ -> Alcotest.fail "expected three policies"

let test_ablation_a2_shape () =
  let rows = Ablations.A2.measure () in
  let speedup vps =
    match List.find_opt (fun (r : Ablations.A2.row) -> r.Ablations.A2.vps = vps) rows with
    | Some r -> r.Ablations.A2.speedup
    | None -> Alcotest.fail "missing vp count"
  in
  Alcotest.(check (float 0.1)) "2 VPs ~2x" 2.0 (speedup 2);
  Alcotest.(check (float 0.1)) "8 VPs ~8x" 8.0 (speedup 8);
  Alcotest.(check (float 0.1)) "beyond population saturates" (speedup 8) (speedup 12)

let suite =
  [
    ("E1 shape", `Quick, test_e1_shape);
    ("E2 shape", `Quick, test_e2_shape);
    ("E3 shape", `Quick, test_e3_shape);
    ("E4 shape", `Quick, test_e4_shape);
    ("E5 shape", `Quick, test_e5_shape);
    ("E6 shape", `Quick, test_e6_shape);
    ("E7 shape", `Quick, test_e7_shape);
    ("E8 shape", `Quick, test_e8_shape);
    ("E10 shape", `Quick, test_e10_shape);
    ("registry complete", `Quick, test_registry_complete);
    ("A1 shape", `Quick, test_ablation_a1_shape);
    ("A2 shape", `Quick, test_ablation_a2_shape);
  ]
