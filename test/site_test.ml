(* The distributed fleet: cross-site revocation must be synchronous
   (an ACL edit on one site is visible on every site before the edit
   returns), partitions must fail secure (a site that cannot prove its
   decisions fresh serves nothing — the stall-never-stale rule), and a
   crashed site must rejoin through salvage-and-resync with its epochs
   caught up.  The coherence-parity oracle is E18's, generalized: the
   same traffic on 1, 2 and 4 sites — under lossy-link fault plans —
   must produce the same mediation digest. *)

open Multics_access
open Multics_machine
open Multics_kernel
module Site = Multics_site.Site
module Fault = Multics_fault.Fault

let set_plan fleet ~seed spec =
  if not (String.equal spec "") then
    match Fault.Plan.parse ~seed spec with
    | Ok plan -> Site.set_faults fleet (Some (Fault.Injector.create plan))
    | Error why -> Alcotest.fail why

let login_user fleet ~person ~project =
  Site.add_account fleet ~person ~project ~password:"pw" ~clearance:Label.unclassified;
  match Site.login fleet ~person ~project ~password:"pw" with
  | Ok handle -> handle
  | Error e -> Alcotest.fail (System.login_error_to_string e)

let probe_exn fleet ~site ~handle ~path =
  match Site.probe fleet ~site ~handle ~path ~requested:Mode.r with
  | Ok verdict -> verdict
  | Error e -> Alcotest.failf "probe on site %d: %s" site (Api.error_to_string e)

(* ----- Fleet mechanics ----- *)

let test_bounds () =
  let n = Site.default_nsites () in
  Alcotest.(check bool) "default in range" true (n >= 1 && n <= Site.max_sites);
  Alcotest.check_raises "nsites 0 rejected"
    (Invalid_argument (Printf.sprintf "Site.create: nsites must be in 1..%d" Site.max_sites))
    (fun () -> ignore (Site.create ~nsites:0 ()));
  Alcotest.check_raises "nsites 9 rejected"
    (Invalid_argument (Printf.sprintf "Site.create: nsites must be in 1..%d" Site.max_sites))
    (fun () -> ignore (Site.create ~nsites:(Site.max_sites + 1) ()));
  let fleet = Site.create ~nsites:4 () in
  for user = 0 to 64 do
    let home = Site.home_site fleet ~user in
    Alcotest.(check bool) "home in range" true (home >= 0 && home < 4);
    Alcotest.(check int) "home is a pure function" home (Site.home_site fleet ~user)
  done

let test_replicated_creation () =
  let fleet = Site.create ~nsites:3 () in
  let handle = login_user fleet ~person:"Alice" ~project:"Dev" in
  let path = ">udd>Dev>Alice>doc" in
  (match
     Site.dispatch fleet ~user:0 ~handle
       (Api.Call.Create_segment_by_path
          {
            path;
            acl = Acl.of_strings [ ("Alice.Dev.*", "rw") ];
            label = Label.unclassified;
            brackets = None;
          })
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "create: %s" (Api.error_to_string e));
  (* The segment's access is decidable on EVERY site before the
     creating call has returned. *)
  for site = 0 to 2 do
    match probe_exn fleet ~site ~handle ~path with
    | Policy.Permit -> ()
    | Policy.Refuse _ -> Alcotest.failf "site %d refuses a replicated grant" site
  done;
  Alcotest.(check bool) "mutation made an epoch" true (Site.epoch fleet > 0);
  for site = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "site %d caught up" site)
      (Site.epoch fleet) (Site.site_epoch fleet site)
  done

let test_revocation_coherence () =
  let fleet = Site.create ~nsites:4 () in
  let handle = login_user fleet ~person:"Alice" ~project:"Dev" in
  let path = ">udd>Dev>Alice>secret" in
  (match
     Site.dispatch fleet ~user:1 ~handle
       (Api.Call.Create_segment_by_path
          {
            path;
            acl = Acl.of_strings [ ("Alice.Dev.*", "rw") ];
            label = Label.unclassified;
            brackets = None;
          })
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "create: %s" (Api.error_to_string e));
  (* Warm every site's decision machinery with a Permit... *)
  for site = 0 to 3 do
    match probe_exn fleet ~site ~handle ~path with
    | Policy.Permit -> ()
    | Policy.Refuse _ -> Alcotest.failf "site %d refuses before revocation" site
  done;
  (* ...then revoke on the home site.  The connect storm must reach
     all four sites inside the call. *)
  (match
     Site.dispatch fleet ~user:1 ~handle
       (Api.Call.Set_acl_by_path { path; acl = Acl.empty })
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "revoke: %s" (Api.error_to_string e));
  for site = 0 to 3 do
    match probe_exn fleet ~site ~handle ~path with
    | Policy.Refuse _ -> ()
    | Policy.Permit -> Alcotest.failf "site %d serves a stale Permit after revocation" site
  done;
  Alcotest.(check int) "one revocation counted" 1 (Site.revocations fleet);
  Alcotest.(check bool) "cross-site cycles charged" true (Site.now fleet > 0)

let test_segno_mutations_refused_at_fleet_surface () =
  let fleet = Site.create ~nsites:2 () in
  let handle = login_user fleet ~person:"Alice" ~project:"Dev" in
  match Site.dispatch fleet ~user:0 ~handle (Api.Call.Set_acl { segno = 40; acl = Acl.empty }) with
  | Error (Api.Not_authorized _) -> ()
  | Ok _ -> Alcotest.fail "segment-number-addressed mutation accepted at the fleet surface"
  | Error e -> Alcotest.failf "unexpected refusal: %s" (Api.error_to_string e)

(* ----- The directed partition race: stall, never stale ----- *)

let test_partition_never_serves_stale_permit () =
  let fleet = Site.create ~nsites:2 () in
  let handle = login_user fleet ~person:"Alice" ~project:"Dev" in
  let path = ">udd>Dev>Alice>plans" in
  (match
     Site.dispatch fleet ~user:0 ~handle
       (Api.Call.Create_segment_by_path
          {
            path;
            acl = Acl.of_strings [ ("Alice.Dev.*", "rw") ];
            label = Label.unclassified;
            brackets = None;
          })
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "create: %s" (Api.error_to_string e));
  (* Site 1 holds a warm Permit for the segment. *)
  (match probe_exn fleet ~site:1 ~handle ~path with
  | Policy.Permit -> ()
  | Policy.Refuse _ -> Alcotest.fail "site 1 refuses before the race");
  (* Sever the link, then revoke from site 0.  The origin stalls
     through the whole retry window and then fences site 1. *)
  Site.partition fleet 0 1;
  let before = Site.now fleet in
  (match
     Site.dispatch fleet ~user:0 ~handle
       (Api.Call.Set_acl_by_path { path; acl = Acl.empty })
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "revoke: %s" (Api.error_to_string e));
  Alcotest.(check bool) "the origin stalled through the retry window" true
    (Site.now fleet > before);
  (match Site.status fleet 1 with
  | Site.Suspect -> ()
  | s -> Alcotest.failf "site 1 should be fenced, is %s" (Site.status_name s));
  (* The fenced site serves NOTHING — in particular not the warm
     Permit it still holds in its caches. *)
  (match Site.probe fleet ~site:1 ~handle ~path ~requested:Mode.r with
  | Ok Policy.Permit -> Alcotest.fail "fenced site served a stale Permit"
  | Ok (Policy.Refuse _) -> Alcotest.fail "fenced site answered at all"
  | Error (Api.Site_fenced { site }) -> Alcotest.(check int) "fenced site id" 1 site
  | Error e -> Alcotest.failf "unexpected error: %s" (Api.error_to_string e));
  (match Site.dispatch fleet ~user:1 ~handle (Api.Call.Resolve_path { path }) with
  | Error (Api.Site_fenced _) -> ()
  | Ok _ -> Alcotest.fail "fenced site dispatched a call"
  | Error e -> Alcotest.failf "unexpected error: %s" (Api.error_to_string e));
  Alcotest.(check bool) "fenced refusals counted" true (Site.fenced_refusals fleet >= 2);
  (* Heal and rejoin: salvage-and-resync replays the missed revocation
     and rebuilds the AV table; the Permit is gone. *)
  Site.heal_link fleet 0 1;
  (match Site.rejoin fleet 1 with
  | None -> Alcotest.fail "rejoin was a no-op"
  | Some report ->
      Alcotest.(check bool) "missed epochs replayed" true (report.Site.rj_replayed >= 1);
      Alcotest.(check int) "epoch caught up" (Site.epoch fleet) report.Site.rj_epoch);
  (match Site.status fleet 1 with
  | Site.Active -> ()
  | s -> Alcotest.failf "site 1 should be active after rejoin, is %s" (Site.status_name s));
  match probe_exn fleet ~site:1 ~handle ~path with
  | Policy.Refuse _ -> ()
  | Policy.Permit -> Alcotest.fail "rejoined site still serves the revoked Permit"

let test_crash_and_rejoin_catches_up_epochs () =
  let fleet = Site.create ~nsites:4 () in
  let handle = login_user fleet ~person:"Alice" ~project:"Dev" in
  let path = ">udd>Dev>Alice>ledger" in
  (match
     Site.dispatch fleet ~user:0 ~handle
       (Api.Call.Create_segment_by_path
          {
            path;
            acl = Acl.of_strings [ ("Alice.Dev.*", "rw") ];
            label = Label.unclassified;
            brackets = None;
          })
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "create: %s" (Api.error_to_string e));
  Site.crash fleet 2;
  (* Mutations while site 2 is down: it misses these epochs. *)
  (match
     Site.dispatch fleet ~user:0 ~handle
       (Api.Call.Set_acl_by_path { path; acl = Acl.empty })
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "revoke: %s" (Api.error_to_string e));
  Alcotest.(check bool) "site 2 trails the fleet epoch" true
    (Site.site_epoch fleet 2 < Site.epoch fleet);
  (* Its shard is dark. *)
  (match Site.dispatch fleet ~user:2 ~handle (Api.Call.Resolve_path { path }) with
  | Error (Api.Site_unreachable { site }) -> Alcotest.(check int) "unreachable site" 2 site
  | Ok _ -> Alcotest.fail "crashed site dispatched a call"
  | Error e -> Alcotest.failf "unexpected error: %s" (Api.error_to_string e));
  (* Salvage-and-resync. *)
  (match Site.rejoin fleet 2 with
  | None -> Alcotest.fail "rejoin was a no-op"
  | Some report ->
      Alcotest.(check bool) "missed epochs replayed" true (report.Site.rj_replayed >= 1);
      Alcotest.(check int) "epoch caught up" (Site.epoch fleet) report.Site.rj_epoch;
      Alcotest.(check bool) "AV table rebuilt" true (report.Site.rj_av_cells >= 0));
  Alcotest.(check int) "site epoch equals fleet epoch" (Site.epoch fleet)
    (Site.site_epoch fleet 2);
  match probe_exn fleet ~site:2 ~handle ~path with
  | Policy.Refuse _ -> ()
  | Policy.Permit -> Alcotest.fail "rejoined site missed the revocation"

let test_lossy_links_retry_within_budget () =
  (* An [every:k] (k >= 2) drop plan cannot produce Smp.max_retries
     consecutive losses, so bounded retry always delivers: nobody gets
     fenced, and coherence holds — just later. *)
  let fleet = Site.create ~nsites:3 () in
  set_plan fleet ~seed:5 "site.drop=every:2";
  let handle = login_user fleet ~person:"Alice" ~project:"Dev" in
  let path = ">udd>Dev>Alice>flaky" in
  (match
     Site.dispatch fleet ~user:0 ~handle
       (Api.Call.Create_segment_by_path
          {
            path;
            acl = Acl.of_strings [ ("Alice.Dev.*", "rw") ];
            label = Label.unclassified;
            brackets = None;
          })
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "create: %s" (Api.error_to_string e));
  (match
     Site.dispatch fleet ~user:0 ~handle
       (Api.Call.Set_acl_by_path { path; acl = Acl.empty })
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "revoke: %s" (Api.error_to_string e));
  for site = 0 to 2 do
    (match Site.status fleet site with
    | Site.Active -> ()
    | s -> Alcotest.failf "site %d fenced under a recoverable plan (%s)" site (Site.status_name s));
    match probe_exn fleet ~site ~handle ~path with
    | Policy.Refuse _ -> ()
    | Policy.Permit -> Alcotest.failf "site %d stale under a recoverable plan" site
  done

(* ----- The cross-site coherence-parity oracle ----- *)

(* A deterministic traffic script, independent of the site count: the
   same users issue the same requests in the same order; only the
   kernel answering changes.  Parity then states that sharding and
   lossy-link replication move cycles, never verdicts. *)
let run_traffic ~nsites ~plan ~seed =
  let fleet = Site.create ~nsites () in
  set_plan fleet ~seed plan;
  let users = 3 in
  let handles =
    Array.init users (fun i ->
        login_user fleet ~person:(Printf.sprintf "U%d" i) ~project:"Par")
  in
  let created = Array.make users [] in
  let channels = Array.make users None in
  for step = 0 to 44 do
    let user = step mod users in
    let handle = handles.(user) in
    let dispatch request = ignore (Site.dispatch fleet ~user ~handle request) in
    match (step + seed) mod 5 with
    | 0 ->
        let path = Printf.sprintf ">udd>Par>U%d>s%d" user step in
        dispatch
          (Api.Call.Create_segment_by_path
             {
               path;
               acl = Acl.of_strings [ (Printf.sprintf "U%d.Par.*" user, "rw") ];
               label = Label.unclassified;
               brackets = None;
             });
        created.(user) <- path :: created.(user)
    | 1 -> (
        match created.(user) with
        | path :: _ -> dispatch (Api.Call.Resolve_path { path })
        | [] -> dispatch (Api.Call.Resolve_path { path = ">udd>Par" }))
    | 2 -> (
        match channels.(user) with
        | Some channel -> dispatch (Api.Call.Send_wakeup { channel })
        | None -> (
            match Site.dispatch fleet ~user ~handle Api.Call.Create_channel with
            | Ok (Api.Call.Channel c) -> channels.(user) <- Some c
            | _ -> ()))
    | 3 -> (
        (* Revoke, then (next time around) delete: the revocation-heavy
           half of the mix, each one a fleet-wide connect storm. *)
        match created.(user) with
        | path :: rest ->
            dispatch (Api.Call.Set_acl_by_path { path; acl = Acl.empty });
            if step mod 2 = 1 then begin
              dispatch (Api.Call.Delete_by_path { path });
              created.(user) <- rest
            end
        | [] -> ())
    | _ ->
        (* A deterministic refusal exercises the audit/refuse path. *)
        dispatch (Api.Call.Read_word { segno = 9999; offset = 0 })
  done;
  fleet

let check_parity ~plan seed =
  let base = run_traffic ~nsites:1 ~plan ~seed in
  List.iter
    (fun nsites ->
      let r = run_traffic ~nsites ~plan ~seed in
      if Site.signature r <> Site.signature base then
        Alcotest.failf "seed %d, plan %S, %d sites: mediation digest diverged" seed plan nsites;
      Alcotest.(check int)
        (Printf.sprintf "seed %d, %d sites: grants" seed nsites)
        (Site.granted base) (Site.granted r);
      Alcotest.(check int)
        (Printf.sprintf "seed %d, %d sites: refusals" seed nsites)
        (Site.refused base) (Site.refused r);
      Alcotest.(check int)
        (Printf.sprintf "seed %d, %d sites: epochs" seed nsites)
        (Site.epoch base) (Site.epoch r);
      Alcotest.(check int)
        (Printf.sprintf "seed %d, %d sites: nobody fenced" seed nsites)
        0 (Site.fenced_refusals r))
    [ 2; 4 ]

(* Plans must be recoverable ([every:k], k >= 2): bounded retry then
   always succeeds, so parity is exact.  [every:1] or a standing
   partition fences — that behaviour is pinned by the directed tests
   above, not by the oracle.  MULTICS_SITE_FAULTS adds a CI-matrix
   plan on top. *)
let parity_plans () =
  let fixed =
    [ ""; "site.drop=every:3"; "site.delay=every:2"; "site.drop=every:5,site.delay=every:3" ]
  in
  match Sys.getenv_opt "MULTICS_SITE_FAULTS" with
  | Some s when not (String.equal (String.trim s) "") -> fixed @ [ String.trim s ]
  | _ -> fixed

let test_parity_across_site_counts () =
  List.iter (fun plan -> for seed = 0 to 9 do check_parity ~plan seed done) (parity_plans ())

let test_fleet_run_deterministic () =
  let a = run_traffic ~nsites:(Site.default_nsites ()) ~plan:"site.drop=every:3" ~seed:13 in
  let b = run_traffic ~nsites:(Site.default_nsites ()) ~plan:"site.drop=every:3" ~seed:13 in
  Alcotest.(check int) "same digest" (Site.signature a) (Site.signature b);
  Alcotest.(check int) "same clock" (Site.now a) (Site.now b);
  Alcotest.(check int) "same epochs" (Site.epoch a) (Site.epoch b)

let test_status_and_link_tables () =
  let fleet = Site.create ~nsites:3 () in
  let rows = Site.status_table fleet in
  Alcotest.(check int) "one row per site" 3 (List.length rows);
  List.iter
    (fun (_, status, _, counters) ->
      Alcotest.(check string) "all active" "active" status;
      Alcotest.(check bool) "audit counter present" true (List.mem_assoc "audit.records" counters))
    rows;
  let links = Site.link_table fleet in
  Alcotest.(check int) "three links for three sites" 3 (List.length links);
  Site.partition fleet 0 2;
  let links = Site.link_table fleet in
  List.iter
    (fun ((a, b), partitioned, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "link %d-%d partition flag" a b)
        (a = 0 && b = 2) partitioned)
    links

let suite =
  [
    Alcotest.test_case "fleet bounds and sharding" `Quick test_bounds;
    Alcotest.test_case "creation replicates before returning" `Quick test_replicated_creation;
    Alcotest.test_case "revocation reaches every site synchronously" `Quick
      test_revocation_coherence;
    Alcotest.test_case "segno-addressed mutations refused at the fleet surface" `Quick
      test_segno_mutations_refused_at_fleet_surface;
    Alcotest.test_case "partitioned site never serves a stale Permit" `Quick
      test_partition_never_serves_stale_permit;
    Alcotest.test_case "crash, then rejoin via salvage with epochs caught up" `Quick
      test_crash_and_rejoin_catches_up_epochs;
    Alcotest.test_case "lossy links retry within the budget" `Quick
      test_lossy_links_retry_within_budget;
    Alcotest.test_case "coherence parity across 1/2/4 sites under fault plans" `Slow
      test_parity_across_site_counts;
    Alcotest.test_case "fleet run deterministic" `Quick test_fleet_run_deterministic;
    Alcotest.test_case "status and link tables" `Quick test_status_and_link_tables;
  ]
