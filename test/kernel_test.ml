(* Tests for Multics_kernel: configurations, the gate catalog, the
   system/API surface, the user-ring environment, subsystem entry,
   initialization and the policy/mechanism partition. *)

open Multics_access
open Multics_kernel

let check_api what r =
  match r with Ok v -> v | Error e -> Alcotest.fail (what ^ ": " ^ Api.error_to_string e)

let check_env what r =
  match r with Ok v -> v | Error e -> Alcotest.fail (what ^ ": " ^ User_env.error_to_string e)

let boot ?(config = Config.kernel_6180) () =
  let system = System.create config in
  ignore
    (System.add_account system ~person:"Alice" ~project:"Dev" ~password:"pw"
       ~clearance:Label.unclassified);
  let alice =
    match System.login system ~person:"Alice" ~project:"Dev" ~password:"pw" with
    | Ok handle -> handle
    | Error e -> Alcotest.fail (System.login_error_to_string e)
  in
  (system, alice)

(* ----- Gate catalog (E1/E3 functional surface) ----- *)

let test_gate_counts_baseline () =
  Alcotest.(check int) "baseline gates" 60 (Gate.count Config.baseline_645);
  Alcotest.(check int) "after linker removal" 54 (Gate.count Config.linker_removed);
  Alcotest.(check int) "after naming removal" 40 (Gate.count Config.naming_removed)

let test_gate_removal_fractions () =
  let baseline = float_of_int (Gate.count Config.hardware_rings) in
  let linker_share = (baseline -. float_of_int (Gate.count Config.linker_removed)) /. baseline in
  let combined = (baseline -. float_of_int (Gate.count Config.naming_removed)) /. baseline in
  Alcotest.(check (float 0.005)) "linker ~10%" 0.10 linker_share;
  Alcotest.(check (float 0.01)) "combined ~1/3" 0.333 combined

let test_gate_monotone_shrink () =
  (* The partitioning stage adds a ring-1 mechanism interface, so the
     monotone quantity is the USER-callable surface. *)
  let counts = List.map Gate.user_callable_count Config.stages in
  let rec non_increasing = function
    | a :: b :: rest -> a >= b && non_increasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "user-callable gates never grow across stages" true
    (non_increasing counts)

let test_gate_find () =
  Alcotest.(check bool) "snap_link present in baseline" true
    (Gate.find Config.baseline_645 ~gate_name:"snap_link" <> None);
  Alcotest.(check bool) "snap_link absent in kernel" true
    (Gate.find Config.kernel_6180 ~gate_name:"snap_link" = None);
  match Gate.find Config.kernel_6180 ~gate_name:"pm_move_to_bulk" with
  | Some entry ->
      Alcotest.(check int) "pm gate bracket is ring 1" 1
        (Multics_machine.Ring.to_int entry.Gate.call_top)
  | None -> Alcotest.fail "pm gate missing from kernel config"

(* ----- Login / processes ----- *)

let test_login_and_bad_password () =
  let system, _alice = boot () in
  (match System.login system ~person:"Alice" ~project:"Dev" ~password:"wrong" with
  | Error System.Bad_password -> ()
  | Ok _ | Error _ -> Alcotest.fail "bad password accepted");
  match System.login system ~person:"Nobody" ~project:"Dev" ~password:"pw" with
  | Error System.Unknown_account -> ()
  | Ok _ | Error _ -> Alcotest.fail "unknown account accepted"

let test_login_ring_by_mechanism () =
  let sys_priv = System.create Config.baseline_645 in
  ignore
    (System.add_account sys_priv ~person:"A" ~project:"P" ~password:"x"
       ~clearance:Label.unclassified);
  let h1 =
    match System.login sys_priv ~person:"A" ~project:"P" ~password:"x" with
    | Ok h -> h
    | Error e -> Alcotest.fail (System.login_error_to_string e)
  in
  (match System.proc sys_priv h1 with
  | Some p ->
      Alcotest.(check int) "privileged login ran in ring 0" 0
        (Multics_machine.Ring.to_int p.System.login_ring)
  | None -> Alcotest.fail "no proc");
  let sys_uni = System.create Config.kernel_6180 in
  ignore
    (System.add_account sys_uni ~person:"A" ~project:"P" ~password:"x"
       ~clearance:Label.unclassified);
  let h2 =
    match System.login sys_uni ~person:"A" ~project:"P" ~password:"x" with
    | Ok h -> h
    | Error e -> Alcotest.fail (System.login_error_to_string e)
  in
  match System.proc sys_uni h2 with
  | Some p ->
      Alcotest.(check int) "unified login ran outside the kernel" 2
        (Multics_machine.Ring.to_int p.System.login_ring)
  | None -> Alcotest.fail "no proc"

(* ----- The API surface ----- *)

let test_create_write_read () =
  let system, alice = boot () in
  let segno =
    check_env "create"
      (User_env.create_segment_at system ~handle:alice ~path:">udd>Dev>Alice>notes"
         ~acl:(Acl.of_strings [ ("Alice.Dev.*", "rw") ])
         ~label:Label.unclassified)
  in
  check_api "write" (Gate_calls.write_word system ~handle:alice ~segno ~offset:3 ~value:42);
  Alcotest.(check int) "read back" 42
    (check_api "read" (Gate_calls.read_word system ~handle:alice ~segno ~offset:3))

let test_acl_denies_other_user () =
  let system, alice = boot () in
  ignore
    (System.add_account system ~person:"Bob" ~project:"Ops" ~password:"pw"
       ~clearance:Label.unclassified);
  let bob =
    match System.login system ~person:"Bob" ~project:"Ops" ~password:"pw" with
    | Ok h -> h
    | Error e -> Alcotest.fail (System.login_error_to_string e)
  in
  let _segno =
    check_env "create"
      (User_env.create_segment_at system ~handle:alice ~path:">udd>Dev>Alice>private"
         ~acl:(Acl.of_strings [ ("Alice.Dev.*", "rw") ])
         ~label:Label.unclassified)
  in
  (* Bob cannot even look inside Alice's home (no status). *)
  match User_env.resolve_path system ~handle:bob ~path:">udd>Dev>Alice>private" with
  | Error (User_env.Api (Api.Fs (Multics_fs.Hierarchy.No_entry _))) -> ()
  | Ok _ -> Alcotest.fail "Bob resolved Alice's private segment"
  | Error e -> Alcotest.fail ("unexpected: " ^ User_env.error_to_string e)

let test_removed_gate_absent () =
  let system, alice = boot () in
  (* kernel_6180 has no kernel resolver gate. *)
  match Gate_calls.resolve_path system ~handle:alice ~path:">sl1" with
  | Error (Api.Gate_absent "resolve_path") -> ()
  | Ok _ -> Alcotest.fail "removed gate answered"
  | Error e -> Alcotest.fail ("unexpected: " ^ Api.error_to_string e)

let test_user_env_equivalence () =
  (* The same program runs against pre- and post-removal systems and
     sees identical results through the User_env facade. *)
  let run config =
    let system = System.create config in
    ignore
      (System.add_account system ~person:"Alice" ~project:"Dev" ~password:"pw"
         ~clearance:Label.unclassified);
    let alice =
      match System.login system ~person:"Alice" ~project:"Dev" ~password:"pw" with
      | Ok h -> h
      | Error e -> Alcotest.fail (System.login_error_to_string e)
    in
    let segno =
      check_env "create"
        (User_env.create_segment_at system ~handle:alice ~path:">udd>Dev>Alice>prog"
           ~acl:(Acl.of_strings [ ("Alice.Dev.*", "rw") ])
           ~label:Label.unclassified)
    in
    check_api "write" (Gate_calls.write_word system ~handle:alice ~segno ~offset:0 ~value:17);
    check_env "bind" (User_env.bind_name system ~handle:alice ~name:"prog" ~segno);
    let via_name = check_env "lookup" (User_env.lookup_name system ~handle:alice ~name:"prog") in
    let reread = check_api "read" (Gate_calls.read_word system ~handle:alice ~segno:via_name ~offset:0) in
    let resolved =
      check_env "re-resolve" (User_env.resolve_path system ~handle:alice ~path:">udd>Dev>Alice>prog")
    in
    (reread, resolved = segno)
  in
  let pre = run Config.hardware_rings in
  let post = run Config.kernel_6180 in
  Alcotest.(check (pair int bool)) "identical behaviour" pre post

let test_linking_both_placements () =
  (* Snap the same link pre- and post-removal; same target offset. *)
  let run config =
    let system = System.create config in
    ignore
      (System.add_account system ~person:"Alice" ~project:"Dev" ~password:"pw"
         ~clearance:Label.unclassified);
    let alice =
      match System.login system ~person:"Alice" ~project:"Dev" ~password:"pw" with
      | Ok h -> h
      | Error e -> Alcotest.fail (System.login_error_to_string e)
    in
    (* Install a library object and a caller that links to it. *)
    let lib_segno =
      check_env "lib object"
        (User_env.create_segment_at system ~handle:alice ~path:">udd>Dev>Alice>mathlib"
           ~acl:(Acl.of_strings [ ("*.*.*", "re"); ("Alice.Dev.*", "rew") ])
           ~label:Label.unclassified)
    in
    let caller_segno =
      check_env "caller object"
        (User_env.create_segment_at system ~handle:alice ~path:">udd>Dev>Alice>caller"
           ~acl:(Acl.of_strings [ ("Alice.Dev.*", "rew") ])
           ~label:Label.unclassified)
    in
    (match System.proc system alice with
    | None -> Alcotest.fail "no proc"
    | Some p ->
        let uid_of segno =
          match Multics_fs.Kst.uid_of_segno p.System.kst segno with
          | Ok uid -> uid
          | Error e -> Alcotest.fail (Multics_fs.Kst.error_to_string e)
        in
        Multics_link.Object_seg.Store.put (System.store system) ~uid:(uid_of lib_segno)
          (Multics_link.Object_seg.make ~text_words:40
             ~definitions:[ { Multics_link.Object_seg.def_name = "sqrt"; def_offset = 8 } ]
             ~links:[] ());
        Multics_link.Object_seg.Store.put (System.store system) ~uid:(uid_of caller_segno)
          (Multics_link.Object_seg.make ~text_words:20 ~definitions:[]
             ~links:[ ("mathlib", "sqrt") ] ()));
    match User_env.snap_link system ~handle:alice ~segno:caller_segno ~link_index:0 with
    | Ok (_target_segno, offset) -> offset
    | Error e -> Alcotest.fail ("snap: " ^ User_env.error_to_string e)
  in
  Alcotest.(check int) "pre-removal offset" 8 (run Config.hardware_rings);
  Alcotest.(check int) "post-removal offset" 8 (run Config.kernel_6180)

let test_subsystem_entry_and_exit () =
  let system, alice = boot () in
  (* A gate segment into ring 2 with 3 legal entries.  Inner-ring
     subsystems are INSTALLED by the administrator — users may not mint
     brackets inner to their own ring — and users enter through the
     gates. *)
  let hierarchy = System.hierarchy system in
  let uid =
    match
      Multics_fs.Hierarchy.create_segment
        ~brackets:(Multics_machine.Brackets.make ~r1:2 ~r2:2 ~r3:5)
        hierarchy ~subject:System.initializer_subject ~dir:(System.lib_dir system)
        ~name:"mail_subsystem"
        ~acl:(Acl.of_strings [ ("*.*.*", "re"); ("Initializer.*.*", "rew") ])
        ~label:Label.unclassified
    with
    | Ok uid -> uid
    | Error e -> Alcotest.fail (Multics_fs.Hierarchy.error_to_string e)
  in
  (match
     Multics_fs.Hierarchy.set_gate_bound hierarchy ~subject:System.initializer_subject ~uid
       ~gate_bound:3
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Multics_fs.Hierarchy.error_to_string e));
  let segno =
    check_env "resolve" (User_env.resolve_path system ~handle:alice ~path:">sl1>mail_subsystem")
  in
  let ring =
    check_api "enter"
      (Gate_calls.enter_subsystem system ~handle:alice ~segno ~entry_offset:1 ~name:"mail")
  in
  Alcotest.(check int) "entered ring 2" 2 (Multics_machine.Ring.to_int ring);
  let restored = check_api "exit" (Gate_calls.exit_subsystem system ~handle:alice) in
  Alcotest.(check int) "back to ring 4" 4 (Multics_machine.Ring.to_int restored);
  (* From ring 4 again, an entry offset beyond the gate bound must be
     refused as a non-gate. *)
  (match Gate_calls.enter_subsystem system ~handle:alice ~segno ~entry_offset:9 ~name:"mail" with
  | Error (Api.Hardware_denied (Multics_machine.Hardware.Not_a_gate _)) -> ()
  | Ok _ -> Alcotest.fail "non-gate entry accepted"
  | Error e -> Alcotest.fail ("unexpected: " ^ Api.error_to_string e));
  match Gate_calls.exit_subsystem system ~handle:alice with
  | Error Api.Not_in_subsystem -> ()
  | Ok _ -> Alcotest.fail "exited a subsystem twice"
  | Error e -> Alcotest.fail ("unexpected: " ^ Api.error_to_string e)

let test_ipc_gates () =
  let system, alice = boot () in
  let chan = check_api "create" (Gate_calls.create_channel system ~handle:alice) in
  Alcotest.(check bool) "no pending" false (check_api "block" (Gate_calls.block system ~handle:alice ~channel:chan));
  check_api "wakeup" (Gate_calls.send_wakeup system ~handle:alice ~channel:chan);
  Alcotest.(check bool) "pending consumed" true
    (check_api "block" (Gate_calls.block system ~handle:alice ~channel:chan));
  match Gate_calls.send_wakeup system ~handle:alice ~channel:999 with
  | Error (Api.No_such_channel _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "bogus channel accepted"

let test_io_gates_routed () =
  (* Device_drivers config: terminal gate; Network_only: net gate. *)
  let system, alice = boot ~config:Config.baseline_645 () in
  check_api "attach" (Gate_calls.attach_device system ~handle:alice ~device:Multics_io.Device.Terminal);
  check_api "write" (Gate_calls.device_write system ~handle:alice ~device:Multics_io.Device.Terminal ~message:5);
  Alcotest.(check (option int)) "read" (Some 5)
    (check_api "read" (Gate_calls.device_read system ~handle:alice ~device:Multics_io.Device.Terminal));
  check_api "detach" (Gate_calls.detach_device system ~handle:alice ~device:Multics_io.Device.Terminal);
  let system2, alice2 = boot () in
  check_api "net attach" (Gate_calls.attach_device system2 ~handle:alice2 ~device:Multics_io.Device.Terminal);
  check_api "net write"
    (Gate_calls.device_write system2 ~handle:alice2 ~device:Multics_io.Device.Terminal ~message:9);
  Alcotest.(check (option int)) "net read" (Some 9)
    (check_api "net read" (Gate_calls.device_read system2 ~handle:alice2 ~device:Multics_io.Device.Terminal))

let test_audit_records_refusals () =
  let system, alice = boot () in
  let before = Audit_log.refusal_count (System.audit system) in
  (match Gate_calls.read_word system ~handle:alice ~segno:999 ~offset:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus segno accepted");
  Alcotest.(check bool) "refusal audited" true
    (Audit_log.refusal_count (System.audit system) > before)

(* ----- Initialization ----- *)

let test_init_strategies () =
  let bootstrap = Init.run Config.baseline_645 in
  let image = Init.run Config.kernel_6180 in
  Alcotest.(check bool) "bootstrap runs privileged init" true
    (bootstrap.Init.privileged_total > 5_000);
  Alcotest.(check bool) "image start is small" true (image.Init.privileged_total < 500);
  Alcotest.(check bool) "the work moved offline, not away" true
    (image.Init.offline_total > 3_000)

let test_init_network_fewer_device_steps () =
  let with_devices = Init.run Config.baseline_645 in
  let network = Init.run { Config.baseline_645 with Config.io = Config.Network_only } in
  let device_steps r =
    List.length (List.filter (fun s -> s.Init.device_related) r.Init.steps)
  in
  Alcotest.(check int) "five device steps" 5 (device_steps with_devices);
  Alcotest.(check int) "one network step" 1 (device_steps network)

(* ----- Boundary cost model (E4/E5) ----- *)

let test_boundary_pressure () =
  (* On the 645 the boundary between A and B is ruinous for chatty
     interfaces; on the 6180 it is essentially free. *)
  let over_645 = Boundary.removal_overhead Multics_machine.Cost.h645 ~inner_calls:20 ~work:50 in
  let over_6180 = Boundary.removal_overhead Multics_machine.Cost.h6180 ~inner_calls:20 ~work:50 in
  Alcotest.(check bool) "645 pressure large" true (over_645 > 5.0);
  Alcotest.(check bool) "6180 pressure gone" true (over_6180 < 1.05)

let test_boundary_floor () =
  (* With zero inner calls the placements differ only by the single
     entry crossing. *)
  let cost = Multics_machine.Cost.h6180 in
  let inside = Boundary.invocation_cost cost ~placement:Boundary.Both_inside ~inner_calls:0 ~work:10 in
  let between =
    Boundary.invocation_cost cost ~placement:Boundary.Boundary_between ~inner_calls:0 ~work:10
  in
  Alcotest.(check bool) "single-crossing difference" true (abs (inside - between) < 20)

(* ----- Policy/mechanism partition (E9) ----- *)

let test_policy_partition_matrix () =
  let rows = Page_policy.attack_matrix () in
  Alcotest.(check int) "six rows" 6 (List.length rows);
  List.iter
    (fun row ->
      let r = row.Page_policy.result in
      match (row.Page_policy.placement, row.Page_policy.attack) with
      | Config.Policy_in_ring0, Page_policy.Read_secret ->
          Alcotest.(check bool) "ring0 reads" true r.Page_policy.released
      | Config.Policy_in_ring0, Page_policy.Overwrite_segment ->
          Alcotest.(check bool) "ring0 writes" true r.Page_policy.modified
      | Config.Policy_in_ring0, Page_policy.Deny_service ->
          Alcotest.(check bool) "ring0 denies" true r.Page_policy.denied
      | Config.Policy_in_ring1, Page_policy.Deny_service ->
          Alcotest.(check bool) "ring1 can still deny" true r.Page_policy.denied
      | Config.Policy_in_ring1, _ ->
          Alcotest.(check bool) "ring1 cannot release/modify" false
            (r.Page_policy.released || r.Page_policy.modified))
    rows

let suite =
  [
    ("gate counts baseline", `Quick, test_gate_counts_baseline);
    ("gate removal fractions", `Quick, test_gate_removal_fractions);
    ("gate monotone shrink", `Quick, test_gate_monotone_shrink);
    ("gate find", `Quick, test_gate_find);
    ("login / bad password", `Quick, test_login_and_bad_password);
    ("login ring by mechanism", `Quick, test_login_ring_by_mechanism);
    ("create/write/read", `Quick, test_create_write_read);
    ("acl denies other user", `Quick, test_acl_denies_other_user);
    ("removed gate absent", `Quick, test_removed_gate_absent);
    ("user env equivalence", `Quick, test_user_env_equivalence);
    ("linking both placements", `Quick, test_linking_both_placements);
    ("subsystem entry/exit", `Quick, test_subsystem_entry_and_exit);
    ("ipc gates", `Quick, test_ipc_gates);
    ("io gates routed", `Quick, test_io_gates_routed);
    ("audit records refusals", `Quick, test_audit_records_refusals);
    ("init strategies", `Quick, test_init_strategies);
    ("init network device steps", `Quick, test_init_network_fewer_device_steps);
    ("boundary pressure", `Quick, test_boundary_pressure);
    ("boundary floor", `Quick, test_boundary_floor);
    ("policy partition matrix", `Quick, test_policy_partition_matrix);
  ]

(* ----- Process management and the remaining gates ----- *)

let test_process_management () =
  let system, alice = boot ~config:Config.baseline_645 () in
  let child = check_api "create_process" (Gate_calls.create_process system ~handle:alice) in
  Alcotest.(check bool) "child is a new handle" true (child <> alice);
  let siblings = check_api "list" (Gate_calls.list_processes system ~handle:alice) in
  Alcotest.(check (list int)) "two processes" [ alice; child ] siblings;
  let info = check_api "proc_info" (Gate_calls.proc_info system ~handle:child) in
  Alcotest.(check string) "same principal" "Alice.Dev.a" info.Api.info_principal;
  check_api "destroy child" (Gate_calls.destroy_process system ~handle:alice ~target:child);
  Alcotest.(check (list int)) "child gone" [ alice ]
    (check_api "list again" (Gate_calls.list_processes system ~handle:alice))

let test_destroy_foreign_process_refused () =
  let system, alice = boot ~config:Config.baseline_645 () in
  ignore
    (System.add_account system ~person:"Bob" ~project:"Ops" ~password:"pw"
       ~clearance:Label.unclassified);
  let bob =
    match System.login system ~person:"Bob" ~project:"Ops" ~password:"pw" with
    | Ok h -> h
    | Error e -> Alcotest.fail (System.login_error_to_string e)
  in
  match Gate_calls.destroy_process system ~handle:alice ~target:bob with
  | Error (Api.Not_authorized _) -> ()
  | Ok () -> Alcotest.fail "destroyed a foreign process"
  | Error e -> Alcotest.fail ("unexpected: " ^ Api.error_to_string e)

let test_new_proc () =
  let system, alice = boot ~config:Config.baseline_645 () in
  let fresh = check_api "new_proc" (Gate_calls.new_proc system ~handle:alice) in
  Alcotest.(check bool) "fresh handle" true (fresh <> alice);
  Alcotest.(check bool) "old handle dead" true (System.proc system alice = None);
  (* The fresh process has only the primed segments known. *)
  let info = check_api "info" (Gate_calls.proc_info system ~handle:fresh) in
  Alcotest.(check int) "primed segments" 4 info.Api.info_known_segments

let test_process_gates_unified_fallback () =
  (* Under the unified configuration the login gates are gone, but the
     same functions are reached through subsystem entry. *)
  let system, alice = boot () in
  Alcotest.(check bool) "create_process gate absent" true
    (Gate.find (System.config system) ~gate_name:"create_process" = None);
  let child = check_api "create via unified path" (Gate_calls.create_process system ~handle:alice) in
  Alcotest.(check bool) "child alive" true (System.proc system child <> None)

let test_working_dir_gates () =
  let system, alice = boot ~config:Config.baseline_645 () in
  let wd = check_api "get_working_dir" (Gate_calls.get_working_dir system ~handle:alice) in
  let listing = check_api "list wd" (Gate_calls.list_directory system ~handle:alice ~dir_segno:wd) in
  Alcotest.(check (list string)) "home empty" [] listing;
  let sub =
    check_api "mkdir"
      (Gate_calls.create_directory system ~handle:alice ~dir_segno:wd ~name:"work"
         ~acl:(Acl.of_strings [ ("Alice.Dev.*", "rew") ])
         ~label:Label.unclassified)
  in
  check_api "set_working_dir" (Gate_calls.set_working_dir system ~handle:alice ~dir_segno:sub);
  let wd2 = check_api "get again" (Gate_calls.get_working_dir system ~handle:alice) in
  Alcotest.(check int) "wd moved" sub wd2

let test_initiate_count_and_terminate_by_path () =
  let system, alice = boot ~config:Config.baseline_645 () in
  let before = check_api "count" (Gate_calls.initiate_count system ~handle:alice) in
  let _segno =
    check_api "create"
      (Gate_calls.create_segment_by_path system ~handle:alice ~path:">udd>Dev>Alice>tmp"
         ~acl:(Acl.of_strings [ ("Alice.Dev.*", "rw") ])
         ~label:Label.unclassified)
  in
  Alcotest.(check int) "one more known" (before + 1)
    (check_api "count2" (Gate_calls.initiate_count system ~handle:alice));
  check_api "terminate_by_path"
    (Gate_calls.terminate_by_path system ~handle:alice ~path:">udd>Dev>Alice>tmp");
  Alcotest.(check int) "back to before" before
    (check_api "count3" (Gate_calls.initiate_count system ~handle:alice))

let test_quota_gate () =
  let system, alice = boot () in
  let home =
    check_env "resolve home" (User_env.resolve_path system ~handle:alice ~path:">udd>Dev>Alice")
  in
  check_api "set_quota" (Gate_calls.set_quota system ~handle:alice ~segno:home ~quota:(Some 2));
  let seg =
    check_env "segment"
      (User_env.create_segment_at system ~handle:alice ~path:">udd>Dev>Alice>fat"
         ~acl:(Acl.of_strings [ ("Alice.Dev.*", "rw") ])
         ~label:Label.unclassified)
  in
  let wpp = Multics_fs.Hierarchy.words_per_page (System.hierarchy system) in
  check_api "page 1" (Gate_calls.write_word system ~handle:alice ~segno:seg ~offset:0 ~value:1);
  check_api "page 2" (Gate_calls.write_word system ~handle:alice ~segno:seg ~offset:wpp ~value:1);
  match Gate_calls.write_word system ~handle:alice ~segno:seg ~offset:(2 * wpp) ~value:1 with
  | Error (Api.Fs (Multics_fs.Hierarchy.Quota_exceeded _)) -> ()
  | Ok () -> Alcotest.fail "quota not enforced through the gate"
  | Error e -> Alcotest.fail ("unexpected: " ^ Api.error_to_string e)

let test_list_links_gate () =
  let system, alice = boot ~config:Config.baseline_645 () in
  let seg =
    check_api "object"
      (Gate_calls.create_segment_by_path system ~handle:alice ~path:">udd>Dev>Alice>obj"
         ~acl:(Acl.of_strings [ ("Alice.Dev.*", "rew") ])
         ~label:Label.unclassified)
  in
  (match System.proc system alice with
  | None -> Alcotest.fail "no proc"
  | Some p ->
      let uid =
        match Multics_fs.Kst.uid_of_segno p.System.kst seg with
        | Ok uid -> uid
        | Error e -> Alcotest.fail (Multics_fs.Kst.error_to_string e)
      in
      Multics_link.Object_seg.Store.put (System.store system) ~uid
        (Multics_link.Object_seg.make ~text_words:10 ~definitions:[]
           ~links:[ ("a", "x"); ("b", "y") ] ()));
  let links = check_api "list_links" (Gate_calls.list_links system ~handle:alice ~segno:seg) in
  Alcotest.(check int) "two links" 2 (List.length links);
  Alcotest.(check bool) "none snapped" true
    (List.for_all (fun l -> not l.Api.link_snapped) links)

let extra_suite =
  [
    ("process management", `Quick, test_process_management);
    ("destroy foreign process refused", `Quick, test_destroy_foreign_process_refused);
    ("new_proc", `Quick, test_new_proc);
    ("process gates unified fallback", `Quick, test_process_gates_unified_fallback);
    ("working dir gates", `Quick, test_working_dir_gates);
    ("initiate_count / terminate_by_path", `Quick, test_initiate_count_and_terminate_by_path);
    ("quota gate", `Quick, test_quota_gate);
    ("list_links gate", `Quick, test_list_links_gate);
  ]

(* ----- Programs and the full-system session ----- *)

let simple_program =
  let open Program in
  make ~name:"simple"
    [
      Create_segment
        {
          path = ">udd>Dev>Alice>data";
          acl = Acl.of_strings [ ("Alice.Dev.*", "rw") ];
          label = Label.unclassified;
          slot = "d";
        };
      Write_word { seg = "d"; offset = 0; value = Const 11 };
      Read_word { seg = "d"; offset = 0; slot = "v" };
      Assert_slot { slot = "v"; expected = 11 };
      Repeat (3, [ Write_word { seg = "d"; offset = 1; value = Slot "v" } ]);
      Read_word { seg = "d"; offset = 1; slot = "w" };
      Assert_slot { slot = "w"; expected = 11 };
    ]

let test_program_runs_untimed () =
  let system, alice = boot () in
  let outcome = Program.run system ~handle:alice simple_program in
  Alcotest.(check bool) "completed" true outcome.Program.completed;
  Alcotest.(check (option string)) "no failure" None outcome.Program.failed_step;
  Alcotest.(check int) "steps" 10 outcome.Program.steps_run;
  Alcotest.(check (option int)) "slot v" (Some 11) (List.assoc_opt "v" outcome.Program.slots)

let test_program_stops_at_failure () =
  let system, alice = boot () in
  let bad =
    Program.make ~name:"bad"
      [
        Program.Resolve { path = ">no>such>place"; slot = "x" };
        Program.Write_word { seg = "x"; offset = 0; value = Program.Const 1 };
      ]
  in
  let outcome = Program.run system ~handle:alice bad in
  Alcotest.(check bool) "not completed" false outcome.Program.completed;
  Alcotest.(check bool) "failure names resolve" true
    (match outcome.Program.failed_step with Some m -> String.length m > 0 | None -> false);
  Alcotest.(check int) "stopped at first step" 1 outcome.Program.steps_run

let test_program_unset_slot () =
  let system, alice = boot () in
  let bad =
    Program.make ~name:"unset" [ Program.Read_word { seg = "nowhere"; offset = 0; slot = "x" } ]
  in
  let outcome = Program.run system ~handle:alice bad in
  Alcotest.(check bool) "failed" false outcome.Program.completed

let test_program_same_everywhere () =
  (* The same program yields the same slots on every stage. *)
  let run config =
    let system = System.create config in
    ignore
      (System.add_account system ~person:"Alice" ~project:"Dev" ~password:"pw"
         ~clearance:Label.unclassified);
    let alice =
      match System.login system ~person:"Alice" ~project:"Dev" ~password:"pw" with
      | Ok h -> h
      | Error e -> Alcotest.fail (System.login_error_to_string e)
    in
    let o = Program.run system ~handle:alice simple_program in
    (o.Program.completed, List.assoc_opt "w" o.Program.slots)
  in
  let reference = run Config.baseline_645 in
  List.iter
    (fun config ->
      Alcotest.(check (pair bool (option int))) config.Config.name reference (run config))
    (List.tl Config.stages)

let test_session_timed_run () =
  let session = Session.boot Config.kernel_6180 in
  ignore
    (System.add_account (Session.system session) ~person:"Alice" ~project:"Dev" ~password:"pw"
       ~clearance:Label.unclassified);
  let alice =
    match System.login (Session.system session) ~person:"Alice" ~project:"Dev" ~password:"pw" with
    | Ok h -> h
    | Error e -> Alcotest.fail (System.login_error_to_string e)
  in
  let program =
    Program.make ~name:"timed"
      [
        Program.Create_segment
          {
            path = ">udd>Dev>Alice>t";
            acl = Acl.of_strings [ ("Alice.Dev.*", "rw") ];
            label = Label.unclassified;
            slot = "t";
          };
        Program.Compute 10_000;
        Program.Write_word { seg = "t"; offset = 0; value = Program.Const 5 };
        Program.Read_word { seg = "t"; offset = 0; slot = "v" };
        Program.Assert_slot { slot = "v"; expected = 5 };
      ]
  in
  ignore (Session.run_user session ~handle:alice program);
  Session.run session;
  Alcotest.(check bool) "completed" true (Session.all_completed session);
  let r = Session.report session in
  Alcotest.(check int) "compute cycles" 10_000 r.Session.compute_cycles_total;
  Alcotest.(check bool) "gate cycles charged" true (r.Session.gate_cycles_total > 0);
  Alcotest.(check bool) "entries counted" true (r.Session.total_gate_calls >= 4);
  Alcotest.(check bool) "page faults occurred" true (r.Session.page_faults > 0);
  Alcotest.(check bool) "clock advanced past compute" true (Session.now session > 10_000)

let test_session_concurrent_users () =
  let session = Session.boot Config.kernel_6180 in
  let system = Session.system session in
  ignore
    (System.add_account system ~person:"A" ~project:"P" ~password:"x"
       ~clearance:Label.unclassified);
  ignore
    (System.add_account system ~person:"B" ~project:"P" ~password:"x"
       ~clearance:Label.unclassified);
  let worker person =
    let handle =
      match System.login system ~person ~project:"P" ~password:"x" with
      | Ok h -> h
      | Error e -> Alcotest.fail (System.login_error_to_string e)
    in
    let program =
      Program.make ~name:(person ^ "-job")
        [
          Program.Create_segment
            {
              path = Printf.sprintf ">udd>P>%s>scratch" person;
              acl = Acl.of_strings [ (person ^ ".P.*", "rw") ];
              label = Label.unclassified;
              slot = "s";
            };
          Program.Repeat
            ( 5,
              [
                Program.Write_word { seg = "s"; offset = 0; value = Program.Const 1 };
                Program.Compute 2_000;
              ] );
        ]
    in
    Session.run_user session ~handle program
  in
  let _pa = worker "A" in
  let _pb = worker "B" in
  Session.run session;
  Alcotest.(check bool) "both completed" true (Session.all_completed session);
  Alcotest.(check int) "two programs" 2 (List.length (Session.results session))

let test_e13_shape () =
  match Multics_experiments.E13_cost_of_security.measure () with
  | [ baseline; reviewed; kernel ] ->
      let open Multics_experiments.E13_cost_of_security in
      Alcotest.(check bool) "645 overhead dominates" true (baseline.security_overhead > 0.5);
      Alcotest.(check bool) "6180 overhead small" true (reviewed.security_overhead < 0.10);
      Alcotest.(check bool) "kernel makes more supervisor entries" true
        (kernel.gate_calls > reviewed.gate_calls);
      Alcotest.(check bool) "yet still cheap on the 6180" true
        (kernel.security_overhead < 0.15)
  | _ -> Alcotest.fail "expected three configurations"

let session_suite =
  [
    ("program runs untimed", `Quick, test_program_runs_untimed);
    ("program stops at failure", `Quick, test_program_stops_at_failure);
    ("program unset slot", `Quick, test_program_unset_slot);
    ("program same everywhere", `Quick, test_program_same_everywhere);
    ("session timed run", `Quick, test_session_timed_run);
    ("session concurrent users", `Quick, test_session_concurrent_users);
    ("E13 shape", `Quick, test_e13_shape);
  ]

(* ----- Revocation (setfaults) and process directories ----- *)

let test_setfaults_revokes_cached_descriptor () =
  let system, alice = boot () in
  ignore
    (System.add_account system ~person:"Bob" ~project:"Dev" ~password:"pw"
       ~clearance:Label.unclassified);
  let bob =
    match System.login system ~person:"Bob" ~project:"Dev" ~password:"pw" with
    | Ok h -> h
    | Error e -> Alcotest.fail (System.login_error_to_string e)
  in
  let alice_segno =
    check_env "create"
      (User_env.create_segment_at system ~handle:alice ~path:">udd>Dev>Alice>note"
         ~acl:(Acl.of_strings [ ("Alice.Dev.*", "rw"); ("Bob.Dev.*", "r") ])
         ~label:Label.unclassified)
  in
  check_api "write" (Gate_calls.write_word system ~handle:alice ~segno:alice_segno ~offset:0 ~value:5);
  let bob_segno =
    check_env "bob resolves" (User_env.resolve_path system ~handle:bob ~path:">udd>Dev>Alice>note")
  in
  Alcotest.(check int) "bob reads while granted" 5
    (check_api "read" (Gate_calls.read_word system ~handle:bob ~segno:bob_segno ~offset:0));
  (* Alice revokes; Bob's cached descriptor must die with the grant. *)
  check_api "revoke"
    (Gate_calls.set_acl system ~handle:alice ~segno:alice_segno
       ~acl:(Acl.of_strings [ ("Alice.Dev.*", "rw") ]));
  (match Gate_calls.read_word system ~handle:bob ~segno:bob_segno ~offset:0 with
  | Error (Api.Hardware_denied _) -> ()
  | Ok _ -> Alcotest.fail "cached descriptor survived revocation"
  | Error e -> Alcotest.fail ("unexpected: " ^ Api.error_to_string e));
  (* And re-granting restores access the same way. *)
  check_api "re-grant"
    (Gate_calls.set_acl system ~handle:alice ~segno:alice_segno
       ~acl:(Acl.of_strings [ ("Alice.Dev.*", "rw"); ("Bob.Dev.*", "r") ]));
  Alcotest.(check int) "bob reads again" 5
    (check_api "read" (Gate_calls.read_word system ~handle:bob ~segno:bob_segno ~offset:0))

let test_process_directory_lifecycle () =
  let system, alice = boot () in
  let hierarchy = System.hierarchy system in
  let pdd = System.pdd_dir system in
  let name = System.process_dir_name ~handle:alice in
  (* The process directory exists while the process lives... *)
  Alcotest.(check bool) "pdd entry exists" true
    (Multics_fs.Hierarchy.raw_lookup hierarchy ~dir:pdd ~name <> None);
  (* ... and the process can create scratch segments inside it. *)
  (match System.proc system alice with
  | None -> Alcotest.fail "no proc"
  | Some p -> (
      match Multics_fs.Hierarchy.raw_lookup hierarchy ~dir:pdd ~name with
      | None -> Alcotest.fail "no process dir"
      | Some uid ->
          let segno = System.install_known system p ~uid in
          let scratch =
            check_api "scratch"
              (Gate_calls.create_segment system ~handle:alice ~dir_segno:segno ~name:"temp"
                 ~acl:(Acl.of_strings [ ("Alice.Dev.*", "rw") ])
                 ~label:Label.unclassified)
          in
          check_api "scratch write"
            (Gate_calls.write_word system ~handle:alice ~segno:scratch ~offset:0 ~value:1)));
  (* Logout destroys the whole subtree. *)
  ignore (System.logout system ~handle:alice);
  Alcotest.(check bool) "pdd entry gone" true
    (Multics_fs.Hierarchy.raw_lookup hierarchy ~dir:pdd ~name = None)

let test_revocation_attack_in_corpus () =
  let results = Multics_audit.Pentest.run_corpus Config.kernel_6180 in
  match
    List.find_opt
      (fun (a, _) -> a.Multics_audit.Pentest.attack_name = "stale-descriptor-after-revocation")
      results
  with
  | Some (_, Multics_audit.Pentest.Refused _) -> ()
  | Some (_, o) -> Alcotest.fail (Multics_audit.Pentest.outcome_name o)
  | None -> Alcotest.fail "attack missing from corpus"

let revocation_suite =
  [
    ("setfaults revokes cached descriptor", `Quick, test_setfaults_revokes_cached_descriptor);
    ("process directory lifecycle", `Quick, test_process_directory_lifecycle);
    ("revocation attack in corpus", `Quick, test_revocation_attack_in_corpus);
  ]

let test_session_interrupt_disciplines () =
  (* The full-system session carries the configured interrupt
     discipline: inline perturbs the running programs, handler
     processes do not. *)
  let run config =
    let session = Session.boot config in
    ignore
      (System.add_account (Session.system session) ~person:"Alice" ~project:"Dev"
         ~password:"pw" ~clearance:Label.unclassified);
    let alice =
      match
        System.login (Session.system session) ~person:"Alice" ~project:"Dev" ~password:"pw"
      with
      | Ok h -> h
      | Error e -> Alcotest.fail (System.login_error_to_string e)
    in
    let pid =
      Session.run_user session ~handle:alice
        (Program.make ~name:"worker" [ Program.Compute 100_000 ])
    in
    for i = 1 to 8 do
      Session.post_interrupt session ~delay:(i * 9_000) ~device:Multics_io.Device.Terminal
    done;
    Session.run session;
    Multics_proc.Sim.perturbations_of (Session.sim session) pid
  in
  Alcotest.(check bool) "inline perturbs" true (run Config.baseline_645 > 0);
  Alcotest.(check int) "handler processes do not" 0 (run Config.kernel_6180)

let session_interrupt_suite =
  [ ("session interrupt disciplines", `Quick, test_session_interrupt_disciplines) ]
