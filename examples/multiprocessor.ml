(* Multiprocessor: the connect discipline live.

   Boots a kernel with a 2-CPU plant, warms both CPUs' associative
   memories on one segment, then revokes the ACL from CPU 0 and shows
   that CPU 1 — whose associative memory held the old descriptor — is
   refused on its very next reference: the mutation did not return
   until CPU 1's memory was cleared.  Then the same timesharing
   workload at 1, 2 and 4 CPUs: throughput moves, the audit digest
   does not.

     dune exec examples/multiprocessor.exe
*)

open Multics_access
open Multics_kernel
module Call = Api.Call
module Smp = Multics_smp.Smp
module Workload = Multics_sched.Workload

let say fmt = Printf.printf (fmt ^^ "\n%!")

let gate what system ~handle request =
  match Call.dispatch system ~handle request with
  | Ok reply -> reply
  | Error e -> failwith (Printf.sprintf "%s: %s" what (Fmt.str "%a" Api.pp e))

let () =
  say "--- the connect discipline: revocation reaches every CPU ---";
  let system = System.create Config.kernel_6180 in
  let plant = Smp.create ~ncpus:2 ~cost:(System.cost system) () in
  System.attach_plant system (Some plant);
  ignore
    (System.add_account system ~person:"Alice" ~project:"Dev" ~password:"pw"
       ~clearance:Label.unclassified);
  let handle =
    match System.login system ~person:"Alice" ~project:"Dev" ~password:"pw" with
    | Ok h -> h
    | Error e -> failwith (System.login_error_to_string e)
  in
  let segno =
    match
      User_env.create_segment_at system ~handle ~path:">udd>Dev>Alice>notes"
        ~acl:(Acl.of_strings [ ("Alice.Dev.*", "rw") ])
        ~label:Label.unclassified
    with
    | Ok segno -> segno
    | Error e -> failwith (User_env.error_to_string e)
  in
  ignore (gate "write" system ~handle (Call.Write_word { segno; offset = 0; value = 7 }));
  Smp.set_current plant 0;
  ignore (gate "read on cpu 0" system ~handle (Call.Read_word { segno; offset = 0 }));
  Smp.set_current plant 1;
  ignore (gate "read on cpu 1" system ~handle (Call.Read_word { segno; offset = 0 }));
  say "both CPUs' associative memories hold the descriptor for segment %d" segno;
  Smp.set_current plant 0;
  ignore
    (gate "set_acl" system ~handle
       (Call.Set_acl { segno; acl = Acl.of_strings [ ("Operator.*.*", "rw") ] }));
  say "CPU 0 revoked Alice's access; connects received by cpu 1: %d"
    (List.assoc "connects_received" (Smp.cpu_status plant 1));
  Smp.set_current plant 1;
  (match Call.dispatch system ~handle (Call.Read_word { segno; offset = 0 }) with
  | Error e -> say "CPU 1's next reference: refused (%s) — no stale Permit" (Fmt.str "%a" Api.pp e)
  | Ok _ -> failwith "CPU 1 replayed a stale Permit!");

  say "";
  say "--- the same workload at 1, 2, 4 CPUs: timing moves, mediation never ---";
  let run cpus =
    let spec =
      { Workload.default with seed = 7; users = 8; vps = cpus; cpus; think = 2_000 }
    in
    Workload.run spec
  in
  let results = List.map (fun cpus -> (cpus, run cpus)) [ 1; 2; 4 ] in
  List.iter
    (fun (cpus, (r : Workload.result)) ->
      say "  %d CPU%s: %6.2f inter/Mcycle, digest %08x, %d granted / %d refused" cpus
        (if cpus = 1 then " " else "s")
        r.Workload.r_throughput r.Workload.r_signature r.Workload.r_audit_granted
        r.Workload.r_audit_refused)
    results;
  let _, (base : Workload.result) = List.hd results in
  if
    List.for_all
      (fun (_, (r : Workload.result)) -> r.Workload.r_signature = base.Workload.r_signature)
      results
  then say "coherence parity holds: every CPU count produced the identical audit digest"
  else failwith "audit digests diverged across CPU counts"
