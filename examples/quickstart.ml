(* Quickstart: boot the security kernel, create users, share a segment
   under an ACL, and watch the reference monitor rule.

     dune exec examples/quickstart.exe
*)

open Multics_access
open Multics_kernel
module Call = Api.Call

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n")

let show_api what = function
  | Ok _ -> Printf.printf "   %-42s granted\n" what
  | Error e -> Printf.printf "   %-42s REFUSED: %s\n" what (Api.error_to_string e)

let expect what = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "%s: %s" what e)

let () =
  step "boot the engineered security kernel (%s)" Config.kernel_6180.Config.name;
  let system = System.create Config.kernel_6180 in
  Printf.printf "   gates exposed by this kernel: %d (baseline supervisor had %d)\n"
    (Gate.count Config.kernel_6180) (Gate.count Config.baseline_645);
  Printf.printf "   privileged statements run at boot: %d (bootstrap would run %d)\n"
    (System.init_report system).Init.privileged_total
    (Init.run Config.baseline_645).Init.privileged_total;

  step "register two users and log them in";
  ignore
    (System.add_account system ~person:"Schroeder" ~project:"CSR" ~password:"mac-80"
       ~clearance:(Label.make Label.Secret [ "crypto" ]));
  ignore
    (System.add_account system ~person:"Saltzer" ~project:"CSR" ~password:"protection"
       ~clearance:Label.unclassified);
  (* Schroeder's clearance is Secret{crypto}, but this session runs at
     the Unclassified level so he can create and edit Unclassified
     material (the *-property forbids writing below one's level). *)
  let mike =
    expect "login Schroeder"
      (Result.map_error System.login_error_to_string
         (System.login system ~level:Label.unclassified ~person:"Schroeder" ~project:"CSR"
            ~password:"mac-80"))
  in
  let jerry =
    expect "login Saltzer"
      (Result.map_error System.login_error_to_string
         (System.login system ~person:"Saltzer" ~project:"CSR" ~password:"protection"))
  in
  Printf.printf "   Schroeder.CSR logged in (process %d), session level Unclassified\n" mike;
  Printf.printf "   Saltzer.CSR logged in (process %d), clearance Unclassified\n" jerry;

  step "Schroeder creates a draft and shares it read-only with the project";
  let draft =
    expect "create draft"
      (Result.map_error User_env.error_to_string
         (User_env.create_segment_at system ~handle:mike ~path:">udd>CSR>Schroeder>rfc80"
            ~acl:(Acl.of_strings [ ("Schroeder.CSR.*", "rw"); ("*.CSR.*", "r") ])
            ~label:Label.unclassified))
  in
  show_api "Schroeder writes word 0 of the draft"
    (Call.dispatch system ~handle:mike (Call.Write_word { segno = draft; offset = 0; value = 80 }));

  step "Saltzer reads the shared draft through his own address space";
  (* Saltzer walks the tree with initiate calls — naming is user-ring
     business in this kernel. *)
  let draft_for_jerry =
    expect "resolve"
      (Result.map_error User_env.error_to_string
         (User_env.resolve_path system ~handle:jerry ~path:">udd>CSR>Schroeder>rfc80"))
  in
  (match Call.dispatch system ~handle:jerry (Call.Read_word { segno = draft_for_jerry; offset = 0 }) with
  | Ok (Call.Word v) -> Printf.printf "   Saltzer reads word 0: %d\n" v
  | Ok _ -> assert false
  | Error e -> Printf.printf "   read failed: %s\n" (Api.error_to_string e));
  show_api "Saltzer tries to MODIFY the draft"
    (Call.dispatch system ~handle:jerry
       (Call.Write_word { segno = draft_for_jerry; offset = 0; value = 0 }));

  step "the lattice rules independently of ACLs";
  (* A second Schroeder session, this time at his full clearance. *)
  let mike_high =
    expect "login Schroeder (high)"
      (Result.map_error System.login_error_to_string
         (System.login system ~person:"Schroeder" ~project:"CSR" ~password:"mac-80"))
  in
  let classified =
    expect "create classified note"
      (Result.map_error User_env.error_to_string
         (User_env.create_segment_at system ~handle:mike_high
            ~path:">udd>CSR>Schroeder>codeword"
            ~acl:(Acl.of_strings [ ("*.*.*", "rw") ]) (* generous ACL on purpose *)
            ~label:(Label.make Label.Secret [ "crypto" ])))
  in
  show_api "Schroeder (Secret{crypto} session) writes it"
    (Call.dispatch system ~handle:mike_high
       (Call.Write_word { segno = classified; offset = 0; value = 1 }));
  let classified_for_jerry =
    expect "resolve classified"
      (Result.map_error User_env.error_to_string
         (User_env.resolve_path system ~handle:jerry ~path:">udd>CSR>Schroeder>codeword"))
  in
  show_api "Saltzer (Unclassified) tries to read it"
    (Call.dispatch system ~handle:jerry
       (Call.Read_word { segno = classified_for_jerry; offset = 0 }));

  step "removed mechanisms answer as absent gates";
  show_api "calling the removed kernel resolver"
    (Call.dispatch system ~handle:jerry (Call.Resolve_path { path = ">udd" }));

  step "the audit trail saw everything";
  let audit = System.audit system in
  Printf.printf "   %d mediated operations, %d refusals:\n" (Audit_log.length audit)
    (Audit_log.refusal_count audit);
  List.iter
    (fun r -> Printf.printf "     %s\n" (Fmt.str "%a" Audit_log.pp_record r))
    (Audit_log.refusals audit);
  print_newline ()
