(* Compartments: a multi-level timesharing session under the Mitre
   model — three users at different clearances share one hierarchy, and
   the lattice decides which flows exist.

     dune exec examples/compartments.exe
*)

open Multics_access
open Multics_kernel
module Call = Api.Call

let expect what = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "%s: %s" what e)

let login system ~person ~project ~password =
  expect "login"
    (Result.map_error System.login_error_to_string (System.login system ~person ~project ~password))

let attempt label result =
  match result with
  | Ok _ -> Printf.printf "   %-58s ok\n" label
  | Error e -> Printf.printf "   %-58s REFUSED (%s)\n" label (Api.error_to_string e)

let read system ~handle ~segno = Call.dispatch system ~handle (Call.Read_word { segno; offset = 0 })

let write system ~handle ~segno ~offset ~value =
  Call.dispatch system ~handle (Call.Write_word { segno; offset; value })

let () =
  print_endline "A multi-level service: Unclassified <= Secret{crypto} <= TopSecret{crypto,nato}";
  let system = System.create Config.kernel_6180 in
  ignore
    (System.add_account system ~person:"Low" ~project:"Intel" ~password:"a"
       ~clearance:Label.unclassified);
  ignore
    (System.add_account system ~person:"Mid" ~project:"Intel" ~password:"b"
       ~clearance:(Label.make Label.Secret [ "crypto" ]));
  ignore
    (System.add_account system ~person:"High" ~project:"Intel" ~password:"c"
       ~clearance:(Label.make Label.Top_secret [ "crypto"; "nato" ]));
  let low = login system ~person:"Low" ~project:"Intel" ~password:"a" in
  let mid = login system ~person:"Mid" ~project:"Intel" ~password:"b" in
  let high = login system ~person:"High" ~project:"Intel" ~password:"c" in

  (* A shared bulletin area readable/writable by the whole project;
     individual postings carry their own labels. *)
  print_endline "\n1. Mid posts a Secret{crypto} report in the shared area:";
  let report =
    expect "report"
      (Result.map_error User_env.error_to_string
         (User_env.create_segment_at system ~handle:mid ~path:">udd>Intel>Mid>report"
            ~acl:(Acl.of_strings [ ("*.Intel.*", "rw") ])
            ~label:(Label.make Label.Secret [ "crypto" ])))
  in
  attempt "Mid writes the report (same level)"
    (write system ~handle:mid ~segno:report ~offset:0 ~value:7);

  print_endline "\n2. Who can observe it?";
  let for_user handle =
    Result.map_error User_env.error_to_string
      (User_env.resolve_path system ~handle ~path:">udd>Intel>Mid>report")
  in
  let report_low = expect "resolve low" (for_user low) in
  let report_high = expect "resolve high" (for_user high) in
  attempt "Low (Unclassified) reads Secret{crypto}" (read system ~handle:low ~segno:report_low);
  attempt "Mid (Secret{crypto}) reads it" (read system ~handle:mid ~segno:report);
  attempt "High (TopSecret{crypto,nato}) reads it" (read system ~handle:high ~segno:report_high);

  print_endline "\n3. Who can modify it? (the *-property)";
  attempt "High (dominates) tries to write DOWN into it"
    (write system ~handle:high ~segno:report_high ~offset:1 ~value:9);
  attempt "Low (dominated) blind-writes UP into it"
    (write system ~handle:low ~segno:report_low ~offset:2 ~value:1);
  attempt "Mid (equal) writes it" (write system ~handle:mid ~segno:report ~offset:3 ~value:3);

  print_endline "\n4. Incomparable compartments do not flow either way:";
  let nato_note =
    expect "nato note"
      (Result.map_error User_env.error_to_string
         (User_env.create_segment_at system ~handle:high ~path:">udd>Intel>High>nato_note"
            ~acl:(Acl.of_strings [ ("*.Intel.*", "rw") ])
            ~label:(Label.make Label.Secret [ "nato" ])))
  in
  ignore nato_note;
  let nato_for_mid =
    expect "resolve nato"
      (Result.map_error User_env.error_to_string
         (User_env.resolve_path system ~handle:mid ~path:">udd>Intel>High>nato_note"))
  in
  attempt "Mid (Secret{crypto}) reads Secret{nato}" (read system ~handle:mid ~segno:nato_for_mid);
  attempt "Mid (Secret{crypto}) writes Secret{nato}"
    (write system ~handle:mid ~segno:nato_for_mid ~offset:0 ~value:5);

  print_endline "\n5. The flow picture this enforces:";
  print_endline "   Unclassified --> Secret{crypto} --> TopSecret{crypto,nato}";
  print_endline "   Secret{nato} --> TopSecret{crypto,nato}";
  print_endline "   (arrows are the only directions information may move)";
  print_newline ()
