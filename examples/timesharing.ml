(* Timesharing: the full-system simulation — several users' programs
   running concurrently over the simulated machine, with gate-crossing
   costs, page faults and the dedicated kernel processes all in play.

     dune exec examples/timesharing.exe
*)

open Multics_access
open Multics_kernel

let user_program person =
  let open Program in
  let home = ">udd>Mac>" ^ person in
  make
    ~name:(person ^ "-session")
    [
      Create_directory
        {
          path = home ^ ">work";
          acl = Acl.of_strings [ (person ^ ".Mac.*", "rew") ];
          label = Label.unclassified;
          slot = "work";
        };
      Create_segment
        {
          path = home ^ ">work>notes";
          acl = Acl.of_strings [ (person ^ ".Mac.*", "rw") ];
          label = Label.unclassified;
          slot = "notes";
        };
      Bind_name { name = "notes"; seg = "notes" };
      Repeat
        ( 10,
          [
            Lookup_name { name = "notes"; slot = "n" };
            Read_word { seg = "n"; offset = 0; slot = "v" };
            Compute 8_000;
            Write_word { seg = "n"; offset = 0; value = Const 1 };
            Write_word { seg = "n"; offset = 64; value = Const 2 };
            Write_word { seg = "n"; offset = 128; value = Const 3 };
          ] );
      Read_word { seg = "notes"; offset = 128; slot = "final" };
      Assert_slot { slot = "final"; expected = 3 };
    ]

let run config =
  Printf.printf "\n--- %s ---\n" config.Config.name;
  let session = Session.boot ~core:12 ~bulk:64 config in
  let system = Session.system session in
  let people = [ "Corbato"; "Saltzer"; "Schroeder"; "Clingen" ] in
  List.iter
    (fun person ->
      ignore
        (System.add_account system ~person ~project:"Mac" ~password:"muddy"
           ~clearance:Label.unclassified))
    people;
  let pids =
    List.map
      (fun person ->
        match System.login system ~person ~project:"Mac" ~password:"muddy" with
        | Ok handle -> Session.run_user session ~handle (user_program person)
        | Error e -> failwith (System.login_error_to_string e))
      people
  in
  (* Terminal traffic arrives throughout the run: 25 interrupts, one
     every 4k cycles.  Under the inline discipline their handlers run
     inside whichever user process is executing. *)
  for i = 1 to 25 do
    Session.post_interrupt session ~delay:(i * 4_000) ~device:Multics_io.Device.Terminal
  done;
  Session.run session;
  let perturbations =
    List.fold_left
      (fun acc pid -> acc + Multics_proc.Sim.perturbations_of (Session.sim session) pid)
      0 pids
  in
  let r = Session.report session in
  Printf.printf
    "programs: %d/%d completed | elapsed: %d cycles\n\
     supervisor entries: %d | gate cycles: %d | compute cycles: %d\n\
     page faults: %d | security overhead: %.1f%%\n\
     interrupt perturbations of user programs: %d\n"
    r.Session.programs_completed r.Session.programs r.Session.elapsed
    r.Session.total_gate_calls r.Session.gate_cycles_total r.Session.compute_cycles_total
    r.Session.page_faults
    (100.0 *. r.Session.security_overhead)
    perturbations;
  r

(* --- Act two: the traffic controller ---

   The same timesharing idea, now driven through lib/sched: interactive
   sessions thinking at terminals, absentee jobs, and daemons,
   multiplexed by the Multics multi-level-feedback controller under a
   working-set eligibility cap.  Prints the E17-style latency table. *)

let scheduled_run users =
  let open Multics_sched in
  Workload.run
    {
      Workload.default with
      seed = 1965;
      users;
      interactions = 3;
      think = 25_000;
      service = 1_500;
      working_set = 3;
      batch = 2;
      daemons = 1;
      vps = 2;
    }

let traffic_controller_act () =
  print_endline "\n--- The traffic controller: response time vs load (MLF, H6180) ---";
  let open Multics_sched in
  let t =
    Multics_util.Table.create ~title:"interactive response time by user count"
      ~columns:
        [
          ("users", Multics_util.Table.Right);
          ("done", Multics_util.Table.Right);
          ("inter/Mcyc", Multics_util.Table.Right);
          ("resp p50", Multics_util.Table.Right);
          ("resp p90", Multics_util.Table.Right);
          ("resp p99", Multics_util.Table.Right);
          ("preempt", Multics_util.Table.Right);
          ("faults", Multics_util.Table.Right);
        ]
  in
  List.iter
    (fun users ->
      let r = scheduled_run users in
      let stat name = try List.assoc name r.Workload.r_sched with Not_found -> 0 in
      Multics_util.Table.add_row t
        [
          string_of_int users;
          string_of_int r.Workload.r_completed;
          Multics_util.Table.fmt_float ~decimals:2 r.Workload.r_throughput;
          Multics_util.Table.fmt_float ~decimals:0 r.Workload.r_response.Multics_util.Stats.p50;
          Multics_util.Table.fmt_float ~decimals:0 r.Workload.r_response.Multics_util.Stats.p90;
          Multics_util.Table.fmt_float ~decimals:0 r.Workload.r_response.Multics_util.Stats.p99;
          string_of_int (stat "preemptions");
          string_of_int r.Workload.r_page_faults;
        ])
    [ 2; 8; 32 ];
  print_endline (Multics_util.Table.render t)

let () =
  print_endline "Four MIT users timesharing the simulated system, on three kernels.";
  let baseline = run Config.baseline_645 in
  let reviewed = run Config.hardware_rings in
  let kernel = run Config.kernel_6180 in
  print_endline "\n--- The cost of protection, per configuration ---";
  Printf.printf
    "  645 supervisor:        %5.1f%% of cycles spent crossing gates\n\
    \  6180 same supervisor:  %5.1f%%\n\
    \  6180 security kernel:  %5.1f%%  (%d supervisor entries vs %d: naming via\n\
    \                                  the user-ring RNT needs no kernel call,\n\
    \                                  while tree walks become per-component\n\
    \                                  initiates — both free on this hardware)\n"
    (100.0 *. baseline.Session.security_overhead)
    (100.0 *. reviewed.Session.security_overhead)
    (100.0 *. kernel.Session.security_overhead)
    kernel.Session.total_gate_calls reviewed.Session.total_gate_calls;
  traffic_controller_act ()
