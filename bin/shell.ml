(* An interactive shell over the kernel API — the reproduction as a
   drivable system.

     dune exec bin/shell.exe                      # interactive, kernel config
     dune exec bin/shell.exe -- --config baseline # the flawed 645 supervisor
     echo 'help' | dune exec bin/shell.exe        # scriptable
     dune exec bin/shell.exe -- -c 'login Alice Dev pw; ls >udd'

   Commands operate through exactly the same gates user programs use;
   every one lands in the audit trail ([audit] shows it). *)

open Multics_access
open Multics_kernel
module Obs = Multics_obs.Obs
module Smp = Multics_smp.Smp
module Site = Multics_site.Site
module Cmd = Multics_shellcmd.Shellcmd.Command
module Mc = Multics_mc.Mc
module Spec = Multics_spec.Spec

(* [fleet] is the distributed plant ([MULTICS_SITES] > 1): the [site]
   operator family drives it.  The single-site shell carries [None]
   and stays the seed, byte for byte.  [last_mc] holds the most recent
   model-checker outcome for [mc status]. *)
type shell = {
  system : System.t;
  mutable handle : int option;
  fleet : Site.t option;
  mutable last_mc : Mc.outcome option;
  mutable profiling : Obs.Snapshot.t option;  (* baseline of an open [spec profile] *)
  mutable profile : Spec.Profile.t option;  (* last captured gate-usage profile *)
}

let say fmt = Printf.printf (fmt ^^ "\n%!")

let require_login shell k =
  match shell.handle with
  | Some handle -> k handle
  | None -> say "not logged in (use: login Person Project password [level])"

let parse_level = function
  | "unclassified" -> Some Label.unclassified
  | "confidential" -> Some (Label.make Label.Confidential [])
  | "secret" -> Some (Label.make Label.Secret [])
  | "topsecret" -> Some (Label.make Label.Top_secret [])
  | _ -> None

let on_api shell what result =
  match result with
  | Ok v -> Some v
  | Error e ->
      ignore shell;
      say "%s: %s" what (Fmt.str "%a" Api.pp e);
      None

(* Every shell command goes through the typed dispatch surface — same
   mediation, audit and metering as any user program's gate call. *)
let gate shell what ~handle request = on_api shell what (Api.Call.dispatch shell.system ~handle request)

let on_env shell what result =
  match result with
  | Ok v -> Some v
  | Error e ->
      ignore shell;
      say "%s: %s" what (User_env.error_to_string e);
      None

let resolve shell handle path = on_env shell "resolve" (User_env.resolve_path shell.system ~handle ~path)

let cmd_help () =
  say
    "commands:\n\
    \  login PERSON PROJECT PASSWORD [unclassified|confidential|secret|topsecret]\n\
    \  adduser PERSON PROJECT PASSWORD [level]   register an account (admin)\n\
    \  logout | whoami | gates | audit [N]\n\
    \  ls PATH | mkdir PATH | create PATH | delete PATH\n\
    \  write PATH OFFSET VALUE | read PATH OFFSET | status PATH NAME\n\
    \  acl PATH PATTERN MODE   (e.g. acl >udd>Dev>A>x '*.Dev.*' r)\n\
    \  quota PATH PAGES | bind NAME PATH | lookup NAME\n\
    \  stats [json|reset]      live kernel counters (gates, VM, IPC, fault.*, salvage.*,\n\
    \                          backup.*) plus cache hit ratios (policy/hw.assoc/vm.ptw)\n\
    \                          and the traffic-controller section (queues, preemptions,\n\
    \                          response-time p50/p99)\n\
    \  sched status            traffic-controller policy + counters (via the Sched_status gate)\n\
    \  sched tune PARAM VALUE  adjust cap | quantum | age_after (via the Sched_tune gate)\n\
    \  sched demo [USERS]      run the deterministic timesharing workload, print latencies\n\
    \  cache status            decision-cache and associative-memory counters\n\
    \  cache clear             invalidate every cached access decision\n\
    \  smp status              multiprocessor plant: CPUs, connects, lock (set MULTICS_NCPU)\n\
    \  jobs status             experiment-harness domain pool: size, tasks, per-worker\n\
    \                          counts (set MULTICS_JOBS)\n\
    \  site status             distributed fleet: per-site epochs, links (set MULTICS_SITES)\n\
    \  site partition A B      operator-sever the link between two sites\n\
    \  site heal               heal severed links, rejoin fenced sites via salvage-and-resync\n\
    \  fault plan SEED SPEC    install a fault plan, e.g. fault plan 7 gate.deny=every:5\n\
    \  fault status            active plan + injector counters\n\
    \  fault clear             remove the active plan\n\
    \  mc run DEPTH [bug]      exhaustively model-check the reference monitor to DEPTH\n\
    \                          ('bug' re-enables the pre-PR 5 deferred-connect window)\n\
    \  mc status               the last exploration's states/depth table and verdicts\n\
    \  mc replay TRACE [bug]   replay a comma-separated action trace, report violations\n\
    \  spec profile start      record the per-gate dispatch counters from here on\n\
    \  spec profile stop NAME  snapshot the recording into a named gate-usage profile\n\
    \  spec apply              compile the captured profile, strip every unused gate\n\
    \                          (stripped gates refuse with Gate_absent; login survives)\n\
    \  spec clear              restore the full gate surface\n\
    \  spec status             the installed mask and the captured profile\n\
    \  salvage                 roll back aborted creates, drop dangling KST entries,\n\
    \                          re-derive descriptors from the access records\n\
    \  help | exit"

let cmd_adduser shell args =
  match args with
  | person :: project :: password :: rest ->
      let clearance =
        match rest with
        | [ level ] -> Option.value (parse_level level) ~default:Label.unclassified
        | _ -> Label.unclassified
      in
      (try
         ignore (System.add_account shell.system ~person ~project ~password ~clearance);
         say "account %s.%s created (clearance %s)" person project (Label.to_string clearance)
       with Invalid_argument m -> say "adduser: %s" m)
  | _ -> say "usage: adduser PERSON PROJECT PASSWORD [level]"

let cmd_login shell args =
  match args with
  | person :: project :: password :: rest -> (
      let level = match rest with [ l ] -> parse_level l | _ -> None in
      match System.login ?level shell.system ~person ~project ~password with
      | Ok handle ->
          shell.handle <- Some handle;
          say "logged in as %s.%s (process %d)" person project handle
      | Error e -> say "login: %s" (System.login_error_to_string e))
  | _ -> say "usage: login PERSON PROJECT PASSWORD [level]"

let cmd_logout shell =
  require_login shell (fun handle ->
      ignore (System.logout shell.system ~handle);
      shell.handle <- None;
      say "logged out")

let cmd_whoami shell =
  require_login shell (fun handle ->
      match gate shell "whoami" ~handle Api.Call.Proc_info with
      | Some (Api.Call.Info info) ->
          say "%s | ring %d | level %s | %d segments known | authenticated in ring %d"
            info.Api.info_principal info.Api.info_ring
            (Label.to_string info.Api.info_level)
            info.Api.info_known_segments info.Api.info_login_ring
      | Some _ | None -> ())

let cmd_ls shell path =
  require_login shell (fun handle ->
      match resolve shell handle path with
      | None -> ()
      | Some dir_segno -> (
          match gate shell "ls" ~handle (Api.Call.List_directory { dir_segno }) with
          | Some (Api.Call.Names names) ->
              if names = [] then say "(empty)" else List.iter (fun n -> say "  %s" n) names
          | Some _ | None -> ()))

let default_acl shell handle =
  match System.proc shell.system handle with
  | Some p ->
      Acl.of_strings
        [
          ( Printf.sprintf "%s.%s.*" (Principal.person p.System.principal)
              (Principal.project p.System.principal),
            "rew" );
        ]
  | None -> Acl.empty

let cmd_mkdir shell path =
  require_login shell (fun handle ->
      match
        on_env shell "mkdir"
          (User_env.create_directory_at shell.system ~handle ~path ~acl:(default_acl shell handle)
             ~label:Label.unclassified)
      with
      | Some segno -> say "created %s (segment %d)" path segno
      | None -> ())

let cmd_create shell path =
  require_login shell (fun handle ->
      match
        on_env shell "create"
          (User_env.create_segment_at shell.system ~handle ~path ~acl:(default_acl shell handle)
             ~label:Label.unclassified)
      with
      | Some segno -> say "created %s (segment %d)" path segno
      | None -> ())

let cmd_delete shell path =
  require_login shell (fun handle ->
      match on_env shell "delete" (User_env.delete_at shell.system ~handle ~path) with
      | Some () -> say "deleted %s" path
      | None -> ())

let cmd_write shell path offset value =
  require_login shell (fun handle ->
      match resolve shell handle path with
      | None -> ()
      | Some segno -> (
          match gate shell "write" ~handle (Api.Call.Write_word { segno; offset; value }) with
          | Some Api.Call.Done -> say "ok"
          | Some _ | None -> ()))

let cmd_read shell path offset =
  require_login shell (fun handle ->
      match resolve shell handle path with
      | None -> ()
      | Some segno -> (
          match gate shell "read" ~handle (Api.Call.Read_word { segno; offset }) with
          | Some (Api.Call.Word value) -> say "%d" value
          | Some _ | None -> ()))

let cmd_status shell dir_path name =
  require_login shell (fun handle ->
      match resolve shell handle dir_path with
      | None -> ()
      | Some dir_segno -> (
          match gate shell "status" ~handle (Api.Call.Status_entry { dir_segno; name }) with
          | Some (Api.Call.Status st) ->
              say "%s: %s, label %s, %d pages" st.Api.status_name
                (match st.Api.status_kind with
                | Multics_fs.Hierarchy.Segment -> "segment"
                | Multics_fs.Hierarchy.Directory -> "directory")
                (Label.to_string st.Api.status_label)
                st.Api.status_pages
          | Some _ | None -> ()))

let cmd_acl shell path pattern mode =
  require_login shell (fun handle ->
      match resolve shell handle path with
      | None -> ()
      | Some segno -> (
          (* Add/replace one entry on top of the current ACL. *)
          let hierarchy = System.hierarchy shell.system in
          match System.proc shell.system handle with
          | None -> ()
          | Some p -> (
              match Multics_fs.Kst.uid_of_segno p.System.kst segno with
              | Error e -> say "acl: %s" (Multics_fs.Kst.error_to_string e)
              | Ok uid -> (
                  let current =
                    Option.value (Multics_fs.Hierarchy.acl_of hierarchy uid) ~default:Acl.empty
                  in
                  match
                    (try
                       Ok
                         (Acl.add current
                            ~pattern:(Principal.pattern_of_string pattern)
                            ~mode:(Multics_machine.Mode.of_string mode))
                     with Invalid_argument m -> Error m)
                  with
                  | Error m -> say "acl: %s" m
                  | Ok acl -> (
                      match gate shell "acl" ~handle (Api.Call.Set_acl { segno; acl }) with
                      | Some Api.Call.Done ->
                          say "acl updated (revocation applied to cached descriptors)"
                      | Some _ | None -> ())))))

let cmd_quota shell path pages =
  require_login shell (fun handle ->
      match resolve shell handle path with
      | None -> ()
      | Some segno -> (
          match gate shell "quota" ~handle (Api.Call.Set_quota { segno; quota = Some pages }) with
          | Some Api.Call.Done -> say "quota cell of %d pages installed on %s" pages path
          | Some _ | None -> ()))

let cmd_bind shell name path =
  require_login shell (fun handle ->
      match resolve shell handle path with
      | None -> ()
      | Some segno -> (
          match on_env shell "bind" (User_env.bind_name shell.system ~handle ~name ~segno) with
          | Some () -> say "%s -> segment %d" name segno
          | None -> ()))

let cmd_lookup shell name =
  require_login shell (fun handle ->
      match on_env shell "lookup" (User_env.lookup_name shell.system ~handle ~name) with
      | Some segno -> say "segment %d" segno
      | None -> ())

let cmd_gates shell =
  let config = System.config shell.system in
  say "configuration: %s" config.Config.name;
  List.iter
    (fun (subsystem, n) -> say "  %-16s %d gates" subsystem n)
    (Gate.count_by_subsystem config);
  say "  %-16s %d gates total" "" (Gate.count config)

(* Hit ratios for the three associative memories, derived from the same
   obs counters the caches themselves register ("cache.<name>.*"). *)
let say_cache_ratios () =
  say "cache hit ratios:";
  List.iter
    (fun name ->
      let get field =
        Obs.Counter.get
          (Obs.Registry.counter (Obs.Registry.global ()) (Printf.sprintf "cache.%s.%s" name field))
      in
      let hits = get "hits" and misses = get "misses" in
      let total = hits + misses in
      if total = 0 then say "  %-10s no lookups yet" name
      else
        say "  %-10s %5.1f%%  (%d hits / %d lookups, %d invalidations, %d flushes)" name
          (100.0 *. float_of_int hits /. float_of_int total)
          hits total (get "invalidations") (get "flushes"))
    [ "policy"; "hw.assoc"; "vm.ptw" ]

(* The scheduler section of [stats]: the traffic controller's live
   counters and the response-time histogram the workload driver fills,
   all out of the same global obs registry the section above uses. *)
let say_sched_section () =
  let get name = Obs.Counter.get (Obs.Registry.counter (Obs.Registry.global ()) ("sched." ^ name)) in
  let dispatches = get "dispatches" in
  say "traffic controller:";
  if dispatches = 0 then say "  no dispatches yet (try: sched demo)"
  else begin
    say "  %-22s %d" "dispatches" dispatches;
    say "  %-22s %d" "preemptions" (get "preemptions");
    say "  %-22s %d" "quantum expiries" (get "quantum_expiries");
    say "  %-22s %d" "eligibility stalls" (get "eligibility.stalls");
    say "  %-22s %d" "aging promotions" (get "aging.promotions");
    say "  %-22s %d ready / %d awaiting admission" "queue depths" (get "queue.ready")
      (get "queue.admission");
    let h = Obs.Registry.histogram (Obs.Registry.global ()) "sched.response.cycles" in
    if Obs.Histogram.count h > 0 then
      say "  %-22s p50 %d / p99 %d cycles (%d interactions)" "response time"
        (Obs.Histogram.quantile h 0.5) (Obs.Histogram.quantile h 0.99) (Obs.Histogram.count h)
  end

let cmd_stats mode =
  match mode with
  | Cmd.Stats_text ->
      say "%s" (Obs.Snapshot.to_text (Obs.Snapshot.capture ()));
      say_cache_ratios ();
      say_sched_section ()
  | Cmd.Stats_json -> say "%s" (Obs.Snapshot.to_json (Obs.Snapshot.capture ()))
  | Cmd.Stats_reset ->
      Obs.Registry.reset (Obs.Registry.global ());
      say "observability counters reset"

(* The operator actions (fault, cache, smp) go through the typed
   dispatch surface directly — same mediation, audit and metering as
   every other gate call. *)
let operator_dispatch shell what request k =
  require_login shell (fun handle ->
      match on_api shell what (Api.Call.dispatch shell.system ~handle request) with
      | Some reply -> k reply
      | None -> ())

let cmd_fault_plan shell ~seed ~spec =
  operator_dispatch shell "fault plan" (Api.Call.Set_fault_plan { seed; spec }) (function
    | Api.Call.Done -> say "fault plan installed: %s (seed %d)" spec seed
    | _ -> ())

let cmd_fault_status shell =
  operator_dispatch shell "fault status" Api.Call.Fault_status (function
    | Api.Call.Fault_report { plan; counts } ->
        say "plan: %s" plan;
        List.iter (fun (name, v) -> say "  %-28s %d" name v) counts
    | _ -> ())

let cmd_fault_clear shell =
  operator_dispatch shell "fault clear" Api.Call.Clear_faults (function
    | Api.Call.Done -> say "fault plan cleared"
    | _ -> ())

let cmd_cache_status shell =
  operator_dispatch shell "cache status" Api.Call.Cache_status (function
    | Api.Call.Cache_report { policy; assoc } ->
        say "policy verdict cache:";
        List.iter (fun (name, v) -> say "  %-16s %d" name v) policy;
        say "SDW associative memory (this process):";
        List.iter (fun (name, v) -> say "  %-16s %d" name v) assoc
    | _ -> ())

let cmd_cache_clear shell =
  operator_dispatch shell "cache clear" Api.Call.Cache_clear (function
    | Api.Call.Done ->
        say "caches invalidated (generations bumped, associative memories flushed)"
    | _ -> ())

let cmd_smp_status shell =
  operator_dispatch shell "smp status" Api.Call.Smp_status (function
    | Api.Call.Smp_report { ncpus; plant; cpus } ->
        say "multiprocessor plant: %d CPU%s" ncpus (if ncpus = 1 then "" else "s");
        List.iter (fun (name, v) -> say "  %-22s %d" name v) plant;
        List.iter
          (fun (id, readings) ->
            say "  cpu %d:" id;
            List.iter (fun (name, v) -> say "    %-20s %d" name v) readings)
          cpus
    | _ -> ())

(* The harness domain pool is host-side machinery (it schedules whole
   kernel boots, not kernel work), so its status is read directly from
   [Par.Stats] rather than through a gate. *)
let cmd_jobs_status () =
  let module Par = Multics_par.Par in
  let s = Par.Stats.snapshot () in
  (if s.Par.Stats.runs = 0 then
     say "harness domain pool: MULTICS_JOBS=%d, no runs yet" (Par.default_jobs ())
   else
     say "harness domain pool: MULTICS_JOBS=%d, last run used %d domain%s"
       (Par.default_jobs ()) s.Par.Stats.pool_size
       (if s.Par.Stats.pool_size = 1 then " (inline)" else "s"));
  say "  %-22s %d" "parallel.runs" s.Par.Stats.runs;
  say "  %-22s %d" "parallel.tasks" s.Par.Stats.tasks;
  List.iter
    (fun (slot, n) -> say "  %-22s %d" (Printf.sprintf "worker.%d.tasks" slot) n)
    s.Par.Stats.per_worker

(* The traffic-controller operator surface: status and tuning go
   through the typed [Sched_status]/[Sched_tune] gates (mediated,
   audited, metered); [sched demo] runs the deterministic timesharing
   workload, prints its latency table, and registers the demo's
   controller on this system so status/tune have a live target. *)
let cmd_sched_status shell =
  require_login shell (fun handle ->
      match gate shell "sched status" ~handle Api.Call.Sched_status with
      | Some (Api.Call.Sched_report { policy; counters }) ->
          say "policy: %s" policy;
          List.iter (fun (name, v) -> say "  %-22s %d" name v) counters
      | Some _ | None -> ())

let cmd_sched_tune shell ~param ~value =
  require_login shell (fun handle ->
      match gate shell "sched tune" ~handle (Api.Call.Sched_tune { param; value }) with
      | Some Api.Call.Done -> say "scheduler %s set to %d" param value
      | Some _ | None -> ())

let cmd_sched_demo shell ~users =
  let module Sched = Multics_sched.Sched in
  let module Workload = Multics_sched.Workload in
  (* The demo runs at the plant's CPU count (MULTICS_NCPU), so a
     multiprocessor shell demos the multiprocessor schedule. *)
  let cpus = match System.plant shell.system with Some p -> Smp.ncpus p | None -> 1 in
  let spec = { Workload.default with users; cpus; policy = Workload.Use_mlf } in
  let r = Workload.run spec in
  say "timesharing demo: %d users, %d CPU%s, %s policy — %d interactions in %d cycles" users
    cpus
    (if cpus = 1 then "" else "s")
    r.Workload.r_policy r.Workload.r_completed r.Workload.r_cycles;
  say "  %-22s %.2f interactions/Mcycle" "throughput" r.Workload.r_throughput;
  say "  %-22s p50 %.0f / p99 %.0f cycles" "response time"
    r.Workload.r_response.Multics_util.Stats.p50 r.Workload.r_response.Multics_util.Stats.p99;
  say "  %-22s %d" "page faults" r.Workload.r_page_faults;
  List.iter (fun (name, v) -> say "  %-22s %d" ("sched." ^ name) v) r.Workload.r_sched;
  List.iter (fun (name, v) -> say "  %-22s %d" ("smp." ^ name) v) r.Workload.r_smp;
  (* Leave a live controller registered so sched status/tune
     against THIS system's gates have a target. *)
  let sim = Multics_proc.Sim.create ~cost:Multics_machine.Cost.h6180 ~virtual_processors:2 in
  Sched.register (Sched.create sim) shell.system;
  say "controller registered (try: sched status, sched tune cap 4)"

(* The distributed-fleet operator surface.  Every command degrades
   gracefully on a single-site shell instead of failing: the fleet is
   an opt-in plant (MULTICS_SITES), not a mode switch. *)
let require_fleet shell k =
  match shell.fleet with
  | Some fleet -> k fleet
  | None -> say "single-site shell (set MULTICS_SITES=2..8 to boot a fleet)"

let cmd_site_status shell =
  require_fleet shell (fun fleet ->
      say "distributed fleet: %d sites, epoch %d, %d revocations broadcast, %d cross-site cycles"
        (Site.nsites fleet) (Site.epoch fleet) (Site.revocations fleet) (Site.now fleet);
      List.iter
        (fun (id, status, epoch, readings) ->
          say "  site %d: %s, epoch %d" id status epoch;
          List.iter (fun (name, v) -> say "    %-20s %d" name v) readings)
        (Site.status_table fleet);
      List.iter
        (fun ((a, b), partitioned, counters) ->
          say "  link %d-%d%s: %s" a b
            (if partitioned then " [partitioned]" else "")
            (String.concat ", "
               (List.map (fun (name, v) -> Printf.sprintf "%s %d" name v) counters)))
        (Site.link_table fleet))

let cmd_site_partition shell ~a ~b =
  require_fleet shell (fun fleet ->
      let n = Site.nsites fleet in
      if a >= n || b >= n then say "site partition: fleet has sites 0..%d" (n - 1)
      else begin
        Site.partition fleet a b;
        say "link %d-%d severed (next revocation crossing it will fence a site)" a b
      end)

let cmd_site_heal shell =
  require_fleet shell (fun fleet ->
      let links, rejoins = Site.heal_all fleet in
      say "%d link%s healed" links (if links = 1 then "" else "s");
      List.iter
        (fun (id, r) ->
          say "  site %d rejoined: %d epoch(s) replayed, %d AV cells rebuilt, epoch %d" id
            r.Site.rj_replayed r.Site.rj_av_cells r.Site.rj_epoch)
        rejoins;
      if rejoins = [] then say "no sites needed rejoin")

let cmd_salvage shell =
  require_login shell (fun handle ->
      match
        on_api shell "salvage" (Api.Call.dispatch shell.system ~handle Api.Call.Salvage)
      with
      | Some (Api.Call.Salvaged report) -> say "%s" (Salvager.render report)
      | Some _ | None -> ())

(* The model checker runs on its own 2-CPU / 2-segment plant, not the
   shell's system: an exploration never perturbs the operator's
   session state. *)
let cmd_mc_run shell ~depth ~bug =
  let outcome = Mc.explore ~bug ~depth () in
  shell.last_mc <- Some outcome;
  print_string (Mc.summary outcome);
  List.iter
    (fun c -> say "replay with:\n%s" (Mc.counterexample_script c))
    outcome.Mc.o_counterexamples

let cmd_mc_status shell =
  match shell.last_mc with
  | None -> say "no exploration this session (use: mc run DEPTH [bug])"
  | Some outcome -> print_string (Mc.summary outcome)

let cmd_mc_replay ~trace ~bug =
  match Mc.trace_of_string trace with
  | None -> say "mc replay: unknown action in trace %S" trace
  | Some actions -> (
      let canonical, violations = Mc.violations_of_trace ~bug actions in
      say "replayed %d action(s)%s: state %s" (List.length actions)
        (if bug then " (deferred-connect bug enabled)" else "")
        (Mc.fingerprint canonical);
      match violations with
      | [] -> say "0 violations: the reference monitor held"
      | vs -> List.iter (fun v -> say "  %s" (Mc.violation_to_string v)) vs)

(* Per-workload specialisation: profile the session's own gate
   traffic, compile it into a gate mask, install it.  Subsystem entry
   and logout stay alive under every mask so the operator can't strip
   the session out from under themselves. *)
let spec_always_keep = [ "enter_subsystem"; "logout" ]

let cmd_spec_profile_start shell =
  match shell.profiling with
  | Some _ -> say "profiling already in progress (use: spec profile stop NAME)"
  | None ->
      Obs.set_enabled true;
      shell.profiling <- Some (Obs.Snapshot.capture ());
      say "gate profiling started — every dispatch from here on is recorded";
      say "stop with: spec profile stop NAME"

let cmd_spec_profile_stop shell ~name =
  match shell.profiling with
  | None -> say "no profiling in progress (use: spec profile start)"
  | Some before ->
      shell.profiling <- None;
      let diff = Obs.Snapshot.diff ~before ~after:(Obs.Snapshot.capture ()) in
      let profile = Spec.Profile.of_snapshot ~name diff in
      shell.profile <- Some profile;
      let gates = List.length (Spec.Profile.used_gates profile) in
      if gates = 0 then
        say "profile %S captured: no gate calls observed (apply would strip everything)" name
      else begin
        say "profile %S captured: %d gates, %d calls" name gates (Spec.Profile.total_calls profile);
        print_string (Spec.Profile.to_string profile)
      end

let cmd_spec_apply shell =
  match shell.profile with
  | None -> say "no captured profile (use: spec profile start ... spec profile stop NAME)"
  | Some profile ->
      let spec =
        Spec.Specialisation.compile ~keep:spec_always_keep ~name:(Spec.Profile.name profile)
          (System.config shell.system) profile
      in
      Spec.Specialisation.apply shell.system spec;
      say "%s" (Spec.Specialisation.describe spec);
      say "%s" (Spec.Specialisation.status shell.system)

let cmd_spec_clear shell =
  Spec.Specialisation.clear shell.system;
  say "full gate surface restored"

let cmd_spec_status shell =
  say "%s" (Spec.Specialisation.status shell.system);
  (match shell.profile with
  | Some profile ->
      say "captured profile: %s (%d gates, %d calls)" (Spec.Profile.name profile)
        (List.length (Spec.Profile.used_gates profile))
        (Spec.Profile.total_calls profile)
  | None -> say "no captured profile");
  if shell.profiling <> None then say "profiling in progress (stop with: spec profile stop NAME)"

let cmd_audit shell n =
  let records = Audit_log.records (System.audit shell.system) in
  let tail =
    let len = List.length records in
    List.filteri (fun i _ -> i >= len - n) records
  in
  List.iter (fun r -> say "%s" (Fmt.str "%a" Audit_log.pp_record r)) tail

(* The operator-command families parse through [Multics_shellcmd]: a
   typed command or a typed error, never an unmatched arm or an
   exception out of the read loop. *)
let run_operator shell = function
  | Cmd.Fault_plan { seed; spec } -> cmd_fault_plan shell ~seed ~spec
  | Cmd.Fault_status -> cmd_fault_status shell
  | Cmd.Fault_clear -> cmd_fault_clear shell
  | Cmd.Cache_status -> cmd_cache_status shell
  | Cmd.Cache_clear -> cmd_cache_clear shell
  | Cmd.Sched_status -> cmd_sched_status shell
  | Cmd.Sched_tune { param; value } -> cmd_sched_tune shell ~param ~value
  | Cmd.Sched_demo { users } -> cmd_sched_demo shell ~users
  | Cmd.Smp_status -> cmd_smp_status shell
  | Cmd.Jobs_status -> cmd_jobs_status ()
  | Cmd.Site_status -> cmd_site_status shell
  | Cmd.Site_partition { a; b } -> cmd_site_partition shell ~a ~b
  | Cmd.Site_heal -> cmd_site_heal shell
  | Cmd.Stats mode -> cmd_stats mode
  | Cmd.Audit_tail { count } -> cmd_audit shell count
  | Cmd.Mc_run { depth; bug } -> cmd_mc_run shell ~depth ~bug
  | Cmd.Mc_status -> cmd_mc_status shell
  | Cmd.Mc_replay { trace; bug } -> cmd_mc_replay ~trace ~bug
  | Cmd.Spec_profile_start -> cmd_spec_profile_start shell
  | Cmd.Spec_profile_stop { name } -> cmd_spec_profile_stop shell ~name
  | Cmd.Spec_apply -> cmd_spec_apply shell
  | Cmd.Spec_clear -> cmd_spec_clear shell
  | Cmd.Spec_status -> cmd_spec_status shell

let execute shell line =
  let words =
    String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "")
  in
  let int_arg what s k =
    match int_of_string_opt s with Some n -> k n | None -> say "%s: not a number: %s" what s
  in
  match Cmd.parse words with
  | Some (Ok cmd) -> run_operator shell cmd
  | Some (Error e) -> say "%s" (Cmd.error_to_string e)
  | None -> (
      match words with
      | [] -> ()
      | [ "help" ] -> cmd_help ()
      | [ "exit" ] | [ "quit" ] -> raise Exit
      | "adduser" :: args -> cmd_adduser shell args
      | "login" :: args -> cmd_login shell args
      | [ "logout" ] -> cmd_logout shell
      | [ "whoami" ] -> cmd_whoami shell
      | [ "ls"; path ] -> cmd_ls shell path
      | [ "mkdir"; path ] -> cmd_mkdir shell path
      | [ "create"; path ] -> cmd_create shell path
      | [ "delete"; path ] -> cmd_delete shell path
      | [ "write"; path; offset; value ] ->
          int_arg "offset" offset (fun o ->
              int_arg "value" value (fun v -> cmd_write shell path o v))
      | [ "read"; path; offset ] -> int_arg "offset" offset (fun o -> cmd_read shell path o)
      | [ "status"; dir_path; name ] -> cmd_status shell dir_path name
      | [ "acl"; path; pattern; mode ] -> cmd_acl shell path pattern mode
      | [ "quota"; path; pages ] -> int_arg "pages" pages (fun n -> cmd_quota shell path n)
      | [ "bind"; name; path ] -> cmd_bind shell name path
      | [ "lookup"; name ] -> cmd_lookup shell name
      | [ "salvage" ] -> cmd_salvage shell
      | [ "gates" ] -> cmd_gates shell
      | cmd :: _ -> say "unknown command %S (try: help)" cmd)

let config_of_name = function
  | "baseline" | "645" -> Config.baseline_645
  | "reviewed" | "6180" -> Config.hardware_rings
  | "kernel" | _ -> Config.kernel_6180

let () =
  let config_name = ref "kernel" in
  let script = ref None in
  let rec parse_args = function
    | [] -> ()
    | "--config" :: name :: rest ->
        config_name := name;
        parse_args rest
    | "-c" :: commands :: rest ->
        script := Some commands;
        parse_args rest
    | arg :: rest ->
        Printf.eprintf "unknown argument %S\n" arg;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let config = config_of_name !config_name in
  (* MULTICS_SITES > 1 boots the distributed fleet alongside the
     single shell system; the [site] family drives it. *)
  let nsites = Site.default_nsites () in
  let fleet = if nsites > 1 then Some (Site.create ~nsites ~config ()) else None in
  let shell =
    {
      system = System.create config;
      handle = None;
      fleet;
      last_mc = None;
      profiling = None;
      profile = None;
    }
  in
  (* MULTICS_NCPU > 1 boots the multiprocessor plant: per-CPU
     associative memories, connect coherence on every descriptor
     mutation, [smp status] live.  At 1 CPU no plant is attached and
     the shell is the uniprocessor seed, byte for byte. *)
  let ncpus = Smp.default_ncpus () in
  if ncpus > 1 then begin
    let plant = Smp.create ~ncpus ~cost:(System.cost shell.system) () in
    System.attach_plant shell.system (Some plant)
  end;
  say "multics_sk shell — configuration: %s (%d gates%s%s).  Type 'help'." config.Config.name
    (Gate.count config)
    (if ncpus > 1 then Printf.sprintf ", %d CPUs" ncpus else "")
    (if nsites > 1 then Printf.sprintf ", %d sites" nsites else "");
  match !script with
  | Some commands ->
      List.iter
        (fun line ->
          say "> %s" (String.trim line);
          try execute shell line with Exit -> exit 0)
        (String.split_on_char ';' commands)
  | None -> (
      try
        while true do
          print_string "multics> ";
          flush stdout;
          match In_channel.input_line stdin with
          | None -> raise Exit
          | Some line -> ( try execute shell line with Exit -> raise Exit)
        done
      with Exit -> say "goodbye")
