(* The experiment harness: regenerate every table the reproduction
   reports (E1..E20, A1..A3), all or by id.

     dune exec bin/experiments.exe            # every experiment
     dune exec bin/experiments.exe -- e6 e7   # a selection
     dune exec bin/experiments.exe -- --list  # what exists
     dune exec bin/experiments.exe -- e13 --stats   # + kernel counters

   Multi-seed oracles inside the experiments fan out over OCaml 5
   domains when MULTICS_JOBS > 1; output is byte-identical either way
   (see lib/par). *)

open Multics_experiments
module Obs = Multics_obs.Obs

(* With --stats, each experiment runs against freshly reset counters so
   its snapshot reflects that experiment alone. *)
let print_experiment ~stats e =
  if stats then Obs.Registry.reset (Obs.Registry.global ());
  print_string (Registry.render_one e);
  print_newline ();
  if stats then begin
    Printf.printf "--- observability snapshot (%s) ---\n%s\n" e.Registry.id
      (Obs.Snapshot.to_text (Obs.Snapshot.capture ()));
    print_newline ()
  end

let run_selection { Registry.Cli.list_only; stats; sel_ids } =
  let print_experiment = print_experiment ~stats in
  if list_only then begin
    List.iter
      (fun (e : Registry.experiment) -> Printf.printf "%-4s %s\n" e.Registry.id e.Registry.title)
      Registry.all;
    0
  end
  else begin
    match sel_ids with
    | [] ->
        List.iter print_experiment Registry.all;
        0
    | ids -> (
        let missing = List.filter (fun id -> Registry.find id = None) ids in
        match missing with
        | [] ->
            List.iter
              (fun id ->
                match Registry.find id with
                | Some e -> print_experiment e
                | None -> ())
              ids;
            0
        | missing ->
            Printf.eprintf "unknown experiment id(s): %s\navailable: %s\n"
              (String.concat ", " missing)
              (String.concat ", " Registry.ids);
            1)
  end

let () =
  let open Cmdliner in
  let term = Term.(const run_selection $ Registry.Cli.term) in
  exit (Cmd.eval' (Cmd.v Registry.Cli.info term))
