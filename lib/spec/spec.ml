(* Per-workload kernel specialisation.

   The paper's removal projects shrank the supervisor for *every*
   workload; this module applies the same discipline per installation:
   observe which gates a site's workload actually exercises, then
   compile a specialised gate table that strips every unused entry.
   A stripped gate refuses at [Api.Call.dispatch] with the existing
   [Gate_absent] error before any kernel state is touched — the same
   fail-secure refusal an entry removed at configuration time gets —
   so a specialised kernel is byte-identical to the full kernel on
   every request it admits and fails closed on everything else.

   Two halves:

   - {!Profile}: a gate-usage profile snapshotted from the per-gate
     [lib/obs] counters around an observed run, serialisable so a
     profile captured on one boot can be replayed against another.

   - {!Specialisation}: the profile compiled against a configuration's
     gate catalog into a keep-set, installed on a system as a gate
     mask ({!Multics_kernel.System.set_gate_mask}). *)

open Multics_kernel
module Obs = Multics_obs.Obs

(* ----- Profiles ----- *)

module Profile = struct
  type t = {
    profile_name : string;
    counts : (string * int) list;  (* gate operation -> observed calls, sorted *)
  }

  let name t = t.profile_name
  let counts t = t.counts

  (* Per-gate dispatch counters are named [gate.<operation>.calls];
     the aggregates ([gate.calls], [gate.cycles], ...) and per-config
     counters lack the inner operation component and fall out of the
     match.  Refused calls count too: a workload that *reaches* a gate
     needs it, whatever the reference monitor then says. *)
  let gate_op_of_counter counter =
    let prefix = "gate." and suffix = ".calls" in
    let plen = String.length prefix and slen = String.length suffix in
    let len = String.length counter in
    if
      len > plen + slen
      && String.sub counter 0 plen = prefix
      && String.sub counter (len - slen) slen = suffix
    then Some (String.sub counter plen (len - plen - slen))
    else None

  let of_counters ~name readings =
    let counts =
      List.filter_map
        (fun (counter, count) ->
          match gate_op_of_counter counter with
          | Some op when count > 0 -> Some (op, count)
          | _ -> None)
        readings
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    { profile_name = name; counts }

  let of_snapshot ~name (snapshot : Obs.Snapshot.t) =
    of_counters ~name snapshot.Obs.Snapshot.counters

  (* Observe a workload run: enable recording, diff the calling
     domain's registry around the thunk, keep the per-gate dispatch
     counters.  Restores the previous recording state. *)
  let observe ~name f =
    let was = Obs.enabled () in
    Obs.set_enabled true;
    let before = Obs.Snapshot.capture () in
    Fun.protect
      ~finally:(fun () -> Obs.set_enabled was)
      (fun () ->
        let result = f () in
        let after = Obs.Snapshot.capture () in
        (of_snapshot ~name (Obs.Snapshot.diff ~before ~after), result))

  let used_gates t = List.map fst t.counts
  let calls t ~gate = match List.assoc_opt gate t.counts with Some n -> n | None -> 0
  let total_calls t = List.fold_left (fun acc (_, n) -> acc + n) 0 t.counts

  let merge ~name a b =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun (op, n) ->
        Hashtbl.replace tbl op (n + Option.value ~default:0 (Hashtbl.find_opt tbl op)))
      (a.counts @ b.counts);
    let counts =
      Hashtbl.fold (fun op n acc -> (op, n) :: acc) tbl []
      |> List.sort (fun (x, _) (y, _) -> String.compare x y)
    in
    { profile_name = name; counts }

  (* Serialisation: one header line, one "<operation> <count>" line per
     gate.  Operation names never contain spaces or newlines. *)
  let to_string t =
    String.concat "\n"
      (("profile " ^ t.profile_name)
      :: List.map (fun (op, n) -> Printf.sprintf "%s %d" op n) t.counts)
    ^ "\n"

  let of_string text =
    let lines =
      String.split_on_char '\n' text |> List.filter (fun line -> String.trim line <> "")
    in
    match lines with
    | [] -> Error "empty profile"
    | header :: rest ->
        if String.length header < 8 || String.sub header 0 8 <> "profile " then
          Error (Printf.sprintf "bad profile header %S" header)
        else
          let name = String.sub header 8 (String.length header - 8) in
          let rec parse acc = function
            | [] -> Ok (of_counters ~name (List.rev acc))
            | line :: rest -> (
                match String.index_opt line ' ' with
                | None -> Error (Printf.sprintf "bad profile line %S" line)
                | Some i -> (
                    let op = String.sub line 0 i in
                    let count = String.sub line (i + 1) (String.length line - i - 1) in
                    match int_of_string_opt (String.trim count) with
                    | Some n when n >= 0 && op <> "" ->
                        parse (("gate." ^ op ^ ".calls", n) :: acc) rest
                    | _ -> Error (Printf.sprintf "bad profile line %S" line)))
          in
          parse [] rest
end

(* ----- Specialisations ----- *)

module Specialisation = struct
  type t = {
    spec_name : string;
    config : Config.t;
    kept : string list;  (* catalog order *)
    stripped : string list;  (* catalog order *)
  }

  let name t = t.spec_name
  let config t = t.config
  let kept t = t.kept
  let stripped t = t.stripped
  let gate_count t = List.length t.kept
  let full_count t = Gate.count t.config

  (* The full surface: every catalog gate kept, nothing stripped.  The
     identity specialisation — applying it changes no decision. *)
  let full config =
    {
      spec_name = "full";
      config;
      kept = List.map (fun e -> e.Gate.gate_name) (Gate.catalog config);
      stripped = [];
    }

  (* Compile a profile against a configuration's catalog: keep exactly
     the gates the profile exercised (plus [keep], for entries the
     installation wants alive regardless — subsystem entry, say, so
     users can still log in).  Profiled operations with no catalog
     entry (operator-surface operations, gates of another
     configuration) are ignored: they are not strippable surface. *)
  let compile ?(keep = []) ~name config profile =
    let wanted op = List.mem op keep || Profile.calls profile ~gate:op > 0 in
    let kept, stripped =
      List.partition_map
        (fun e ->
          let g = e.Gate.gate_name in
          if wanted g then Either.Left g else Either.Right g)
        (Gate.catalog config)
    in
    { spec_name = name; config; kept; stripped }

  let admits t ~gate = List.mem gate t.kept

  (* Install on a system: stripped gates now refuse at dispatch with
     [Gate_absent], before any kernel state is touched.  The full
     specialisation clears the mask — no table, no per-call lookup. *)
  let apply system t =
    if (System.config system).Config.name <> t.config.Config.name then
      invalid_arg
        (Printf.sprintf "Spec.apply: specialisation %s compiled for %s, system runs %s"
           t.spec_name t.config.Config.name (System.config system).Config.name);
    if t.stripped = [] then System.set_gate_mask system None
    else
      System.set_gate_mask system
        (Some (System.gate_mask_make ~name:t.spec_name ~gates:t.kept))

  let clear system = System.set_gate_mask system None

  let status system =
    match System.gate_mask system with
    | None ->
        Printf.sprintf "specialisation: none (full surface, %d gates)"
          (Gate.count (System.config system))
    | Some mask ->
        let admitted = System.gate_mask_gates mask in
        let full = Gate.count (System.config system) in
        Printf.sprintf "specialisation: %s (%d of %d gates admitted, %d stripped)"
          (System.gate_mask_name mask) (List.length admitted) full
          (full - List.length admitted)

  let describe t =
    Printf.sprintf "%s: %d of %d gates kept, %d stripped [%s]" t.spec_name (gate_count t)
      (full_count t) (List.length t.stripped)
      (String.concat ", " t.stripped)
end
