(** Per-workload kernel specialisation: gate-usage profiles captured
    from the [lib/obs] dispatch counters, compiled into specialised
    gate tables that strip every unused entry.  A stripped gate
    refuses at [Api.Call.dispatch] with [Gate_absent] before any
    kernel state is touched, so specialised kernels are byte-identical
    to the full kernel on every request they admit and fail closed on
    everything else (experiment E22). *)

open Multics_kernel
module Obs = Multics_obs.Obs

(** A gate-usage profile: which gate operations a workload exercised,
    and how often. *)
module Profile : sig
  type t

  val name : t -> string

  val counts : t -> (string * int) list
  (** Observed calls per gate operation, sorted by operation name;
      every count is positive.  Refused calls count — a workload that
      reaches a gate needs it, whatever the reference monitor says. *)

  val observe : name:string -> (unit -> 'a) -> t * 'a
  (** Run a workload with observability recording enabled and snapshot
      the per-gate dispatch counters it moved (a
      {!Multics_obs.Obs.Snapshot.diff} around the thunk, restricted to
      the [gate.<operation>.calls] counters).  The previous recording
      state is restored afterwards. *)

  val of_snapshot : name:string -> Obs.Snapshot.t -> t
  (** Extract the per-gate dispatch counts from a snapshot (typically
      a diff attributing activity to one observed run). *)

  val used_gates : t -> string list
  val calls : t -> gate:string -> int
  val total_calls : t -> int
  val merge : name:string -> t -> t -> t

  val to_string : t -> string
  (** Serialise for replay: a [profile <name>] header then one
      [<operation> <count>] line per gate.  Round-trips through
      {!of_string}. *)

  val of_string : string -> (t, string) result
end

(** A specialised gate table: the compiled keep-set for one
    configuration, installable on a live system as a gate mask. *)
module Specialisation : sig
  type t

  val name : t -> string
  val config : t -> Config.t

  val kept : t -> string list
  (** Admitted gates, in catalog order. *)

  val stripped : t -> string list
  (** Refused gates, in catalog order. *)

  val gate_count : t -> int
  val full_count : t -> int

  val full : Config.t -> t
  (** The identity specialisation: every catalog gate kept. *)

  val compile : ?keep:string list -> name:string -> Config.t -> Profile.t -> t
  (** Keep exactly the catalog gates the profile exercised, plus
      [keep] (entries the installation wants alive regardless, such as
      subsystem entry).  Profiled operations with no catalog entry are
      ignored — they are not strippable surface. *)

  val admits : t -> gate:string -> bool

  val apply : System.t -> t -> unit
  (** Install the specialisation's gate mask on a live system; the
      full specialisation clears the mask instead.  Raises
      [Invalid_argument] if the specialisation was compiled for a
      different configuration than the system runs. *)

  val clear : System.t -> unit
  (** Restore the full surface. *)

  val status : System.t -> string
  (** One-line description of the mask currently installed. *)

  val describe : t -> string
end
