(** Kernel observability: monotonic counters, log-bucketed cycle
    histograms and lightweight spans, collected in named registries and
    rendered as text tables or JSON.

    The library is dependency-free and built for instrumentation of hot
    paths: every recording primitive is gated on one domain-local
    switch, so the disabled cost of an instrumented site is a single
    load-and-branch.  All mutable state — the switch, the default
    registry, the instruments — is domain-local, so per-seed experiment
    tasks running on worker domains (lib/par) record into private
    registries and never race; the harness folds each task's
    {!Snapshot} back into the caller with {!Snapshot.absorb}.
    Instrumented modules obtain their instruments through {!Local}
    handles; a {!Snapshot} captures a registry at a point in time for
    rendering, differencing or merging. *)

val enabled : unit -> bool
(** Whether recording primitives currently have any effect in this
    domain. *)

val set_enabled : bool -> unit
(** Flip the calling domain's switch.  Instruments keep their
    accumulated values when disabled; recording simply stops. *)

val with_disabled : (unit -> 'a) -> 'a
(** Run a thunk with recording off, restoring the previous state. *)

(** {1 Instruments} *)

(** A named monotonic counter (plus [set] for gauge-style readings such
    as a table depth). *)
module Counter : sig
  type t

  val name : t -> string
  val incr : ?by:int -> t -> unit
  val set : t -> int -> unit
  val get : t -> int
end

(** A histogram over non-negative integer samples (cycle counts,
    latencies), log2-bucketed: bucket [i] holds samples whose highest
    set bit is [i], i.e. the range [2^i .. 2^(i+1)-1] (bucket 0 holds 0
    and 1).  Constant memory, constant-time observe. *)
module Histogram : sig
  type t

  val name : t -> string
  val observe : t -> int -> unit
  val count : t -> int

  val sum : t -> int
  (** Sum of all observed samples.  Saturates at [max_int] instead of
      wrapping (multi-billion-cycle SMP runs overflow a naive running
      total); once pinned, {!saturated} reports true and the sum is a
      lower bound. *)

  val saturated : t -> bool
  (** Whether {!sum} hit the [max_int] ceiling. *)

  val mean : t -> float
  val min_value : t -> int
  (** Smallest observed sample; 0 when empty. *)

  val max_value : t -> int
  val buckets : t -> (int * int) list
  (** Non-empty buckets as (bucket lower bound, sample count), ascending. *)

  val quantile : t -> float -> int
  (** Upper bound of the bucket holding the given quantile (0 when
      empty).  An estimate: exact to within the bucket's factor of 2. *)

  val bucket_index : int -> int
  (** The bucket a sample lands in (exposed for tests). *)

  val bucket_lower_bound : int -> int
  (** Smallest sample value of bucket [i]. *)
end

(** A lightweight span: tracks concurrent/nested activations and feeds
    the cycles spent per activation into a histogram.  The simulation
    supplies cycle counts explicitly (there is no wall clock in a
    deterministic simulator). *)
module Span : sig
  type t

  val name : t -> string

  val enter : t -> unit
  val leave : t -> cycles:int -> unit
  (** [leave] records one completed activation of [cycles]. *)

  val record : t -> cycles:int -> unit
  (** [enter] immediately followed by [leave]. *)

  val entries : t -> int
  val live : t -> int
  (** Activations currently entered but not left. *)

  val max_depth : t -> int
  val cycles : t -> Histogram.t
end

(** {1 Registries} *)

(** A named collection of instruments.  Instruments are created on
    first lookup and memoized by name, so call sites may re-resolve
    freely; hot paths should resolve once at module initialization. *)
module Registry : sig
  type t

  val create : name:string -> t
  val name : t -> string

  val global : unit -> t
  (** The calling domain's default registry — the one every kernel
      subsystem records into.  Each domain gets its own, lazily created
      on first use, so parallel per-seed tasks never share instruments. *)

  val counter : t -> string -> Counter.t
  val histogram : t -> string -> Histogram.t
  val span : t -> string -> Span.t

  val counters : t -> (string * int) list
  (** Current counter readings, sorted by name. *)

  val reset : t -> unit
  (** Zero every instrument (they remain registered). *)
end

(** {1 Domain-local instrument handles}

    A module-level [let obs_x = Registry.counter (Registry.global ()) "x"]
    would capture the initialising domain's instrument forever; a worker
    domain incrementing it would race domain 0.  A {!Local} handle
    instead memoizes, per domain, the instrument of {e that} domain's
    default registry — resolution is one domain-local load on the hot
    path.  Instrumented modules bind handles at module initialization
    and call them at recording sites: [Counter.incr (obs_x ())]. *)
module Local : sig
  type 'a handle = unit -> 'a

  val counter : string -> Counter.t handle
  val histogram : string -> Histogram.t handle
  val span : string -> Span.t handle
end

(** {1 Snapshots} *)

module Snapshot : sig
  type histogram_data = {
    count : int;
    sum : int;
    min_value : int;
    max_value : int;
    saturated : bool;  (** sum hit the [max_int] ceiling; it is a lower bound *)
    buckets : (int * int) list;  (** (bucket lower bound, count) *)
  }

  type span_data = {
    entries : int;
    live : int;
    max_depth : int;
    span_cycles : histogram_data;
  }

  type t = {
    registry : string;
    counters : (string * int) list;  (** sorted by name *)
    histograms : (string * histogram_data) list;
    spans : (string * span_data) list;
  }

  val capture : ?registry:Registry.t -> unit -> t
  (** Default registry: the calling domain's [Registry.global ()]. *)

  val diff : before:t -> after:t -> t
  (** Per-instrument difference [after - before]; instruments absent
      from [before] are taken as zero.  Used to attribute activity to a
      bounded phase (one experiment, one command). *)

  val merge : t -> t -> t
  (** Instrument-wise sum of two snapshots: counters and histogram
      bucket counts add, span depths take the max, histogram sums
      saturate at [max_int] exactly as live observation does — merging
      two saturated snapshots stays saturated (never wraps).  Keyed
      union: instruments present on one side only pass through. *)

  val absorb : ?into:Registry.t -> t -> unit
  (** Add a snapshot's totals into live instruments (created on demand).
      This is the parallel join path: each worker task's private
      recordings are folded back into the caller's registry in task
      order, so merged totals match a sequential run.  Bypasses the
      {!enabled} gate — the activity was already recorded once under the
      worker's own gate.  Default registry: [Registry.global ()]. *)

  val is_empty : t -> bool
  (** No counters/histograms/spans with any recorded activity. *)

  val to_text : t -> string
  (** An aligned, sectioned text table (the shell's [stats] output). *)

  val to_json : t -> string
  (** One JSON object; keys [registry], [counters], [histograms],
      [spans]. *)
end
