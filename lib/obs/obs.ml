(* Kernel observability: counters, log-bucketed histograms and spans,
   in named registries, with text-table and JSON renderers.

   Design constraints, in order:

   1. the disabled path must cost one branch — every recording
      primitive starts with [if !switched_on];
   2. zero dependencies — the kernel's innermost layers (the hardware
      check, the simulator) record here, so this library must sit
      below everything;
   3. recording must never allocate on the hot path — counters mutate
      an int field, histograms mutate a preallocated array. *)

let switched_on = ref true

let enabled () = !switched_on
let set_enabled flag = switched_on := flag

let with_disabled f =
  let saved = !switched_on in
  switched_on := false;
  Fun.protect ~finally:(fun () -> switched_on := saved) f

(* ----- Counters ----- *)

module Counter = struct
  type t = { name : string; mutable value : int }

  let make name = { name; value = 0 }
  let name c = c.name
  let incr ?(by = 1) c = if !switched_on then c.value <- c.value + by
  let set c v = if !switched_on then c.value <- v
  let get c = c.value
  let reset c = c.value <- 0
end

(* ----- Histograms ----- *)

module Histogram = struct
  (* Bucket i holds samples whose highest set bit is i: the range
     [2^i, 2^(i+1) - 1].  Bucket 0 also absorbs 0 (and, defensively,
     negative samples).  62 buckets cover every OCaml int. *)
  let bucket_count = 62

  type t = {
    name : string;
    buckets : int array;
    mutable count : int;
    mutable sum : int;
    mutable min_value : int;
    mutable max_value : int;
    mutable saturated : bool;
  }

  let make name =
    {
      name;
      buckets = Array.make bucket_count 0;
      count = 0;
      sum = 0;
      min_value = max_int;
      max_value = 0;
      saturated = false;
    }

  let name h = h.name

  let bucket_index v =
    if v <= 1 then 0
    else begin
      let rec highest_bit acc v = if v <= 1 then acc else highest_bit (acc + 1) (v lsr 1) in
      min (bucket_count - 1) (highest_bit 0 v)
    end

  let bucket_lower_bound i = if i = 0 then 0 else 1 lsl i

  let observe h v =
    if !switched_on then begin
      let v = if v < 0 then 0 else v in
      h.buckets.(bucket_index v) <- h.buckets.(bucket_index v) + 1;
      h.count <- h.count + 1;
      (* The running sum saturates at [max_int] instead of wrapping: a
         multi-billion-cycle run (an SMP sweep observing per-connect
         costs forever) must degrade to a pinned ceiling, never to a
         silently negative total.  [saturated] records that the ceiling
         was hit so snapshots can flag the sum as a lower bound. *)
      if v > max_int - h.sum then begin
        h.sum <- max_int;
        h.saturated <- true
      end
      else h.sum <- h.sum + v;
      if v < h.min_value then h.min_value <- v;
      if v > h.max_value then h.max_value <- v
    end

  let count h = h.count
  let sum h = h.sum
  let saturated h = h.saturated
  let mean h = if h.count = 0 then 0.0 else float_of_int h.sum /. float_of_int h.count
  let min_value h = if h.count = 0 then 0 else h.min_value
  let max_value h = h.max_value

  let buckets h =
    let acc = ref [] in
    for i = bucket_count - 1 downto 0 do
      if h.buckets.(i) > 0 then acc := (bucket_lower_bound i, h.buckets.(i)) :: !acc
    done;
    !acc

  (* The quantile estimate reports the upper bound of the bucket the
     rank falls in — pessimistic by at most the bucket's factor of 2. *)
  let quantile h q =
    if h.count = 0 then 0
    else begin
      let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
      let rank = int_of_float (ceil (q *. float_of_int h.count)) in
      let rank = if rank < 1 then 1 else rank in
      let rec walk i seen =
        if i >= bucket_count then h.max_value
        else begin
          let seen = seen + h.buckets.(i) in
          if seen >= rank then begin
            let lo = bucket_lower_bound i in
            let hi = if lo = 0 then 1 else (2 * lo) - 1 in
            min h.max_value hi
          end
          else walk (i + 1) seen
        end
      in
      walk 0 0
    end

  let reset h =
    Array.fill h.buckets 0 bucket_count 0;
    h.count <- 0;
    h.sum <- 0;
    h.min_value <- max_int;
    h.max_value <- 0;
    h.saturated <- false
end

(* ----- Spans ----- *)

module Span = struct
  type t = {
    name : string;
    cycles : Histogram.t;
    mutable entries : int;
    mutable live : int;
    mutable max_depth : int;
  }

  let make name = { name; cycles = Histogram.make name; entries = 0; live = 0; max_depth = 0 }

  let name s = s.name

  let enter s =
    if !switched_on then begin
      s.entries <- s.entries + 1;
      s.live <- s.live + 1;
      if s.live > s.max_depth then s.max_depth <- s.live
    end

  let leave s ~cycles =
    if !switched_on then begin
      if s.live > 0 then s.live <- s.live - 1;
      Histogram.observe s.cycles cycles
    end

  let record s ~cycles =
    enter s;
    leave s ~cycles

  let entries s = s.entries
  let live s = s.live
  let max_depth s = s.max_depth
  let cycles s = s.cycles

  let reset s =
    s.entries <- 0;
    s.live <- 0;
    s.max_depth <- 0;
    Histogram.reset s.cycles
end

(* ----- Registries ----- *)

module Registry = struct
  type t = {
    name : string;
    counters : (string, Counter.t) Hashtbl.t;
    histograms : (string, Histogram.t) Hashtbl.t;
    spans : (string, Span.t) Hashtbl.t;
  }

  let create ~name =
    {
      name;
      counters = Hashtbl.create 64;
      histograms = Hashtbl.create 16;
      spans = Hashtbl.create 16;
    }

  let name t = t.name

  let global = create ~name:"kernel"

  let memo table make key =
    match Hashtbl.find_opt table key with
    | Some v -> v
    | None ->
        let v = make key in
        Hashtbl.add table key v;
        v

  let counter t key = memo t.counters Counter.make key
  let histogram t key = memo t.histograms Histogram.make key
  let span t key = memo t.spans Span.make key

  let sorted_bindings table value =
    Hashtbl.fold (fun k v acc -> (k, value v) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let counters t = sorted_bindings t.counters Counter.get

  let reset t =
    Hashtbl.iter (fun _ c -> Counter.reset c) t.counters;
    Hashtbl.iter (fun _ h -> Histogram.reset h) t.histograms;
    Hashtbl.iter (fun _ s -> Span.reset s) t.spans
end

(* ----- Snapshots ----- *)

module Snapshot = struct
  type histogram_data = {
    count : int;
    sum : int;
    min_value : int;
    max_value : int;
    saturated : bool;
    buckets : (int * int) list;
  }

  type span_data = { entries : int; live : int; max_depth : int; span_cycles : histogram_data }

  type t = {
    registry : string;
    counters : (string * int) list;
    histograms : (string * histogram_data) list;
    spans : (string * span_data) list;
  }

  let histogram_data h =
    {
      count = Histogram.count h;
      sum = Histogram.sum h;
      min_value = Histogram.min_value h;
      max_value = Histogram.max_value h;
      saturated = Histogram.saturated h;
      buckets = Histogram.buckets h;
    }

  let capture ?(registry = Registry.global) () =
    {
      registry = Registry.name registry;
      counters = Registry.counters registry;
      histograms = Registry.sorted_bindings registry.Registry.histograms histogram_data;
      spans =
        Registry.sorted_bindings registry.Registry.spans (fun s ->
            {
              entries = Span.entries s;
              live = Span.live s;
              max_depth = Span.max_depth s;
              span_cycles = histogram_data (Span.cycles s);
            });
    }

  (* ----- Differencing ----- *)

  let diff_alist ~zero ~sub before after =
    List.map
      (fun (key, a) ->
        let b = match List.assoc_opt key before with Some b -> b | None -> zero in
        (key, sub a b))
      after

  let diff_buckets before after =
    List.filter
      (fun (_, n) -> n > 0)
      (diff_alist ~zero:0 ~sub:( - ) before after)

  let diff_histogram (b : histogram_data) (a : histogram_data) =
    if b.count = 0 then a
    else
      {
        count = a.count - b.count;
        sum = (if a.saturated then a.sum else a.sum - b.sum);
        (* min/max cannot be differenced; report the after-side values,
           which bound the phase's samples.  A saturated sum likewise
           cannot be differenced — the ceiling is reported as-is, still
           flagged. *)
        min_value = a.min_value;
        max_value = a.max_value;
        saturated = a.saturated;
        buckets = diff_buckets b.buckets a.buckets;
      }

  let diff ~before ~after =
    let empty_hist =
      { count = 0; sum = 0; min_value = 0; max_value = 0; saturated = false; buckets = [] }
    in
    {
      registry = after.registry;
      counters = diff_alist ~zero:0 ~sub:( - ) before.counters after.counters;
      histograms =
        diff_alist ~zero:empty_hist ~sub:(fun a b -> diff_histogram b a) before.histograms
          after.histograms;
      spans =
        diff_alist
          ~zero:{ entries = 0; live = 0; max_depth = 0; span_cycles = empty_hist }
          ~sub:(fun a b ->
            {
              entries = a.entries - b.entries;
              live = a.live;
              max_depth = a.max_depth;
              span_cycles = diff_histogram b.span_cycles a.span_cycles;
            })
          before.spans after.spans;
    }

  let is_empty t =
    List.for_all (fun (_, v) -> v = 0) t.counters
    && List.for_all (fun (_, h) -> h.count = 0) t.histograms
    && List.for_all (fun (_, s) -> s.entries = 0) t.spans

  (* ----- Text rendering ----- *)

  let pad_left width s = if String.length s >= width then s else String.make (width - String.length s) ' ' ^ s

  let pad_right width s = if String.length s >= width then s else s ^ String.make (width - String.length s) ' '

  let render_rows buf ~header rows =
    if rows <> [] then begin
      let name_width =
        List.fold_left (fun w (n, _) -> max w (String.length n)) (String.length header) rows
      in
      let value_width = List.fold_left (fun w (_, v) -> max w (String.length v)) 0 rows in
      Buffer.add_string buf (header ^ "\n");
      List.iter
        (fun (n, v) ->
          Buffer.add_string buf
            ("  " ^ pad_right name_width n ^ "  " ^ pad_left value_width v ^ "\n"))
        rows
    end

  let describe_histogram h =
    if h.count = 0 then "(empty)"
    else
      Printf.sprintf "n=%d sum=%d%s mean=%.1f min=%d max=%d" h.count h.sum
        (if h.saturated then " (saturated)" else "")
        (float_of_int h.sum /. float_of_int h.count)
        h.min_value h.max_value

  let to_text t =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (Printf.sprintf "registry: %s\n" t.registry);
    let live_counters = List.filter (fun (_, v) -> v <> 0) t.counters in
    render_rows buf ~header:"counters"
      (List.map (fun (n, v) -> (n, string_of_int v)) live_counters);
    let live_hists = List.filter (fun (_, h) -> h.count > 0) t.histograms in
    render_rows buf ~header:"histograms"
      (List.map (fun (n, h) -> (n, describe_histogram h)) live_hists);
    let live_spans = List.filter (fun (_, s) -> s.entries > 0) t.spans in
    render_rows buf ~header:"spans"
      (List.map
         (fun (n, s) ->
           ( n,
             Printf.sprintf "entries=%d live=%d max_depth=%d cycles: %s" s.entries s.live
               s.max_depth (describe_histogram s.span_cycles) ))
         live_spans);
    if is_empty t then Buffer.add_string buf "(no recorded activity)\n";
    Buffer.contents buf

  (* ----- JSON rendering (hand-rolled; the library has no deps) ----- *)

  let json_escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let json_object fields =
    "{" ^ String.concat "," (List.map (fun (k, v) -> "\"" ^ json_escape k ^ "\":" ^ v) fields) ^ "}"

  let json_histogram h =
    json_object
      [
        ("count", string_of_int h.count);
        ("sum", string_of_int h.sum);
        ("saturated", if h.saturated then "true" else "false");
        ("min", string_of_int h.min_value);
        ("max", string_of_int h.max_value);
        ( "buckets",
          "["
          ^ String.concat ","
              (List.map
                 (fun (lo, n) -> Printf.sprintf "{\"ge\":%d,\"count\":%d}" lo n)
                 h.buckets)
          ^ "]" );
      ]

  let to_json t =
    json_object
      [
        ("registry", "\"" ^ json_escape t.registry ^ "\"");
        ("counters", json_object (List.map (fun (n, v) -> (n, string_of_int v)) t.counters));
        ("histograms", json_object (List.map (fun (n, h) -> (n, json_histogram h)) t.histograms));
        ( "spans",
          json_object
            (List.map
               (fun (n, s) ->
                 ( n,
                   json_object
                     [
                       ("entries", string_of_int s.entries);
                       ("live", string_of_int s.live);
                       ("max_depth", string_of_int s.max_depth);
                       ("cycles", json_histogram s.span_cycles);
                     ] ))
               t.spans) );
      ]
end
