(* Kernel observability: counters, log-bucketed histograms and spans,
   in named registries, with text-table and JSON renderers.

   Design constraints, in order:

   1. the disabled path must stay branch-cheap — every recording
      primitive starts with [if enabled ()], one domain-local load
      plus a branch;
   2. zero dependencies — the kernel's innermost layers (the hardware
      check, the simulator) record here, so this library must sit
      below everything;
   3. recording must never allocate on the hot path — counters mutate
      an int field, histograms mutate a preallocated array.

   Domain-safety: every piece of mutable state here — the enable flag,
   the default registry, the instruments themselves — is domain-local.
   A worker domain running a per-seed experiment task (lib/par) records
   into its own registry, never contending with (or corrupting) another
   domain's instruments; after the join the caller absorbs each task's
   snapshot in task order ({!Snapshot.absorb}), so the merged totals
   match a sequential run exactly. *)

let enabled_key = Domain.DLS.new_key (fun () -> true)

let enabled () = Domain.DLS.get enabled_key
let set_enabled flag = Domain.DLS.set enabled_key flag

let with_disabled f =
  let saved = enabled () in
  set_enabled false;
  Fun.protect ~finally:(fun () -> set_enabled saved) f

(* ----- Counters ----- *)

module Counter = struct
  type t = { name : string; mutable value : int }

  let make name = { name; value = 0 }
  let name c = c.name
  let incr ?(by = 1) c = if enabled () then c.value <- c.value + by
  let set c v = if enabled () then c.value <- v
  let get c = c.value
  let reset c = c.value <- 0
end

(* ----- Histograms ----- *)

module Histogram = struct
  (* Bucket i holds samples whose highest set bit is i: the range
     [2^i, 2^(i+1) - 1].  Bucket 0 also absorbs 0 (and, defensively,
     negative samples).  62 buckets cover every OCaml int. *)
  let bucket_count = 62

  type t = {
    name : string;
    buckets : int array;
    mutable count : int;
    mutable sum : int;
    mutable min_value : int;
    mutable max_value : int;
    mutable saturated : bool;
  }

  let make name =
    {
      name;
      buckets = Array.make bucket_count 0;
      count = 0;
      sum = 0;
      min_value = max_int;
      max_value = 0;
      saturated = false;
    }

  let name h = h.name

  let bucket_index v =
    if v <= 1 then 0
    else begin
      let rec highest_bit acc v = if v <= 1 then acc else highest_bit (acc + 1) (v lsr 1) in
      min (bucket_count - 1) (highest_bit 0 v)
    end

  let bucket_lower_bound i = if i = 0 then 0 else 1 lsl i

  let observe h v =
    if enabled () then begin
      let v = if v < 0 then 0 else v in
      h.buckets.(bucket_index v) <- h.buckets.(bucket_index v) + 1;
      h.count <- h.count + 1;
      (* The running sum saturates at [max_int] instead of wrapping: a
         multi-billion-cycle run (an SMP sweep observing per-connect
         costs forever) must degrade to a pinned ceiling, never to a
         silently negative total.  [saturated] records that the ceiling
         was hit so snapshots can flag the sum as a lower bound. *)
      if v > max_int - h.sum then begin
        h.sum <- max_int;
        h.saturated <- true
      end
      else h.sum <- h.sum + v;
      if v < h.min_value then h.min_value <- v;
      if v > h.max_value then h.max_value <- v
    end

  let count h = h.count
  let sum h = h.sum
  let saturated h = h.saturated
  let mean h = if h.count = 0 then 0.0 else float_of_int h.sum /. float_of_int h.count
  let min_value h = if h.count = 0 then 0 else h.min_value
  let max_value h = h.max_value

  let buckets h =
    let acc = ref [] in
    for i = bucket_count - 1 downto 0 do
      if h.buckets.(i) > 0 then acc := (bucket_lower_bound i, h.buckets.(i)) :: !acc
    done;
    !acc

  (* The quantile estimate reports the upper bound of the bucket the
     rank falls in — pessimistic by at most the bucket's factor of 2. *)
  let quantile h q =
    if h.count = 0 then 0
    else begin
      let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
      let rank = int_of_float (ceil (q *. float_of_int h.count)) in
      let rank = if rank < 1 then 1 else rank in
      let rec walk i seen =
        if i >= bucket_count then h.max_value
        else begin
          let seen = seen + h.buckets.(i) in
          if seen >= rank then begin
            let lo = bucket_lower_bound i in
            let hi = if lo = 0 then 1 else (2 * lo) - 1 in
            min h.max_value hi
          end
          else walk (i + 1) seen
        end
      in
      walk 0 0
    end

  let reset h =
    Array.fill h.buckets 0 bucket_count 0;
    h.count <- 0;
    h.sum <- 0;
    h.min_value <- max_int;
    h.max_value <- 0;
    h.saturated <- false
end

(* ----- Spans ----- *)

module Span = struct
  type t = {
    name : string;
    cycles : Histogram.t;
    mutable entries : int;
    mutable live : int;
    mutable max_depth : int;
  }

  let make name = { name; cycles = Histogram.make name; entries = 0; live = 0; max_depth = 0 }

  let name s = s.name

  let enter s =
    if enabled () then begin
      s.entries <- s.entries + 1;
      s.live <- s.live + 1;
      if s.live > s.max_depth then s.max_depth <- s.live
    end

  let leave s ~cycles =
    if enabled () then begin
      if s.live > 0 then s.live <- s.live - 1;
      Histogram.observe s.cycles cycles
    end

  let record s ~cycles =
    enter s;
    leave s ~cycles

  let entries s = s.entries
  let live s = s.live
  let max_depth s = s.max_depth
  let cycles s = s.cycles

  let reset s =
    s.entries <- 0;
    s.live <- 0;
    s.max_depth <- 0;
    Histogram.reset s.cycles
end

(* ----- Registries ----- *)

module Registry = struct
  type t = {
    name : string;
    counters : (string, Counter.t) Hashtbl.t;
    histograms : (string, Histogram.t) Hashtbl.t;
    spans : (string, Span.t) Hashtbl.t;
  }

  let create ~name =
    {
      name;
      counters = Hashtbl.create 64;
      histograms = Hashtbl.create 16;
      spans = Hashtbl.create 16;
    }

  let name t = t.name

  (* One default registry per domain: a worker domain resolving
     "kernel" instruments gets its own private copies, so recording
     from parallel per-seed tasks never races.  Lazily created on
     first use in each domain. *)
  let global_key = Domain.DLS.new_key (fun () -> create ~name:"kernel")
  let global () = Domain.DLS.get global_key

  let memo table make key =
    match Hashtbl.find_opt table key with
    | Some v -> v
    | None ->
        let v = make key in
        Hashtbl.add table key v;
        v

  let counter t key = memo t.counters Counter.make key
  let histogram t key = memo t.histograms Histogram.make key
  let span t key = memo t.spans Span.make key

  let sorted_bindings table value =
    Hashtbl.fold (fun k v acc -> (k, value v) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let counters t = sorted_bindings t.counters Counter.get

  let reset t =
    Hashtbl.iter (fun _ c -> Counter.reset c) t.counters;
    Hashtbl.iter (fun _ h -> Histogram.reset h) t.histograms;
    Hashtbl.iter (fun _ s -> Span.reset s) t.spans
end

(* ----- Domain-local instrument handles ----- *)

(* A module-level [let obs_x = Registry.counter (Registry.global ()) "x"]
   would capture the *initialising* domain's instrument forever — a
   worker domain incrementing it would race domain 0.  [Local] handles
   defer resolution: each handle owns a DLS slot that memoises, per
   domain, the instrument of that domain's default registry.  The hot
   path is one DLS load. *)

module Local = struct
  type 'a handle = unit -> 'a

  let counter name : Counter.t handle =
    let key = Domain.DLS.new_key (fun () -> Registry.counter (Registry.global ()) name) in
    fun () -> Domain.DLS.get key

  let histogram name : Histogram.t handle =
    let key = Domain.DLS.new_key (fun () -> Registry.histogram (Registry.global ()) name) in
    fun () -> Domain.DLS.get key

  let span name : Span.t handle =
    let key = Domain.DLS.new_key (fun () -> Registry.span (Registry.global ()) name) in
    fun () -> Domain.DLS.get key
end

(* ----- Snapshots ----- *)

module Snapshot = struct
  type histogram_data = {
    count : int;
    sum : int;
    min_value : int;
    max_value : int;
    saturated : bool;
    buckets : (int * int) list;
  }

  type span_data = { entries : int; live : int; max_depth : int; span_cycles : histogram_data }

  type t = {
    registry : string;
    counters : (string * int) list;
    histograms : (string * histogram_data) list;
    spans : (string * span_data) list;
  }

  let histogram_data h =
    {
      count = Histogram.count h;
      sum = Histogram.sum h;
      min_value = Histogram.min_value h;
      max_value = Histogram.max_value h;
      saturated = Histogram.saturated h;
      buckets = Histogram.buckets h;
    }

  let capture ?registry () =
    let registry = match registry with Some r -> r | None -> Registry.global () in
    {
      registry = Registry.name registry;
      counters = Registry.counters registry;
      histograms = Registry.sorted_bindings registry.Registry.histograms histogram_data;
      spans =
        Registry.sorted_bindings registry.Registry.spans (fun s ->
            {
              entries = Span.entries s;
              live = Span.live s;
              max_depth = Span.max_depth s;
              span_cycles = histogram_data (Span.cycles s);
            });
    }

  (* ----- Differencing ----- *)

  let diff_alist ~zero ~sub before after =
    List.map
      (fun (key, a) ->
        let b = match List.assoc_opt key before with Some b -> b | None -> zero in
        (key, sub a b))
      after

  let diff_buckets before after =
    List.filter
      (fun (_, n) -> n > 0)
      (diff_alist ~zero:0 ~sub:( - ) before after)

  let diff_histogram (b : histogram_data) (a : histogram_data) =
    if b.count = 0 then a
    else
      {
        count = a.count - b.count;
        sum = (if a.saturated then a.sum else a.sum - b.sum);
        (* min/max cannot be differenced; report the after-side values,
           which bound the phase's samples.  A saturated sum likewise
           cannot be differenced — the ceiling is reported as-is, still
           flagged. *)
        min_value = a.min_value;
        max_value = a.max_value;
        saturated = a.saturated;
        buckets = diff_buckets b.buckets a.buckets;
      }

  let diff ~before ~after =
    let empty_hist =
      { count = 0; sum = 0; min_value = 0; max_value = 0; saturated = false; buckets = [] }
    in
    {
      registry = after.registry;
      counters = diff_alist ~zero:0 ~sub:( - ) before.counters after.counters;
      histograms =
        diff_alist ~zero:empty_hist ~sub:(fun a b -> diff_histogram b a) before.histograms
          after.histograms;
      spans =
        diff_alist
          ~zero:{ entries = 0; live = 0; max_depth = 0; span_cycles = empty_hist }
          ~sub:(fun a b ->
            {
              entries = a.entries - b.entries;
              live = a.live;
              max_depth = a.max_depth;
              span_cycles = diff_histogram b.span_cycles a.span_cycles;
            })
          before.spans after.spans;
    }

  let is_empty t =
    List.for_all (fun (_, v) -> v = 0) t.counters
    && List.for_all (fun (_, h) -> h.count = 0) t.histograms
    && List.for_all (fun (_, s) -> s.entries = 0) t.spans

  (* ----- Merging (the parallel-harness join path) ----- *)

  (* Union-add of two sorted assoc lists; keys present on one side only
     pass through unchanged. *)
  let rec merge_alist ~add a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | (ka, va) :: ta, (kb, vb) :: tb ->
        let c = compare ka kb in
        if c = 0 then (ka, add va vb) :: merge_alist ~add ta tb
        else if c < 0 then (ka, va) :: merge_alist ~add ta b
        else (kb, vb) :: merge_alist ~add a tb

  (* Histogram sums saturate on merge exactly as they do on observe:
     if either side already hit the ceiling, or the addition would, the
     merged sum is pinned at [max_int] with [saturated] set.  In
     particular merging two saturated snapshots stays saturated — a
     naive [a.sum + b.sum] would wrap negative and drop the flag. *)
  let merge_histogram_data a b =
    if a.count = 0 then b
    else if b.count = 0 then a
    else begin
      let saturated = a.saturated || b.saturated || a.sum > max_int - b.sum in
      {
        count = a.count + b.count;
        sum = (if saturated then max_int else a.sum + b.sum);
        min_value = min a.min_value b.min_value;
        max_value = max a.max_value b.max_value;
        saturated;
        buckets = merge_alist ~add:( + ) a.buckets b.buckets;
      }
    end

  let merge_span_data a b =
    {
      entries = a.entries + b.entries;
      live = a.live + b.live;
      max_depth = max a.max_depth b.max_depth;
      span_cycles = merge_histogram_data a.span_cycles b.span_cycles;
    }

  let merge a b =
    {
      registry = a.registry;
      counters = merge_alist ~add:( + ) a.counters b.counters;
      histograms = merge_alist ~add:merge_histogram_data a.histograms b.histograms;
      spans = merge_alist ~add:merge_span_data a.spans b.spans;
    }

  (* Add a snapshot's totals into live instruments — how a parallel
     join folds each worker task's private recordings back into the
     caller's registry, in task order.  Bypasses the [enabled] gate:
     the work was already recorded once, under the worker's own gate. *)
  let absorb ?into t =
    let into = match into with Some r -> r | None -> Registry.global () in
    List.iter
      (fun (name, v) ->
        if v <> 0 then begin
          let c = Registry.counter into name in
          c.Counter.value <- c.Counter.value + v
        end)
      t.counters;
    let absorb_hist (h : Histogram.t) (d : histogram_data) =
      if d.count > 0 then begin
        List.iter
          (fun (lo, n) ->
            let i = Histogram.bucket_index lo in
            h.Histogram.buckets.(i) <- h.Histogram.buckets.(i) + n)
          d.buckets;
        h.Histogram.count <- h.Histogram.count + d.count;
        if d.saturated || d.sum > max_int - h.Histogram.sum then begin
          h.Histogram.sum <- max_int;
          h.Histogram.saturated <- true
        end
        else h.Histogram.sum <- h.Histogram.sum + d.sum;
        if d.min_value < h.Histogram.min_value then h.Histogram.min_value <- d.min_value;
        if d.max_value > h.Histogram.max_value then h.Histogram.max_value <- d.max_value
      end
    in
    List.iter (fun (name, d) -> absorb_hist (Registry.histogram into name) d) t.histograms;
    List.iter
      (fun (name, (s : span_data)) ->
        let sp = Registry.span into name in
        sp.Span.entries <- sp.Span.entries + s.entries;
        sp.Span.live <- sp.Span.live + s.live;
        if s.max_depth > sp.Span.max_depth then sp.Span.max_depth <- s.max_depth;
        absorb_hist (Span.cycles sp) s.span_cycles)
      t.spans

  (* ----- Text rendering ----- *)

  let pad_left width s = if String.length s >= width then s else String.make (width - String.length s) ' ' ^ s

  let pad_right width s = if String.length s >= width then s else s ^ String.make (width - String.length s) ' '

  let render_rows buf ~header rows =
    if rows <> [] then begin
      let name_width =
        List.fold_left (fun w (n, _) -> max w (String.length n)) (String.length header) rows
      in
      let value_width = List.fold_left (fun w (_, v) -> max w (String.length v)) 0 rows in
      Buffer.add_string buf (header ^ "\n");
      List.iter
        (fun (n, v) ->
          Buffer.add_string buf
            ("  " ^ pad_right name_width n ^ "  " ^ pad_left value_width v ^ "\n"))
        rows
    end

  let describe_histogram h =
    if h.count = 0 then "(empty)"
    else
      Printf.sprintf "n=%d sum=%d%s mean=%.1f min=%d max=%d" h.count h.sum
        (if h.saturated then " (saturated)" else "")
        (float_of_int h.sum /. float_of_int h.count)
        h.min_value h.max_value

  let to_text t =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (Printf.sprintf "registry: %s\n" t.registry);
    let live_counters = List.filter (fun (_, v) -> v <> 0) t.counters in
    render_rows buf ~header:"counters"
      (List.map (fun (n, v) -> (n, string_of_int v)) live_counters);
    let live_hists = List.filter (fun (_, h) -> h.count > 0) t.histograms in
    render_rows buf ~header:"histograms"
      (List.map (fun (n, h) -> (n, describe_histogram h)) live_hists);
    let live_spans = List.filter (fun (_, s) -> s.entries > 0) t.spans in
    render_rows buf ~header:"spans"
      (List.map
         (fun (n, s) ->
           ( n,
             Printf.sprintf "entries=%d live=%d max_depth=%d cycles: %s" s.entries s.live
               s.max_depth (describe_histogram s.span_cycles) ))
         live_spans);
    if is_empty t then Buffer.add_string buf "(no recorded activity)\n";
    Buffer.contents buf

  (* ----- JSON rendering (hand-rolled; the library has no deps) ----- *)

  let json_escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let json_object fields =
    "{" ^ String.concat "," (List.map (fun (k, v) -> "\"" ^ json_escape k ^ "\":" ^ v) fields) ^ "}"

  let json_histogram h =
    json_object
      [
        ("count", string_of_int h.count);
        ("sum", string_of_int h.sum);
        ("saturated", if h.saturated then "true" else "false");
        ("min", string_of_int h.min_value);
        ("max", string_of_int h.max_value);
        ( "buckets",
          "["
          ^ String.concat ","
              (List.map
                 (fun (lo, n) -> Printf.sprintf "{\"ge\":%d,\"count\":%d}" lo n)
                 h.buckets)
          ^ "]" );
      ]

  let to_json t =
    json_object
      [
        ("registry", "\"" ^ json_escape t.registry ^ "\"");
        ("counters", json_object (List.map (fun (n, v) -> (n, string_of_int v)) t.counters));
        ("histograms", json_object (List.map (fun (n, h) -> (n, json_histogram h)) t.histograms));
        ( "spans",
          json_object
            (List.map
               (fun (n, s) ->
                 ( n,
                   json_object
                     [
                       ("entries", string_of_int s.entries);
                       ("live", string_of_int s.live);
                       ("max_depth", string_of_int s.max_depth);
                       ("cycles", json_histogram s.span_cycles);
                     ] ))
               t.spans) );
      ]
end
