(* Deterministic fault injection: seeded, reproducible fault schedules
   at the kernel's mediation choke points.

   The design rule, after the paper's certification argument: a fault
   decision is computed OUTSIDE the reference monitor and its only
   possible effects are extra cost (retries, backoff) or refusal
   (denial, abort, crash).  Nothing here can widen an access decision,
   so the kernel can fail only closed.

   Determinism: probabilistic schedules draw from a Prng stream keyed
   by (plan seed, site name) — see Prng.create_labeled — so streams
   never depend on the draw order of other sites, and the same
   (seed, plan, workload) triple yields the identical injection trace. *)

module Obs = Multics_obs.Obs

type site =
  | Page_read
  | Page_write
  | Evict
  | Device_transient
  | Net_transient
  | Consumer_stall
  | Gate_deny
  | Gate_abort
  | Proc_crash
  | Backup_tape
  | Cache_flush
  | Sched_preempt
  | Smp_lost_connect
  | Site_drop
  | Site_delay
  | Site_partition

let all_sites =
  [
    Page_read;
    Page_write;
    Evict;
    Device_transient;
    Net_transient;
    Consumer_stall;
    Gate_deny;
    Gate_abort;
    Proc_crash;
    Backup_tape;
    Cache_flush;
    Sched_preempt;
    Smp_lost_connect;
    Site_drop;
    Site_delay;
    Site_partition;
  ]

let site_name = function
  | Page_read -> "vm.page_read"
  | Page_write -> "vm.page_write"
  | Evict -> "vm.evict"
  | Device_transient -> "io.device"
  | Net_transient -> "io.net"
  | Consumer_stall -> "io.stall"
  | Gate_deny -> "gate.deny"
  | Gate_abort -> "gate.abort"
  | Proc_crash -> "proc.crash"
  | Backup_tape -> "backup.tape"
  | Cache_flush -> "cache.flush"
  | Sched_preempt -> "sched.preempt_storm"
  | Smp_lost_connect -> "smp.lost_connect"
  | Site_drop -> "site.drop"
  | Site_delay -> "site.delay"
  | Site_partition -> "site.partition"

let site_of_name name = List.find_opt (fun s -> String.equal (site_name s) name) all_sites

type schedule = Nth of int | Every of int | Probability of { num : int; den : int }

let schedule_to_string = function
  | Nth n -> Printf.sprintf "nth:%d" n
  | Every k -> Printf.sprintf "every:%d" k
  | Probability { num; den } -> Printf.sprintf "p:%d/%d" num den

let schedule_of_string s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad schedule %S (want nth:K, every:K or p:N/D)" s)
  | Some i -> (
      let kind = String.sub s 0 i in
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "nth" -> (
          match int_of_string_opt arg with
          | Some n when n >= 1 -> Ok (Nth n)
          | _ -> Error (Printf.sprintf "bad nth count %S" arg))
      | "every" -> (
          match int_of_string_opt arg with
          | Some k when k >= 1 -> Ok (Every k)
          | _ -> Error (Printf.sprintf "bad every period %S" arg))
      | "p" -> (
          match String.index_opt arg '/' with
          | None -> Error (Printf.sprintf "bad probability %S (want N/D)" arg)
          | Some j -> (
              let num = int_of_string_opt (String.sub arg 0 j) in
              let den = int_of_string_opt (String.sub arg (j + 1) (String.length arg - j - 1)) in
              match (num, den) with
              | Some num, Some den when num >= 0 && den > 0 && num <= den ->
                  Ok (Probability { num; den })
              | _ -> Error (Printf.sprintf "bad probability %S" arg)))
      | other -> Error (Printf.sprintf "unknown schedule kind %S" other))

module Plan = struct
  type rule = { site : site; schedule : schedule }

  type t = { seed : int; rules : rule list }

  let empty = { seed = 0; rules = [] }

  let make ~seed rules =
    { seed; rules = List.map (fun (site, schedule) -> { site; schedule }) rules }

  let is_empty t = t.rules = []

  let to_string t =
    if is_empty t then "(empty)"
    else
      String.concat ","
        (List.map
           (fun r -> Printf.sprintf "%s=%s" (site_name r.site) (schedule_to_string r.schedule))
           t.rules)

  let parse ~seed spec =
    let parse_rule acc part =
      match acc with
      | Error _ as e -> e
      | Ok rules -> (
          match String.index_opt part '=' with
          | None -> Error (Printf.sprintf "bad rule %S (want SITE=SCHEDULE)" part)
          | Some i -> (
              let name = String.sub part 0 i in
              let sched = String.sub part (i + 1) (String.length part - i - 1) in
              match site_of_name name with
              | None ->
                  Error
                    (Printf.sprintf "unknown site %S (sites: %s)" name
                       (String.concat ", " (List.map site_name all_sites)))
              | Some site -> (
                  match schedule_of_string sched with
                  | Error _ as e -> e
                  | Ok schedule -> Ok ({ site; schedule } :: rules))))
    in
    let parts =
      String.split_on_char ',' (String.trim spec)
      |> List.map String.trim
      |> List.filter (fun p -> p <> "")
    in
    match parts with
    | [] -> Error "empty fault plan spec"
    | parts -> (
        match List.fold_left parse_rule (Ok []) parts with
        | Error _ as e -> e
        | Ok rules -> Ok { seed; rules = List.rev rules })
end

(* ----- Observability ----- *)

let obs_checks = Obs.Local.counter "fault.checks"
let obs_injected = Obs.Local.counter "fault.injected"
let obs_retries = Obs.Local.counter "fault.retries"
let obs_giveups = Obs.Local.counter "fault.giveups"
module Injector = struct
  type site_state = {
    rule : Plan.rule;
    prng : Multics_util.Prng.t;
    obs_site : Obs.Counter.t;
    mutable occurrences : int;
    mutable site_injected : int;
  }

  type t = {
    plan : Plan.t;
    states : (string, site_state) Hashtbl.t;  (** keyed by site name *)
    mutable total_checks : int;
    mutable total_injected : int;
    mutable total_retries : int;
    mutable total_giveups : int;
  }

  let create (plan : Plan.t) =
    let states = Hashtbl.create 8 in
    List.iter
      (fun (rule : Plan.rule) ->
        let name = site_name rule.site in
        Hashtbl.replace states name
          {
            rule;
            prng = Multics_util.Prng.create_labeled ~seed:plan.Plan.seed ~label:name;
            obs_site = Obs.Registry.counter (Obs.Registry.global ()) ("fault.injected." ^ name);
            occurrences = 0;
            site_injected = 0;
          })
      plan.Plan.rules;
    { plan; states; total_checks = 0; total_injected = 0; total_retries = 0; total_giveups = 0 }

  let plan t = t.plan

  let fire t site =
    t.total_checks <- t.total_checks + 1;
    Obs.Counter.incr (obs_checks ());
    match Hashtbl.find_opt t.states (site_name site) with
    | None -> false
    | Some st ->
        st.occurrences <- st.occurrences + 1;
        let fires =
          match st.rule.Plan.schedule with
          | Nth n -> st.occurrences = n
          | Every k -> st.occurrences mod k = 0
          | Probability { num; den } -> Multics_util.Prng.chance st.prng ~num ~den
        in
        if fires then begin
          st.site_injected <- st.site_injected + 1;
          t.total_injected <- t.total_injected + 1;
          Obs.Counter.incr (obs_injected ());
          Obs.Counter.incr st.obs_site
        end;
        fires

  let count_retry t _site =
    t.total_retries <- t.total_retries + 1;
    Obs.Counter.incr (obs_retries ())

  let count_giveup t _site =
    t.total_giveups <- t.total_giveups + 1;
    Obs.Counter.incr (obs_giveups ())

  let checks t = t.total_checks
  let injected t = t.total_injected
  let retries t = t.total_retries
  let giveups t = t.total_giveups

  let site_state t site = Hashtbl.find_opt t.states (site_name site)

  let injected_at t site =
    match site_state t site with None -> 0 | Some st -> st.site_injected

  let occurrences_at t site =
    match site_state t site with None -> 0 | Some st -> st.occurrences

  let counts t =
    let per_site =
      Hashtbl.fold
        (fun name st acc -> ("injected." ^ name, st.site_injected) :: acc)
        t.states []
    in
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (("checks", t.total_checks) :: ("injected", t.total_injected)
      :: ("retries", t.total_retries) :: ("giveups", t.total_giveups) :: per_site)
end
