(** Deterministic fault injection.

    A {!Plan.t} is a seeded, reproducible schedule of faults at named
    mediation choke points (the {!site}s); an {!Injector.t} executes a
    plan, deciding at each occurrence of a site whether the fault fires.
    The whole machinery is built so the kernel can attack itself and
    prove fail-secure behaviour: an injected fault may make an operation
    slower (retries, backoff) or make it fail (denial, abort, crash),
    but the decision procedure never touches the reference monitor, so a
    fault can never {e grant} anything.

    Determinism: every probabilistic schedule draws from a
    {!Multics_util.Prng} stream keyed by [(plan seed, site name)], so
    the same plan against the same workload produces the identical
    injection trace — and therefore the identical observability
    snapshot — run after run. *)

(** The mediation choke points faults can be injected at. *)
type site =
  | Page_read  (** parity error reading a page in (vm/page_control) *)
  | Page_write  (** parity error writing a page out on eviction *)
  | Evict  (** eviction attempt fails outright; retried at cost *)
  | Device_transient  (** device I/O transient; retry w/ backoff, then give up *)
  | Net_transient  (** network arrival delayed by a transient *)
  | Consumer_stall  (** the consuming process stalls mid-drain *)
  | Gate_deny  (** gate call refused before the body runs *)
  | Gate_abort  (** gate call aborted after the body ran (mid-dispatch crash) *)
  | Proc_crash  (** the running process crashes at a compute point *)
  | Backup_tape  (** tape write error in the backup daemon *)
  | Cache_flush
      (** the access-decision cache spontaneously flushes (storm-tests
          that invalidation is a performance event, never a
          correctness event) *)
  | Sched_preempt
      (** the traffic controller clamps the running quantum to a sliver,
          forcing a preemption storm — pure extra process-switch cost;
          dispatch order may churn but mediation is schedule-invariant *)
  | Smp_lost_connect
      (** a connect (inter-processor interrupt) is dropped on the wire;
          the sender must detect the missing acknowledgement and fail
          secure — stall and re-signal, never proceed on a possibly
          stale remote associative memory *)
  | Site_drop
      (** a cross-site connect is lost on the inter-site link; the
          origin site must retry with backoff and, past the budget,
          fence the silent peer rather than let it serve stale
          decisions *)
  | Site_delay
      (** a cross-site connect is delivered but slowly (congested
          link); pure extra latency inside the mutation's completion
          window, never a correctness event *)
  | Site_partition
      (** the inter-site link is severed for this transmission — both
          the connect and any acknowledgement are lost, as in a
          network partition *)

val all_sites : site list

val site_name : site -> string
(** The stable external name (["vm.page_read"], ["gate.abort"], ...)
    used by plan specs, observability counters and reports. *)

val site_of_name : string -> site option

(** Fault schedules, per site. *)
type schedule =
  | Nth of int  (** fire on exactly the nth occurrence (1-based) *)
  | Every of int  (** fire on every kth occurrence *)
  | Probability of { num : int; den : int }  (** each occurrence fires with p = num/den *)

val schedule_to_string : schedule -> string

module Plan : sig
  type rule = { site : site; schedule : schedule }

  type t = { seed : int; rules : rule list }

  val empty : t

  val make : seed:int -> (site * schedule) list -> t

  val is_empty : t -> bool

  val to_string : t -> string
  (** Round-trips through {!parse} (modulo the seed, which [parse]
      takes separately). *)

  val parse : seed:int -> string -> (t, string) result
  (** Parse a spec like
      ["gate.deny=every:5,vm.page_read=p:1/8,backup.tape=nth:3"].
      Schedules: [nth:K], [every:K], [p:N/D]. *)
end

module Injector : sig
  type t

  val create : Plan.t -> t

  val plan : t -> Plan.t

  val fire : t -> site -> bool
  (** Count one occurrence of [site] and decide whether the fault
      fires.  Sites without a rule never fire.  Every decision is
      counted through [lib/obs] (["fault.checks"], ["fault.injected"],
      ["fault.injected.<site>"]). *)

  val count_retry : t -> site -> unit
  (** Record one retry forced by an injected fault (["fault.retries"]). *)

  val count_giveup : t -> site -> unit
  (** Record one retry budget exhausted (["fault.giveups"]). *)

  val checks : t -> int
  val injected : t -> int
  val retries : t -> int
  val giveups : t -> int

  val injected_at : t -> site -> int
  val occurrences_at : t -> site -> int

  val counts : t -> (string * int) list
  (** Totals plus per-site injection counts, for reports and the shell
      [fault status] command; sorted by name. *)
end
