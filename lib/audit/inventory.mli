(** The supervisor inventory: a data-driven reconstruction of the
    early-1970s Multics supervisor, sized from the paper's own numbers
    (180 baseline gates; linker = 18, i.e. 10%; linker + naming = 60,
    i.e. one third; address-space protected code 3,500 -> 350
    statements).  The per-configuration module list is the workload for
    experiments E1, E2, E3 and E12. *)

type mechanism_kind = Common | Private_per_process

type module_info = {
  module_name : string;
  subsystem : string;
  statements : int;
  gates : int;
  certification_ring : int;
  kind : mechanism_kind;
}

val modules : Multics_kernel.Config.t -> module_info list

val total_gates : Multics_kernel.Config.t -> int
val total_statements : Multics_kernel.Config.t -> int

val ring0_statements : Multics_kernel.Config.t -> int
(** The mass that must be fully certified. *)

val ring1_statements : Multics_kernel.Config.t -> int
(** The partitioned mass that can only cause denial of use. *)

val module_count : Multics_kernel.Config.t -> int

val subsystem_statements : Multics_kernel.Config.t -> subsystem:string -> int
val subsystem_gates : Multics_kernel.Config.t -> subsystem:string -> int

val address_space_statements : Multics_kernel.Config.t -> int
(** Protected code managing the address space (E2's factor-of-ten). *)

(** {1 Specialised-surface accounting (E22)} *)

type specialised_surface = {
  functional_kept : int;  (** admitted gates in the functional catalog *)
  functional_full : int;  (** the configuration's full catalog size *)
  paper_kept : int;  (** the kept surface at paper scale (180-gate baseline) *)
  paper_full : int;  (** the configuration's paper-scale total *)
  by_subsystem : (string * int * int) list;
      (** (functional subsystem, kept, full), sorted by subsystem *)
}

val specialised_surface :
  Multics_kernel.Config.t -> admitted:(string -> bool) -> specialised_surface
(** The attack surface left by a per-workload specialisation, in both
    the functional catalog's units and the paper-scale inventory's:
    each inventory subsystem is scaled by its functional subsystem's
    kept fraction; inventory subsystems with no functional counterpart
    (traffic control, fault handling, ...) have no user-strippable
    entries and pass through at full size. *)
