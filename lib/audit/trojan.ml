(* The four categories of non-kernel software (paper, "The Security
   Kernel" section), as runnable scenarios.

   The point being demonstrated: "while a security kernel contains all
   the mechanisms that must be considered to certify a system, a
   correct kernel does not guarantee the integrity of all computations
   or stored data ... But if the kernel is correct, then these
   undesired results will not be unauthorized."  Each scenario reports
   both bits: did something undesired happen, and was anything
   *unauthorized* (i.e., did the kernel fail). *)

open Multics_access
open Multics_kernel

type category = System_provided | User_constructed | Borrowed_program | Mutual_consent

let category_name = function
  | System_provided -> "system-provided program (private mechanism)"
  | User_constructed -> "user's own program"
  | Borrowed_program -> "borrowed program (trojan horse)"
  | Mutual_consent -> "mutual-consent common mechanism"

type result = {
  category : category;
  scenario_name : string;
  undesired : bool;  (** something the data's owner did not want happened *)
  unauthorized : bool;  (** the kernel permitted what it should have refused *)
  contained : bool;  (** a protection tool limited the damage *)
  note : string;
}

let expect what = function
  | Ok v -> v
  | Error e -> invalid_arg (Printf.sprintf "trojan setup: %s failed: %s" what e)

let expect_api what r = expect what (Result.map_error Api.error_to_string r)
let expect_env what r = expect what (Result.map_error User_env.error_to_string r)

(* Scenario gate traffic goes through the typed dispatch surface; the
   projections below keep the scenario bodies readable. *)
let write_word system ~handle ~segno ~offset ~value =
  Result.map
    (fun _ -> ())
    (Api.Call.dispatch system ~handle (Api.Call.Write_word { segno; offset; value }))

let read_word system ~handle ~segno ~offset =
  match Api.Call.dispatch system ~handle (Api.Call.Read_word { segno; offset }) with
  | Ok (Api.Call.Word v) -> Ok v
  | Ok _ -> invalid_arg "trojan: read_word returned a mismatched reply"
  | Error e -> Error e

let set_acl system ~handle ~segno ~acl =
  Result.map (fun _ -> ()) (Api.Call.dispatch system ~handle (Api.Call.Set_acl { segno; acl }))

let login_expect system ~person ~project ~password =
  expect "login"
    (Result.map_error System.login_error_to_string (System.login system ~person ~project ~password))

(* A fresh world: Jones (the borrower/victim) and Mallory (the lender),
   both Unclassified so only the discretionary mechanisms are in play —
   the trojan threat the paper describes is exactly the one the lattice
   does not address because the borrower *authorizes* the program. *)
let build () =
  let system = System.create Config.kernel_6180 in
  ignore
    (System.add_account system ~person:"Jones" ~project:"Crypto" ~password:"argon"
       ~clearance:Label.unclassified);
  ignore
    (System.add_account system ~person:"Mallory" ~project:"Guest" ~password:"mallet"
       ~clearance:Label.unclassified);
  let jones = login_expect system ~person:"Jones" ~project:"Crypto" ~password:"argon" in
  let mallory = login_expect system ~person:"Mallory" ~project:"Guest" ~password:"mallet" in
  (* Jones's diary: ACL-protected, Jones only. *)
  let diary =
    expect_env "diary"
      (User_env.create_segment_at system ~handle:jones ~path:">udd>Crypto>Jones>diary"
         ~acl:(Acl.of_strings [ ("Jones.Crypto.*", "rw") ])
         ~label:Label.unclassified)
  in
  expect_api "diary write" (write_word system ~handle:jones ~segno:diary ~offset:0 ~value:424242);
  (system, jones, mallory, diary)

(* 1. A system-provided program with a random error scribbles on its
   caller's data.  The program is a private mechanism: the damage can
   land only on the invoking user. *)
let scenario_system_provided () =
  let system, jones, _mallory, diary = build () in
  (* The buggy library routine, running as Jones, corrupts Jones's own
     diary... *)
  let buggy_routine () =
    expect_api "bug write" (write_word system ~handle:jones ~segno:diary ~offset:0 ~value:0)
  in
  buggy_routine ();
  let corrupted =
    expect_api "reread" (read_word system ~handle:jones ~segno:diary ~offset:0) = 0
  in
  {
    category = System_provided;
    scenario_name = "buggy library routine";
    undesired = corrupted;
    unauthorized = false;
    contained = false;
    note =
      "the error damaged only the invoking user's data; no other user's computation could \
       be reached through this private mechanism";
  }

(* 2. The user's own program misbehaves: the user's own problem. *)
let scenario_user_constructed () =
  let system, jones, _mallory, _diary = build () in
  let scratch =
    expect_env "scratch"
      (User_env.create_segment_at system ~handle:jones ~path:">udd>Crypto>Jones>scratch"
         ~acl:(Acl.of_strings [ ("Jones.Crypto.*", "rw") ])
         ~label:Label.unclassified)
  in
  expect_api "own bug" (write_word system ~handle:jones ~segno:scratch ~offset:0 ~value:(-1));
  {
    category = User_constructed;
    scenario_name = "user's own buggy program";
    undesired = true;
    unauthorized = false;
    contained = false;
    note = "errors in the user's own programs are the user's own problem";
  }

(* 3a. The borrowed editor, unconfined: it runs with ALL the borrower's
   authority, quietly adds the lender to the diary's ACL, and the
   lender reads it.  Every step is authorized; the result is exactly
   what the borrower did not want. *)
let scenario_borrowed_unconfined () =
  let system, jones, mallory, diary = build () in
  let lent_editor_payload () =
    (* ... the useful editing ... and the payload: *)
    expect_api "trojan set_acl"
      (set_acl system ~handle:jones ~segno:diary
         ~acl:(Acl.of_strings [ ("Jones.Crypto.*", "rw"); ("Mallory.*.*", "r") ]))
  in
  lent_editor_payload ();
  (* Mallory now reads the diary through the widened ACL. *)
  let stolen =
    match System.proc system mallory with
    | None -> None
    | Some p -> (
        match
          Multics_fs.Hierarchy.resolve (System.hierarchy system)
            ~subject:System.initializer_subject ~path:">udd>Crypto>Jones>diary"
        with
        | Error _ -> None
        | Ok uid -> (
            let segno = System.install_known system p ~uid in
            match read_word system ~handle:mallory ~segno ~offset:0 with
            | Ok v -> Some v
            | Error _ -> None))
  in
  {
    category = Borrowed_program;
    scenario_name = "trojan editor, run with full authority";
    undesired = stolen = Some 424242;
    unauthorized = false;
    contained = false;
    note =
      "the trojan used only the borrower's own authority (set_acl on the borrower's branch); \
       the kernel correctly permitted every step — certification of borrowed programs is the \
       only complete protection";
  }

(* 3b. The same editor confined: the borrower runs it in ring 5, where
   the diary's (4,4,4) brackets make it unreachable.  The kernel
   facility for user-constructed protected subsystems is the tool that
   "reduce[s] the potential damage such a borrowed trojan horse can
   do". *)
let scenario_borrowed_confined () =
  let system, jones, _mallory, diary = build () in
  (* A working file the borrower deliberately shares with ring 5. *)
  let workfile =
    expect_env "workfile"
      (User_env.create_segment_at system
         ~brackets:(Multics_machine.Brackets.make ~r1:5 ~r2:5 ~r3:5)
         ~handle:jones ~path:">udd>Crypto>Jones>workfile"
         ~acl:(Acl.of_strings [ ("Jones.Crypto.*", "rw") ])
         ~label:Label.unclassified)
  in
  (* Enter the untrusted-code ring. *)
  (match System.proc system jones with
  | Some p -> p.System.ring <- Multics_machine.Ring.of_int 5
  | None -> invalid_arg "no process");
  let editor_reads_workfile = read_word system ~handle:jones ~segno:workfile ~offset:0 in
  let payload_reads_diary = read_word system ~handle:jones ~segno:diary ~offset:0 in
  let payload_widens_acl =
    set_acl system ~handle:jones ~segno:diary
      ~acl:(Acl.of_strings [ ("*.*.*", "rw") ])
  in
  (match System.proc system jones with
  | Some p -> p.System.ring <- Multics_machine.Ring.user
  | None -> ());
  let contained =
    Result.is_ok editor_reads_workfile
    && Result.is_error payload_reads_diary
    && Result.is_error payload_widens_acl
  in
  {
    category = Borrowed_program;
    scenario_name = "trojan editor, confined to ring 5";
    undesired = not contained;
    unauthorized = false;
    contained;
    note =
      "the editor could edit the shared workfile but its payload could not read the diary \
       (outside the read bracket) nor widen its ACL";
  }

(* 4. A common mechanism by mutual consent: a two-person compiler
   project with a shared installation segment.  One member installs a
   corrupted module; the other's work is damaged.  The kernel permits
   it: the group accepted the common mechanism. *)
let scenario_mutual_consent () =
  let system, jones, mallory, _diary = build () in
  let shared =
    expect_env "shared compiler"
      (User_env.create_segment_at system ~handle:jones ~path:">udd>Crypto>Jones>new_compiler"
         ~acl:(Acl.of_strings [ ("Jones.Crypto.*", "rw"); ("Mallory.Guest.*", "rw") ])
         ~label:Label.unclassified)
  in
  expect_api "good module" (write_word system ~handle:jones ~segno:shared ~offset:0 ~value:7);
  (* Mallory, a consenting team member, installs a corrupted module. *)
  let mallory_segno =
    match System.proc system mallory with
    | None -> invalid_arg "no process"
    | Some p -> (
        match
          Multics_fs.Hierarchy.resolve (System.hierarchy system)
            ~subject:System.initializer_subject ~path:">udd>Crypto>Jones>new_compiler"
        with
        | Ok uid -> System.install_known system p ~uid
        | Error e -> invalid_arg (Multics_fs.Hierarchy.error_to_string e))
  in
  expect_api "corrupt install"
    (write_word system ~handle:mallory ~segno:mallory_segno ~offset:0 ~value:666);
  let jones_sees = expect_api "jones reads" (read_word system ~handle:jones ~segno:shared ~offset:0) in
  {
    category = Mutual_consent;
    scenario_name = "team compiler installation mechanism";
    undesired = jones_sees = 666;
    unauthorized = false;
    contained = false;
    note =
      "a party to a mutually agreed common mechanism damaged the others through it; the \
       kernel cannot and should not prevent what the group authorized";
  }

let run_all () =
  [
    scenario_system_provided ();
    scenario_user_constructed ();
    scenario_borrowed_unconfined ();
    scenario_borrowed_confined ();
    scenario_mutual_consent ();
  ]

(* The headline check for E11/E12 documentation: across every scenario,
   nothing unauthorized happened even where undesired results did. *)
let kernel_held results = List.for_all (fun r -> not r.unauthorized) results
