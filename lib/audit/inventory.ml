(* The supervisor inventory: the certification workload.

   This catalog reconstructs the shape of the early-1970s Multics
   supervisor from the paper's own numbers and the cited theses
   (Janson MAC-TR-132 for the linker, Bratt for reference naming):

   - the baseline supervisor exposes 180 user-available gate entries;
   - the linker accounts for 18 of them — its removal "eliminated 10%
     of the gate entry points into the supervisor";
   - naming accounts for a further 42 — the two removals "together
     reduce the number of user-available supervisor entries by
     approximately one third" (60/180);
   - the protected code managing the address space is 3,500 statements
     before Bratt's split and 350 after — "a reduction by a factor of
     ten in the size of the protected code needed to manage the
     address space".

   Statement counts are PL/I-statement-scale reconstructions, not
   measurements; every experiment reports proportions, which are the
   paper's claims.  A module's [certification_ring] is where its code
   executes — ring-1 modules need a weaker certification (they can
   cause only denial of use, per the partitioning argument). *)

type mechanism_kind = Common | Private_per_process

type module_info = {
  module_name : string;
  subsystem : string;
  statements : int;
  gates : int;  (** user-available entry points *)
  certification_ring : int;
  kind : mechanism_kind;
}

let m ?(ring = 0) ?(kind = Common) ~subsystem ~gates ~statements module_name =
  { module_name; subsystem; statements; gates; certification_ring = ring; kind }

(* --- Fixed residents of every kernel configuration --- *)

let core_modules =
  [
    m ~subsystem:"segment-control" ~gates:12 ~statements:3_400 "segment_control";
    m ~subsystem:"directory-control" ~gates:30 ~statements:5_600 "directory_control";
    m ~subsystem:"ipc" ~gates:6 ~statements:800 "base_ipc";
    m ~subsystem:"traffic-control" ~gates:8 ~statements:1_900 "traffic_controller";
    m ~subsystem:"fault-handling" ~gates:2 ~statements:1_000 "fault_interceptor";
    m ~subsystem:"misc" ~gates:5 ~statements:2_100 "kernel_utilities";
  ]

(* --- Modules whose shape depends on the configuration --- *)

let page_control_modules (config : Multics_kernel.Config.t) =
  let discipline_statements =
    match config.Multics_kernel.Config.page_control with
    | Multics_vm.Page_control.Sequential -> 2_600
    | Multics_vm.Page_control.Parallel_processes ->
        (* Dedicated processes replace the re-entrant in-fault cascade:
           less state saving, no nested-fault handling. *)
        1_700
  in
  match config.Multics_kernel.Config.page_policy with
  | Multics_kernel.Config.Policy_in_ring0 ->
      [ m ~subsystem:"page-control" ~gates:2 ~statements:discipline_statements "page_control" ]
  | Multics_kernel.Config.Policy_in_ring1 ->
      (* The mechanism stays in ring 0; the replacement policy moves to
         ring 1, where only denial of use is at stake. *)
      [
        m ~subsystem:"page-control" ~gates:2
          ~statements:(discipline_statements * 7 / 10)
          "page_mechanism";
        m ~ring:1 ~subsystem:"page-control" ~gates:3
          ~statements:(discipline_statements * 3 / 10)
          "page_policy_ring1";
      ]

let interrupt_modules (config : Multics_kernel.Config.t) =
  match config.Multics_kernel.Config.interrupts with
  | Multics_proc.Interrupt.Inline ->
      [ m ~subsystem:"interrupts" ~gates:0 ~statements:1_200 "interrupt_inline_handlers" ]
  | Multics_proc.Interrupt.Handler_processes ->
      (* The interceptor shrinks to wakeup dispatch; handlers become
         ordinary processes using standard IPC. *)
      [ m ~subsystem:"interrupts" ~gates:0 ~statements:450 "interrupt_interceptor" ]

let linker_modules (config : Multics_kernel.Config.t) =
  match config.Multics_kernel.Config.linker with
  | Multics_link.Linker.In_kernel ->
      [ m ~subsystem:"linker" ~gates:18 ~statements:2_800 "dynamic_linker" ]
  | Multics_link.Linker.In_user_ring -> []

let naming_modules (config : Multics_kernel.Config.t) =
  match config.Multics_kernel.Config.naming with
  | Multics_link.Rnt.In_kernel ->
      (* Pre-removal: pathname resolution, reference names and the
         unified KST — 3,500 protected statements in all. *)
      [
        m ~subsystem:"address-space" ~gates:26 ~statements:2_100 "pathname_resolution";
        m ~subsystem:"address-space" ~gates:16 ~statements:1_050 "reference_name_manager";
        m ~kind:Private_per_process ~subsystem:"address-space" ~gates:0 ~statements:350
          "kst_core";
      ]
  | Multics_link.Rnt.In_user_ring ->
      (* Post-removal: only the minimal KST core remains protected. *)
      [ m ~kind:Private_per_process ~subsystem:"address-space" ~gates:0 ~statements:350 "kst_core" ]

let io_modules (config : Multics_kernel.Config.t) =
  match config.Multics_kernel.Config.io with
  | Multics_kernel.Config.Device_drivers ->
      List.map
        (fun device ->
          m
            ~subsystem:(Printf.sprintf "io-%s" (Multics_io.Device.name device))
            ~gates:9 ~statements:1_700
            (Printf.sprintf "%s_dim" (Multics_io.Device.name device)))
        Multics_io.Device.all_legacy
  | Multics_kernel.Config.Network_only ->
      [ m ~subsystem:"io-network" ~gates:9 ~statements:1_400 "network_dim" ]

let buffer_modules (config : Multics_kernel.Config.t) =
  match config.Multics_kernel.Config.buffer with
  | Multics_kernel.Config.Circular_ring _ ->
      [
        m ~subsystem:"io-buffering" ~gates:0
          ~statements:Multics_io.Circular_buffer.mechanism_statements "circular_buffer";
      ]
  | Multics_kernel.Config.Infinite_vm ->
      [
        m ~subsystem:"io-buffering" ~gates:0
          ~statements:Multics_io.Infinite_buffer.mechanism_statements "infinite_buffer";
      ]

let init_modules (config : Multics_kernel.Config.t) =
  match config.Multics_kernel.Config.init with
  | Multics_kernel.Config.Bootstrap ->
      [ m ~subsystem:"initialization" ~gates:0 ~statements:4_800 "bootstrap_initializer" ]
  | Multics_kernel.Config.Memory_image ->
      [ m ~subsystem:"initialization" ~gates:0 ~statements:390 "image_loader" ]

let login_modules (config : Multics_kernel.Config.t) =
  match config.Multics_kernel.Config.login with
  | Multics_kernel.Config.Privileged_login ->
      [ m ~subsystem:"login" ~gates:10 ~statements:2_400 "answering_service" ]
  | Multics_kernel.Config.Unified_subsystem_entry ->
      (* Authentication becomes non-privileged code entered like any
         protected subsystem; only the entry mechanism stays. *)
      [ m ~subsystem:"login" ~gates:4 ~statements:300 "subsystem_entry" ]

let modules config =
  core_modules @ page_control_modules config @ interrupt_modules config
  @ linker_modules config @ naming_modules config @ io_modules config @ buffer_modules config
  @ init_modules config @ login_modules config

(* ----- Aggregates ----- *)

let total_gates config = List.fold_left (fun acc md -> acc + md.gates) 0 (modules config)

let total_statements config =
  List.fold_left (fun acc md -> acc + md.statements) 0 (modules config)

let ring0_statements config =
  List.fold_left
    (fun acc md -> if md.certification_ring = 0 then acc + md.statements else acc)
    0 (modules config)

let ring1_statements config =
  List.fold_left
    (fun acc md -> if md.certification_ring = 1 then acc + md.statements else acc)
    0 (modules config)

let module_count config = List.length (modules config)

let subsystem_statements config ~subsystem =
  List.fold_left
    (fun acc md -> if md.subsystem = subsystem then acc + md.statements else acc)
    0 (modules config)

let subsystem_gates config ~subsystem =
  List.fold_left
    (fun acc md -> if md.subsystem = subsystem then acc + md.gates else acc)
    0 (modules config)

let address_space_statements config = subsystem_statements config ~subsystem:"address-space"

(* ----- Specialised-surface accounting (E22 through the E12 lens) -----

   A per-workload specialisation strips entries from the functional
   gate catalog (lib/core/gate.ml); this maps the stripped fraction
   back onto the paper-scale inventory so E22 can report the reduced
   attack surface in the same units E12 uses (180 baseline gates).
   Inventory subsystems with no counterpart in the functional catalog
   (traffic control, fault handling, initialization, ...) have no
   user-strippable entries and pass through at full size. *)

type specialised_surface = {
  functional_kept : int;
  functional_full : int;
  paper_kept : int;
  paper_full : int;
  by_subsystem : (string * int * int) list;
      (* functional subsystem, kept, full — catalog units *)
}

let inventory_subsystem_of_functional = function
  | "fs-directory" -> "directory-control"
  | "fs-content" -> "segment-control"
  | "naming" -> "address-space"
  | "page-mechanism" -> "page-control"
  | s -> s (* ipc, linker, login, io-* share names across the views *)

let specialised_surface config ~admitted =
  let catalog = Multics_kernel.Gate.catalog config in
  let functional_subsystems =
    List.sort_uniq String.compare
      (List.map (fun e -> e.Multics_kernel.Gate.subsystem) catalog)
  in
  let by_subsystem =
    List.map
      (fun subsystem ->
        let entries =
          List.filter (fun e -> e.Multics_kernel.Gate.subsystem = subsystem) catalog
        in
        let kept =
          List.length
            (List.filter (fun e -> admitted e.Multics_kernel.Gate.gate_name) entries)
        in
        (subsystem, kept, List.length entries))
      functional_subsystems
  in
  let functional_kept = List.fold_left (fun acc (_, k, _) -> acc + k) 0 by_subsystem in
  let functional_full = List.length catalog in
  (* Scale each inventory subsystem by its functional subsystem's kept
     fraction (rounded); inventory subsystems no functional subsystem
     maps onto keep their full gate count. *)
  let scaled_inventory_gates inv_subsystem full_gates =
    let fractions =
      List.filter_map
        (fun (fn, kept, full) ->
          if inventory_subsystem_of_functional fn = inv_subsystem && full > 0 then
            Some (kept, full)
          else None)
        by_subsystem
    in
    match fractions with
    | [] -> full_gates
    | _ ->
        let kept = List.fold_left (fun acc (k, _) -> acc + k) 0 fractions in
        let full = List.fold_left (fun acc (_, f) -> acc + f) 0 fractions in
        ((full_gates * kept) + (full / 2)) / full
  in
  let inventory_subsystems =
    List.sort_uniq String.compare (List.map (fun md -> md.subsystem) (modules config))
  in
  let paper_kept =
    List.fold_left
      (fun acc inv ->
        acc + scaled_inventory_gates inv (subsystem_gates config ~subsystem:inv))
      0 inventory_subsystems
  in
  {
    functional_kept;
    functional_full;
    paper_kept;
    paper_full = total_gates config;
    by_subsystem;
  }
