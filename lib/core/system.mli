(** The simulated Multics system: hierarchy, linker, accounts,
    processes, I/O buffers and audit trail, shaped by a {!Config.t}. *)

open Multics_access
open Multics_fs
open Multics_link
open Multics_machine

type t

type account = {
  person : string;
  project : string;
  password : string;
  clearance : Label.t;
  home : Uid.t;
}

type proc = {
  handle : int;
  principal : Principal.t;
  clearance : Label.t;
  mutable ring : Ring.t;
  kst : Kst.t;
  rnt : Rnt.t;
  mutable rules : Search_rules.t;
  mutable working_dir : Uid.t;
  login_ring : Ring.t;
  mutable subsystem_stack : (string * Ring.t) list;
  assoc : Hardware.Assoc.t;
      (** the per-process SDW associative memory (the 6180's CAM);
          invalidated through the KST's descriptor-change hook *)
  mutable subject_memo : Policy.subject option;
      (** the current ring's subject record, rebuilt on ring change;
          re-presenting one record keeps its dense-SID memo hot *)
}

val create : Config.t -> t
(** Boot the system: run the configured initialization strategy and
    build the standard skeleton ([>sl1], [>udd], [>pdd]). *)

val config : t -> Config.t
val hierarchy : t -> Hierarchy.t
val store : t -> Object_seg.Store.t
val linker : t -> Linker.t
val audit : t -> Audit_log.t
val init_report : t -> Init.report
val cost : t -> Cost.t
val lib_dir : t -> Uid.t
val udd_dir : t -> Uid.t
val io_buffers : t -> (string, Multics_io.Network.strategy) Hashtbl.t

val clock : t -> Clock.t
(** System-level time: device retry backoffs and crash-journal stamps
    are charged here. *)

(** {1 Fault injection and the crash journal} *)

val set_faults : t -> Multics_fault.Fault.Injector.t option -> unit
(** Install (or clear) the active fault injector.  Fault decisions are
    computed entirely outside the reference monitor: an injected fault
    can add cost or force a refusal/abort, never widen access.  Also
    installs (or clears) the hierarchy's [Cache_flush] storm probe. *)

val flush_assoc_memories : t -> unit
(** Drop every process's SDW associative memory. *)

val invalidate_caches : t -> unit
(** Invalidate every cached access decision: the policy verdict cache
    plus each process's associative memory.  Run by the salvager after
    repairs and by the [cache clear] operator command. *)

val faults : t -> Multics_fault.Fault.Injector.t option

val fault_fires : t -> Multics_fault.Fault.site -> bool
(** Consult the active plan at a site (false when no plan). *)

(** {1 The traffic controller}

    [lib/sched] sits above this library, so the scheduler registers
    itself through a neutral record of closures — the [Sched_status]
    and [Sched_tune] gates reach it without a layering inversion. *)

type scheduler_control = {
  sc_policy : unit -> string;  (** active policy name (["mlf"], ["fifo"], ...) *)
  sc_counters : unit -> (string * int) list;  (** live counters, sorted by name *)
  sc_tune : param:string -> value:int -> (unit, string) result;
      (** adjust a mechanism parameter (["cap"], ["quantum"], ["age_after"]);
          [Error] explains a rejected parameter or value *)
}

val register_scheduler : t -> scheduler_control option -> unit

val scheduler : t -> scheduler_control option

(** {1 The multiprocessor plant}

    With a plant attached, every descriptor mutation (the KST's
    on-change hook) broadcasts a connect so no CPU's associative
    memory can outlive the descriptor it caches, and whole-system
    revocation ({!flush_assoc_memories}, {!invalidate_caches})
    flushes every CPU.  With none attached (the default) all
    coherence hooks are no-ops — the uniprocessor seed behaviour,
    byte for byte. *)

val attach_plant : t -> Multics_smp.Smp.t option -> unit

val plant : t -> Multics_smp.Smp.t option

(** {1 Gate specialisation}

    A per-workload specialisation installs a gate mask: the set of
    gate names the specialised kernel still admits.  The gate check
    consults it after the catalog lookup, so a stripped gate refuses
    with [Gate_absent] before any kernel state is touched — fail
    secure by construction.  Masks are plain strings so they live
    below [lib/spec] (which compiles workload profiles into them),
    the same layering trick as {!scheduler_control}.  With no mask
    installed the catalog alone decides, byte for byte the
    unspecialised behaviour. *)

type gate_mask

val gate_mask_make : name:string -> gates:string list -> gate_mask
(** A mask admitting exactly [gates] (by gate name). *)

val gate_mask_name : gate_mask -> string

val gate_mask_gates : gate_mask -> string list
(** The admitted gate names, sorted. *)

val set_gate_mask : t -> gate_mask option -> unit
(** Install (or clear, with [None]) the active specialisation. *)

val gate_mask : t -> gate_mask option

val gate_admitted : t -> gate:string -> bool
(** [true] when no mask is installed or the mask admits [gate]. *)

type journal_entry = {
  time : int;
  handle : int;
  operation : string;
  dir : Uid.t option;  (** directory holding the partially-made entry *)
  entry_name : string option;
}

val journal_crash :
  t -> handle:int -> operation:string -> ?dir:Uid.t -> ?entry_name:string -> unit -> unit
(** Record what the kernel knew when an injected abort tore down an
    operation mid-flight; consumed by the salvager. *)

val crash_journal : t -> journal_entry list
(** Oldest first. *)

val clear_crash_journal : t -> unit

val initializer_subject : Policy.subject
(** The system administrator/daemon identity, system-high. *)

(** {1 Accounts} *)

val add_account :
  t -> person:string -> project:string -> password:string -> clearance:Label.t -> account
(** Creates [>udd>Project>Person].  Raises [Invalid_argument] on a
    duplicate account. *)

val find_account : t -> person:string -> project:string -> account option

(** {1 Processes} *)

type login_error = Unknown_account | Bad_password | Level_above_clearance

val login_error_to_string : login_error -> string

val login :
  ?level:Label.t ->
  t ->
  person:string ->
  project:string ->
  password:string ->
  (int, login_error) result
(** Authenticate and create a process; returns its handle.  Under
    [Privileged_login] authentication runs in ring 0; under
    [Unified_subsystem_entry] it runs, non-privileged, through the
    ordinary subsystem-entry mechanism in ring 2.

    [level] is the session sensitivity level — it defaults to the full
    account clearance and must be dominated by it (log in low to write
    low). *)

val logout : t -> handle:int -> bool

val proc : t -> int -> proc option

val subject_of : proc -> Policy.subject
(** The subject for the process's current ring. *)

val process_count : t -> int
val handles : t -> int list

val install_known : t -> proc -> uid:Uid.t -> int
(** Make a segment known to the process and install its computed SDW;
    returns the segment number.  Idempotent per uid. *)

val setfaults : t -> uid:Uid.t -> unit
(** Revocation: recompute the descriptor for [uid] in every process
    holding one (the Multics "setfaults" mechanism, run after ACL or
    bracket changes). *)

val new_ipc_channel : t -> int
val ipc_channel : t -> int -> int ref option

val clone_process : t -> handle:int -> int option
(** Create another process for the same account (same principal and
    session level, fresh address space, primed like a login); [None] if
    the handle or its account is gone. *)

val sibling_handles : t -> handle:int -> int list
(** Handles belonging to the same person.project, sorted. *)

val process_dir_name : handle:int -> string
(** The name of the per-process directory under [>pdd]. *)

val pdd_dir : t -> Multics_fs.Uid.t
