(* The kernel's gate-call interface.

   Every supervisor entry point from the {!Gate} catalog is reached
   one way: build a {!Call.request} and hand it to {!Call.dispatch} —
   THE single audited, metered entry point.  (The legacy per-gate
   wrapper functions are gone: a second door, even a thin one, is a
   second place specialisation masks and metering must hold.)

   A call is mediated four times over:

   1. the gate must exist in the running configuration (a removed
      mechanism's gates are simply absent — the caller must use the
      user-ring library instead);
   2. an installed specialisation mask must admit the gate (a
      stripped gate refuses with the same [Gate_absent] before any
      kernel state is touched);
   3. the caller's ring must be within the gate's call bracket;
   4. the operation itself applies the reference monitor (ACL x
      lattice at descriptor construction, SDW checks at reference).

   Because every call funnels through [dispatch]'s [call] wrapper, the
   audit record and the observability counters (per-gate call/refusal
   counts, mediation cycles, audit-trail depth) are written in exactly
   one place.

   Content references ([read_word]/[write_word]) deliberately check
   the SDW installed at initiate time rather than re-deriving policy,
   because that is what the hardware does — and it is why a flawed
   kernel linker that installs a too-permissive descriptor yields a
   real, exploitable unauthorized access (experiment E11). *)

open Multics_access
open Multics_fs
open Multics_link
open Multics_machine
module Obs = Multics_obs.Obs

type error =
  | Fs of Hierarchy.error
  | Kst_error of Kst.error
  | Rnt_error of Rnt.error
  | Gate_absent of string
  | Gate_ring_denied of { gate : string; ring : int }
  | Hardware_denied of Hardware.denial
  | Link_failed of Linker.outcome
  | No_such_process of int
  | No_such_channel of int
  | Device_not_attached of string
  | Not_in_subsystem
  | Not_authorized of string
  | Fault_injected of { site : string; operation : string }
  | Bad_fault_plan of string
  | No_scheduler
  | Bad_tune of string
  | No_smp_plant
  | Site_fenced of { site : int }
  | Site_unreachable of { site : int }

(* ----- Structured error rendering -----

   [pp] is the canonical human rendering ([error_to_string] is just
   [Fmt.str "%a" pp]); [error_to_json] gives refusal causes a
   machine-readable shape: {"kind": ..., plus cause-specific fields}. *)

let pp ppf = function
  | Fs e -> Fmt.pf ppf "fs: %s" (Hierarchy.error_to_string e)
  | Kst_error e -> Fmt.pf ppf "kst: %s" (Kst.error_to_string e)
  | Rnt_error e -> Fmt.pf ppf "rnt: %s" (Rnt.error_to_string e)
  | Gate_absent gate -> Fmt.pf ppf "gate %s is not part of this kernel" gate
  | Gate_ring_denied { gate; ring } ->
      Fmt.pf ppf "gate %s may not be called from ring %d" gate ring
  | Hardware_denied d -> Fmt.pf ppf "hardware: %s" (Hardware.denial_to_string d)
  | Link_failed outcome -> Fmt.pf ppf "link: %s" (Linker.outcome_to_string outcome)
  | No_such_process handle -> Fmt.pf ppf "no process %d" handle
  | No_such_channel id -> Fmt.pf ppf "no event channel %d" id
  | Device_not_attached device -> Fmt.pf ppf "device %s not attached" device
  | Not_in_subsystem -> Fmt.string ppf "not executing in a protected subsystem"
  | Not_authorized what -> Fmt.pf ppf "not authorized: %s" what
  | Fault_injected { site; operation } ->
      Fmt.pf ppf "injected fault at %s aborted %s" site operation
  | Bad_fault_plan detail -> Fmt.pf ppf "bad fault plan: %s" detail
  | No_scheduler -> Fmt.string ppf "no traffic controller is registered"
  | Bad_tune detail -> Fmt.pf ppf "bad scheduler tuning: %s" detail
  | No_smp_plant -> Fmt.string ppf "no multiprocessor plant is attached"
  | Site_fenced { site } ->
      Fmt.pf ppf "site %d is fenced pending salvage-and-resync; refusing rather than risk a stale decision" site
  | Site_unreachable { site } ->
      Fmt.pf ppf "site %d is unreachable (connects unacknowledged past the retry budget)" site

let error_to_string e = Fmt.str "%a" pp e

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_fields fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" k v) fields) ^ "}"

let json_str s = "\"" ^ json_escape s ^ "\""

let error_to_json e =
  let kind k rest = json_fields (("kind", json_str k) :: rest) in
  match e with
  | Fs fs -> kind "fs" [ ("detail", json_str (Hierarchy.error_to_string fs)) ]
  | Kst_error k -> kind "kst" [ ("detail", json_str (Kst.error_to_string k)) ]
  | Rnt_error r -> kind "rnt" [ ("detail", json_str (Rnt.error_to_string r)) ]
  | Gate_absent gate -> kind "gate-absent" [ ("gate", json_str gate) ]
  | Gate_ring_denied { gate; ring } ->
      kind "gate-ring-denied" [ ("gate", json_str gate); ("ring", string_of_int ring) ]
  | Hardware_denied d -> kind "hardware-denied" [ ("detail", json_str (Hardware.denial_to_string d)) ]
  | Link_failed outcome -> kind "link-failed" [ ("detail", json_str (Linker.outcome_to_string outcome)) ]
  | No_such_process handle -> kind "no-such-process" [ ("handle", string_of_int handle) ]
  | No_such_channel id -> kind "no-such-channel" [ ("channel", string_of_int id) ]
  | Device_not_attached device -> kind "device-not-attached" [ ("device", json_str device) ]
  | Not_in_subsystem -> kind "not-in-subsystem" []
  | Not_authorized what -> kind "not-authorized" [ ("detail", json_str what) ]
  | Fault_injected { site; operation } ->
      kind "fault-injected" [ ("site", json_str site); ("operation", json_str operation) ]
  | Bad_fault_plan detail -> kind "bad-fault-plan" [ ("detail", json_str detail) ]
  | No_scheduler -> kind "no-scheduler" []
  | Bad_tune detail -> kind "bad-tune" [ ("detail", json_str detail) ]
  | No_smp_plant -> kind "no-smp-plant" []
  | Site_fenced { site } -> kind "site-fenced" [ ("site", string_of_int site) ]
  | Site_unreachable { site } -> kind "site-unreachable" [ ("site", string_of_int site) ]

let ( let* ) r f = Result.bind r f

let fs_result r = Result.map_error (fun e -> Fs e) r
let kst_result r = Result.map_error (fun e -> Kst_error e) r
let rnt_result r = Result.map_error (fun e -> Rnt_error e) r

(* ----- Reply payload records ----- *)

type entry_status = {
  status_name : string;
  status_kind : Hierarchy.kind;
  status_label : Label.t;
  status_pages : int;
}

type link_status = {
  link_target_seg : string;
  link_target_entry : string;
  link_snapped : bool;
}

type process_info = {
  info_principal : string;
  info_ring : int;
  info_level : Label.t;
  info_known_segments : int;
  info_login_ring : int;
}

(* ----- Observability: the gate-dispatch choke point ----- *)

let obs_gate_calls = Obs.Local.counter "gate.calls"
let obs_gate_refusals = Obs.Local.counter "gate.refusals"
let obs_gate_cycles = Obs.Local.counter "gate.cycles"
let obs_audit_depth = Obs.Local.counter "audit.depth"
let obs_dispatch_span = Obs.Local.span "gate.dispatch"
(* One record per mediated call, written after the audit record so the
   audit-depth gauge includes it.  Mediation cycles are charged at the
   configured processor's cross-ring round-trip price — the same
   accounting {!Session} applies, so snapshot totals and the E13 table
   agree. *)
let meter system ~operation ~refused =
  if Obs.enabled () then begin
    let cycles = Cost.round_trip_call_cost (System.cost system) ~cross_ring:true in
    Obs.Counter.incr (obs_gate_calls ());
    Obs.Counter.incr ~by:cycles (obs_gate_cycles ());
    Obs.Span.record (obs_dispatch_span ()) ~cycles;
    Obs.Counter.incr (Obs.Registry.counter (Obs.Registry.global ()) ("gate." ^ operation ^ ".calls"));
    let config = (System.config system).Config.name in
    Obs.Counter.incr
      (Obs.Registry.counter (Obs.Registry.global ()) ("config." ^ config ^ ".gate.calls"));
    Obs.Counter.incr ~by:cycles
      (Obs.Registry.counter (Obs.Registry.global ()) ("config." ^ config ^ ".gate.cycles"));
    if refused then begin
      Obs.Counter.incr (obs_gate_refusals ());
      Obs.Counter.incr
        (Obs.Registry.counter (Obs.Registry.global ()) ("gate." ^ operation ^ ".refusals"))
    end;
    Obs.Counter.set (obs_audit_depth ()) (Audit_log.length (System.audit system))
  end

(* ----- The gate discipline ----- *)

let gate_check system (p : System.proc) ~gate =
  match Gate.find (System.config system) ~gate_name:gate with
  | None -> Error (Gate_absent gate)
  | Some entry ->
      (* A specialised kernel simply does not have its stripped gates:
         the mask check sits here, before the ring check and before
         any body runs, so a stripped entry refuses exactly like a
         removed mechanism's — [Gate_absent], audited, no kernel
         state touched. *)
      if not (System.gate_admitted system ~gate) then Error (Gate_absent gate)
      else if Ring.to_int p.System.ring <= Ring.to_int entry.Gate.call_top then Ok ()
      else Error (Gate_ring_denied { gate; ring = Ring.to_int p.System.ring })

(* Wrap one gate call: locate the process, enforce the gate
   discipline, run the body, and write the audit and observability
   records.

   Fault injection hooks into this choke point on the refusing side
   only: an injected [Gate_deny] turns the call away before the body
   runs (a clean refusal, audited like any other), and the mutating
   dispatch arms consult [Gate_abort] after their hierarchy update
   (a mid-dispatch crash, leaving partial state for the salvager).
   Neither path can widen what the reference monitor granted. *)
let call system ~handle ~gate ~target body =
  match System.proc system handle with
  | None ->
      meter system ~operation:gate ~refused:true;
      Error (No_such_process handle)
  | Some p -> (
      let subject = System.subject_of p in
      match gate_check system p ~gate with
      | Error e ->
          Audit_log.log (System.audit system) ~subject ~operation:gate ~target
            ~verdict:(Audit_log.Refused (error_to_string e));
          meter system ~operation:gate ~refused:true;
          Error e
      | Ok () ->
          let result =
            if System.fault_fires system Multics_fault.Fault.Gate_deny then
              Error (Fault_injected { site = "gate.deny"; operation = gate })
            else body p subject
          in
          let verdict =
            match result with
            | Ok _ -> Audit_log.Granted
            | Error e -> Audit_log.Refused (error_to_string e)
          in
          Audit_log.log (System.audit system) ~subject ~operation:gate ~target ~verdict;
          meter system ~operation:gate ~refused:(Result.is_error result);
          result)

(* Consulted by the mutating dispatch arms right after their hierarchy
   update succeeded: an injected abort records what the kernel knew in
   the crash journal and fails the call — the caller never learns the
   object exists, and the salvager later rolls the orphan back. *)
let abort_after_mutation system ~handle ~operation ?dir ?entry_name () =
  if System.fault_fires system Multics_fault.Fault.Gate_abort then begin
    System.journal_crash system ~handle ~operation ?dir ?entry_name ();
    Error (Fault_injected { site = "gate.abort"; operation })
  end
  else Ok ()

(* Device transients: each fired fault costs one backoff period on the
   system clock (doubled per retry); three consecutive failures give
   the operation up with a typed refusal. *)
let device_transient_attempts = 3

let device_transient_guard system ~device ~operation =
  match System.faults system with
  | None -> Ok ()
  | Some inj ->
      let site = Multics_fault.Fault.Device_transient in
      let base = Multics_io.Device.service_cycles device in
      let rec attempt i =
        if not (Multics_fault.Fault.Injector.fire inj site) then Ok ()
        else begin
          Clock.advance (System.clock system) (base * (1 lsl (i - 1)));
          if i >= device_transient_attempts then begin
            Multics_fault.Fault.Injector.count_giveup inj site;
            Error (Fault_injected { site = Multics_fault.Fault.site_name site; operation })
          end
          else begin
            Multics_fault.Fault.Injector.count_retry inj site;
            attempt (i + 1)
          end
        end
      in
      attempt 1

let uid_of_segno (p : System.proc) segno = kst_result (Kst.uid_of_segno p.System.kst segno)

(* Hardware gate calls (subsystem entry/exit): not supervisor entries,
   but still audited and metered. *)
let call_hardware system ~handle ~operation ~target body =
  match System.proc system handle with
  | None ->
      meter system ~operation ~refused:true;
      Error (No_such_process handle)
  | Some p ->
      let subject = System.subject_of p in
      let result = body p in
      let verdict =
        match result with
        | Ok _ -> Audit_log.Granted
        | Error e -> Audit_log.Refused (error_to_string e)
      in
      Audit_log.log (System.audit system) ~subject ~operation ~target ~verdict;
      meter system ~operation ~refused:(Result.is_error result);
      result

(* Process-management operations are supervisor gates under the
   privileged-login configuration, ordinary subsystem entries under the
   unified configuration; the facade dispatches on gate presence. *)
let login_gate_or_unified system ~handle ~gate ~target body =
  match Gate.find (System.config system) ~gate_name:gate with
  | Some _ -> call system ~handle ~gate ~target body
  | None ->
      call_hardware system ~handle
        ~operation:("subsystem_entry:" ^ gate)
        ~target
        (fun p -> body p (System.subject_of p))

(* ----- Shared helpers for gate bodies ----- *)

(* Every content reference goes through the process's associative
   memory: a hit reuses the cached SDW, a miss fetches it from the KST
   (the simulated descriptor-segment walk) and installs it.  The KST's
   descriptor-change hook invalidates the entry on setfaults,
   terminate, and salvage, so a revoked descriptor can never be
   re-checked from the CAM.  Under a multiprocessor plant the
   reference runs through the current CPU's own associative memory
   first — kept coherent by the connect protocol, so the routing can
   change which cache answers, never what it answers. *)
let check_sdw system (p : System.proc) ~segno ~operation =
  let fetch () = Kst.sdw_of p.System.kst segno in
  let decision =
    match System.plant system with
    | Some plant ->
        Multics_smp.Smp.check_sdw plant ~handle:p.System.handle ~segno ~assoc:p.System.assoc
          ~fetch ~ring:p.System.ring ~operation
    | None -> Hardware.check_via_assoc p.System.assoc ~segno ~fetch ~ring:p.System.ring ~operation
  in
  match decision with
  | None -> Error (Kst_error (Kst.Unknown_segno segno))
  | Some (Hardware.Granted grant) -> Ok grant
  | Some (Hardware.Denied denial) -> Error (Hardware_denied denial)

let parent_path path =
  match String.rindex_opt path '>' with
  | None | Some 0 -> (">", String.sub path 1 (max 0 (String.length path - 1)))
  | Some i -> (String.sub path 0 i, String.sub path (i + 1) (String.length path - i - 1))

(* The historical escalation: when the flawed ring-0 linker snaps a
   link it found with supervisor authority, it also installs a
   supervisor-grade descriptor for the target — the user ends up with
   read/write access the reference monitor never granted. *)
let install_after_flawed_snap (p : System.proc) ~target =
  let segno, _ = Kst.make_known p.System.kst ~uid:target in
  let sdw = Sdw.make ~mode:Mode.rew ~brackets:Multics_machine.Brackets.user_data () in
  ignore (Kst.set_sdw p.System.kst segno sdw);
  segno

(* Which gate serves a device depends on the configuration: per-device
   drivers each have their own gates; under network-only I/O every
   external device reaches the system through the network attachment. *)
let io_gate_for system device op =
  match (System.config system).Config.io with
  | Config.Device_drivers -> Printf.sprintf "%s_%s" (Multics_io.Device.name device) op
  | Config.Network_only -> "net_" ^ op

let buffer_for_config system () =
  match (System.config system).Config.buffer with
  | Config.Circular_ring capacity ->
      Multics_io.Network.Circular (Multics_io.Circular_buffer.create ~capacity)
  | Config.Infinite_vm -> Multics_io.Network.Infinite (Multics_io.Infinite_buffer.create ())

(* ----- The typed gate-call surface ----- *)

module Call = struct
  type request =
    (* directory control *)
    | Initiate of { dir_segno : int; name : string }
    | Terminate of { segno : int }
    | Create_segment of {
        dir_segno : int;
        name : string;
        acl : Acl.t;
        label : Label.t;
        brackets : Brackets.t option;
      }
    | Create_directory of { dir_segno : int; name : string; acl : Acl.t; label : Label.t }
    | Delete_entry of { dir_segno : int; name : string }
    | Rename_entry of { dir_segno : int; name : string; new_name : string }
    | List_directory of { dir_segno : int }
    | Status_entry of { dir_segno : int; name : string }
    | Set_acl of { segno : int; acl : Acl.t }
    | Set_brackets of { segno : int; brackets : Brackets.t }
    | Set_gate_bound of { segno : int; gate_bound : int }
    | Set_quota of { segno : int; quota : int option }
    (* content references *)
    | Read_word of { segno : int; offset : int }
    | Write_word of { segno : int; offset : int; value : int }
    (* naming (kernel-resident naming only) *)
    | Initiate_by_path of { path : string }
    | Create_segment_by_path of {
        path : string;
        acl : Acl.t;
        label : Label.t;
        brackets : Brackets.t option;
      }
    | Create_directory_by_path of { path : string; acl : Acl.t; label : Label.t }
    | Delete_by_path of { path : string }
    | Set_acl_by_path of { path : string; acl : Acl.t }
    | Set_brackets_by_path of { path : string; brackets : Brackets.t }
    | Resolve_path of { path : string }
    | Terminate_by_path of { path : string }
    | Rnt_bind of { name : string; segno : int }
    | Rnt_lookup of { name : string }
    | Rnt_unbind of { name : string }
    | List_reference_names of { segno : int }
    | Get_working_dir
    | Set_working_dir of { dir_segno : int }
    | Initiate_count
    (* linker (kernel-resident linker only) *)
    | Snap_link of { segno : int; link_index : int }
    | List_links of { segno : int }
    | Set_search_rules of { dir_segnos : int list }
    | Get_search_rules
    (* protected subsystems (hardware gate calls) *)
    | Enter_subsystem of { segno : int; entry_offset : int; name : string }
    | Exit_subsystem
    (* IPC *)
    | Create_channel
    | Send_wakeup of { channel : int }
    | Block of { channel : int }
    (* external I/O *)
    | Attach_device of { device : Multics_io.Device.kind }
    | Detach_device of { device : Multics_io.Device.kind }
    | Device_write of { device : Multics_io.Device.kind; message : int }
    | Device_read of { device : Multics_io.Device.kind }
    (* process management *)
    | Create_process
    | Destroy_process of { target : int }
    | New_proc
    | Proc_info
    | List_processes
    | Operator_message of { message : string }
    (* fault injection and salvage (operator/hardware surface) *)
    | Set_fault_plan of { seed : int; spec : string }
    | Fault_status
    | Clear_faults
    | Salvage
    (* cache inspection and control (operator/hardware surface) *)
    | Probe_access of { segno : int; requested : Mode.t }
    | Cache_status
    | Cache_clear
    (* traffic controller (operator/hardware surface) *)
    | Sched_status
    | Sched_tune of { param : string; value : int }
    (* multiprocessor plant (operator/hardware surface) *)
    | Smp_status

  type reply =
    | Done
    | Segno of int
    | Word of int
    | Message of int option
    | Names of string list
    | Status of entry_status
    | Links of link_status list
    | Snapped of { segno : int; offset : int }
    | Entered of Ring.t
    | Channel of int
    | Consumed of bool
    | Process of int
    | Processes of int list
    | Info of process_info
    | Fault_report of { plan : string; counts : (string * int) list }
    | Salvaged of Salvager.report
    | Probed of Policy.verdict
    | Cache_report of { policy : (string * int) list; assoc : (string * int) list }
    | Sched_report of { policy : string; counters : (string * int) list }
    | Smp_report of {
        ncpus : int;
        plant : (string * int) list;  (** plant-wide readings, sorted *)
        cpus : (int * (string * int) list) list;  (** per-CPU readings *)
      }

  type response = (reply, error) result

  (* The operation name a request is mediated (and metered) under —
     configuration-dependent for device I/O and process management. *)
  let operation_name system = function
    | Initiate _ -> "initiate"
    | Terminate _ -> "terminate"
    | Create_segment _ -> "create_segment"
    | Create_directory _ -> "create_directory"
    | Delete_entry _ -> "delete_entry"
    | Rename_entry _ -> "rename_entry"
    | List_directory _ -> "list_directory"
    | Status_entry _ -> "status_entry"
    | Set_acl _ -> "set_acl"
    | Set_brackets _ -> "set_brackets"
    | Set_gate_bound _ -> "set_gate_bound"
    | Set_quota _ -> "set_quota"
    | Read_word _ -> "read_word"
    | Write_word _ -> "write_word"
    | Initiate_by_path _ -> "initiate_by_path"
    | Create_segment_by_path _ -> "create_segment_by_path"
    | Create_directory_by_path _ -> "create_directory_by_path"
    | Delete_by_path _ -> "delete_by_path"
    | Set_acl_by_path _ -> "set_acl"
    | Set_brackets_by_path _ -> "set_brackets"
    | Resolve_path _ -> "resolve_path"
    | Terminate_by_path _ -> "terminate_by_path"
    | Rnt_bind _ -> "rnt_bind"
    | Rnt_lookup _ -> "rnt_lookup"
    | Rnt_unbind _ -> "rnt_unbind"
    | List_reference_names _ -> "list_reference_names"
    | Get_working_dir -> "get_working_dir"
    | Set_working_dir _ -> "set_working_dir"
    | Initiate_count -> "initiate_count"
    | Snap_link _ -> "snap_link"
    | List_links _ -> "list_links"
    | Set_search_rules _ -> "set_search_rules"
    | Get_search_rules -> "get_search_rules"
    | Enter_subsystem _ -> "subsystem_entry"
    | Exit_subsystem -> "subsystem_exit"
    | Create_channel -> "create_channel"
    | Send_wakeup _ -> "send_wakeup"
    | Block _ -> "block"
    | Attach_device { device } -> io_gate_for system device "attach"
    | Detach_device { device } -> io_gate_for system device "detach"
    | Device_write { device; _ } -> io_gate_for system device "io"
    | Device_read { device } -> io_gate_for system device "io"
    | Create_process -> "create_process"
    | Destroy_process _ -> "destroy_process"
    | New_proc -> "new_proc"
    | Proc_info -> "proc_info"
    | List_processes -> "list_processes"
    | Operator_message _ -> "operator_message"
    | Set_fault_plan _ -> "fault_control"
    | Fault_status -> "fault_status"
    | Clear_faults -> "fault_clear"
    | Salvage -> "salvage"
    | Probe_access _ -> "probe_access"
    | Cache_status -> "cache_status"
    | Cache_clear -> "cache_clear"
    | Sched_status -> "sched_status"
    | Sched_tune _ -> "sched_tune"
    | Smp_status -> "smp_status"

  let dispatch system ~handle (request : request) : response =
    match request with
    (* ----- Directory control ----- *)
    | Initiate { dir_segno; name } ->
        call system ~handle ~gate:"initiate" ~target:name (fun p subject ->
            let* dir = uid_of_segno p dir_segno in
            let* uid =
              fs_result (Hierarchy.lookup (System.hierarchy system) ~subject ~dir ~name)
            in
            Ok (Segno (System.install_known system p ~uid)))
    | Terminate { segno } ->
        call system ~handle ~gate:"terminate" ~target:(string_of_int segno) (fun p _subject ->
            let* () = kst_result (Kst.terminate p.System.kst segno) in
            Ok Done)
    | Create_segment { dir_segno; name; acl; label; brackets } ->
        call system ~handle ~gate:"create_segment" ~target:name (fun p subject ->
            let* dir = uid_of_segno p dir_segno in
            let* uid =
              fs_result
                (Hierarchy.create_segment ?brackets (System.hierarchy system) ~subject ~dir
                   ~name ~acl ~label)
            in
            let* () =
              abort_after_mutation system ~handle ~operation:"create_segment" ~dir
                ~entry_name:name ()
            in
            Ok (Segno (System.install_known system p ~uid)))
    | Create_directory { dir_segno; name; acl; label } ->
        call system ~handle ~gate:"create_directory" ~target:name (fun p subject ->
            let* dir = uid_of_segno p dir_segno in
            let* uid =
              fs_result
                (Hierarchy.create_directory (System.hierarchy system) ~subject ~dir ~name ~acl
                   ~label)
            in
            let* () =
              abort_after_mutation system ~handle ~operation:"create_directory" ~dir
                ~entry_name:name ()
            in
            Ok (Segno (System.install_known system p ~uid)))
    | Delete_entry { dir_segno; name } ->
        call system ~handle ~gate:"delete_entry" ~target:name (fun p subject ->
            let* dir = uid_of_segno p dir_segno in
            let* _uid =
              fs_result (Hierarchy.delete_entry (System.hierarchy system) ~subject ~dir ~name)
            in
            Ok Done)
    | Rename_entry { dir_segno; name; new_name } ->
        call system ~handle ~gate:"rename_entry" ~target:name (fun p subject ->
            let* dir = uid_of_segno p dir_segno in
            let* _uid =
              fs_result
                (Hierarchy.rename_entry (System.hierarchy system) ~subject ~dir ~name ~new_name)
            in
            Ok Done)
    | List_directory { dir_segno } ->
        call system ~handle ~gate:"list_directory" ~target:(string_of_int dir_segno)
          (fun p subject ->
            let* dir = uid_of_segno p dir_segno in
            let* entries =
              fs_result (Hierarchy.list_entries (System.hierarchy system) ~subject ~dir)
            in
            Ok (Names (List.map (fun (name, _uid) -> name) entries)))
    | Status_entry { dir_segno; name } ->
        call system ~handle ~gate:"status_entry" ~target:name (fun p subject ->
            let* dir = uid_of_segno p dir_segno in
            let hierarchy = System.hierarchy system in
            let* uid = fs_result (Hierarchy.lookup hierarchy ~subject ~dir ~name) in
            match (Hierarchy.kind_of hierarchy uid, Hierarchy.label_of hierarchy uid) with
            | Some status_kind, Some status_label ->
                Ok
                  (Status
                     {
                       status_name = name;
                       status_kind;
                       status_label;
                       status_pages =
                         Option.value ~default:0 (Hierarchy.page_count_of hierarchy uid);
                     })
            | _, _ -> Error (Fs (Hierarchy.No_entry name)))
    (* Attribute changes finish with "setfaults": every cached
       descriptor for the object is recomputed, so a revoked grant
       cannot survive in any process's SDW. *)
    | Set_acl { segno; acl } ->
        call system ~handle ~gate:"set_acl" ~target:(string_of_int segno) (fun p subject ->
            let* uid = uid_of_segno p segno in
            let* () = fs_result (Hierarchy.set_acl (System.hierarchy system) ~subject ~uid ~acl) in
            System.setfaults system ~uid;
            Ok Done)
    | Set_brackets { segno; brackets } ->
        call system ~handle ~gate:"set_brackets" ~target:(string_of_int segno) (fun p subject ->
            let* uid = uid_of_segno p segno in
            let* () =
              fs_result (Hierarchy.set_brackets (System.hierarchy system) ~subject ~uid ~brackets)
            in
            System.setfaults system ~uid;
            Ok Done)
    | Set_gate_bound { segno; gate_bound } ->
        call system ~handle ~gate:"set_gate_bound" ~target:(string_of_int segno)
          (fun p subject ->
            let* uid = uid_of_segno p segno in
            let* () =
              fs_result
                (Hierarchy.set_gate_bound (System.hierarchy system) ~subject ~uid ~gate_bound)
            in
            System.setfaults system ~uid;
            Ok Done)
    | Set_quota { segno; quota } ->
        call system ~handle ~gate:"set_quota" ~target:(string_of_int segno) (fun p subject ->
            let* uid = uid_of_segno p segno in
            let* () = fs_result (Hierarchy.set_quota (System.hierarchy system) ~subject ~uid ~quota) in
            Ok Done)
    (* ----- Content references (SDW-checked, as the hardware does) ----- *)
    | Read_word { segno; offset } ->
        call system ~handle ~gate:"read_word"
          ~target:(Printf.sprintf "%d|%d" segno offset)
          (fun p _subject ->
            let* _grant = check_sdw system p ~segno ~operation:Hardware.Read in
            let* uid = uid_of_segno p segno in
            match Hierarchy.raw_read_word (System.hierarchy system) ~uid ~offset with
            | Some value -> Ok (Word value)
            | None -> Error (Fs (Hierarchy.Not_a_segment (string_of_int segno))))
    | Write_word { segno; offset; value } ->
        call system ~handle ~gate:"write_word"
          ~target:(Printf.sprintf "%d|%d" segno offset)
          (fun p _subject ->
            let* _grant = check_sdw system p ~segno ~operation:Hardware.Write in
            let* uid = uid_of_segno p segno in
            (* Segment control charges the quota cell for any growth
               before the page materializes, whichever path the write
               came by. *)
            let* () = fs_result (Hierarchy.charge_growth (System.hierarchy system) ~uid ~offset) in
            if Hierarchy.raw_write_word (System.hierarchy system) ~uid ~offset ~value then Ok Done
            else Error (Fs (Hierarchy.Not_a_segment (string_of_int segno))))
    (* ----- Naming gates (present only while naming is in the kernel) ----- *)
    | Initiate_by_path { path } ->
        call system ~handle ~gate:"initiate_by_path" ~target:path (fun p subject ->
            let* uid = fs_result (Hierarchy.resolve (System.hierarchy system) ~subject ~path) in
            let segno = System.install_known system p ~uid in
            let* () = kst_result (Kst.record_pathname p.System.kst segno path) in
            Ok (Segno segno))
    | Create_segment_by_path { path; acl; label; brackets } ->
        call system ~handle ~gate:"create_segment_by_path" ~target:path (fun p subject ->
            let dir_path, name = parent_path path in
            let hierarchy = System.hierarchy system in
            let* dir = fs_result (Hierarchy.resolve hierarchy ~subject ~path:dir_path) in
            let* uid =
              fs_result (Hierarchy.create_segment ?brackets hierarchy ~subject ~dir ~name ~acl ~label)
            in
            let* () =
              abort_after_mutation system ~handle ~operation:"create_segment_by_path" ~dir
                ~entry_name:name ()
            in
            let segno = System.install_known system p ~uid in
            let* () = kst_result (Kst.record_pathname p.System.kst segno path) in
            Ok (Segno segno))
    | Create_directory_by_path { path; acl; label } ->
        call system ~handle ~gate:"create_directory_by_path" ~target:path (fun p subject ->
            let dir_path, name = parent_path path in
            let hierarchy = System.hierarchy system in
            let* dir = fs_result (Hierarchy.resolve hierarchy ~subject ~path:dir_path) in
            let* uid =
              fs_result (Hierarchy.create_directory hierarchy ~subject ~dir ~name ~acl ~label)
            in
            let* () =
              abort_after_mutation system ~handle ~operation:"create_directory_by_path" ~dir
                ~entry_name:name ()
            in
            Ok (Segno (System.install_known system p ~uid)))
    | Delete_by_path { path } ->
        call system ~handle ~gate:"delete_by_path" ~target:path (fun _p subject ->
            let dir_path, name = parent_path path in
            let hierarchy = System.hierarchy system in
            let* dir = fs_result (Hierarchy.resolve hierarchy ~subject ~path:dir_path) in
            let* _uid = fs_result (Hierarchy.delete_entry hierarchy ~subject ~dir ~name) in
            Ok Done)
    (* Path-addressed attribute edits: the same supervisor entries as
       [Set_acl]/[Set_brackets] (same gates, same audit operation),
       reached by tree name instead of a process-local segment number.
       The kernel resolves the name itself, so — like every other
       by-path entry — these exist only while naming lives in the
       kernel; post-removal callers compose resolution in the user
       ring (User_env, or a distribution layer such as Site) and call
       the segment-number gate.  Both forms finish with the same
       "setfaults" revocation step. *)
    | Set_acl_by_path { path; acl } -> (
        match (System.config system).Config.naming with
        | Multics_link.Rnt.In_user_ring -> Error (Gate_absent "set_acl_by_path")
        | Multics_link.Rnt.In_kernel ->
            call system ~handle ~gate:"set_acl" ~target:path (fun _p subject ->
                let hierarchy = System.hierarchy system in
                let* uid = fs_result (Hierarchy.resolve hierarchy ~subject ~path) in
                let* () = fs_result (Hierarchy.set_acl hierarchy ~subject ~uid ~acl) in
                System.setfaults system ~uid;
                Ok Done))
    | Set_brackets_by_path { path; brackets } -> (
        match (System.config system).Config.naming with
        | Multics_link.Rnt.In_user_ring -> Error (Gate_absent "set_brackets_by_path")
        | Multics_link.Rnt.In_kernel ->
            call system ~handle ~gate:"set_brackets" ~target:path (fun _p subject ->
                let hierarchy = System.hierarchy system in
                let* uid = fs_result (Hierarchy.resolve hierarchy ~subject ~path) in
                let* () = fs_result (Hierarchy.set_brackets hierarchy ~subject ~uid ~brackets) in
                System.setfaults system ~uid;
                Ok Done))
    | Resolve_path { path } ->
        call system ~handle ~gate:"resolve_path" ~target:path (fun p subject ->
            let* uid = fs_result (Hierarchy.resolve (System.hierarchy system) ~subject ~path) in
            Ok (Segno (System.install_known system p ~uid)))
    | Terminate_by_path { path } ->
        call system ~handle ~gate:"terminate_by_path" ~target:path (fun p subject ->
            let* uid = fs_result (Hierarchy.resolve (System.hierarchy system) ~subject ~path) in
            match Kst.segno_of_uid p.System.kst ~uid with
            | Some segno ->
                let* () = kst_result (Kst.terminate p.System.kst segno) in
                Ok Done
            | None -> Error (Kst_error (Kst.Unknown_segno 0)))
    | Rnt_bind { name; segno } ->
        call system ~handle ~gate:"rnt_bind" ~target:name (fun p _subject ->
            let* () = rnt_result (Rnt.bind p.System.rnt ~name ~segno) in
            Ok Done)
    | Rnt_lookup { name } ->
        call system ~handle ~gate:"rnt_lookup" ~target:name (fun p _subject ->
            let* segno = rnt_result (Rnt.lookup p.System.rnt ~name) in
            Ok (Segno segno))
    | Rnt_unbind { name } ->
        call system ~handle ~gate:"rnt_unbind" ~target:name (fun p _subject ->
            let* () = rnt_result (Rnt.unbind p.System.rnt ~name) in
            Ok Done)
    | List_reference_names { segno } ->
        call system ~handle ~gate:"list_reference_names" ~target:(string_of_int segno)
          (fun p _subject -> Ok (Names (Rnt.names_for_segno p.System.rnt ~segno)))
    | Get_working_dir ->
        call system ~handle ~gate:"get_working_dir" ~target:"wd" (fun p _subject ->
            Ok (Segno (System.install_known system p ~uid:p.System.working_dir)))
    | Set_working_dir { dir_segno } ->
        call system ~handle ~gate:"set_working_dir" ~target:(string_of_int dir_segno)
          (fun p _subject ->
            let* uid = uid_of_segno p dir_segno in
            p.System.working_dir <- uid;
            Ok Done)
    | Initiate_count ->
        call system ~handle ~gate:"initiate_count" ~target:"kst" (fun p _subject ->
            Ok (Word (Kst.entry_count p.System.kst)))
    (* ----- Linker gates (present only while the linker is in the kernel) ----- *)
    | Snap_link { segno; link_index } ->
        call system ~handle ~gate:"snap_link"
          ~target:(Printf.sprintf "%d#%d" segno link_index)
          (fun p subject ->
            let* from_uid = uid_of_segno p segno in
            let linker = System.linker system in
            match
              Linker.resolve_link linker ~subject ~rules:p.System.rules ~from_uid ~link_index
            with
            | Linker.Snapped { target; offset; _ } | Linker.Already_snapped { target; offset } ->
                let target_segno =
                  if Linker.has_flaw linker Linker.Supervisor_authority_walk then
                    install_after_flawed_snap p ~target
                  else System.install_known system p ~uid:target
                in
                Ok (Snapped { segno = target_segno; offset })
            | other -> Error (Link_failed other))
    | List_links { segno } ->
        call system ~handle ~gate:"list_links" ~target:(string_of_int segno) (fun p _subject ->
            let* uid = uid_of_segno p segno in
            match Object_seg.Store.get (System.store system) ~uid with
            | None -> Ok (Links [])
            | Some obj ->
                Ok
                  (Links
                     (List.init (Object_seg.link_count obj) (fun i ->
                          match Object_seg.link obj i with
                          | Some l ->
                              {
                                link_target_seg = l.Object_seg.target_seg;
                                link_target_entry = l.Object_seg.target_entry;
                                link_snapped = l.Object_seg.snapped <> None;
                              }
                          | None ->
                              {
                                link_target_seg = "?";
                                link_target_entry = "?";
                                link_snapped = false;
                              }))))
    | Set_search_rules { dir_segnos } ->
        call system ~handle ~gate:"set_search_rules" ~target:"rules" (fun p _subject ->
            let rec collect acc = function
              | [] -> Ok (List.rev acc)
              | segno :: rest ->
                  let* uid = uid_of_segno p segno in
                  collect ((string_of_int segno, uid) :: acc) rest
            in
            let* dirs = collect [] dir_segnos in
            p.System.rules <- Search_rules.of_dirs dirs;
            Ok Done)
    | Get_search_rules ->
        call system ~handle ~gate:"get_search_rules" ~target:"rules" (fun p _subject ->
            Ok (Names (Search_rules.rule_names p.System.rules)))
    (* ----- Protected subsystem entry -----

       On the 6180 entering a protected subsystem is a hardware gate
       call, not a supervisor entry, so it is available in every
       configuration; only its SDW decides whether the crossing is
       legal.  (Under the unified-login configuration the same
       mechanism also performs login.)  The call is still audited. *)
    | Enter_subsystem { segno; entry_offset; name } ->
        call_hardware system ~handle ~operation:"subsystem_entry" ~target:name (fun p ->
            let* grant = check_sdw system p ~segno ~operation:(Hardware.Call entry_offset) in
            match grant with
            | Hardware.Gate_entry target_ring ->
                p.System.subsystem_stack <- (name, p.System.ring) :: p.System.subsystem_stack;
                p.System.ring <- target_ring;
                Ok (Entered target_ring)
            | Hardware.Access_ok ->
                (* Same-ring call: no protection boundary crossed. *)
                Ok (Entered p.System.ring))
    | Exit_subsystem ->
        call_hardware system ~handle ~operation:"subsystem_exit" ~target:"(return)" (fun p ->
            match p.System.subsystem_stack with
            | [] -> Error Not_in_subsystem
            | (_name, restore_ring) :: rest ->
                p.System.subsystem_stack <- rest;
                p.System.ring <- restore_ring;
                Ok (Entered restore_ring))
    (* ----- IPC gates ----- *)
    | Create_channel ->
        call system ~handle ~gate:"create_channel" ~target:"channel" (fun _p _subject ->
            Ok (Channel (System.new_ipc_channel system)))
    | Send_wakeup { channel } ->
        call system ~handle ~gate:"send_wakeup" ~target:(string_of_int channel)
          (fun _p _subject ->
            match System.ipc_channel system channel with
            | None -> Error (No_such_channel channel)
            | Some pending ->
                incr pending;
                Ok Done)
    | Block { channel } ->
        call system ~handle ~gate:"block" ~target:(string_of_int channel) (fun _p _subject ->
            match System.ipc_channel system channel with
            | None -> Error (No_such_channel channel)
            | Some pending ->
                if !pending > 0 then begin
                  decr pending;
                  Ok (Consumed true)
                end
                else Ok (Consumed false))
    (* ----- External I/O gates ----- *)
    | Attach_device { device } ->
        let dev = Multics_io.Device.name device in
        call system ~handle ~gate:(io_gate_for system device "attach") ~target:dev
          (fun _p _subject ->
            let buffers = System.io_buffers system in
            if not (Hashtbl.mem buffers dev) then
              Hashtbl.replace buffers dev (buffer_for_config system ());
            Ok Done)
    | Detach_device { device } ->
        let dev = Multics_io.Device.name device in
        call system ~handle ~gate:(io_gate_for system device "detach") ~target:dev
          (fun _p _subject ->
            if Hashtbl.mem (System.io_buffers system) dev then begin
              Hashtbl.remove (System.io_buffers system) dev;
              Ok Done
            end
            else Error (Device_not_attached dev))
    | Device_write { device; message } ->
        let dev = Multics_io.Device.name device in
        call system ~handle ~gate:(io_gate_for system device "io") ~target:dev
          (fun _p _subject ->
            let* () = device_transient_guard system ~device ~operation:"device_write" in
            match Hashtbl.find_opt (System.io_buffers system) dev with
            | None -> Error (Device_not_attached dev)
            | Some (Multics_io.Network.Circular buffer) ->
                Multics_io.Circular_buffer.write buffer message;
                Ok Done
            | Some (Multics_io.Network.Infinite buffer) ->
                Multics_io.Infinite_buffer.write buffer message;
                Ok Done)
    | Device_read { device } ->
        let dev = Multics_io.Device.name device in
        call system ~handle ~gate:(io_gate_for system device "io") ~target:dev
          (fun _p _subject ->
            let* () = device_transient_guard system ~device ~operation:"device_read" in
            match Hashtbl.find_opt (System.io_buffers system) dev with
            | None -> Error (Device_not_attached dev)
            | Some (Multics_io.Network.Circular buffer) ->
                Ok (Message (Multics_io.Circular_buffer.read buffer))
            | Some (Multics_io.Network.Infinite buffer) ->
                Ok (Message (Multics_io.Infinite_buffer.read buffer)))
    (* ----- Process-management gates ----- *)
    | Create_process ->
        login_gate_or_unified system ~handle ~gate:"create_process" ~target:"child"
          (fun _p _subject ->
            match System.clone_process system ~handle with
            | Some child -> Ok (Process child)
            | None -> Error (No_such_process handle))
    | Destroy_process { target } ->
        login_gate_or_unified system ~handle ~gate:"destroy_process"
          ~target:(string_of_int target) (fun _p _subject ->
            if List.mem target (System.sibling_handles system ~handle) then
              if System.logout system ~handle:target then Ok Done
              else Error (No_such_process target)
            else Error (Not_authorized "destroy_process: not your process"))
    | New_proc ->
        login_gate_or_unified system ~handle ~gate:"new_proc" ~target:"self" (fun _p _subject ->
            match System.clone_process system ~handle with
            | Some fresh ->
                ignore (System.logout system ~handle);
                Ok (Process fresh)
            | None -> Error (No_such_process handle))
    | Proc_info ->
        login_gate_or_unified system ~handle ~gate:"proc_info" ~target:"self" (fun p _subject ->
            Ok
              (Info
                 {
                   info_principal = Principal.to_string p.System.principal;
                   info_ring = Ring.to_int p.System.ring;
                   info_level = p.System.clearance;
                   info_known_segments = Kst.entry_count p.System.kst;
                   info_login_ring = Ring.to_int p.System.login_ring;
                 }))
    | List_processes ->
        login_gate_or_unified system ~handle ~gate:"list_processes" ~target:"siblings"
          (fun _p _subject -> Ok (Processes (System.sibling_handles system ~handle)))
    | Operator_message { message } ->
        login_gate_or_unified system ~handle ~gate:"operator_message" ~target:message
          (fun _p _subject -> Ok Done)
    (* ----- Fault injection and salvage -----

       Operator actions, present in every configuration (like the
       hardware gate calls), still audited and metered.  Installing a
       plan can only make the system slower or more refusing; salvage
       can only remove state or re-derive descriptors — so neither
       needs a supervisor gate of its own to stay fail-secure. *)
    | Set_fault_plan { seed; spec } ->
        call_hardware system ~handle ~operation:"fault_control" ~target:spec (fun _p ->
            match Multics_fault.Fault.Plan.parse ~seed spec with
            | Error detail -> Error (Bad_fault_plan detail)
            | Ok plan ->
                System.set_faults system
                  (if Multics_fault.Fault.Plan.is_empty plan then None
                   else Some (Multics_fault.Fault.Injector.create plan));
                Ok Done)
    | Fault_status ->
        call_hardware system ~handle ~operation:"fault_status" ~target:"faults" (fun _p ->
            match System.faults system with
            | None -> Ok (Fault_report { plan = "none"; counts = [] })
            | Some inj ->
                Ok
                  (Fault_report
                     {
                       plan = Multics_fault.Fault.Plan.to_string (Multics_fault.Fault.Injector.plan inj);
                       counts = Multics_fault.Fault.Injector.counts inj;
                     }))
    | Clear_faults ->
        call_hardware system ~handle ~operation:"fault_clear" ~target:"faults" (fun _p ->
            System.set_faults system None;
            Ok Done)
    | Salvage ->
        call_hardware system ~handle ~operation:"salvage" ~target:"hierarchy" (fun _p ->
            Ok (Salvaged (Salvager.run system)))
    (* ----- Cache inspection and control -----

       Operator surface, like fault control.  Probing runs the cached
       decision path for real (the AVC counters move exactly as a
       reference would move them); clearing every cache is the
       operator's revocation hammer — it can only make the next
       reference slower, never change a verdict. *)
    | Probe_access { segno; requested } ->
        call_hardware system ~handle ~operation:"probe_access"
          ~target:(Printf.sprintf "%d?%s" segno (Mode.to_string requested))
          (fun p ->
            let* uid = uid_of_segno p segno in
            let subject = System.subject_of p in
            match Hierarchy.check_access (System.hierarchy system) ~subject ~uid ~requested with
            | Some verdict -> Ok (Probed verdict)
            | None -> Error (Fs (Hierarchy.No_entry (string_of_int segno))))
    | Cache_status ->
        call_hardware system ~handle ~operation:"cache_status" ~target:"caches" (fun p ->
            Ok
              (Cache_report
                 {
                   policy = Hierarchy.cache_stats (System.hierarchy system);
                   assoc =
                     ("size", Hardware.Assoc.size p.System.assoc)
                     :: Hardware.Assoc.counters p.System.assoc;
                 }))
    | Cache_clear ->
        call_hardware system ~handle ~operation:"cache_clear" ~target:"caches" (fun _p ->
            System.invalidate_caches system;
            Ok Done)
    (* ----- Traffic controller -----

       Operator surface, like fault and cache control.  Tuning moves
       mechanism parameters (quantum, eligibility cap) and can only
       change WHEN work runs, never what it is allowed to touch —
       mediation stays schedule-invariant (experiment E17's oracle). *)
    | Sched_status ->
        call_hardware system ~handle ~operation:"sched_status" ~target:"scheduler" (fun _p ->
            match System.scheduler system with
            | None -> Error No_scheduler
            | Some sc ->
                Ok (Sched_report { policy = sc.System.sc_policy (); counters = sc.System.sc_counters () }))
    | Sched_tune { param; value } ->
        call_hardware system ~handle ~operation:"sched_tune"
          ~target:(Printf.sprintf "%s=%d" param value)
          (fun _p ->
            match System.scheduler system with
            | None -> Error No_scheduler
            | Some sc -> (
                match sc.System.sc_tune ~param ~value with
                | Ok () -> Ok Done
                | Error detail -> Error (Bad_tune detail)))
    (* ----- Multiprocessor plant -----

       Operator surface: CPU count, connect/lock counters, per-CPU
       associative-memory populations.  Pure inspection — it can move
       no descriptor and flush no cache. *)
    | Smp_status ->
        call_hardware system ~handle ~operation:"smp_status" ~target:"plant" (fun _p ->
            match System.plant system with
            | None -> Error No_smp_plant
            | Some plant ->
                let readings, cpus = Multics_smp.Smp.status plant in
                Ok (Smp_report { ncpus = Multics_smp.Smp.ncpus plant; plant = readings; cpus }))
end

