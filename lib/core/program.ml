(* User programs as data.

   The paper's threat model is "a wily user can construct a program";
   this module gives the reproduction that notion concretely: a program
   is a list of steps over named slots, interpreted against the kernel
   API.  Programs are pure values, so the same program can be run
   against different kernel configurations (the integration tests do
   exactly that) or inside the full-system simulation ({!Session}),
   where each step also costs simulated time.

   Slots are the program's registers: segment numbers land in slots
   ([Resolve], [Create_segment], [Snap_link]); word values land in
   slots ([Read_word]); later steps name them. *)

type step =
  | Create_segment of { path : string; acl : Multics_access.Acl.t; label : Multics_access.Label.t; slot : string }
  | Create_directory of { path : string; acl : Multics_access.Acl.t; label : Multics_access.Label.t; slot : string }
  | Resolve of { path : string; slot : string }
  | Delete of { path : string }
  | Write_word of { seg : string; offset : int; value : value }
  | Read_word of { seg : string; offset : int; slot : string }
  | Bind_name of { name : string; seg : string }
  | Lookup_name of { name : string; slot : string }
  | Snap_link of { seg : string; link_index : int; slot : string }
  | Enter_subsystem of { seg : string; entry_offset : int; name : string }
  | Exit_subsystem
  | Set_acl of { seg : string; acl : Multics_access.Acl.t }
  | Compute of int  (** pure computation: simulated cycles *)
  | Assert_slot of { slot : string; expected : int }
  | Repeat of int * step list

and value = Const of int | Slot of string

type t = { program_name : string; steps : step list }

let make ~name steps = { program_name = name; steps }

let name t = t.program_name

(* ----- Interpretation state ----- *)

type outcome = {
  completed : bool;
  failed_step : string option;
  slots : (string * int) list;  (** final slot values, sorted *)
  steps_run : int;
  gate_calls : int;  (** steps that crossed into the kernel *)
}

type env = {
  mutable bindings : (string * int) list;
  mutable count : int;
  mutable gates : int;
  on_compute : int -> unit;  (** hook for the timed interpreter *)
  on_gate : step -> unit;  (** called before each kernel-entering step *)
  on_reference : segno:int -> offset:int -> write:bool -> unit;
      (** called before each content reference (paging hook) *)
}

let describe_step = function
  | Create_segment { path; _ } -> "create_segment " ^ path
  | Create_directory { path; _ } -> "create_directory " ^ path
  | Resolve { path; _ } -> "resolve " ^ path
  | Delete { path } -> "delete " ^ path
  | Write_word { seg; offset; _ } -> Printf.sprintf "write %s[%d]" seg offset
  | Read_word { seg; offset; _ } -> Printf.sprintf "read %s[%d]" seg offset
  | Bind_name { name; _ } -> "bind " ^ name
  | Lookup_name { name; _ } -> "lookup " ^ name
  | Snap_link { seg; link_index; _ } -> Printf.sprintf "snap %s#%d" seg link_index
  | Enter_subsystem { name; _ } -> "enter " ^ name
  | Exit_subsystem -> "exit subsystem"
  | Set_acl { seg; _ } -> "set_acl " ^ seg
  | Compute n -> Printf.sprintf "compute %d" n
  | Assert_slot { slot; expected } -> Printf.sprintf "assert %s = %d" slot expected
  | Repeat (n, _) -> Printf.sprintf "repeat %d" n

exception Step_failed of string

let slot_value env slot =
  match List.assoc_opt slot env.bindings with
  | Some v -> v
  | None -> raise (Step_failed (Printf.sprintf "slot %S is unset" slot))

let set_slot env slot v = env.bindings <- (slot, v) :: List.remove_assoc slot env.bindings

let value_of env = function Const v -> v | Slot s -> slot_value env s

(* Kernel steps go through the typed gate surface; each projection
   names the one reply its dispatch arm can return. *)
let dispatch_exn what system ~handle request project =
  match Api.Call.dispatch system ~handle request with
  | Error e -> raise (Step_failed (Fmt.str "%s: %a" what Api.pp e))
  | Ok reply -> (
      match project reply with
      | Some v -> v
      | None -> invalid_arg ("Program." ^ what ^ ": dispatch returned a mismatched reply"))

let env_exn what = function
  | Ok v -> v
  | Error e -> raise (Step_failed (what ^ ": " ^ User_env.error_to_string e))

(* Execute one step.  The [gate] counter tracks steps that enter the
   kernel (everything except pure computation and assertions). *)
let rec exec_step system ~handle env step =
  env.count <- env.count + 1;
  let is_kernel_step =
    match step with
    | Compute _ | Assert_slot _ | Repeat _ -> false
    | Create_segment _ | Create_directory _ | Resolve _ | Delete _ | Write_word _
    | Read_word _ | Bind_name _ | Lookup_name _ | Snap_link _ | Enter_subsystem _
    | Exit_subsystem | Set_acl _ -> true
  in
  if is_kernel_step then
    (* Fire the hook after the step, whether it succeeded or failed:
       a refused call crossed the gate too.  The timed interpreter
       reads the audit trail there to charge the real number of
       crossings (a user-ring resolve is several initiate calls). *)
    Fun.protect ~finally:(fun () -> env.on_gate step) (fun () -> exec_kernel_step system ~handle env step)
  else exec_plain_step system ~handle env step

and exec_kernel_step system ~handle env step =
  match step with
  | Create_segment { path; acl; label; slot } ->
      env.gates <- env.gates + 1;
      set_slot env slot
        (env_exn "create_segment" (User_env.create_segment_at system ~handle ~path ~acl ~label))
  | Create_directory { path; acl; label; slot } ->
      env.gates <- env.gates + 1;
      set_slot env slot
        (env_exn "create_directory" (User_env.create_directory_at system ~handle ~path ~acl ~label))
  | Resolve { path; slot } ->
      env.gates <- env.gates + 1;
      set_slot env slot (env_exn "resolve" (User_env.resolve_path system ~handle ~path))
  | Delete { path } ->
      env.gates <- env.gates + 1;
      env_exn "delete" (User_env.delete_at system ~handle ~path)
  | Write_word { seg; offset; value } ->
      env.gates <- env.gates + 1;
      let segno = slot_value env seg in
      env.on_reference ~segno ~offset ~write:true;
      dispatch_exn "write_word" system ~handle
        (Api.Call.Write_word { segno; offset; value = value_of env value })
        (function Api.Call.Done -> Some () | _ -> None)
  | Read_word { seg; offset; slot } ->
      env.gates <- env.gates + 1;
      let segno = slot_value env seg in
      env.on_reference ~segno ~offset ~write:false;
      set_slot env slot
        (dispatch_exn "read_word" system ~handle
           (Api.Call.Read_word { segno; offset })
           (function Api.Call.Word value -> Some value | _ -> None))
  | Bind_name { name; seg } ->
      env.gates <- env.gates + 1;
      env_exn "bind_name" (User_env.bind_name system ~handle ~name ~segno:(slot_value env seg))
  | Lookup_name { name; slot } ->
      env.gates <- env.gates + 1;
      set_slot env slot (env_exn "lookup_name" (User_env.lookup_name system ~handle ~name))
  | Snap_link { seg; link_index; slot } ->
      env.gates <- env.gates + 1;
      let target, _offset =
        env_exn "snap_link"
          (User_env.snap_link system ~handle ~segno:(slot_value env seg) ~link_index)
      in
      set_slot env slot target
  | Enter_subsystem { seg; entry_offset; name } ->
      env.gates <- env.gates + 1;
      dispatch_exn "enter_subsystem" system ~handle
        (Api.Call.Enter_subsystem { segno = slot_value env seg; entry_offset; name })
        (function Api.Call.Entered _ -> Some () | _ -> None)
  | Exit_subsystem ->
      env.gates <- env.gates + 1;
      dispatch_exn "exit_subsystem" system ~handle Api.Call.Exit_subsystem
        (function Api.Call.Entered _ -> Some () | _ -> None)
  | Set_acl { seg; acl } ->
      env.gates <- env.gates + 1;
      dispatch_exn "set_acl" system ~handle
        (Api.Call.Set_acl { segno = slot_value env seg; acl })
        (function Api.Call.Done -> Some () | _ -> None)
  | Compute _ | Assert_slot _ | Repeat _ ->
      invalid_arg "Program: plain step reached the kernel interpreter"

and exec_plain_step system ~handle env step =
  match step with
  | Compute n -> env.on_compute n
  | Assert_slot { slot; expected } ->
      let actual = slot_value env slot in
      if actual <> expected then
        raise
          (Step_failed (Printf.sprintf "assertion failed: %s = %d, expected %d" slot actual expected))
  | Repeat (n, body) ->
      for _ = 1 to n do
        List.iter (exec_step system ~handle env) body
      done
  | Create_segment _ | Create_directory _ | Resolve _ | Delete _ | Write_word _ | Read_word _
  | Bind_name _ | Lookup_name _ | Snap_link _ | Enter_subsystem _ | Exit_subsystem
  | Set_acl _ ->
      invalid_arg "Program: kernel step reached the plain interpreter"

(* Run a program to completion (or first failure) against a system.
   The hooks let the timed interpreter ({!Session}) consume simulated
   cycles per computation, gate crossing and memory reference; the
   untimed defaults ignore them. *)
let run ?(on_compute = fun _ -> ()) ?(on_gate = fun _ -> ())
    ?(on_reference = fun ~segno:_ ~offset:_ ~write:_ -> ()) system ~handle t =
  let env = { bindings = []; count = 0; gates = 0; on_compute; on_gate; on_reference } in
  let failed_step =
    try
      List.iter (exec_step system ~handle env) t.steps;
      None
    with Step_failed message -> Some message
  in
  {
    completed = failed_step = None;
    failed_step;
    slots = List.sort (fun (a, _) (b, _) -> String.compare a b) env.bindings;
    steps_run = env.count;
    gate_calls = env.gates;
  }
