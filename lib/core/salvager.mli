(** The salvager: restore hierarchy/KST/descriptor consistency after a
    crash, using the {!System} crash journal as evidence.  Every
    repair removes state or re-derives a descriptor from the
    authoritative access records — a salvage can revoke, never grant. *)

type report = {
  journal_entries : int;  (** crash-journal entries consumed *)
  rolled_back : int;  (** partially-created branches removed *)
  dangling_dropped : int;  (** KST entries for vanished objects *)
  descriptors_repaired : int;  (** installed SDWs that disagreed with policy *)
  quota_ok : bool;  (** hierarchy quota invariant after salvage *)
}

val render : report -> string

val run : System.t -> report
(** Walk the crash journal (rolling back partially-created branches),
    every process's KST (dropping entries for vanished objects), and
    every installed descriptor (recomputing it from ACL x label x
    brackets and repairing disagreements); verify the quota invariant;
    clear the journal; write one audit record and the [salvage.*]
    observability counters. *)
