(* The salvager.

   The paper's certification argument assumes the kernel can be
   restarted into a consistent state after any crash: "the answer is
   provided by the salvager", which walks the storage hierarchy and
   repairs what a crash tore mid-flight.  Here the crash evidence is
   the {!System} crash journal (written when an injected gate abort
   kills an operation after its hierarchy mutation) plus whatever
   inconsistency a randomized fault plan managed to create.

   The salvage pass is fail-secure by construction: every repair
   either removes state (a partially-created branch, a dangling KST
   entry) or re-derives a descriptor from the authoritative ACL x
   label x brackets record — it never invents a grant.  Invariant 2 of
   experiment E15 checks exactly this: after salvage, every surviving
   segment's installed SDW equals the one the reference monitor would
   compute fresh. *)

open Multics_fs
module Obs = Multics_obs.Obs

let obs_runs = Obs.Local.counter "salvage.runs"
let obs_rolled_back = Obs.Local.counter "salvage.rolled_back"
let obs_dangling = Obs.Local.counter "salvage.dangling_dropped"
let obs_repaired = Obs.Local.counter "salvage.descriptors_repaired"
type report = {
  journal_entries : int;  (** crash-journal entries consumed *)
  rolled_back : int;  (** partially-created branches removed *)
  dangling_dropped : int;  (** KST entries for vanished objects *)
  descriptors_repaired : int;  (** installed SDWs that disagreed with policy *)
  quota_ok : bool;  (** hierarchy quota invariant after salvage *)
}

let render r =
  Printf.sprintf
    "salvage: journal=%d rolled_back=%d dangling=%d descriptors_repaired=%d quota=%s"
    r.journal_entries r.rolled_back r.dangling_dropped r.descriptors_repaired
    (if r.quota_ok then "ok" else "VIOLATED")

(* Phase 1: undo partially-created branches recorded in the crash
   journal.  The caller never saw a success, so the entry must not
   survive; deleting the subtree also releases its pages and quota. *)
let roll_back_journal system =
  let hierarchy = System.hierarchy system in
  List.fold_left
    (fun rolled (entry : System.journal_entry) ->
      match (entry.System.dir, entry.System.entry_name) with
      | Some dir, Some name ->
          if Hierarchy.raw_lookup hierarchy ~dir ~name <> None
             && Hierarchy.raw_delete_subtree hierarchy ~dir ~name
          then rolled + 1
          else rolled
      | _, _ -> rolled)
    0 (System.crash_journal system)

(* Phase 2: drop KST entries whose object no longer exists (deleted by
   a rollback, or orphaned by the crash itself).  A dangling segment
   number must not stay addressable. *)
let drop_dangling system =
  let hierarchy = System.hierarchy system in
  let dropped = ref 0 in
  List.iter
    (fun handle ->
      match System.proc system handle with
      | None -> ()
      | Some p ->
          List.iter
            (fun segno ->
              match Kst.uid_of_segno p.System.kst segno with
              | Ok uid when not (Hierarchy.uid_exists hierarchy uid) ->
                  (match Kst.terminate p.System.kst segno with
                  | Ok () -> incr dropped
                  | Error _ -> ())
              | Ok _ | Error _ -> ())
            (Kst.known_segnos p.System.kst))
    (System.handles system);
  !dropped

(* Phase 3: recompute every installed descriptor from the reference
   monitor and repair disagreements.  This is "setfaults" applied
   system-wide — the crash may have interrupted an attribute change
   between the hierarchy update and the descriptor recomputation. *)
let sdw_differs installed fresh =
  (not (Multics_machine.Mode.equal (Multics_machine.Sdw.mode installed) (Multics_machine.Sdw.mode fresh)))
  || (not
        (Multics_machine.Brackets.equal
           (Multics_machine.Sdw.brackets installed)
           (Multics_machine.Sdw.brackets fresh)))
  || Multics_machine.Sdw.gate_bound installed <> Multics_machine.Sdw.gate_bound fresh

let repair_descriptors system =
  let hierarchy = System.hierarchy system in
  let repaired = ref 0 in
  List.iter
    (fun handle ->
      match System.proc system handle with
      | None -> ()
      | Some p ->
          let subject = System.subject_of p in
          List.iter
            (fun segno ->
              match (Kst.sdw_of p.System.kst segno, Kst.uid_of_segno p.System.kst segno) with
              | Some installed, Ok uid -> (
                  match Hierarchy.sdw_for hierarchy ~subject ~uid with
                  | Some fresh ->
                      if sdw_differs installed fresh then begin
                        ignore (Kst.set_sdw p.System.kst segno fresh);
                        incr repaired
                      end
                  | None ->
                      (* The monitor would install nothing: revoke. *)
                      (match Kst.terminate p.System.kst segno with
                      | Ok () -> incr repaired
                      | Error _ -> ()))
              | _, _ -> ())
            (Kst.known_segnos p.System.kst))
    (System.handles system);
  !repaired

let run system =
  let journal_entries = List.length (System.crash_journal system) in
  let rolled_back = roll_back_journal system in
  let dangling_dropped = drop_dangling system in
  let descriptors_repaired = repair_descriptors system in
  (* A repair is a revocation (rolled-back entries vanish, re-derived
     descriptors may carry less access), and revocations must reach
     every cached decision immediately: kill the policy-verdict cache
     and the associative memories wholesale.  Repair paths that went
     through Kst.set_sdw / terminate already invalidated their own
     entries; this closes the book on everything else (e.g. objects
     the rollback deleted behind a cached Permit). *)
  System.invalidate_caches system;
  let quota_ok = Hierarchy.check_quota_invariant (System.hierarchy system) in
  System.clear_crash_journal system;
  let report = { journal_entries; rolled_back; dangling_dropped; descriptors_repaired; quota_ok } in
  Obs.Counter.incr (obs_runs ());
  Obs.Counter.incr ~by:rolled_back (obs_rolled_back ());
  Obs.Counter.incr ~by:dangling_dropped (obs_dangling ());
  Obs.Counter.incr ~by:descriptors_repaired (obs_repaired ());
  Audit_log.log (System.audit system) ~subject:System.initializer_subject ~operation:"salvage"
    ~target:(render report) ~verdict:Audit_log.Granted;
  report
