(* The user-ring environment library.

   Everything the removal projects took out of the supervisor has to
   run somewhere: here.  These functions execute with the process's own
   authority and use only the ordinary kernel gates ([initiate],
   [list_directory], ...), demonstrating the paper's point that tree
   walking, reference-name management and linking need no common
   mechanism.

   Under a pre-removal configuration the same facade simply calls the
   kernel's naming/linker gates, so callers are configuration-blind:
   the difference is *where* the work happens, not what API programs
   see. *)

open Multics_fs
open Multics_link

type error = Api of Api.error | Rnt_user of Rnt.error | Link_user of Linker.outcome

let error_to_string = function
  | Api e -> Api.error_to_string e
  | Rnt_user e -> Rnt.error_to_string e
  | Link_user outcome -> Linker.outcome_to_string outcome

let ( let* ) r f = Result.bind r f

(* Typed-dispatch projections: each kernel call goes through
   [Api.Call.dispatch] (the single audited entry point) and the reply
   is projected back to this facade's return type.  A shape mismatch
   is impossible by construction (each dispatch arm returns its
   request's reply constructor); [invalid_arg] keeps the impossible
   loud. *)

let mismatch what = invalid_arg ("User_env." ^ what ^ ": dispatch returned a mismatched reply")

let done_reply what = function
  | Ok Api.Call.Done -> Ok ()
  | Error e -> Error (Api e)
  | Ok _ -> mismatch what

let segno_reply what = function
  | Ok (Api.Call.Segno segno) -> Ok segno
  | Error e -> Error (Api e)
  | Ok _ -> mismatch what

let naming_in_kernel system =
  match (System.config system).Config.naming with
  | Rnt.In_kernel -> true
  | Rnt.In_user_ring -> false

let linker_in_kernel system =
  match (System.config system).Config.linker with
  | Linker.In_kernel -> true
  | Linker.In_user_ring -> false

(* The root's segment number in this process (primed at login). *)
let root_segno system ~handle =
  match System.proc system handle with
  | None -> Error (Api (Api.No_such_process handle))
  | Some p -> (
      match Kst.segno_of_uid p.System.kst ~uid:Uid.root with
      | Some segno -> Ok segno
      | None -> Error (Api (Api.Kst_error (Kst.Unknown_segno 0))))

(* ----- Tree-name resolution ----- *)

let split_path path =
  if path = ">" then Ok []
  else if String.length path = 0 || path.[0] <> '>' then
    Error (Api (Api.Fs (Hierarchy.Invalid_path path)))
  else Ok (String.split_on_char '>' (String.sub path 1 (String.length path - 1)))

(* Resolve a tree name by walking one [initiate] gate call per
   component — the user-ring replacement for the kernel's resolver.
   Pre-removal configurations delegate to the kernel gate instead. *)
let resolve_path system ~handle ~path =
  if naming_in_kernel system then
    segno_reply "resolve_path"
      (Api.Call.dispatch system ~handle (Api.Call.Resolve_path { path }))
  else begin
    let* components = split_path path in
    let* root = root_segno system ~handle in
    let rec walk dir_segno = function
      | [] -> Ok dir_segno
      | name :: rest ->
          let* segno =
            segno_reply "resolve_path"
              (Api.Call.dispatch system ~handle (Api.Call.Initiate { dir_segno; name }))
          in
          walk segno rest
    in
    walk root components
  end

let parent_path path =
  match String.rindex_opt path '>' with
  | None | Some 0 -> (">", String.sub path 1 (max 0 (String.length path - 1)))
  | Some i -> (String.sub path 0 i, String.sub path (i + 1) (String.length path - i - 1))

let create_segment_at ?brackets system ~handle ~path ~acl ~label =
  if naming_in_kernel system then
    segno_reply "create_segment_at"
      (Api.Call.dispatch system ~handle
         (Api.Call.Create_segment_by_path { path; acl; label; brackets }))
  else begin
    let dir_path, name = parent_path path in
    let* dir_segno = resolve_path system ~handle ~path:dir_path in
    segno_reply "create_segment_at"
      (Api.Call.dispatch system ~handle
         (Api.Call.Create_segment { dir_segno; name; acl; label; brackets }))
  end

let create_directory_at system ~handle ~path ~acl ~label =
  if naming_in_kernel system then
    segno_reply "create_directory_at"
      (Api.Call.dispatch system ~handle (Api.Call.Create_directory_by_path { path; acl; label }))
  else begin
    let dir_path, name = parent_path path in
    let* dir_segno = resolve_path system ~handle ~path:dir_path in
    segno_reply "create_directory_at"
      (Api.Call.dispatch system ~handle (Api.Call.Create_directory { dir_segno; name; acl; label }))
  end

let delete_at system ~handle ~path =
  if naming_in_kernel system then
    done_reply "delete_at" (Api.Call.dispatch system ~handle (Api.Call.Delete_by_path { path }))
  else begin
    let dir_path, name = parent_path path in
    let* dir_segno = resolve_path system ~handle ~path:dir_path in
    done_reply "delete_at"
      (Api.Call.dispatch system ~handle (Api.Call.Delete_entry { dir_segno; name }))
  end

(* ----- Reference names ----- *)

let rnt_user_result r = Result.map_error (fun e -> Rnt_user e) r

let bind_name system ~handle ~name ~segno =
  if naming_in_kernel system then
    done_reply "bind_name" (Api.Call.dispatch system ~handle (Api.Call.Rnt_bind { name; segno }))
  else begin
    match System.proc system handle with
    | None -> Error (Api (Api.No_such_process handle))
    | Some p -> rnt_user_result (Rnt.bind p.System.rnt ~name ~segno)
  end

let lookup_name system ~handle ~name =
  if naming_in_kernel system then
    segno_reply "lookup_name" (Api.Call.dispatch system ~handle (Api.Call.Rnt_lookup { name }))
  else begin
    match System.proc system handle with
    | None -> Error (Api (Api.No_such_process handle))
    | Some p -> rnt_user_result (Rnt.lookup p.System.rnt ~name)
  end

let unbind_name system ~handle ~name =
  if naming_in_kernel system then
    done_reply "unbind_name" (Api.Call.dispatch system ~handle (Api.Call.Rnt_unbind { name }))
  else begin
    match System.proc system handle with
    | None -> Error (Api (Api.No_such_process handle))
    | Some p -> rnt_user_result (Rnt.unbind p.System.rnt ~name)
  end

(* ----- Linking ----- *)

(* Snap a link.  Pre-removal this is the kernel's snap_link gate;
   post-removal the linker runs here, in the faulting ring, with the
   process's own authority (its directory searches are exactly what
   the initiate gate would mediate), and the target is made known
   through the ordinary descriptor-construction path. *)
let snap_link system ~handle ~segno ~link_index =
  if linker_in_kernel system then begin
    match Api.Call.dispatch system ~handle (Api.Call.Snap_link { segno; link_index }) with
    | Ok (Api.Call.Snapped { segno; offset }) -> Ok (segno, offset)
    | Error e -> Error (Api e)
    | Ok _ -> mismatch "snap_link"
  end
  else begin
    match System.proc system handle with
    | None -> Error (Api (Api.No_such_process handle))
    | Some p -> (
        match Kst.uid_of_segno p.System.kst segno with
        | Error e -> Error (Api (Api.Kst_error e))
        | Ok from_uid -> (
            let subject = System.subject_of p in
            match
              Linker.resolve_link (System.linker system) ~subject ~rules:p.System.rules
                ~from_uid ~link_index
            with
            | Linker.Snapped { target; offset; _ } | Linker.Already_snapped { target; offset }
              ->
                let target_segno = System.install_known system p ~uid:target in
                Ok (target_segno, offset)
            | other -> Error (Link_user other)))
  end
