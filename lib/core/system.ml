(* The simulated Multics system: one value holding the hierarchy, the
   linker, the accounts, the process table, the I/O buffers and the
   audit trail, all shaped by a {!Config.t}.

   [create] boots the system (running the configured initialization
   strategy) and builds the standard naming skeleton:

     >sl1    the system library
     >udd    user directories ( >udd>Project>Person homes )
     >pdd    per-process directories (kernel only)

   Process state lives in [proc]: the principal and clearance fixed at
   login, the current ring, the Known Segment Table, the Reference Name
   Table (kernel- or user-ring per the configuration), and the search
   rules. *)

open Multics_access
open Multics_fs
open Multics_link
open Multics_machine

type account = {
  person : string;
  project : string;
  password : string;
  clearance : Label.t;
  home : Uid.t;
}

type proc = {
  handle : int;
  principal : Principal.t;
  clearance : Label.t;
  mutable ring : Ring.t;
  kst : Kst.t;
  rnt : Rnt.t;
  mutable rules : Search_rules.t;
  mutable working_dir : Uid.t;
  login_ring : Ring.t;  (** where the authentication code executed *)
  mutable subsystem_stack : (string * Ring.t) list;
      (** entered protected subsystems: (name, ring to restore) *)
  assoc : Hardware.Assoc.t;
      (** the per-process SDW associative memory; invalidated through
          the KST's descriptor-change hook, so "setfaults" reaches it *)
  mutable subject_memo : Policy.subject option;
      (** the subject record for the CURRENT ring, rebuilt on ring
          change.  Re-presenting one record reference keeps the SID
          memo on it hot: a gate call's subject lookup is two int
          compares, no interning, no allocation *)
}

(* What the kernel managed to note before an injected gate abort: the
   crash journal is deliberately minimal — operation, caller, and
   (when the operation was mutating the hierarchy) where — because a
   real crash preserves no more.  The salvager reconciles it against
   the hierarchy afterwards. *)
type journal_entry = {
  time : int;  (** system clock at the abort *)
  handle : int;
  operation : string;
  dir : Uid.t option;  (** directory holding the partially-made entry *)
  entry_name : string option;
}

(* A specialised gate surface: the set of gate names a specialised
   kernel admits.  Plain strings so the mask can live here, below
   lib/spec (which compiles profiles into masks) — the same layering
   trick as [scheduler_control].  With no mask installed the catalog
   alone decides, byte for byte the unspecialised behaviour. *)
type gate_mask = { mask_name : string; mask_admitted : (string, unit) Hashtbl.t }

let gate_mask_make ~name ~gates =
  let mask_admitted = Hashtbl.create (max 8 (List.length gates)) in
  List.iter (fun g -> Hashtbl.replace mask_admitted g ()) gates;
  { mask_name = name; mask_admitted }

let gate_mask_name m = m.mask_name

let gate_mask_gates m =
  Hashtbl.fold (fun g () acc -> g :: acc) m.mask_admitted [] |> List.sort String.compare

type t = {
  config : Config.t;
  cost : Cost.t;
  hierarchy : Hierarchy.t;
  store : Object_seg.Store.t;
  linker : Linker.t;
  audit : Audit_log.t;
  accounts : (string, account) Hashtbl.t;
  procs : (int, proc) Hashtbl.t;
  mutable next_handle : int;
  init_report : Init.report;
  io_buffers : (string, Multics_io.Network.strategy) Hashtbl.t;
  ipc_channels : (int, int ref) Hashtbl.t;  (** channel id -> pending wakeups *)
  mutable next_channel : int;
  mutable lib_dir : Uid.t;
  mutable udd_dir : Uid.t;
  mutable pdd_dir : Uid.t;
  clock : Clock.t;  (** system-level time: device retries, journal stamps *)
  mutable faults : Multics_fault.Fault.Injector.t option;
  mutable crash_journal : journal_entry list;  (** reversed *)
  mutable scheduler : scheduler_control option;
  mutable plant : Multics_smp.Smp.t option;
      (** the multiprocessor plant, when attached: every descriptor
          mutation then broadcasts connects so no CPU's associative
          memory can outlive the descriptor it caches *)
  mutable gate_mask : gate_mask option;
      (** the installed specialisation, if any; consulted by the gate
          check so a stripped gate refuses before any kernel state is
          touched *)
}

(* The traffic controller registers itself through a neutral record of
   closures — lib/sched sits above this library, so the Sched_status /
   Sched_tune gates reach it without a layering inversion (the same
   trick Sim uses for dispatch). *)
and scheduler_control = {
  sc_policy : unit -> string;
  sc_counters : unit -> (string * int) list;
  sc_tune : param:string -> value:int -> (unit, string) result;
}

let initializer_principal = Principal.system_daemon

(* The Initializer runs system-high so it can administer homes at any
   clearance in use.  Compartments are open-ended; administrative
   hierarchies here use the standard two. *)
let initializer_clearance = Label.system_high [ "crypto"; "nato" ]

let initializer_subject =
  Policy.subject ~trusted:true ~principal:initializer_principal
    ~clearance:initializer_clearance ~ring:Ring.kernel ()

let config t = t.config
let hierarchy t = t.hierarchy
let store t = t.store
let linker t = t.linker
let audit t = t.audit
let init_report t = t.init_report
let cost t = t.cost
let lib_dir t = t.lib_dir
let udd_dir t = t.udd_dir
let pdd_dir t = t.pdd_dir
let io_buffers t = t.io_buffers
let clock t = t.clock

(* ----- Fault injection and the crash journal ----- *)

let set_faults t faults =
  t.faults <- faults;
  (* The Cache_flush site storms the access-decision cache: the probe
     is consulted on every cached lookup and, when it fires, the cache
     is flushed first.  Installed here so a plan set through the fault
     gates reaches the hierarchy without the fs layer depending on the
     fault library. *)
  Hierarchy.set_cache_probe t.hierarchy
    (Option.map
       (fun inj () -> Multics_fault.Fault.Injector.fire inj Multics_fault.Fault.Cache_flush)
       faults)

let faults t = t.faults

let register_scheduler t control = t.scheduler <- control

let scheduler t = t.scheduler

(* The plant attaches after boot (the workload driver or the shell
   decides the CPU count); with none attached every coherence hook is
   a no-op and the system behaves byte-for-byte as the uniprocessor
   seed. *)
let attach_plant t plant = t.plant <- plant

let plant t = t.plant

(* ----- Gate specialisation ----- *)

let set_gate_mask t mask = t.gate_mask <- mask

let gate_mask t = t.gate_mask

let gate_admitted t ~gate =
  match t.gate_mask with None -> true | Some m -> Hashtbl.mem m.mask_admitted gate

let fault_fires t site =
  match t.faults with
  | None -> false
  | Some inj -> Multics_fault.Fault.Injector.fire inj site

let journal_crash t ~handle ~operation ?dir ?entry_name () =
  t.crash_journal <-
    { time = Clock.now t.clock; handle; operation; dir; entry_name } :: t.crash_journal

let crash_journal t = List.rev t.crash_journal

let clear_crash_journal t = t.crash_journal <- []

let fail_boot what = function
  | Ok v -> v
  | Error e -> invalid_arg (Printf.sprintf "System.create: %s: %s" what (Hierarchy.error_to_string e))

let create config =
  let hierarchy = Hierarchy.create () in
  let store = Object_seg.Store.create () in
  let linker =
    Linker.create ~flaws:config.Config.linker_flaws ~placement:config.Config.linker ~store
      ~hierarchy ()
  in
  let init_report = Init.run config in
  let t =
    {
      config;
      cost = Config.cost config;
      hierarchy;
      store;
      linker;
      audit = Audit_log.create ();
      accounts = Hashtbl.create 16;
      procs = Hashtbl.create 16;
      next_handle = 1;
      init_report;
      io_buffers = Hashtbl.create 8;
      ipc_channels = Hashtbl.create 8;
      next_channel = 1;
      lib_dir = Uid.root;
      udd_dir = Uid.root;
      pdd_dir = Uid.root;
      clock = Clock.create ();
      faults = None;
      crash_journal = [];
      scheduler = None;
      plant = None;
      gate_mask = None;
    }
  in
  let sys_acl = Acl.of_strings [ ("Initializer.*.*", "rew"); ("*.*.*", "r") ] in
  let mkdir ~dir ~name ~acl =
    fail_boot name
      (Hierarchy.create_directory hierarchy ~subject:initializer_subject ~dir ~name ~acl
         ~label:Label.unclassified)
  in
  t.lib_dir <- mkdir ~dir:Uid.root ~name:"sl1" ~acl:sys_acl;
  t.udd_dir <- mkdir ~dir:Uid.root ~name:"udd" ~acl:sys_acl;
  t.pdd_dir <- mkdir ~dir:Uid.root ~name:"pdd" ~acl:(Acl.of_strings [ ("Initializer.*.*", "rew") ]);
  t

(* ----- Accounts ----- *)

let account_key ~person ~project = person ^ "." ^ project

let add_account t ~person ~project ~password ~clearance =
  let key = account_key ~person ~project in
  if Hashtbl.mem t.accounts key then invalid_arg ("System.add_account: duplicate " ^ key);
  let project_dir =
    match
      Hierarchy.lookup t.hierarchy ~subject:initializer_subject ~dir:t.udd_dir ~name:project
    with
    | Ok uid -> uid
    | Error _ ->
        fail_boot project
          (Hierarchy.create_directory t.hierarchy ~subject:initializer_subject ~dir:t.udd_dir
             ~name:project
             ~acl:(Acl.of_strings [ ("Initializer.*.*", "rew"); ("*.*.*", "r") ])
             ~label:Label.unclassified)
  in
  let owner_pattern = Printf.sprintf "%s.%s.*" person project in
  let project_pattern = Printf.sprintf "*.%s.*" project in
  (* Owner controls the home; project-mates may status it (the usual
     Multics project default); everyone else gets the No_entry lie. *)
  let home =
    fail_boot person
      (Hierarchy.create_directory t.hierarchy ~subject:initializer_subject ~dir:project_dir
         ~name:person
         ~acl:
           (Acl.of_strings
              [ (owner_pattern, "rew"); (project_pattern, "r"); ("Initializer.*.*", "rew") ])
         ~label:Label.unclassified)
  in
  let account = { person; project; password; clearance; home } in
  Hashtbl.replace t.accounts key account;
  account

let find_account t ~person ~project = Hashtbl.find_opt t.accounts (account_key ~person ~project)

(* ----- Processes ----- *)

type login_error = Unknown_account | Bad_password | Level_above_clearance

let login_error_to_string = function
  | Unknown_account -> "unknown account"
  | Bad_password -> "incorrect password"
  | Level_above_clearance -> "requested session level exceeds the account clearance"

let proc t handle = Hashtbl.find_opt t.procs handle

(* The process's subject, memoized per ring: principal and clearance
   are fixed at login, so only a ring crossing (gate call, subsystem
   entry/exit) invalidates the record.  Returning the same record
   reference is what makes the dense-SID memo on it effective. *)
let subject_of (p : proc) =
  match p.subject_memo with
  | Some s when Ring.equal s.Policy.ring p.ring -> s
  | Some _ | None ->
      let s = Policy.subject ~principal:p.principal ~clearance:p.clearance ~ring:p.ring () in
      p.subject_memo <- Some s;
      s

let process_dir_name ~handle = Printf.sprintf "p%03d" handle

(* Build a fresh process for an account at a session level.  Shared by
   login and by the create_process / new_proc gates. *)
let make_process t ~(account : account) ~session_level ~login_ring =
  let handle = t.next_handle in
  t.next_handle <- handle + 1;
  let kst_variant =
    match t.config.Config.naming with
    | Rnt.In_kernel -> Kst.Unified
    | Rnt.In_user_ring -> Kst.Split
  in
  let kst = Kst.create ~variant:kst_variant () in
  let assoc = Hardware.Assoc.create () in
  (* Wire "setfaults" through to the associative memory: the KST's
     set_sdw/terminate are the only descriptor mutation points, so a
     recomputed or dropped descriptor clears its cached copy in the
     same step.  Under a multiprocessor plant the same hook broadcasts
     a connect, so every other CPU's associative memory drops its copy
     before the mutating call returns. *)
  Kst.set_on_sdw_change kst (fun segno ->
      Hardware.Assoc.invalidate assoc ~segno;
      match t.plant with
      | Some plant -> Multics_smp.Smp.connect_invalidate plant ~handle ~segno
      | None -> ());
  let p =
    {
      handle;
      principal = Principal.interactive ~person:account.person ~project:account.project;
      clearance = session_level;
      ring = Ring.user;
      kst;
      rnt = Rnt.create ~placement:t.config.Config.naming;
      rules = Search_rules.of_dirs [ ("home", account.home); ("system_library", t.lib_dir) ];
      working_dir = account.home;
      login_ring;
      subsystem_stack = [];
      assoc;
      subject_memo = None;
    }
  in
  Hashtbl.replace t.procs handle p;
  (* Every process gets a per-process directory under >pdd, owned by
     its principal, cleaned up at logout. *)
  let pdd_name = process_dir_name ~handle in
  (match
     Hierarchy.create_directory t.hierarchy ~subject:initializer_subject ~dir:t.pdd_dir
       ~name:pdd_name
       ~acl:
         (Acl.of_strings
            [
              (Printf.sprintf "%s.%s.*" account.person account.project, "rew");
              ("Initializer.*.*", "rew");
            ])
       ~label:Label.unclassified
   with
  | Ok _ -> ()
  | Error _ -> ());
  handle

(* Authenticate and create a process.  Under [Privileged_login] the
   authentication code is part of the privileged kernel (it "executes"
   in ring 0); under [Unified_subsystem_entry] the same mechanism that
   enters any protected subsystem runs it, non-privileged, in ring 2.

   [level] is the session's sensitivity level; it defaults to the
   account's full clearance and may be any label the clearance
   dominates (logging in low to write low objects). *)
let login ?level t ~person ~project ~password =
  let login_ring =
    match t.config.Config.login with
    | Config.Privileged_login -> Ring.kernel
    | Config.Unified_subsystem_entry -> Ring.of_int 2
  in
  let principal = Principal.interactive ~person ~project in
  let attempt_subject =
    Policy.subject ~principal ~clearance:Label.unclassified ~ring:Ring.outermost ()
  in
  match find_account t ~person ~project with
  | None ->
      Audit_log.log t.audit ~subject:attempt_subject ~operation:"login" ~target:person
        ~verdict:(Audit_log.Refused "unknown account");
      Error Unknown_account
  | Some account ->
      if not (String.equal account.password password) then begin
        Audit_log.log t.audit ~subject:attempt_subject ~operation:"login" ~target:person
          ~verdict:(Audit_log.Refused "bad password");
        Error Bad_password
      end
      else begin
        let session_level = Option.value level ~default:account.clearance in
        if not (Label.dominates account.clearance session_level) then begin
          Audit_log.log t.audit ~subject:attempt_subject ~operation:"login" ~target:person
            ~verdict:(Audit_log.Refused "session level above clearance");
          Error Level_above_clearance
        end
        else begin
          let handle = make_process t ~account ~session_level ~login_ring in
          (match proc t handle with
          | Some p ->
              Audit_log.log t.audit ~subject:(subject_of p) ~operation:"login"
                ~target:(Principal.to_string principal) ~verdict:Audit_log.Granted
          | None -> ());
          Ok handle
        end
      end

let logout t ~handle =
  match proc t handle with
  | None -> false
  | Some p ->
      Audit_log.log t.audit ~subject:(subject_of p) ~operation:"logout"
        ~target:(Principal.to_string p.principal) ~verdict:Audit_log.Granted;
      (* Destroy the per-process directory and everything in it. *)
      ignore
        (Hierarchy.raw_delete_subtree t.hierarchy ~dir:t.pdd_dir
           ~name:(process_dir_name ~handle));
      Hashtbl.remove t.procs handle;
      true

let process_count t = Hashtbl.length t.procs

let handles t = Hashtbl.fold (fun h _ acc -> h :: acc) t.procs [] |> List.sort Int.compare

(* Make a segment known to a process and install its descriptor.  The
   SDW is computed ONCE here, from ACL x label x brackets — this is the
   descriptor-construction point the reference monitor lives at; every
   later reference is checked against the installed SDW, as the
   hardware does. *)
let install_known t (p : proc) ~uid =
  let segno, _already = Kst.make_known p.kst ~uid in
  (match Hierarchy.sdw_for t.hierarchy ~subject:(subject_of p) ~uid with
  | Some sdw -> ignore (Kst.set_sdw p.kst segno sdw)
  | None -> ());
  segno

(* [login] primes every new process with the root, its home and the
   system library already known, so it can name starting points. *)
let login ?level t ~person ~project ~password =
  match login ?level t ~person ~project ~password with
  | Error _ as e -> e
  | Ok handle ->
      (match (proc t handle, find_account t ~person ~project) with
      | Some p, Some account ->
          ignore (install_known t p ~uid:Uid.root);
          ignore (install_known t p ~uid:account.home);
          ignore (install_known t p ~uid:t.lib_dir);
          (match
             Hierarchy.raw_lookup t.hierarchy ~dir:t.pdd_dir ~name:(process_dir_name ~handle)
           with
          | Some uid -> ignore (install_known t p ~uid)
          | None -> ())
      | _, _ -> ());
      Ok handle

(* Create another process for the same account (the create_process and
   new_proc gates): same principal, same session level, a fresh address
   space, primed like a login. *)
let clone_process t ~handle =
  match proc t handle with
  | None -> None
  | Some p -> (
      let person = Principal.person p.principal in
      let project = Principal.project p.principal in
      match find_account t ~person ~project with
      | None -> None
      | Some account ->
          let child =
            make_process t ~account ~session_level:p.clearance ~login_ring:p.login_ring
          in
          (match proc t child with
          | Some cp ->
              ignore (install_known t cp ~uid:Uid.root);
              ignore (install_known t cp ~uid:account.home);
              ignore (install_known t cp ~uid:t.lib_dir);
              (match
                 Hierarchy.raw_lookup t.hierarchy ~dir:t.pdd_dir
                   ~name:(process_dir_name ~handle:child)
               with
              | Some uid -> ignore (install_known t cp ~uid)
              | None -> ())
          | None -> ());
          Some child)

(* Handles belonging to the same principal (person.project). *)
let sibling_handles t ~handle =
  match proc t handle with
  | None -> []
  | Some p ->
      Hashtbl.fold
        (fun h (q : proc) acc ->
          if
            Principal.person q.principal = Principal.person p.principal
            && Principal.project q.principal = Principal.project p.principal
          then h :: acc
          else acc)
        t.procs []
      |> List.sort Int.compare

(* Revocation ("setfaults"): after an attribute of [uid] changes (ACL,
   brackets, gate bound), every process holding a descriptor for it
   gets that descriptor recomputed.  Without this, a revoked grant
   would survive in cached SDWs — the classic revocation hole of
   descriptor-based systems, which Multics closed exactly this way. *)
let setfaults t ~uid =
  Hashtbl.iter
    (fun _handle (p : proc) ->
      match Kst.segno_of_uid p.kst ~uid with
      | None -> ()
      | Some segno -> (
          match Hierarchy.sdw_for t.hierarchy ~subject:(subject_of p) ~uid with
          | Some sdw -> ignore (Kst.set_sdw p.kst segno sdw)
          | None -> ()))
    t.procs

(* Drop every process's SDW associative memory outright.  The KST hook
   already invalidates entry-by-entry on descriptor changes; this is
   the big hammer for whole-system events (salvage, cache clear). *)
let flush_assoc_memories t =
  Hashtbl.iter (fun _ (p : proc) -> Hardware.Assoc.flush p.assoc) t.procs;
  match t.plant with Some plant -> Multics_smp.Smp.connect_flush_all plant | None -> ()

(* Invalidate every cached access decision in the system: the policy
   verdict cache and each process's associative memory.  The salvager
   runs this after repairs — a repair is a revocation, and revocations
   must reach caches immediately. *)
let invalidate_caches t =
  Hierarchy.invalidate_cached_verdicts t.hierarchy;
  flush_assoc_memories t

(* IPC channels (functional model: counted wakeups only). *)
let new_ipc_channel t =
  let id = t.next_channel in
  t.next_channel <- id + 1;
  Hashtbl.replace t.ipc_channels id (ref 0);
  id

let ipc_channel t id = Hashtbl.find_opt t.ipc_channels id
