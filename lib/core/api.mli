(** The kernel's gate-call interface.  Calls are refused when the gate
    is absent from the running configuration, when an installed
    specialisation mask has stripped it, when the caller's ring is
    outside the gate's call bracket, or when the reference monitor
    refuses the operation; every call is audited.

    There is exactly one entry point: build a {!Call.request} and hand
    it to {!Call.dispatch}.  (The legacy per-gate wrapper functions —
    one OCaml function per supervisor entry, each privately rebuilding
    the audit/metering prologue — have completed their deprecation
    window and are gone: a second door is a second place the
    specialisation mask and the metering would have to hold.)  New
    supervisor entries are added as [Call.request] constructors. *)

open Multics_access
open Multics_fs
open Multics_link
open Multics_machine

type error =
  | Fs of Hierarchy.error
  | Kst_error of Kst.error
  | Rnt_error of Rnt.error
  | Gate_absent of string
  | Gate_ring_denied of { gate : string; ring : int }
  | Hardware_denied of Hardware.denial
  | Link_failed of Linker.outcome
  | No_such_process of int
  | No_such_channel of int
  | Device_not_attached of string
  | Not_in_subsystem
  | Not_authorized of string
  | Fault_injected of { site : string; operation : string }
      (** an injected fault denied, aborted, or gave up on the call —
          always a refusal, never a grant *)
  | Bad_fault_plan of string
  | No_scheduler  (** no traffic controller registered with the system *)
  | Bad_tune of string  (** the scheduler rejected a tuning parameter or value *)
  | No_smp_plant  (** no multiprocessor plant attached to the system *)
  | Site_fenced of { site : int }
      (** the caller's home site is fenced pending salvage-and-resync;
          a fenced site refuses rather than risk serving a decision it
          could not prove fresh *)
  | Site_unreachable of { site : int }
      (** cross-site connects to this site went unacknowledged past
          the retry budget *)

val error_to_string : error -> string

val pp : Format.formatter -> error -> unit
(** Canonical human rendering; [error_to_string] is [Fmt.str "%a" pp]. *)

val error_to_json : error -> string
(** Machine-readable refusal cause: an object with a ["kind"]
    discriminator plus cause-specific fields. *)

(** {1 Reply payload records} *)

type entry_status = {
  status_name : string;
  status_kind : Hierarchy.kind;
  status_label : Label.t;
  status_pages : int;
}

type link_status = {
  link_target_seg : string;
  link_target_entry : string;
  link_snapped : bool;
}

type process_info = {
  info_principal : string;
  info_ring : int;
  info_level : Multics_access.Label.t;
  info_known_segments : int;
  info_login_ring : int;
}

(** {1 The typed gate-call surface}

    One request constructor per supervisor entry point; {!Call.dispatch}
    is THE single audited, metered entry point. *)

module Call : sig
  type request =
    | Initiate of { dir_segno : int; name : string }
    | Terminate of { segno : int }
    | Create_segment of {
        dir_segno : int;
        name : string;
        acl : Acl.t;
        label : Label.t;
        brackets : Brackets.t option;
      }
    | Create_directory of { dir_segno : int; name : string; acl : Acl.t; label : Label.t }
    | Delete_entry of { dir_segno : int; name : string }
    | Rename_entry of { dir_segno : int; name : string; new_name : string }
    | List_directory of { dir_segno : int }
    | Status_entry of { dir_segno : int; name : string }
    | Set_acl of { segno : int; acl : Acl.t }
    | Set_brackets of { segno : int; brackets : Brackets.t }
    | Set_gate_bound of { segno : int; gate_bound : int }
    | Set_quota of { segno : int; quota : int option }
    | Read_word of { segno : int; offset : int }
    | Write_word of { segno : int; offset : int; value : int }
    | Initiate_by_path of { path : string }
    | Create_segment_by_path of {
        path : string;
        acl : Acl.t;
        label : Label.t;
        brackets : Brackets.t option;
      }
    | Create_directory_by_path of { path : string; acl : Acl.t; label : Label.t }
    | Delete_by_path of { path : string }
    | Set_acl_by_path of { path : string; acl : Acl.t }
        (** the [set_acl] supervisor entry addressed by tree name — the
            calling sequence replicated mutations replay on remote
            sites (same gate, same audit operation, same setfaults) *)
    | Set_brackets_by_path of { path : string; brackets : Brackets.t }
    | Resolve_path of { path : string }
    | Terminate_by_path of { path : string }
    | Rnt_bind of { name : string; segno : int }
    | Rnt_lookup of { name : string }
    | Rnt_unbind of { name : string }
    | List_reference_names of { segno : int }
    | Get_working_dir
    | Set_working_dir of { dir_segno : int }
    | Initiate_count
    | Snap_link of { segno : int; link_index : int }
    | List_links of { segno : int }
    | Set_search_rules of { dir_segnos : int list }
    | Get_search_rules
    | Enter_subsystem of { segno : int; entry_offset : int; name : string }
    | Exit_subsystem
    | Create_channel
    | Send_wakeup of { channel : int }
    | Block of { channel : int }
    | Attach_device of { device : Multics_io.Device.kind }
    | Detach_device of { device : Multics_io.Device.kind }
    | Device_write of { device : Multics_io.Device.kind; message : int }
    | Device_read of { device : Multics_io.Device.kind }
    | Create_process
    | Destroy_process of { target : int }
    | New_proc
    | Proc_info
    | List_processes
    | Operator_message of { message : string }
    | Set_fault_plan of { seed : int; spec : string }
    | Fault_status
    | Clear_faults
    | Salvage
    | Probe_access of { segno : int; requested : Mode.t }
    | Cache_status
    | Cache_clear
    | Sched_status
    | Sched_tune of { param : string; value : int }
    | Smp_status

  type reply =
    | Done
    | Segno of int
    | Word of int
    | Message of int option
    | Names of string list
    | Status of entry_status
    | Links of link_status list
    | Snapped of { segno : int; offset : int }
    | Entered of Ring.t
    | Channel of int
    | Consumed of bool
    | Process of int
    | Processes of int list
    | Info of process_info
    | Fault_report of { plan : string; counts : (string * int) list }
    | Salvaged of Salvager.report
    | Probed of Policy.verdict
    | Cache_report of { policy : (string * int) list; assoc : (string * int) list }
    | Sched_report of { policy : string; counters : (string * int) list }
    | Smp_report of {
        ncpus : int;
        plant : (string * int) list;  (** plant-wide readings *)
        cpus : (int * (string * int) list) list;  (** per-CPU readings *)
      }

  type response = (reply, error) result

  val operation_name : System.t -> request -> string
  (** The operation name the request is mediated, audited, and metered
      under — configuration-dependent for device I/O. *)

  val dispatch : System.t -> handle:int -> request -> response
  (** Mediate one gate call: gate presence, specialisation mask, ring
      bracket, reference monitor; writes the audit record and the
      observability counters. *)
end
