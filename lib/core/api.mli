(** The kernel's gate-call interface.  Calls are refused when the gate
    is absent from the running configuration, when the caller's ring is
    outside the gate's call bracket, or when the reference monitor
    refuses the operation; every call is audited.

    {b Deprecation notice.}  The per-gate wrapper functions below
    ([initiate], [read_word], [set_acl], ...) are the legacy surface:
    one OCaml function per supervisor entry point, each privately
    rebuilding the audit/metering prologue.  They are kept for one
    release so out-of-tree callers keep compiling, but all in-tree
    callers (shell, examples, experiments, workloads, benches) now go
    through the typed surface — build a {!Call.request} and hand it to
    {!Call.dispatch}, which is the single audited, metered entry point.
    New code must not add per-gate wrappers; add a [Call.request]
    constructor instead.  The wrappers will be removed once the
    deprecation window closes. *)

open Multics_access
open Multics_fs
open Multics_link
open Multics_machine

type error =
  | Fs of Hierarchy.error
  | Kst_error of Kst.error
  | Rnt_error of Rnt.error
  | Gate_absent of string
  | Gate_ring_denied of { gate : string; ring : int }
  | Hardware_denied of Hardware.denial
  | Link_failed of Linker.outcome
  | No_such_process of int
  | No_such_channel of int
  | Device_not_attached of string
  | Not_in_subsystem
  | Not_authorized of string
  | Fault_injected of { site : string; operation : string }
      (** an injected fault denied, aborted, or gave up on the call —
          always a refusal, never a grant *)
  | Bad_fault_plan of string
  | No_scheduler  (** no traffic controller registered with the system *)
  | Bad_tune of string  (** the scheduler rejected a tuning parameter or value *)
  | No_smp_plant  (** no multiprocessor plant attached to the system *)
  | Site_fenced of { site : int }
      (** the caller's home site is fenced pending salvage-and-resync;
          a fenced site refuses rather than risk serving a decision it
          could not prove fresh *)
  | Site_unreachable of { site : int }
      (** cross-site connects to this site went unacknowledged past
          the retry budget *)

val error_to_string : error -> string

val pp : Format.formatter -> error -> unit
(** Canonical human rendering; [error_to_string] is [Fmt.str "%a" pp]. *)

val error_to_json : error -> string
(** Machine-readable refusal cause: an object with a ["kind"]
    discriminator plus cause-specific fields. *)

(** {1 Directory control}

    @deprecated All per-gate wrappers in this and the following
    sections are legacy shims over {!Call.dispatch}; see the module
    header.  Use [Call.dispatch system ~handle (Call.Initiate ...)]
    and friends in new code. *)

val initiate :
  System.t -> handle:int -> dir_segno:int -> name:string -> (int, error) result
(** Look [name] up in an initiated directory and make the result known;
    returns its segment number.  This is the simple post-removal
    interface: "instead of identifying a directory by character string
    tree name ... a segment number is used". *)

val terminate : System.t -> handle:int -> segno:int -> (unit, error) result

val create_segment :
  ?brackets:Brackets.t ->
  System.t ->
  handle:int ->
  dir_segno:int ->
  name:string ->
  acl:Acl.t ->
  label:Label.t ->
  (int, error) result

val create_directory :
  System.t ->
  handle:int ->
  dir_segno:int ->
  name:string ->
  acl:Acl.t ->
  label:Label.t ->
  (int, error) result

val delete_entry :
  System.t -> handle:int -> dir_segno:int -> name:string -> (unit, error) result

val rename_entry :
  System.t -> handle:int -> dir_segno:int -> name:string -> new_name:string ->
  (unit, error) result

val list_directory : System.t -> handle:int -> dir_segno:int -> (string list, error) result

type entry_status = {
  status_name : string;
  status_kind : Hierarchy.kind;
  status_label : Label.t;
  status_pages : int;
}

val status_entry :
  System.t -> handle:int -> dir_segno:int -> name:string -> (entry_status, error) result

val set_acl : System.t -> handle:int -> segno:int -> acl:Acl.t -> (unit, error) result

val set_brackets :
  System.t -> handle:int -> segno:int -> brackets:Brackets.t -> (unit, error) result

val set_gate_bound :
  System.t -> handle:int -> segno:int -> gate_bound:int -> (unit, error) result

(** {1 Content references (checked against the installed SDW)} *)

val read_word : System.t -> handle:int -> segno:int -> offset:int -> (int, error) result

val write_word :
  System.t -> handle:int -> segno:int -> offset:int -> value:int -> (unit, error) result

(** {1 Naming gates (kernel-resident naming only)} *)

val initiate_by_path : System.t -> handle:int -> path:string -> (int, error) result

val create_segment_by_path :
  ?brackets:Brackets.t ->
  System.t ->
  handle:int ->
  path:string ->
  acl:Acl.t ->
  label:Label.t ->
  (int, error) result

val create_directory_by_path :
  System.t -> handle:int -> path:string -> acl:Acl.t -> label:Label.t -> (int, error) result

val delete_by_path : System.t -> handle:int -> path:string -> (unit, error) result

val resolve_path : System.t -> handle:int -> path:string -> (int, error) result

val rnt_bind : System.t -> handle:int -> name:string -> segno:int -> (unit, error) result
val rnt_lookup : System.t -> handle:int -> name:string -> (int, error) result
val rnt_unbind : System.t -> handle:int -> name:string -> (unit, error) result

val list_reference_names :
  System.t -> handle:int -> segno:int -> (string list, error) result

(** {1 Linker gates (kernel-resident linker only)} *)

val snap_link :
  System.t -> handle:int -> segno:int -> link_index:int -> (int * int, error) result
(** Returns (target segment number, entry offset).  Under the flawed
    baseline this installs a supervisor-grade descriptor — the
    historical escalation experiment E11 exploits. *)

val set_search_rules :
  System.t -> handle:int -> dir_segnos:int list -> (unit, error) result

val get_search_rules : System.t -> handle:int -> (string list, error) result

(** {1 Protected subsystems (hardware gate calls, always available)} *)

val enter_subsystem :
  System.t -> handle:int -> segno:int -> entry_offset:int -> name:string ->
  (Ring.t, error) result
(** Validates the call against the target's SDW; on a legal inward
    call, switches the process into the gate's ring. *)

val exit_subsystem : System.t -> handle:int -> (Ring.t, error) result

(** {1 IPC gates} *)

val create_channel : System.t -> handle:int -> (int, error) result
val send_wakeup : System.t -> handle:int -> channel:int -> (unit, error) result

val block : System.t -> handle:int -> channel:int -> (bool, error) result
(** Functional model: true if a pending wakeup was consumed. *)

(** {1 External I/O gates} *)

val attach_device :
  System.t -> handle:int -> device:Multics_io.Device.kind -> (unit, error) result
(** Routed through the per-device gates or the network attachment,
    depending on the configuration. *)

val detach_device :
  System.t -> handle:int -> device:Multics_io.Device.kind -> (unit, error) result

val device_write :
  System.t -> handle:int -> device:Multics_io.Device.kind -> message:int ->
  (unit, error) result

val device_read :
  System.t -> handle:int -> device:Multics_io.Device.kind -> (int option, error) result

(** {1 Quota} *)

val set_quota :
  System.t -> handle:int -> segno:int -> quota:int option -> (unit, error) result
(** Install or clear a page-quota cell on an initiated directory. *)

(** {1 Remaining linker gates (kernel-resident linker only)} *)

type link_status = {
  link_target_seg : string;
  link_target_entry : string;
  link_snapped : bool;
}

val list_links : System.t -> handle:int -> segno:int -> (link_status list, error) result

(** {1 Remaining naming gates (kernel-resident naming only)} *)

val get_working_dir : System.t -> handle:int -> (int, error) result
(** The working directory's segment number (installed if needed). *)

val set_working_dir : System.t -> handle:int -> dir_segno:int -> (unit, error) result

val initiate_count : System.t -> handle:int -> (int, error) result
(** How many segments this process has made known. *)

val terminate_by_path : System.t -> handle:int -> path:string -> (unit, error) result

(** {1 Process management}

    Privileged gates under [Privileged_login]; reached through the
    ordinary subsystem-entry mechanism under the unified
    configuration. *)

val create_process : System.t -> handle:int -> (int, error) result
(** A sibling process for the same account; returns its handle. *)

val destroy_process : System.t -> handle:int -> target:int -> (unit, error) result
(** Only the owner's own processes may be destroyed. *)

val new_proc : System.t -> handle:int -> (int, error) result
(** Recreate the caller's process with a fresh address space; the old
    handle is logged out. *)

type process_info = {
  info_principal : string;
  info_ring : int;
  info_level : Multics_access.Label.t;
  info_known_segments : int;
  info_login_ring : int;
}

val proc_info : System.t -> handle:int -> (process_info, error) result

val list_processes : System.t -> handle:int -> (int list, error) result
(** Handles belonging to the caller's principal. *)

val operator_message : System.t -> handle:int -> message:string -> (unit, error) result
(** Record a message for the operator (audited). *)

(** {1 Fault injection and salvage}

    Operator actions, present in every configuration (like the
    hardware gate calls) and still audited and metered.  A plan can
    only make the system slower or more refusing; salvage only removes
    state or re-derives descriptors from policy. *)

val set_fault_plan :
  System.t -> handle:int -> seed:int -> spec:string -> (unit, error) result
(** Parse and install a fault plan
    (e.g. ["gate.deny=every:5,vm.page_read=p:1/8"]); an empty spec
    clears it. *)

val fault_status :
  System.t -> handle:int -> (string * (string * int) list, error) result
(** The active plan rendered as a spec string (["none"] if no plan)
    and the injector's counters. *)

val clear_faults : System.t -> handle:int -> (unit, error) result

val salvage : System.t -> handle:int -> (Salvager.report, error) result

(** {1 Cache inspection and control}

    Operator surface, like fault control.  [probe_access] runs the
    cached access-decision path for real — the AVC's hit/miss counters
    move exactly as an ordinary reference would move them — and returns
    the verdict without touching any content.  [cache_clear] drops the
    policy-verdict cache and every process's associative memory; it can
    only make the next reference slower, never change a verdict. *)

val probe_access :
  System.t -> handle:int -> segno:int -> requested:Mode.t -> (Policy.verdict, error) result

val cache_status :
  System.t -> handle:int -> ((string * int) list * (string * int) list, error) result
(** [(policy cache stats, calling process's associative-memory stats)];
    each is [("size", _)] plus the obs counter readings. *)

val cache_clear : System.t -> handle:int -> (unit, error) result

(** {1 Traffic-controller inspection and tuning}

    Operator surface, like fault and cache control.  Tuning moves
    mechanism parameters (quantum, eligibility cap) and can only change
    {e when} work runs, never what it may touch — reference-monitor
    decisions and audit totals are schedule-invariant (experiment E17's
    parity oracle).  Refused with {!No_scheduler} until a traffic
    controller registers via {!System.register_scheduler}. *)

val sched_status :
  System.t -> handle:int -> (string * (string * int) list, error) result
(** [(active policy name, live scheduler counters)]. *)

val sched_tune :
  System.t -> handle:int -> param:string -> value:int -> (unit, error) result
(** Set a mechanism parameter (["cap"], ["quantum"], ["age_after"]);
    {!Bad_tune} explains a rejected parameter or value. *)

(** {1 The typed gate-call surface}

    One request constructor per supervisor entry point; {!Call.dispatch}
    is THE single audited, metered entry point — every per-gate function
    above is a thin wrapper that builds the request, dispatches it, and
    projects the typed reply back out. *)

module Call : sig
  type request =
    | Initiate of { dir_segno : int; name : string }
    | Terminate of { segno : int }
    | Create_segment of {
        dir_segno : int;
        name : string;
        acl : Acl.t;
        label : Label.t;
        brackets : Brackets.t option;
      }
    | Create_directory of { dir_segno : int; name : string; acl : Acl.t; label : Label.t }
    | Delete_entry of { dir_segno : int; name : string }
    | Rename_entry of { dir_segno : int; name : string; new_name : string }
    | List_directory of { dir_segno : int }
    | Status_entry of { dir_segno : int; name : string }
    | Set_acl of { segno : int; acl : Acl.t }
    | Set_brackets of { segno : int; brackets : Brackets.t }
    | Set_gate_bound of { segno : int; gate_bound : int }
    | Set_quota of { segno : int; quota : int option }
    | Read_word of { segno : int; offset : int }
    | Write_word of { segno : int; offset : int; value : int }
    | Initiate_by_path of { path : string }
    | Create_segment_by_path of {
        path : string;
        acl : Acl.t;
        label : Label.t;
        brackets : Brackets.t option;
      }
    | Create_directory_by_path of { path : string; acl : Acl.t; label : Label.t }
    | Delete_by_path of { path : string }
    | Set_acl_by_path of { path : string; acl : Acl.t }
        (** the [set_acl] supervisor entry addressed by tree name — the
            calling sequence replicated mutations replay on remote
            sites (same gate, same audit operation, same setfaults) *)
    | Set_brackets_by_path of { path : string; brackets : Brackets.t }
    | Resolve_path of { path : string }
    | Terminate_by_path of { path : string }
    | Rnt_bind of { name : string; segno : int }
    | Rnt_lookup of { name : string }
    | Rnt_unbind of { name : string }
    | List_reference_names of { segno : int }
    | Get_working_dir
    | Set_working_dir of { dir_segno : int }
    | Initiate_count
    | Snap_link of { segno : int; link_index : int }
    | List_links of { segno : int }
    | Set_search_rules of { dir_segnos : int list }
    | Get_search_rules
    | Enter_subsystem of { segno : int; entry_offset : int; name : string }
    | Exit_subsystem
    | Create_channel
    | Send_wakeup of { channel : int }
    | Block of { channel : int }
    | Attach_device of { device : Multics_io.Device.kind }
    | Detach_device of { device : Multics_io.Device.kind }
    | Device_write of { device : Multics_io.Device.kind; message : int }
    | Device_read of { device : Multics_io.Device.kind }
    | Create_process
    | Destroy_process of { target : int }
    | New_proc
    | Proc_info
    | List_processes
    | Operator_message of { message : string }
    | Set_fault_plan of { seed : int; spec : string }
    | Fault_status
    | Clear_faults
    | Salvage
    | Probe_access of { segno : int; requested : Mode.t }
    | Cache_status
    | Cache_clear
    | Sched_status
    | Sched_tune of { param : string; value : int }
    | Smp_status

  type reply =
    | Done
    | Segno of int
    | Word of int
    | Message of int option
    | Names of string list
    | Status of entry_status
    | Links of link_status list
    | Snapped of { segno : int; offset : int }
    | Entered of Ring.t
    | Channel of int
    | Consumed of bool
    | Process of int
    | Processes of int list
    | Info of process_info
    | Fault_report of { plan : string; counts : (string * int) list }
    | Salvaged of Salvager.report
    | Probed of Policy.verdict
    | Cache_report of { policy : (string * int) list; assoc : (string * int) list }
    | Sched_report of { policy : string; counters : (string * int) list }
    | Smp_report of {
        ncpus : int;
        plant : (string * int) list;  (** plant-wide readings *)
        cpus : (int * (string * int) list) list;  (** per-CPU readings *)
      }

  type response = (reply, error) result

  val operation_name : System.t -> request -> string
  (** The operation name the request is mediated, audited, and metered
      under — configuration-dependent for device I/O. *)

  val dispatch : System.t -> handle:int -> request -> response
  (** Mediate one gate call: gate presence, ring bracket, reference
      monitor; writes the audit record and the observability counters. *)
end
