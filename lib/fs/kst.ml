(* The Known Segment Table: per-process binding of segment numbers to
   file-system objects.

   Bratt's removal project split this table: the part that must be
   protected (segment number -> unique id -> computed access) stays in
   the kernel; reference names and pathname bookkeeping move to a
   private, user-ring structure.  The [variant] records which shape
   this KST has:

   - [Unified]  (pre-removal): the kernel table also carries each
     entry's pathname — the large protected address-space manager;
   - [Split]    (post-removal): the kernel half is the minimal map;
     naming lives outside (see {!Multics_link.Rnt}).

   [protected_words] makes the difference measurable: experiment E2
   compares the protected-data footprint of the two shapes. *)

type variant = Unified | Split

let variant_name = function Unified -> "unified (naming in kernel)" | Split -> "split (naming in user ring)"

type entry = {
  segno : int;
  uid : Uid.t;
  mutable sdw : Multics_machine.Sdw.t option;  (** computed descriptor, cached *)
  mutable pathname : string option;  (** Unified variant only *)
}

type t = {
  variant : variant;
  start_segno : int;
  mutable next_segno : int;
  by_segno : (int, entry) Hashtbl.t;
  by_uid : (int, entry) Hashtbl.t;
  mutable on_sdw_change : int -> unit;
      (** fired with the segno on every descriptor change — the
          "setfaults" hook the SDW associative memory hangs off *)
}

type error = Unknown_segno of int | Naming_not_in_kernel

let error_to_string = function
  | Unknown_segno n -> Printf.sprintf "segment number %d is not known" n
  | Naming_not_in_kernel -> "pathname bookkeeping has been removed from the kernel"

let create ?(start_segno = 8) ~variant () =
  {
    variant;
    start_segno;
    next_segno = start_segno;
    by_segno = Hashtbl.create 64;
    by_uid = Hashtbl.create 64;
    on_sdw_change = (fun _ -> ());
  }

let variant t = t.variant
let set_on_sdw_change t f = t.on_sdw_change <- f

(* Make a segment known: idempotent per uid; returns the segment
   number and whether it was already known. *)
let make_known t ~uid =
  match Hashtbl.find_opt t.by_uid (Uid.to_int uid) with
  | Some entry -> (entry.segno, true)
  | None ->
      let segno = t.next_segno in
      t.next_segno <- segno + 1;
      let entry = { segno; uid; sdw = None; pathname = None } in
      Hashtbl.replace t.by_segno segno entry;
      Hashtbl.replace t.by_uid (Uid.to_int uid) entry;
      (segno, false)

let uid_of_segno t segno =
  match Hashtbl.find_opt t.by_segno segno with
  | Some entry -> Ok entry.uid
  | None -> Error (Unknown_segno segno)

let segno_of_uid t ~uid =
  Option.map (fun e -> e.segno) (Hashtbl.find_opt t.by_uid (Uid.to_int uid))

let is_known t ~uid = Hashtbl.mem t.by_uid (Uid.to_int uid)

let set_sdw t segno sdw =
  match Hashtbl.find_opt t.by_segno segno with
  | Some entry ->
      entry.sdw <- Some sdw;
      t.on_sdw_change segno;
      Ok ()
  | None -> Error (Unknown_segno segno)

let sdw_of t segno =
  match Hashtbl.find_opt t.by_segno segno with
  | Some { sdw = Some sdw; _ } -> Some sdw
  | Some { sdw = None; _ } | None -> None

let record_pathname t segno path =
  match t.variant with
  | Split -> Error Naming_not_in_kernel
  | Unified -> (
      match Hashtbl.find_opt t.by_segno segno with
      | Some entry ->
          entry.pathname <- Some path;
          Ok ()
      | None -> Error (Unknown_segno segno))

let pathname_of t segno =
  match t.variant with
  | Split -> Error Naming_not_in_kernel
  | Unified -> (
      match Hashtbl.find_opt t.by_segno segno with
      | Some entry -> Ok entry.pathname
      | None -> Error (Unknown_segno segno))

let terminate t segno =
  match Hashtbl.find_opt t.by_segno segno with
  | None -> Error (Unknown_segno segno)
  | Some entry ->
      Hashtbl.remove t.by_segno segno;
      Hashtbl.remove t.by_uid (Uid.to_int entry.uid);
      t.on_sdw_change segno;
      Ok ()

let entry_count t = Hashtbl.length t.by_segno

let known_segnos t =
  Hashtbl.fold (fun segno _ acc -> segno :: acc) t.by_segno [] |> List.sort Int.compare

(* Protected footprint, in (synthetic) 36-bit words.  A split entry is
   the minimal segno/uid/descriptor triple; a unified entry also holds
   the pathname buffer and name-list head the real KST carried. *)
let words_per_entry = function Split -> 4 | Unified -> 40

let protected_words t = 8 + (entry_count t * words_per_entry t.variant)
