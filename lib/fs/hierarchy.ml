(* The protected storage hierarchy.

   Directories hold branches; each branch carries the object's ACL,
   security label, and (for segments) ring brackets — everything the
   reference monitor needs to compute a process's access to the object.
   All operations here are kernel primitives: they take the requesting
   subject and enforce both the discretionary and the mandatory checks
   before touching anything.

   Directory modes are interpreted the Multics way:
     read    = status/list the directory,
     write   = modify or delete existing entries,
     execute = append new entries.

   Resolution deliberately "lies convincingly": when the subject lacks
   status permission on an intermediate directory, the walk reports
   [No_entry] rather than a permission failure, so the existence of
   names the subject may not see is not leaked. *)

open Multics_access
open Multics_machine

module Avc = Multics_cache.Avc

type kind = Segment | Directory

type node = {
  uid : Uid.t;
  mutable name : string;
  kind : kind;
  mutable acl : Acl.t;
  mutable label : Label.t;
  mutable brackets : Brackets.t;
  mutable gate_bound : int;  (** segments only: entries callable as gates *)
  parent : Uid.t option;  (** [None] only for the root *)
  mutable entries : (string * Uid.t) list;  (** directories: insertion order *)
  mutable pages : int;  (** segments: length in pages *)
  mutable words : int array;  (** segments: contents, grown on demand *)
  mutable quota : int option;  (** directories: page quota cell, if any *)
  mutable pages_charged : int;  (** directories with a quota: pages charged *)
}

type error =
  | No_entry of string
  | Permission_denied of Policy.refusal list
  | Name_duplicated of string
  | Not_a_directory of string
  | Not_a_segment of string
  | Invalid_path of string
  | Directory_not_empty of string
  | Out_of_bounds of int
  | Quota_exceeded of { dir : string; quota : int; needed : int }
  | Brackets_below_ring of { requested_r1 : int; ring : int }

let error_to_string = function
  | No_entry name -> Printf.sprintf "no entry %S" name
  | Permission_denied refusals ->
      "permission denied: "
      ^ String.concat "; " (List.map Policy.refusal_to_string refusals)
  | Name_duplicated name -> Printf.sprintf "name %S already exists" name
  | Not_a_directory name -> Printf.sprintf "%S is not a directory" name
  | Not_a_segment name -> Printf.sprintf "%S is not a segment" name
  | Invalid_path path -> Printf.sprintf "invalid path %S" path
  | Directory_not_empty name -> Printf.sprintf "directory %S is not empty" name
  | Out_of_bounds i -> Printf.sprintf "word offset %d out of bounds" i
  | Quota_exceeded { dir; quota; needed } ->
      Printf.sprintf "quota of %d pages on %S exceeded (would need %d)" quota dir needed
  | Brackets_below_ring { requested_r1; ring } ->
      Printf.sprintf "cannot mint brackets with r1 = %d from ring %d" requested_r1 ring

type t = {
  nodes : (int, node) Hashtbl.t;
  uids : Uid.generator;
  words_per_page : int;
  (* The compiled access-decision table: Policy + brackets flattened
     into access-vector bits per (subject SID, object uid), stamped
     with [gens].  Every access-relevant mutation below bumps the
     object's generation, so revocation is immediate — the simulated
     analogue of "setfaults" clearing the 6180's associative memory on
     an attribute change.  Uids are the object-SID space directly: the
     uid generator already mints small dense ints and never reuses
     them. *)
  gens : Avc.Gen.t;
  avtab : Av_table.t;
}

let words_per_page t = t.words_per_page

(* Any ACL edit, label change, deletion or branch move revokes the
   cached verdicts derived from the object. *)
let note_change t uid = Avc.Gen.bump_object t.gens (Uid.to_int uid)

let invalidate_cached_verdicts t = Avc.Gen.bump_global t.gens
let av_table t = t.avtab
let subject_sid t subject = Av_table.subject_sid t.avtab subject
let set_cache_probe t probe = Av_table.set_flush_probe t.avtab probe
let cache_stats t = ("size", Av_table.size t.avtab) :: Av_table.counters t.avtab
let cache_hit_ratio t = Av_table.hit_ratio t.avtab
let flush_cached_verdicts t = Av_table.flush t.avtab

let create ?(words_per_page = 64) () =
  let nodes = Hashtbl.create 256 in
  let root =
    {
      uid = Uid.root;
      name = ">";
      kind = Directory;
      (* Listable by everyone; only the Initializer appends or
         modifies.  Fixed at creation: the root has no parent branch,
         so [set_acl] cannot reach it. *)
      acl = Acl.of_strings [ ("Initializer.*.*", "rew"); ("*.*.*", "r") ];
      label = Label.unclassified;
      (* Directory brackets bound the rings that may use the directory
         at all; (4,4,4) admits the user ring and everything inward. *)
      brackets = Brackets.user_data;
      gate_bound = 0;
      parent = None;
      entries = [];
      pages = 0;
      words = [||];
      quota = None;
      pages_charged = 0;
    }
  in
  Hashtbl.replace nodes (Uid.to_int Uid.root) root;
  let gens = Avc.Gen.create () in
  (* Backstop for the cache: any ACL construction anywhere bumps the
     global generation, so even an edit that somehow bypassed the
     per-object bumps below could not leave a stale verdict alive.
     Conservative (it may invalidate more than necessary), never
     unsound. *)
  Acl.on_change (fun () -> Avc.Gen.bump_global gens);
  {
    nodes;
    uids = Uid.generator ();
    words_per_page;
    gens;
    avtab = Av_table.create ~gens ~name:"policy" ();
  }

let node t uid = Hashtbl.find_opt t.nodes (Uid.to_int uid)

let node_exn t uid =
  match node t uid with
  | Some n -> n
  | None -> invalid_arg (Fmt.str "Hierarchy: dangling %a" Uid.pp uid)

let uid_exists t uid = Hashtbl.mem t.nodes (Uid.to_int uid)

(* ----- Attribute readers (no access check: callers are kernel code
   that has already mediated, or the audit tooling) ----- *)

let kind_of t uid = Option.map (fun n -> n.kind) (node t uid)
let label_of t uid = Option.map (fun n -> n.label) (node t uid)
let acl_of t uid = Option.map (fun n -> n.acl) (node t uid)
let brackets_of t uid = Option.map (fun n -> n.brackets) (node t uid)
let gate_bound_of t uid = Option.map (fun n -> n.gate_bound) (node t uid)
let name_of t uid = Option.map (fun n -> n.name) (node t uid)
let parent_of t uid = Option.bind (node t uid) (fun n -> n.parent)
let page_count_of t uid = Option.map (fun n -> n.pages) (node t uid)

(* ----- The access check used by every operation -----

   Three mechanisms compose: the lattice, the ACL, and the node's ring
   brackets applied against the subject's ring of execution — so code
   confined to an outer ring (e.g. a borrowed program run in ring 5)
   cannot observe or modify (4,4,4) objects even with the owner's
   identity. *)

let ring_refusals n ~(subject : Policy.subject) ~(requested : Mode.t) =
  let observe =
    if
      (requested.Mode.read || requested.Mode.execute)
      && not (Brackets.read_ok n.brackets ~ring:subject.Policy.ring)
    then [ Policy.Ring_hardware Hardware.Outside_read_bracket ]
    else []
  in
  let modify =
    if requested.Mode.write && not (Brackets.write_ok n.brackets ~ring:subject.Policy.ring)
    then [ Policy.Ring_hardware Hardware.Outside_write_bracket ]
    else []
  in
  observe @ modify

(* The recompute path, bypassing the table — the parity oracle the
   property tests compare [check_node] against at every step, and the
   path every uncovered (refused) request takes, so refusal lists and
   audit counters stay byte-identical to the uncached kernel. *)
let check_node_fresh (subject : Policy.subject) n ~requested =
  match Policy.check ~subject ~object_label:n.label ~acl:n.acl ~requested with
  | Policy.Refuse refusals ->
      Policy.verdict_of_refusals (refusals @ ring_refusals n ~subject ~requested)
  | Policy.Permit -> Policy.verdict_of_refusals (ring_refusals n ~subject ~requested)

(* The mediation hot path: policy AND brackets served from the
   compiled access-vector table.  A covered request is a Permit by
   construction of the bits ([Av_table.compute] is the conjunctive
   form of [Policy.check] + [ring_refusals]); the policy counters are
   replayed through [Policy.observe] so caching stays observationally
   transparent.  An uncovered request recomputes the structured
   verdict — refusals carry details (which mechanism, which labels)
   the bits deliberately do not encode.  Unlike the PR-3 verdict
   cache, bracket edits are covered by the same per-object stamp as
   ACL edits ([set_brackets] runs [note_change]), so compiling the
   bracket comparison into the cell is revocation-correct. *)
let check_node t (subject : Policy.subject) n ~requested =
  let obj = Uid.to_int n.uid in
  let subj = Av_table.subject_sid t.avtab subject in
  let av = Av_table.find t.avtab ~subj ~obj in
  let av =
    if av >= 0 then av
    else begin
      let compiled =
        Av_table.compute ~subject ~object_label:n.label ~acl:n.acl ~brackets:n.brackets
      in
      Av_table.set t.avtab ~subj ~obj compiled;
      compiled
    end
  in
  if Av_table.covers ~av ~need:(Av_table.required requested) then
    Policy.observe Policy.Permit
  else check_node_fresh subject n ~requested

let guard t subject n ~requested k =
  match check_node t subject n ~requested with
  | Policy.Permit -> k ()
  | Policy.Refuse refusals -> Error (Permission_denied refusals)

let dir_node t uid =
  match node t uid with
  | None -> Error (No_entry (Fmt.str "%a" Uid.pp uid))
  | Some n -> if n.kind = Directory then Ok n else Error (Not_a_directory n.name)

let seg_node t uid =
  match node t uid with
  | None -> Error (No_entry (Fmt.str "%a" Uid.pp uid))
  | Some n -> if n.kind = Segment then Ok n else Error (Not_a_segment n.name)

let ( let* ) r f = Result.bind r f

(* ----- Quota cells -----

   A directory may carry a page quota; a segment's pages are charged to
   the nearest ancestor directory holding a quota cell (the Multics
   quota-cell arrangement).  No cell on the path means no limit.
   Quota is the kernel's defense against the unauthorized-denial-of-use
   class: one user exhausting the storage everyone shares. *)

let rec quota_cell t n =
  match n.parent with
  | None -> None
  | Some parent_uid ->
      let parent = node_exn t parent_uid in
      if parent.quota <> None then Some parent else quota_cell t parent

(* Charge (or refund, when negative) pages against the governing cell. *)
let charge_pages t n delta =
  match quota_cell t n with
  | None -> Ok ()
  | Some cell -> (
      match cell.quota with
      | None -> Ok ()
      | Some quota ->
          let needed = cell.pages_charged + delta in
          if needed > quota then Error (Quota_exceeded { dir = cell.name; quota; needed })
          else begin
            cell.pages_charged <- max 0 needed;
            Ok ()
          end)

(* Total segment pages in the subtree, not counting subtrees governed
   by their own inner quota cells. *)
let rec subtree_pages t n =
  match n.kind with
  | Segment -> n.pages
  | Directory ->
      List.fold_left
        (fun acc (_, child_uid) ->
          let child = node_exn t child_uid in
          if child.kind = Directory && child.quota <> None then acc
          else acc + subtree_pages t child)
        0 n.entries

let quota_of t uid = Option.bind (node t uid) (fun n -> n.quota)

let pages_charged_of t uid = Option.map (fun n -> n.pages_charged) (node t uid)

(* Accounting invariant: every quota cell's charge equals the actual
   page total of the subtree it governs, and never exceeds its limit.
   Used by tests after random operation storms. *)
let check_quota_invariant t =
  Hashtbl.fold
    (fun _ n ok ->
      ok
      &&
      match (n.kind, n.quota) with
      | Directory, Some limit -> n.pages_charged = subtree_pages t n && n.pages_charged <= limit
      | Directory, None | Segment, _ -> true)
    t.nodes true

(* ----- Directory operations ----- *)

let valid_entry_name name =
  String.length name > 0
  && String.length name <= 32
  && String.for_all (fun c -> c <> '>' && c <> ' ') name

(* Unmediated lookup: how ring-0 code sees the hierarchy through its
   own descriptors.  Kernel-internal; exposing this to user input is
   precisely the Supervisor_authority_walk flaw. *)
let raw_lookup t ~dir ~name =
  match dir_node t dir with
  | Error _ -> None
  | Ok d -> List.assoc_opt name d.entries

let lookup t ~subject ~dir ~name =
  let* d = dir_node t dir in
  (* Listing a name requires status permission on the directory; a
     refusal is reported as No_entry to hide the name space. *)
  match check_node t subject d ~requested:Mode.r with
  | Policy.Refuse _ -> Error (No_entry name)
  | Policy.Permit -> (
      match List.assoc_opt name d.entries with
      | Some uid -> Ok uid
      | None -> Error (No_entry name))

let list_entries t ~subject ~dir =
  let* d = dir_node t dir in
  guard t subject d ~requested:Mode.r (fun () -> Ok d.entries)

(* A subject may not mint brackets inner to its own ring of execution:
   code with an inner write bracket EXECUTES inner, so allowing it
   would let any user install a gate into ring 0 holding his own text —
   instant escalation.  (The Initializer, in ring 0, may install
   anything.) *)
let brackets_permitted ~(subject : Policy.subject) ~brackets =
  let r1 = Ring.to_int (Brackets.write_top brackets) in
  let ring = Ring.to_int subject.Policy.ring in
  if r1 < ring then Error (Brackets_below_ring { requested_r1 = r1; ring }) else Ok ()

let add_entry t ~subject ~dir ~name ~kind ~acl ~label ~brackets =
  if not (valid_entry_name name) then Error (Invalid_path name)
  else begin
    let* () = brackets_permitted ~subject ~brackets in
    let* d = dir_node t dir in
    (* Appending an entry needs the append (execute) permission, and
       creating below the directory must not move information down:
       the new object's label must dominate the directory's. *)
    guard t subject d ~requested:Mode.e (fun () ->
        if not (Label.dominates label d.label) then
          Error
            (Permission_denied
               [ Policy.Mandatory_write_down { subject_label = label; object_label = d.label } ])
        else if List.mem_assoc name d.entries then Error (Name_duplicated name)
        else begin
          let uid = Uid.fresh t.uids in
          let n =
            {
              uid;
              name;
              kind;
              acl;
              label;
              brackets;
              gate_bound = 0;
              parent = Some d.uid;
              entries = [];
              pages = 0;
              words = [||];
              quota = None;
              pages_charged = 0;
            }
          in
          Hashtbl.replace t.nodes (Uid.to_int uid) n;
          d.entries <- d.entries @ [ (name, uid) ];
          Ok uid
        end)
  end

let create_directory t ~subject ~dir ~name ~acl ~label =
  add_entry t ~subject ~dir ~name ~kind:Directory ~acl ~label ~brackets:Brackets.user_data

let create_segment ?(brackets = Brackets.user_data) t ~subject ~dir ~name ~acl ~label =
  add_entry t ~subject ~dir ~name ~kind:Segment ~acl ~label ~brackets

let delete_entry t ~subject ~dir ~name =
  let* d = dir_node t dir in
  guard t subject d ~requested:Mode.w (fun () ->
      match List.assoc_opt name d.entries with
      | None -> Error (No_entry name)
      | Some uid ->
          let n = node_exn t uid in
          if n.kind = Directory && n.entries <> [] then Error (Directory_not_empty name)
          else begin
            (* Refund the deleted segment's pages to its quota cell. *)
            if n.kind = Segment && n.pages > 0 then ignore (charge_pages t n (-n.pages));
            d.entries <- List.filter (fun (entry_name, _) -> entry_name <> name) d.entries;
            Hashtbl.remove t.nodes (Uid.to_int uid);
            note_change t uid;
            Ok uid
          end)

let rename_entry t ~subject ~dir ~name ~new_name =
  if not (valid_entry_name new_name) then Error (Invalid_path new_name)
  else begin
    let* d = dir_node t dir in
    guard t subject d ~requested:Mode.w (fun () ->
        match List.assoc_opt name d.entries with
        | None -> Error (No_entry name)
        | Some uid ->
            if List.mem_assoc new_name d.entries then Error (Name_duplicated new_name)
            else begin
              let n = node_exn t uid in
              n.name <- new_name;
              d.entries <-
                List.map (fun (en, eu) -> if en = name then (new_name, eu) else (en, eu)) d.entries;
              note_change t uid;
              Ok uid
            end)
  end

let set_acl t ~subject ~uid ~acl =
  match node t uid with
  | None -> Error (No_entry (Fmt.str "%a" Uid.pp uid))
  | Some n ->
      (* Changing an ACL is a modification of the branch, controlled by
         modify permission on the containing directory. *)
      let* parent =
        match n.parent with
        | Some p -> dir_node t p
        | None -> Error (Not_a_segment n.name)
      in
      guard t subject parent ~requested:Mode.w (fun () ->
          n.acl <- acl;
          note_change t uid;
          Ok ())

let set_gate_bound t ~subject ~uid ~gate_bound =
  if gate_bound < 0 then Error (Out_of_bounds gate_bound)
  else begin
    let* n = seg_node t uid in
    let* parent =
      match n.parent with Some p -> dir_node t p | None -> Error (Not_a_segment n.name)
    in
    guard t subject parent ~requested:Mode.w (fun () ->
        n.gate_bound <- gate_bound;
        note_change t uid;
        Ok ())
  end

let set_brackets t ~subject ~uid ~brackets =
  let* () = brackets_permitted ~subject ~brackets in
  let* n = seg_node t uid in
  let* parent =
    match n.parent with Some p -> dir_node t p | None -> Error (Not_a_segment n.name)
  in
  guard t subject parent ~requested:Mode.w (fun () ->
      n.brackets <- brackets;
      note_change t uid;
      Ok ())

(* Install (or clear) a quota cell on a directory.  Requires modify
   permission on the directory itself.  Installing a cell takes over
   accounting for the subtree below it (up to inner cells), so the
   current usage is computed and must already fit. *)
let set_quota t ~subject ~uid ~quota =
  let* d = dir_node t uid in
  guard t subject d ~requested:Mode.w (fun () ->
      match quota with
      | None ->
          d.quota <- None;
          d.pages_charged <- 0;
          Ok ()
      | Some limit ->
          if limit < 0 then Error (Out_of_bounds limit)
          else begin
            let used = subtree_pages t d in
            if used > limit then
              Error (Quota_exceeded { dir = d.name; quota = limit; needed = used })
            else begin
              d.quota <- Some limit;
              d.pages_charged <- used;
              Ok ()
            end
          end)

(* Kernel-internal: remove an entry and everything below it — the
   cleanup of a process directory at logout.  Unmediated: only kernel
   code on already-authorized paths may call it. *)
let rec raw_delete_subtree t ~dir ~name =
  match dir_node t dir with
  | Error _ -> false
  | Ok d -> (
      match List.assoc_opt name d.entries with
      | None -> false
      | Some uid ->
          let n = node_exn t uid in
          (if n.kind = Directory then
             let children = List.map fst n.entries in
             List.iter (fun child -> ignore (raw_delete_subtree t ~dir:uid ~name:child)) children);
          if n.kind = Segment && n.pages > 0 then ignore (charge_pages t n (-n.pages));
          d.entries <- List.filter (fun (entry_name, _) -> entry_name <> name) d.entries;
          Hashtbl.remove t.nodes (Uid.to_int uid);
          note_change t uid;
          true)

(* Kernel-internal: rewrite an object's security label (the upgrade/
   downgrade performed by the security administrator's tools; there is
   no mediated gate for it).  The cached verdicts derived from the old
   label are revoked in the same step. *)
let raw_set_label t ~uid ~label =
  match node t uid with
  | None -> false
  | Some n ->
      n.label <- label;
      note_change t uid;
      true

(* ----- The mediated access question, exposed for gate dispatch and
   the parity tests ----- *)

(* [Some Permit] as a structured constant: the covered-hit path of
   [check_access] must not allocate per reference. *)
let some_permit = Some Policy.Permit

let check_access t ~subject ~uid ~requested =
  match node t uid with
  | None -> None
  | Some n -> (
      match check_node t subject n ~requested with
      | Policy.Permit -> some_permit
      | v -> Some v)

let check_access_fresh t ~subject ~uid ~requested =
  match node t uid with
  | None -> None
  | Some n -> Some (check_node_fresh subject n ~requested)

(* Eagerly recompile the whole table — every subject it has ever
   interned against every live node.  Lazy refill under the epoch
   stamps already keeps the table exact; this is the measured
   "rebuild cost" of the compiled view (bench E19) and a warm-up for
   the experiments. *)
let rebuild_av_table t =
  Av_table.rebuild t.avtab ~objects:(fun fill ->
      Hashtbl.iter
        (fun _ n -> fill ~obj:(Uid.to_int n.uid) ~label:n.label ~acl:n.acl ~brackets:n.brackets)
        t.nodes)

(* ----- Path resolution (the kernel-resident tree walk) ----- *)

let split_path path =
  if path = ">" then Ok []
  else if String.length path = 0 || path.[0] <> '>' then Error (Invalid_path path)
  else begin
    let components = String.split_on_char '>' (String.sub path 1 (String.length path - 1)) in
    if List.for_all valid_entry_name components then Ok components else Error (Invalid_path path)
  end

(* Walk a tree name from the root.  Each intermediate lookup applies
   the status check (with the No_entry lie); this is the complex
   kernel-resident mechanism the removal project pushes out to the
   user ring. *)
let resolve t ~subject ~path =
  let* components = split_path path in
  let rec walk dir = function
    | [] -> Ok dir
    | name :: rest -> (
        let* uid = lookup t ~subject ~dir ~name in
        match rest with
        | [] -> Ok uid
        | _ :: _ -> (
            match kind_of t uid with
            | Some Directory -> walk uid rest
            | Some Segment -> Error (Not_a_directory name)
            | None -> Error (No_entry name)))
  in
  walk Uid.root components

let path_of t uid =
  let rec climb acc uid =
    match node t uid with
    | None -> None
    | Some n -> (
        match n.parent with
        | None -> Some (">" ^ String.concat ">" acc)
        | Some parent -> climb (n.name :: acc) parent)
  in
  climb [] uid

(* ----- Segment contents ----- *)

let ensure_capacity t n offset =
  let needed = offset + 1 in
  if Array.length n.words < needed then begin
    let pages = (needed + t.words_per_page - 1) / t.words_per_page in
    let grown = Array.make (pages * t.words_per_page) 0 in
    Array.blit n.words 0 grown 0 (Array.length n.words);
    n.words <- grown;
    n.pages <- max n.pages pages
  end

let max_segment_words = 256 * 1024

let read_word t ~subject ~uid ~offset =
  let* n = seg_node t uid in
  guard t subject n ~requested:Mode.r (fun () ->
      if offset < 0 || offset >= max_segment_words then Error (Out_of_bounds offset)
      else if offset >= Array.length n.words then Ok 0
      else Ok n.words.(offset))

let pages_for t offset = ((offset + 1) + t.words_per_page - 1) / t.words_per_page

(* Charge the quota cell for growing a segment to cover [offset],
   without touching contents.  Used by the SDW-checked write path (the
   kernel's segment control charges quota whichever way the write
   arrives). *)
let charge_growth t ~uid ~offset =
  let* n = seg_node t uid in
  let growth = max 0 (pages_for t offset - n.pages) in
  if growth > 0 then charge_pages t n growth else Ok ()

let write_word t ~subject ~uid ~offset ~value =
  let* n = seg_node t uid in
  guard t subject n ~requested:Mode.w (fun () ->
      if offset < 0 || offset >= max_segment_words then Error (Out_of_bounds offset)
      else begin
        (* Growth is charged to the governing quota cell before any
           page materializes. *)
        let growth = max 0 (pages_for t offset - n.pages) in
        let* () = if growth > 0 then charge_pages t n growth else Ok () in
        ensure_capacity t n offset;
        n.words.(offset) <- value;
        Ok ()
      end)

(* Raw accessors for kernel-internal use (already-mediated paths and
   the audit tooling). *)
let raw_read_word t ~uid ~offset =
  match seg_node t uid with
  | Error _ -> None
  | Ok n -> if offset < 0 then None else if offset >= Array.length n.words then Some 0 else Some n.words.(offset)

let raw_write_word t ~uid ~offset ~value =
  match seg_node t uid with
  | Error _ -> false
  | Ok n ->
      if offset < 0 || offset >= max_segment_words then false
      else begin
        ensure_capacity t n offset;
        n.words.(offset) <- value;
        true
      end

(* The SDW the kernel would build for this subject and segment: the
   meeting point of ACL, label and brackets.  Returns the effective
   mode (possibly null). *)
let effective_mode t ~subject ~uid =
  match node t uid with
  | None -> Mode.none
  | Some n ->
      let discretionary = Acl.mode_for n.acl subject.Policy.principal in
      let observe_ok = Label.dominates subject.Policy.clearance n.label in
      let modify_ok = Label.dominates n.label subject.Policy.clearance in
      {
        Mode.read = discretionary.Mode.read && observe_ok;
        Mode.execute = discretionary.Mode.execute && observe_ok;
        Mode.write = discretionary.Mode.write && modify_ok;
      }

let sdw_for t ~subject ~uid =
  match node t uid with
  | None -> None
  | Some n ->
      Some
        (Sdw.make ~gate_bound:n.gate_bound ~mode:(effective_mode t ~subject ~uid)
           ~brackets:n.brackets ())

let node_count t = Hashtbl.length t.nodes
