(** The protected storage hierarchy: directories, branches, ACLs,
    labels, ring brackets, and segment contents.

    Every operation takes the requesting {!Multics_access.Policy.subject}
    and enforces both the discretionary and the mandatory checks.
    Directory modes follow Multics: read = status/list, write = modify
    or delete entries, execute = append entries.

    Resolution "lies convincingly": a lookup in a directory the subject
    may not status reports [No_entry], never a permission failure, so
    protected name spaces do not leak existence. *)

open Multics_access
open Multics_machine

type t

type kind = Segment | Directory

type error =
  | No_entry of string
  | Permission_denied of Policy.refusal list
  | Name_duplicated of string
  | Not_a_directory of string
  | Not_a_segment of string
  | Invalid_path of string
  | Directory_not_empty of string
  | Out_of_bounds of int
  | Quota_exceeded of { dir : string; quota : int; needed : int }
  | Brackets_below_ring of { requested_r1 : int; ring : int }
      (** a subject may not mint brackets inner to its own ring *)

val error_to_string : error -> string

val create : ?words_per_page:int -> unit -> t
(** A hierarchy containing only the root directory [>] (listable by
    anyone, label Unclassified). *)

val words_per_page : t -> int

(** {1 Attributes (kernel-internal, unmediated)} *)

val uid_exists : t -> Uid.t -> bool
val kind_of : t -> Uid.t -> kind option
val label_of : t -> Uid.t -> Label.t option
val acl_of : t -> Uid.t -> Acl.t option
val brackets_of : t -> Uid.t -> Brackets.t option
val gate_bound_of : t -> Uid.t -> int option
val name_of : t -> Uid.t -> string option
val parent_of : t -> Uid.t -> Uid.t option
val page_count_of : t -> Uid.t -> int option
val path_of : t -> Uid.t -> string option
val node_count : t -> int

(** {1 Mediated directory operations} *)

val raw_lookup : t -> dir:Uid.t -> name:string -> Uid.t option
(** Unmediated lookup, as ring-0 code sees the hierarchy.  Kernel
    internal; exposing it to user-supplied names is the
    supervisor-authority-walk flaw. *)

val lookup :
  t -> subject:Policy.subject -> dir:Uid.t -> name:string -> (Uid.t, error) result

val list_entries :
  t -> subject:Policy.subject -> dir:Uid.t -> ((string * Uid.t) list, error) result

val create_directory :
  t ->
  subject:Policy.subject ->
  dir:Uid.t ->
  name:string ->
  acl:Acl.t ->
  label:Label.t ->
  (Uid.t, error) result
(** Requires append permission on [dir] and [label] dominating the
    directory's label (no downward placement). *)

val create_segment :
  ?brackets:Brackets.t ->
  t ->
  subject:Policy.subject ->
  dir:Uid.t ->
  name:string ->
  acl:Acl.t ->
  label:Label.t ->
  (Uid.t, error) result

val delete_entry :
  t -> subject:Policy.subject -> dir:Uid.t -> name:string -> (Uid.t, error) result
(** Requires modify permission; refuses to delete non-empty
    directories. *)

val rename_entry :
  t -> subject:Policy.subject -> dir:Uid.t -> name:string -> new_name:string ->
  (Uid.t, error) result

val set_acl : t -> subject:Policy.subject -> uid:Uid.t -> acl:Acl.t -> (unit, error) result
(** Controlled by modify permission on the containing directory. *)

val set_gate_bound :
  t -> subject:Policy.subject -> uid:Uid.t -> gate_bound:int -> (unit, error) result

(** {1 Quota cells}

    A directory may carry a page quota; segment growth is charged to
    the nearest ancestor cell.  Quota is the kernel's defense against
    denial of use by storage exhaustion. *)

val set_quota :
  t -> subject:Policy.subject -> uid:Uid.t -> quota:int option -> (unit, error) result
(** Install ([Some limit]) or clear ([None]) a cell on a directory;
    requires modify permission on the directory itself.  Installing
    fails if the subtree already exceeds the limit. *)

val quota_of : t -> Uid.t -> int option
val pages_charged_of : t -> Uid.t -> int option

val charge_growth : t -> uid:Uid.t -> offset:int -> (unit, error) result
(** Charge the governing cell for growing the segment to cover
    [offset] (no contents touched); used by the SDW-checked write
    path. *)

val check_quota_invariant : t -> bool
(** Every cell's charge equals its governed subtree's page total and
    respects its limit. *)

val set_brackets :
  t -> subject:Policy.subject -> uid:Uid.t -> brackets:Brackets.t -> (unit, error) result

val raw_delete_subtree : t -> dir:Uid.t -> name:string -> bool
(** Kernel-internal, unmediated recursive delete (process-directory
    cleanup at logout); refunds quota.  False if the entry is absent. *)

val raw_set_label : t -> uid:Uid.t -> label:Label.t -> bool
(** Kernel-internal label rewrite (the security administrator's
    upgrade/downgrade).  Revokes the cached verdicts derived from the
    old label in the same step.  False if the uid is dangling. *)

(** {1 The compiled access-decision table}

    [check_access] is the cached mediation question — the composition
    of the mandatory lattice, the ACL and the ring brackets this
    hierarchy's operations apply — served from a compiled
    {!Multics_access.Av_table}: a flat int array of access-vector bits
    indexed by (subject SID, object uid), where a covered request
    Permits with no allocation or hashing and anything else recomputes
    the structured verdict.  Every ACL edit, label change, bracket
    change, deletion or branch move above bumps the object's epoch
    generation, so revocation is immediate (the "setfaults"
    discipline), never TTL-based.  [check_access_fresh] recomputes
    from scratch; the property tests hold the two equal at every
    step. *)

val check_access :
  t -> subject:Policy.subject -> uid:Uid.t -> requested:Mode.t -> Policy.verdict option
(** [None] if the uid is dangling. *)

val check_access_fresh :
  t -> subject:Policy.subject -> uid:Uid.t -> requested:Mode.t -> Policy.verdict option

val av_table : t -> Av_table.t
(** The compiled table itself, for the benches and status surfaces. *)

val subject_sid : t -> Policy.subject -> Sid.t
(** The subject's dense SID in this hierarchy's table (interned on
    first sight, memoized on the record thereafter). *)

val rebuild_av_table : t -> int
(** Eagerly recompile every interned subject against every live node;
    returns the number of cells filled.  Measurement and warm-up only
    — lazy refill under the epoch stamps is already exact. *)

val invalidate_cached_verdicts : t -> unit
(** Bump the global generation: every cached verdict dies.  Called by
    the salvager after repairs and by the [cache clear] gate. *)

val flush_cached_verdicts : t -> unit
(** Drop the cached entries outright (storage, not just staleness). *)

val set_cache_probe : t -> (unit -> bool) option -> unit
(** Install the fault-injection probe ([cache.flush] storms). *)

val cache_stats : t -> (string * int) list
(** [("size", _)] plus the obs counter readings for the verdict
    cache. *)

val cache_hit_ratio : t -> float

(** {1 Path resolution (the kernel-resident tree walk)} *)

val resolve : t -> subject:Policy.subject -> path:string -> (Uid.t, error) result
(** Walk a [>a>b>c] tree name from the root, applying the status check
    (and its No_entry lie) at each step. *)

(** {1 Segment contents} *)

val max_segment_words : int

val read_word :
  t -> subject:Policy.subject -> uid:Uid.t -> offset:int -> (int, error) result
(** Reading past the written length yields 0 (segments are
    zero-extended). *)

val write_word :
  t -> subject:Policy.subject -> uid:Uid.t -> offset:int -> value:int -> (unit, error) result

val raw_read_word : t -> uid:Uid.t -> offset:int -> int option
(** Kernel-internal (unmediated); [None] if not a segment. *)

val raw_write_word : t -> uid:Uid.t -> offset:int -> value:int -> bool

(** {1 Descriptor construction} *)

val effective_mode : t -> subject:Policy.subject -> uid:Uid.t -> Mode.t
(** ACL mode intersected with what the lattice permits this subject on
    this object — the mode the kernel would put in the SDW. *)

val sdw_for : t -> subject:Policy.subject -> uid:Uid.t -> Sdw.t option
