(** The per-process Known Segment Table, in its pre-removal [Unified]
    shape (pathnames kept in the kernel) and post-removal [Split] shape
    (the kernel keeps only segno -> uid -> descriptor). *)

type t

type variant = Unified | Split

val variant_name : variant -> string

type error = Unknown_segno of int | Naming_not_in_kernel

val error_to_string : error -> string

val create : ?start_segno:int -> variant:variant -> unit -> t
(** [start_segno] defaults to 8 (numbers below are the kernel's own
    segments). *)

val variant : t -> variant

val make_known : t -> uid:Uid.t -> int * bool
(** Assign (or find) the segment number for a uid; the boolean is true
    when the segment was already known. *)

val uid_of_segno : t -> int -> (Uid.t, error) result
val segno_of_uid : t -> uid:Uid.t -> int option
val is_known : t -> uid:Uid.t -> bool

val set_sdw : t -> int -> Multics_machine.Sdw.t -> (unit, error) result
val sdw_of : t -> int -> Multics_machine.Sdw.t option

val set_on_sdw_change : t -> (int -> unit) -> unit
(** Register the single descriptor-change observer, fired with the
    segno by {!set_sdw} and {!terminate} — the KST's two descriptor
    mutation points.  The per-process SDW associative memory hangs off
    this hook so "setfaults" (recompute on attribute change) reaches
    cached descriptors immediately. *)

val record_pathname : t -> int -> string -> (unit, error) result
(** [Error Naming_not_in_kernel] under the [Split] variant — the
    removal took this function out of the kernel. *)

val pathname_of : t -> int -> (string option, error) result

val terminate : t -> int -> (unit, error) result

val entry_count : t -> int
val known_segnos : t -> int list

val words_per_entry : variant -> int

val protected_words : t -> int
(** Protected-data footprint of this table (synthetic words) — the
    quantity whose tenfold reduction experiment E2 reproduces. *)
